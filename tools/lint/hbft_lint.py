#!/usr/bin/env python3
"""hbft_lint: repo-specific static analysis for the hbft tree.

The whole reproduction rests on two invariants the compiler cannot see:

  * Deterministic replay. The paper's HA protocol — and our same-seed fleet
    fingerprints — only work if no wall-clock, ambient randomness, or
    address-ordered state leaks into the simulation. Anything inside src/
    that consults the host (time, rand, pointer ordering, hash-table
    iteration order) silently breaks lockstep.

  * Snapshot completeness. PR 5's live state transfer silently corrupts a
    rejoined backup if a later PR adds a mutable member that `Snapshotable`
    never serializes. The same holds for the wire codecs: a Serialize whose
    Deserialize reads a different field sequence misparses canonically-valid
    bytes.

This tool turns both into build-time failures. Three checks:

  1. determinism  — ban nondeterminism sources in src/:
       wall-clock           system/steady/high_resolution clock, time(),
                            gettimeofday, clock_gettime, localtime, ...
       ambient-rand         rand()/srand(), std::random_device,
                            std::default_random_engine, /dev/urandom
       unordered-container  declaring std::unordered_* (iteration order is
                            address-seeded; declare std::map/std::set, or
                            suppress as lookup-only)
       unordered-iteration  iterating a container the file declared
                            unordered (fires even under a suppressed
                            declaration: lookup-only means lookup only)
       pointer-keyed        std::map/std::set keyed on a pointer type, or
                            std::hash over a pointer (address order leaks
                            into iteration/comparison)
       thread-id            std::this_thread::get_id (a scheduling-dependent
                            value; nothing deterministic may branch on it)
       thread-spawn         std::thread/std::jthread creation outside the
                            fleet's WorkerPool (fleet/worker_pool.*, which
                            carries a reasoned allow-file) — parallelism in
                            src/ goes through the pool's static sharding +
                            round barrier or not at all
                            (std::thread::hardware_concurrency is a plain
                            host query and does not trip the rule)
       detached-thread      .detach() — a detached thread outlives every
                            barrier and cannot be joined deterministically
       thread-state         thread_local declarations; additionally flags a
                            thread_local name referenced inside a
                            Capture*/Restore*/Serialize/Deserialize body
                            (per-thread state must never feed snapshots or
                            fingerprints; the logging capture sink carries
                            the one reasoned allow)

  2. snapshot completeness (snapshot-field) — for every class implementing
     `Snapshotable` (or declaring the CaptureState/RestoreState pair), diff
     its non-static data members against the identifiers referenced by its
     Capture*/Restore* methods (including same-class helpers they call,
     transitively). A member that appears in neither is state the snapshot
     forgets — exactly the live-transfer corruption class. Members of
     class-local structs named by a member's type are expanded one level, so
     deleting a single `w.U32(state_.reg_x)` write is caught even though
     `state_` itself is still referenced.

  3. codec symmetry (codec-symmetry) — for paired Serialize/Deserialize and
     Capture<X>/Restore<X> functions, flatten each body into its sequence of
     fixed-width reads/writes (U8/U32/U64/blob/nested-codec calls) and
     require the two sequences to match element for element. Loops and
     branches flatten identically when the codec is symmetric; a skipped,
     reordered, or wrong-width field is a first-divergence error.

Suppressions (each requires a reason):

    // hbft-lint: allow(<rule>) — <reason>         same line or line above
    // hbft-lint: allow-file(<rule>) — <reason>    whole file
    // hbft-lint: derived-state — <reason>         member is rebuilt, not
                                                   serialized (caches etc.)

Backends: the default backend is a dependency-free C++ tokenizer (this
file). When the python libclang bindings are importable, `--backend=libclang`
cross-checks the determinism rules against a real AST; the container image
does not ship a clang frontend, so the tokenizer backend is authoritative
and libclang is opportunistic (it degrades to the tokenizer with a note,
never an error).

Usage:
    tools/lint/hbft_lint.py [--root DIR] [paths...]     # default: src
    tools/lint/hbft_lint.py --list-rules
Exit status: 0 clean, 1 violations, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

RULES = {
    "wall-clock": "host wall-clock source inside the deterministic tree",
    "ambient-rand": "ambient (non-seeded) randomness source",
    "unordered-container": "std::unordered_* declared (address-seeded iteration order)",
    "unordered-iteration": "iteration over an unordered container",
    "pointer-keyed": "container keyed or hashed by pointer value (address order)",
    "thread-id": "std::this_thread::get_id (scheduling-dependent value)",
    "thread-spawn": "thread creation outside the fleet worker pool",
    "detached-thread": "detached thread (outlives every deterministic barrier)",
    "thread-state": "thread_local state (must never feed snapshots/fingerprints)",
    "snapshot-field": "data member never touched by Capture*/Restore* methods",
    "codec-symmetry": "Serialize/Deserialize (or Capture/Restore) field sequences differ",
    "bad-suppression": "malformed hbft-lint annotation",
}

# Files/directories (relative to the scan root) that legitimately touch the
# wall clock: the realtime pacing layer and the socket frontend run at wall
# pace by design. They still carry explicit allow() annotations; this list
# only documents the intent in one place for `--list-rules` readers.
WALL_CLOCK_LAYERS = ("sim/realtime_pump", "serve/")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Lexing: blank comments and literals in place (offsets and line numbers are
# preserved), keep the comment text separately for annotation lookup.
# ---------------------------------------------------------------------------

def blank_span(chars, start, end):
    for i in range(start, end):
        if chars[i] != "\n":
            chars[i] = " "


def lex(text):
    """Returns (code, comments) where `code` is `text` with comments and
    string/char literal contents replaced by spaces, and `comments` maps
    line number -> concatenated comment text on that line."""
    chars = list(text)
    comments = {}
    i, n, line = 0, len(text), 1

    def note_comment(s, e, at_line):
        body = text[s:e]
        for off, part in enumerate(body.split("\n")):
            if part.strip():
                comments.setdefault(at_line + off, []).append(part)

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            note_comment(i, j, line)
            blank_span(chars, i, j)
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            note_comment(i, j, line)
            line += text.count("\n", i, j)
            blank_span(chars, i, j)
            i = j
        elif c == '"':
            # Raw string?
            if i >= 1 and text[i - 1] == "R":
                m = re.match(r'R"([^(]*)\(', text[i - 1:])
                if m:
                    delim = ")" + m.group(1) + '"'
                    j = text.find(delim, i + 1)
                    j = n if j == -1 else j + len(delim)
                    line += text.count("\n", i, j)
                    blank_span(chars, i + 1, j - 1)
                    i = j
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            blank_span(chars, i + 1, j - 1)
            i = j
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            blank_span(chars, i + 1, j - 1)
            i = j
        else:
            i += 1
    return "".join(chars), {ln: " ".join(parts) for ln, parts in comments.items()}


SUPPRESS_RE = re.compile(r"hbft-lint:\s*(allow|allow-file)\(([a-z-]+)\)\s*(.*)")
DERIVED_RE = re.compile(r"hbft-lint:\s*derived-state\b\s*(.*)")


class Suppressions:
    """Parses hbft-lint annotations out of a file's comments."""

    def __init__(self, path, comments, violations):
        self.line_rules = {}   # line -> set of rules allowed on that line
        self.file_rules = set()
        self.derived_lines = set()
        self.comment_lines = set(comments)
        for line, comment in sorted(comments.items()):
            for m in SUPPRESS_RE.finditer(comment):
                kind, rule, reason = m.group(1), m.group(2), m.group(3)
                if rule not in RULES:
                    violations.append(Violation(
                        path, line, "bad-suppression",
                        f"allow() names unknown rule '{rule}'"))
                    continue
                if not re.search(r"[—:-]\s*\S", reason):
                    violations.append(Violation(
                        path, line, "bad-suppression",
                        f"allow({rule}) must carry a reason: "
                        f"// hbft-lint: {kind}({rule}) — <why>"))
                    continue
                if kind == "allow-file":
                    self.file_rules.add(rule)
                else:
                    self.line_rules.setdefault(line, set()).add(rule)
            m = DERIVED_RE.search(comment)
            if m:
                self.derived_lines.add(line)

    def _covering(self, line):
        """The annotation scope for `line`: the line itself plus the
        contiguous block of comment-bearing lines immediately above it."""
        yield line
        above = line - 1
        while above in self.comment_lines:
            yield above
            above -= 1

    def allows(self, rule, line):
        if rule in self.file_rules:
            return True
        return any(rule in self.line_rules.get(at, ()) for at in self._covering(line))

    def derived(self, line):
        return any(at in self.derived_lines for at in self._covering(line))


def line_of(code, offset):
    return code.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# Check 1: determinism.
# ---------------------------------------------------------------------------

# (rule, regex, human message). Patterns run over comment/string-blanked code.
_CALL_GUARD = r"(?<![\w.:>])"  # not a member/qualified/suffixed name
DETERMINISM_PATTERNS = [
    ("wall-clock", re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
     "std::chrono wall clock"),
    # Bare time()/clock() calls: only in expression context (preceded by an
    # operator, delimiter, or `return`), so methods *named* clock()/time()
    # don't trip the rule at their declaration site.
    ("wall-clock", re.compile(r"(?:[=(,{;!&|+\-*/%<?]\s*|(?<!-)>\s*|(?<!:):\s*|\breturn\s+)"
                              r"(?:std\s*::\s*)?(time|clock)\s*\(\s*(?:nullptr|NULL|0)?\s*\)"),
     "C wall clock call"),
    ("wall-clock", re.compile(r"\b(?:gettimeofday|clock_gettime|timespec_get|localtime|localtime_r|gmtime|gmtime_r|mktime|ftime)\b"),
     "POSIX wall clock"),
    ("ambient-rand", re.compile(_CALL_GUARD + r"(?:rand|srand|random|srandom|drand48|lrand48|mrand48)\s*\("),
     "libc random source"),
    ("ambient-rand", re.compile(r"\b(?:random_device|default_random_engine)\b"),
     "non-seeded std random source"),
    ("ambient-rand", re.compile(r"/dev/u?random"),
     "kernel random source"),
    ("unordered-container", re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b"),
     "address-seeded container"),
    ("pointer-keyed", re.compile(r"\bstd::(?:map|set|multimap|multiset)\s*<\s*[\w:]+(?:\s*<[^<>]*>)?\s*\*"),
     "pointer-keyed ordered container"),
    ("pointer-keyed", re.compile(r"\bstd::hash\s*<[^>]*\*\s*>"),
     "pointer-value hashing"),
    ("thread-id", re.compile(r"\bthis_thread\s*::\s*get_id\b"),
     "scheduling-dependent thread id"),
    # std::thread::hardware_concurrency is a plain host-capability query
    # (bench metadata) and std::thread::id a value type, not creation: the
    # lookahead exempts both.
    ("thread-spawn",
     re.compile(r"\bstd\s*::\s*(?:jthread\b|"
                r"thread\b(?!\s*::\s*(?:hardware_concurrency|id)\b))"),
     "thread creation outside fleet/worker_pool"),
    ("detached-thread", re.compile(r"\.\s*detach\s*\(\s*\)"),
     "detached thread"),
    ("thread-state", re.compile(r"\bthread_local\b"),
     "thread_local state"),
]

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<")


def find_unordered_names(code):
    """Identifiers declared with an unordered container type in this file."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        # Skip the template argument list, then take the next identifier.
        i, depth = m.end() - 1, 0
        n = len(code)
        while i < n:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = code[i + 1:i + 200]
        dm = re.match(r"\s*[&*]*\s*>?\s*([A-Za-z_]\w*)", tail)
        if dm and dm.group(1) not in ("const",):
            names.add(dm.group(1))
    return names


def check_determinism(path, code, suppress, violations, raw_text):
    for lineno, _ in enumerate(code.split("\n"), start=1):
        pass  # (line splitting only needed per-match below)
    for rule, pattern, message in DETERMINISM_PATTERNS:
        scan_text = raw_text if "/dev/u" in pattern.pattern else code
        for m in pattern.finditer(scan_text):
            line = line_of(scan_text, m.start())
            # #include <unordered_map> is only a capability, not a use.
            line_text = scan_text.split("\n")[line - 1]
            if line_text.lstrip().startswith("#include"):
                continue
            if suppress.allows(rule, line):
                continue
            violations.append(Violation(
                path, line, rule, f"{message}: `{m.group(0).strip()}`"))

    # Iteration over containers this file declared unordered.
    for name in find_unordered_names(code):
        it_re = re.compile(
            r"for\s*\([^;()]*:\s*(?:\w+(?:\.|->))*" + re.escape(name) + r"\s*\)"
            r"|\b" + re.escape(name) + r"\s*\.\s*c?(?:begin|end|rbegin|rend)\s*\(")
        for m in it_re.finditer(code):
            line = line_of(code, m.start())
            if suppress.allows("unordered-iteration", line):
                continue
            violations.append(Violation(
                path, line, "unordered-iteration",
                f"iteration over unordered container `{name}` "
                "(order is address-seeded; use an ordered container or "
                "sort a copy by a deterministic key)"))


THREAD_LOCAL_NAME_RE = re.compile(
    r"\bthread_local\b[^;={]*?([A-Za-z_]\w*)\s*(?:\{[^}]*\}|=[^;]*)?;")
CODEC_FN_HEAD_RE = re.compile(
    r"\b((?:Capture|Restore|Serialize|Deserialize)\w*)\s*\(")


def check_thread_state_codec(path, code, suppress, violations):
    """thread_local names referenced inside Capture*/Restore*/Serialize/
    Deserialize bodies: per-thread state leaking into Snapshotable bytes or
    fingerprint folds. Flagged even when the declaration itself carries an
    allow(thread-state) — the allow covers the variable's existence, not its
    reachability from snapshot/codec paths."""
    names = {m.group(1) for m in THREAD_LOCAL_NAME_RE.finditer(code)}
    if not names:
        return
    for m in CODEC_FN_HEAD_RE.finditer(code):
        # Locate the body's opening brace; a `;` first means a declaration.
        brace = code.find("{", m.end())
        semi = code.find(";", m.end())
        if brace == -1 or (semi != -1 and semi < brace):
            continue
        body_end = match_brace(code, brace)
        for name in names:
            for ref in re.finditer(r"\b" + re.escape(name) + r"\b",
                                   code[brace:body_end]):
                line = line_of(code, brace + ref.start())
                if suppress.allows("thread-state", line):
                    continue
                violations.append(Violation(
                    path, line, "thread-state",
                    f"thread_local `{name}` referenced inside "
                    f"snapshot/codec function `{m.group(1)}`"))


# ---------------------------------------------------------------------------
# C++ structure extraction: classes, members, and function bodies — enough
# for checks 2 and 3, no more. Token-level, heuristic, calibrated against
# this repo's (Google-style) code.
# ---------------------------------------------------------------------------

IDENT_RE = re.compile(r"[A-Za-z_]\w*")

STATEMENT_SKIP_KEYWORDS = (
    "public", "private", "protected", "using", "typedef", "friend",
    "static", "template", "enum", "return", "if", "for", "while", "switch",
    "case", "explicit", "operator", "virtual ~", "~",
)


def match_brace(code, open_idx):
    """Index just past the brace matching code[open_idx] == '{'."""
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def mask_angle_spans(stmt):
    """Blanks out template argument lists (top-level <...> pairs)."""
    out = list(stmt)
    depth, start = 0, -1
    for i, c in enumerate(stmt):
        if c == "<":
            if depth == 0:
                start = i
            depth += 1
        elif c == ">":
            if depth > 0:
                depth -= 1
                if depth == 0 and start >= 0:
                    for j in range(start, i + 1):
                        out[j] = " "
                    start = -1
        elif c in ";{}" and depth > 0:
            # operator< or a stray comparison: give up on this span.
            depth, start = 0, -1
    return "".join(out)


class ClassInfo:
    def __init__(self, name, path, body_start, body_end):
        self.name = name
        self.path = path
        self.body_start = body_start
        self.body_end = body_end
        self.bases = []
        self.members = []        # (name, type_token, line)
        self.nested = {}         # struct name -> [(member, type, line)]
        self.method_names = set()


def parse_members(code, body_start, body_end, cls, path, nested_into=None):
    """Walks a class body at depth 1, collecting data members and nested
    struct definitions. `nested_into` redirects members into a nested map."""
    members = nested_into if nested_into is not None else cls.members
    i = body_start
    stmt_start = i
    stmt = []
    brace_spans = []  # (start, end) of skipped {...} spans in this statement

    def flush(end_idx):
        nonlocal stmt, brace_spans, stmt_start
        raw = "".join(stmt)
        text = raw.strip()
        spans = brace_spans
        stmt, brace_spans = [], []
        start_idx = stmt_start
        stmt_start = end_idx
        if not text:
            return
        # Attribute the statement to its first non-whitespace character, not
        # to stmt_start (which sits just past the previous statement's `;`,
        # i.e. usually on the previous line).
        start_idx += len(raw) - len(raw.lstrip())
        process_statement(text, spans, start_idx, end_idx)

    def process_statement(text, spans, start_idx, end_idx):
        line = line_of(code, start_idx)
        first = IDENT_RE.match(text)
        first_word = first.group(0) if first else ""
        # Nested type definition: recurse into the first skipped brace span
        # when the statement is `struct Name {...}` / `class Name {...}`.
        if first_word in ("struct", "class", "union") and spans:
            m = re.match(r"(?:struct|class|union)\s+([A-Za-z_]\w*)", text)
            if m and nested_into is None:
                nested = []
                parse_members(code, spans[0][0] + 1, spans[0][1] - 1, cls,
                              path, nested_into=nested)
                cls.nested[m.group(1)] = nested
            return
        if first_word in ("struct", "class", "union", "enum"):
            return
        for kw in STATEMENT_SKIP_KEYWORDS:
            if text == kw or text.startswith(kw + " ") or text.startswith(kw + ":"):
                return
        if not text:
            return
        masked = mask_angle_spans(text)
        # Anything with a parameter list is a function; a trailing {} span
        # right after the declarator is a brace initializer, which is fine.
        paren = masked.find("(")
        eq = masked.find("=")
        if paren != -1 and (eq == -1 or paren < eq):
            m = re.search(r"([A-Za-z_]\w*)\s*\($", masked[:paren + 1])
            if m:
                cls.method_names.add(m.group(1))
            return
        # Data member: name is the last identifier before `;`/`=`/init.
        decl = masked
        if eq != -1:
            decl = decl[:eq]
        decl = re.sub(r"\[[^\]]*\]", "", decl)       # arrays
        decl = decl.split(":")[0] if re.search(r"[A-Za-z_]\w*\s*:\s*\d", decl) else decl
        idents = IDENT_RE.findall(decl)
        idents = [w for w in idents if w not in ("const", "constexpr", "mutable",
                                                 "volatile", "std", "inline")]
        if len(idents) < 2:
            return  # Need at least a type and a name.
        name, type_token = idents[-1], idents[-2]
        members.append((name, type_token, line))

    while i < body_end:
        c = code[i]
        if c == "{":
            end = match_brace(code, i)
            brace_spans.append((i, end))
            i = end
            # An inline function definition ends at its closing brace with no
            # `;` — flush so the next member doesn't merge into it. A brace
            # initializer or nested type body has no parameter list yet.
            stmt_text = mask_angle_spans("".join(stmt))
            first = IDENT_RE.match(stmt_text.strip())
            if "(" in stmt_text and (not first or
                                     first.group(0) not in ("struct", "class",
                                                            "union", "enum")):
                m = re.search(r"([A-Za-z_]\w*)\s*\(", stmt_text)
                if m:
                    cls.method_names.add(m.group(1))
                stmt, brace_spans = [], []
                stmt_start = i
        elif c == ";":
            flush(i)
            i += 1
            stmt_start = i
        elif c == ":" and code[i - 6:i + 1].strip() in ("public:", "private:", "protected:"):
            stmt, brace_spans = [], []
            i += 1
            stmt_start = i
        else:
            stmt.append(c)
            i += 1


CLASS_RE = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?([:{;])")


def parse_classes(path, code):
    """Finds class/struct definitions with bodies."""
    classes = []
    for m in CLASS_RE.finditer(code):
        kind, name, delim = m.group(1), m.group(2), m.group(3)
        if delim == ";":
            continue  # forward declaration
        # Reject `enum class` / `enum struct`.
        prefix = code[max(0, m.start() - 8):m.start()]
        if re.search(r"enum\s*$", prefix):
            continue
        i = m.end() - 1
        bases = []
        if delim == ":":
            brace = code.find("{", i)
            if brace == -1:
                continue
            bases = IDENT_RE.findall(code[i:brace])
            bases = [b for b in bases if b not in ("public", "private",
                                                   "protected", "virtual", "std")]
            i = brace
        body_end = match_brace(code, i)
        cls = ClassInfo(name, path, i + 1, body_end - 1)
        cls.bases = bases
        parse_members(code, cls.body_start, cls.body_end, cls, path)
        classes.append(cls)
    return classes


FUNC_NAME_RE = re.compile(
    r"\b(?:([A-Za-z_]\w*)\s*::\s*)?"
    r"((?:Capture|Restore)\w*|Serialize\w*|Deserialize\w*|Snapshot\w*|"
    r"Encode\w*|Decode\w*)\s*\(")


def extract_function_bodies(path, code):
    """Maps (class_or_None, function_name) -> list of (body_code, body_offset,
    param_names). Covers out-of-line `Cls::Name(...) {...}`, free functions,
    and inline method definitions (class attribution for inline bodies is
    resolved by the caller via class body spans)."""
    out = {}
    for m in FUNC_NAME_RE.finditer(code):
        cls, name = m.group(1), m.group(2)
        # Find the closing paren of the parameter list.
        i, depth = m.end() - 1, 0
        n = len(code)
        while i < n:
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        params = code[m.end():i]
        j = i + 1
        # Skip const / noexcept / override / trailing return / init list.
        while j < n and code[j] not in "{;":
            j += 1
        if j >= n or code[j] == ";":
            continue  # declaration only
        body_end = match_brace(code, j)
        param_names = IDENT_RE.findall(mask_angle_spans(params))
        out.setdefault((cls, name), []).append((code[j:body_end], j, param_names))
    return out


# ---------------------------------------------------------------------------
# Check 3: codec symmetry.
# ---------------------------------------------------------------------------

WIDTH_OPS = {
    "U8": "8", "Bool": "8", "GetU8": "8", "PutU8": "8", "push_back": "8",
    "U16": "16", "GetU16": "16", "PutU16": "16",
    "U32": "32", "GetU32": "32", "PutU32": "32",
    "U64": "64", "I64": "64", "GetU64": "64", "PutU64": "64",
    "GetI64": "64", "PutI64": "64",
    "Blob": "blob",
    "GetBytes": "bytes", "PutBytes": "bytes", "insert": "bytes", "assign": "bytes",
    "WriteSnapshotHeader": "header", "ReadSnapshotHeader": "header",
}

CODEC_PREFIXES = ("Capture", "Restore", "Serialize", "Deserialize",
                  "Encode", "Decode", "Write", "Read", "Put", "Get")


def strip_codec_prefix(name):
    for p in CODEC_PREFIXES:
        if name.startswith(p) and len(name) > len(p):
            return name[len(p):]
    return name


CALL_RE = re.compile(r"((?:[A-Za-z_]\w*(?:\.|->|::))*)([A-Za-z_]\w*)\s*\(")
BYTE_INDEX_RE = re.compile(r"\b(?:bytes|data|buf)\s*\[\s*(\d+|[A-Za-z_]\w*)\s*\]")

# Control flow and cast-ish names that CALL_RE matches but are not calls.
NOT_CALLS = {"if", "for", "while", "switch", "return", "sizeof", "catch",
             "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
             "alignof", "decltype", "assert", "HBFT_CHECK", "HBFT_CHECK_EQ",
             "HBFT_CHECK_LT", "HBFT_CHECK_LE", "HBFT_CHECK_GT", "HBFT_CHECK_GE"}


def codec_sequence(body, body_offset, code, stream_names):
    """Flattens a codec body into [(token, line)], consuming call-argument
    spans so nested mentions don't double-count."""
    seq = []
    i, n = 0, len(body)
    seen_indices = set()
    # Track locally-declared byte-output vectors (writer side).
    out_vecs = set(re.findall(r"std::vector<uint8_t>\s+([A-Za-z_]\w*)", body))
    out_vecs.update({"out", "out_"})
    while i < n:
        cm = CALL_RE.match(body, i)
        if not cm:
            bm = BYTE_INDEX_RE.match(body, i)
            if bm:
                idx = bm.group(1)
                if idx not in seen_indices:
                    seen_indices.add(idx)
                    seq.append(("8", line_of(code, body_offset + bm.start())))
                i = bm.end()
                continue
            i += 1
            continue
        receiver, name = cm.group(1), cm.group(2)
        if name in NOT_CALLS:
            # Keyword, not a call: keep scanning inside its parens.
            i = cm.end()
            continue
        line = line_of(code, body_offset + cm.start(2))
        # Find the call's argument span.
        j, depth = cm.end() - 1, 0
        while j < n:
            if body[j] == "(":
                depth += 1
            elif body[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        args = body[cm.end():j]
        recv_root = re.split(r"\.|->|::", receiver.rstrip(".->:"))[0] if receiver else ""

        if name in ("push_back", "insert"):
            if recv_root in out_vecs:
                seq.append((WIDTH_OPS[name], line))
            i = j + 1
            continue
        if name == "assign":
            if re.search(r"\b(?:bytes|data|buf)\b", args):
                seq.append(("bytes", line))
            i = j + 1
            continue
        if name in WIDTH_OPS:
            seq.append((WIDTH_OPS[name], line))
            i = j + 1
            continue
        # Nested codec: any call that threads the writer/reader through.
        arg_idents = set(IDENT_RE.findall(args))
        if arg_idents & stream_names:
            token = "nest:" + (recv_root + ":" if recv_root else "") + strip_codec_prefix(name)
            seq.append((token, line))
            i = j + 1
            continue
        # Plain call: don't consume args (they may contain codec ops, e.g.
        # HBFT_CHECK(r.U32(&x))).
        i = cm.end()
    return seq


def tokens_match(wt, rt):
    """Width tokens must be equal. Nested-codec tokens must agree on the
    codec suffix; the receivers must also agree when both are member-style
    names (trailing underscore) — parameter/local receivers (e.g. `source` /
    `target` in the whole-object snapshot helpers) are naming, not shape."""
    if wt == rt:
        return True
    if not (wt.startswith("nest:") and rt.startswith("nest:")):
        return False
    wparts, rparts = wt.split(":"), rt.split(":")
    if wparts[-1] != rparts[-1]:
        return False
    wrecv = wparts[1] if len(wparts) == 3 else ""
    rrecv = rparts[1] if len(rparts) == 3 else ""
    if wrecv.endswith("_") and rrecv.endswith("_") and wrecv != rrecv:
        return False
    return True


STREAM_PARAM_TYPES = re.compile(
    r"(SnapshotWriter|SnapshotReader)\s*&\s*([A-Za-z_]\w*)")


def stream_names_of(params_text, body):
    names = set(m.group(2) for m in STREAM_PARAM_TYPES.finditer(params_text))
    # Locally-constructed writers/readers too.
    names.update(re.findall(r"SnapshotWriter\s+([A-Za-z_]\w*)\s*\(", body))
    names.update(re.findall(r"SnapshotReader\s+([A-Za-z_]\w*)\s*\(", body))
    names.update(re.findall(r"Reader\s+([A-Za-z_]\w*)\s*\(", body))
    names.update({"w", "r", "reader", "writer", "out"})
    return names


CODEC_PAIR_PREFIXES = [
    ("Serialize", "Deserialize"),
    ("Capture", "Restore"),
    ("Encode", "Decode"),
]


def pair_name(name):
    """Returns the partner function name for a codec-side function."""
    for a, b in CODEC_PAIR_PREFIXES:
        if name.startswith(a):
            return b + name[len(a):]
        if name.startswith(b):
            return a + name[len(b):]
    return None


def check_codec_symmetry(path, code, suppress, violations):
    funcs = extract_function_bodies(path, code)
    checked = set()
    for (cls, name), defs in funcs.items():
        for a, b in CODEC_PAIR_PREFIXES:
            if not name.startswith(a):
                continue
            partner = b + name[len(a):]
            pkey = (cls, partner)
            if pkey not in funcs:
                continue
            key = (cls, name, partner)
            if key in checked:
                continue
            checked.add(key)
            if len(defs) != 1 or len(funcs[pkey]) != 1:
                continue  # Overloads: ambiguous, skip.
            wbody, woff, wparams = defs[0]
            rbody, roff, rparams = funcs[pkey][0]
            wseq = codec_sequence(wbody, woff, code,
                                  stream_names_of(" ".join(wparams), wbody))
            rseq = codec_sequence(rbody, roff, code,
                                  stream_names_of(" ".join(rparams), rbody))
            wline = line_of(code, woff)
            if suppress.allows("codec-symmetry", wline) or \
               suppress.allows("codec-symmetry", line_of(code, roff)):
                continue
            qual = f"{cls}::" if cls else ""
            for k in range(max(len(wseq), len(rseq))):
                wt = wseq[k] if k < len(wseq) else None
                rt = rseq[k] if k < len(rseq) else None
                if wt is None:
                    violations.append(Violation(
                        path, rt[1], "codec-symmetry",
                        f"{qual}{partner} reads field #{k + 1} ({rt[0]}) that "
                        f"{qual}{name} never writes"))
                    break
                if rt is None:
                    violations.append(Violation(
                        path, wt[1], "codec-symmetry",
                        f"{qual}{name} writes field #{k + 1} ({wt[0]}) that "
                        f"{qual}{partner} never reads"))
                    break
                if not tokens_match(wt[0], rt[0]):
                    violations.append(Violation(
                        path, wt[1], "codec-symmetry",
                        f"{qual}{name}/{partner} diverge at field #{k + 1}: "
                        f"writes {wt[0]} (line {wt[1]}) but reads {rt[0]} "
                        f"(line {rt[1]})"))
                    break


# ---------------------------------------------------------------------------
# Check 2: snapshot completeness. Cross-file: class declarations usually live
# in headers, Capture/Restore bodies in the matching .cpp.
# ---------------------------------------------------------------------------

SNAPSHOT_BASE = "Snapshotable"


def snapshotable_closure(classes_by_name):
    snap = {SNAPSHOT_BASE}
    changed = True
    while changed:
        changed = False
        for cls in classes_by_name.values():
            if cls.name in snap:
                continue
            if any(b in snap for b in cls.bases):
                snap.add(cls.name)
                changed = True
    snap.discard(SNAPSHOT_BASE)
    return snap


def check_snapshot_completeness(files, violations):
    """files: list of (path, code, suppress). Builds a global class index and
    a global Capture*/Restore* body index, then diffs members per class."""
    classes_by_name = {}
    class_files = {}
    for path, code, suppress in files:
        for cls in parse_classes(path, code):
            # First definition wins; redefinitions across files would be ODR
            # violations anyway.
            if cls.name not in classes_by_name:
                classes_by_name[cls.name] = cls
                class_files[cls.name] = (path, code, suppress)

    # (class, func) -> set of identifiers in the body; and called names.
    bodies = {}
    for path, code, _ in files:
        for (cls, name), defs in extract_function_bodies(path, code).items():
            for body, off, _params in defs:
                owner = cls
                if owner is None:
                    # Inline method: attribute by enclosing class body span.
                    for cname, c in classes_by_name.items():
                        p, ccode, _s = class_files[cname]
                        if p == path and c.body_start <= off < c.body_end:
                            owner = cname
                            break
                if owner is None:
                    continue
                key = (owner, name)
                idents = set(IDENT_RE.findall(body))
                bodies.setdefault(key, set()).update(idents)

    snapshot_classes = snapshotable_closure(classes_by_name)
    for cname, cls in classes_by_name.items():
        entry_methods = [m for m in cls.method_names
                         if m.startswith("Capture") or m.startswith("Restore")]
        has_pair = ("CaptureState" in cls.method_names and
                    "RestoreState" in cls.method_names)
        if cname not in snapshot_classes and not has_pair:
            continue
        if not entry_methods:
            continue
        path, code, suppress = class_files[cname]
        # Transitive closure over same-class helpers called from the
        # Capture*/Restore* entry points.
        reached = set()
        frontier = list(entry_methods)
        touched = set()
        while frontier:
            fn = frontier.pop()
            if fn in reached:
                continue
            reached.add(fn)
            idents = bodies.get((cname, fn))
            if idents is None:
                continue
            touched |= idents
            for callee in idents & cls.method_names:
                if callee not in reached:
                    frontier.append(callee)
        # Inherited capture also counts: a derived class whose CaptureState
        # calls Base::CaptureState covers members via the base's methods —
        # but members live per class here, so nothing extra to do.
        if not (touched - {"w", "r"}):
            continue  # No body found anywhere (e.g. pure interface).
        for member, type_token, line in cls.members:
            if suppress.derived(line) or suppress.allows("snapshot-field", line):
                continue
            if member in touched:
                # One-level expansion: if the member's type is a class-local
                # struct, each of its fields must be touched too.
                for fname, _ft, _fl in cls.nested.get(type_token, []):
                    if fname not in touched:
                        violations.append(Violation(
                            path, line, "snapshot-field",
                            f"{cname}::{member}.{fname} ({type_token}) is never "
                            f"touched by {cname}'s Capture*/Restore* methods — "
                            "serialize it or annotate the member "
                            "`// hbft-lint: derived-state — <why>`"))
                continue
            violations.append(Violation(
                path, line, "snapshot-field",
                f"{cname}::{member} is never touched by {cname}'s "
                "Capture*/Restore* methods — serialize it or annotate "
                "`// hbft-lint: derived-state — <why>`"))


# ---------------------------------------------------------------------------
# Optional libclang backend (opportunistic cross-check of the determinism
# rules; the container image has no clang frontend, so absence is normal).
# ---------------------------------------------------------------------------

def try_libclang_determinism(root, paths):
    try:
        from clang import cindex  # noqa: F401
    except Exception:
        return None  # Not available: tokenizer backend is authoritative.
    try:
        index = cindex.Index.create()
        banned_calls = {"rand", "srand", "gettimeofday", "clock_gettime",
                        "time", "localtime", "gmtime", "mktime"}
        banned_types = {"std::random_device", "std::default_random_engine"}
        findings = []
        for path in paths:
            tu = index.parse(path, args=["-std=c++20", f"-I{root}/src"])
            for node in tu.cursor.walk_preorder():
                if str(node.location.file) != path:
                    continue
                if node.kind == cindex.CursorKind.CALL_EXPR and \
                        node.spelling in banned_calls:
                    findings.append((path, node.location.line, "wall-clock"
                                     if node.spelling not in ("rand", "srand")
                                     else "ambient-rand", node.spelling))
                if node.kind == cindex.CursorKind.VAR_DECL and \
                        node.type.spelling in banned_types:
                    findings.append((path, node.location.line,
                                     "ambient-rand", node.type.spelling))
        return findings
    except Exception as e:  # pragma: no cover - depends on host clang
        sys.stderr.write(f"hbft_lint: libclang backend degraded ({e}); "
                         "tokenizer results stand\n")
        return None


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def collect_files(root, paths):
    files = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isdir(full):
            for dirpath, _dirs, names in os.walk(full):
                for name in sorted(names):
                    if name.endswith((".cpp", ".hpp", ".cc", ".h")):
                        files.append(os.path.join(dirpath, name))
        elif os.path.isfile(full):
            files.append(full)
        else:
            raise FileNotFoundError(full)
    return sorted(set(files))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels above this script)")
    parser.add_argument("--backend", choices=("tokenizer", "libclang"),
                        default="tokenizer",
                        help="libclang adds an AST cross-check of the "
                             "determinism rules when python clang bindings "
                             "are importable; falls back silently otherwise")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:22s} {desc}")
        print("\nwall-clock layers (annotated in-tree): " +
              ", ".join(WALL_CLOCK_LAYERS))
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    paths = args.paths or ["src"]
    try:
        file_list = collect_files(root, paths)
    except FileNotFoundError as e:
        sys.stderr.write(f"hbft_lint: no such path: {e}\n")
        return 2

    violations = []
    lexed = []
    for path in file_list:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw = f.read()
        code, comments = lex(raw)
        suppress = Suppressions(path, comments, violations)
        lexed.append((path, code, suppress))
        check_determinism(path, code, suppress, violations, raw)
        check_thread_state_codec(path, code, suppress, violations)
        check_codec_symmetry(path, code, suppress, violations)
    check_snapshot_completeness(lexed, violations)

    if args.backend == "libclang":
        extra = try_libclang_determinism(root, file_list)
        if extra is None:
            sys.stderr.write("hbft_lint: libclang unavailable; "
                             "tokenizer backend results stand\n")
        else:
            known = {(v.path, v.line, v.rule) for v in violations}
            for path, line, rule, what in extra:
                if (path, line, rule) not in known:
                    violations.append(Violation(
                        path, line, rule, f"(libclang) `{what}`"))

    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    for v in violations:
        rel = os.path.relpath(v.path, root)
        print(f"{rel}:{v.line}: [{v.rule}] {v.message}")
    if violations:
        print(f"\nhbft_lint: {len(violations)} violation(s) in "
              f"{len(file_list)} file(s)")
        return 1
    print(f"hbft_lint: clean ({len(file_list)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
