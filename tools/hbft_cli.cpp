#include <cstdio>

#include "cli/cli.hpp"

int main(int argc, char** argv) { return hbft::cli::Main(argc, argv); }
