#!/usr/bin/env python3
"""Diff regenerated bench artifacts against the committed baselines.

The simulation is deterministic, so every artifact except fig6, fig7, and
fig8 must match byte-for-byte: any diff is a genuine behavior change —
either fix it or consciously re-baseline. fig6_throughput.json,
fig7_fleet.json, and fig8_parallel.json mix deterministic simulated results
(instruction counts, checksums, latency percentiles, availability,
fingerprints) with host-dependent measurements (host_ms, mips, wall_ms,
speedup, host_cpus) that vary run to run and machine to machine; those
volatile keys are stripped before comparing. On top of the byte diff the
regenerated artifacts must clear sanity checks: fig6's cached dispatch has
to beat slow dispatch by a floor, fig7's rows must be internally coherent
(availability <= 1.0, p50 <= p99 <= p999), and fig8's rows must carry
identical deterministic results at every thread count — plus, when the
regenerating machine actually has >= 4 CPUs, a >= 2x wall-clock speedup at
4 threads on the large case (on fewer CPUs the floor is skipped with a loud
warning, because parallel speedup is unmeasurable there, but the
determinism identity is enforced everywhere).

usage: diff_bench.py <baseline_dir> <regenerated_dir>
                     [--speedup-floor=X] [--only=NAME]

--only=NAME restricts the diff to one artifact (e.g. --only=fig7_fleet.json
or a unique prefix like --only=fig8), pairing with `hbft_cli bench
--only=...` for a fast regenerate-one/diff-one dev loop.
"""

import difflib
import json
import sys
from pathlib import Path

VOLATILE_KEYS = {"host_ms", "mips", "wall_ms", "speedup", "host_cpus"}
DEFAULT_SPEEDUP_FLOOR = 2.0

# Artifacts that carry host-dependent fields and get the strip-then-diff
# treatment instead of the plain byte comparison.
VOLATILE_ARTIFACTS = {
    "fig6_throughput.json",
    "fig7_fleet.json",
    "fig8_parallel.json",
}

# Deterministic per-row fields of fig8 that must be identical across thread
# counts within a case — the headline guarantee of the parallel fleet.
FIG8_DETERMINISTIC_KEYS = (
    "fingerprint", "availability", "requests_total", "requests_served",
    "failovers", "repairs",
)


def strip_volatile(doc):
    """Remove host-clock fields from every row of a bench document."""
    out = dict(doc)
    out["rows"] = [
        {k: v for k, v in row.items() if k not in VOLATILE_KEYS}
        for row in doc.get("rows", [])
    ]
    return out


def render(doc):
    return json.dumps(doc, indent=2, sort_keys=True).splitlines(keepends=True)


def show_diff(name, baseline_lines, regen_lines):
    sys.stdout.writelines(
        difflib.unified_diff(
            baseline_lines, regen_lines,
            fromfile=f"bench/{name} (committed)",
            tofile=f"regen/{name}",
        )
    )


def check_fig6_speedup(doc, floor):
    """The regenerated cached rows must beat slow dispatch by `floor`."""
    ok = True
    for row in doc.get("rows", []):
        if row.get("mode") != "cached" or row.get("workload") != "cpu-kernel":
            continue
        speedup = row.get("speedup")
        if speedup is None or speedup < floor:
            print(
                f"fig6: cpu-kernel cached speedup {speedup} is below the "
                f"{floor}x floor — cached dispatch is not paying off",
                file=sys.stderr,
            )
            ok = False
    return ok


def check_fig7_sanity(doc):
    """Every fleet row must be internally coherent, baseline or not."""
    ok = True
    for row in doc.get("rows", []):
        tag = f"fig7 row (hosts_failed={row.get('hosts_failed')})"
        avail = row.get("availability")
        if avail is None or not (0.0 <= avail <= 1.0):
            print(f"{tag}: availability {avail} outside [0, 1]", file=sys.stderr)
            ok = False
        p50, p99, p999 = (row.get(k) for k in ("p50_ms", "p99_ms", "p999_ms"))
        if None in (p50, p99, p999) or not (p50 <= p99 <= p999):
            print(
                f"{tag}: percentiles not monotone (p50={p50}, p99={p99}, "
                f"p999={p999})",
                file=sys.stderr,
            )
            ok = False
        served, total = row.get("requests_served"), row.get("requests_total")
        if served is None or total is None or served > total:
            print(f"{tag}: served {served} exceeds total {total}", file=sys.stderr)
            ok = False
    return ok


def check_fig8_parallel(doc, floor):
    """Cross-thread determinism identity, plus the scaling floor when the
    regenerating host has enough CPUs to make the measurement meaningful."""
    ok = True
    by_case = {}
    for row in doc.get("rows", []):
        by_case.setdefault(row.get("case"), []).append(row)
    for case, rows in sorted(by_case.items()):
        serial = [r for r in rows if r.get("threads") == 1]
        if len(serial) != 1:
            print(f"fig8 case {case}: expected exactly one threads=1 row, "
                  f"got {len(serial)}", file=sys.stderr)
            ok = False
            continue
        base = serial[0]
        for row in rows:
            for key in FIG8_DETERMINISTIC_KEYS:
                if row.get(key) != base.get(key):
                    print(
                        f"fig8 case {case}: threads={row.get('threads')} "
                        f"{key} {row.get(key)} diverges from the serial "
                        f"run's {base.get(key)} — parallel rounds changed "
                        f"a deterministic result",
                        file=sys.stderr,
                    )
                    ok = False
    floor_rows = [r for r in doc.get("rows", [])
                  if r.get("case") == "large" and r.get("threads") == 4]
    if not floor_rows:
        print("fig8: no large/threads=4 row to hold the speedup floor "
              "against", file=sys.stderr)
        ok = False
    for row in floor_rows:
        cpus = row.get("host_cpus") or 0
        if cpus < 4:
            print(
                f"fig8: WARNING — regenerating host has only {cpus} CPU(s); "
                f"skipping the {floor}x speedup floor (determinism identity "
                f"was still enforced). Re-run on a >= 4 CPU machine to "
                f"measure scaling.",
                file=sys.stderr,
            )
            continue
        speedup = row.get("speedup")
        if speedup is None or speedup < floor:
            print(
                f"fig8: large-case speedup at 4 threads is {speedup}, below "
                f"the {floor}x floor on a {cpus}-CPU host — parallel rounds "
                f"are not paying off",
                file=sys.stderr,
            )
            ok = False
    return ok


def main(argv):
    floor = DEFAULT_SPEEDUP_FLOOR
    only = None
    dirs = []
    for arg in argv[1:]:
        if arg.startswith("--speedup-floor="):
            floor = float(arg.split("=", 1)[1])
        elif arg.startswith("--only="):
            only = arg.split("=", 1)[1]
        else:
            dirs.append(Path(arg))
    if len(dirs) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_dir, regen_dir = dirs

    status = 0
    baselines = sorted(baseline_dir.glob("*.json"))
    if only is not None:
        # Exact name (with or without .json) wins; otherwise any unique-enough
        # prefix works, mirroring `hbft_cli bench --only=...`.
        exact = [b for b in baselines
                 if b.name == only or b.name == f"{only}.json"]
        baselines = exact or [b for b in baselines if b.name.startswith(only)]
        if not baselines:
            print(f"no baseline matching {only} under {baseline_dir}", file=sys.stderr)
            return 2
    if not baselines:
        print(f"no baseline artifacts under {baseline_dir}", file=sys.stderr)
        return 2
    for baseline in baselines:
        name = baseline.name
        regen = regen_dir / name
        if not regen.exists():
            print(f"missing regenerated artifact: {regen}", file=sys.stderr)
            status = 1
            continue
        if name in VOLATILE_ARTIFACTS:
            base_doc = json.loads(baseline.read_text())
            regen_doc = json.loads(regen.read_text())
            if strip_volatile(base_doc) != strip_volatile(regen_doc):
                print(f"bench baseline drift in {name} (deterministic fields):")
                show_diff(name, render(strip_volatile(base_doc)),
                          render(strip_volatile(regen_doc)))
                status = 1
            if name == "fig6_throughput.json" and not check_fig6_speedup(regen_doc, floor):
                status = 1
            if name == "fig7_fleet.json" and not check_fig7_sanity(regen_doc):
                status = 1
            if name == "fig8_parallel.json" and not check_fig8_parallel(regen_doc, floor):
                status = 1
        else:
            base_text = baseline.read_text()
            regen_text = regen.read_text()
            if base_text != regen_text:
                print(f"bench baseline drift in {name}:")
                show_diff(name, base_text.splitlines(keepends=True),
                          regen_text.splitlines(keepends=True))
                status = 1
    if status == 0:
        print(f"{len(baselines)} bench artifact(s) match the committed baselines")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
