#!/usr/bin/env python3
"""Client for the `hbft_cli serve` wire protocol.

Speaks the length-prefixed request/response framing of src/serve/wire.hpp:

    frame  := u32le body_len | body
    body   := u8 type (1=request, 2=response)
            | u8 flags (bit0 = resend)
            | u64le client_id
            | u64le seq
            | u32le payload_len
            | payload

The client numbers requests 1..N, pipelines up to a window of them, and
treats a received response for seq S as the server's commitment: under the
serve subsystem's output-commit rule, a response is only released once the
backup has acknowledged everything the response depends on, so an
acknowledged write survives a primary failure.

Failover behaviour: when the connection dies (the primary was killed), the
client reconnects — retrying until the promoted backup takes over the
listener — and resends every unacknowledged request with the resend flag.
Responses are deduplicated by seq (a promoted backup may re-transmit an
uncertain echo; that is the paper's P7, not an error).

Usable as a library (ServeClient) or a CLI:

    tools/serve_client.py --port=7070 --count=32 --payload-bytes=64 \
        --timeout=60 --json
"""

import argparse
import json
import os
import socket
import struct
import sys
import time

FRAME_REQUEST = 1
FRAME_RESPONSE = 2
FLAG_RESEND = 0x01
MAX_PAYLOAD = 256 - 18  # NIC packet budget minus the "SV" request header.
HEADER = struct.Struct("<BBQQI")  # type, flags, client_id, seq, payload_len


def encode_frame(ftype, flags, client_id, seq, payload):
    body = HEADER.pack(ftype, flags, client_id, seq, len(payload)) + payload
    return struct.pack("<I", len(body)) + body


def decode_body(body):
    if len(body) < HEADER.size:
        raise ValueError("short frame body: %d bytes" % len(body))
    ftype, flags, client_id, seq, payload_len = HEADER.unpack(body[: HEADER.size])
    payload = body[HEADER.size :]
    if len(payload) != payload_len:
        raise ValueError("payload length mismatch: %d != %d" % (len(payload), payload_len))
    return ftype, flags, client_id, seq, payload


def request_payload(client_id, seq, payload_bytes):
    """Deterministic per-seq payload, so echo verification is self-contained."""
    stem = ("c%d-s%d-" % (client_id, seq)).encode()
    pad = b"x" * max(0, payload_bytes - len(stem))
    return (stem + pad)[:MAX_PAYLOAD]


class ServeClient:
    def __init__(self, host, port, client_id=None, payload_bytes=48):
        self.host = host
        self.port = port
        self.client_id = client_id if client_id is not None else (os.getpid() << 16) | 1
        self.payload_bytes = payload_bytes
        self.sock = None
        self.rxbuf = b""
        self.unacked = {}  # seq -> payload sent
        self.acked = set()
        self.duplicates = 0
        self.reconnects = 0
        self.mismatches = 0

    # -- connection management -------------------------------------------------

    def connect(self, deadline):
        """(Re)connects, retrying until `deadline`; resends unacked requests."""
        first = self.sock is None and self.reconnects == 0
        self.close()
        while time.monotonic() < deadline:
            try:
                s = socket.create_connection((self.host, self.port), timeout=1.0)
                s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                s.settimeout(0.25)
                self.sock = s
                self.rxbuf = b""
                if not first:
                    self.reconnects += 1
                    self._resend_unacked()
                return True
            except OSError:
                time.sleep(0.1)
        return False

    def close(self):
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    def _resend_unacked(self):
        for seq in sorted(self.unacked):
            frame = encode_frame(
                FRAME_REQUEST, FLAG_RESEND, self.client_id, seq, self.unacked[seq]
            )
            self.sock.sendall(frame)

    # -- request/response ------------------------------------------------------

    def send(self, seq):
        payload = request_payload(self.client_id, seq, self.payload_bytes)
        self.unacked[seq] = payload
        self.sock.sendall(encode_frame(FRAME_REQUEST, 0, self.client_id, seq, payload))

    def _feed(self, data):
        self.rxbuf += data
        frames = []
        while len(self.rxbuf) >= 4:
            (body_len,) = struct.unpack("<I", self.rxbuf[:4])
            if len(self.rxbuf) < 4 + body_len:
                break
            frames.append(self.rxbuf[4 : 4 + body_len])
            self.rxbuf = self.rxbuf[4 + body_len :]
        return frames

    def poll_responses(self):
        """Reads whatever is available; returns False when the connection died."""
        try:
            data = self.sock.recv(65536)
        except socket.timeout:
            return True
        except OSError:
            return False
        if not data:
            return False
        for body in self._feed(data):
            ftype, _flags, client_id, seq, payload = decode_body(body)
            if ftype != FRAME_RESPONSE or client_id != self.client_id:
                continue
            if seq in self.acked:
                self.duplicates += 1  # P7 uncertain-echo replay: benign.
                continue
            expect = self.unacked.get(seq)
            if expect is not None and payload != expect:
                self.mismatches += 1
            self.acked.add(seq)
            self.unacked.pop(seq, None)
        return True

    # -- driver ----------------------------------------------------------------

    def run(self, count, timeout_s, window=4, on_progress=None):
        """Sends `count` requests, surviving reconnects; True iff all acked."""
        deadline = time.monotonic() + timeout_s
        if not self.connect(deadline):
            return False
        next_seq = 1
        while len(self.acked) < count and time.monotonic() < deadline:
            try:
                while next_seq <= count and len(self.unacked) < window:
                    self.send(next_seq)
                    next_seq += 1
                alive = self.poll_responses()
            except OSError:
                alive = False
            if not alive:
                if not self.connect(deadline):
                    return False
                # Requests never sent are sent fresh by the loop above.
            if on_progress:
                on_progress(self)
        return len(self.acked) >= count

    def summary(self):
        return {
            "client_id": self.client_id,
            "acked": len(self.acked),
            "duplicates": self.duplicates,
            "reconnects": self.reconnects,
            "mismatches": self.mismatches,
        }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--count", type=int, default=16, help="requests to send")
    parser.add_argument("--payload-bytes", type=int, default=48)
    parser.add_argument("--window", type=int, default=4, help="max requests in flight")
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--client-id", type=int, default=None)
    parser.add_argument("--json", action="store_true", help="JSON summary on stdout")
    args = parser.parse_args()

    client = ServeClient(args.host, args.port, args.client_id, args.payload_bytes)
    ok = client.run(args.count, args.timeout, args.window)
    client.close()
    summary = client.summary()
    summary["ok"] = ok
    summary["sent"] = args.count
    if args.json:
        json.dump(summary, sys.stdout)
        sys.stdout.write("\n")
    else:
        print(
            "serve_client: %s acked=%d/%d duplicates=%d reconnects=%d mismatches=%d"
            % (
                "OK" if ok else "FAIL",
                summary["acked"],
                args.count,
                summary["duplicates"],
                summary["reconnects"],
                summary["mismatches"],
            )
        )
    return 0 if ok and summary["mismatches"] == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
