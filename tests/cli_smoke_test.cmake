# Smoke test for the hbft_cli scenario driver, run via `cmake -P`.
# Checks that `run`, `drill`, and `bench --quick` exit 0 and that their
# reports contain the expected fields / artifacts.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_cli out_var)
  execute_process(COMMAND ${HBFT_CLI} ${ARGN}
                  WORKING_DIRECTORY ${WORK_DIR}
                  OUTPUT_VARIABLE output
                  ERROR_VARIABLE output
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hbft_cli ${ARGN} exited ${rc}:\n${output}")
  endif()
  set(${out_var} "${output}" PARENT_SCOPE)
endfunction()

function(expect_field output field)
  if(NOT output MATCHES "${field}")
    message(FATAL_ERROR "expected field '${field}' missing from report:\n${output}")
  endif()
endfunction()

# --- run: bare vs replicated comparison report ------------------------------
run_cli(run_out run --workload=txnlog --iterations=6 --epoch-length=4096 --variant=new)
expect_field("${run_out}" "workload")
expect_field("${run_out}" "completed")
expect_field("${run_out}" "normalized_performance")
expect_field("${run_out}" "guest_checksum")

# --- run --mode=bare: no replication ----------------------------------------
run_cli(bare_out run --workload=cpu --iterations=2000 --mode=bare)
expect_field("${bare_out}" "completed[ =:]+yes")

# --- run --fail-at: failure injection through the run subcommand ------------
run_cli(fail_out run --workload=txnlog --iterations=6 --fail-at=after-send-tme --fail-epoch=2)
expect_field("${fail_out}" "promoted[ =:]+yes")

# --- drill: primary-kill failover with promotion-latency report -------------
run_cli(drill_out drill --variant=new)
expect_field("${drill_out}" "promoted[ =:]+yes")
expect_field("${drill_out}" "promotion_latency")
expect_field("${drill_out}" "crash_time")
expect_field("${drill_out}" "detection")
run_cli(drill_old_out drill --variant=old --epoch-length=2048)
expect_field("${drill_old_out}" "promoted[ =:]+yes")

# --- drill --repair: kill -> resync (live state transfer) -> kill again -----
run_cli(repair_out drill --repair)
expect_field("${repair_out}" "takeovers[ =:]+2")
expect_field("${repair_out}" "resync_completed[ =:]+yes")
expect_field("${repair_out}" "resync_latency_ms")
expect_field("${repair_out}" "resync_bytes")
expect_field("${repair_out}" "verdict[ =:]+PASS")

# --- run --json: machine-readable report with a fail->rejoin schedule --------
run_cli(json_out run --workload=txnlog --iterations=12 --json
        --fail=phase=after-send-tme,epoch=2 --fail=rejoin-after-ms=10)
expect_field("${json_out}" "\"normalized_performance\"")
expect_field("${json_out}" "\"env_consistency\": true")
expect_field("${json_out}" "\"resyncs\"")
expect_field("${json_out}" "\"completed\": true")

# --- drill --backups=2: cascading failover through a backup chain -----------
run_cli(cascade_out drill --backups=2 --fail=time-ms=6
        --fail=phase=after-io-issue,crash-io=not-performed)
expect_field("${cascade_out}" "takeovers[ =:]+2")
expect_field("${cascade_out}" "promotion_latency_ms_stage2")
expect_field("${cascade_out}" "verdict[ =:]+PASS")
run_cli(cascade_default_out drill --backups=2 --variant=new)
expect_field("${cascade_default_out}" "takeovers[ =:]+2")
expect_field("${cascade_default_out}" "verdict[ =:]+PASS")

# --- run --backups=2: chain without failures, N'/N + consistency ------------
run_cli(chain_run_out run --workload=txnlog --iterations=6 --backups=2)
expect_field("${chain_run_out}" "replicas[ =:]+3")
expect_field("${chain_run_out}" "disk_consistency[ =:]+ok")

# --- net-echo: NIC scenario through the run subcommand -----------------------
run_cli(net_out run --workload=net-echo --iterations=3)
expect_field("${net_out}" "workload[ =:]+net-echo")
expect_field("${net_out}" "completed[ =:]+yes")
expect_field("${net_out}" "env_consistency[ =:]+ok")

# --- net-echo failover: NIC covered by P6/P7 ---------------------------------
run_cli(net_fail_out run --workload=net-echo --iterations=3
        --fail=phase=after-io-issue,crash-io=not-performed)
expect_field("${net_fail_out}" "promoted[ =:]+yes")
expect_field("${net_fail_out}" "env_consistency[ =:]+ok")

# --- device fault-plan knobs: retry-after-uncertain on both legacy devices ---
run_cli(faults_out run --workload=txnlog --iterations=6 --disk-uncertain=0.3
        --console-uncertain=0.3 --uncertain-performed=0.5 --mode=replicated)
expect_field("${faults_out}" "completed[ =:]+yes")

# --- net-echo drill: promotion report over the three-device workload ---------
run_cli(net_drill_out drill --workload=net-echo)
expect_field("${net_drill_out}" "promoted[ =:]+yes")
expect_field("${net_drill_out}" "verdict[ =:]+PASS")

# --- help + enum discoverability --------------------------------------------
run_cli(help_out help)
expect_field("${help_out}" "usage: hbft_cli")
run_cli(workloads_out --list-workloads)
expect_field("${workloads_out}" "txnlog")
expect_field("${workloads_out}" "diskread")
run_cli(phases_out help --list-phases)
expect_field("${phases_out}" "after-send-tme")
expect_field("${phases_out}" "before-io-issue")

# --- fleet: chains across hosts, host failure, failover + repair ------------
run_cli(fleet_out fleet --chains=4 --hosts=4 --requests=3 --fail=host-0,time-ms=120)
expect_field("${fleet_out}" "chains completed[ =:]+4/4")
expect_field("${fleet_out}" "chains lost[ =:]+0")
expect_field("${fleet_out}" "env consistent[ =:]+yes")
expect_field("${fleet_out}" "healthy[ =:]+yes")
run_cli(fleet_json_out fleet --chains=2 --hosts=2 --requests=2 --no-verify --json)
expect_field("${fleet_json_out}" "\"availability\"")
expect_field("${fleet_json_out}" "\"fingerprint\"")
expect_field("${fleet_json_out}" "\"healthy\": true")

# Parallel rounds keep the text report byte-identical to the serial path.
run_cli(fleet_serial_out fleet --chains=4 --hosts=4 --requests=3 --fail=host-0,time-ms=120)
run_cli(fleet_par_out fleet --chains=4 --hosts=4 --requests=3 --fail=host-0,time-ms=120 --threads=4)
if(NOT fleet_par_out STREQUAL fleet_serial_out)
  message(FATAL_ERROR "fleet --threads=4 report differs from serial:\n--- serial ---\n${fleet_serial_out}\n--- threads=4 ---\n${fleet_par_out}")
endif()
execute_process(COMMAND ${HBFT_CLI} fleet --chains=2 --hosts=2 --threads=0
                ERROR_VARIABLE threads_err RESULT_VARIABLE threads_rc OUTPUT_QUIET)
if(threads_rc EQUAL 0)
  message(FATAL_ERROR "fleet --threads=0 unexpectedly succeeded")
endif()
if(NOT threads_err MATCHES "--threads must be >= 1")
  message(FATAL_ERROR "fleet --threads=0 missing validation message:\n${threads_err}")
endif()

# --- bench: JSON artifacts under bench/ -------------------------------------
run_cli(bench_out bench --quick --out-dir=${WORK_DIR}/bench)
foreach(artifact table1.json fig2_cpu.json fig3_io.json fig4_faster_comm.json
        fig4_lossy_link.json fig5_resync.json fig6_throughput.json fig7_fleet.json
        fig8_parallel.json)
  if(NOT EXISTS ${WORK_DIR}/bench/${artifact})
    message(FATAL_ERROR "bench artifact missing: ${WORK_DIR}/bench/${artifact}\n${bench_out}")
  endif()
endforeach()
file(READ ${WORK_DIR}/bench/table1.json table1)
if(NOT table1 MATCHES "\"workload\"" OR NOT table1 MATCHES "\"np\"")
  message(FATAL_ERROR "table1.json missing expected keys:\n${table1}")
endif()

# --- serve: help text, flag validation, and a short sessionless run ---------
run_cli(help_out help)
expect_field("${help_out}" "serve")
expect_field("${help_out}" "--repl-port")
expect_field("${help_out}" "--backup-wait-ms")

# serve refuses the original variant: output commit at the socket boundary
# is the serving contract.
execute_process(COMMAND ${HBFT_CLI} serve --variant=old --port=1
                ERROR_VARIABLE variant_err RESULT_VARIABLE variant_rc)
if(variant_rc EQUAL 0)
  message(FATAL_ERROR "serve --variant=old unexpectedly succeeded")
endif()
if(NOT variant_err MATCHES "output commit")
  message(FATAL_ERROR "serve --variant=old missing contract message:\n${variant_err}")
endif()

# A short clientless session exits cleanly with a complete JSON report.
run_cli(serve_out serve --port=28471 --duration-ms=400 --json)
expect_field("${serve_out}" "\"command\": \"serve\"")
expect_field("${serve_out}" "\"stop_reason\": \"duration\"")
expect_field("${serve_out}" "\"completed\": true")
expect_field("${serve_out}" "\"channels\"")

# --- bench --only: single-artifact regeneration ------------------------------
run_cli(only_out bench --quick --only=fig7_fleet --out-dir=${WORK_DIR}/bench-only)
if(NOT EXISTS ${WORK_DIR}/bench-only/fig7_fleet.json)
  message(FATAL_ERROR "bench --only=fig7_fleet wrote no artifact\n${only_out}")
endif()
if(EXISTS ${WORK_DIR}/bench-only/table1.json)
  message(FATAL_ERROR "bench --only=fig7_fleet also wrote table1.json")
endif()

# Unique prefixes resolve too: --only=fig8 selects fig8_parallel.
run_cli(only8_out bench --quick --only=fig8 --out-dir=${WORK_DIR}/bench-only8)
if(NOT EXISTS ${WORK_DIR}/bench-only8/fig8_parallel.json)
  message(FATAL_ERROR "bench --only=fig8 wrote no artifact\n${only8_out}")
endif()
if(EXISTS ${WORK_DIR}/bench-only8/fig7_fleet.json)
  message(FATAL_ERROR "bench --only=fig8 also wrote fig7_fleet.json")
endif()

message(STATUS "cli smoke test passed")
