// Machine (virtual processor) tests: instruction semantics, privilege
// enforcement, traps, virtual memory, the recovery counter, the
// branch-and-link privilege quirk, and idle-loop fast-forward exactness.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "machine/machine.hpp"

namespace hbft {
namespace {

// Assembles and runs `source` on a bare (kDirect) machine until HALT or the
// instruction limit; returns the machine for inspection.
std::unique_ptr<Machine> RunBareProgram(const std::string& source, uint64_t limit = 100000,
                                        ExitKind expected = ExitKind::kHalt) {
  auto assembled = Assemble(source);
  EXPECT_TRUE(assembled.ok()) << (assembled.ok() ? "" : assembled.error().ToString());
  MachineConfig config;
  config.trap_mode = TrapMode::kDirect;
  auto machine = std::make_unique<Machine>(config);
  machine->LoadImage(assembled.value());
  machine->cpu().pc = 0;
  MachineExit exit = machine->Run(limit);
  EXPECT_EQ(exit.kind, expected) << "cause=" << TrapCauseName(exit.cause) << " pc=" << exit.pc;
  return machine;
}

TEST(MachineAlu, ArithmeticAndLogic) {
  auto m = RunBareProgram(R"(
    li r1, 7
    li r2, 5
    add r3, r1, r2      ; 12
    sub r4, r1, r2      ; 2
    mul r5, r1, r2      ; 35
    div r6, r1, r2      ; 1
    rem r7, r1, r2      ; 2
    and r8, r1, r2      ; 5
    or r9, r1, r2       ; 7
    xor r10, r1, r2     ; 2
    halt
  )");
  EXPECT_EQ(m->cpu().gpr[3], 12u);
  EXPECT_EQ(m->cpu().gpr[4], 2u);
  EXPECT_EQ(m->cpu().gpr[5], 35u);
  EXPECT_EQ(m->cpu().gpr[6], 1u);
  EXPECT_EQ(m->cpu().gpr[7], 2u);
  EXPECT_EQ(m->cpu().gpr[8], 5u);
  EXPECT_EQ(m->cpu().gpr[9], 7u);
  EXPECT_EQ(m->cpu().gpr[10], 2u);
}

TEST(MachineAlu, SignedOperations) {
  auto m = RunBareProgram(R"(
    li r1, 0xFFFFFFF8   ; -8
    li r2, 3
    div r3, r1, r2      ; -2
    rem r4, r1, r2      ; -2
    sra r5, r1, r2      ; -1
    srl r6, r1, r2      ; 0x1FFFFFFF
    slt r7, r1, r2      ; 1 (signed)
    sltu r8, r1, r2     ; 0 (unsigned)
    halt
  )");
  EXPECT_EQ(static_cast<int32_t>(m->cpu().gpr[3]), -2);
  EXPECT_EQ(static_cast<int32_t>(m->cpu().gpr[4]), -2);
  EXPECT_EQ(static_cast<int32_t>(m->cpu().gpr[5]), -1);
  EXPECT_EQ(m->cpu().gpr[6], 0x1FFFFFFFu);
  EXPECT_EQ(m->cpu().gpr[7], 1u);
  EXPECT_EQ(m->cpu().gpr[8], 0u);
}

TEST(MachineAlu, R0IsHardwiredZero) {
  auto m = RunBareProgram(R"(
    li r1, 99
    add zero, r1, r1
    addi zero, zero, 55
    halt
  )");
  EXPECT_EQ(m->cpu().gpr[0], 0u);
}

TEST(MachineAlu, IntMinDivMinusOneDefined) {
  auto m = RunBareProgram(R"(
    li r1, 0x80000000
    li r2, 0xFFFFFFFF
    div r3, r1, r2
    rem r4, r1, r2
    halt
  )");
  EXPECT_EQ(m->cpu().gpr[3], 0x80000000u);
  EXPECT_EQ(m->cpu().gpr[4], 0u);
}

TEST(MachineMemory, LoadStoreWidthsAndSignExtension) {
  auto m = RunBareProgram(R"(
    li r1, 0x1000
    li r2, 0xFFFFFF80   ; low byte 0x80
    sb r2, 0(r1)
    lb r3, 0(r1)        ; sign-extends to 0xFFFFFF80
    lbu r4, 0(r1)       ; 0x80
    li r2, 0xFFFF8001
    sh r2, 4(r1)
    lh r5, 4(r1)        ; 0xFFFF8001
    lhu r6, 4(r1)       ; 0x8001
    li r2, 0xCAFEBABE
    sw r2, 8(r1)
    lw r7, 8(r1)
    halt
  )");
  EXPECT_EQ(m->cpu().gpr[3], 0xFFFFFF80u);
  EXPECT_EQ(m->cpu().gpr[4], 0x80u);
  EXPECT_EQ(m->cpu().gpr[5], 0xFFFF8001u);
  EXPECT_EQ(m->cpu().gpr[6], 0x8001u);
  EXPECT_EQ(m->cpu().gpr[7], 0xCAFEBABEu);
}

// ---------------------------------------------------------------------------
// Property sweep: every R-type ALU instruction against a host-side oracle
// over boundary-heavy operand patterns.
// ---------------------------------------------------------------------------

uint32_t AluOracle(Opcode op, uint32_t a, uint32_t b) {
  int32_t sa = static_cast<int32_t>(a);
  int32_t sb = static_cast<int32_t>(b);
  switch (op) {
    case Opcode::kAdd:
      return a + b;
    case Opcode::kSub:
      return a - b;
    case Opcode::kAnd:
      return a & b;
    case Opcode::kOr:
      return a | b;
    case Opcode::kXor:
      return a ^ b;
    case Opcode::kSll:
      return a << (b & 31);
    case Opcode::kSrl:
      return a >> (b & 31);
    case Opcode::kSra:
      return static_cast<uint32_t>(sa >> (b & 31));
    case Opcode::kSlt:
      return sa < sb ? 1 : 0;
    case Opcode::kSltu:
      return a < b ? 1 : 0;
    case Opcode::kMul:
      return static_cast<uint32_t>(static_cast<uint64_t>(a) * b);
    case Opcode::kDiv:
      if (b == 0) {
        return 0;  // Trap case, handled separately.
      }
      if (sa == INT32_MIN && sb == -1) {
        return static_cast<uint32_t>(INT32_MIN);
      }
      return static_cast<uint32_t>(sa / sb);
    case Opcode::kRem:
      if (b == 0) {
        return 0;
      }
      if (sa == INT32_MIN && sb == -1) {
        return 0;
      }
      return static_cast<uint32_t>(sa % sb);
    default:
      ADD_FAILURE() << "not an ALU op";
      return 0;
  }
}

class AluOracleSweep : public testing::TestWithParam<Opcode> {};

TEST_P(AluOracleSweep, MatchesHostArithmetic) {
  Opcode op = GetParam();
  const uint32_t patterns[] = {0,          1,          2,          31,        32,
                               0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 0xDEADBEEF, 0x00010000,
                               0xFFFF0000, 7};
  MachineConfig config;
  for (uint32_t a : patterns) {
    for (uint32_t b : patterns) {
      if ((op == Opcode::kDiv || op == Opcode::kRem) && b == 0) {
        continue;  // Divide-by-zero traps; covered elsewhere.
      }
      Machine machine(config);
      machine.memory().Write32(0, EncodeR(op, 3, 1, 2));
      machine.memory().Write32(4, EncodeR(Opcode::kHalt, 0, 0, 0));
      machine.cpu().set_gpr(1, a);
      machine.cpu().set_gpr(2, b);
      machine.cpu().pc = 0;
      MachineExit exit = machine.Run(10);
      ASSERT_EQ(exit.kind, ExitKind::kHalt);
      EXPECT_EQ(machine.cpu().gpr[3], AluOracle(op, a, b))
          << MnemonicFor(op) << " a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRTypeAlu, AluOracleSweep,
                         testing::Values(Opcode::kAdd, Opcode::kSub, Opcode::kAnd, Opcode::kOr,
                                         Opcode::kXor, Opcode::kSll, Opcode::kSrl, Opcode::kSra,
                                         Opcode::kSlt, Opcode::kSltu, Opcode::kMul, Opcode::kDiv,
                                         Opcode::kRem),
                         [](const testing::TestParamInfo<Opcode>& param_info) {
                           return std::string(MnemonicFor(param_info.param));
                         });

TEST(MachineTrap, DivideByZeroVectorsToGuest) {
  auto m = RunBareProgram(R"(
    la r1, handler
    mtcr tvec, r1
    li r2, 4
    li r3, 0
    div r4, r2, r3       ; traps
    halt                 ; skipped by handler redirect
handler:
    mfcr r5, ecause
    li r6, 1
    halt
  )");
  EXPECT_EQ(m->cpu().gpr[5], static_cast<uint32_t>(TrapCause::kDivideByZero));
  EXPECT_EQ(m->cpu().gpr[6], 1u);
}

TEST(MachineTrap, IllegalInstructionVectors) {
  auto assembled = Assemble(R"(
    la r1, handler
    mtcr tvec, r1
    .word 0xA8000000     ; opcode 0x2A: unassigned
    halt
handler:
    mfcr r5, ecause
    halt
  )");
  ASSERT_TRUE(assembled.ok());
  MachineConfig config;
  Machine machine(config);
  machine.LoadImage(assembled.value());
  machine.Run(1000);
  EXPECT_EQ(machine.cpu().gpr[5], static_cast<uint32_t>(TrapCause::kIllegalInstruction));
}

TEST(MachineTrap, UnalignedAccessVectors) {
  auto m = RunBareProgram(R"(
    la r1, handler
    mtcr tvec, r1
    li r2, 0x1001
    lw r3, 0(r2)         ; unaligned
    halt
handler:
    mfcr r5, ecause
    mfcr r6, evaddr
    halt
  )");
  EXPECT_EQ(m->cpu().gpr[5], static_cast<uint32_t>(TrapCause::kUnalignedAccess));
  EXPECT_EQ(m->cpu().gpr[6], 0x1001u);
}

// User mode requires translation (real mode is privileged): this prologue
// wires user-accessible identity TLB entries for the low pages, enables VM,
// and RFIs to `user` at privilege 3.
constexpr const char* kUserModePrologue = R"(
    la r1, handler
    mtcr tvec, r1
    li r2, 0
wire_loop:
    slli r3, r2, 12
    ori r4, r3, 0x1F     ; V|W|X|U|WIRED
    tlbi r3, r4
    addi r2, r2, 1
    li r5, 4
    bltu r2, r5, wire_loop
    li r1, 0x98          ; VM | prev_priv=3
    mtcr status, r1
    la r2, user
    mtcr epc, r2
    rfi
)";

TEST(MachinePrivilege, UserModeNeedsTranslation) {
  // With translation off, only privilege <= 1 may access memory: an RFI to
  // privilege 3 without enabling VM faults on the very first user fetch.
  auto m = RunBareProgram(R"(
    la r1, handler
    mtcr tvec, r1
    li r1, 0x18          ; prev_priv=3, VM still off
    mtcr status, r1
    la r2, user
    mtcr epc, r2
    rfi
user:
    nop
    halt
handler:
    mfcr r5, ecause
    halt
  )");
  EXPECT_EQ(m->cpu().gpr[5], static_cast<uint32_t>(TrapCause::kProtectionFault));
}

TEST(MachinePrivilege, UserCannotExecutePrivileged) {
  // Drop to privilege 3 via RFI, try MFCR, expect a privilege trap with the
  // correct previous-privilege bookkeeping.
  auto m = RunBareProgram(std::string(kUserModePrologue) + R"(
user:
    mfcr r3, tod         ; privileged at priv 3 -> trap
    halt
handler:
    mfcr r5, ecause
    mfcr r6, status
    halt
  )");
  EXPECT_EQ(m->cpu().gpr[5], static_cast<uint32_t>(TrapCause::kPrivilegeViolation));
  // Handler runs at privilege 0 with prev_priv=3 recorded.
  EXPECT_EQ(m->cpu().gpr[6] & StatusBits::kPrivMask, 0u);
  EXPECT_EQ((m->cpu().gpr[6] & StatusBits::kPrevPrivMask) >> StatusBits::kPrevPrivShift, 3u);
}

TEST(MachinePrivilege, JalDepositsPrivilegeInLink) {
  // At privilege 0 the low bits are 00; at privilege 3 they are 11 — the
  // PA-RISC branch-and-link behaviour of paper section 3.1.
  auto m = RunBareProgram(std::string("    jal r10, next0\nnext0:\n") + kUserModePrologue + R"(
user:
    jal r4, next3
next3:
    syscall 0
handler:
    halt
  )");
  EXPECT_EQ(m->cpu().gpr[10] & 3u, 0u);
  EXPECT_EQ(m->cpu().gpr[4] & 3u, 3u);
}

TEST(MachinePrivilege, JalrMasksLinkBitsOnUse) {
  auto m = RunBareProgram(std::string(kUserModePrologue) + R"(
user:
    call f              ; ra = return | 3
    li r9, 77           ; must execute after return
    syscall 0
f:
    ret                 ; jalr through ra: low bits masked
handler:
    halt
  )");
  EXPECT_EQ(m->cpu().gpr[9], 77u);
}

TEST(MachineVm, TranslationProtectionAndFaults) {
  auto m = RunBareProgram(R"(
    .equ PTBASE, 0x8000
    la r1, handler
    mtcr tvec, r1
    li r1, PTBASE
    mtcr ptbase, r1
    ; map vpn 0..3 identity kernel V|W|X, wire them
    li r2, 0
loop:
    slli r3, r2, 12
    ori r4, r3, 0x17     ; V|W|X|WIRED
    tlbi r3, r4
    slli r5, r2, 2
    add r5, r5, r1
    ori r6, r3, 7        ; PT entry: V|W|X
    sw r6, 0(r5)
    addi r2, r2, 1
    li r7, 4
    bltu r2, r7, loop
    ; enable VM
    mfcr r8, status
    ori r8, r8, 0x80
    mtcr status, r8
    ; mapped access works
    li r9, 0x2000
    li r10, 0x1234
    sw r10, 0(r9)
    lw r11, 0(r9)
    ; unmapped access: TLB miss trap
    li r12, 0x100000
    lw r13, 0(r12)
    halt
handler:
    mfcr r14, ecause
    mfcr r15, evaddr
    halt
  )");
  EXPECT_EQ(m->cpu().gpr[11], 0x1234u);
  EXPECT_EQ(m->cpu().gpr[14], static_cast<uint32_t>(TrapCause::kTlbMissLoad));
  EXPECT_EQ(m->cpu().gpr[15], 0x100000u);
}

TEST(MachineVm, ProbeChecksAccessWithoutFaulting) {
  auto m = RunBareProgram(R"(
    la r1, handler
    mtcr tvec, r1
    ; wire the code page (vpn 0) and a data mapping for vpn 2 (no user bit)
    li r2, 0
    li r3, 0x17          ; V|W|X|WIRED
    tlbi r2, r3
    li r2, 0x2000
    ori r3, r2, 0x17
    tlbi r2, r3
    mfcr r4, status
    ori r4, r4, 0x80
    mtcr status, r4
    probe r5, r2        ; kernel: readable -> 1
    halt
handler:
    halt
  )");
  EXPECT_EQ(m->cpu().gpr[5], 1u);
}

TEST(MachineVm, TrapStormCannotOutliveBudget) {
  // Enabling VM with no wired code page makes the very first fetch miss, and
  // the handler (same unmapped page) miss again: an endless storm on real
  // hardware. The emulator must still honour the instruction budget.
  auto assembled = Assemble(R"(
    la r1, handler
    mtcr tvec, r1
    mfcr r4, status
    ori r4, r4, 0x80
    mtcr status, r4      ; VM on, nothing wired
handler:
    halt
  )");
  ASSERT_TRUE(assembled.ok());
  MachineConfig config;
  Machine machine(config);
  machine.LoadImage(assembled.value());
  machine.cpu().pc = 0;
  MachineExit exit = machine.Run(5000);
  EXPECT_EQ(exit.kind, ExitKind::kLimit);
  EXPECT_GE(exit.executed, 5000u);
}

TEST(MachineRecovery, TrapsAfterExactInstructionCount) {
  auto assembled = Assemble(R"(
loop:
    addi r1, r1, 1
    j loop
  )");
  ASSERT_TRUE(assembled.ok());
  MachineConfig config;
  config.trap_mode = TrapMode::kHostFirst;
  Machine machine(config);
  machine.LoadImage(assembled.value());
  machine.cpu().pc = 0;
  machine.cpu().cr[kCrStatus] = 0;  // Real privilege 0 so nothing traps.
  machine.SetRecoveryCounter(100);
  machine.SetRctrEnabled(true);
  MachineExit exit = machine.Run(100000);
  EXPECT_EQ(exit.kind, ExitKind::kRecovery);
  EXPECT_EQ(exit.executed, 100u);
  EXPECT_EQ(machine.cpu().instret, 100u);

  // Epochs tile exactly: next epoch of 64 retires exactly 64 more.
  machine.SetRecoveryCounter(64);
  exit = machine.Run(100000);
  EXPECT_EQ(exit.kind, ExitKind::kRecovery);
  EXPECT_EQ(machine.cpu().instret, 164u);
}

TEST(MachineRecovery, HostSimulatedInstructionsCount) {
  MachineConfig config;
  Machine machine(config);
  machine.SetRecoveryCounter(2);
  machine.SetRctrEnabled(true);
  EXPECT_FALSE(machine.RetireSimulated(4));
  EXPECT_TRUE(machine.RetireSimulated(8));  // Second retire expires it.
  EXPECT_EQ(machine.cpu().pc, 8u);
  EXPECT_EQ(machine.cpu().instret, 2u);
}

TEST(MachineIdleSkip, ExactlyMatchesEmulation) {
  const char* source = R"(
    li r1, 0x2000       ; flag address (zero)
wait:
    lw r2, 0(r1)
    bnez r2, done
    j wait
done:
    halt
  )";
  auto assembled = Assemble(source);
  ASSERT_TRUE(assembled.ok());

  auto run = [&](bool configure_skip, uint64_t budget) {
    MachineConfig config;
    Machine machine(config);
    machine.LoadImage(assembled.value());
    machine.cpu().pc = 0;
    if (configure_skip) {
      uint32_t begin = assembled.value().SymbolOrDie("wait");
      uint32_t end = assembled.value().SymbolOrDie("done");
      machine.ConfigureIdleLoop(begin, end);
    }
    MachineExit exit = machine.Run(budget);
    return std::make_tuple(exit.kind, exit.executed, machine.cpu().instret, machine.cpu().pc);
  };

  for (uint64_t budget : {7ull, 100ull, 1001ull, 99998ull}) {
    auto slow = run(false, budget);
    auto fast = run(true, budget);
    EXPECT_EQ(slow, fast) << "budget " << budget;
  }
}

TEST(MachineIdleSkip, StopsAtRecoveryBoundary) {
  auto assembled = Assemble(R"(
    li r1, 0x2000
wait:
    lw r2, 0(r1)
    bnez r2, done
    j wait
done:
    halt
  )");
  ASSERT_TRUE(assembled.ok());
  MachineConfig config;
  config.trap_mode = TrapMode::kHostFirst;
  Machine machine(config);
  machine.LoadImage(assembled.value());
  machine.cpu().pc = 0;
  machine.ConfigureIdleLoop(assembled.value().SymbolOrDie("wait"),
                            assembled.value().SymbolOrDie("done"));
  machine.SetRecoveryCounter(5000);
  machine.SetRctrEnabled(true);
  MachineExit exit = machine.Run(1000000);
  EXPECT_EQ(exit.kind, ExitKind::kRecovery);
  EXPECT_EQ(machine.cpu().instret, 5000u);
  EXPECT_GT(machine.idle_skipped_instructions(), 0u);
}

TEST(MachineIdleSkip, WakesOnInterrupt) {
  auto assembled = Assemble(R"(
    la r1, handler
    mtcr tvec, r1
    mfcr r2, status
    ori r2, r2, 4        ; enable interrupts
    mtcr status, r2
    li r1, 0x2000
wait:
    lw r2, 0(r1)
    bnez r2, wait_done
    j wait
wait_done:
    halt
handler:
    li r9, 42
    halt
  )");
  ASSERT_TRUE(assembled.ok());
  MachineConfig config;
  Machine machine(config);
  machine.LoadImage(assembled.value());
  machine.cpu().pc = 0;
  machine.ConfigureIdleLoop(assembled.value().SymbolOrDie("wait"),
                            assembled.value().SymbolOrDie("wait_done"));
  // Run a while (spinning), then raise an interrupt: the machine must vector.
  MachineExit exit = machine.Run(10000);
  EXPECT_EQ(exit.kind, ExitKind::kLimit);
  machine.RaiseIrq(kIrqTimer);
  exit = machine.Run(10000);
  EXPECT_EQ(exit.kind, ExitKind::kHalt);
  EXPECT_EQ(machine.cpu().gpr[9], 42u);
}

TEST(MachineFingerprint, SensitiveToStateChanges) {
  MachineConfig config;
  Machine a(config);
  Machine b(config);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  b.cpu().set_gpr(5, 1);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  b.cpu().set_gpr(5, 0);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  b.memory().Write8(0x123, 7);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(MachineFingerprint, EnvironmentRegistersExcluded) {
  MachineConfig config;
  Machine a(config);
  Machine b(config);
  b.cpu().cr[kCrTod] = 999;
  b.cpu().cr[kCrItmr] = 123;
  b.cpu().cr[kCrPrid] = 7;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  b.cpu().cr[kCrEpc] = 0x44;  // Coordinated register: must matter.
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(MachineTrace, RecordsRecentInstructionsInOrder) {
  auto assembled = Assemble(R"(
    li r1, 1
    li r2, 2
    add r3, r1, r2
    halt
  )");
  ASSERT_TRUE(assembled.ok());
  MachineConfig config;
  Machine machine(config);
  machine.LoadImage(assembled.value());
  machine.cpu().pc = 0;
  machine.EnableTrace(16);
  machine.Run(100);
  auto trace = machine.RecentTrace();
  ASSERT_EQ(trace.size(), 6u);  // 2x li (2 instructions each) + add + halt.
  EXPECT_NE(trace[4].find("add r3, r1, r2"), std::string::npos);
  EXPECT_NE(trace[5].find("halt"), std::string::npos);
  EXPECT_EQ(trace[0].substr(0, 8), "00000000");
}

TEST(MachineTrace, RingBufferKeepsOnlyLastN) {
  auto assembled = Assemble(R"(
    li r1, 10
loop:
    addi r1, r1, -1
    bnez r1, loop
    halt
  )");
  ASSERT_TRUE(assembled.ok());
  MachineConfig config;
  Machine machine(config);
  machine.LoadImage(assembled.value());
  machine.cpu().pc = 0;
  machine.EnableTrace(4);
  machine.Run(1000);
  auto trace = machine.RecentTrace();
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_NE(trace[3].find("halt"), std::string::npos);  // Newest last.
}

TEST(MachineMmio, DirectModeExitsForDeviceAccess) {
  auto assembled = Assemble(R"(
    li r1, 0xF0000000
    li r2, 3
    sw r2, 8(r1)
    halt
  )");
  ASSERT_TRUE(assembled.ok());
  MachineConfig config;
  Machine machine(config);
  machine.LoadImage(assembled.value());
  machine.cpu().pc = 0;
  MachineExit exit = machine.Run(100);
  EXPECT_EQ(exit.kind, ExitKind::kMmio);
  EXPECT_TRUE(exit.mmio_is_store);
  EXPECT_EQ(exit.mmio_paddr, kDiskMmioBase + kDiskRegBlock);
  EXPECT_EQ(exit.mmio_value, 3u);
}

TEST(MachineMmio, UserModeMmioIsProtectionFault) {
  auto m = RunBareProgram(R"(
    la r1, handler
    mtcr tvec, r1
    li r1, 0x18
    mtcr status, r1
    la r2, user
    mtcr epc, r2
    rfi
user:
    li r3, 0xF0000000
    lw r4, 0(r3)        ; priv 3 + VM off -> protection fault
    halt
handler:
    mfcr r5, ecause
    halt
  )");
  EXPECT_EQ(m->cpu().gpr[5], static_cast<uint32_t>(TrapCause::kProtectionFault));
}

}  // namespace
}  // namespace hbft
