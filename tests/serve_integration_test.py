#!/usr/bin/env python3
"""Integration test for `hbft_cli serve`: real sockets, real processes.

Usage: serve_integration_test.py <path-to-hbft_cli>

Three phases:
  1. Single-process serve: a client commits writes through the full
     simulated chain and every echo matches.
  2. Single-process failover (--fail=time-ms=...): the primary replica is
     killed in-simulation mid-traffic; the backup promotes and the session
     report says so; the client loses nothing.
  3. Multi-process: --role=primary and --role=backup processes joined by a
     real TCP replication link. The primary is SIGKILLed mid-traffic; the
     backup detects the dead socket, promotes via the failure detector,
     rebinds the client port, and the client finishes with zero lost
     acknowledged writes.

The test is its own client (tools/serve_client.py is imported), so the
acknowledged-write ledger lives in-process and the assertions are exact.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "tools"))
from serve_client import ServeClient  # noqa: E402


def free_port():
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


def fail(msg):
    print("FAIL:", msg)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


def wait_listening(port, timeout_s):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port), timeout=0.5).close()
            return True
        except OSError:
            time.sleep(0.1)
    return False


def finish(proc, timeout_s, name):
    try:
        out, err = proc.communicate(timeout=timeout_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        out, err = proc.communicate()
        fail("%s did not exit in %ss; stderr:\n%s" % (name, timeout_s, err))
    return out, err


def parse_report(out, err, name):
    try:
        return json.loads(out)
    except ValueError:
        fail("%s produced unparseable JSON: %r\nstderr:\n%s" % (name, out[:500], err))


def phase_single(cli):
    port = free_port()
    server = subprocess.Popen(
        [cli, "serve", "--port=%d" % port, "--duration-ms=30000", "--max-requests=20", "--json"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    check(wait_listening(port, 10), "single: server never listened")

    client = ServeClient("127.0.0.1", port, client_id=101)
    ok = client.run(20, 25.0, window=4)
    client.close()
    s = client.summary()
    check(ok, "single: client only got %d/20 acks" % s["acked"])
    check(s["mismatches"] == 0, "single: %d echo mismatches" % s["mismatches"])

    out, err = finish(server, 30, "single server")
    report = parse_report(out, err, "single server")
    check(report["completed"], "single: report not completed: %s" % report)
    check(report["stop_reason"] == "max-requests",
          "single: stop_reason %s" % report["stop_reason"])
    check(report["requests"] >= 20, "single: report requests %d" % report["requests"])
    check(report["responses"] >= 20, "single: report responses %d" % report["responses"])
    check(report["role"] == "single", "single: role %s" % report["role"])
    print("phase 1 (single-process): OK —", s)


def phase_single_failover(cli):
    port = free_port()
    server = subprocess.Popen(
        # The failure must land before the request stream can complete (40
        # requests take >2 s of sim time), or the server stops at
        # --max-requests with failovers=0. Early is safe: a failover before
        # the first request just means the promoted backup serves them all.
        [cli, "serve", "--port=%d" % port, "--duration-ms=60000", "--max-requests=40",
         "--fail=time-ms=400", "--json"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    check(wait_listening(port, 10), "single-failover: server never listened")

    client = ServeClient("127.0.0.1", port, client_id=102)
    ok = client.run(40, 50.0, window=4)
    client.close()
    s = client.summary()
    check(ok, "single-failover: client only got %d/40 acks" % s["acked"])
    check(s["mismatches"] == 0, "single-failover: %d echo mismatches" % s["mismatches"])

    out, err = finish(server, 30, "single-failover server")
    report = parse_report(out, err, "single-failover server")
    check(report["completed"], "single-failover: not completed: %s" % report)
    check(report["failovers"] == 1, "single-failover: failovers %d" % report["failovers"])
    check(report["promoted"], "single-failover: backup never promoted")
    check(report["promotion_time_ms"] > 0,
          "single-failover: promotion_time_ms %s" % report["promotion_time_ms"])
    print("phase 2 (in-process failover): OK —", s)


def phase_multiprocess_kill9(cli):
    port = free_port()
    repl_port = free_port()
    common = ["--port=%d" % port, "--repl-port=%d" % repl_port,
              "--duration-ms=120000", "--json"]
    primary = subprocess.Popen([cli, "serve", "--role=primary"] + common,
                               stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    backup = subprocess.Popen([cli, "serve", "--role=backup"] + common,
                              stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    check(wait_listening(port, 15), "multi: primary never listened")

    # Kill the primary — the REAL process, with SIGKILL — once 10 writes
    # have been acknowledged, so the failure lands mid-traffic.
    state = {"killed": False}

    def maybe_kill(c):
        if not state["killed"] and len(c.acked) >= 10:
            state["killed"] = True
            os.kill(primary.pid, signal.SIGKILL)
            print("killed primary (pid %d) after %d acks" % (primary.pid, len(c.acked)))

    client = ServeClient("127.0.0.1", port, client_id=103)
    ok = client.run(50, 90.0, window=4, on_progress=maybe_kill)
    client.close()
    s = client.summary()
    check(state["killed"], "multi: kill hook never fired (only %d acks)" % s["acked"])
    check(ok, "multi: client only got %d/50 acks after the kill" % s["acked"])
    check(s["mismatches"] == 0, "multi: %d echo mismatches" % s["mismatches"])
    check(s["reconnects"] >= 1, "multi: client finished without reconnecting?")

    primary.wait(timeout=10)
    backup.send_signal(signal.SIGTERM)
    out, err = finish(backup, 30, "backup")
    check(backup.returncode == 0, "multi: backup exited %d:\n%s" % (backup.returncode, err))
    report = parse_report(out, err, "backup")
    check(report["promoted"], "multi: backup report says not promoted:\n%s" % err)
    check(report["failovers"] == 1, "multi: failovers %d" % report["failovers"])
    check(report["promotion_time_ms"] > 0,
          "multi: promotion_time_ms %s" % report["promotion_time_ms"])
    check(report["requests"] > 0, "multi: promoted backup served no requests")
    check(report["stop_reason"] == "signal", "multi: stop_reason %s" % report["stop_reason"])
    check("promoted" in err, "multi: no promotion note on backup stderr:\n%s" % err)
    print("phase 3 (kill -9 failover): OK —", s,
          "promotion_time_ms=%.1f" % report["promotion_time_ms"])


def main():
    if len(sys.argv) != 2:
        fail("usage: serve_integration_test.py <hbft_cli>")
    cli = sys.argv[1]
    phase_single(cli)
    phase_single_failover(cli)
    phase_multiprocess_kill9(cli)
    print("serve_integration_test: all phases passed")


if __name__ == "__main__":
    main()
