// Fixture: thread-id rule. A thread id is assigned by the host scheduler;
// branching on it (or folding it into anything observable) breaks lockstep.
#include <thread>

namespace fixture {

bool AmFirstWorker() {
  return std::this_thread::get_id() == std::thread::id();  // VIOLATION: thread-id
}

}  // namespace fixture
