// Fixture: codec-symmetry rule. Two broken pairs: a width mismatch (writes
// U64 where the reader expects U32) and a count mismatch (a trailing field
// the reader never consumes).
#include <cstdint>

namespace fixture {

class SnapshotWriter;
class SnapshotReader;

class WidthSkew {
 public:
  void Serialize(SnapshotWriter& w) const {
    w.U32(head_);
    w.U64(body_);  // VIOLATION: codec-symmetry (reader uses U32)
  }
  bool Deserialize(SnapshotReader& r) {
    uint32_t narrowed = 0;
    return r.U32(&head_) && r.U32(&narrowed);
  }

 private:
  uint32_t head_ = 0;
  uint64_t body_ = 0;
};

class CountSkew {
 public:
  void EncodeHeader(SnapshotWriter& w) const {
    w.U32(kind_);
    w.U32(flags_);  // VIOLATION: codec-symmetry (reader stops after kind_)
  }
  bool DecodeHeader(SnapshotReader& r) { return r.U32(&kind_); }

 private:
  uint32_t kind_ = 0;
  uint32_t flags_ = 0;
};

}  // namespace fixture
