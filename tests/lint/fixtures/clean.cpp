// Fixture: an entirely clean file — ordered containers, seeded randomness
// threaded in from outside, symmetric codec, complete snapshot.
#include <cstdint>
#include <map>

namespace fixture {

class SnapshotWriter;
class SnapshotReader;

class Ledger {
 public:
  void Record(uint64_t key, uint64_t value) { entries_[key] = value; }

  void CaptureState(SnapshotWriter& w) const {
    w.U32(static_cast<uint32_t>(entries_.size()));
    for (const auto& [key, value] : entries_) {
      w.U64(key);
      w.U64(value);
    }
    w.U64(sum_);
  }
  bool RestoreState(SnapshotReader& r) {
    uint32_t count = 0;
    if (!r.U32(&count)) {
      return false;
    }
    entries_.clear();
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t key = 0;
      uint64_t value = 0;
      if (!r.U64(&key) || !r.U64(&value)) {
        return false;
      }
      entries_[key] = value;
    }
    return r.U64(&sum_);
  }

 private:
  std::map<uint64_t, uint64_t> entries_;
  uint64_t sum_ = 0;
};

}  // namespace fixture
