// Fixture: ambient-rand rule. Non-seeded randomness is banned inside the
// deterministic tree; every draw must come from a DeterministicRng stream.
#include <cstdlib>
#include <random>

namespace fixture {

int LibcDraw() {
  return rand();  // VIOLATION: ambient-rand
}

unsigned HardwareDraw() {
  std::random_device rd;  // VIOLATION: ambient-rand
  return rd();
}

}  // namespace fixture
