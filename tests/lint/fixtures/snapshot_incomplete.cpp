// Fixture: snapshot-field rule. `forgotten_` is mutable state that neither
// CaptureState nor RestoreState ever touches — the live-transfer corruption
// class. `cache_` is excluded the sanctioned way.
#include <cstdint>
#include <vector>

namespace fixture {

class SnapshotWriter;
class SnapshotReader;

class Counter {
 public:
  void CaptureState(SnapshotWriter& w) const {
    w.U64(ticks_);
    w.U32(step_);
  }
  bool RestoreState(SnapshotReader& r) {
    if (!r.U64(&ticks_) || !r.U32(&step_)) {
      return false;
    }
    return true;
  }

 private:
  uint64_t ticks_ = 0;
  uint32_t step_ = 0;
  uint32_t forgotten_ = 0;  // VIOLATION: snapshot-field
  // hbft-lint: derived-state — rebuilt lazily from ticks_; never replicated.
  std::vector<uint64_t> cache_;
};

}  // namespace fixture
