// Fixture: detached-thread rule. A detached thread outlives every round
// barrier and can never be joined deterministically.
// hbft-lint: allow-file(thread-spawn) — fixture isolates the detach rule.
#include <thread>

namespace fixture {

void FireAndForget() {
  std::thread worker([] {});
  worker.detach();  // VIOLATION: detached-thread
}

}  // namespace fixture
