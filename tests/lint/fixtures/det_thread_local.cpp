// Fixture: thread-state rule. thread_local is per-thread state; the
// declaration alone is flagged, and a thread_local name referenced inside a
// Capture*/Restore*/Serialize/Deserialize body is flagged again even when
// the declaration carries an allow — per-thread values must never reach
// Snapshotable bytes or fingerprints.
#include <cstdint>

namespace fixture {

thread_local uint64_t t_scratch = 0;  // VIOLATION: thread-state (declaration)

// hbft-lint: allow(thread-state) — fixture: allowed decl, misused below.
thread_local uint64_t t_counter = 0;

struct Writer {
  void U64(uint64_t) {}
};

struct Snapshotted {
  uint64_t epoch = 0;
  void CaptureState(Writer& w) const {
    w.U64(epoch);
    w.U64(t_counter);  // VIOLATION: thread-state (codec reachability)
  }
};

}  // namespace fixture
