// Fixture: thread-spawn rule. Thread creation belongs to fleet/worker_pool
// (which carries a reasoned allow-file); anywhere else it is unsharded,
// unbarriered parallelism. std::thread::hardware_concurrency is exempt —
// it is a host-capability query, not a spawn.
#include <thread>

namespace fixture {

void SpawnAdHoc() {
  std::thread worker([] {});  // VIOLATION: thread-spawn
  worker.join();
}

void SpawnJThread() {
  std::jthread worker([] {});  // VIOLATION: thread-spawn
}

unsigned HostCpus() {
  return std::thread::hardware_concurrency();  // OK: capability query
}

}  // namespace fixture
