// Fixture: unordered-iteration rule. The declaration below is suppressed as
// lookup-only, but iterating it must still fire: lookup-only means lookup
// only. Both range-for and explicit begin() iteration are covered.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

class SeqTable {
 public:
  std::vector<uint64_t> Drain() {
    std::vector<uint64_t> out;
    for (const auto& [id, seq] : table_) {  // VIOLATION: unordered-iteration
      out.push_back(seq);
    }
    auto it = table_.begin();  // VIOLATION: unordered-iteration
    (void)it;
    return out;
  }

 private:
  // hbft-lint: allow(unordered-container) — fixture: pretend lookup-only.
  std::unordered_map<uint64_t, uint64_t> table_;
};

}  // namespace fixture
