// Fixture: pointer-keyed rule. Ordered containers keyed by pointer value
// (and std::hash over pointers) leak allocation addresses into iteration
// and comparison order.
#include <cstddef>
#include <map>
#include <set>

namespace fixture {

class Node {};

class Roster {
 private:
  std::map<Node*, int> ranks_;   // VIOLATION: pointer-keyed
  std::set<Node*> members_;      // VIOLATION: pointer-keyed
};

inline size_t AddressHash(void* p) {
  return std::hash<void*>{}(p);  // VIOLATION: pointer-keyed
}

}  // namespace fixture
