// Fixture: bad-suppression rule. Annotations must name a real rule and
// carry a reason; anything else is itself a violation (a typo'd suppression
// that silently suppresses nothing is worse than none).
#include <cstdint>

namespace fixture {

// hbft-lint: allow(wall-clok) — typo'd rule name.  VIOLATION: bad-suppression
uint64_t A() { return 1; }

// hbft-lint: allow(wall-clock)
uint64_t B() { return 2; }  // reasonless allow above: VIOLATION: bad-suppression

}  // namespace fixture
