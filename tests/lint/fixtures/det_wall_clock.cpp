// Fixture: wall-clock rule. Each marked line must produce a [wall-clock]
// violation when linted without suppressions.
#include <chrono>
#include <cstdint>

namespace fixture {

int64_t NowNanos() {
  auto t = std::chrono::steady_clock::now();  // VIOLATION: wall-clock
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t.time_since_epoch()).count();
}

int64_t Today() {
  return static_cast<int64_t>(time(nullptr));  // VIOLATION: wall-clock
}

}  // namespace fixture
