// Fixture: every suppression form, used correctly. This file must lint
// clean: same-line allow, line-above allow, whole-file allow-file, and the
// derived-state member annotation.
//
// hbft-lint: allow-file(unordered-container) — fixture: lookup-only tables.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <unordered_map>

namespace fixture {

inline int64_t PaceNanos() {
  auto t = std::chrono::steady_clock::now();  // hbft-lint: allow(wall-clock) — fixture: pacing layer.
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t.time_since_epoch()).count();
}

inline int JitterSeed() {
  // hbft-lint: allow(ambient-rand) — fixture: never feeds the simulation.
  return rand();
}

class SnapshotWriter;
class SnapshotReader;

class Clean {
 public:
  void CaptureState(SnapshotWriter& w) const { w.U64(ticks_); }
  bool RestoreState(SnapshotReader& r) { return r.U64(&ticks_); }

 private:
  uint64_t ticks_ = 0;
  // hbft-lint: derived-state — rebuilt on first use; never replicated.
  uint64_t memo_ = 0;
  std::unordered_map<uint64_t, uint64_t> lookup_;  // hbft-lint: derived-state — covered by allow-file above; lookup-only.
};

}  // namespace fixture
