// Fixture: unordered-container rule. Declaring std::unordered_* is flagged
// even without iteration — iteration order is address-seeded, and a later
// change can start iterating without revisiting the declaration.
#include <cstdint>
#include <string>
#include <unordered_map>

namespace fixture {

class OpIndex {
 public:
  void Add(const std::string& name, uint32_t op) { ops_[name] = op; }

 private:
  std::unordered_map<std::string, uint32_t> ops_;  // VIOLATION: unordered-container
};

}  // namespace fixture
