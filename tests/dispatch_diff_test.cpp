// Differential execution: the cached (predecoded-superblock) interpreter
// against the slow fetch-decode path. The contract under test is total
// equivalence of guest-visible state — snapshot bytes (registers, memory,
// TLB incl. its lookup/miss counters, recovery counter, idle-loop dynamics),
// exit kinds and PCs, trap and interrupt delivery points, and scenario-level
// results (epoch fingerprints, environment traces, completion times) — over
// machine-level lockstep runs, whole-scenario runs with failovers and lossy
// links, self-modifying code, cache-eviction pressure, and snapshot/restore
// with a warm cache.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/snapshot.hpp"
#include "isa/assembler.hpp"
#include "machine/machine.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace {

MachineConfig ModeConfig(InterpMode mode, uint32_t tcache_slots = 2048) {
  MachineConfig config;
  config.trap_mode = TrapMode::kDirect;
  config.interp = mode;
  config.tcache_slots = tcache_slots;
  return config;
}

std::vector<uint8_t> Capture(const Machine& machine) {
  Snapshot snap;
  SnapshotWriter w(&snap);
  machine.CaptureState(w, /*include_memory=*/true);
  return snap.bytes;
}

struct Twins {
  std::unique_ptr<Machine> slow;
  std::unique_ptr<Machine> cached;
};

Twins MakeTwins(const std::string& source, uint32_t tcache_slots = 2048) {
  auto assembled = Assemble(source);
  EXPECT_TRUE(assembled.ok()) << (assembled.ok() ? "" : assembled.error().ToString());
  Twins twins;
  twins.slow = std::make_unique<Machine>(ModeConfig(InterpMode::kSlow));
  twins.cached = std::make_unique<Machine>(ModeConfig(InterpMode::kCached, tcache_slots));
  for (Machine* m : {twins.slow.get(), twins.cached.get()}) {
    m->LoadImage(assembled.value());
    m->cpu().pc = 0;
  }
  return twins;
}

// Runs both machines through identical slice budgets until both halt (or the
// step limit trips), asserting identical exits and identical snapshot bytes
// after every single slice — equivalence at every observable cut, not just
// at the end.
void RunLockstep(Machine& slow, Machine& cached, const std::vector<uint64_t>& slices) {
  bool halted = false;
  for (int step = 0; step < 10000 && !halted; ++step) {
    uint64_t budget = slices[step % slices.size()];
    MachineExit a = slow.Run(budget);
    MachineExit b = cached.Run(budget);
    ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind)) << "step " << step;
    ASSERT_EQ(a.executed, b.executed) << "step " << step;
    ASSERT_EQ(a.pc, b.pc) << "step " << step;
    ASSERT_EQ(Capture(slow), Capture(cached)) << "step " << step;
    halted = a.kind == ExitKind::kHalt;
  }
  ASSERT_TRUE(halted) << "lockstep run never reached HALT";
}

// Slice widths chosen to cut superblocks at every phase: mid-block (1..7),
// around typical block lengths, and bulk.
const std::vector<uint64_t> kSlices = {1, 2, 3, 5, 7, 13, 64, 1000};

TEST(DispatchDiff, LockstepAluMemoryLoops) {
  Twins t = MakeTwins(R"(
    li r10, 0
    li r11, 12
outer:
    li r12, 5
inner:
    mul r13, r11, r12
    add r10, r10, r13
    slli r14, r10, 3
    xor r10, r10, r14
    srli r14, r10, 5
    add r10, r10, r14
    sw r10, 0x800(zero)
    lh r15, 0x800(zero)
    lbu r16, 0x801(zero)
    addi r12, r12, -1
    bnez r12, inner
    addi r11, r11, -1
    bnez r11, outer
    halt
  )");
  RunLockstep(*t.slow, *t.cached, kSlices);
}

TEST(DispatchDiff, LockstepTrapsResumeIdentically) {
  // Divide-by-zero faults (epc = faulting pc; the handler skips it) and
  // syscalls (epc = pc + 4) inside a loop: delivery points and the STATUS
  // privilege/IE stacking must land identically in both modes.
  Twins t = MakeTwins(R"(
    la r1, handler
    mtcr tvec, r1
    li r11, 6
    li r20, 0
loop:
    li r3, 0
    div r4, r11, r3      ; traps, handler skips
    syscall              ; traps, handler resumes after
    addi r11, r11, -1
    bnez r11, loop
    halt
handler:
    mfcr r21, ecause
    add r20, r20, r21
    mfcr r22, epc
    li r23, 11           ; TrapCause::kDivideByZero
    bne r21, r23, resume
    addi r22, r22, 4     ; skip the faulting div
    mtcr epc, r22
resume:
    rfi
  )");
  // The handler's kDivideByZero constant must track the enum.
  ASSERT_EQ(static_cast<uint32_t>(TrapCause::kDivideByZero), 11u);
  RunLockstep(*t.slow, *t.cached, kSlices);
}

TEST(DispatchDiff, LockstepRecoveryCounterEpochs) {
  // Epoch-style slicing: with the recovery counter armed, both modes must
  // exit kRecovery after exactly the same retirement, epoch after epoch —
  // the property the whole replication protocol rests on. Odd epoch lengths
  // guarantee boundaries land mid-superblock.
  Twins t = MakeTwins(R"(
    li r11, 300
loop:
    slli r14, r10, 3
    xor r10, r10, r14
    addi r10, r10, 7
    sw r10, 0x900(zero)
    lw r15, 0x900(zero)
    addi r11, r11, -1
    bnez r11, loop
    halt
  )");
  for (Machine* m : {t.slow.get(), t.cached.get()}) {
    m->SetRecoveryCounter(61);
    m->SetRctrEnabled(true);
  }
  bool halted = false;
  for (int epoch = 0; epoch < 200 && !halted; ++epoch) {
    MachineExit a = t.slow->Run(100000);
    MachineExit b = t.cached->Run(100000);
    ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind)) << "epoch " << epoch;
    ASSERT_EQ(a.pc, b.pc) << "epoch " << epoch;
    ASSERT_EQ(a.executed, b.executed) << "epoch " << epoch;
    ASSERT_EQ(Capture(*t.slow), Capture(*t.cached)) << "epoch " << epoch;
    if (a.kind == ExitKind::kHalt) {
      halted = true;
    } else {
      ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(ExitKind::kRecovery));
      t.slow->SetRecoveryCounter(61);
      t.cached->SetRecoveryCounter(61);
    }
  }
  ASSERT_TRUE(halted);
}

TEST(DispatchDiff, LockstepVirtualMemoryUserMode) {
  // VM on, user mode, TLB misses handled by the guest: the TLB lookup/miss
  // counters are snapshot state, so the cached path's fetch-lookup crediting
  // must reproduce the slow path's counts exactly (snapshot equality below
  // covers them).
  Twins t = MakeTwins(R"(
    la r1, handler
    mtcr tvec, r1
    li r2, 0
wire_loop:
    slli r3, r2, 12
    ori r4, r3, 0x1F     ; V|W|X|U|WIRED
    tlbi r3, r4
    addi r2, r2, 1
    li r5, 4
    bltu r2, r5, wire_loop
    li r1, 0x98          ; VM | prev_priv=3
    mtcr status, r1
    la r2, user
    mtcr epc, r2
    rfi
user:
    li r10, 40
uloop:
    sw r10, 0x2800(zero)
    lw r11, 0x2800(zero)
    add r12, r12, r11
    addi r10, r10, -1
    bnez r10, uloop
    syscall              ; back to the kernel to halt
    halt
handler:
    mfcr r5, ecause
    halt
  )");
  RunLockstep(*t.slow, *t.cached, kSlices);
}

TEST(DispatchDiff, InterruptDeliveryPointsMatch) {
  // IE starts off with an interrupt already pending; the MTCR that sets IE
  // is the only place the deliverable predicate flips. The slow path's
  // hoisted re-check after MTCR and the cached path's dispatch-boundary
  // check must deliver at the same instruction (same EPC, same state).
  auto assembled = Assemble(R"(
    la r1, handler
    mtcr tvec, r1
    li r10, 5
warm:
    addi r10, r10, -1    ; a few instructions with delivery blocked
    bnez r10, warm
    mfcr r2, status
    ori r2, r2, 4        ; set IE with the interrupt already pending
    mtcr status, r2
    addi r11, r11, 1     ; must NOT run before delivery
    halt
handler:
    mfcr r20, epc        ; where delivery interrupted
    li r9, 42
    halt
  )");
  ASSERT_TRUE(assembled.ok());
  Machine slow(ModeConfig(InterpMode::kSlow));
  Machine cached(ModeConfig(InterpMode::kCached));
  for (Machine* m : {&slow, &cached}) {
    m->LoadImage(assembled.value());
    m->cpu().pc = 0;
    m->RaiseIrq(1);
    MachineExit exit = m->Run(10000);
    ASSERT_EQ(static_cast<int>(exit.kind), static_cast<int>(ExitKind::kHalt));
    EXPECT_EQ(m->cpu().gpr[9], 42u);   // Handler ran...
    EXPECT_EQ(m->cpu().gpr[11], 0u);   // ...before the post-MTCR instruction.
  }
  EXPECT_EQ(slow.cpu().gpr[20], cached.cpu().gpr[20]);  // Same delivery EPC.
  EXPECT_EQ(Capture(slow), Capture(cached));
}

// ---------------------------------------------------------------------------
// Self-modifying code: page-version invalidation.
// ---------------------------------------------------------------------------

TEST(SelfModifyingCode, PatchedInstructionExecutesNotStaleOne) {
  // A loop whose body is patched from "addi r1, zero, 111" to
  // "addi r1, zero, 222" by a store into its own code page, mid-superblock.
  // The first iteration predecodes (and runs) 111; the store must end the
  // block and bump the page version so the second iteration rebuilds and
  // runs 222 — never the stale predecode.
  auto assembled = Assemble(R"(
    lw r5, 0x100(zero)   ; the replacement instruction word
    addi r7, zero, 2
loop:
    addi r1, zero, 111   ; patch target
    addi r6, zero, 0
    sw r5, 8(zero)       ; overwrite the instruction at `loop` (same page)
    addi r7, r7, -1
    bnez r7, loop
    halt
  )");
  ASSERT_TRUE(assembled.ok());
  ASSERT_EQ(assembled.value().SymbolOrDie("loop"), 8u);

  const uint32_t patched = EncodeI(Opcode::kAddi, /*rd=*/1, /*rs1=*/0, /*imm=*/222);
  Machine slow(ModeConfig(InterpMode::kSlow));
  Machine cached(ModeConfig(InterpMode::kCached));
  for (Machine* m : {&slow, &cached}) {
    m->LoadImage(assembled.value());
    m->memory().Write32(0x100, patched);
    m->cpu().pc = 0;
    MachineExit exit = m->Run(10000);
    ASSERT_EQ(static_cast<int>(exit.kind), static_cast<int>(ExitKind::kHalt));
    EXPECT_EQ(m->cpu().gpr[1], 222u);  // The patched instruction ran.
  }
  EXPECT_EQ(Capture(slow), Capture(cached));
  // The cached run really did detect staleness (rebuilt at least one block
  // whose page version moved) rather than never caching at all. No hit is
  // expected: every redispatch in this program follows a code-page store.
  EXPECT_GE(cached.tcache_stats().stale, 1u);
  EXPECT_GE(cached.tcache_stats().builds, 4u);
}

TEST(SelfModifyingCode, EvictionPressureTinyCacheStaysExact) {
  // One-slot cache: every alternation between blocks evicts the other.
  // Correctness must not depend on capacity — only speed may.
  Twins t = MakeTwins(R"(
    li r11, 40
loop:
    addi r10, r10, 3
    slli r12, r10, 1
    beqz zero, join      ; unconditional: forces a second block
join:
    xor r13, r12, r10
    addi r11, r11, -1
    bnez r11, loop
    halt
  )",
                      /*tcache_slots=*/1);
  EXPECT_EQ(t.cached->tcache_capacity(), 1u);
  RunLockstep(*t.slow, *t.cached, kSlices);
  EXPECT_GT(t.cached->tcache_stats().evictions, 0u);
}

// ---------------------------------------------------------------------------
// Snapshot interaction: the cache is derived state, never serialised.
// ---------------------------------------------------------------------------

TEST(WarmCacheSnapshot, SnapshotIsDispatchModeInvariantAndRestoreContinues) {
  const char* source = R"(
    li r11, 120
loop:
    addi r10, r10, 7
    mul r12, r10, r11
    sw r12, 0xA00(zero)
    lw r13, 0xA00(zero)
    addi r11, r11, -1
    bnez r11, loop
    halt
  )";
  Twins t = MakeTwins(source);
  // Stop mid-run: the cached machine now has a warm translation cache.
  MachineExit a = t.slow->Run(100);
  MachineExit b = t.cached->Run(100);
  ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(ExitKind::kLimit));
  ASSERT_EQ(static_cast<int>(b.kind), static_cast<int>(ExitKind::kLimit));
  ASSERT_GT(t.cached->tcache_stats().builds, 0u);

  // Warm cache leaves no trace in the snapshot: bytes match the slow twin.
  std::vector<uint8_t> snap_bytes = Capture(*t.cached);
  ASSERT_EQ(Capture(*t.slow), snap_bytes);

  // Restoring into fresh machines of either mode continues identically.
  Machine restored_slow(ModeConfig(InterpMode::kSlow));
  Machine restored_cached(ModeConfig(InterpMode::kCached));
  Snapshot snap;
  snap.bytes = snap_bytes;
  for (Machine* m : {&restored_slow, &restored_cached}) {
    SnapshotReader r(snap);
    ASSERT_TRUE(m->RestoreState(r, /*include_memory=*/true));
  }
  RunLockstep(restored_slow, restored_cached, kSlices);
  // And the originals, run onward, agree with each other too.
  RunLockstep(*t.slow, *t.cached, kSlices);
}

// ---------------------------------------------------------------------------
// Whole-scenario differential: replication, failover, lossy links.
// ---------------------------------------------------------------------------

ScenarioResult RunWith(Scenario scenario, InterpMode mode) {
  return scenario.Interp(mode).Run();
}

void ExpectSameScenarioResults(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.completion_time.picos(), b.completion_time.picos());
  EXPECT_EQ(a.exited_flag, b.exited_flag);
  EXPECT_EQ(a.exit_code, b.exit_code);
  EXPECT_EQ(a.guest_checksum, b.guest_checksum);
  EXPECT_EQ(a.console_output, b.console_output);
  EXPECT_EQ(a.promoted, b.promoted);
  EXPECT_EQ(a.promotion_time.picos(), b.promotion_time.picos());
  ASSERT_EQ(a.env_trace.size(), b.env_trace.size());
  for (size_t i = 0; i < a.env_trace.size(); ++i) {
    EXPECT_EQ(a.env_trace[i].op_hash, b.env_trace[i].op_hash) << "env op " << i;
    EXPECT_EQ(a.env_trace[i].performed, b.env_trace[i].performed) << "env op " << i;
    EXPECT_EQ(static_cast<int>(a.env_trace[i].device_id),
              static_cast<int>(b.env_trace[i].device_id))
        << "env op " << i;
  }
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].boundary_fingerprints, b.nodes[i].boundary_fingerprints)
        << "node " << i << " epoch fingerprints diverged";
  }
}

TEST(ScenarioDiff, CpuBareRun) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kCpu;
  spec.iterations = 1200;
  ScenarioResult slow = RunWith(Scenario::Bare(spec), InterpMode::kSlow);
  ScenarioResult cached = RunWith(Scenario::Bare(spec), InterpMode::kCached);
  ASSERT_TRUE(slow.completed);
  ExpectSameScenarioResults(slow, cached);
}

TEST(ScenarioDiff, DiskReadReplicated) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kDiskRead;
  spec.iterations = 12;
  Scenario base = Scenario::Replicated(spec).Epoch(4096);
  ScenarioResult slow = RunWith(base, InterpMode::kSlow);
  ScenarioResult cached = RunWith(base, InterpMode::kCached);
  ASSERT_TRUE(slow.completed);
  ExpectSameScenarioResults(slow, cached);
}

TEST(ScenarioDiff, TxnLogFailoverSchedule) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTxnLog;
  spec.iterations = 8;
  spec.num_blocks = 8;
  Scenario base = Scenario::Replicated(spec).Epoch(4096).FailAtTime(SimTime::Millis(40));
  ScenarioResult slow = RunWith(base, InterpMode::kSlow);
  ScenarioResult cached = RunWith(base, InterpMode::kCached);
  ASSERT_TRUE(slow.completed);
  ASSERT_TRUE(slow.promoted);
  ExpectSameScenarioResults(slow, cached);
}

TEST(ScenarioDiff, NetEchoLossyLink) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kNetEcho;
  spec.iterations = 4;
  LinkFaults faults;
  faults.drop_probability = 0.05;
  Scenario base = Scenario::Replicated(spec).Epoch(4096).LinkFaults(faults);
  for (uint64_t i = 0; i < spec.iterations; ++i) {
    char text[16];
    std::snprintf(text, sizeof(text), "pkt-%04u....", static_cast<unsigned>(i));
    base.InjectPacket(std::vector<uint8_t>(text, text + 12));
  }
  ScenarioResult slow = RunWith(base, InterpMode::kSlow);
  ScenarioResult cached = RunWith(base, InterpMode::kCached);
  ASSERT_TRUE(slow.completed);
  ExpectSameScenarioResults(slow, cached);
}

}  // namespace
}  // namespace hbft
