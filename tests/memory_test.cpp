// Physical memory tests: endianness, bounds, bulk copies, and the
// incremental fingerprint.
#include <gtest/gtest.h>

#include "machine/memory.hpp"

namespace hbft {
namespace {

TEST(Memory, LittleEndianAccessors) {
  PhysicalMemory memory(64 * 1024);
  memory.Write32(0x100, 0x11223344);
  EXPECT_EQ(memory.Read8(0x100), 0x44);
  EXPECT_EQ(memory.Read8(0x103), 0x11);
  EXPECT_EQ(memory.Read16(0x100), 0x3344);
  EXPECT_EQ(memory.Read16(0x102), 0x1122);
  EXPECT_EQ(memory.Read32(0x100), 0x11223344u);
  memory.Write16(0x200, 0xBEEF);
  EXPECT_EQ(memory.Read8(0x200), 0xEF);
  EXPECT_EQ(memory.Read8(0x201), 0xBE);
}

TEST(Memory, ContainsBoundsChecks) {
  PhysicalMemory memory(8192);
  EXPECT_TRUE(memory.Contains(0, 1));
  EXPECT_TRUE(memory.Contains(8188, 4));
  EXPECT_FALSE(memory.Contains(8189, 4));
  EXPECT_FALSE(memory.Contains(8192, 1));
  EXPECT_FALSE(memory.Contains(0xFFFFFFFF, 4));  // Overflow-safe.
}

TEST(Memory, BlockCopies) {
  PhysicalMemory memory(64 * 1024);
  std::vector<uint8_t> data(300);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  memory.WriteBlock(0xF00, data.data(), static_cast<uint32_t>(data.size()));
  std::vector<uint8_t> out(300);
  memory.ReadBlock(0xF00, out.data(), static_cast<uint32_t>(out.size()));
  EXPECT_EQ(data, out);
}

TEST(MemoryFingerprint, StableAndIncremental) {
  PhysicalMemory a(64 * 1024);
  PhysicalMemory b(64 * 1024);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());

  a.Write32(0x1234, 99);
  uint64_t after_write = a.Fingerprint();
  EXPECT_NE(after_write, b.Fingerprint());

  b.Write32(0x1234, 99);
  EXPECT_EQ(after_write, b.Fingerprint());

  // Reverting the write restores the original fingerprint (XOR page scheme).
  a.Write32(0x1234, 0);
  EXPECT_EQ(a.Fingerprint(), PhysicalMemory(64 * 1024).Fingerprint());
}

TEST(MemoryFingerprint, DistinguishesPagePositions) {
  // Identical page contents at different addresses must fingerprint
  // differently (page index is hashed in).
  PhysicalMemory a(64 * 1024);
  PhysicalMemory b(64 * 1024);
  a.Write32(0x0000, 7);
  b.Write32(0x1000, 7);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(MemoryFingerprint, CheapWhenClean) {
  PhysicalMemory memory(4 * 1024 * 1024);
  memory.Fingerprint();
  // A second call with no writes touches no pages; just verify stability.
  EXPECT_EQ(memory.Fingerprint(), memory.Fingerprint());
}

}  // namespace
}  // namespace hbft
