// Fleet subsystem tests: placement policy properties (the anti-affinity
// invariant the paper's single-failure assumption rests on), open-loop
// traffic encoding/matching, and whole-fleet runs — failover under host
// failure storms, bounded repair admission, determinism, and the 256-chain
// acceptance storm.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "fleet/placement.hpp"
#include "fleet/traffic.hpp"
#include "fleet/worker_pool.hpp"

namespace hbft {
namespace {

TEST(Placement, RoundRobinDealsReplicasChainMajor) {
  Placement rr(PlacementPolicy::kRoundRobin, 3);
  EXPECT_EQ(rr.AssignChain(2), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(rr.AssignChain(2), (std::vector<size_t>{2, 0}));
  EXPECT_EQ(rr.load(), (std::vector<size_t>{2, 1, 1}));
}

TEST(Placement, AntiAffinityNeverColocatesAChainInitially) {
  Placement aa(PlacementPolicy::kAntiAffinity, 3);
  EXPECT_EQ(aa.AssignChain(2), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(aa.AssignChain(2), (std::vector<size_t>{2, 0}));
  EXPECT_EQ(aa.AssignChain(2), (std::vector<size_t>{1, 2}));
  // Three chains, two replicas each, three hosts: perfectly balanced and no
  // chain twice on one host.
  EXPECT_EQ(aa.load(), (std::vector<size_t>{2, 2, 2}));
}

TEST(Placement, AntiAffinityFallsBackWhenHostsAreScarcerThanReplicas) {
  // A 3-replica chain on 2 hosts cannot satisfy anti-affinity; the third
  // replica goes least-loaded instead of failing.
  Placement aa(PlacementPolicy::kAntiAffinity, 2);
  EXPECT_EQ(aa.AssignChain(3), (std::vector<size_t>{0, 1, 0}));
}

// The hazard the anti-affinity policy exists to close: at repair time the
// round-robin cursor is blind to chain membership, so a replacement replica
// can land on the host the chain's surviving replica already occupies —
// converting the next single host failure into an unrecoverable double
// failure. Anti-affinity picks a disjoint host from the same state.
TEST(Placement, RoundRobinCanColocateAtRepairTimeAntiAffinityCannot) {
  for (PlacementPolicy policy : {PlacementPolicy::kRoundRobin, PlacementPolicy::kAntiAffinity}) {
    Placement p(policy, 3);
    // Chain 0 -> {0,1}, chain 1 -> {2,0} under both policies (see above).
    p.AssignChain(2);
    p.AssignChain(2);
    // Host 0 fails: chain 0 loses its replica there (so does chain 1).
    p.ReleaseReplica(0);
    p.ReleaseReplica(0);
    const std::vector<bool> host_up = {false, true, true};
    // Chain 0's surviving replica is on host 1.
    size_t repair = p.PickRepairHost({1}, host_up);
    if (policy == PlacementPolicy::kRoundRobin) {
      EXPECT_EQ(repair, 1u);  // Cursor at 4 -> host 1: co-located.
    } else {
      EXPECT_EQ(repair, 2u);  // Only disjoint live host.
    }
  }
}

TEST(Placement, RepairNeverPicksADownHost) {
  Placement rr(PlacementPolicy::kRoundRobin, 4);
  rr.AssignChain(2);  // Cursor at 2.
  const std::vector<bool> host_up = {true, false, false, true};
  // Cursor would deal hosts 2 then 3; both downs are skipped.
  EXPECT_EQ(rr.PickRepairHost({0}, host_up), 3u);
  EXPECT_EQ(rr.PickRepairHost({0}, host_up), 0u);

  Placement aa(PlacementPolicy::kAntiAffinity, 4);
  aa.AssignChain(2);
  EXPECT_EQ(aa.PickRepairHost({0}, host_up), 3u);
}

TEST(Placement, StormHostsSpreadEvenly) {
  EXPECT_EQ(StormHosts(32, 4), (std::vector<size_t>{0, 8, 16, 24}));
  EXPECT_EQ(StormHosts(8, 1), (std::vector<size_t>{0}));
  EXPECT_EQ(StormHosts(8, 3), (std::vector<size_t>{0, 2, 5}));
  // Width caps at the host count.
  EXPECT_EQ(StormHosts(4, 8), (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(Traffic, RequestPayloadsAreUniqueFleetWide) {
  std::set<std::vector<uint8_t>> seen;
  for (uint32_t chain = 0; chain < 8; ++chain) {
    for (uint32_t seq = 0; seq < 8; ++seq) {
      std::vector<uint8_t> payload = EncodeRequest(chain, seq, 32);
      EXPECT_EQ(payload.size(), 32u);
      EXPECT_TRUE(seen.insert(std::move(payload)).second);
    }
  }
}

TEST(Traffic, MatchSkipsDuplicatesAndForeignTraffic) {
  TrafficConfig traffic;
  traffic.requests_per_chain = 2;
  traffic.start = SimTime::Millis(10);
  traffic.interval = SimTime::Millis(5);
  traffic.payload_bytes = 16;

  std::vector<NicTraceEntry> trace;
  trace.push_back({EncodeRequest(3, 0, 16), 0, SimTime::Millis(12)});
  // P7 redrive: the same echo again later must not overwrite the latency.
  trace.push_back({EncodeRequest(3, 0, 16), 0, SimTime::Millis(13)});
  // Another chain's echo and a non-request frame are both ignored.
  trace.push_back({EncodeRequest(4, 1, 16), 0, SimTime::Millis(14)});
  trace.push_back({{0xDE, 0xAD}, 0, SimTime::Millis(14)});
  trace.push_back({EncodeRequest(3, 1, 16), 0, SimTime::Millis(20)});

  std::vector<RequestOutcome> outcomes = MatchRequests(3, traffic, trace);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].served);
  EXPECT_EQ(outcomes[0].latency, SimTime::Millis(2));
  EXPECT_TRUE(outcomes[1].served);
  EXPECT_EQ(outcomes[1].latency, SimTime::Millis(5));
}

FleetConfig SmallFleet() {
  FleetConfig config;
  config.chains = 2;
  config.hosts = 2;
  config.traffic.requests_per_chain = 3;
  config.verify = true;
  return config;
}

TEST(Fleet, HealthyFleetServesEveryRequest) {
  FleetConfig config = SmallFleet();
  FleetResult result = Fleet(config).Run();
  EXPECT_EQ(result.chains_completed, 2u);
  EXPECT_EQ(result.chains_lost, 0u);
  EXPECT_EQ(result.failovers, 0u);
  EXPECT_EQ(result.requests_served, result.requests_total);
  EXPECT_EQ(result.requests_total, 6u);
  EXPECT_DOUBLE_EQ(result.availability, 1.0);
  EXPECT_TRUE(result.all_env_consistent);
  EXPECT_GT(result.latency_ms.count, 0u);
  EXPECT_LE(result.latency_ms.p50, result.latency_ms.p99);
  EXPECT_LE(result.latency_ms.p99, result.latency_ms.p999);
}

TEST(Fleet, HostFailureFailsOverEveryResidentChainAndRepairs) {
  FleetConfig config = SmallFleet();
  // Anti-affinity on 2 hosts puts both primaries on host 0 (least-loaded,
  // lowest id); failing it forces both chains to fail over at once.
  config.host_failures.push_back(HostFailure{0, SimTime::Millis(120)});
  FleetResult result = Fleet(config).Run();
  EXPECT_EQ(result.chains_completed, 2u);
  EXPECT_EQ(result.chains_lost, 0u);
  EXPECT_EQ(result.hosts_failed, 1u);
  EXPECT_EQ(result.failovers, 2u);
  EXPECT_EQ(result.repairs, 2u);
  EXPECT_TRUE(result.all_env_consistent);
  EXPECT_LT(result.availability, 1.0);
  EXPECT_GT(result.availability, 0.5);
  // Both replacements land on the one surviving host.
  EXPECT_TRUE(result.hosts[0].failed);
  EXPECT_EQ(result.hosts[0].replicas_killed, 2u);
  EXPECT_EQ(result.hosts[1].repairs_hosted, 2u);
}

TEST(Fleet, RepairAdmissionIsBoundedPerHost) {
  FleetConfig config;
  config.chains = 4;
  config.hosts = 2;
  // Long enough traffic that every chain is still serving when its queued
  // repair finally admits — a finished chain abandons its pending repair.
  config.traffic.requests_per_chain = 12;
  config.host_failures.push_back(HostFailure{0, SimTime::Millis(110)});
  config.repair_concurrency = 1;
  FleetResult result = Fleet(config).Run();
  // Four chains each lose a replica; every replacement must target the one
  // surviving host, one admitted transfer at a time.
  EXPECT_EQ(result.chains_lost, 0u);
  EXPECT_EQ(result.repairs, 4u);
  EXPECT_EQ(result.hosts[1].repairs_hosted, 4u);
  EXPECT_EQ(result.hosts[1].repair_queue_peak, 3u);

  // With enough concurrency nothing queues.
  FleetConfig wide = config;
  wide.repair_concurrency = 4;
  FleetResult parallel_result = Fleet(wide).Run();
  EXPECT_EQ(parallel_result.repairs, 4u);
  EXPECT_EQ(parallel_result.hosts[1].repair_queue_peak, 0u);
}

TEST(Fleet, SameSeedSameFingerprint) {
  FleetConfig config = SmallFleet();
  config.verify = false;
  config.host_failures.push_back(HostFailure{0, SimTime::Millis(120)});
  FleetResult a = Fleet(config).Run();
  FleetResult b = Fleet(config).Run();
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.requests_served, b.requests_served);
  EXPECT_EQ(a.makespan, b.makespan);
}

// The acceptance storm: 256 chains, 2 replicas each, across 32 hosts; a
// 4-host storm kills 64 replicas at one instant. Anti-affinity guarantees
// each affected chain loses exactly one replica, so every one of them fails
// over, repairs, and finishes with an environment trace indistinguishable
// from an unreplicated run.
TEST(Fleet, StormAcceptance256Chains32Hosts) {
  FleetConfig config;
  config.chains = 256;
  config.hosts = 32;
  config.traffic.requests_per_chain = 4;
  config.verify = true;
  for (size_t h : StormHosts(32, 4)) {
    config.host_failures.push_back(HostFailure{h, SimTime::Millis(120)});
  }
  FleetResult result = Fleet(config).Run();
  EXPECT_EQ(result.chains_completed, 256u);
  EXPECT_EQ(result.chains_lost, 0u);
  EXPECT_EQ(result.hosts_failed, 4u);
  // Anti-affinity layers primaries onto even hosts and backups onto odd
  // ones; the storm hosts are all even, so all 64 killed replicas were
  // active -> 64 concurrent failovers, then 64 repairs.
  EXPECT_EQ(result.failovers, 64u);
  EXPECT_EQ(result.repairs, 64u);
  EXPECT_TRUE(result.all_env_consistent);
  EXPECT_GT(result.availability, 0.99);
  EXPECT_EQ(result.requests_served, result.requests_total);
  size_t killed = 0;
  for (const FleetHostReport& host : result.hosts) {
    killed += host.replicas_killed;
  }
  EXPECT_EQ(killed, 64u);
}

// --- WorkerPool: the deterministic sharding contract -----------------------

TEST(WorkerPool, SingleThreadRunsEveryIndexInOrder) {
  WorkerPool pool(1);
  std::vector<size_t> order;
  pool.Run(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(WorkerPool, ShardingCoversEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  const size_t kCount = 37;  // Deliberately not a multiple of the pool size.
  // One slot per index: each is written by exactly one worker (the static
  // shard i % threads), so plain stores are race-free by construction.
  std::vector<int> hits(kCount, 0);
  for (int round = 0; round < 3; ++round) {  // The pool is reusable.
    std::fill(hits.begin(), hits.end(), 0);
    pool.Run(kCount, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i], 1) << "index " << i << " round " << round;
    }
  }
}

TEST(WorkerPool, RunWithZeroOrFewerItemsThanThreadsIsFine) {
  WorkerPool pool(8);
  pool.Run(0, [](size_t) { FAIL() << "no index to run"; });
  std::vector<int> hits(3, 0);
  pool.Run(3, [&](size_t i) { ++hits[i]; });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

// --- Parallel rounds: serial/parallel equivalence --------------------------

// The nastiest barrier-interaction schedule: a mid-traffic two-host storm
// forces concurrent failovers and queued repairs, then a second host failure
// lands while those repairs' state transfers are still in flight — killing a
// rejoining-during-round joiner and forcing re-requests. Env verification
// stays on so every completed chain is also checked against its bare twin.
FleetConfig ParallelStormFleet() {
  FleetConfig config;
  config.chains = 16;
  config.hosts = 8;
  config.traffic.requests_per_chain = 6;
  config.verify = true;
  for (size_t h : StormHosts(8, 2)) {
    config.host_failures.push_back(HostFailure{h, SimTime::Millis(120)});
  }
  config.host_failures.push_back(HostFailure{1, SimTime::Millis(145)});
  return config;
}

TEST(Fleet, ParallelThreadsProduceIdenticalResults) {
  FleetConfig config = ParallelStormFleet();
  config.threads = 1;
  const FleetResult serial = Fleet(config).Run();
  // The schedule actually exercises the hard paths at the baseline.
  ASSERT_GT(serial.failovers, 0u);
  ASSERT_GT(serial.repairs, 0u);
  ASSERT_EQ(serial.hosts_failed, 3u);

  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    FleetConfig parallel_config = ParallelStormFleet();
    parallel_config.threads = threads;
    const FleetResult parallel = Fleet(parallel_config).Run();
    SCOPED_TRACE("threads=" + std::to_string(threads));

    EXPECT_EQ(parallel.fingerprint, serial.fingerprint);
    EXPECT_EQ(parallel.requests_total, serial.requests_total);
    EXPECT_EQ(parallel.requests_served, serial.requests_served);
    EXPECT_EQ(parallel.requests_within_slo, serial.requests_within_slo);
    EXPECT_DOUBLE_EQ(parallel.availability, serial.availability);
    EXPECT_DOUBLE_EQ(parallel.latency_ms.p50, serial.latency_ms.p50);
    EXPECT_DOUBLE_EQ(parallel.latency_ms.p99, serial.latency_ms.p99);
    EXPECT_DOUBLE_EQ(parallel.latency_ms.p999, serial.latency_ms.p999);
    EXPECT_DOUBLE_EQ(parallel.latency_ms.max, serial.latency_ms.max);
    EXPECT_EQ(parallel.makespan, serial.makespan);
    EXPECT_EQ(parallel.failovers, serial.failovers);
    EXPECT_EQ(parallel.repairs, serial.repairs);
    EXPECT_EQ(parallel.chains_completed, serial.chains_completed);
    EXPECT_EQ(parallel.chains_lost, serial.chains_lost);
    EXPECT_EQ(parallel.all_env_consistent, serial.all_env_consistent);

    ASSERT_EQ(parallel.chains.size(), serial.chains.size());
    for (size_t c = 0; c < serial.chains.size(); ++c) {
      const FleetChainReport& s = serial.chains[c];
      const FleetChainReport& p = parallel.chains[c];
      EXPECT_EQ(p.completed, s.completed) << "chain " << c;
      EXPECT_EQ(p.service_lost, s.service_lost) << "chain " << c;
      EXPECT_EQ(p.guest_checksum, s.guest_checksum) << "chain " << c;
      EXPECT_EQ(p.failovers, s.failovers) << "chain " << c;
      EXPECT_EQ(p.repairs, s.repairs) << "chain " << c;
      EXPECT_EQ(p.replicas_lost, s.replicas_lost) << "chain " << c;
      EXPECT_EQ(p.requests_served, s.requests_served) << "chain " << c;
      EXPECT_DOUBLE_EQ(p.availability, s.availability) << "chain " << c;
      EXPECT_EQ(p.env_consistent, s.env_consistent) << "chain " << c;
      EXPECT_EQ(p.completion_time, s.completion_time) << "chain " << c;
    }
    ASSERT_EQ(parallel.hosts.size(), serial.hosts.size());
    for (size_t h = 0; h < serial.hosts.size(); ++h) {
      EXPECT_EQ(parallel.hosts[h].failed, serial.hosts[h].failed) << "host " << h;
      EXPECT_EQ(parallel.hosts[h].replicas_killed, serial.hosts[h].replicas_killed)
          << "host " << h;
      EXPECT_EQ(parallel.hosts[h].repairs_hosted, serial.hosts[h].repairs_hosted)
          << "host " << h;
      EXPECT_EQ(parallel.hosts[h].repair_queue_peak, serial.hosts[h].repair_queue_peak)
          << "host " << h;
    }
  }
}

TEST(Fleet, ThreadCountBeyondChainCountStillMatches) {
  FleetConfig config = SmallFleet();  // 2 chains.
  config.verify = false;
  config.host_failures.push_back(HostFailure{0, SimTime::Millis(120)});
  config.threads = 1;
  const FleetResult serial = Fleet(config).Run();
  config.threads = 8;  // More workers than chains: most shards are empty.
  const FleetResult parallel = Fleet(config).Run();
  EXPECT_EQ(parallel.fingerprint, serial.fingerprint);
  EXPECT_EQ(parallel.makespan, serial.makespan);
}

}  // namespace
}  // namespace hbft
