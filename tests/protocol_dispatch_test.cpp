// Regression tests for the role dispatch of real-device completions.
//
// ReplicaNodeBase used to provide HandleDiskCompletion / HandleConsoleTxDone
// bodies that were HBFT_CHECK(false) "not implemented for this role" traps: a
// completion event landing on a role without an override aborted the run.
// The handlers are now pure virtual — a role without a handler cannot be
// instantiated at all — and these tests pin down that every path that can
// receive a real completion (primary, solo primary, promoted backup) handles
// it and finishes the workload.
#include <gtest/gtest.h>

#include <type_traits>

#include "core/backup.hpp"
#include "core/primary.hpp"
#include "core/protocol.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace {

// The dispatch is unreachable-by-construction: no concrete replica role can
// exist without its own completion handlers.
static_assert(std::is_abstract_v<ReplicaNodeBase>,
              "ReplicaNodeBase must stay abstract: completion handlers are per-role");
static_assert(!std::is_abstract_v<PrimaryNode>, "PrimaryNode must implement both handlers");
static_assert(!std::is_abstract_v<BackupNode>, "BackupNode must implement both handlers");

WorkloadSpec DiskAndConsoleSpec() {
  // TxnLog issues disk writes and per-record console progress: both real
  // completion paths (disk, console TX) fire on whichever node drives the
  // devices.
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTxnLog;
  spec.iterations = 6;
  spec.num_blocks = 8;
  return spec;
}

TEST(ProtocolDispatch, PrimaryHandlesDiskAndConsoleCompletions) {
  ScenarioResult ft = Scenario::Replicated(DiskAndConsoleSpec()).Epoch(4096).Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out << " deadlocked=" << ft.deadlocked;
  ASSERT_EQ(ft.exited_flag, 1u) << "guest panic " << ft.panic_code;
  // The primary drove real I/O (disk writes + console chars) to completion.
  EXPECT_GE(ft.primary_stats().io_issued, 6u);
  EXPECT_FALSE(ft.console_output.empty());
}

TEST(ProtocolDispatch, PromotedBackupHandlesRedrivenCompletions) {
  // Kill the primary with an operation in flight: the promoted backup
  // synthesises the uncertain interrupt (P7), re-drives the op against the
  // real disk, and must then handle the real completion itself.
  ScenarioResult ft =
      Scenario::Replicated(DiskAndConsoleSpec())
          .Epoch(4096)
          .FailAtPhase(FailPhase::kAfterIoIssue, 0, FailurePlan::CrashIo::kNotPerformed)
          .Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out << " deadlocked=" << ft.deadlocked;
  ASSERT_TRUE(ft.promoted);
  ASSERT_EQ(ft.exited_flag, 1u) << "guest panic " << ft.panic_code;
  EXPECT_GE(ft.backup_stats().uncertain_synthesised, 1u);
  EXPECT_GE(ft.backup_stats().io_issued, 1u);
}

TEST(ProtocolDispatch, SoloPrimaryHandlesCompletionsAfterBackupDies) {
  // The other completion route: the backup dies, the primary drops to solo
  // mode and keeps driving (and completing) real device operations.
  ScenarioResult ft = Scenario::Replicated(DiskAndConsoleSpec())
                          .Epoch(4096)
                          .FailAtTime(SimTime::Millis(5), FailurePlan::Target::kBackup)
                          .Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out << " deadlocked=" << ft.deadlocked;
  EXPECT_FALSE(ft.promoted);
  ASSERT_EQ(ft.exited_flag, 1u) << "guest panic " << ft.panic_code;
  EXPECT_GE(ft.primary_stats().io_issued, 6u);
}

TEST(ProtocolDispatch, EveryPhaseKillLeavesCompletionsHandled) {
  // Sweep the in-flight-I/O crash phases with both crash-IO resolutions: in
  // every case the surviving role owns the outstanding completions.
  for (FailPhase phase : {FailPhase::kBeforeIoIssue, FailPhase::kAfterIoIssue}) {
    for (auto crash_io : {FailurePlan::CrashIo::kPerformed, FailurePlan::CrashIo::kNotPerformed}) {
      ScenarioResult ft = Scenario::Replicated(DiskAndConsoleSpec())
                              .Epoch(4096)
                              .FailAtPhase(phase, 0, crash_io)
                              .Run();
      ASSERT_TRUE(ft.completed)
          << FailPhaseName(phase) << " crash_io=" << static_cast<int>(crash_io);
      ASSERT_EQ(ft.exited_flag, 1u) << FailPhaseName(phase);
    }
  }
}

}  // namespace
}  // namespace hbft
