#!/usr/bin/env python3
"""Tests for tools/lint/hbft_lint.py.

Three layers:

  * Fixture files under tests/lint/fixtures/, one (or two) seeded violations
    per rule, asserting each rule fires at the expected line and that every
    suppression form (allow same-line, allow line-above, allow-file,
    derived-state) actually suppresses.

  * The full src/ tree must lint clean — the same gate CI enforces.

  * Mutation tests against the real tree: deleting a single field write from
    a Snapshotable CaptureState implementation must turn the lint red
    (the acceptance property the snapshot-completeness and codec-symmetry
    checks exist for).

Run directly (`python3 tests/lint_test.py`) or via CTest (`ctest -R lint`).
"""

import os
import re
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO, "tools", "lint", "hbft_lint.py")
FIXTURES = os.path.join(REPO, "tests", "lint", "fixtures")


def run_lint(*paths, root=REPO):
    proc = subprocess.run(
        [sys.executable, LINT, "--root", root, *paths],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def fixture(name):
    return os.path.join(FIXTURES, name)


class FixtureViolations(unittest.TestCase):
    """Each rule's seeded violations are caught, at the marked lines."""

    def assert_rule(self, name, rule, lines):
        code, out = run_lint(fixture(name))
        self.assertEqual(code, 1, f"{name}: expected exit 1, got {code}\n{out}")
        found = [int(m.group(1))
                 for m in re.finditer(rf"\.cpp:(\d+): \[{re.escape(rule)}\]", out)]
        self.assertEqual(sorted(found), sorted(lines),
                         f"{name}: [{rule}] at {found}, wanted {lines}\n{out}")
        # Nothing but the seeded rule fires: a fixture that trips extra rules
        # is testing less than it claims.
        other = [ln for ln in out.splitlines()
                 if re.search(r"\[[a-z-]+\]", ln) and f"[{rule}]" not in ln]
        self.assertEqual(other, [], f"{name}: unexpected extra findings: {other}")

    def test_wall_clock(self):
        self.assert_rule("det_wall_clock.cpp", "wall-clock", [9, 14])

    def test_ambient_rand(self):
        self.assert_rule("det_ambient_rand.cpp", "ambient-rand", [9, 13])

    def test_unordered_container(self):
        self.assert_rule("det_unordered_container.cpp", "unordered-container", [15])

    def test_unordered_iteration_fires_under_suppressed_declaration(self):
        self.assert_rule("det_unordered_iteration.cpp", "unordered-iteration", [14, 17])

    def test_pointer_keyed(self):
        self.assert_rule("det_pointer_keyed.cpp", "pointer-keyed", [14, 15, 19])

    def test_snapshot_field(self):
        self.assert_rule("snapshot_incomplete.cpp", "snapshot-field", [28])

    def test_codec_symmetry(self):
        self.assert_rule("codec_asymmetry.cpp", "codec-symmetry", [15, 31])

    def test_bad_suppression(self):
        self.assert_rule("bad_suppression.cpp", "bad-suppression", [8, 11])

    def test_thread_id(self):
        self.assert_rule("det_thread_id.cpp", "thread-id", [8])

    def test_thread_spawn(self):
        # Two spawns flagged; std::thread::hardware_concurrency (line 19)
        # must not be — it is a capability query, not thread creation.
        self.assert_rule("det_thread_spawn.cpp", "thread-spawn", [10, 15])

    def test_detached_thread(self):
        # The fixture's std::thread decl carries a reasoned allow-file so
        # only the detach itself fires.
        self.assert_rule("det_detached_thread.cpp", "detached-thread", [10])

    def test_thread_local_state(self):
        # Line 10: the bare declaration. Line 23: an *allowed* thread_local
        # referenced inside CaptureState — codec reachability re-flags it
        # despite the allow on the declaration.
        self.assert_rule("det_thread_local.cpp", "thread-state", [10, 23])


class Suppressions(unittest.TestCase):
    """Every annotation form silences its rule (and only with a reason)."""

    def test_all_forms_lint_clean(self):
        # suppressed_ok.cpp carries: allow() same-line, allow() line-above,
        # allow-file(), and derived-state — and would trip wall-clock,
        # ambient-rand, unordered-container, and snapshot-field without them.
        code, out = run_lint(fixture("suppressed_ok.cpp"))
        self.assertEqual(code, 0, out)

    def test_clean_file_is_clean(self):
        code, out = run_lint(fixture("clean.cpp"))
        self.assertEqual(code, 0, out)

    def test_stripping_the_annotations_unsuppresses(self):
        # The same file with its hbft-lint annotations removed must fail for
        # each formerly-suppressed rule: proves the clean verdict above comes
        # from the annotations, not from the rules missing the patterns.
        with open(fixture("suppressed_ok.cpp"), encoding="utf-8") as f:
            text = f.read()
        stripped = re.sub(r"(//|) ?hbft-lint:[^\n]*", "", text)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "unsuppressed.cpp")
            with open(path, "w", encoding="utf-8") as f:
                f.write(stripped)
            code, out = run_lint(path, root=tmp)
            self.assertEqual(code, 1, out)
            for rule in ("wall-clock", "ambient-rand", "unordered-container",
                         "snapshot-field"):
                self.assertIn(f"[{rule}]", out, out)


class FullTree(unittest.TestCase):
    """src/ is clean — the CI gate, asserted here so a local `ctest -R lint`
    answers the same question."""

    def test_src_tree_clean(self):
        code, out = run_lint("src")
        self.assertEqual(code, 0, out)


class MutationOnRealTree(unittest.TestCase):
    """Deleting one field write from a real Snapshotable::CaptureState makes
    the lint fail (via codec-symmetry when only the writer side is edited,
    via snapshot-field when both sides drop the member)."""

    # (file, one full line inside CaptureState to delete)
    WRITER_MUTATIONS = [
        ("src/machine/tlb.cpp", "  w.U64(lookups_);"),
        ("src/machine/machine.cpp", None),  # auto-pick below
        ("src/hypervisor/hypervisor.cpp", None),
        ("src/devices/disk.cpp", None),
        ("src/devices/nic.cpp", None),
    ]

    @staticmethod
    def capture_write_line(path):
        """First `w.<Width>(...);`-only line inside a Capture* method body."""
        with open(path, encoding="utf-8") as f:
            lines = f.readlines()
        inside = False
        for line in lines:
            if re.search(r"::Capture\w*\(SnapshotWriter& w[,)]", line):
                inside = True
                continue
            if inside and re.match(r"^\}", line):
                inside = False
            if inside and re.match(r"^\s+w\.(U8|U16|U32|U64|I64|Bool)\([^;]*\);\s*$", line):
                return line.rstrip("\n")
        return None

    def lint_mutated(self, rel_path, doomed_line):
        src = os.path.join(REPO, rel_path)
        with open(src, encoding="utf-8") as f:
            text = f.read()
        self.assertIn(doomed_line + "\n", text, f"{rel_path}: line to delete not found")
        mutated = text.replace(doomed_line + "\n", "", 1)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, os.path.basename(rel_path))
            with open(path, "w", encoding="utf-8") as f:
                f.write(mutated)
            return run_lint(path, root=tmp)

    def test_deleting_one_capture_write_fails_lint(self):
        for rel_path, doomed in self.WRITER_MUTATIONS:
            with self.subTest(file=rel_path):
                if doomed is None:
                    doomed = self.capture_write_line(os.path.join(REPO, rel_path))
                    self.assertIsNotNone(
                        doomed, f"{rel_path}: no deletable capture write found")
                code, out = self.lint_mutated(rel_path, doomed)
                self.assertEqual(code, 1,
                                 f"{rel_path}: lint stayed green after deleting "
                                 f"`{doomed.strip()}`\n{out}")
                self.assertIn("[codec-symmetry]", out, out)

    def test_unmutated_files_stay_green(self):
        # The counterpart: the same single files lint clean unmutated, so the
        # red verdicts above are caused by the mutation alone.
        for rel_path, _ in self.WRITER_MUTATIONS:
            with self.subTest(file=rel_path):
                code, out = run_lint(rel_path)
                self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main(verbosity=2)
