// ISA encoding/decoding tests, including a property-style sweep over every
// opcode and representative field values.
#include <gtest/gtest.h>

#include "isa/disassembler.hpp"
#include "isa/isa.hpp"

namespace hbft {
namespace {

TEST(IsaTable, EveryValidOpcodeHasFormatAndMnemonic) {
  int valid = 0;
  for (int op = 0; op <= kMaxOpcode; ++op) {
    auto format = FormatFor(static_cast<uint8_t>(op));
    if (!format.has_value()) {
      continue;
    }
    ++valid;
    const char* mnemonic = MnemonicFor(static_cast<Opcode>(op));
    ASSERT_NE(mnemonic, nullptr);
    auto back = OpcodeForMnemonic(mnemonic);
    ASSERT_TRUE(back.has_value()) << mnemonic;
    EXPECT_EQ(static_cast<int>(*back), op) << mnemonic;
  }
  EXPECT_EQ(valid, 50);
}

TEST(IsaTable, PrivilegedSetMatchesSpec) {
  EXPECT_TRUE(IsPrivileged(Opcode::kRfi));
  EXPECT_TRUE(IsPrivileged(Opcode::kMfcr));
  EXPECT_TRUE(IsPrivileged(Opcode::kMtcr));
  EXPECT_TRUE(IsPrivileged(Opcode::kTlbi));
  EXPECT_TRUE(IsPrivileged(Opcode::kTlbf));
  EXPECT_TRUE(IsPrivileged(Opcode::kLwp));
  EXPECT_TRUE(IsPrivileged(Opcode::kSwp));
  EXPECT_TRUE(IsPrivileged(Opcode::kHalt));
  EXPECT_FALSE(IsPrivileged(Opcode::kAdd));
  EXPECT_FALSE(IsPrivileged(Opcode::kSyscall));  // The gate is unprivileged.
  EXPECT_FALSE(IsPrivileged(Opcode::kProbe));
  EXPECT_FALSE(IsPrivileged(Opcode::kJal));
}

TEST(IsaDecode, InvalidOpcodeRejected) {
  // Opcode 0x2A..0x2F are unassigned.
  EXPECT_FALSE(Decode(0x2Au << 26).has_value());
  EXPECT_FALSE(Decode(0x2Fu << 26).has_value());
}

class EncodeDecodeRoundTrip : public testing::TestWithParam<int> {};

TEST_P(EncodeDecodeRoundTrip, AllFieldPatterns) {
  uint8_t opcode = static_cast<uint8_t>(GetParam());
  auto format = FormatFor(opcode);
  if (!format.has_value()) {
    GTEST_SKIP() << "unassigned opcode";
  }
  DecodedInstr instr;
  instr.op = static_cast<Opcode>(opcode);
  instr.format = *format;

  const uint8_t regs[] = {0, 1, 15, 31};
  const int32_t imms_i[] = {-32768, -1, 0, 1, 32767};
  const int32_t imms_j[] = {-(1 << 20), -1, 0, 1, (1 << 20) - 1};

  switch (*format) {
    case InstrFormat::kR:
      for (uint8_t rd : regs) {
        for (uint8_t rs1 : regs) {
          for (uint8_t rs2 : regs) {
            instr.rd = rd;
            instr.rs1 = rs1;
            instr.rs2 = rs2;
            instr.imm = 0;
            auto decoded = Decode(Encode(instr));
            ASSERT_TRUE(decoded.has_value());
            EXPECT_EQ(*decoded, instr);
          }
        }
      }
      break;
    case InstrFormat::kI: {
      // Decoder zero-extends logical immediates; compare against its view.
      for (uint8_t rd : regs) {
        for (int32_t imm : imms_i) {
          instr.rd = rd;
          instr.rs1 = regs[1];
          instr.rs2 = 0;
          instr.imm = imm;
          uint32_t word = Encode(instr);
          auto decoded = Decode(word);
          ASSERT_TRUE(decoded.has_value());
          EXPECT_EQ(decoded->rd, instr.rd);
          EXPECT_EQ(decoded->rs1, instr.rs1);
          EXPECT_EQ(static_cast<uint16_t>(decoded->imm), static_cast<uint16_t>(imm));
          EXPECT_EQ(Encode(*decoded), word);  // Re-encode is stable.
        }
      }
      break;
    }
    case InstrFormat::kB:
      for (uint8_t rs1 : regs) {
        for (int32_t imm : imms_i) {
          instr.rd = 0;
          instr.rs1 = rs1;
          instr.rs2 = regs[2];
          instr.imm = imm;
          auto decoded = Decode(Encode(instr));
          ASSERT_TRUE(decoded.has_value());
          EXPECT_EQ(*decoded, instr);
        }
      }
      break;
    case InstrFormat::kJ:
      for (uint8_t rd : regs) {
        for (int32_t imm : imms_j) {
          instr.rd = rd;
          instr.rs1 = 0;
          instr.rs2 = 0;
          instr.imm = imm;
          auto decoded = Decode(Encode(instr));
          ASSERT_TRUE(decoded.has_value());
          EXPECT_EQ(*decoded, instr);
        }
      }
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodeDecodeRoundTrip, testing::Range(0, kMaxOpcode + 1));

TEST(Disassembler, RendersCoreForms) {
  EXPECT_EQ(Disassemble(EncodeR(Opcode::kAdd, 3, 4, 5), 0), "add r3, r4, r5");
  EXPECT_EQ(Disassemble(EncodeI(Opcode::kAddi, 1, 2, -7), 0), "addi r1, r2, -7");
  EXPECT_EQ(Disassemble(EncodeI(Opcode::kLw, 9, 30, 16), 0), "lw r9, 16(r30)");
  EXPECT_EQ(Disassemble(EncodeI(Opcode::kSw, 9, 30, -4), 0), "sw r9, -4(r30)");
  EXPECT_EQ(Disassemble(EncodeB(Opcode::kBeq, 1, 2, 4), 0x100), "beq r1, r2, 0x114");
  EXPECT_EQ(Disassemble(EncodeJ(Opcode::kJal, 31, -2), 0x100), "jal r31, 0xfc");
  EXPECT_EQ(Disassemble(EncodeI(Opcode::kMfcr, 7, 0, kCrTod), 0), "mfcr r7, cr8");
  EXPECT_EQ(Disassemble(EncodeR(Opcode::kRfi, 0, 0, 0), 0), "rfi");
  EXPECT_EQ(Disassemble(0xA8000000, 0).substr(0, 5), ".word");  // Opcode 0x2A unassigned.
}

TEST(IsaLayout, MmioWindows) {
  EXPECT_TRUE(IsMmioAddress(kDiskMmioBase));
  EXPECT_TRUE(IsMmioAddress(kConsoleMmioBase + 0x10));
  EXPECT_FALSE(IsMmioAddress(kMmioLimit));
  EXPECT_FALSE(IsMmioAddress(0));
  EXPECT_FALSE(IsMmioAddress(0xEFFFFFFF));
}

TEST(IsaPte, FieldPacking) {
  uint32_t pte = Pte::Make(0xABCDE, Pte::kValid | Pte::kWritable);
  EXPECT_EQ(Pte::PfnOf(pte), 0xABCDEu);
  EXPECT_NE(pte & Pte::kValid, 0u);
  EXPECT_NE(pte & Pte::kWritable, 0u);
  EXPECT_EQ(pte & Pte::kUser, 0u);
}

}  // namespace
}  // namespace hbft
