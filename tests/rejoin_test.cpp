// Repair-path tests: live state transfer, chain rejoin, and the
// fail -> rejoin -> fail schedules the paper leaves as "bringing a new
// backup online".
#include <gtest/gtest.h>

#include "common/snapshot.hpp"
#include "guest/image.hpp"
#include "guest/workloads.hpp"
#include "sim/environment_observer.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace {

// The joiner's boundary fingerprints must continue the source's exactly:
// node `joiner` resumed at join_epoch, so its i-th fingerprint is the
// source's (join_epoch + i)-th. Returns the number of epochs compared.
size_t ExpectLockstepFromJoin(const ScenarioResult& r, size_t source, size_t joiner) {
  const auto& src = r.nodes[source].boundary_fingerprints;
  const auto& join = r.nodes[joiner].boundary_fingerprints;
  const uint64_t offset = r.nodes[joiner].join_epoch;
  size_t compared = 0;
  for (size_t i = 0; i < join.size() && offset + i < src.size(); ++i) {
    EXPECT_EQ(join[i], src[offset + i])
        << "lockstep divergence at joiner epoch " << offset + i;
    ++compared;
  }
  return compared;
}

TEST(Rejoin, BackupRejoinsAfterPrimaryKillAndMirrorsTheSource) {
  WorkloadSpec spec = WorkloadSpec::PaperDiskWrite(24);
  ScenarioResult ft = Scenario::Replicated(spec)
                          .AuditLockstep()
                          .FailAtPhase(FailPhase::kAfterSendTme, 2)
                          .RejoinAfterFail(SimTime::Millis(10))
                          .Run();
  ASSERT_TRUE(ft.completed);
  EXPECT_TRUE(ft.promoted);
  ASSERT_EQ(ft.resyncs.size(), 1u);
  const ResyncReport& resync = ft.resyncs[0];
  EXPECT_TRUE(resync.cut);
  ASSERT_TRUE(resync.completed);
  EXPECT_EQ(resync.source, 1u);  // The promoted backup streamed the snapshot.
  EXPECT_EQ(resync.joined, 2u);
  EXPECT_GT(resync.bytes, 0u);
  EXPECT_GT(resync.page_chunks, 0u);
  EXPECT_GT(resync.zero_run_chunks, 0u);  // Mostly-idle RAM compresses.
  EXPECT_GE(resync.join_time, resync.cut_time);

  ASSERT_EQ(ft.nodes.size(), 3u);
  EXPECT_TRUE(ft.nodes[2].rejoined);
  EXPECT_TRUE(ft.nodes[2].joined);
  EXPECT_EQ(ft.nodes[2].join_epoch, resync.join_epoch);
  // The rejoined backup runs in exact lockstep with its source from the
  // join epoch to the end of the run.
  size_t compared = ExpectLockstepFromJoin(ft, 1, 2);
  EXPECT_GT(compared, 0u);

  // Fault transparency still holds for the run as a whole.
  ScenarioResult bare = Scenario::Replicated(spec).AsBare().Run();
  ASSERT_TRUE(bare.completed);
  EXPECT_EQ(ft.guest_checksum, bare.guest_checksum);
  ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace, ft.issuer_chain());
  EXPECT_TRUE(env.ok) << env.detail;
}

// The acceptance scenario: a 3-replica chain survives primary-kill ->
// rejoin -> new-primary-kill, over a 5% lossy/reordering wire, with the
// environment seeing a sequence consistent with a single machine.
TEST(Rejoin, ThreeReplicaKillRejoinKillSurvivesLossyLink) {
  WorkloadSpec spec = WorkloadSpec::PaperDiskWrite(28);
  Scenario scenario = Scenario::Replicated(spec)
                          .Backups(2)
                          .LinkFaults(LinkFaults::SymmetricLoss(0.05))
                          .FailAtPhase(FailPhase::kAfterSendTme, 2)
                          .RejoinAfterFail(SimTime::Millis(10))
                          .FailAfterResync(SimTime::Millis(5));
  ScenarioResult ft = scenario.Run();
  ASSERT_TRUE(ft.completed);
  EXPECT_FALSE(ft.service_lost);
  ASSERT_EQ(ft.resyncs.size(), 1u);
  EXPECT_TRUE(ft.resyncs[0].completed);
  // Both kills landed: the primary's, then (after the resync) the promoted
  // backup's; the second promoted backup finishes with the rejoined node as
  // its standing backup.
  EXPECT_EQ(ft.crash_times.size(), 2u);
  ASSERT_EQ(ft.nodes.size(), 4u);
  EXPECT_TRUE(ft.nodes[1].promoted);
  EXPECT_TRUE(ft.nodes[2].promoted);
  EXPECT_TRUE(ft.nodes[3].joined);

  ScenarioResult bare = scenario.AsBare().Run();
  ASSERT_TRUE(bare.completed);
  EXPECT_EQ(ft.guest_checksum, bare.guest_checksum);
  ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace, ft.issuer_chain());
  EXPECT_TRUE(env.ok) << env.detail;
}

// Repeated failure cycles: kill -> rejoin -> kill -> rejoin -> kill. Each
// promoted replica adopts a fresh joiner, so a 1-backup chain outlives three
// active-replica failures.
TEST(Rejoin, RepeatedFailRejoinCyclesKeepTheServiceAlive) {
  WorkloadSpec spec = WorkloadSpec::PaperDiskWrite(40);
  Scenario scenario = Scenario::Replicated(spec)
                          .FailAtPhase(FailPhase::kAfterSendTme, 2)
                          .RejoinAfterFail(SimTime::Millis(10))
                          .FailAfterResync(SimTime::Millis(5))
                          .RejoinAfterFail(SimTime::Millis(10))
                          .FailAfterResync(SimTime::Millis(5));
  ScenarioResult ft = scenario.Run();
  ASSERT_TRUE(ft.completed);
  EXPECT_FALSE(ft.service_lost);
  EXPECT_EQ(ft.crash_times.size(), 3u);
  ASSERT_EQ(ft.resyncs.size(), 2u);
  EXPECT_TRUE(ft.resyncs[0].completed);
  EXPECT_TRUE(ft.resyncs[1].completed);
  // Spawn order: primary, backup, joiner 1, joiner 2 — the final survivor
  // is the second joiner, promoted after the third kill.
  ASSERT_EQ(ft.nodes.size(), 4u);
  EXPECT_TRUE(ft.nodes[3].joined);
  EXPECT_TRUE(ft.nodes[3].promoted);

  ScenarioResult bare = scenario.AsBare().Run();
  ASSERT_TRUE(bare.completed);
  EXPECT_EQ(ft.guest_checksum, bare.guest_checksum);
  ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace, ft.issuer_chain());
  EXPECT_TRUE(env.ok) << env.detail;
}

// A rejoin into a fully healthy chain grows it: the standing backup (not
// the active primary) serves as the transfer source, and the joiner tracks
// the protocol stream relayed through it in exact lockstep.
TEST(Rejoin, HealthyChainGrowsByOneBackup) {
  WorkloadSpec spec = WorkloadSpec::PaperDiskWrite(24);
  ScenarioResult ft = Scenario::Replicated(spec)
                          .AuditLockstep()
                          .RejoinAtTime(SimTime::Millis(8))
                          .Run();
  ASSERT_TRUE(ft.completed);
  EXPECT_FALSE(ft.promoted);
  ASSERT_EQ(ft.resyncs.size(), 1u);
  const ResyncReport& resync = ft.resyncs[0];
  ASSERT_TRUE(resync.completed);
  EXPECT_EQ(resync.source, 1u);  // The chain tail, not the primary.
  EXPECT_EQ(resync.joined, 2u);
  ASSERT_EQ(ft.nodes.size(), 3u);
  EXPECT_TRUE(ft.nodes[2].joined);
  size_t compared = ExpectLockstepFromJoin(ft, 1, 2);
  EXPECT_GT(compared, 0u);
  // And against the primary too: the whole chain runs one instruction
  // stream.
  compared = ExpectLockstepFromJoin(ft, 0, 2);
  EXPECT_GT(compared, 0u);
}

// Delta rounds converge under a write-heavy guest: the transfer's report
// shows the initial sweep plus at least one dirty-page round, and the cut
// still lands.
TEST(Rejoin, DeltaRoundsConvergeUnderDiskWrites) {
  WorkloadSpec spec = WorkloadSpec::PaperDiskWrite(32);
  StateTransferConfig resync_config;
  resync_config.cut_threshold_pages = 4;  // Make convergence earn its cut.
  ScenarioResult ft = Scenario::Replicated(spec)
                          .Resync(resync_config)
                          .RejoinAtTime(SimTime::Millis(8))
                          .Run();
  ASSERT_TRUE(ft.completed);
  ASSERT_EQ(ft.resyncs.size(), 1u);
  const ResyncReport& resync = ft.resyncs[0];
  ASSERT_TRUE(resync.completed);
  EXPECT_GE(resync.rounds, 1u);
  EXPECT_EQ(resync.full_pages, 4u * 1024u * 1024u / kPageBytes);
  EXPECT_EQ(ft.TotalResyncBytes(), resync.bytes);
}

// A rejoin landing inside the window between a standing backup's death and
// its failure detection must not attach: the source still believes its old
// downstream alive, and the pending detection callback would land on the
// fresh transfer. The rejoin is skipped; one scheduled after detection
// attaches normally.
TEST(Rejoin, RejoinBeforeDownstreamDetectionIsSkipped) {
  WorkloadSpec spec = WorkloadSpec::PaperDiskWrite(16);
  // Kill the standing backup, then rejoin 1 ms later — well inside the 5 ms
  // detection timeout, so the primary is not yet solo.
  ScenarioResult early = Scenario::Replicated(spec)
                             .FailAtTime(SimTime::Millis(10), FailurePlan::Target::kBackup)
                             .RejoinAfterFail(SimTime::Millis(1))
                             .Run();
  ASSERT_TRUE(early.completed);
  EXPECT_TRUE(early.resyncs.empty());  // Skipped, safely.

  // Same schedule with the rejoin after the detection window: it attaches,
  // and the solo primary streams as the source.
  ScenarioResult late = Scenario::Replicated(spec)
                            .FailAtTime(SimTime::Millis(10), FailurePlan::Target::kBackup)
                            .RejoinAfterFail(SimTime::Millis(10))
                            .Run();
  ASSERT_TRUE(late.completed);
  ASSERT_EQ(late.resyncs.size(), 1u);
  EXPECT_TRUE(late.resyncs[0].completed);
  EXPECT_EQ(late.resyncs[0].source, 0u);  // The primary itself.
  ASSERT_EQ(late.nodes.size(), 3u);
  EXPECT_TRUE(late.nodes[2].joined);
}

// Killing the transfer source before the cut: the joiner holds an
// incomplete snapshot and cannot take over — the service is (correctly)
// lost, and the run ends without wedging or deadlocking.
TEST(Rejoin, SourceDeathMidTransferLosesServiceWithoutWedging) {
  WorkloadSpec spec = WorkloadSpec::PaperDiskWrite(24);
  StateTransferConfig resync_config;
  resync_config.window = 1;  // Throttle so the kill lands mid-stream.
  FailurePlan kill_mid_transfer;
  kill_mid_transfer.kind = FailurePlan::Kind::kAtTime;
  kill_mid_transfer.time = SimTime::Millis(2);  // 2ms after the rejoin fired.
  kill_mid_transfer.relative = true;
  ScenarioResult ft = Scenario::Replicated(spec)
                          .Resync(resync_config)
                          .FailAtPhase(FailPhase::kAfterSendTme, 2)
                          .RejoinAfterFail(SimTime::Millis(10))
                          .FailAt(kill_mid_transfer)
                          .Run();
  EXPECT_FALSE(ft.completed);
  EXPECT_TRUE(ft.service_lost);
  EXPECT_FALSE(ft.deadlocked);
  ASSERT_EQ(ft.resyncs.size(), 1u);
  EXPECT_FALSE(ft.resyncs[0].completed);
  ASSERT_EQ(ft.nodes.size(), 3u);
  EXPECT_FALSE(ft.nodes[2].joined);
}

}  // namespace
}  // namespace hbft
