// Cascading-failover tests for the backup chain: a world of 1 primary + k
// backups must survive k successive fail-stop faults of the serving replica.
// The promoted backup re-protects itself by relaying to its own backup
// (cascaded acks), so after "kill the primary, then kill the promoted
// backup" the second backup serves with the environment still consistent
// against the bare reference.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/failure_detector.hpp"
#include "guest/workloads.hpp"
#include "net/channel.hpp"
#include "sim/environment_observer.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace {

WorkloadSpec TxnSpec(uint32_t records) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTxnLog;
  spec.iterations = records;
  spec.num_blocks = 16;
  return spec;
}

void VerifyAgainstBare(const WorkloadSpec& spec, const ScenarioResult& bare,
                       const ScenarioResult& ft) {
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out << " deadlocked=" << ft.deadlocked
                            << " service_lost=" << ft.service_lost;
  ASSERT_EQ(ft.exited_flag, 1u) << "guest panic " << ft.panic_code;
  EXPECT_EQ(ft.exit_code, bare.exit_code);
  if (spec.kind != WorkloadKind::kTime) {
    EXPECT_EQ(ft.guest_checksum, bare.guest_checksum);
  }
  ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace, ft.issuer_chain());
  EXPECT_TRUE(env.ok) << env.detail;
}

// ---------------------------------------------------------------------------
// No failures: a three-replica chain stays in lockstep end to end.
// ---------------------------------------------------------------------------

TEST(Cascade, ThreeReplicaChainRunsInLockstep) {
  WorkloadSpec spec = TxnSpec(8);
  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);

  ScenarioResult ft = Scenario::Replicated(spec).Backups(2).Epoch(4096).AuditLockstep().Run();
  VerifyAgainstBare(spec, bare, ft);
  EXPECT_FALSE(ft.promoted);
  ASSERT_EQ(ft.nodes.size(), 3u);

  // The second backup followed via relays only; it never acked upstream
  // before its own downstream... there is no downstream: it acks directly.
  EXPECT_GT(ft.backup_stats(0).relays_forwarded, 0u);
  EXPECT_EQ(ft.backup_stats(1).relays_forwarded, 0u);
  EXPECT_EQ(ft.backup_stats(0).io_issued, 0u);
  EXPECT_EQ(ft.backup_stats(1).io_issued, 0u);

  // Lockstep holds across every adjacent pair of the chain.
  for (size_t a = 0; a + 1 < ft.nodes.size(); ++a) {
    size_t prefix = MatchingBoundaryPrefix(ft, a, a + 1);
    size_t compared = std::min(ft.nodes[a].boundary_fingerprints.size(),
                               ft.nodes[a + 1].boundary_fingerprints.size());
    EXPECT_EQ(prefix, compared) << "chain pair " << a << "/" << a + 1 << " diverged at " << prefix;
    EXPECT_GT(compared, 0u);
  }
}

// ---------------------------------------------------------------------------
// The acceptance scenario: kill the primary mid-epoch, then kill the first
// promoted backup at an I/O phase. The second backup must finish the
// workload with the environment checks green per surviving pair.
// ---------------------------------------------------------------------------

TEST(Cascade, SurvivesPrimaryThenPromotedBackupFailure) {
  WorkloadSpec spec = TxnSpec(12);
  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);

  ScenarioResult ft =
      Scenario::Replicated(spec)
          .Backups(2)
          .Epoch(4096)
          .AuditLockstep()
          .FailAtTime(SimTime::Millis(4))  // Mid-epoch primary kill.
          .FailAtPhase(FailPhase::kAfterIoIssue, 0,
                       FailurePlan::CrashIo::kNotPerformed)  // Promoted backup, mid-I/O.
          .Run();
  VerifyAgainstBare(spec, bare, ft);
  ASSERT_EQ(ft.nodes.size(), 3u);
  ASSERT_EQ(ft.crash_times.size(), 2u);
  EXPECT_TRUE(ft.nodes[1].promoted);
  EXPECT_TRUE(ft.nodes[2].promoted);
  EXPECT_GE(ft.nodes[1].promotion_time.picos(), ft.crash_times[0].picos());
  EXPECT_GE(ft.nodes[2].promotion_time.picos(), ft.crash_times[1].picos());
  EXPECT_GT(ft.crash_times[1].picos(), ft.crash_times[0].picos());
  // The final survivor drove real I/O.
  EXPECT_GE(ft.backup_stats(1).io_issued, 1u);

  // Lockstep per surviving pair: fingerprints match for every epoch both
  // members of the (then-active) pair recorded.
  size_t p01 = MatchingBoundaryPrefix(ft, 0, 1);
  size_t c01 = std::min(ft.nodes[0].boundary_fingerprints.size(),
                        ft.nodes[1].boundary_fingerprints.size());
  EXPECT_EQ(p01, c01) << "primary/backup1 diverged at boundary " << p01;
  size_t p12 = MatchingBoundaryPrefix(ft, 1, 2);
  size_t c12 = std::min(ft.nodes[1].boundary_fingerprints.size(),
                        ft.nodes[2].boundary_fingerprints.size());
  EXPECT_EQ(p12, c12) << "backup1/backup2 diverged at boundary " << p12;
  EXPECT_GT(c12, 0u);
}

// Same cascade under the revised (output-commit) protocol variant.
TEST(Cascade, SurvivesTwoFaultsUnderRevisedProtocol) {
  WorkloadSpec spec = TxnSpec(10);
  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);

  ScenarioResult ft = Scenario::Replicated(spec)
                          .Backups(2)
                          .Epoch(4096)
                          .Variant(ProtocolVariant::kRevised)
                          .FailAtPhase(FailPhase::kAfterSendTme, 2)
                          .FailAtPhase(FailPhase::kAfterIoIssue)
                          .Run();
  VerifyAgainstBare(spec, bare, ft);
  EXPECT_TRUE(ft.nodes[1].promoted);
  EXPECT_TRUE(ft.nodes[2].promoted);
}

// Two timed kills spread across the run: the chain promotes twice.
TEST(Cascade, TwoTimedKills) {
  WorkloadSpec spec = TxnSpec(10);
  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);

  ScenarioResult probe = Scenario::Replicated(spec).Backups(2).Epoch(4096).Run();
  ASSERT_TRUE(probe.completed);

  ScenarioResult ft = Scenario::Replicated(spec)
                          .Backups(2)
                          .Epoch(4096)
                          .FailAtTime(SimTime::Picos(probe.completion_time.picos() / 5))
                          .FailAtTime(SimTime::Picos(probe.completion_time.picos() * 3 / 5))
                          .Run();
  VerifyAgainstBare(spec, bare, ft);
  EXPECT_TRUE(ft.nodes[1].promoted);
}

// A three-backup chain rides out three successive active-replica faults.
TEST(Cascade, ThreeBackupsSurviveThreeFaults) {
  WorkloadSpec spec = TxnSpec(8);
  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);

  ScenarioResult ft = Scenario::Replicated(spec)
                          .Backups(3)
                          .Epoch(4096)
                          .FailAtPhase(FailPhase::kAfterSendTme, 1)
                          .FailAtPhase(FailPhase::kAfterIoIssue)
                          .FailAtPhase(FailPhase::kBeforeSendTme)
                          .Run();
  VerifyAgainstBare(spec, bare, ft);
  ASSERT_EQ(ft.nodes.size(), 4u);
  EXPECT_TRUE(ft.nodes[1].promoted);
  EXPECT_TRUE(ft.nodes[2].promoted);
  EXPECT_TRUE(ft.nodes[3].promoted);
}

// Killing every replica loses the service and must be reported as such, not
// as a completed run.
TEST(Cascade, KillingWholeChainReportsServiceLost) {
  WorkloadSpec spec = TxnSpec(10);
  ScenarioResult ft = Scenario::Replicated(spec)
                          .Epoch(4096)
                          .FailAtTime(SimTime::Millis(4))
                          .FailAtTime(SimTime::Millis(30))
                          .Run();
  EXPECT_FALSE(ft.completed);
  EXPECT_TRUE(ft.service_lost);
  EXPECT_EQ(ft.crash_times.size(), 2u);
}

// A standing (passive) backup dying mid-chain truncates the chain there: the
// primary keeps serving, replicas below the dead one are cut off.
TEST(Cascade, MiddleBackupDeathTruncatesChain) {
  WorkloadSpec spec = TxnSpec(8);
  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);

  ScenarioResult ft = Scenario::Replicated(spec)
                          .Backups(2)
                          .Epoch(4096)
                          .FailAtTime(SimTime::Millis(10), FailurePlan::Target::kBackup, 0)
                          .Run();
  VerifyAgainstBare(spec, bare, ft);
  EXPECT_FALSE(ft.promoted);  // The primary never lost service.
  // Only the primary touched the devices.
  for (const auto& entry : ft.disk_trace) {
    EXPECT_EQ(entry.issuer, ft.primary_id);
  }
}

// Deterministic reproducibility extends to cascades.
TEST(Cascade, CascadeRunsAreReproducible) {
  WorkloadSpec spec = TxnSpec(8);
  Scenario scenario = Scenario::Replicated(spec)
                          .Backups(2)
                          .Epoch(4096)
                          .FailAtTime(SimTime::Millis(4))
                          .FailAtPhase(FailPhase::kAfterIoIssue);
  ScenarioResult a = scenario.Run();
  ScenarioResult b = scenario.Run();
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.completion_time.picos(), b.completion_time.picos());
  EXPECT_EQ(a.guest_checksum, b.guest_checksum);
  EXPECT_EQ(a.console_output, b.console_output);
  ASSERT_EQ(a.crash_times.size(), b.crash_times.size());
  for (size_t i = 0; i < a.crash_times.size(); ++i) {
    EXPECT_EQ(a.crash_times[i].picos(), b.crash_times[i].picos());
  }
}

// ---------------------------------------------------------------------------
// FailureDetector edge cases (satellite fix): detection counts from the
// crash when nothing is in flight — a message that was already delivered
// must not postpone it.
// ---------------------------------------------------------------------------

TEST(FailureDetectorEdge, EmptyInFlightQueueCountsFromCrash) {
  Channel chan{LinkModel::Ethernet10()};
  Message msg;
  msg.type = MsgType::kEpochEnd;
  auto arrival = chan.Send(msg, SimTime::Millis(1));
  ASSERT_TRUE(arrival.has_value());
  // Deliver it: the in-flight queue is now empty even though the historical
  // drain time (last arrival ever) lies in the future of early crash times.
  ASSERT_TRUE(chan.Receive(*arrival + SimTime::Millis(1)).has_value());
  EXPECT_FALSE(chan.LastPendingArrival().has_value());

  SimTime timeout = SimTime::Millis(5);
  SimTime crash = SimTime::Micros(1050);  // Before the historical last arrival.
  ASSERT_LT(crash.picos(), arrival->picos());
  EXPECT_EQ(FailureDetector::DetectionTime(chan, crash, timeout).picos(),
            (crash + timeout).picos());
}

TEST(FailureDetectorEdge, PendingMessageDelaysDetection) {
  Channel chan{LinkModel::Ethernet10()};
  Message msg;
  msg.type = MsgType::kEpochEnd;
  auto arrival = chan.Send(msg, SimTime::Millis(1));
  ASSERT_TRUE(arrival.has_value());

  SimTime timeout = SimTime::Millis(5);
  SimTime crash = SimTime::Millis(1);  // Crash with the message still in flight.
  EXPECT_EQ(FailureDetector::DetectionTime(chan, crash, timeout).picos(),
            (*arrival + timeout).picos());
}

TEST(FailureDetectorEdge, NothingEverSentCountsFromCrash) {
  Channel chan{LinkModel::Ethernet10()};
  SimTime timeout = SimTime::Millis(5);
  SimTime crash = SimTime::Millis(7);
  EXPECT_EQ(FailureDetector::DetectionTime(chan, crash, timeout).picos(),
            (crash + timeout).picos());
}

// ---------------------------------------------------------------------------
// FailureDetector under a lossy-but-alive link: loss must not look like a
// crash, and detection of a real crash stays within the paper's bound plus
// one retransmission round.
// ---------------------------------------------------------------------------

TEST(FailureDetectorLossy, LossAwareBoundAddsOneRetransmissionRound) {
  Channel chan{LinkModel::Ethernet10()};
  SimTime timeout = SimTime::Millis(5);
  SimTime crash = SimTime::Millis(7);
  LinkFaults ideal;  // Disabled faults: the bound is unchanged.
  EXPECT_EQ(FailureDetector::DetectionTime(chan, crash, timeout, ideal).picos(),
            (crash + timeout).picos());
  LinkFaults lossy;
  lossy.drop_probability = 0.05;
  lossy.retransmit_timeout = SimTime::Millis(2);
  EXPECT_EQ(FailureDetector::DetectionTime(chan, crash, timeout, lossy).picos(),
            (crash + timeout + lossy.retransmit_timeout).picos());
  // A burst that ended before the crash leaves the wire ideal again: no
  // retransmission slack.
  lossy.active_until = SimTime::Millis(3);
  EXPECT_EQ(FailureDetector::DetectionTime(chan, crash, timeout, lossy).picos(),
            (crash + timeout).picos());
}

// A transient loss burst precedes the real primary kill: dropped relays and
// acks during the burst must not fire a spurious promotion (there is exactly
// one takeover per injected crash), and the cascade still finishes with the
// environment consistent.
TEST(FailureDetectorLossy, LossBurstBeforeRealKillStaysTransparent) {
  WorkloadSpec spec = TxnSpec(10);
  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);

  LinkFaults burst;
  burst.drop_probability = 0.3;  // Heavy transient loss...
  burst.reorder_probability = 0.2;
  burst.active_until = SimTime::Millis(3);  // ...that ends before the kill.
  ScenarioResult ft = Scenario::Replicated(spec)
                          .Backups(2)
                          .Epoch(4096)
                          .LinkFaults(burst)
                          .FailAtTime(SimTime::Millis(6))
                          .Run();
  VerifyAgainstBare(spec, bare, ft);
  ASSERT_EQ(ft.crash_times.size(), 1u);
  // Exactly the one injected failure promoted anybody: the burst alone did
  // not register as a crash on any surviving pair.
  EXPECT_TRUE(ft.nodes[1].promoted);
  EXPECT_FALSE(ft.nodes[2].promoted);
  EXPECT_GE(ft.nodes[1].promotion_time.picos(), ft.crash_times[0].picos());
}

// Detection of a real crash during sustained loss stays within drain +
// timeout + one retransmission round.
TEST(FailureDetectorLossy, DetectionBoundHoldsUnderSustainedLoss) {
  WorkloadSpec spec = TxnSpec(8);
  LinkFaults lossy;
  lossy.drop_probability = 0.1;
  lossy.reorder_probability = 0.05;
  SimTime kill = SimTime::Millis(5);
  ScenarioResult ft = Scenario::Replicated(spec)
                          .Epoch(4096)
                          .LinkFaults(lossy)
                          .FailAtTime(kill)
                          .Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out;
  ASSERT_TRUE(ft.promoted);
  CostModel costs;  // Scenario default: the paper-calibrated model.
  // The channel drained within max_time of the crash; promotion cannot lag
  // the crash by more than the drain window + timeout + one retransmission
  // round + the backup's own boundary work. Bound it loosely but finitely:
  SimTime bound = ft.crash_times[0] + SimTime::Millis(50) + costs.failure_detect_timeout +
                  lossy.retransmit_timeout;
  EXPECT_LE(ft.promotion_time.picos(), bound.picos());
}

}  // namespace
}  // namespace hbft
