// Serve subsystem tests: the client wire codec (canonical-bytes fuzzing:
// every truncation and every non-canonical byte must be rejected, never
// misread), the length-prefix stream dissector (a partial trailing frame is
// held and never delivered — the socket analogue of Channel::Break pruning a
// mid-serialisation frame), the Channel socket transport (go-back-N framing
// and retransmits over a WireSink), and a two-NodeHost lockstep run joined
// by in-memory byte queues standing in for the TCP connection, including
// primary death and backup promotion.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "devices/nic.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"
#include "serve/node_host.hpp"
#include "serve/wire.hpp"

namespace hbft {
namespace serve {
namespace {

ClientFrame SampleFrame() {
  ClientFrame frame;
  frame.type = kFrameRequest;
  frame.flags = kFlagResend;
  frame.client_id = 0x1122334455667788ULL;
  frame.seq = 42;
  frame.payload = {'h', 'e', 'l', 'l', 'o'};
  return frame;
}

// --- ClientFrame codec -------------------------------------------------------

TEST(ClientFrameCodec, RoundTrip) {
  for (uint8_t type : {kFrameRequest, kFrameResponse}) {
    for (uint8_t flags : {uint8_t{0}, kFlagResend}) {
      ClientFrame frame = SampleFrame();
      frame.type = type;
      frame.flags = flags;
      auto decoded = ClientFrame::Deserialize(frame.Serialize());
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, frame);
    }
  }
}

TEST(ClientFrameCodec, RoundTripEmptyAndMaxPayload) {
  ClientFrame frame = SampleFrame();
  frame.payload.clear();
  EXPECT_EQ(ClientFrame::Deserialize(frame.Serialize()), frame);
  frame.payload.assign(kMaxRequestPayload, 0xA5);
  EXPECT_EQ(ClientFrame::Deserialize(frame.Serialize()), frame);
}

TEST(ClientFrameCodec, EveryPrefixTruncationRejected) {
  std::vector<uint8_t> bytes = SampleFrame().Serialize();
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + static_cast<long>(len));
    EXPECT_FALSE(ClientFrame::Deserialize(prefix).has_value()) << "prefix length " << len;
  }
  EXPECT_TRUE(ClientFrame::Deserialize(bytes).has_value());
}

TEST(ClientFrameCodec, TrailingGarbageRejected) {
  std::vector<uint8_t> bytes = SampleFrame().Serialize();
  bytes.push_back(0x00);
  EXPECT_FALSE(ClientFrame::Deserialize(bytes).has_value());
}

TEST(ClientFrameCodec, NonCanonicalTypeRejected) {
  std::vector<uint8_t> bytes = SampleFrame().Serialize();
  for (int type : {0, 3, 4, 0x7F, 0xFF}) {
    bytes[0] = static_cast<uint8_t>(type);
    EXPECT_FALSE(ClientFrame::Deserialize(bytes).has_value()) << "type " << type;
  }
}

TEST(ClientFrameCodec, UndefinedFlagBitsRejected) {
  std::vector<uint8_t> bytes = SampleFrame().Serialize();
  for (int flags : {0x02, 0x80, 0xFE, 0xFF}) {
    bytes[1] = static_cast<uint8_t>(flags);
    EXPECT_FALSE(ClientFrame::Deserialize(bytes).has_value()) << "flags " << flags;
  }
  bytes[1] = kFlagResend;  // The one defined bit still parses.
  EXPECT_TRUE(ClientFrame::Deserialize(bytes).has_value());
}

TEST(ClientFrameCodec, PayloadLengthMismatchRejected) {
  ClientFrame frame = SampleFrame();
  std::vector<uint8_t> bytes = frame.Serialize();
  // Announce one byte more / fewer than is actually present (offset 18 is
  // the little-endian payload_len field).
  bytes[18] = static_cast<uint8_t>(frame.payload.size() + 1);
  EXPECT_FALSE(ClientFrame::Deserialize(bytes).has_value());
  bytes[18] = static_cast<uint8_t>(frame.payload.size() - 1);
  EXPECT_FALSE(ClientFrame::Deserialize(bytes).has_value());
}

TEST(ClientFrameCodec, OversizedPayloadLengthRejected) {
  // A frame announcing more payload than a NIC packet can carry is refused
  // even when the bytes are all present.
  std::vector<uint8_t> bytes = SampleFrame().Serialize();
  bytes.resize(kClientFrameHeaderBytes);
  uint32_t len = static_cast<uint32_t>(kMaxRequestPayload) + 1;
  bytes[18] = static_cast<uint8_t>(len);
  bytes[19] = static_cast<uint8_t>(len >> 8);
  bytes[20] = static_cast<uint8_t>(len >> 16);
  bytes[21] = static_cast<uint8_t>(len >> 24);
  bytes.insert(bytes.end(), len, 0x00);
  EXPECT_FALSE(ClientFrame::Deserialize(bytes).has_value());
}

// Exhaustive two-byte-header sweep: whatever the first two bytes say, the
// decoder either produces a frame that re-serialises to the identical bytes
// or rejects — no third outcome.
TEST(ClientFrameCodec, FuzzHeaderBytesParseOrReject) {
  std::vector<uint8_t> bytes = SampleFrame().Serialize();
  for (int type = 0; type < 256; ++type) {
    for (int flags : {0, 1, 2, 3, 0x80, 0xFF}) {
      bytes[0] = static_cast<uint8_t>(type);
      bytes[1] = static_cast<uint8_t>(flags);
      auto decoded = ClientFrame::Deserialize(bytes);
      if (decoded.has_value()) {
        EXPECT_EQ(decoded->Serialize(), bytes);
      }
    }
  }
}

// --- FrameReader (length-prefix stream dissector) ----------------------------

TEST(FrameReader, ByteAtATimeDeliveryInOrder) {
  ClientFrame a = SampleFrame();
  ClientFrame b = SampleFrame();
  b.seq = 43;
  b.payload = {'x'};
  std::vector<uint8_t> stream = EncodeFrame(a);
  std::vector<uint8_t> second = EncodeFrame(b);
  stream.insert(stream.end(), second.begin(), second.end());

  FrameReader reader(kMaxClientFrameBytes);
  std::vector<std::vector<uint8_t>> frames;
  for (uint8_t byte : stream) {
    reader.Feed(&byte, 1);
    while (auto frame = reader.Next()) {
      frames.push_back(*frame);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(ClientFrame::Deserialize(frames[0]), a);
  EXPECT_EQ(ClientFrame::Deserialize(frames[1]), b);
  EXPECT_EQ(reader.BufferedBytes(), 0u);
  EXPECT_FALSE(reader.corrupt());
}

// Satellite contract: a partial TCP write at peer death must not become a
// phantom delivered frame. Every strict prefix of the stream yields only the
// frames whose bytes fully arrived; the truncated residue is held forever.
TEST(FrameReader, TruncatedTrailingFrameIsHeldNeverDelivered) {
  std::vector<uint8_t> whole = EncodeFrame(SampleFrame());
  for (size_t cut = 1; cut < whole.size(); ++cut) {
    FrameReader reader(kMaxClientFrameBytes);
    reader.Feed(whole.data(), cut);
    EXPECT_FALSE(reader.Next().has_value()) << "cut at " << cut;
    EXPECT_EQ(reader.BufferedBytes(), cut);
    EXPECT_FALSE(reader.corrupt());
    // EOF happens here in real life; nothing more is ever delivered.
  }
}

TEST(FrameReader, CompleteFramePlusPartialNext) {
  ClientFrame frame = SampleFrame();
  std::vector<uint8_t> stream = EncodeFrame(frame);
  std::vector<uint8_t> partial = EncodeFrame(frame);
  stream.insert(stream.end(), partial.begin(), partial.begin() + 7);

  FrameReader reader(kMaxClientFrameBytes);
  reader.Feed(stream.data(), stream.size());
  EXPECT_TRUE(reader.Next().has_value());
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_EQ(reader.BufferedBytes(), 7u);
}

TEST(FrameReader, OversizedAnnouncedLengthPoisonsStream) {
  FrameReader reader(kMaxClientFrameBytes);
  uint32_t huge = kMaxClientFrameBytes + 1;
  uint8_t prefix[4] = {static_cast<uint8_t>(huge), static_cast<uint8_t>(huge >> 8),
                       static_cast<uint8_t>(huge >> 16), static_cast<uint8_t>(huge >> 24)};
  reader.Feed(prefix, sizeof(prefix));
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_TRUE(reader.corrupt());
  // A poisoned stream stays poisoned: framing desync is unrecoverable.
  std::vector<uint8_t> good = EncodeFrame(SampleFrame());
  reader.Feed(good.data(), good.size());
  EXPECT_FALSE(reader.Next().has_value());
}

// --- NIC request codec -------------------------------------------------------

TEST(NicCodec, RoundTrip) {
  NicRequest request{0xAABBCCDD00112233ULL, 7, {1, 2, 3}};
  EXPECT_EQ(DecodeNicPacket(EncodeNicRequest(request)), request);
}

TEST(NicCodec, RejectsForeignAndMalformedPackets) {
  EXPECT_FALSE(DecodeNicPacket({}).has_value());
  EXPECT_FALSE(DecodeNicPacket({'S', 'V'}).has_value());  // Short of a header.
  std::vector<uint8_t> packet = EncodeNicRequest(NicRequest{1, 1, {9}});
  packet[0] = 'X';  // Wrong magic: not serve traffic.
  EXPECT_FALSE(DecodeNicPacket(packet).has_value());
  std::vector<uint8_t> oversized(kNicRequestHeaderBytes + kMaxRequestPayload + 1, 0);
  oversized[0] = 'S';
  oversized[1] = 'V';
  EXPECT_FALSE(DecodeNicPacket(oversized).has_value());
}

// --- Channel socket transport ------------------------------------------------

Message EpochEndMessage(uint64_t epoch) {
  Message msg;
  msg.type = MsgType::kEpochEnd;
  msg.epoch = epoch;
  return msg;
}

TEST(ChannelWire, SinkCarriesFramesAndBypassesLocalDelivery) {
  Channel tx(LinkModel::Ethernet10(), ChannelMode::kOrdered);
  std::vector<std::vector<uint8_t>> shipped;
  tx.BindWireSink([&shipped](const std::vector<uint8_t>& bytes) {
    shipped.push_back(bytes);
    return true;
  });

  ASSERT_TRUE(tx.Send(EpochEndMessage(1), SimTime::Zero()).has_value());
  ASSERT_EQ(shipped.size(), 1u);
  EXPECT_EQ(tx.counters().wire_sends, 1u);
  // The frame left the process: nothing is ever locally deliverable.
  EXPECT_FALSE(tx.Receive(SimTime::Seconds(10)).has_value());

  auto msg = Message::Deserialize(shipped[0]);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kEpochEnd);
  EXPECT_EQ(msg->epoch, 1u);
}

TEST(ChannelWire, InjectedFramesRunOrderedDedup) {
  Channel tx(LinkModel::Ethernet10(), ChannelMode::kOrdered);
  std::vector<std::vector<uint8_t>> shipped;
  tx.BindWireSink([&shipped](const std::vector<uint8_t>& bytes) {
    shipped.push_back(bytes);
    return true;
  });
  tx.Send(EpochEndMessage(1), SimTime::Zero());
  tx.Send(EpochEndMessage(2), SimTime::Zero());
  ASSERT_EQ(shipped.size(), 2u);

  Channel rx(LinkModel::Ethernet10(), ChannelMode::kOrdered);
  SimTime t = SimTime::Millis(1);
  EXPECT_TRUE(rx.InjectWireFrame(shipped[0], t));
  EXPECT_TRUE(rx.InjectWireFrame(shipped[0], t));  // TCP cannot dup, but a
  EXPECT_TRUE(rx.InjectWireFrame(shipped[1], t));  // retransmit race can.

  auto first = rx.Receive(t);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->epoch, 1u);
  auto second = rx.Receive(t);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->epoch, 2u);
  EXPECT_FALSE(rx.Receive(t).has_value());
  EXPECT_EQ(rx.counters().rx_duplicates, 1u);
  EXPECT_TRUE(rx.TakeReackRequested());
}

TEST(ChannelWire, UndecodableBytesCountedAndRefused) {
  Channel rx(LinkModel::Ethernet10(), ChannelMode::kOrdered);
  std::vector<uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_FALSE(rx.InjectWireFrame(garbage, SimTime::Millis(1)));
  EXPECT_EQ(rx.counters().wire_decode_errors, 1u);
  EXPECT_FALSE(rx.Receive(SimTime::Seconds(1)).has_value());
}

TEST(ChannelWire, BrokenChannelRefusesInjection) {
  Channel tx(LinkModel::Ethernet10(), ChannelMode::kOrdered);
  std::vector<std::vector<uint8_t>> shipped;
  tx.BindWireSink([&shipped](const std::vector<uint8_t>& b) {
    shipped.push_back(b);
    return true;
  });
  tx.Send(EpochEndMessage(1), SimTime::Zero());

  Channel rx(LinkModel::Ethernet10(), ChannelMode::kOrdered);
  rx.Break(SimTime::Millis(5));
  EXPECT_FALSE(rx.InjectWireFrame(shipped[0], SimTime::Millis(6)));
  EXPECT_FALSE(rx.Receive(SimTime::Seconds(1)).has_value());
}

TEST(ChannelWire, RetransmitTimerRunsOverTheSink) {
  Channel tx(LinkModel::Ethernet10(), ChannelMode::kOrdered);
  uint64_t sink_calls = 0;
  tx.BindWireSink([&sink_calls](const std::vector<uint8_t>&) {
    ++sink_calls;
    return true;
  });

  // Wire-bound ordered channels always keep the go-back-N window: TCP does
  // not lose bytes, but the peer process can die with frames unacked.
  tx.Send(EpochEndMessage(1), SimTime::Zero());
  EXPECT_TRUE(tx.NeedsRetransmitTimer());

  SimTime late = tx.retransmit_timeout() + SimTime::Millis(1);
  auto result = tx.MaybeRetransmit(late);
  EXPECT_EQ(result.frames, 1u);
  EXPECT_EQ(sink_calls, 2u);
  EXPECT_EQ(tx.counters().retransmits, 1u);

  // A cumulative ack releases the window and stops the timer.
  tx.OnCumulativeAck(1, late);
  EXPECT_FALSE(tx.NeedsRetransmitTimer());
  EXPECT_EQ(tx.MaybeRetransmit(late + tx.retransmit_timeout() * 2).frames, 0u);
}

TEST(ChannelWire, SinkFailureCountsAsLinkDrop) {
  Channel tx(LinkModel::Ethernet10(), ChannelMode::kOrdered);
  tx.BindWireSink([](const std::vector<uint8_t>&) { return false; });
  ASSERT_TRUE(tx.Send(EpochEndMessage(1), SimTime::Zero()).has_value());
  EXPECT_EQ(tx.counters().link_drops, 1u);
  // The frame stays in the retransmit window until an ack or peer death.
  EXPECT_TRUE(tx.NeedsRetransmitTimer());
}

// --- NodeHost lockstep over an in-memory "socket" ----------------------------

NodeHostConfig LockstepConfig(HostRole role) {
  NodeHostConfig hc;
  hc.role = role;
  hc.seed = 42;
  hc.replication.variant = ProtocolVariant::kRevised;
  hc.replication.epoch_length = 4096;
  hc.workload = WorkloadSpec::NetEcho(1000000);
  hc.link_faults.retransmit_timeout = SimTime::Millis(50);
  return hc;
}

// Two separately constructed NodeHosts joined by byte queues: the in-memory
// stand-in for the TCP repl connection, driven at deterministic synthetic
// times. Covers the full serve datapath minus the actual sockets: request
// injection, lockstep execution, output commit at the TX latch, peer death,
// promotion, and the promoted backup serving on its own.
TEST(NodeHostLockstep, EchoThenFailover) {
  NodeHost primary(LockstepConfig(HostRole::kPrimary));
  NodeHost backup(LockstepConfig(HostRole::kBackup));

  std::deque<std::vector<uint8_t>> to_backup;
  std::deque<std::vector<uint8_t>> to_primary;
  primary.BindWireSink([&to_backup](const std::vector<uint8_t>& bytes) {
    to_backup.push_back(bytes);
    return true;
  });
  backup.BindWireSink([&to_primary](const std::vector<uint8_t>& bytes) {
    to_primary.push_back(bytes);
    return true;
  });

  std::vector<NicRequest> primary_released;
  primary.nic()->set_on_latch([&primary_released](const NicTraceEntry& entry) {
    if (auto req = DecodeNicPacket(entry.bytes)) {
      primary_released.push_back(*req);
    }
  });
  std::vector<NicRequest> backup_released;
  backup.nic()->set_on_latch([&backup_released](const NicTraceEntry& entry) {
    if (auto req = DecodeNicPacket(entry.bytes)) {
      backup_released.push_back(*req);
    }
  });

  const SimTime step = SimTime::Micros(200);
  SimTime now = SimTime::Zero();
  auto advance_both = [&](SimTime horizon) {
    while (now < horizon) {
      now = now + step;
      while (!to_backup.empty()) {
        backup.OnPeerFrame(to_backup.front(), now);
        to_backup.pop_front();
      }
      while (!to_primary.empty()) {
        primary.OnPeerFrame(to_primary.front(), now);
        to_primary.pop_front();
      }
      primary.Advance(now);
      backup.Advance(now);
    }
  };

  EXPECT_TRUE(primary.ActiveForEnvironment());
  EXPECT_FALSE(backup.ActiveForEnvironment());

  // Request 1 commits through the chain: the primary's TX latch may only
  // fire once the backup acked everything the echo depends on.
  NicRequest first{77, 1, {'w', 'r', 'i', 't', 'e'}};
  primary.InjectPacket(EncodeNicRequest(first), now);
  SimTime deadline = now + SimTime::Millis(400);
  while (primary_released.empty() && now < deadline) {
    advance_both(now + step);
  }
  ASSERT_EQ(primary_released.size(), 1u);
  EXPECT_EQ(primary_released[0], first);
  EXPECT_GT(backup.node().stats().epochs, 0u);

  // The primary dies. Its unshipped frames vanish with it (the sink queues
  // are dropped); the backup sees the socket break and promotes.
  to_backup.clear();
  to_primary.clear();
  backup.OnPeerDead(now);
  deadline = now + SimTime::Millis(400);
  while ((backup.backup() == nullptr || !backup.backup()->promoted()) && now < deadline) {
    now = now + step;
    backup.Advance(now);
  }
  ASSERT_TRUE(backup.backup()->promoted());
  EXPECT_TRUE(backup.ActiveForEnvironment());
  EXPECT_GE(backup.backup()->promotion_time(), SimTime::Zero());

  // The promoted backup serves request 2 end to end by itself.
  NicRequest second{77, 2, {'m', 'o', 'r', 'e'}};
  backup.InjectPacket(EncodeNicRequest(second), now);
  deadline = now + SimTime::Millis(400);
  size_t already = backup_released.size();
  bool seen = false;
  while (!seen && now < deadline) {
    now = now + step;
    backup.Advance(now);
    for (size_t i = already; i < backup_released.size(); ++i) {
      if (backup_released[i] == second) {
        seen = true;
      }
    }
  }
  EXPECT_TRUE(seen);
}

// A standing backup queues environment input until promotion completes —
// the single-process RouteInput semantics carried over to the socket world.
TEST(NodeHostLockstep, StandingBackupQueuesInputUntilPromotion) {
  NodeHost backup(LockstepConfig(HostRole::kBackup));
  backup.BindWireSink([](const std::vector<uint8_t>&) { return true; });

  std::vector<NicRequest> released;
  backup.nic()->set_on_latch([&released](const NicTraceEntry& entry) {
    if (auto req = DecodeNicPacket(entry.bytes)) {
      released.push_back(*req);
    }
  });

  NicRequest request{5, 1, {'q'}};
  SimTime now = SimTime::Millis(1);
  backup.InjectPacket(EncodeNicRequest(request), now);
  backup.Advance(now + SimTime::Millis(2));
  EXPECT_TRUE(released.empty());  // Standing by: input held, not consumed.

  backup.OnPeerDead(now + SimTime::Millis(2));
  SimTime deadline = now + SimTime::Millis(400);
  const SimTime step = SimTime::Micros(200);
  while (now < deadline && released.empty()) {
    now = now + step;
    backup.Advance(now);
  }
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], request);
}

}  // namespace
}  // namespace serve
}  // namespace hbft
