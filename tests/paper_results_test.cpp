// Paper-shape assertions on MEASURED simulation results (DESIGN.md section 7
// item 4): the qualitative claims of the paper's evaluation must hold in the
// simulated system, not just in the closed-form models. Workloads are scaled
// down to keep the suite fast; shape, not absolute time, is asserted.
#include <gtest/gtest.h>

#include "guest/workloads.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace {

double Np(const WorkloadSpec& spec, const ScenarioResult& bare, uint64_t epoch_len,
          ProtocolVariant variant, CostModel costs = {}) {
  ScenarioResult ft =
      Scenario::Replicated(spec).Epoch(epoch_len).Variant(variant).Costs(costs).Run();
  EXPECT_TRUE(ft.completed);
  return NormalizedPerformance(ft, bare);
}

WorkloadSpec SmallCpu() {
  WorkloadSpec spec = WorkloadSpec::PaperCpu();
  spec.iterations = 6000;  // ~1e6 instructions.
  return spec;
}

TEST(PaperShape, CpuNpFallsWithEpochLength) {
  WorkloadSpec spec = SmallCpu();
  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);
  double prev = 1e9;
  for (uint64_t el : {uint64_t{1024}, uint64_t{4096}, uint64_t{16384}}) {
    double np = Np(spec, bare, el, ProtocolVariant::kOriginal);
    EXPECT_LT(np, prev) << "EL=" << el;
    EXPECT_GT(np, 1.0);
    prev = np;
  }
}

TEST(PaperShape, RevisedProtocolBeatsOriginalOnCpu) {
  // Table 1's headline: dropping the boundary ack wait helps most where
  // boundaries dominate.
  WorkloadSpec spec = SmallCpu();
  ScenarioResult bare = RunBare(spec);
  for (uint64_t el : {uint64_t{1024}, uint64_t{4096}}) {
    double old_np = Np(spec, bare, el, ProtocolVariant::kOriginal);
    double new_np = Np(spec, bare, el, ProtocolVariant::kRevised);
    EXPECT_LT(new_np, old_np) << "EL=" << el;
    // "Most pronounced in the CPU-intensive workload": at least 1.5x better.
    EXPECT_LT(new_np, old_np / 1.5) << "EL=" << el;
  }
}

TEST(PaperShape, ReadsCostMoreThanWritesUnderOriginalProtocol) {
  WorkloadSpec write_spec = WorkloadSpec::PaperDiskWrite(10);
  WorkloadSpec read_spec = WorkloadSpec::PaperDiskRead(10);
  ScenarioResult bare_write = RunBare(write_spec);
  ScenarioResult bare_read = RunBare(read_spec);
  double np_write = Np(write_spec, bare_write, 4096, ProtocolVariant::kOriginal);
  double np_read = Np(read_spec, bare_read, 4096, ProtocolVariant::kOriginal);
  // The read data must reach the backup before the epoch commits.
  EXPECT_GT(np_read, np_write);
}

TEST(PaperShape, RevisedProtocolHidesReadForwarding) {
  // Table 1: read 2.03 -> 1.72 at 4K; the forward overlaps computation.
  WorkloadSpec spec = WorkloadSpec::PaperDiskRead(10);
  ScenarioResult bare = RunBare(spec);
  double old_np = Np(spec, bare, 4096, ProtocolVariant::kOriginal);
  double new_np = Np(spec, bare, 4096, ProtocolVariant::kRevised);
  EXPECT_LT(new_np, old_np);
  EXPECT_LT(old_np - new_np, 0.6);  // Improvement, not a rewrite of physics.
  EXPECT_GT(old_np - new_np, 0.1);  // The paper's ~0.3 gap, loosely banded.
}

TEST(PaperShape, FasterLinkImprovesCpuWorkload) {
  // Figure 4: ATM's only effect is cheaper communication.
  WorkloadSpec spec = SmallCpu();
  ScenarioResult bare = RunBare(spec);
  double eth = Np(spec, bare, 4096, ProtocolVariant::kOriginal, CostModel::PaperCalibrated());
  double atm = Np(spec, bare, 4096, ProtocolVariant::kOriginal, CostModel::WithAtmLink());
  EXPECT_LT(atm, eth);
}

TEST(PaperShape, HypervisorAloneCostsLessThanReplication) {
  // The paper attributes most overhead at long epochs to instruction
  // simulation, not replica coordination ("only 6% overhead" at 385K). At a
  // long epoch, NP must approach the privileged-simulation floor.
  WorkloadSpec spec = SmallCpu();
  ScenarioResult bare = RunBare(spec);
  double np_long = Np(spec, bare, 262144, ProtocolVariant::kRevised);
  EXPECT_LT(np_long, 1.6);
  EXPECT_GT(np_long, 1.0);
}

}  // namespace
}  // namespace hbft
