// Simulation-layer tests: event queue determinism, cost-model arithmetic,
// world scheduling, and reproducibility of full runs.
#include <gtest/gtest.h>

#include "guest/workloads.hpp"
#include "hypervisor/cost_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace {

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(SimTime::Micros(10), [&] { order.push_back(1); });
  queue.Push(SimTime::Micros(5), [&] { order.push_back(2); });
  queue.Push(SimTime::Micros(10), [&] { order.push_back(3); });  // Ties FIFO.
  queue.Push(SimTime::Micros(1), [&] { order.push_back(4); });
  while (!queue.empty()) {
    queue.RunNext();
  }
  EXPECT_EQ(order, (std::vector<int>{4, 2, 1, 3}));
}

TEST(EventQueue, HandlersMayPushEvents) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(SimTime::Micros(1), [&] {
    order.push_back(1);
    queue.Push(SimTime::Micros(2), [&] { order.push_back(2); });
  });
  queue.RunNext();
  ASSERT_FALSE(queue.empty());
  EXPECT_EQ(queue.PeekTime(), SimTime::Micros(2));
  queue.RunNext();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EqualTimesAcrossPartitionsPopInPartitionOrder) {
  // Rule 2 of the documented pop order: time ties across partitions break
  // toward the lowest partition id, regardless of insertion order.
  EventQueue queue;
  std::vector<int> order;
  queue.Push(3, SimTime::Micros(10), [&] { order.push_back(3); });
  queue.Push(1, SimTime::Micros(10), [&] { order.push_back(1); });
  queue.Push(0, SimTime::Micros(10), [&] { order.push_back(0); });
  queue.Push(2, SimTime::Micros(10), [&] { order.push_back(2); });
  EXPECT_EQ(queue.PeekTime(), SimTime::Micros(10));
  EXPECT_EQ(queue.PeekPartition(), 0u);
  while (!queue.empty()) {
    queue.RunNext();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, EarlierTimeBeatsLowerPartitionId) {
  // Rule 1 dominates rule 2: a later event in partition 0 must not jump
  // ahead of an earlier event in a high-numbered partition.
  EventQueue queue;
  std::vector<int> order;
  queue.Push(0, SimTime::Micros(20), [&] { order.push_back(0); });
  queue.Push(7, SimTime::Micros(5), [&] { order.push_back(7); });
  EXPECT_EQ(queue.PeekPartition(), 7u);
  queue.RunNext();
  queue.RunNext();
  EXPECT_EQ(order, (std::vector<int>{7, 0}));
}

TEST(EventQueue, InsertionOrderWithinPartitionUnderCrossPartitionTies) {
  // Rules 2 and 3 together: at one timestamp, all of partition 0's events
  // pop (in insertion order) before any of partition 1's.
  EventQueue queue;
  std::vector<std::string> order;
  queue.Push(1, SimTime::Micros(10), [&] { order.push_back("p1-a"); });
  queue.Push(0, SimTime::Micros(10), [&] { order.push_back("p0-a"); });
  queue.Push(1, SimTime::Micros(10), [&] { order.push_back("p1-b"); });
  queue.Push(0, SimTime::Micros(10), [&] { order.push_back("p0-b"); });
  while (!queue.empty()) {
    queue.RunNext();
  }
  EXPECT_EQ(order, (std::vector<std::string>{"p0-a", "p0-b", "p1-a", "p1-b"}));
}

TEST(EventQueue, HandlersMayPushIntoOtherPartitions) {
  // A partition-0 handler scheduling work on partition 2 at the same time:
  // the cross-partition event still runs this instant, after partition 0
  // drains (rule 2), not at some later pop.
  EventQueue queue;
  std::vector<int> order;
  queue.Push(0, SimTime::Micros(1), [&] {
    order.push_back(1);
    queue.Push(2, SimTime::Micros(1), [&] { order.push_back(2); });
  });
  queue.Push(0, SimTime::Micros(1), [&] { order.push_back(3); });
  while (!queue.empty()) {
    queue.RunNext();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(SimTimeArithmetic, UnitsAndConversions) {
  EXPECT_EQ(SimTime::Micros(1).nanos(), 1000);
  EXPECT_EQ(SimTime::Millis(26).micros(), 26000);
  EXPECT_EQ(SimTime::Seconds(2).millis(), 2000);
  EXPECT_NEAR(SimTime::MicrosF(15.12).micros_f(), 15.12, 1e-9);
  EXPECT_EQ((SimTime::Micros(3) + SimTime::Micros(4)).micros(), 7);
  EXPECT_EQ((SimTime::Micros(10) - SimTime::Micros(4)).micros(), 6);
  EXPECT_EQ((SimTime::Micros(3) * 4).micros(), 12);
  EXPECT_LT(SimTime::Micros(3), SimTime::Micros(4));
}

TEST(CostModel, PaperConstants) {
  CostModel costs;
  EXPECT_EQ(costs.instruction_cost.nanos(), 20);  // 50 MIPS.
  EXPECT_NEAR(costs.hv_priv_sim_cost.micros_f(), 15.12, 1e-6);
  EXPECT_EQ(costs.disk_write_latency.millis(), 26);
  EXPECT_NEAR(costs.disk_read_latency.micros_f(), 24200.0, 1.0);
  // TOD conversion: 100 ns units.
  EXPECT_EQ(costs.TodFromTime(SimTime::Micros(1)), 10);
  EXPECT_EQ(costs.TimeFromTod(10), SimTime::Micros(1));
}

TEST(CostModel, AtmVariantOnlyChangesLink) {
  CostModel eth = CostModel::PaperCalibrated();
  CostModel atm = CostModel::WithAtmLink();
  EXPECT_EQ(atm.link.bandwidth_bps, 155e6);
  EXPECT_EQ(eth.link.bandwidth_bps, 10e6);
  EXPECT_EQ(atm.hv_priv_sim_cost.picos(), eth.hv_priv_sim_cost.picos());
}

TEST(Determinism, IdenticalRunsAreBitIdentical) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTxnLog;
  spec.iterations = 4;
  spec.num_blocks = 4;
  Scenario scenario = Scenario::Replicated(spec).Epoch(2048);
  ScenarioResult a = scenario.Run();
  ScenarioResult b = scenario.Run();
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.completion_time.picos(), b.completion_time.picos());
  EXPECT_EQ(a.guest_checksum, b.guest_checksum);
  EXPECT_EQ(a.console_output, b.console_output);
  EXPECT_EQ(a.disk_trace.size(), b.disk_trace.size());
  EXPECT_EQ(a.primary_stats().messages_sent, b.primary_stats().messages_sent);
}

TEST(Determinism, FailoverRunsAreReproducible) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTxnLog;
  spec.iterations = 6;
  spec.num_blocks = 8;
  Scenario scenario =
      Scenario::Replicated(spec).Epoch(4096).FailAtTime(SimTime::Millis(40));
  ScenarioResult a = scenario.Run();
  ScenarioResult b = scenario.Run();
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.promoted, b.promoted);
  EXPECT_EQ(a.promotion_time.picos(), b.promotion_time.picos());
  EXPECT_EQ(a.completion_time.picos(), b.completion_time.picos());
  EXPECT_EQ(a.console_output, b.console_output);
}

TEST(Determinism, SeedChangesCrashIoResolution) {
  // With kRandom crash-I/O resolution the seed decides performed-vs-dropped;
  // different seeds may diverge, same seeds must not.
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTxnLog;
  spec.iterations = 6;
  spec.num_blocks = 8;
  Scenario scenario =
      Scenario::Replicated(spec)
          .Seed(1)
          .FailAtPhase(FailPhase::kAfterIoIssue, 0, FailurePlan::CrashIo::kRandom);
  ScenarioResult a1 = scenario.Run();
  ScenarioResult a2 = scenario.Run();
  EXPECT_EQ(a1.disk_trace.size(), a2.disk_trace.size());
}

TEST(World, TimeLimitDetectsRunaway) {
  // An epoch length so large the first boundary never arrives within the
  // budget, combined with a kill that never fires: the echo workload waits
  // for console input that never comes -> the run must time out, not hang.
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kEcho;
  ScenarioResult result =
      Scenario::Replicated(spec).MaxTime(SimTime::Millis(200)).Run();
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.timed_out || result.deadlocked);
}

TEST(World, BareAndReplicatedShareWorkloadResults) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kCpu;
  spec.iterations = 1500;
  ScenarioResult bare = RunBare(spec);
  ScenarioResult ft = Scenario::Replicated(spec).Epoch(8192).Run();
  ASSERT_TRUE(bare.completed);
  ASSERT_TRUE(ft.completed);
  EXPECT_EQ(bare.guest_checksum, ft.guest_checksum);
  // Replication costs time: N' > N strictly.
  EXPECT_GT(ft.completion_time.picos(), bare.completion_time.picos());
}

}  // namespace
}  // namespace hbft
