// Assembler tests: syntax forms, directives, pseudo-instructions, expression
// evaluation, symbols, and error reporting.
#include <gtest/gtest.h>

#include <cstdio>

#include "guest/image.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"

namespace hbft {
namespace {

uint32_t WordAt(const AssembledImage& image, uint32_t addr) {
  for (const auto& section : image.sections) {
    if (addr >= section.base && addr + 4 <= section.base + section.bytes.size()) {
      uint32_t off = addr - section.base;
      return static_cast<uint32_t>(section.bytes[off]) |
             (static_cast<uint32_t>(section.bytes[off + 1]) << 8) |
             (static_cast<uint32_t>(section.bytes[off + 2]) << 16) |
             (static_cast<uint32_t>(section.bytes[off + 3]) << 24);
    }
  }
  ADD_FAILURE() << "no section covers address " << addr;
  return 0;
}

TEST(Assembler, BasicInstructionForms) {
  auto result = Assemble(R"(
    add r1, r2, r3
    addi r4, r5, -42
    lw r6, 8(r7)
    sw r6, -8(r7)
    lui r8, 0xABCD
    tlbi r1, r2
    rfi
    halt
  )");
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  const auto& image = result.value();
  EXPECT_EQ(WordAt(image, 0), EncodeR(Opcode::kAdd, 1, 2, 3));
  EXPECT_EQ(WordAt(image, 4), EncodeI(Opcode::kAddi, 4, 5, -42));
  EXPECT_EQ(WordAt(image, 8), EncodeI(Opcode::kLw, 6, 7, 8));
  EXPECT_EQ(WordAt(image, 12), EncodeI(Opcode::kSw, 6, 7, -8));
  EXPECT_EQ(WordAt(image, 16), EncodeI(Opcode::kLui, 8, 0, 0xABCD));
  EXPECT_EQ(WordAt(image, 20), EncodeR(Opcode::kTlbi, 0, 1, 2));
  EXPECT_EQ(WordAt(image, 24), EncodeR(Opcode::kRfi, 0, 0, 0));
  EXPECT_EQ(WordAt(image, 28), EncodeR(Opcode::kHalt, 0, 0, 0));
}

TEST(Assembler, RegisterAliases) {
  auto result = Assemble("add zero, ra, sp\nadd a0, t0, s0\nadd k0, k1, fp\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(WordAt(result.value(), 0), EncodeR(Opcode::kAdd, 0, 31, 30));
  EXPECT_EQ(WordAt(result.value(), 4), EncodeR(Opcode::kAdd, 4, 8, 16));
  EXPECT_EQ(WordAt(result.value(), 8), EncodeR(Opcode::kAdd, 26, 27, 29));
}

TEST(Assembler, BranchesResolveLabelsBothDirections) {
  auto result = Assemble(R"(
top:
    addi r1, r1, 1
    beq r1, r2, done
    j top
done:
    halt
  )");
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  // beq at 4: target done at 12: offset = (12 - 8)/4 = 1.
  EXPECT_EQ(WordAt(result.value(), 4), EncodeB(Opcode::kBeq, 1, 2, 1));
  // j at 8: target top at 0: offset = (0 - 12)/4 = -3.
  EXPECT_EQ(WordAt(result.value(), 8), EncodeJ(Opcode::kJal, 0, -3));
}

TEST(Assembler, CallAndJalForms) {
  auto result = Assemble(R"(
    call f
    jal f
    jal r5, f
f:  ret
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(WordAt(result.value(), 0), EncodeJ(Opcode::kJal, 31, 2));
  EXPECT_EQ(WordAt(result.value(), 4), EncodeJ(Opcode::kJal, 31, 1));
  EXPECT_EQ(WordAt(result.value(), 8), EncodeJ(Opcode::kJal, 5, 0));
  EXPECT_EQ(WordAt(result.value(), 12), EncodeI(Opcode::kJalr, 0, 31, 0));
}

TEST(Assembler, PseudoLiExpandsToLuiOri) {
  auto result = Assemble("li r9, 0xDEADBEEF\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(WordAt(result.value(), 0), EncodeI(Opcode::kLui, 9, 0, 0xDEAD));
  EXPECT_EQ(WordAt(result.value(), 4), EncodeI(Opcode::kOri, 9, 9, 0xBEEF));
}

TEST(Assembler, LaResolvesSymbols) {
  auto result = Assemble(R"(
    .org 0x200000
    la r4, data
data:
    .word 7
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(WordAt(result.value(), 0x200000), EncodeI(Opcode::kLui, 4, 0, 0x20));
  EXPECT_EQ(WordAt(result.value(), 0x200004), EncodeI(Opcode::kOri, 4, 4, 0x0008));
  EXPECT_EQ(result.value().SymbolOrDie("data"), 0x200008u);
  EXPECT_EQ(WordAt(result.value(), 0x200008), 7u);
}

TEST(Assembler, DirectivesOrgAlignSpaceWordAsciz) {
  auto result = Assemble(R"(
    .org 0x100
    .word 1, 2, 0x30
    .space 6
    .align 8
aligned:
    .asciz "ab\n"
  )");
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  const auto& image = result.value();
  EXPECT_EQ(WordAt(image, 0x100), 1u);
  EXPECT_EQ(WordAt(image, 0x104), 2u);
  EXPECT_EQ(WordAt(image, 0x108), 0x30u);
  // 0x10C + 6 = 0x112, aligned to 8 -> 0x118.
  EXPECT_EQ(image.SymbolOrDie("aligned"), 0x118u);
}

TEST(Assembler, EquAndExpressions) {
  auto result = Assemble(R"(
    .equ BASE, 0x4000
    .equ OFF, 8
    lw r1, BASE+OFF(zero)
    li r2, BASE - 4
    .word BASE + OFF + 1
  )");
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(WordAt(result.value(), 0), EncodeI(Opcode::kLw, 1, 0, 0x4008));
  EXPECT_EQ(WordAt(result.value(), 12), 0x4009u);
}

TEST(Assembler, HiLoOperators) {
  auto result = Assemble(R"(
    .equ ADDR, 0x12345678
    lui r1, %hi(ADDR)
    ori r1, r1, %lo(ADDR)
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(WordAt(result.value(), 0), EncodeI(Opcode::kLui, 1, 0, 0x1234));
  EXPECT_EQ(WordAt(result.value(), 4), EncodeI(Opcode::kOri, 1, 1, 0x5678));
}

TEST(Assembler, CharLiteralsAndComments) {
  auto result = Assemble(R"(
    li r1, 'q'          ; quit character
    addi r2, zero, '\n' # newline
    addi r3, zero, 65   // letter A
  )");
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(WordAt(result.value(), 4), EncodeI(Opcode::kOri, 1, 1, 'q'));
  EXPECT_EQ(WordAt(result.value(), 8), EncodeI(Opcode::kAddi, 2, 0, '\n'));
}

TEST(Assembler, MfcrMtcrByNameAndNumber) {
  auto result = Assemble(R"(
    mfcr r1, tod
    mtcr itmr, r2
    mfcr r3, 9
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(WordAt(result.value(), 0), EncodeI(Opcode::kMfcr, 1, 0, kCrTod));
  EXPECT_EQ(WordAt(result.value(), 4), EncodeI(Opcode::kMtcr, 0, 2, kCrItmr));
  EXPECT_EQ(WordAt(result.value(), 8), EncodeI(Opcode::kMfcr, 3, 0, kCrEirr));
}

TEST(Assembler, MultipleLabelsOneAddress) {
  auto result = Assemble("a:\nb: c: halt\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().SymbolOrDie("a"), 0u);
  EXPECT_EQ(result.value().SymbolOrDie("b"), 0u);
  EXPECT_EQ(result.value().SymbolOrDie("c"), 0u);
}

// ---- error reporting --------------------------------------------------------

struct ErrorCase {
  const char* source;
  const char* fragment;  // Must appear in the error message.
};

class AssemblerErrors : public testing::TestWithParam<ErrorCase> {};

TEST_P(AssemblerErrors, RejectsWithDiagnostic) {
  auto result = Assemble(GetParam().source);
  ASSERT_FALSE(result.ok()) << "source assembled unexpectedly";
  EXPECT_NE(result.error().ToString().find(GetParam().fragment), std::string::npos)
      << result.error().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblerErrors,
    testing::Values(ErrorCase{"frob r1, r2\n", "unknown mnemonic"},
                    ErrorCase{"add r1, r2\n", "missing register"},
                    ErrorCase{"add r1, r2, r99\n", "bad register"},
                    ErrorCase{"lw r1, r2\n", "bad memory operand"},
                    ErrorCase{"beq r1, r2, nowhere\n", "undefined symbol"},
                    ErrorCase{"dup: nop\ndup: nop\n", "duplicate symbol"},
                    ErrorCase{".align 3\n", "power of two"},
                    ErrorCase{".equ X\n", ".equ takes"},
                    ErrorCase{".bogus 1\n", "unknown directive"},
                    ErrorCase{"li r1, 0xZZ\n", "bad hex literal"}));

TEST(Assembler, ErrorsCarryLineNumbers) {
  auto result = Assemble("nop\nnop\nbroken r1\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().line, 3);
}

// Property: every decodable instruction word in the assembled guest image
// survives a disassemble -> re-assemble round trip bit-exactly. This sweeps
// the disassembler and the assembler's operand grammar over ~2000 real
// instructions produced by real kernel code.
TEST(Assembler, GuestImageDisassemblyRoundTrips) {
  const GuestImageBundle& bundle = GetGuestImage();
  size_t round_tripped = 0;
  for (const AssembledSection& section : bundle.image.sections) {
    for (size_t off = 0; off + 4 <= section.bytes.size(); off += 4) {
      uint32_t word = static_cast<uint32_t>(section.bytes[off]) |
                      (static_cast<uint32_t>(section.bytes[off + 1]) << 8) |
                      (static_cast<uint32_t>(section.bytes[off + 2]) << 16) |
                      (static_cast<uint32_t>(section.bytes[off + 3]) << 24);
      uint32_t pc = section.base + static_cast<uint32_t>(off);
      auto decoded = Decode(word);
      if (!decoded.has_value()) {
        continue;  // Data words (strings, tables) need not decode.
      }
      if (Encode(*decoded) != word) {
        continue;  // Decodable but non-canonical: data masquerading as code.
      }
      std::string text = Disassemble(word, pc);
      // Re-assemble at the same address so PC-relative targets resolve.
      char origin[64];
      std::snprintf(origin, sizeof(origin), ".org 0x%x\n", pc);
      auto reassembled = Assemble(std::string(origin) + text + "\n");
      ASSERT_TRUE(reassembled.ok())
          << "pc=" << pc << " '" << text << "': " << reassembled.error().ToString();
      ASSERT_EQ(reassembled.value().sections.size(), 1u);
      const auto& bytes = reassembled.value().sections[0].bytes;
      ASSERT_EQ(bytes.size(), 4u) << text;
      uint32_t reworded = static_cast<uint32_t>(bytes[0]) | (static_cast<uint32_t>(bytes[1]) << 8) |
                          (static_cast<uint32_t>(bytes[2]) << 16) |
                          (static_cast<uint32_t>(bytes[3]) << 24);
      EXPECT_EQ(reworded, word) << "pc=" << pc << " '" << text << "'";
      ++round_tripped;
    }
  }
  EXPECT_GT(round_tripped, 700u);  // The guest is a real program.
}

}  // namespace
}  // namespace hbft
