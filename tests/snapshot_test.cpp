// Snapshot tests: the canonical codec, byte-identical round trips at every
// layer (CPU, memory, TLB, machine, devices, hypervisor), equivalence of a
// restored machine under further execution, and the strictness guarantees
// the state-transfer decoder inherits (reject truncation at every prefix,
// trailing bytes, and non-canonical flag bytes).
#include <gtest/gtest.h>

#include "common/snapshot.hpp"
#include "devices/nic.hpp"
#include "hypervisor/hypervisor.hpp"
#include "isa/assembler.hpp"
#include "machine/machine.hpp"

namespace hbft {
namespace {

MachineConfig TinyConfig() {
  MachineConfig config;
  config.ram_bytes = 4 * kPageBytes;  // Small RAM keeps prefix sweeps fast.
  config.tlb_entries = 4;
  config.machine_seed = 7;
  return config;
}

// A machine with non-trivial state: registers written, pages dirtied, TLB
// populated, recovery counter armed.
std::unique_ptr<Machine> BusyMachine() {
  auto machine = std::make_unique<Machine>(TinyConfig());
  auto assembled = Assemble(R"(
    li r1, 0xABCD
    li r2, 0x3000
    sw r1, 0(r2)
    sw r1, 4(r2)
    halt
  )");
  EXPECT_TRUE(assembled.ok());
  machine->LoadImage(assembled.value());
  machine->SetRecoveryCounter(1000);
  machine->SetRctrEnabled(true);
  machine->tlb().Insert(3, 0x3013, /*wired=*/true);
  machine->Run(4);  // Stop before HALT: mid-stream state.
  return machine;
}

TEST(Snapshot, MachineRoundTripIsByteIdentical) {
  auto original = BusyMachine();
  Snapshot first;
  SnapshotWriter w1(&first);
  original->CaptureState(w1, /*include_memory=*/true);

  Machine restored(TinyConfig());
  SnapshotReader r(first);
  ASSERT_TRUE(restored.RestoreState(r, /*include_memory=*/true));
  EXPECT_TRUE(r.AtEnd());

  Snapshot second;
  SnapshotWriter w2(&second);
  restored.CaptureState(w2, /*include_memory=*/true);
  EXPECT_EQ(first.bytes, second.bytes);
  EXPECT_EQ(original->Fingerprint(), restored.Fingerprint());
}

// A restored machine is not just byte-identical at rest: running both
// machines onward produces identical state — capture really is the complete
// execution context.
TEST(Snapshot, RestoredMachineExecutesIdentically) {
  auto original = BusyMachine();
  Snapshot snap;
  SnapshotWriter w(&snap);
  original->CaptureState(w, /*include_memory=*/true);

  Machine restored(TinyConfig());
  SnapshotReader r(snap);
  ASSERT_TRUE(restored.RestoreState(r, /*include_memory=*/true));

  MachineExit a = original->Run(100);
  MachineExit b = restored.Run(100);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(original->cpu().pc, restored.cpu().pc);
  EXPECT_EQ(original->Fingerprint(), restored.Fingerprint());

  Snapshot sa;
  SnapshotWriter wa(&sa);
  original->CaptureState(wa, true);
  Snapshot sb;
  SnapshotWriter wb(&sb);
  restored.CaptureState(wb, true);
  EXPECT_EQ(sa.bytes, sb.bytes);
}

TEST(Snapshot, MachineRestoreRejectsMismatchedRamSize) {
  auto original = BusyMachine();
  Snapshot snap;
  SnapshotWriter w(&snap);
  original->CaptureState(w, /*include_memory=*/true);

  MachineConfig bigger = TinyConfig();
  bigger.ram_bytes = 8 * kPageBytes;
  Machine restored(bigger);
  SnapshotReader r(snap);
  EXPECT_FALSE(restored.RestoreState(r, /*include_memory=*/true));
}

// Every strict prefix of a headered snapshot must be rejected — the same
// property the wire codec guarantees, extended to the snapshot decoder the
// state transfer relies on.
TEST(Snapshot, RestoreRejectsEveryTruncationAndTrailingBytes) {
  auto machine = BusyMachine();
  Snapshot snap;
  SnapshotWriter w(&snap);
  WriteSnapshotHeader(w);
  machine->CaptureState(w, /*include_memory=*/true);

  for (size_t len = 0; len < snap.bytes.size(); ++len) {
    Snapshot prefix;
    prefix.bytes.assign(snap.bytes.begin(), snap.bytes.begin() + static_cast<ptrdiff_t>(len));
    SnapshotReader r(prefix);
    Machine target(TinyConfig());
    bool ok = ReadSnapshotHeader(r) && target.RestoreState(r, /*include_memory=*/true) &&
              r.AtEnd();
    EXPECT_FALSE(ok) << "accepted a " << len << "-byte prefix of " << snap.bytes.size();
  }

  Snapshot padded = snap;
  padded.bytes.push_back(0);
  SnapshotReader r(padded);
  Machine target(TinyConfig());
  EXPECT_TRUE(ReadSnapshotHeader(r) && target.RestoreState(r, /*include_memory=*/true));
  EXPECT_FALSE(r.AtEnd());  // Trailing garbage is visible and must be rejected.
}

TEST(Snapshot, RestoreRejectsNonCanonicalFlagBytes) {
  auto machine = BusyMachine();
  Snapshot snap;
  SnapshotWriter w(&snap);
  machine->CaptureState(w, /*include_memory=*/true);

  // Layout: CPU (32 GPRs + 16 CRs + pc + instret = 204 bytes), then the TLB
  // slot count (4 bytes), then slot 0's `valid` flag byte.
  const size_t valid_flag_pos = 204 + 4;
  ASSERT_LE(snap.bytes[valid_flag_pos], 1u);
  snap.bytes[valid_flag_pos] = 2;
  SnapshotReader r(snap);
  Machine target(TinyConfig());
  EXPECT_FALSE(target.RestoreState(r, /*include_memory=*/true));
}

TEST(Snapshot, HeaderVersioningIsEnforced) {
  Snapshot snap;
  SnapshotWriter w(&snap);
  WriteSnapshotHeader(w);
  {
    SnapshotReader r(snap);
    EXPECT_TRUE(ReadSnapshotHeader(r));
  }
  Snapshot wrong_magic = snap;
  wrong_magic.bytes[0] ^= 0xFF;
  {
    SnapshotReader r(wrong_magic);
    EXPECT_FALSE(ReadSnapshotHeader(r));
  }
  Snapshot wrong_version = snap;
  wrong_version.bytes[4] ^= 0xFF;
  {
    SnapshotReader r(wrong_version);
    EXPECT_FALSE(ReadSnapshotHeader(r));
  }
}

// Hypervisor-level round trip: virtual clock, timer, buffered interrupts
// (with DMA payloads), device register models, and the machine beneath.
TEST(Snapshot, HypervisorRoundTripIncludesBufferedInterruptsAndDevices) {
  MachineConfig machine_config = TinyConfig();
  HypervisorConfig hv_config;
  hv_config.epoch_length = 4096;
  Hypervisor original(machine_config, hv_config, CostModel{});
  original.BeginEpoch();
  original.SetClock(SimTime::Millis(7));
  VirtualInterrupt vi;
  vi.irq_line = kIrqDisk;
  vi.epoch = 3;
  IoCompletionPayload io;
  io.device_irq = kIrqDisk;
  io.guest_op_seq = 11;
  io.has_dma_data = true;
  io.dma_guest_paddr = 0x2000;
  io.dma_data.assign(64, 0x77);
  vi.io = io;
  original.BufferInterrupt(vi);

  Snapshot first;
  SnapshotWriter w1(&first);
  original.CaptureState(w1, /*include_memory=*/true);

  Hypervisor restored(machine_config, hv_config, CostModel{});
  SnapshotReader r(first);
  ASSERT_TRUE(restored.RestoreState(r, /*include_memory=*/true));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(restored.clock(), original.clock());

  Snapshot second;
  SnapshotWriter w2(&second);
  restored.CaptureState(w2, /*include_memory=*/true);
  EXPECT_EQ(first.bytes, second.bytes);
}

// A registry snapshot only restores into an identically-shaped registry:
// device sets are hardware configuration, not transferable state.
TEST(Snapshot, RegistryRestoreRejectsShapeMismatch) {
  auto disk_console = CreateDefaultRegistry();
  Snapshot snap;
  SnapshotWriter w(&snap);
  disk_console->CaptureState(w);

  auto with_nic = CreateDefaultRegistry();
  with_nic->Add(std::make_unique<NicDevice>());
  SnapshotReader r(snap);
  EXPECT_FALSE(with_nic->RestoreState(r));
}

TEST(Snapshot, IoDescriptorCodecRoundTripsAndRejectsTruncation) {
  IoDescriptor io;
  io.device_id = DeviceId::kDisk;
  io.guest_op_seq = 42;
  io.opcode = 2;
  io.arg0 = 17;
  io.arg1 = 0x3000;
  io.payload = {1, 2, 3, 4, 5};

  Snapshot snap;
  SnapshotWriter w(&snap);
  CaptureIoDescriptor(w, io);
  {
    SnapshotReader r(snap);
    IoDescriptor decoded;
    ASSERT_TRUE(RestoreIoDescriptor(r, &decoded));
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(decoded.device_id, io.device_id);
    EXPECT_EQ(decoded.guest_op_seq, io.guest_op_seq);
    EXPECT_EQ(decoded.payload, io.payload);
  }
  for (size_t len = 0; len < snap.bytes.size(); ++len) {
    Snapshot prefix;
    prefix.bytes.assign(snap.bytes.begin(), snap.bytes.begin() + static_cast<ptrdiff_t>(len));
    SnapshotReader r(prefix);
    IoDescriptor decoded;
    EXPECT_FALSE(RestoreIoDescriptor(r, &decoded)) << "accepted prefix " << len;
  }
}

TEST(Snapshot, ReaderBoolRejectsNonCanonicalValues) {
  Snapshot snap;
  snap.bytes = {0, 1, 2};
  SnapshotReader r(snap);
  bool v = false;
  EXPECT_TRUE(r.Bool(&v));
  EXPECT_FALSE(v);
  EXPECT_TRUE(r.Bool(&v));
  EXPECT_TRUE(v);
  EXPECT_FALSE(r.Bool(&v));  // 2 is corruption, not "true".
}

}  // namespace
}  // namespace hbft
