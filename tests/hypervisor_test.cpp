// Hypervisor tests: privileged-instruction simulation, virtual status
// mapping, epoch control, interrupt buffering/delivery, TLB takeover, MMIO
// virtualisation through the device registry, and cost accounting.
#include <gtest/gtest.h>

#include "devices/console.hpp"
#include "devices/disk.hpp"
#include "hypervisor/hypervisor.hpp"
#include "isa/assembler.hpp"

namespace hbft {
namespace {

// Builds a hypervisor running the given source with the guest entered at
// real privilege 1 ("virtual privilege 0"), as the replication layer does.
struct HvHarness {
  explicit HvHarness(const std::string& source, uint64_t epoch_len = 1u << 30) {
    auto assembled = Assemble(source);
    EXPECT_TRUE(assembled.ok()) << (assembled.ok() ? "" : assembled.error().ToString());
    image = assembled.value();
    MachineConfig machine_config;
    HypervisorConfig hv_config;
    hv_config.epoch_length = epoch_len;
    hv = std::make_unique<Hypervisor>(machine_config, hv_config, CostModel{});
    hv->machine().LoadImage(image);
    hv->machine().cpu().pc = 0;
    hv->machine().cpu().cr[kCrStatus] = 1;  // Real privilege 1.
    hv->BeginEpoch();
  }

  const DiskDevice::State& vdisk() const {
    return static_cast<const DiskDevice*>(hv->devices().by_id(DeviceId::kDisk))->state();
  }
  const ConsoleDevice::State& vconsole() const {
    return static_cast<const ConsoleDevice*>(hv->devices().by_id(DeviceId::kConsole))->state();
  }

  AssembledImage image;
  std::unique_ptr<Hypervisor> hv;
};

TEST(Hypervisor, SimulatesPrivilegedInstructions) {
  HvHarness h(R"(
    li r1, 0x1234
    mtcr scratch0, r1    ; privileged: trapped and simulated
    mfcr r2, scratch0
    halt
  )");
  GuestEvent event = h.hv->RunGuest(SimTime::Seconds(1));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kHalted);
  EXPECT_EQ(h.hv->machine().cpu().gpr[2], 0x1234u);
  EXPECT_GE(h.hv->stats().privileged_simulated, 3u);  // mtcr + mfcr + halt.
}

TEST(Hypervisor, ChargesPaperCostPerSimulatedInstruction) {
  HvHarness h(R"(
    mtcr scratch0, r1
    mtcr scratch1, r1
    mtcr scratch2, r1
    halt
  )");
  h.hv->RunGuest(SimTime::Seconds(1));
  // 4 simulated instructions at 15.12 us plus 4 ordinary-instruction... the
  // trapped instructions themselves execute no machine cycles, so the clock
  // is n_sim * 15.12us exactly.
  EXPECT_EQ(h.hv->stats().privileged_simulated, 4u);
  EXPECT_NEAR(h.hv->clock().micros_f(), 4 * 15.12, 0.01);
}

TEST(Hypervisor, VirtualStatusHidesRealPrivilege) {
  HvHarness h(R"(
    mfcr r1, status      ; virtual view: privilege 0
    halt
  )");
  h.hv->RunGuest(SimTime::Seconds(1));
  EXPECT_EQ(h.hv->machine().cpu().gpr[1] & StatusBits::kPrivMask, 0u);
  // The real register still says privilege 1.
  EXPECT_EQ(h.hv->machine().cpu().priv(), 1u);
}

TEST(Hypervisor, VirtualPridIsZero) {
  HvHarness h(R"(
    mfcr r1, prid
    halt
  )");
  h.hv->RunGuest(SimTime::Seconds(1));
  EXPECT_EQ(h.hv->machine().cpu().gpr[1], 0u);
}

TEST(Hypervisor, TodReadSurfacesAsEnvironmentEvent) {
  HvHarness h(R"(
    mfcr r1, tod
    halt
  )");
  GuestEvent event = h.hv->RunGuest(SimTime::Seconds(1));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kTodRead);
  h.hv->CompleteTodRead(987654);
  event = h.hv->RunGuest(SimTime::Seconds(1));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kHalted);
  EXPECT_EQ(h.hv->machine().cpu().gpr[1], 987654u);
}

TEST(Hypervisor, EpochEndsAfterExactInstructionCount) {
  HvHarness h(R"(
loop:
    addi r1, r1, 1
    j loop
  )",
              /*epoch_len=*/500);
  GuestEvent event = h.hv->RunGuest(SimTime::Seconds(10));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kEpochEnd);
  EXPECT_EQ(h.hv->machine().cpu().instret, 500u);
  h.hv->BeginEpoch();
  event = h.hv->RunGuest(SimTime::Seconds(10));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kEpochEnd);
  EXPECT_EQ(h.hv->machine().cpu().instret, 1000u);
}

TEST(Hypervisor, SimulatedInstructionsCountTowardEpochs) {
  HvHarness h(R"(
loop:
    mtcr scratch0, r1    ; every instruction is simulated
    j loop
  )",
              /*epoch_len=*/10);
  GuestEvent event = h.hv->RunGuest(SimTime::Seconds(10));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kEpochEnd);
  EXPECT_EQ(h.hv->machine().cpu().instret, 10u);
}

TEST(Hypervisor, MmioVirtualDiskCommandSequence) {
  HvHarness h(R"(
    ; map MMIO via wired TLB entries as MiniOS does, then enable VM... not
    ; needed: VM off, kernel at real privilege 1 reaches MMIO physically.
    li r1, 0xF0000000
    li r2, 17
    sw r2, 8(r1)         ; BLOCK = 17
    li r2, 1
    sw r2, 12(r1)        ; COUNT = 1
    li r2, 0x3000
    sw r2, 16(r1)        ; DMA = 0x3000
    li r2, 2
    sw r2, 0(r1)         ; CMD = write
    halt
  )");
  GuestEvent event = h.hv->RunGuest(SimTime::Seconds(1));
  ASSERT_EQ(event.kind, GuestEvent::Kind::kIoCommand);
  EXPECT_EQ(event.io.device_id, DeviceId::kDisk);
  EXPECT_EQ(event.io.opcode, kDiskOpWrite);
  EXPECT_EQ(event.io.arg0, 17u);       // Block.
  EXPECT_EQ(event.io.arg1, 0x3000u);   // DMA address.
  EXPECT_EQ(event.io.guest_op_seq, 1u);
  EXPECT_EQ(event.io.payload.size(), kDiskBlockBytes);
  EXPECT_TRUE(h.vdisk().busy);
  EXPECT_EQ(h.vdisk().reg_status & kDiskStatusBusy, kDiskStatusBusy);
  h.hv->CompleteIoCommand();
  event = h.hv->RunGuest(SimTime::Seconds(1));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kHalted);
}

TEST(Hypervisor, DiskWriteSnapshotsDmaBufferAtIssue) {
  HvHarness h(R"(
    li r3, 0x3000
    li r4, 0xABCD
    sw r4, 0(r3)         ; buffer contents before issue
    li r1, 0xF0000000
    li r2, 0x3000
    sw r2, 16(r1)
    li r2, 2
    sw r2, 0(r1)
    halt
  )");
  GuestEvent event = h.hv->RunGuest(SimTime::Seconds(1));
  ASSERT_EQ(event.kind, GuestEvent::Kind::kIoCommand);
  EXPECT_EQ(event.io.payload[0], 0xCD);
  EXPECT_EQ(event.io.payload[1], 0xAB);
}

TEST(Hypervisor, InterruptDeliveryAppliesDmaAndVectors) {
  HvHarness h(R"(
    la r1, handler
    mtcr tvec, r1
    li r1, 0xF0000000
    li r2, 0x3000
    sw r2, 16(r1)        ; DMA
    li r2, 1
    sw r2, 0(r1)         ; CMD = read
    mfcr r3, status
    ori r3, r3, 4        ; enable interrupts
    mtcr status, r3
spin:
    j spin
handler:
    mfcr r4, ecause
    li r5, 0xF0000000
    lw r6, 0x14(r5)      ; RESULT register
    lw r7, 0x3000(zero)  ; DMA'd data
    halt
  )",
              /*epoch_len=*/100000);
  GuestEvent event = h.hv->RunGuest(SimTime::Seconds(1));
  ASSERT_EQ(event.kind, GuestEvent::Kind::kIoCommand);
  h.hv->CompleteIoCommand();

  // Simulate the replication layer: completion arrives with DMA data.
  VirtualInterrupt vi;
  vi.irq_line = kIrqDisk;
  vi.epoch = 0;
  IoCompletionPayload payload;
  payload.device_irq = kIrqDisk;
  payload.guest_op_seq = 1;
  payload.result_code = kDiskResultOk;
  payload.has_dma_data = true;
  payload.dma_guest_paddr = 0x3000;
  payload.dma_data.assign(kDiskBlockBytes, 0);
  payload.dma_data[0] = 0x99;
  vi.io = payload;
  h.hv->BufferInterrupt(vi);

  // Let the guest spin a little (interrupts are NOT delivered mid-epoch).
  event = h.hv->RunGuest(h.hv->clock() + SimTime::Micros(50));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kNone);
  EXPECT_EQ(h.hv->machine().cpu().gpr[4], 0u) << "interrupt must wait for the boundary";

  uint32_t delivered = h.hv->DeliverEpochInterrupts(/*epoch=*/0, /*tme=*/0);
  EXPECT_EQ(delivered, 1u);
  event = h.hv->RunGuest(SimTime::Seconds(1));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kHalted);
  EXPECT_EQ(h.hv->machine().cpu().gpr[4], static_cast<uint32_t>(TrapCause::kInterrupt));
  EXPECT_EQ(h.hv->machine().cpu().gpr[6], kDiskResultOk);
  EXPECT_EQ(h.hv->machine().cpu().gpr[7], 0x99u);
  EXPECT_FALSE(h.vdisk().busy);
}

TEST(Hypervisor, TimerInterruptFromTmeComparison) {
  HvHarness h(R"(
    la r1, handler
    mtcr tvec, r1
    li r2, 5000
    mtcr itmr, r2
    mfcr r3, status
    ori r3, r3, 4
    mtcr status, r3
spin:
    j spin
handler:
    mfcr r4, ecause
    halt
  )",
              /*epoch_len=*/100000);
  GuestEvent event = h.hv->RunGuest(h.hv->clock() + SimTime::Micros(100));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kNone);
  EXPECT_TRUE(h.hv->timer_armed());
  EXPECT_EQ(h.hv->virtual_itmr(), 5000u);
  // Boundary with Tme below the comparator: no interrupt.
  EXPECT_EQ(h.hv->DeliverEpochInterrupts(0, /*tme=*/4999), 0u);
  // Boundary with Tme past it: timer fires.
  EXPECT_EQ(h.hv->DeliverEpochInterrupts(0, /*tme=*/5001), 1u);
  event = h.hv->RunGuest(SimTime::Seconds(1));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kHalted);
  EXPECT_EQ(h.hv->machine().cpu().gpr[4], static_cast<uint32_t>(TrapCause::kInterrupt));
}

TEST(Hypervisor, DeliveryDeferredUntilGuestEnablesInterrupts) {
  HvHarness h(R"(
    la r1, handler
    mtcr tvec, r1
    li r2, 10
    mtcr itmr, r2
    ; interrupts DISABLED; do some work, then enable.
    li r3, 0
    addi r3, r3, 1
    addi r3, r3, 2
    mfcr r4, status
    ori r4, r4, 4
    mtcr status, r4      ; <- delivery must happen exactly here
    addi r3, r3, 4       ; skipped (handler halts first)
    halt
handler:
    mfcr r5, ecause
    halt
  )",
              /*epoch_len=*/100000);
  // Deliver the timer with IE still off: latched but not vectored.
  h.hv->DeliverEpochInterrupts(0, /*tme=*/11);  // itmr not yet written: no-op.
  GuestEvent event = h.hv->RunGuest(SimTime::Seconds(1));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kHalted);
  EXPECT_EQ(h.hv->machine().cpu().gpr[5], 0u);  // Sanity: that run had no irq.

  // Fresh harness: raise EIRR while IE is off, then run.
  HvHarness h2(R"(
    la r1, handler
    mtcr tvec, r1
    li r3, 0
    addi r3, r3, 1
    mfcr r4, status
    ori r4, r4, 4
    mtcr status, r4
    addi r3, r3, 100
    halt
handler:
    mfcr r5, ecause
    mv r6, r3
    halt
  )");
  h2.hv->machine().RaiseIrq(kIrqTimer);
  GuestEvent event2 = h2.hv->RunGuest(SimTime::Seconds(1));
  EXPECT_EQ(event2.kind, GuestEvent::Kind::kHalted);
  EXPECT_EQ(h2.hv->machine().cpu().gpr[5], static_cast<uint32_t>(TrapCause::kInterrupt));
  // Handler ran at the IE-enable point, before the addi 100.
  EXPECT_EQ(h2.hv->machine().cpu().gpr[6], 1u);
}

TEST(Hypervisor, TlbTakeoverHidesMissesFromGuest) {
  // Kernel builds a valid PT entry, enables VM, and touches the page; with
  // takeover the guest's TVEC handler must never run for the miss.
  HvHarness h(R"(
    la r1, handler
    mtcr tvec, r1
    li r1, 0x8000
    mtcr ptbase, r1
    ; PT[2] = identity V|W|X
    li r2, 0x2007
    sw r2, 8(r1)
    ; PT[0..1] identity too (we execute from page 0)
    li r2, 0x0007
    sw r2, 0(r1)
    li r2, 0x1007
    sw r2, 4(r1)
    ; PT[8] maps the page table page itself
    li r2, 0x8007
    sw r2, 32(r1)
    ; wire page 0 so the fetch after enabling VM works
    li r3, 0
    li r4, 0x17
    tlbi r3, r4
    mfcr r5, status
    ori r5, r5, 0x80
    mtcr status, r5
    li r6, 0x2100
    li r7, 0x77
    sw r7, 0(r6)         ; vpn 2 miss -> hypervisor fills
    lw r8, 0(r6)
    halt
handler:
    li r9, 0xBAD
    halt
  )");
  GuestEvent event = h.hv->RunGuest(SimTime::Seconds(1));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kHalted);
  EXPECT_EQ(h.hv->machine().cpu().gpr[8], 0x77u);
  EXPECT_EQ(h.hv->machine().cpu().gpr[9], 0u) << "guest saw a TLB miss despite takeover";
  EXPECT_GE(h.hv->stats().tlb_fills, 1u);
}

TEST(Hypervisor, InvalidPteReflectsPageFault) {
  HvHarness h(R"(
    la r1, handler
    mtcr tvec, r1
    li r1, 0x8000
    mtcr ptbase, r1
    li r2, 0x0007
    sw r2, 0(r1)
    ; PT[2] left invalid
    li r3, 0
    li r4, 0x17
    tlbi r3, r4
    mfcr r5, status
    ori r5, r5, 0x80
    mtcr status, r5
    li r6, 0x2100
    lw r7, 0(r6)         ; invalid PTE -> guest page fault
    halt
handler:
    mfcr r8, ecause
    mfcr r9, evaddr
    halt
  )");
  GuestEvent event = h.hv->RunGuest(SimTime::Seconds(1));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kHalted);
  EXPECT_EQ(h.hv->machine().cpu().gpr[8], static_cast<uint32_t>(TrapCause::kPageFault));
  EXPECT_EQ(h.hv->machine().cpu().gpr[9], 0x2100u);
}

TEST(Hypervisor, SyscallReflectsToGuestKernelAtRealPrivilege1) {
  HvHarness h(R"(
    la r1, handler
    mtcr tvec, r1
    ; user mode needs translation: wire user-accessible identity pages
    li r2, 0
wire_loop:
    slli r3, r2, 12
    ori r4, r3, 0x1F     ; V|W|X|U|WIRED
    tlbi r3, r4
    addi r2, r2, 1
    li r5, 4
    bltu r2, r5, wire_loop
    ; drop to virtual user (real 3) with VM on
    li r1, 0xB8          ; VM | prev_priv=3 | prev_ie
    mtcr status, r1
    la r2, user
    mtcr epc, r2
    rfi
user:
    syscall 7
    halt                 ; unreachable: handler halts
handler:
    mfcr r3, ecause
    mfcr r4, status
    halt
  )");
  GuestEvent event = h.hv->RunGuest(SimTime::Seconds(1));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kHalted);
  EXPECT_EQ(h.hv->machine().cpu().gpr[3], static_cast<uint32_t>(TrapCause::kSyscall));
  // Virtual view of STATUS in the handler: privilege 0, previous privilege 3.
  uint32_t virt_status = h.hv->machine().cpu().gpr[4];
  EXPECT_EQ(virt_status & StatusBits::kPrivMask, 0u);
  EXPECT_EQ((virt_status & StatusBits::kPrevPrivMask) >> StatusBits::kPrevPrivShift, 3u);
}

TEST(Hypervisor, ConsoleTxFlowWithUncertainRetrySignal) {
  HvHarness h(R"(
    li r1, 0xF0001000
    li r2, 65            ; 'A'
    sw r2, 0(r1)         ; TX
    lw r3, 0x08(r1)      ; STATUS: tx busy
    halt
  )");
  GuestEvent event = h.hv->RunGuest(SimTime::Seconds(1));
  ASSERT_EQ(event.kind, GuestEvent::Kind::kIoCommand);
  EXPECT_EQ(event.io.device_id, DeviceId::kConsole);
  EXPECT_EQ(event.io.opcode, kConsoleOpTx);
  ASSERT_EQ(event.io.payload.size(), 1u);
  EXPECT_EQ(event.io.payload[0], static_cast<uint8_t>('A'));
  h.hv->CompleteIoCommand();
  event = h.hv->RunGuest(SimTime::Seconds(1));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kHalted);
  EXPECT_EQ(h.hv->machine().cpu().gpr[3] & 2u, 2u);  // TX busy bit set.

  // Deliver an uncertain TX completion (P7 synthesis at failover): the
  // result register must tell the driver to retry.
  VirtualInterrupt vi;
  vi.irq_line = kIrqConsoleTx;
  vi.epoch = 0;
  IoCompletionPayload payload;
  payload.device_irq = kIrqConsoleTx;
  payload.guest_op_seq = 1;
  payload.result_code = kDiskResultCheckCondition;
  vi.io = payload;
  h.hv->BufferInterrupt(vi);
  h.hv->DeliverEpochInterrupts(0, 0);
  EXPECT_FALSE(h.vconsole().tx_busy);
  EXPECT_EQ(h.vconsole().reg_result, kConsoleResultUncertain);
}

TEST(Hypervisor, ConsoleIntAckClearsSelectedLinesOnly) {
  HvHarness h(R"(
    li r1, 0xF0001000
    li r2, 2             ; ack TX only
    sw r2, 0x0C(r1)
    halt
  )");
  // Pre-raise both console lines and mark RX ready. Console RX rides the
  // generic completion payload: the character travels in result_code.
  h.hv->machine().RaiseIrq(kIrqConsoleRx | kIrqConsoleTx);
  VirtualInterrupt rx;
  rx.irq_line = kIrqConsoleRx;
  rx.epoch = 0;
  IoCompletionPayload rx_payload;
  rx_payload.device_irq = kIrqConsoleRx;
  rx_payload.result_code = static_cast<uint32_t>('z');
  rx.io = rx_payload;
  h.hv->BufferInterrupt(rx);
  h.hv->DeliverEpochInterrupts(0, 0);  // Sets rx_ready.
  GuestEvent event = h.hv->RunGuest(SimTime::Seconds(1));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kHalted);
  EXPECT_EQ(h.hv->machine().pending_irqs() & kIrqConsoleTx, 0u);
  EXPECT_NE(h.hv->machine().pending_irqs() & kIrqConsoleRx, 0u) << "RX must stay pending";
  EXPECT_TRUE(h.vconsole().rx_ready) << "RX data must survive a TX-only ack";
  EXPECT_EQ(h.vconsole().rx_char, static_cast<uint32_t>('z'));
}

TEST(Hypervisor, InstretIsVirtualisedToGuestInstructionCount) {
  HvHarness h(R"(
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    mfcr r2, instret     ; simulated: must count guest instructions only
    halt
  )");
  GuestEvent event = h.hv->RunGuest(SimTime::Seconds(1));
  EXPECT_EQ(event.kind, GuestEvent::Kind::kHalted);
  EXPECT_EQ(h.hv->machine().cpu().gpr[2], 3u);
}

TEST(Hypervisor, PurgeBufferedAfterDropsLaterEpochs) {
  HvHarness h("halt\n");
  for (uint64_t epoch : {3u, 4u, 5u, 7u}) {
    VirtualInterrupt vi;
    vi.irq_line = kIrqConsoleTx;
    vi.epoch = epoch;
    IoCompletionPayload payload;
    payload.device_irq = kIrqConsoleTx;
    payload.guest_op_seq = epoch;
    vi.io = payload;
    h.hv->BufferInterrupt(vi);
  }
  auto purged = h.hv->PurgeBufferedAfter(4);
  ASSERT_EQ(purged.size(), 2u);
  EXPECT_EQ(purged[0].epoch, 5u);
  EXPECT_EQ(purged[1].epoch, 7u);
  EXPECT_EQ(h.hv->DeliverEpochInterrupts(4, 0), 2u);
}

}  // namespace
}  // namespace hbft
