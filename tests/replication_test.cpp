// Replica-coordination tests (no failures): the primary and backup execute
// identical instruction streams, state fingerprints match at every epoch
// boundary, the backup never touches the environment, results equal the
// unreplicated run, and both protocol variants behave.
#include <gtest/gtest.h>

#include <algorithm>

#include "guest/workloads.hpp"
#include "sim/environment_observer.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace {

Scenario AuditScenario(const WorkloadSpec& spec, uint64_t epoch_len,
                       ProtocolVariant variant) {
  return Scenario::Replicated(spec).Epoch(epoch_len).Variant(variant).AuditLockstep();
}

struct ReplicationCase {
  WorkloadKind kind;
  uint32_t iterations;
  uint64_t epoch_len;
  ProtocolVariant variant;
};

std::string CaseName(const testing::TestParamInfo<ReplicationCase>& info) {
  const ReplicationCase& c = info.param;
  std::string kind;
  switch (c.kind) {
    case WorkloadKind::kCpu:
      kind = "Cpu";
      break;
    case WorkloadKind::kDiskRead:
      kind = "DiskRead";
      break;
    case WorkloadKind::kDiskWrite:
      kind = "DiskWrite";
      break;
    case WorkloadKind::kHello:
      kind = "Hello";
      break;
    case WorkloadKind::kTxnLog:
      kind = "TxnLog";
      break;
    case WorkloadKind::kHeap:
      kind = "Heap";
      break;
    case WorkloadKind::kTime:
      kind = "Time";
      break;
    default:
      kind = "Other";
      break;
  }
  return kind + "_E" + std::to_string(c.epoch_len) +
         (c.variant == ProtocolVariant::kOriginal ? "_Old" : "_New");
}

WorkloadSpec SpecFor(const ReplicationCase& c) {
  WorkloadSpec spec;
  spec.kind = c.kind;
  spec.iterations = c.iterations;
  if (c.kind == WorkloadKind::kDiskRead || c.kind == WorkloadKind::kDiskWrite) {
    spec.compute_burst = 200;
    spec.driver_loops = 20;
    spec.num_blocks = 16;
  }
  if (c.kind == WorkloadKind::kTxnLog) {
    spec.num_blocks = 8;
  }
  return spec;
}

class ReplicationLockstep : public testing::TestWithParam<ReplicationCase> {};

TEST_P(ReplicationLockstep, MatchesBareAndStaysInLockstep) {
  const ReplicationCase& c = GetParam();
  WorkloadSpec spec = SpecFor(c);

  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);
  ASSERT_EQ(bare.exited_flag, 1u) << "bare panic " << bare.panic_code;

  ScenarioResult ft = AuditScenario(spec, c.epoch_len, c.variant).Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out << " deadlocked=" << ft.deadlocked;
  ASSERT_EQ(ft.exited_flag, 1u) << "panic " << ft.panic_code;
  EXPECT_FALSE(ft.promoted);

  // Same application results as the unreplicated machine (kTime checksums
  // depend on wall time and are exempt).
  EXPECT_EQ(ft.exit_code, bare.exit_code);
  if (c.kind != WorkloadKind::kTime) {
    EXPECT_EQ(ft.guest_checksum, bare.guest_checksum);
  }

  // Lockstep: every compared epoch-boundary fingerprint matches.
  size_t prefix = MatchingBoundaryPrefix(ft);
  size_t compared = std::min(ft.primary_boundary_fingerprints().size(),
                             ft.backup_boundary_fingerprints().size());
  EXPECT_EQ(prefix, compared) << "state diverged at epoch boundary " << prefix;
  EXPECT_GT(compared, 0u);

  // The environment saw only the primary, with the reference sequence.
  ConsistencyResult env =
      CheckEnvConsistency(bare.env_trace, ft.env_trace, ft.primary_id, ft.backup_id);
  EXPECT_TRUE(env.ok) << env.detail;
  EXPECT_EQ(ft.console_output, bare.console_output);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ReplicationLockstep,
    testing::Values(
        ReplicationCase{WorkloadKind::kCpu, 3000, 1024, ProtocolVariant::kOriginal},
        ReplicationCase{WorkloadKind::kCpu, 3000, 4096, ProtocolVariant::kOriginal},
        ReplicationCase{WorkloadKind::kCpu, 3000, 4096, ProtocolVariant::kRevised},
        ReplicationCase{WorkloadKind::kCpu, 3000, 16384, ProtocolVariant::kRevised},
        ReplicationCase{WorkloadKind::kHello, 1, 4096, ProtocolVariant::kOriginal},
        ReplicationCase{WorkloadKind::kHello, 1, 4096, ProtocolVariant::kRevised},
        ReplicationCase{WorkloadKind::kDiskRead, 5, 4096, ProtocolVariant::kOriginal},
        ReplicationCase{WorkloadKind::kDiskRead, 5, 4096, ProtocolVariant::kRevised},
        ReplicationCase{WorkloadKind::kDiskWrite, 5, 2048, ProtocolVariant::kOriginal},
        ReplicationCase{WorkloadKind::kDiskWrite, 5, 4096, ProtocolVariant::kRevised},
        ReplicationCase{WorkloadKind::kTxnLog, 6, 4096, ProtocolVariant::kOriginal},
        ReplicationCase{WorkloadKind::kTxnLog, 6, 4096, ProtocolVariant::kRevised},
        ReplicationCase{WorkloadKind::kHeap, 8, 4096, ProtocolVariant::kOriginal},
        ReplicationCase{WorkloadKind::kTime, 40, 4096, ProtocolVariant::kOriginal},
        ReplicationCase{WorkloadKind::kTime, 40, 2048, ProtocolVariant::kRevised}),
    CaseName);

TEST(Replication, BackupConsumesForwardedTimeValues) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTime;
  spec.iterations = 25;
  ScenarioResult ft = AuditScenario(spec, 4096, ProtocolVariant::kOriginal).Run();
  ASSERT_TRUE(ft.completed);
  EXPECT_EQ(ft.exit_code, 0u) << "backup saw non-monotone time";
  // Boot TOD read + 25 gettime reads, forwarded once each.
  EXPECT_GE(ft.primary_stats().env_values, 26u);
  EXPECT_EQ(ft.primary_stats().env_values, ft.backup_stats().env_values);
}

TEST(Replication, BackupSuppressesAllIo) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTxnLog;
  spec.iterations = 5;
  spec.num_blocks = 4;
  ScenarioResult ft = AuditScenario(spec, 4096, ProtocolVariant::kOriginal).Run();
  ASSERT_TRUE(ft.completed);
  EXPECT_GT(ft.backup_stats().io_suppressed, 0u);
  EXPECT_EQ(ft.backup_stats().io_issued, 0u);
  for (const auto& entry : ft.disk_trace) {
    EXPECT_EQ(entry.issuer, ft.primary_id);
  }
  for (const auto& entry : ft.console_trace) {
    EXPECT_EQ(entry.issuer, ft.primary_id);
  }
}

TEST(Replication, EpochCountsMatchAcrossReplicas) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kCpu;
  spec.iterations = 2000;
  ScenarioResult ft = AuditScenario(spec, 2048, ProtocolVariant::kOriginal).Run();
  ASSERT_TRUE(ft.completed);
  // The backup completes exactly the epochs the primary ended ([end,E] per
  // epoch), possibly minus the trailing partial one.
  EXPECT_LE(ft.backup_stats().epochs, ft.primary_stats().epochs);
  EXPECT_GE(ft.backup_stats().epochs + 1, ft.primary_stats().epochs);
  EXPECT_GT(ft.primary_stats().epochs, 10u);
}

TEST(Replication, OriginalProtocolWaitsForAcksAtBoundaries) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kCpu;
  spec.iterations = 2000;
  ScenarioResult old_run = AuditScenario(spec, 4096, ProtocolVariant::kOriginal).Run();
  ScenarioResult new_run = AuditScenario(spec, 4096, ProtocolVariant::kRevised).Run();
  ASSERT_TRUE(old_run.completed);
  ASSERT_TRUE(new_run.completed);
  EXPECT_GT(old_run.primary_stats().ack_wait_time.picos(), 0);
  // Dropping the boundary ack wait must make the run strictly faster.
  EXPECT_LT(new_run.completion_time.picos(), old_run.completion_time.picos());
}

TEST(Replication, RevisedProtocolCommitsOutputBeforeIo) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kDiskWrite;
  spec.iterations = 4;
  spec.num_blocks = 4;
  spec.compute_burst = 10;  // Little compute: acks often outstanding at I/O.
  ScenarioResult ft = AuditScenario(spec, 8192, ProtocolVariant::kRevised).Run();
  ASSERT_TRUE(ft.completed);
  EXPECT_EQ(ft.exited_flag, 1u);
  // All messages the primary sent were eventually acknowledged.
  EXPECT_EQ(ft.primary_stats().messages_sent, ft.primary_stats().acks_received);
}

TEST(Replication, ConsoleEchoThroughReplicatedPair) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kEcho;
  ScenarioResult ft =
      AuditScenario(spec, 4096, ProtocolVariant::kOriginal).ConsoleInput("abcq").Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out;
  EXPECT_EQ(ft.console_output, "abc");
  EXPECT_EQ(ft.guest_checksum, 3u);
}

}  // namespace
}  // namespace hbft
