// TLB tests: lookup/insert/flush semantics, wiring, and the replacement
// policies — including the nondeterminism that drives the paper's section 3.2
// discovery.
#include <gtest/gtest.h>

#include <set>

#include "machine/tlb.hpp"

namespace hbft {
namespace {

TEST(Tlb, HitAfterInsertMissOtherwise) {
  Tlb tlb(4, TlbPolicy::kRoundRobin, 1);
  EXPECT_FALSE(tlb.Lookup(5).has_value());
  tlb.Insert(5, 0x5007, false);
  auto pte = tlb.Lookup(5);
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(*pte, 0x5007u);
  EXPECT_FALSE(tlb.Lookup(6).has_value());
  EXPECT_EQ(tlb.misses(), 2u);
  EXPECT_EQ(tlb.lookups(), 3u);
}

TEST(Tlb, SameVpnReplacesInPlace) {
  Tlb tlb(2, TlbPolicy::kRoundRobin, 1);
  tlb.Insert(5, 0x5007, false);
  tlb.Insert(5, 0x500F, false);
  EXPECT_EQ(*tlb.Lookup(5), 0x500Fu);
  // Still room for one more without eviction.
  tlb.Insert(6, 0x6007, false);
  EXPECT_TRUE(tlb.Lookup(5).has_value());
  EXPECT_TRUE(tlb.Lookup(6).has_value());
}

TEST(Tlb, EvictionRespectsCapacity) {
  Tlb tlb(4, TlbPolicy::kRoundRobin, 1);
  for (uint32_t vpn = 0; vpn < 8; ++vpn) {
    tlb.Insert(vpn, (vpn << 12) | 1, false);
  }
  int present = 0;
  for (uint32_t vpn = 0; vpn < 8; ++vpn) {
    if (tlb.Lookup(vpn).has_value()) {
      ++present;
    }
  }
  EXPECT_EQ(present, 4);
}

TEST(Tlb, WiredEntriesSurviveEvictionAndFlush) {
  Tlb tlb(4, TlbPolicy::kHardwareRandom, 99);
  tlb.Insert(100, 0x100 << 12 | 1, true);
  tlb.Insert(101, 0x101 << 12 | 1, true);
  for (uint32_t vpn = 0; vpn < 64; ++vpn) {
    tlb.Insert(vpn, (vpn << 12) | 1, false);
  }
  EXPECT_TRUE(tlb.Lookup(100).has_value());
  EXPECT_TRUE(tlb.Lookup(101).has_value());
  tlb.FlushUnwired();
  EXPECT_TRUE(tlb.Lookup(100).has_value());
  int unwired_present = 0;
  for (uint32_t vpn = 0; vpn < 64; ++vpn) {
    if (tlb.Lookup(vpn).has_value()) {
      ++unwired_present;
    }
  }
  EXPECT_EQ(unwired_present, 0);
}

TEST(Tlb, ResetClearsEverything) {
  Tlb tlb(4, TlbPolicy::kRoundRobin, 1);
  tlb.Insert(1, 0x1001, true);
  tlb.Insert(2, 0x2001, false);
  tlb.Reset();
  EXPECT_FALSE(tlb.Lookup(1).has_value());
  EXPECT_FALSE(tlb.Lookup(2).has_value());
}

// The paper's observation: identical reference strings on two processors
// yield different TLB contents under the hardware's nondeterministic
// replacement — visible only through software-handled misses.
TEST(Tlb, HardwareRandomPolicyDivergesAcrossMachines) {
  Tlb a(8, TlbPolicy::kHardwareRandom, /*machine_seed=*/1);
  Tlb b(8, TlbPolicy::kHardwareRandom, /*machine_seed=*/2);
  // Identical insert sequences.
  for (uint32_t vpn = 0; vpn < 64; ++vpn) {
    a.Insert(vpn, (vpn << 12) | 1, false);
    b.Insert(vpn, (vpn << 12) | 1, false);
  }
  int differing = 0;
  for (uint32_t vpn = 0; vpn < 64; ++vpn) {
    if (a.Lookup(vpn).has_value() != b.Lookup(vpn).has_value()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0) << "seeds should produce different resident sets";
}

TEST(Tlb, RoundRobinPolicyIsIdenticalAcrossMachines) {
  Tlb a(8, TlbPolicy::kRoundRobin, 1);
  Tlb b(8, TlbPolicy::kRoundRobin, 2);  // Seed must not matter.
  for (uint32_t vpn = 0; vpn < 64; ++vpn) {
    a.Insert(vpn, (vpn << 12) | 1, false);
    b.Insert(vpn, (vpn << 12) | 1, false);
  }
  for (uint32_t vpn = 0; vpn < 64; ++vpn) {
    EXPECT_EQ(a.Lookup(vpn).has_value(), b.Lookup(vpn).has_value()) << "vpn " << vpn;
  }
}

TEST(Tlb, SameSeedSamePolicyIsReproducible) {
  Tlb a(8, TlbPolicy::kHardwareRandom, 7);
  Tlb b(8, TlbPolicy::kHardwareRandom, 7);
  for (uint32_t vpn = 0; vpn < 200; ++vpn) {
    a.Insert(vpn, (vpn << 12) | 1, false);
    b.Insert(vpn, (vpn << 12) | 1, false);
  }
  for (uint32_t vpn = 0; vpn < 200; ++vpn) {
    EXPECT_EQ(a.Lookup(vpn).has_value(), b.Lookup(vpn).has_value()) << "vpn " << vpn;
  }
}

}  // namespace
}  // namespace hbft
