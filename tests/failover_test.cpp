// Failover tests: the primary is killed at every protocol phase, at arbitrary
// times, and around I/O operations; the backup must promote and the
// environment must see a sequence consistent with a single processor
// (operations possibly repeated within the in-flight window — the tolerance
// IO1/IO2 grant), with the workload running to the same result.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "devices/disk.hpp"
#include "guest/workloads.hpp"
#include "sim/environment_observer.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace {

WorkloadSpec TxnSpec(uint32_t records) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTxnLog;
  spec.iterations = records;
  spec.num_blocks = 8;
  return spec;
}

// Durability check against the medium itself: for a txn-log run with
// records <= blocks, block i must end holding record i ([i, i^0x5EC0,...])
// regardless of crashes, retries, or device faults along the way.
void ExpectAllRecordsDurable(const std::vector<DiskTraceEntry>& trace, uint32_t records) {
  // Reconstruct final block contents from the performed-write trace.
  std::map<uint32_t, uint64_t> last_hash;
  for (const auto& e : trace) {
    if (e.is_write && e.performed) {
      last_hash[e.block] = e.content_hash;
    }
  }
  for (uint32_t record = 0; record < records; ++record) {
    EXPECT_TRUE(last_hash.count(record)) << "record " << record << " never reached the disk";
  }
}

// Shared verification for a failover run against its bare reference.
void VerifyFailover(const WorkloadSpec& spec, const ScenarioResult& bare,
                    const ScenarioResult& ft, bool expect_promoted = true) {
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out << " deadlocked=" << ft.deadlocked;
  ASSERT_EQ(ft.exited_flag, 1u) << "guest panic " << ft.panic_code;
  if (expect_promoted) {
    EXPECT_TRUE(ft.promoted);
    EXPECT_GE(ft.promotion_time.picos(), ft.crash_time.picos());
  }
  EXPECT_EQ(ft.exit_code, bare.exit_code);
  if (spec.kind != WorkloadKind::kTime) {
    EXPECT_EQ(ft.guest_checksum, bare.guest_checksum);
  }
  ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace, ft.issuer_chain());
  EXPECT_TRUE(env.ok) << env.detail;
}

// ---------------------------------------------------------------------------
// Phase sweep: kill the primary at each protocol phase (property-style).
// ---------------------------------------------------------------------------

struct PhaseCase {
  FailPhase phase;
  uint64_t epoch;
  FailurePlan::CrashIo crash_io;
};

std::string PhaseCaseName(const testing::TestParamInfo<PhaseCase>& info) {
  std::string name = FailPhaseName(info.param.phase);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  name += "_epoch" + std::to_string(info.param.epoch);
  switch (info.param.crash_io) {
    case FailurePlan::CrashIo::kPerformed:
      name += "_ioPerformed";
      break;
    case FailurePlan::CrashIo::kNotPerformed:
      name += "_ioDropped";
      break;
    default:
      name += "_ioRandom";
      break;
  }
  return name;
}

class FailoverPhaseSweep : public testing::TestWithParam<PhaseCase> {};

TEST_P(FailoverPhaseSweep, TransparentToEnvironment) {
  const PhaseCase& c = GetParam();
  WorkloadSpec spec = TxnSpec(10);

  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);

  ScenarioResult ft = Scenario::Replicated(spec)
                          .Epoch(4096)
                          .FailAtPhase(c.phase, c.epoch, c.crash_io)
                          .Run();
  VerifyFailover(spec, bare, ft);
}

std::vector<PhaseCase> AllPhaseCases() {
  std::vector<PhaseCase> cases;
  const FailPhase boundary_phases[] = {FailPhase::kBeforeSendTme, FailPhase::kAfterSendTme,
                                       FailPhase::kAfterAckWait, FailPhase::kAfterDeliver,
                                       FailPhase::kAfterSendEnd};
  for (FailPhase phase : boundary_phases) {
    for (uint64_t epoch : {uint64_t{1}, uint64_t{3}, uint64_t{7}}) {
      cases.push_back(PhaseCase{phase, epoch, FailurePlan::CrashIo::kRandom});
    }
  }
  for (auto crash_io : {FailurePlan::CrashIo::kRandom, FailurePlan::CrashIo::kPerformed,
                        FailurePlan::CrashIo::kNotPerformed}) {
    cases.push_back(PhaseCase{FailPhase::kBeforeIoIssue, 0, crash_io});
    cases.push_back(PhaseCase{FailPhase::kAfterIoIssue, 0, crash_io});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPhases, FailoverPhaseSweep, testing::ValuesIn(AllPhaseCases()),
                         PhaseCaseName);

// ---------------------------------------------------------------------------
// Revised-protocol phase sweep.
// ---------------------------------------------------------------------------

class FailoverPhaseSweepRevised : public testing::TestWithParam<PhaseCase> {};

TEST_P(FailoverPhaseSweepRevised, TransparentToEnvironment) {
  const PhaseCase& c = GetParam();
  WorkloadSpec spec = TxnSpec(10);

  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);

  ScenarioResult ft = Scenario::Replicated(spec)
                          .Epoch(4096)
                          .Variant(ProtocolVariant::kRevised)
                          .FailAtPhase(c.phase, c.epoch, c.crash_io)
                          .Run();
  VerifyFailover(spec, bare, ft);
}

INSTANTIATE_TEST_SUITE_P(
    AllPhases, FailoverPhaseSweepRevised,
    testing::Values(PhaseCase{FailPhase::kBeforeSendTme, 3, FailurePlan::CrashIo::kRandom},
                    PhaseCase{FailPhase::kAfterSendEnd, 3, FailurePlan::CrashIo::kRandom},
                    PhaseCase{FailPhase::kBeforeIoIssue, 0, FailurePlan::CrashIo::kRandom},
                    PhaseCase{FailPhase::kAfterIoIssue, 0, FailurePlan::CrashIo::kPerformed},
                    PhaseCase{FailPhase::kAfterIoIssue, 0, FailurePlan::CrashIo::kNotPerformed}),
    PhaseCaseName);

// ---------------------------------------------------------------------------
// Time sweep: kill at many arbitrary instants across the run.
// ---------------------------------------------------------------------------

class FailoverTimeSweep : public testing::TestWithParam<int> {};

TEST_P(FailoverTimeSweep, TransparentToEnvironment) {
  WorkloadSpec spec = TxnSpec(8);
  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);

  // Spread kill times over the replicated run's duration.
  ScenarioResult probe = Scenario::Replicated(spec).Epoch(4096).Run();
  ASSERT_TRUE(probe.completed);

  int fraction = GetParam();
  ScenarioResult ft =
      Scenario::Replicated(spec)
          .Epoch(4096)
          .FailAtTime(SimTime::Picos(probe.completion_time.picos() * fraction / 100))
          .Run();
  // Very late kills can land after the workload halted; transparency then
  // holds trivially without promotion.
  VerifyFailover(spec, bare, ft, /*expect_promoted=*/ft.promoted);
}

INSTANTIATE_TEST_SUITE_P(Fractions, FailoverTimeSweep,
                         testing::Values(1, 3, 7, 11, 17, 23, 29, 37, 44, 52, 59, 68, 74, 81, 88,
                                         94, 98));

// ---------------------------------------------------------------------------
// Specific behaviours.
// ---------------------------------------------------------------------------

TEST(Failover, UncertainInterruptsRedriveOutstandingIo) {
  WorkloadSpec spec = TxnSpec(10);
  ScenarioResult bare = RunBare(spec);

  ScenarioResult ft =
      Scenario::Replicated(spec)
          .Epoch(4096)
          .FailAtPhase(FailPhase::kAfterIoIssue, 0, FailurePlan::CrashIo::kNotPerformed)
          .Run();
  ASSERT_TRUE(ft.completed);
  EXPECT_TRUE(ft.promoted);
  // The interrupted operation was outstanding at promotion: P7 synthesised
  // at least one uncertain interrupt and the driver re-drove the op.
  EXPECT_GE(ft.backup_stats().uncertain_synthesised, 1u);
  EXPECT_GE(ft.backup_stats().io_issued, 1u);
  VerifyFailover(spec, bare, ft);
}

TEST(Failover, CrashedWriteThatReachedDiskIsDuplicatedNotLost) {
  WorkloadSpec spec = TxnSpec(10);
  ScenarioResult bare = RunBare(spec);

  ScenarioResult ft =
      Scenario::Replicated(spec)
          .Epoch(4096)
          .FailAtPhase(FailPhase::kAfterIoIssue, 0, FailurePlan::CrashIo::kPerformed)
          .Run();
  ASSERT_TRUE(ft.completed);
  EXPECT_TRUE(ft.promoted);
  // The op performed by the dead primary is re-driven by the backup:
  // the same write appears twice, which the consistency model allows.
  size_t performed_writes = 0;
  for (const auto& e : ft.disk_trace) {
    if (e.is_write && e.performed) {
      ++performed_writes;
    }
  }
  size_t bare_writes = 0;
  for (const auto& e : bare.disk_trace) {
    if (e.is_write && e.performed) {
      ++bare_writes;
    }
  }
  EXPECT_GT(performed_writes, bare_writes);
  VerifyFailover(spec, bare, ft);
}

TEST(Failover, FinalDiskStateHasEveryTransaction) {
  const uint32_t records = 12;
  WorkloadSpec spec = TxnSpec(records);
  spec.num_blocks = 16;  // One block per record (records < blocks).

  ScenarioResult bare = RunBare(spec);
  ScenarioResult ft = Scenario::Replicated(spec)
                          .Epoch(4096)
                          .FailAtPhase(FailPhase::kBeforeSendTme, 4)
                          .Run();
  ASSERT_TRUE(ft.completed);
  ASSERT_TRUE(ft.promoted);
  VerifyFailover(spec, bare, ft);
  // Every transaction record must be durable despite the crash: block i
  // holds [i, i ^ 0x5EC0, ...].
  size_t write_count = 0;
  for (const auto& e : ft.disk_trace) {
    if (e.is_write && e.performed) {
      ++write_count;
    }
  }
  EXPECT_GE(write_count, records);
}

TEST(Failover, PromotionTransfersConsoleInput) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kEcho;
  // Kill between the first and second characters.
  ScenarioResult ft = Scenario::Replicated(spec)
                          .Epoch(4096)
                          .ConsoleInput("abq", SimTime::Millis(100), SimTime::Millis(120))
                          .FailAtTime(SimTime::Millis(160))
                          .Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out;
  EXPECT_TRUE(ft.promoted);
  // Both characters echoed: 'a' via the primary (or re-driven), 'b' via the
  // promoted backup.
  EXPECT_EQ(ft.guest_checksum, 2u);
  EXPECT_NE(ft.console_output.find('b'), std::string::npos);
}

TEST(Failover, CpuWorkloadCompletesAcrossFailure) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kCpu;
  spec.iterations = 4000;
  ScenarioResult bare = RunBare(spec);

  ScenarioResult ft = Scenario::Replicated(spec)
                          .Epoch(2048)
                          .FailAtPhase(FailPhase::kAfterSendTme, 50)
                          .Run();
  ASSERT_TRUE(ft.completed);
  EXPECT_TRUE(ft.promoted);
  EXPECT_EQ(ft.guest_checksum, bare.guest_checksum);
}

TEST(Failover, BackupAloneIsSlowerThanPairButCompletes) {
  // After promotion the system keeps running with hypervisor overhead but no
  // replication traffic; completion must still happen.
  WorkloadSpec spec = TxnSpec(6);
  ScenarioResult ft =
      Scenario::Replicated(spec).Epoch(4096).FailAtTime(SimTime::Millis(5)).Run();
  ASSERT_TRUE(ft.completed);
  EXPECT_TRUE(ft.promoted);
  EXPECT_EQ(ft.exited_flag, 1u);
}

// ---------------------------------------------------------------------------
// Combined stress: device-level uncertain completions (transient faults with
// driver retries) AND a primary crash in the same run. The split-coverage
// checker does not apply with retries, so the assertions are durability and
// application-result equivalence.
// ---------------------------------------------------------------------------

class FailoverWithDeviceFaults : public testing::TestWithParam<int> {};

TEST_P(FailoverWithDeviceFaults, RecordsDurableDespiteEverything) {
  const uint32_t records = 8;
  WorkloadSpec spec = TxnSpec(records);
  spec.num_blocks = 8;

  DiskFaultPlan faults;
  faults.uncertain_probability = 0.25;
  faults.performed_when_uncertain = 0.5;
  ScenarioResult ft =
      Scenario::Replicated(spec)
          .Epoch(4096)
          .Seed(static_cast<uint64_t>(GetParam()) * 101 + 7)
          .DiskFaults(faults)
          .FailAtPhase(FailPhase::kAfterIoIssue, 0, FailurePlan::CrashIo::kRandom)
          .Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out << " deadlocked=" << ft.deadlocked;
  ASSERT_EQ(ft.exited_flag, 1u) << "guest panic " << ft.panic_code;
  EXPECT_TRUE(ft.promoted);
  EXPECT_EQ(ft.guest_checksum, records);  // Every transaction committed.
  ExpectAllRecordsDurable(ft.disk_trace, records);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailoverWithDeviceFaults, testing::Values(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------------
// Backup failure: the other half of 1-fault-tolerance. The primary must
// detect the missing acknowledgments, stop replicating, and finish the
// workload as an unreplicated machine.
// ---------------------------------------------------------------------------

class BackupFailureSweep : public testing::TestWithParam<int> {};

TEST_P(BackupFailureSweep, PrimaryContinuesSolo) {
  WorkloadSpec spec = TxnSpec(8);
  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);

  ScenarioResult probe = Scenario::Replicated(spec).Epoch(4096).Run();
  ASSERT_TRUE(probe.completed);

  ScenarioResult ft =
      Scenario::Replicated(spec)
          .Epoch(4096)
          .FailAtTime(SimTime::Picos(probe.completion_time.picos() * GetParam() / 100),
                      FailurePlan::Target::kBackup)
          .Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out << " deadlocked=" << ft.deadlocked;
  EXPECT_FALSE(ft.promoted);
  EXPECT_EQ(ft.exited_flag, 1u);
  EXPECT_EQ(ft.guest_checksum, bare.guest_checksum);
  EXPECT_EQ(ft.console_output, bare.console_output);
  // The environment sees exactly the reference sequence, all from the primary.
  ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace, ft.issuer_chain());
  EXPECT_TRUE(env.ok) << env.detail;
}

INSTANTIATE_TEST_SUITE_P(Fractions, BackupFailureSweep, testing::Values(5, 30, 60, 90));

TEST(BackupFailure, BothProtocolVariantsSurvive) {
  WorkloadSpec spec = TxnSpec(6);
  ScenarioResult bare = RunBare(spec);
  for (ProtocolVariant variant : {ProtocolVariant::kOriginal, ProtocolVariant::kRevised}) {
    ScenarioResult ft = Scenario::Replicated(spec)
                            .Epoch(2048)
                            .Variant(variant)
                            .FailAtTime(SimTime::Millis(30), FailurePlan::Target::kBackup)
                            .Run();
    ASSERT_TRUE(ft.completed) << "variant " << static_cast<int>(variant);
    EXPECT_EQ(ft.guest_checksum, bare.guest_checksum);
  }
}

TEST(BackupFailure, SoloPrimaryIsFasterThanReplicatedPair) {
  // Once replication stops, boundary ack waits disappear: killing the backup
  // early must speed up the rest of the run.
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kCpu;
  spec.iterations = 4000;
  ScenarioResult paired = Scenario::Replicated(spec).Epoch(2048).Run();
  ScenarioResult solo = Scenario::Replicated(spec)
                            .Epoch(2048)
                            .FailAtTime(SimTime::Millis(10), FailurePlan::Target::kBackup)
                            .Run();
  ASSERT_TRUE(paired.completed);
  ASSERT_TRUE(solo.completed);
  EXPECT_LT(solo.completion_time.picos(), paired.completion_time.picos());
}

// ---------------------------------------------------------------------------
// Mid-epoch promotion: the backup stalls awaiting a forwarded environment
// value that the dead primary never sent. The missing value proves the
// primary died before executing that instruction, so the backup may promote
// mid-epoch and serve the environment locally (DESIGN.md, protocol notes).
// ---------------------------------------------------------------------------

class TodStallPromotionSweep : public testing::TestWithParam<int> {};

TEST_P(TodStallPromotionSweep, PromotesWhileStalledOnEnvironmentValue) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTime;  // Dense TOD reads: stalls are likely.
  spec.iterations = 400;
  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);

  // Long epochs: more mid-epoch time.
  ScenarioResult probe = Scenario::Replicated(spec).Epoch(16384).Run();
  ASSERT_TRUE(probe.completed);

  ScenarioResult ft =
      Scenario::Replicated(spec)
          .Epoch(16384)
          .FailAtTime(SimTime::Picos(probe.completion_time.picos() * GetParam() / 100))
          .Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out << " deadlocked=" << ft.deadlocked;
  ASSERT_EQ(ft.exited_flag, 1u) << "panic " << ft.panic_code;
  // Exit code 0 == the time sequence stayed monotone across the handover
  // from forwarded values to local clock reads.
  EXPECT_EQ(ft.exit_code, 0u);
  if (ft.promoted) {
    EXPECT_GE(ft.promotion_time.picos(), ft.crash_time.picos());
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, TodStallPromotionSweep, testing::Values(20, 45, 70));

TEST(Failover, DetectionWaitsForChannelDrain) {
  WorkloadSpec spec = TxnSpec(6);
  ScenarioResult ft = Scenario::Replicated(spec)
                          .Epoch(4096)
                          .FailAtPhase(FailPhase::kAfterSendEnd, 2)
                          .Run();
  ASSERT_TRUE(ft.completed);
  ASSERT_TRUE(ft.promoted);
  // Promotion cannot precede crash + detection timeout.
  EXPECT_GE(ft.promotion_time.picos(),
            ft.crash_time.picos() + CostModel{}.failure_detect_timeout.picos());
}

}  // namespace
}  // namespace hbft
