// Device-registry tests: registry dispatch (by id / IRQ / MMIO window), the
// NIC as a first-class protocol citizen (TX suppressed on backups, bounded
// duplicated-packet window at handover), and P7's uncertain-interrupt
// synthesis covering every registered device across failover.
#include <gtest/gtest.h>

#include "devices/console.hpp"
#include "devices/device_set.hpp"
#include "devices/disk.hpp"
#include "devices/nic.hpp"
#include "guest/workloads.hpp"
#include "sim/environment_observer.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace {

// ---------------------------------------------------------------------------
// Registry dispatch.
// ---------------------------------------------------------------------------

TEST(DeviceRegistry, DispatchesByIdIrqAndMmioWindow) {
  DeviceSetConfig config;
  config.with_nic = true;
  DeviceSet set(config, CostModel{}, /*seed=*/1);
  std::unique_ptr<DeviceRegistry> registry = set.BuildRegistry();

  ASSERT_EQ(registry->devices().size(), 3u);
  for (DeviceId id : {DeviceId::kDisk, DeviceId::kConsole, DeviceId::kNic}) {
    VirtualDevice* device = registry->by_id(id);
    ASSERT_NE(device, nullptr) << DeviceIdName(id);
    EXPECT_EQ(device->device_id(), id);
    // Every IRQ line the device owns routes back to it.
    for (uint32_t bit = 0; bit < 32; ++bit) {
      uint32_t line = 1u << bit;
      if ((device->irq_mask() & line) != 0) {
        EXPECT_EQ(registry->by_irq(line), device) << DeviceIdName(id) << " line " << line;
      }
    }
    // Every address of the MMIO page routes back to it.
    EXPECT_EQ(registry->by_mmio(device->mmio_base()), device);
    EXPECT_EQ(registry->by_mmio(device->mmio_base() + kPageBytes - 4), device);
  }

  EXPECT_EQ(registry->by_mmio(kNicMmioBase + kPageBytes), nullptr);
  EXPECT_EQ(registry->by_irq(kIrqTimer), nullptr);  // The timer is not a device.
  EXPECT_EQ(registry->by_id(DeviceId::kNone), nullptr);

  // Backends are shared, not per-registry.
  std::unique_ptr<DeviceRegistry> second = set.BuildRegistry();
  EXPECT_EQ(second->by_id(DeviceId::kDisk)->backend(), registry->by_id(DeviceId::kDisk)->backend());
}

TEST(DeviceRegistry, DefaultRegistryIsTheLegacyPair) {
  std::unique_ptr<DeviceRegistry> registry = CreateDefaultRegistry();
  EXPECT_NE(registry->by_id(DeviceId::kDisk), nullptr);
  EXPECT_NE(registry->by_id(DeviceId::kConsole), nullptr);
  EXPECT_EQ(registry->by_id(DeviceId::kNic), nullptr);
}

TEST(DeviceRegistry, UncertainCompletionsAreDeviceShaped) {
  DeviceSetConfig config;
  config.with_nic = true;
  DeviceSet set(config, CostModel{}, 1);
  std::unique_ptr<DeviceRegistry> registry = set.BuildRegistry();

  IoDescriptor io;
  io.guest_op_seq = 42;
  struct Case {
    DeviceId device;
    uint32_t opcode;
    uint32_t expected_irq;
  };
  for (const Case& c : {Case{DeviceId::kDisk, kDiskOpWrite, kIrqDisk},
                        Case{DeviceId::kConsole, kConsoleOpTx, kIrqConsoleTx},
                        Case{DeviceId::kNic, kNicOpTx, kIrqNicTx}}) {
    io.device_id = c.device;
    io.opcode = c.opcode;
    IoCompletionPayload payload = registry->by_id(c.device)->MakeUncertainCompletion(io);
    EXPECT_EQ(payload.device_irq, c.expected_irq) << DeviceIdName(c.device);
    EXPECT_EQ(payload.guest_op_seq, 42u);
    EXPECT_EQ(payload.result_code, 1u) << "uncertain result code";
  }
}

// ---------------------------------------------------------------------------
// Console/NIC backends: fault plan symmetry with the disk (IO2).
// ---------------------------------------------------------------------------

TEST(ConsoleBackend, FaultPlanMakesTxUncertain) {
  Console console(7);
  FaultPlan plan;
  plan.uncertain_probability = 1.0;
  plan.performed_when_uncertain = 1.0;
  console.set_fault_plan(plan);

  IoDescriptor io;
  io.device_id = DeviceId::kConsole;
  io.opcode = kConsoleOpTx;
  io.guest_op_seq = 5;
  io.payload = {'x'};
  auto issued = console.Issue(io, /*issuer=*/1);
  IoCompletionPayload payload = console.Complete(issued.op_id, io);
  EXPECT_EQ(payload.result_code, kConsoleResultUncertain);
  EXPECT_EQ(console.output(), "x");  // Performed: latched despite uncertainty.

  // performed_when_uncertain = 0: the character never reaches the terminal.
  plan.performed_when_uncertain = 0.0;
  console.set_fault_plan(plan);
  auto issued2 = console.Issue(io, 1);
  IoCompletionPayload payload2 = console.Complete(issued2.op_id, io);
  EXPECT_EQ(payload2.result_code, kConsoleResultUncertain);
  EXPECT_EQ(console.output(), "x");  // Unchanged.
}

TEST(NicBackend, TracesTransmittedPackets) {
  Nic nic(3);
  IoDescriptor io;
  io.device_id = DeviceId::kNic;
  io.opcode = kNicOpTx;
  io.guest_op_seq = 9;
  io.payload = {1, 2, 3, 4};
  auto issued = nic.Issue(io, /*issuer=*/2);
  IoCompletionPayload payload = nic.Complete(issued.op_id, io);
  EXPECT_EQ(payload.device_irq, static_cast<uint32_t>(kIrqNicTx));
  EXPECT_EQ(payload.result_code, kNicResultOk);
  ASSERT_EQ(nic.trace().size(), 1u);
  EXPECT_EQ(nic.trace()[0].bytes, io.payload);
  EXPECT_EQ(nic.trace()[0].issuer, 2);
  ASSERT_EQ(nic.EnvTrace().size(), 1u);
  EXPECT_EQ(nic.EnvTrace()[0].device_id, DeviceId::kNic);
}

// ---------------------------------------------------------------------------
// Replicated NIC scenarios.
// ---------------------------------------------------------------------------

// Builds the three-device workload: per packet, the guest logs to disk,
// prints a progress digit, and echoes the packet over the NIC.
Scenario NetScenario(uint32_t packets) {
  Scenario scenario = Scenario::Replicated(WorkloadSpec::NetEcho(packets));
  for (uint32_t i = 0; i < packets; ++i) {
    std::vector<uint8_t> payload = {static_cast<uint8_t>('A' + i), 0x10, 0x20,
                                    static_cast<uint8_t>(i)};
    scenario.InjectPacket(std::move(payload));
  }
  return scenario;
}

TEST(NicReplication, TxSuppressedOnBackups) {
  ScenarioResult ft = NetScenario(3).Epoch(4096).Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out << " deadlocked=" << ft.deadlocked;
  ASSERT_EQ(ft.exited_flag, 1u) << "guest panic " << ft.panic_code;
  EXPECT_FALSE(ft.promoted);
  // The backup initiated (and suppressed) NIC/disk/console I/O but never
  // touched a backend.
  EXPECT_GT(ft.backup_stats().io_suppressed, 0u);
  EXPECT_EQ(ft.backup_stats().io_issued, 0u);
  ASSERT_EQ(ft.nic_trace.size(), 3u);
  for (const NicTraceEntry& e : ft.nic_trace) {
    EXPECT_EQ(e.issuer, ft.primary_id);
  }
}

TEST(NicReplication, EchoMatchesBareReference) {
  Scenario scenario = NetScenario(3).Epoch(4096);
  ScenarioResult bare = scenario.AsBare().Run();
  ScenarioResult ft = scenario.Run();
  ASSERT_TRUE(bare.completed);
  ASSERT_TRUE(ft.completed);
  EXPECT_EQ(ft.guest_checksum, bare.guest_checksum);
  ASSERT_EQ(ft.nic_trace.size(), bare.nic_trace.size());
  for (size_t i = 0; i < ft.nic_trace.size(); ++i) {
    EXPECT_EQ(ft.nic_trace[i].bytes, bare.nic_trace[i].bytes) << "packet " << i;
  }
  ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace, ft.issuer_chain());
  EXPECT_TRUE(env.ok) << env.detail;
}

// P7 must cover every registered device: kill the active replica while an
// operation of each device class is in flight; the promoted backup
// synthesises the uncertain interrupt, the driver re-drives, and the
// generalized environment checks stay green.
struct P7Case {
  const char* name;
  FailurePlan::CrashIo crash_io;
};

class P7AllDevices : public testing::TestWithParam<int> {};

TEST_P(P7AllDevices, UncertainInterruptsCoverEveryDevice) {
  // The three-device workload interleaves NIC RX/TX, disk writes, and
  // console output; killing at successive I/O initiations lands the crash on
  // different devices' outstanding operations across the sweep.
  const uint64_t io_seq = static_cast<uint64_t>(GetParam());
  Scenario scenario = NetScenario(4).Epoch(4096);
  ScenarioResult bare = scenario.AsBare().Run();
  ASSERT_TRUE(bare.completed);

  FailurePlan plan;
  plan.kind = FailurePlan::Kind::kAtPhase;
  plan.phase = FailPhase::kAfterIoIssue;
  plan.io_seq = io_seq;
  plan.crash_io = FailurePlan::CrashIo::kNotPerformed;
  ScenarioResult ft = scenario.FailAt(plan).Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out << " deadlocked=" << ft.deadlocked;
  ASSERT_EQ(ft.exited_flag, 1u) << "guest panic " << ft.panic_code;
  ASSERT_TRUE(ft.promoted);
  EXPECT_GE(ft.backup_stats().uncertain_synthesised, 1u);
  EXPECT_GE(ft.backup_stats().io_issued, 1u);
  EXPECT_EQ(ft.guest_checksum, bare.guest_checksum);
  ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace, ft.issuer_chain());
  EXPECT_TRUE(env.ok) << env.detail;
}

// io_seq values sweep the first packets' NIC TX, disk write, and console TX
// initiations (the exact device at each seq is an implementation detail; the
// sweep guarantees all three classes get hit).
INSTANTIATE_TEST_SUITE_P(IoSeqSweep, P7AllDevices, testing::Values(1, 2, 3, 4, 5, 6, 7));

TEST(NicReplication, DuplicatedPacketWindowBoundedAtHandover) {
  // Kill with a NIC TX in flight that DID reach the wire: the promoted
  // backup re-drives it, so the packet appears exactly once more (the
  // console-style duplicated-output window), and the overlap chain stays
  // consistent with the bare reference.
  Scenario scenario = NetScenario(3).Epoch(4096);
  ScenarioResult bare = scenario.AsBare().Run();
  ASSERT_TRUE(bare.completed);

  ScenarioResult ft =
      scenario.FailAtPhase(FailPhase::kAfterIoIssue, 0, FailurePlan::CrashIo::kPerformed).Run();
  ASSERT_TRUE(ft.completed);
  ASSERT_TRUE(ft.promoted);
  ASSERT_EQ(ft.exited_flag, 1u);

  // At most one extra copy per re-driven operation: the window is bounded by
  // what was in flight (one synchronous op at a time in MiniOS).
  EXPECT_GE(ft.nic_trace.size(), bare.nic_trace.size());
  EXPECT_LE(ft.nic_trace.size(),
            bare.nic_trace.size() + ft.backup_stats().uncertain_synthesised);
  ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace, ft.issuer_chain());
  EXPECT_TRUE(env.ok) << env.detail;
}

TEST(NicReplication, CascadingFailoverAcrossThreeDevices) {
  // The acceptance scenario: disk+console+NIC, two successive active-replica
  // kills, generalized environment checks green against the bare reference.
  Scenario scenario = NetScenario(4).Backups(2).Epoch(4096);
  ScenarioResult bare = scenario.AsBare().Run();
  ASSERT_TRUE(bare.completed);

  ScenarioResult ft = scenario.FailAtTime(SimTime::Millis(6))
                          .FailAtPhase(FailPhase::kAfterIoIssue, 0,
                                       FailurePlan::CrashIo::kNotPerformed)
                          .Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out << " deadlocked=" << ft.deadlocked;
  ASSERT_EQ(ft.exited_flag, 1u) << "guest panic " << ft.panic_code;
  ASSERT_EQ(ft.nodes.size(), 3u);
  EXPECT_TRUE(ft.nodes[1].promoted);
  EXPECT_TRUE(ft.nodes[2].promoted);
  EXPECT_EQ(ft.guest_checksum, bare.guest_checksum);
  ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace, ft.issuer_chain());
  EXPECT_TRUE(env.ok) << env.detail;
  // The final survivor drove NIC output too.
  bool backup2_sent_packet = false;
  for (const NicTraceEntry& e : ft.nic_trace) {
    if (e.issuer == ft.nodes[2].id) {
      backup2_sent_packet = true;
    }
  }
  EXPECT_TRUE(backup2_sent_packet);
}

TEST(NicReplication, RetryAfterUncertainOnLegacyDevices) {
  // The satellite symmetry check: console TX completions can now come back
  // uncertain like the disk's, and the guest driver retransmits — visible as
  // duplicated console output that the environment tolerates.
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTxnLog;
  spec.iterations = 8;
  spec.num_blocks = 8;
  FaultPlan console_faults;
  console_faults.uncertain_probability = 0.4;
  console_faults.performed_when_uncertain = 0.5;
  ScenarioResult ft = Scenario::Replicated(spec)
                          .Epoch(4096)
                          .ConsoleFaults(console_faults)
                          .Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out;
  ASSERT_EQ(ft.exited_flag, 1u) << "guest panic " << ft.panic_code;
  // 8 digits + newline, minus never-performed attempts, plus retries: with
  // retry-until-ok semantics every logical char eventually appears.
  EXPECT_GE(ft.console_output.size(), 9u);
}

}  // namespace
}  // namespace hbft
