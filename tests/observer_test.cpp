// Environment-observer tests: the consistency checker itself must accept
// exactly the sequences a single processor could produce and reject anomalies.
#include <gtest/gtest.h>

#include "sim/environment_observer.hpp"

namespace hbft {
namespace {

DiskTraceEntry Write(uint32_t block, uint64_t hash, int issuer, bool performed = true) {
  DiskTraceEntry e;
  e.is_write = true;
  e.block = block;
  e.content_hash = hash;
  e.issuer = issuer;
  e.performed = performed;
  return e;
}

DiskTraceEntry Read(uint32_t block, int issuer, bool performed = true) {
  DiskTraceEntry e;
  e.is_write = false;
  e.block = block;
  e.issuer = issuer;
  e.performed = performed;
  return e;
}

constexpr int kBare = 0;
constexpr int kPrimary = 1;
constexpr int kBackup = 2;

TEST(DiskConsistency, ExactMatchWithoutFailover) {
  std::vector<DiskTraceEntry> ref = {Write(1, 11, kBare), Read(2, kBare), Write(3, 33, kBare)};
  std::vector<DiskTraceEntry> obs = {Write(1, 11, kPrimary), Read(2, kPrimary),
                                     Write(3, 33, kPrimary)};
  auto result = CheckDiskConsistency(ref, obs, kPrimary, kBackup);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(DiskConsistency, RejectsDivergentContent) {
  std::vector<DiskTraceEntry> ref = {Write(1, 11, kBare)};
  std::vector<DiskTraceEntry> obs = {Write(1, 99, kPrimary)};
  EXPECT_FALSE(CheckDiskConsistency(ref, obs, kPrimary, kBackup).ok);
}

TEST(DiskConsistency, RejectsMissingCoverageWithoutFailover) {
  std::vector<DiskTraceEntry> ref = {Write(1, 11, kBare), Write(2, 22, kBare)};
  std::vector<DiskTraceEntry> obs = {Write(1, 11, kPrimary)};
  EXPECT_FALSE(CheckDiskConsistency(ref, obs, kPrimary, kBackup).ok);
}

TEST(DiskConsistency, AcceptsFailoverOverlapWindow) {
  std::vector<DiskTraceEntry> ref = {Write(1, 11, kBare), Write(2, 22, kBare),
                                     Write(3, 33, kBare)};
  // Primary did ops 0..1, backup re-drove op 1 then continued.
  std::vector<DiskTraceEntry> obs = {Write(1, 11, kPrimary), Write(2, 22, kPrimary),
                                     Write(2, 22, kBackup), Write(3, 33, kBackup)};
  auto result = CheckDiskConsistency(ref, obs, kPrimary, kBackup);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(DiskConsistency, AcceptsFailoverWithoutOverlap) {
  std::vector<DiskTraceEntry> ref = {Write(1, 11, kBare), Write(2, 22, kBare)};
  std::vector<DiskTraceEntry> obs = {Write(1, 11, kPrimary), Write(2, 22, kBackup)};
  auto result = CheckDiskConsistency(ref, obs, kPrimary, kBackup);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(DiskConsistency, RejectsGapInCoverage) {
  std::vector<DiskTraceEntry> ref = {Write(1, 11, kBare), Write(2, 22, kBare),
                                     Write(3, 33, kBare)};
  // Primary stopped after op 0, backup resumed at op 2: op 1 lost.
  std::vector<DiskTraceEntry> obs = {Write(1, 11, kPrimary), Write(3, 33, kBackup)};
  EXPECT_FALSE(CheckDiskConsistency(ref, obs, kPrimary, kBackup).ok);
}

TEST(DiskConsistency, RejectsBackupOutputBeforePrimaryFinished) {
  std::vector<DiskTraceEntry> ref = {Write(1, 11, kBare), Write(2, 22, kBare)};
  std::vector<DiskTraceEntry> obs = {Write(1, 11, kBackup), Write(2, 22, kPrimary)};
  EXPECT_FALSE(CheckDiskConsistency(ref, obs, kPrimary, kBackup).ok);
}

TEST(DiskConsistency, IgnoresUnperformedOperations) {
  std::vector<DiskTraceEntry> ref = {Write(1, 11, kBare)};
  std::vector<DiskTraceEntry> obs = {Write(1, 11, kPrimary, /*performed=*/false),
                                     Write(1, 11, kPrimary)};
  auto result = CheckDiskConsistency(ref, obs, kPrimary, kBackup);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(DiskConsistency, RejectsExtraBackupOps) {
  std::vector<DiskTraceEntry> ref = {Write(1, 11, kBare)};
  std::vector<DiskTraceEntry> obs = {Write(1, 11, kPrimary), Write(1, 11, kBackup),
                                     Write(9, 99, kBackup)};
  EXPECT_FALSE(CheckDiskConsistency(ref, obs, kPrimary, kBackup).ok);
}

ConsoleTraceEntry Ch(char c, int issuer) { return ConsoleTraceEntry{c, issuer}; }

TEST(ConsoleConsistency, AcceptsPrefixSuffixOverlap) {
  std::vector<ConsoleTraceEntry> ref = {Ch('a', kBare), Ch('b', kBare), Ch('c', kBare)};
  std::vector<ConsoleTraceEntry> obs = {Ch('a', kPrimary), Ch('b', kPrimary), Ch('b', kBackup),
                                        Ch('c', kBackup)};
  auto result = CheckConsoleConsistency(ref, obs, kPrimary, kBackup);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(ConsoleConsistency, RejectsWrongCharacters) {
  std::vector<ConsoleTraceEntry> ref = {Ch('a', kBare), Ch('b', kBare)};
  std::vector<ConsoleTraceEntry> obs = {Ch('a', kPrimary), Ch('x', kPrimary)};
  EXPECT_FALSE(CheckConsoleConsistency(ref, obs, kPrimary, kBackup).ok);
}

TEST(ConsoleConsistency, RejectsDroppedOutput) {
  std::vector<ConsoleTraceEntry> ref = {Ch('a', kBare), Ch('b', kBare), Ch('c', kBare)};
  std::vector<ConsoleTraceEntry> obs = {Ch('a', kPrimary), Ch('c', kBackup)};
  EXPECT_FALSE(CheckConsoleConsistency(ref, obs, kPrimary, kBackup).ok);
}

}  // namespace
}  // namespace hbft
