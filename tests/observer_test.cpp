// Environment-observer tests: the consistency checker itself must accept
// exactly the sequences a single processor could produce and reject
// anomalies — uniformly across device-tagged traces (disk, console, NIC),
// with per-device output-commit windows.
#include <gtest/gtest.h>

#include "common/hash.hpp"
#include "sim/environment_observer.hpp"

namespace hbft {
namespace {

EnvTraceEntry Entry(DeviceId device, uint64_t op_hash, int issuer, bool performed = true) {
  EnvTraceEntry e;
  e.device_id = device;
  e.op_hash = op_hash;
  e.issuer = issuer;
  e.performed = performed;
  e.label = std::to_string(op_hash);
  return e;
}

EnvTraceEntry Write(uint32_t block, uint64_t hash, int issuer, bool performed = true) {
  Fnv1aHasher hasher;
  hasher.UpdateU32(1);
  hasher.UpdateU32(block);
  hasher.UpdateU64(hash);
  return Entry(DeviceId::kDisk, hasher.digest(), issuer, performed);
}

EnvTraceEntry Read(uint32_t block, int issuer, bool performed = true) {
  Fnv1aHasher hasher;
  hasher.UpdateU32(0);
  hasher.UpdateU32(block);
  return Entry(DeviceId::kDisk, hasher.digest(), issuer, performed);
}

EnvTraceEntry Ch(char c, int issuer) {
  return Entry(DeviceId::kConsole, static_cast<uint64_t>(static_cast<uint8_t>(c)), issuer);
}

EnvTraceEntry Pkt(uint64_t hash, int issuer) { return Entry(DeviceId::kNic, hash, issuer); }

constexpr int kBare = 0;
constexpr int kPrimary = 1;
constexpr int kBackup = 2;

TEST(EnvConsistency, ExactMatchWithoutFailover) {
  std::vector<EnvTraceEntry> ref = {Write(1, 11, kBare), Read(2, kBare), Write(3, 33, kBare)};
  std::vector<EnvTraceEntry> obs = {Write(1, 11, kPrimary), Read(2, kPrimary),
                                    Write(3, 33, kPrimary)};
  auto result = CheckEnvConsistency(ref, obs, kPrimary, kBackup);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(EnvConsistency, RejectsDivergentContent) {
  std::vector<EnvTraceEntry> ref = {Write(1, 11, kBare)};
  std::vector<EnvTraceEntry> obs = {Write(1, 99, kPrimary)};
  EXPECT_FALSE(CheckEnvConsistency(ref, obs, kPrimary, kBackup).ok);
}

TEST(EnvConsistency, RejectsMissingCoverageWithoutFailover) {
  std::vector<EnvTraceEntry> ref = {Write(1, 11, kBare), Write(2, 22, kBare)};
  std::vector<EnvTraceEntry> obs = {Write(1, 11, kPrimary)};
  EXPECT_FALSE(CheckEnvConsistency(ref, obs, kPrimary, kBackup).ok);
}

TEST(EnvConsistency, AcceptsFailoverOverlapWindow) {
  std::vector<EnvTraceEntry> ref = {Write(1, 11, kBare), Write(2, 22, kBare),
                                    Write(3, 33, kBare)};
  // Primary did ops 0..1, backup re-drove op 1 then continued.
  std::vector<EnvTraceEntry> obs = {Write(1, 11, kPrimary), Write(2, 22, kPrimary),
                                    Write(2, 22, kBackup), Write(3, 33, kBackup)};
  auto result = CheckEnvConsistency(ref, obs, kPrimary, kBackup);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(EnvConsistency, AcceptsFailoverWithoutOverlap) {
  std::vector<EnvTraceEntry> ref = {Write(1, 11, kBare), Write(2, 22, kBare)};
  std::vector<EnvTraceEntry> obs = {Write(1, 11, kPrimary), Write(2, 22, kBackup)};
  auto result = CheckEnvConsistency(ref, obs, kPrimary, kBackup);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(EnvConsistency, RejectsGapInCoverage) {
  std::vector<EnvTraceEntry> ref = {Write(1, 11, kBare), Write(2, 22, kBare),
                                    Write(3, 33, kBare)};
  // Primary stopped after op 0, backup resumed at op 2: op 1 lost.
  std::vector<EnvTraceEntry> obs = {Write(1, 11, kPrimary), Write(3, 33, kBackup)};
  EXPECT_FALSE(CheckEnvConsistency(ref, obs, kPrimary, kBackup).ok);
}

TEST(EnvConsistency, RejectsBackupOutputBeforePrimaryFinished) {
  std::vector<EnvTraceEntry> ref = {Write(1, 11, kBare), Write(2, 22, kBare)};
  std::vector<EnvTraceEntry> obs = {Write(1, 11, kBackup), Write(2, 22, kPrimary)};
  EXPECT_FALSE(CheckEnvConsistency(ref, obs, kPrimary, kBackup).ok);
}

TEST(EnvConsistency, IgnoresUnperformedOperations) {
  std::vector<EnvTraceEntry> ref = {Write(1, 11, kBare)};
  std::vector<EnvTraceEntry> obs = {Write(1, 11, kPrimary, /*performed=*/false),
                                    Write(1, 11, kPrimary)};
  auto result = CheckEnvConsistency(ref, obs, kPrimary, kBackup);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(EnvConsistency, RejectsExtraBackupOps) {
  std::vector<EnvTraceEntry> ref = {Write(1, 11, kBare)};
  std::vector<EnvTraceEntry> obs = {Write(1, 11, kPrimary), Write(1, 11, kBackup),
                                    Write(9, 99, kBackup)};
  EXPECT_FALSE(CheckEnvConsistency(ref, obs, kPrimary, kBackup).ok);
}

TEST(EnvConsistency, ConsoleAcceptsPrefixSuffixOverlap) {
  std::vector<EnvTraceEntry> ref = {Ch('a', kBare), Ch('b', kBare), Ch('c', kBare)};
  std::vector<EnvTraceEntry> obs = {Ch('a', kPrimary), Ch('b', kPrimary), Ch('b', kBackup),
                                    Ch('c', kBackup)};
  auto result = CheckEnvConsistency(ref, obs, kPrimary, kBackup);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(EnvConsistency, ConsoleRejectsWrongCharacters) {
  std::vector<EnvTraceEntry> ref = {Ch('a', kBare), Ch('b', kBare)};
  std::vector<EnvTraceEntry> obs = {Ch('a', kPrimary), Ch('x', kPrimary)};
  EXPECT_FALSE(CheckEnvConsistency(ref, obs, kPrimary, kBackup).ok);
}

TEST(EnvConsistency, ConsoleRejectsDroppedOutput) {
  std::vector<EnvTraceEntry> ref = {Ch('a', kBare), Ch('b', kBare), Ch('c', kBare)};
  std::vector<EnvTraceEntry> obs = {Ch('a', kPrimary), Ch('c', kBackup)};
  EXPECT_FALSE(CheckEnvConsistency(ref, obs, kPrimary, kBackup).ok);
}

// Devices are checked independently: each gets its own window structure, so
// a duplicated packet at handover and an exact console match coexist — but a
// violation on ANY device fails the whole check.
TEST(EnvConsistency, DevicesCheckedIndependently) {
  std::vector<EnvTraceEntry> ref = {Pkt(100, kBare), Ch('a', kBare), Pkt(200, kBare),
                                    Write(1, 11, kBare)};
  std::vector<EnvTraceEntry> obs = {
      Pkt(100, kPrimary), Ch('a', kPrimary),  Pkt(200, kPrimary),
      Pkt(200, kBackup),  Write(1, 11, kBackup),  // NIC overlap window; disk handed over.
  };
  auto result = CheckEnvConsistency(ref, obs, kPrimary, kBackup);
  EXPECT_TRUE(result.ok) << result.detail;

  // A lost packet fails even with every other device consistent.
  std::vector<EnvTraceEntry> lost = {Pkt(100, kPrimary), Ch('a', kPrimary),
                                     Write(1, 11, kPrimary)};
  EXPECT_FALSE(CheckEnvConsistency(ref, lost, kPrimary, kBackup).ok);
}

TEST(EnvConsistency, DeviceAbsentFromBothIsVacuouslyConsistent) {
  std::vector<EnvTraceEntry> ref = {Ch('a', kBare)};
  std::vector<EnvTraceEntry> obs = {Ch('a', kPrimary)};
  auto result = CheckEnvConsistency(ref, obs, kPrimary, kBackup);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(EnvConsistency, RejectsUnknownIssuer) {
  std::vector<EnvTraceEntry> ref = {Ch('a', kBare)};
  std::vector<EnvTraceEntry> obs = {Ch('a', 77)};
  auto result = CheckEnvConsistency(ref, obs, kPrimary, kBackup);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("unknown issuer"), std::string::npos);
}

}  // namespace
}  // namespace hbft
