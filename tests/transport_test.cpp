// Transport-subsystem tests: the lossy-link model (drop/duplicate/reorder +
// bounded sender queue), go-back-N retransmission over the protocol's own
// cumulative acks, ack batching, epoch pipelining, and the per-channel
// counters — plus the seed matrix that CI runs so transport regressions fail
// fast under both the ideal and the lossy wire.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/channel.hpp"
#include "net/link_faults.hpp"
#include "sim/environment_observer.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace {

Message Sample(MsgType type) {
  Message msg;
  msg.type = type;
  msg.epoch = 7;
  return msg;
}

LinkFaults Lossy(double p) { return LinkFaults::SymmetricLoss(p); }

WorkloadSpec TxnSpec(uint32_t records) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTxnLog;
  spec.iterations = records;
  spec.num_blocks = 16;
  return spec;
}

WorkloadSpec NetEchoSpec(uint32_t packets) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kNetEcho;
  spec.iterations = packets;
  return spec;
}

void InjectEchoPackets(Scenario* scenario, uint32_t packets) {
  for (uint32_t i = 0; i < packets; ++i) {
    std::vector<uint8_t> payload = {'p', 'k', 't', static_cast<uint8_t>('0' + i)};
    scenario->InjectPacket(std::move(payload));
  }
}

// ---------------------------------------------------------------------------
// Channel-level: the wire faults and the go-back-N machinery.
// ---------------------------------------------------------------------------

TEST(LossyChannel, DropsAreCountedAndRecoveredByRetransmission) {
  LinkFaults faults;
  faults.drop_probability = 0.5;
  Channel channel(LinkModel::Ethernet10(), ChannelMode::kOrdered, faults, /*seed=*/3);
  const int kMessages = 20;
  SimTime t = SimTime::Zero();
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(channel.Send(Sample(MsgType::kEpochEnd), t).has_value());
  }
  EXPECT_GT(channel.counters().link_drops, 0u);

  // Drive sender timeouts and receiver polls until the stream heals. Each
  // round acks what arrived in order, as the protocol would.
  uint64_t delivered = 0;
  for (int round = 0; round < 200 && delivered < kMessages; ++round) {
    t += faults.retransmit_timeout;
    channel.MaybeRetransmit(t);
    while (auto msg = channel.Receive(t)) {
      EXPECT_EQ(msg->seq, delivered);  // Strictly in order, no gaps.
      ++delivered;
    }
    channel.OnCumulativeAck(delivered, t);
  }
  EXPECT_EQ(delivered, static_cast<uint64_t>(kMessages));
  EXPECT_GT(channel.counters().retransmits, 0u);
  EXPECT_GT(channel.messages_sent(), channel.messages_enqueued());
  EXPECT_FALSE(channel.NeedsRetransmitTimer());  // Window fully acked.
}

TEST(LossyChannel, PostGapFramesAreDiscardedAndHealedByRetransmit) {
  // Find a seed where the first of two messages is reorder-delayed past the
  // second: the receiver must discard the overtaking frame (go-back-N keeps
  // no out-of-order buffer) and recover it via retransmission, still
  // delivering strictly in sequence.
  bool saw_gap = false;
  for (uint64_t seed = 0; seed < 64 && !saw_gap; ++seed) {
    LinkFaults faults;
    faults.reorder_probability = 0.5;
    Channel channel(LinkModel::Ethernet10(), ChannelMode::kOrdered, faults, seed);
    channel.Send(Sample(MsgType::kTimeSync), SimTime::Zero());
    channel.Send(Sample(MsgType::kEpochEnd), SimTime::Zero());
    uint64_t delivered = 0;
    SimTime t = SimTime::Zero();
    for (int round = 0; round < 20 && delivered < 2; ++round) {
      t += faults.retransmit_timeout;
      channel.MaybeRetransmit(t);
      while (auto msg = channel.Receive(t)) {
        EXPECT_EQ(msg->seq, delivered);  // In-order despite the swap.
        ++delivered;
      }
      channel.OnCumulativeAck(delivered, t);
    }
    EXPECT_EQ(delivered, 2u) << "seed " << seed;
    if (channel.counters().rx_gaps > 0) {
      saw_gap = true;
    }
  }
  EXPECT_TRUE(saw_gap) << "no seed produced an overtaking frame";
}

TEST(LossyChannel, DuplicatesAreDiscardedAndTriggerReack) {
  LinkFaults faults;
  faults.duplicate_probability = 1.0;
  Channel channel(LinkModel::Ethernet10(), ChannelMode::kOrdered, faults, /*seed=*/9);
  channel.Send(Sample(MsgType::kEpochEnd), SimTime::Zero());
  SimTime late = SimTime::Seconds(1);
  ASSERT_TRUE(channel.Receive(late).has_value());
  EXPECT_FALSE(channel.Receive(late).has_value());  // The wire's copy.
  EXPECT_EQ(channel.counters().link_duplicates, 1u);
  EXPECT_EQ(channel.counters().rx_duplicates, 1u);
  EXPECT_TRUE(channel.TakeReackRequested());
  EXPECT_FALSE(channel.TakeReackRequested());  // One-shot flag.
}

TEST(LossyChannel, BoundedSenderQueueTailDropsWithBackpressureAccounting) {
  LinkFaults faults;
  faults.sender_queue_limit = 2;
  Channel channel(LinkModel::Ethernet10(), ChannelMode::kOrdered, faults, /*seed=*/11);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(channel.Send(Sample(MsgType::kEpochEnd), SimTime::Zero()).has_value());
  }
  EXPECT_EQ(channel.counters().queue_drops, 4u);
  EXPECT_EQ(channel.counters().queue_high_water, 2u);
  // The dropped tail is still in the go-back-N window and recovers once the
  // in-flight frames drain.
  SimTime late = SimTime::Seconds(1);
  uint64_t delivered = 0;
  while (auto msg = channel.Receive(late)) {
    ++delivered;
    (void)msg;
  }
  EXPECT_EQ(delivered, 2u);
  channel.OnCumulativeAck(delivered, late);
  // The queue keeps refusing more than 2 frames per round, so the window
  // drains over several retransmission rounds.
  SimTime t = late;
  for (int round = 0; round < 10 && delivered < 6; ++round) {
    t += faults.retransmit_timeout;
    channel.MaybeRetransmit(t);
    while (auto msg = channel.Receive(t)) {
      ++delivered;
      (void)msg;
    }
    channel.OnCumulativeAck(delivered, t);
  }
  EXPECT_EQ(delivered, 6u);
}

TEST(LossyChannel, DatagramModeDeliversWhateverArrives) {
  LinkFaults faults;
  faults.duplicate_probability = 1.0;
  Channel channel(LinkModel::Ethernet10(), ChannelMode::kDatagram, faults, /*seed=*/13);
  channel.Send(Sample(MsgType::kAck), SimTime::Zero());
  SimTime late = SimTime::Seconds(1);
  // Both copies are handed to the receiver: acks are idempotent.
  EXPECT_TRUE(channel.Receive(late).has_value());
  EXPECT_TRUE(channel.Receive(late).has_value());
  EXPECT_FALSE(channel.Receive(late).has_value());
  EXPECT_FALSE(channel.TakeReackRequested());
}

TEST(LossyChannel, CleanSendAfterBurstToleratesStragglerFromTheBurst) {
  // A frame reordered during the burst can still be in flight when the
  // window closes; a clean send landing *before* the straggler must not
  // violate the ideal wire's monotonicity assumptions.
  LinkFaults faults;
  faults.reorder_probability = 1.0;
  faults.active_until = SimTime::Micros(200);
  Channel channel(LinkModel::Ethernet10(), ChannelMode::kOrdered, faults, /*seed=*/21);
  // In-window: delayed by ~1 MTU serialisation time.
  auto a0 = channel.Send(Sample(MsgType::kEpochEnd), SimTime::Zero());
  ASSERT_TRUE(a0.has_value());
  ASSERT_EQ(channel.counters().link_reorders, 1u);
  // Out-of-window clean send that overtakes the straggler.
  auto a1 = channel.Send(Sample(MsgType::kEpochEnd), SimTime::Micros(300));
  ASSERT_TRUE(a1.has_value());
  ASSERT_LT(*a1, *a0);
  // Go-back-N still delivers in sequence: the overtaking frame is a gap
  // discard, the straggler lands, the overtaker returns via retransmit.
  EXPECT_FALSE(channel.Receive(*a1).has_value());
  EXPECT_EQ(channel.counters().rx_gaps, 1u);
  auto first = channel.Receive(*a0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->seq, 0u);
  channel.OnCumulativeAck(1, *a0);
  auto retx = channel.MaybeRetransmit(*a0 + faults.retransmit_timeout);
  EXPECT_EQ(retx.frames, 1u);
  auto second = channel.Receive(*a0 + SimTime::Seconds(1));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->seq, 1u);
}

TEST(LossyChannel, FaultWindowConfinesTheBurst) {
  LinkFaults faults;
  faults.drop_probability = 1.0;
  faults.active_until = SimTime::Millis(1);
  Channel channel(LinkModel::Ethernet10(), ChannelMode::kOrdered, faults, /*seed=*/17);
  channel.Send(Sample(MsgType::kEpochEnd), SimTime::Zero());  // Inside the burst: lost.
  EXPECT_EQ(channel.counters().link_drops, 1u);
  // After the burst the wire is clean again (retransmit carries seq 0).
  auto result = channel.MaybeRetransmit(SimTime::Millis(3));
  ASSERT_EQ(result.frames, 1u);
  auto msg = channel.Receive(SimTime::Seconds(1));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->seq, 0u);
}

// ---------------------------------------------------------------------------
// Scenario-level: the protocol over a lossy wire.
// ---------------------------------------------------------------------------

TEST(LossyScenario, ReplicatedPairSurvivesLossyLinkInLockstep) {
  WorkloadSpec spec = TxnSpec(8);
  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);

  ScenarioResult ft =
      Scenario::Replicated(spec).Epoch(4096).AuditLockstep().LinkFaults(Lossy(0.05)).Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out << " deadlocked=" << ft.deadlocked;
  EXPECT_EQ(ft.exited_flag, 1u);
  EXPECT_EQ(ft.guest_checksum, bare.guest_checksum);
  ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace, ft.issuer_chain());
  EXPECT_TRUE(env.ok) << env.detail;
  // Zero divergence: every boundary both replicas recorded fingerprints for
  // matches exactly, loss or no loss.
  size_t prefix = MatchingBoundaryPrefix(ft);
  size_t compared = std::min(ft.nodes[0].boundary_fingerprints.size(),
                             ft.nodes[1].boundary_fingerprints.size());
  EXPECT_EQ(prefix, compared);
  EXPECT_GT(compared, 0u);
  // The wire genuinely misbehaved and the transport genuinely repaired it.
  EXPECT_GT(ft.TotalRetransmits(), 0u);
  EXPECT_GT(ft.TotalWireBytes(), ft.TotalDeliveredBytes());
}

TEST(LossyScenario, SaturatedSenderQueueNeverLivelocksTheTimer) {
  // Regression: with a one-frame sender queue and heavy dup/reorder, a whole
  // retransmission round can be tail-dropped (busy_until_ never advances).
  // The timer must still re-arm strictly later than its fire time, or the
  // event queue spins at one sim timestamp forever.
  LinkFaults faults;
  faults.drop_probability = 0.2;
  faults.duplicate_probability = 0.5;
  faults.reorder_probability = 0.3;
  faults.sender_queue_limit = 1;
  ScenarioResult ft = Scenario::Replicated(TxnSpec(8))
                          .Epoch(4096)
                          .Seed(7)
                          .LinkFaults(faults)
                          .MaxTime(SimTime::Seconds(30))
                          .Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out << " deadlocked=" << ft.deadlocked;
  EXPECT_EQ(ft.exited_flag, 1u);
  uint64_t queue_drops = 0;
  for (const ScenarioResult::ChannelReport& ch : ft.channels) {
    queue_drops += ch.counters.queue_drops;
  }
  EXPECT_GT(queue_drops, 0u);  // The backpressure path was genuinely exercised.
}

TEST(LossyScenario, LossyButAliveNeverPromotes) {
  // Heavy loss, no failure injection: delayed/dropped traffic alone must not
  // look like a crash — nobody promotes, the run completes.
  ScenarioResult ft =
      Scenario::Replicated(TxnSpec(6)).Epoch(4096).LinkFaults(Lossy(0.15)).Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out << " deadlocked=" << ft.deadlocked;
  EXPECT_FALSE(ft.promoted);
  EXPECT_GT(ft.TotalRetransmits(), 0u);
}

// The acceptance scenario: a three-replica net-echo cascade over a lossy,
// reordering wire — primary killed, then the promoted backup killed — must
// finish with the environment clean and the counters showing real transport
// work.
TEST(LossyScenario, NetEchoCascadeSurvivesLossAndReorder) {
  const uint32_t kPackets = 3;
  WorkloadSpec spec = NetEchoSpec(kPackets);

  Scenario bare_scenario = Scenario::Bare(spec);
  InjectEchoPackets(&bare_scenario, kPackets);
  ScenarioResult bare = bare_scenario.Run();
  ASSERT_TRUE(bare.completed);

  LinkFaults faults;
  faults.drop_probability = 0.05;
  faults.reorder_probability = 0.05;
  Scenario scenario = Scenario::Replicated(spec)
                          .Backups(2)
                          .Epoch(4096)
                          .LinkFaults(faults)
                          .FailAtTime(SimTime::Millis(4))
                          .FailAtPhase(FailPhase::kAfterIoIssue, 0,
                                       FailurePlan::CrashIo::kNotPerformed);
  InjectEchoPackets(&scenario, kPackets);
  ScenarioResult ft = scenario.Run();

  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out << " deadlocked=" << ft.deadlocked
                            << " service_lost=" << ft.service_lost;
  EXPECT_EQ(ft.exited_flag, 1u) << "guest panic " << ft.panic_code;
  EXPECT_EQ(ft.exit_code, bare.exit_code);
  ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace, ft.issuer_chain());
  EXPECT_TRUE(env.ok) << env.detail;
  EXPECT_TRUE(ft.nodes[1].promoted);
  EXPECT_TRUE(ft.nodes[2].promoted);
  EXPECT_GT(ft.TotalRetransmits(), 0u);
  EXPECT_GT(ft.TotalWireBytes(), ft.TotalDeliveredBytes());
}

// ---------------------------------------------------------------------------
// Ack batching and epoch pipelining.
// ---------------------------------------------------------------------------

// Counters across Break -> reconnect (the rejoin path replaces a dead pair's
// channels with a fresh pair): the broken channel's counters survive for
// reporting, its queue occupancy drains to zero, and its retransmission
// machinery goes quiet instead of re-sending into the void.
TEST(Transport, CountersSurviveBreakWithNoPhantomRetransmits) {
  LinkFaults faults = Lossy(1e-9);  // Fault machinery on, nothing actually lost.
  Channel channel(LinkModel::Ethernet10(), ChannelMode::kOrdered, faults, /*seed=*/3);
  auto a1 = channel.Send(Sample(MsgType::kTimeSync), SimTime::Zero());
  auto a2 = channel.Send(Sample(MsgType::kEpochEnd), SimTime::Zero());
  ASSERT_TRUE(a1.has_value() && a2.has_value());
  Channel::Counters before = channel.counters();
  EXPECT_EQ(before.messages_enqueued, 2u);

  channel.Break(*a2);  // Both frames fully serialised: they still arrive.
  EXPECT_TRUE(channel.Receive(*a2).has_value());
  EXPECT_TRUE(channel.Receive(*a2).has_value());
  EXPECT_FALSE(channel.LastPendingArrival().has_value());  // Occupancy at zero.

  // The dead sender never re-sends: a retransmission timeout far in the
  // future moves nothing and mints no wire sends.
  auto retx = channel.MaybeRetransmit(SimTime::Seconds(5));
  EXPECT_EQ(retx.frames, 0u);
  Channel::Counters after = channel.counters();
  EXPECT_EQ(after.messages_enqueued, before.messages_enqueued);
  EXPECT_EQ(after.wire_sends, before.wire_sends);
  EXPECT_EQ(after.retransmits, 0u);
  EXPECT_EQ(after.messages_delivered, 2u);
}

// Scenario-level: after kill -> rejoin, the dead pair's channel counters are
// still reported (frozen), and the fresh rejoin pair carries the transfer —
// queue occupancy on the broken wires returns to zero with no phantom
// retransmissions inflating the totals.
TEST(Transport, RejoinReportsFrozenBrokenChannelsAndFreshPair) {
  ScenarioResult ft = Scenario::Replicated(TxnSpec(16))
                          .LinkFaults(Lossy(0.02))
                          .FailAtPhase(FailPhase::kAfterSendTme, 2)
                          .RejoinAfterFail(SimTime::Millis(10))
                          .Run();
  ASSERT_TRUE(ft.completed);
  ASSERT_EQ(ft.resyncs.size(), 1u);
  ASSERT_TRUE(ft.resyncs[0].completed);
  // Mesh: (0,1)+(1,0) from construction, (1,2)+(2,1) from the rejoin.
  ASSERT_EQ(ft.channels.size(), 4u);
  const auto* dead_pair = &ft.channels[0];      // 0 -> 1: broken at the kill.
  const auto* rejoin_pair = &ft.channels[2];    // 1 -> 2: the transfer stream.
  EXPECT_EQ(dead_pair->from, 0u);
  EXPECT_EQ(dead_pair->to, 1u);
  EXPECT_GT(dead_pair->counters.messages_enqueued, 0u);  // History survives.
  EXPECT_EQ(rejoin_pair->from, 1u);
  EXPECT_EQ(rejoin_pair->to, 2u);
  EXPECT_EQ(rejoin_pair->mode, ChannelMode::kOrdered);
  // The transfer rode the fresh ordered channel: at least the resync bytes.
  EXPECT_GE(rejoin_pair->counters.bytes_delivered, ft.resyncs[0].bytes);
  EXPECT_GT(rejoin_pair->counters.messages_delivered, 0u);
}

TEST(Transport, AckBatchingCoalescesAcksWithoutChangingTheResult) {
  // The time workload's dense env-value stream is acked while the backup
  // runs, which is exactly where coalescing applies (a parked backup must
  // flush: the sender's P2/output-commit waits cover everything enqueued).
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTime;
  ScenarioResult strict = Scenario::Replicated(spec).Epoch(4096).Run();
  ASSERT_TRUE(strict.completed);
  ScenarioResult batched = Scenario::Replicated(spec).Epoch(4096).AckBatch(8).Run();
  ASSERT_TRUE(batched.completed) << "timed_out=" << batched.timed_out
                                 << " deadlocked=" << batched.deadlocked;
  EXPECT_EQ(batched.exited_flag, 1u);
  EXPECT_EQ(batched.exit_code, strict.exit_code);
  // Same protocol stream, materially fewer acks on the wire.
  EXPECT_EQ(batched.primary_stats().messages_sent, strict.primary_stats().messages_sent);
  EXPECT_LT(batched.primary_stats().acks_received,
            strict.primary_stats().acks_received / 2);
  // Batching must not stall epochs: the run makes the same progress.
  EXPECT_EQ(batched.primary_stats().epochs, strict.primary_stats().epochs);
}

TEST(Transport, AckBatchingStaysTransparentOnTxnLog) {
  // Boundary-dominated workload: batching degenerates gracefully (parked
  // flushes keep the protocol moving) and changes nothing observable.
  WorkloadSpec spec = TxnSpec(8);
  ScenarioResult strict = Scenario::Replicated(spec).Epoch(4096).Run();
  ASSERT_TRUE(strict.completed);
  ScenarioResult batched = Scenario::Replicated(spec).Epoch(4096).AckBatch(8).Run();
  ASSERT_TRUE(batched.completed) << "timed_out=" << batched.timed_out
                                 << " deadlocked=" << batched.deadlocked;
  EXPECT_EQ(batched.guest_checksum, strict.guest_checksum);
  EXPECT_LE(batched.primary_stats().acks_received, strict.primary_stats().acks_received);
}

TEST(Transport, AckBatchingHoldsUnderTheRevisedVariant) {
  // Output commit gates I/O on all-acked mid-epoch: the backup must flush
  // its batch whenever it blocks, or the primary would deadlock.
  WorkloadSpec spec = TxnSpec(6);
  ScenarioResult ft = Scenario::Replicated(spec)
                          .Epoch(4096)
                          .Variant(ProtocolVariant::kRevised)
                          .AckBatch(16)
                          .Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out
                            << " deadlocked=" << ft.deadlocked;
  EXPECT_EQ(ft.exited_flag, 1u);
}

TEST(Transport, EpochPipeliningRunsAheadAndCutsAckWait) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kCpu;
  spec.iterations = 4000;
  ScenarioResult strict = Scenario::Replicated(spec).Epoch(2048).Run();
  ASSERT_TRUE(strict.completed);
  ScenarioResult piped = Scenario::Replicated(spec).Epoch(2048).PipelineDepth(2).Run();
  ASSERT_TRUE(piped.completed) << "timed_out=" << piped.timed_out
                               << " deadlocked=" << piped.deadlocked;
  EXPECT_EQ(piped.guest_checksum, strict.guest_checksum);
  // The pipelined primary stopped paying the full boundary round trip.
  EXPECT_LT(piped.primary_stats().ack_wait_time.picos(),
            strict.primary_stats().ack_wait_time.picos());
  EXPECT_LT(piped.completion_time.picos(), strict.completion_time.picos());
}

TEST(Transport, PipeliningSurvivesFailover) {
  WorkloadSpec spec = TxnSpec(8);
  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);
  ScenarioResult ft = Scenario::Replicated(spec)
                          .Epoch(4096)
                          .PipelineDepth(2)
                          .FailAtPhase(FailPhase::kAfterSendTme, 2)
                          .Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out
                            << " deadlocked=" << ft.deadlocked;
  EXPECT_TRUE(ft.promoted);
  EXPECT_EQ(ft.guest_checksum, bare.guest_checksum);
  ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace, ft.issuer_chain());
  EXPECT_TRUE(env.ok) << env.detail;
}

TEST(Transport, PipeliningSurvivesFailoverOverLossyLink) {
  // The risky corner: pipelining widens how far the primary's device outputs
  // can run ahead of acked state, and a lossy wire maximises the gap the
  // backup promotes across (dropped relays the dead primary never
  // retransmitted). The takeover must still present a single-machine
  // environment: missing completions fall back to P7 re-drives, and disk
  // re-writes are idempotent.
  WorkloadSpec spec = TxnSpec(10);
  ScenarioResult bare = RunBare(spec);
  ASSERT_TRUE(bare.completed);
  ScenarioResult ft = Scenario::Replicated(spec)
                          .Epoch(4096)
                          .PipelineDepth(2)
                          .LinkFaults(Lossy(0.1))
                          .FailAtPhase(FailPhase::kAfterIoIssue, 1,
                                       FailurePlan::CrashIo::kNotPerformed)
                          .Run();
  ASSERT_TRUE(ft.completed) << "timed_out=" << ft.timed_out
                            << " deadlocked=" << ft.deadlocked;
  EXPECT_TRUE(ft.promoted);
  EXPECT_EQ(ft.exited_flag, 1u) << "guest panic " << ft.panic_code;
  EXPECT_EQ(ft.guest_checksum, bare.guest_checksum);
  ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace, ft.issuer_chain());
  EXPECT_TRUE(env.ok) << env.detail;
}

// ---------------------------------------------------------------------------
// The CI seed matrix: net-echo pair + txnlog cascade, {ideal, lossy} x seeds.
// Transport regressions under any wire or seed fail here first.
// ---------------------------------------------------------------------------

class TransportMatrix : public testing::TestWithParam<int> {};

TEST_P(TransportMatrix, NetEchoAndCascadeCompleteCleanly) {
  const uint64_t seed = static_cast<uint64_t>(GetParam()) * 1013 + 42;
  for (bool lossy : {false, true}) {
    LinkFaults faults = lossy ? Lossy(0.05) : LinkFaults{};

    // net-echo replicated pair.
    const uint32_t kPackets = 3;
    WorkloadSpec net = NetEchoSpec(kPackets);
    Scenario net_bare = Scenario::Bare(net).Seed(seed);
    InjectEchoPackets(&net_bare, kPackets);
    ScenarioResult nb = net_bare.Run();
    ASSERT_TRUE(nb.completed) << "seed " << seed;
    Scenario net_ft = Scenario::Replicated(net).Seed(seed).LinkFaults(faults);
    InjectEchoPackets(&net_ft, kPackets);
    ScenarioResult nf = net_ft.Run();
    ASSERT_TRUE(nf.completed) << "seed " << seed << " lossy " << lossy
                              << " timed_out=" << nf.timed_out
                              << " deadlocked=" << nf.deadlocked;
    ConsistencyResult net_env = CheckEnvConsistency(nb.env_trace, nf.env_trace,
                                                    nf.issuer_chain());
    EXPECT_TRUE(net_env.ok) << "seed " << seed << " lossy " << lossy << ": " << net_env.detail;

    // txnlog cascade (kill the primary, then the promoted backup).
    WorkloadSpec txn = TxnSpec(8);
    ScenarioResult tb = Scenario::Bare(txn).Seed(seed).Run();
    ASSERT_TRUE(tb.completed) << "seed " << seed;
    ScenarioResult tf = Scenario::Replicated(txn)
                            .Backups(2)
                            .Seed(seed)
                            .LinkFaults(faults)
                            .FailAtTime(SimTime::Millis(4))
                            .FailAtPhase(FailPhase::kAfterIoIssue)
                            .Run();
    ASSERT_TRUE(tf.completed) << "seed " << seed << " lossy " << lossy
                              << " timed_out=" << tf.timed_out
                              << " deadlocked=" << tf.deadlocked
                              << " service_lost=" << tf.service_lost;
    ConsistencyResult txn_env = CheckEnvConsistency(tb.env_trace, tf.env_trace,
                                                    tf.issuer_chain());
    EXPECT_TRUE(txn_env.ok) << "seed " << seed << " lossy " << lossy << ": " << txn_env.detail;
    if (lossy) {
      EXPECT_GT(nf.TotalRetransmits() + tf.TotalRetransmits(), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportMatrix, testing::Range(0, 3));

}  // namespace
}  // namespace hbft
