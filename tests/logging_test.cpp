// common/logging under worker threads: the ScopedLogCapture sink routes a
// thread's lines into a per-thread buffer (the fleet flushes buffers at the
// round barrier in chain-id order), captures nest, and sinks are isolated
// between threads — the fix for the layer's old "not thread-safe by design"
// limitation.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"

namespace hbft {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { SetLogLevel(LogLevel::kInfo); }
  void TearDown() override { SetLogLevel(LogLevel::kNone); }
};

TEST_F(LoggingTest, CaptureCollectsLinesInOrder) {
  std::vector<std::string> sink;
  {
    ScopedLogCapture capture(&sink);
    HBFT_INFO("t") << "first";
    HBFT_INFO("t") << "second";
  }
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink[0], "[t] first");
  EXPECT_EQ(sink[1], "[t] second");
}

TEST_F(LoggingTest, LevelFilterAppliesBeforeCapture) {
  std::vector<std::string> sink;
  ScopedLogCapture capture(&sink);
  HBFT_DEBUG("t") << "below the enabled level";
  HBFT_INFO("t") << "kept";
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink[0], "[t] kept");
}

TEST_F(LoggingTest, CapturesNestAndRestoreThePreviousSink) {
  std::vector<std::string> outer;
  std::vector<std::string> inner;
  ScopedLogCapture outer_capture(&outer);
  HBFT_INFO("t") << "to outer";
  {
    ScopedLogCapture inner_capture(&inner);
    HBFT_INFO("t") << "to inner";
  }
  HBFT_INFO("t") << "back to outer";
  EXPECT_EQ(inner, (std::vector<std::string>{"[t] to inner"}));
  EXPECT_EQ(outer, (std::vector<std::string>{"[t] to outer", "[t] back to outer"}));
}

TEST_F(LoggingTest, EmitClearsTheBuffer) {
  std::vector<std::string> sink;
  {
    ScopedLogCapture capture(&sink);
    HBFT_INFO("t") << "one line";
  }
  EmitCapturedLogLines(&sink);
  EXPECT_TRUE(sink.empty());
}

TEST_F(LoggingTest, SinksAreThreadLocal) {
  // A capture installed on this thread must not see lines logged by another
  // thread, and vice versa — the property that makes per-chain buffers safe
  // when the fleet's worker pool logs from several threads at once.
  std::vector<std::string> main_sink;
  ScopedLogCapture capture(&main_sink);
  HBFT_INFO("t") << "from main";
  std::vector<std::string> worker_sink;
  std::thread worker([&worker_sink] {
    ScopedLogCapture worker_capture(&worker_sink);
    HBFT_INFO("t") << "from worker";
  });
  worker.join();
  EXPECT_EQ(main_sink, (std::vector<std::string>{"[t] from main"}));
  EXPECT_EQ(worker_sink, (std::vector<std::string>{"[t] from worker"}));
}

}  // namespace
}  // namespace hbft
