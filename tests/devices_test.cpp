// Device tests: the dual-ported disk's IO1/IO2 semantics, crash resolution,
// fault injection, tracing; console TX/RX.
#include <gtest/gtest.h>

#include "devices/console.hpp"
#include "devices/disk.hpp"

namespace hbft {
namespace {

std::vector<uint8_t> Pattern(uint8_t seed) {
  std::vector<uint8_t> data(kDiskBlockBytes);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(seed + i);
  }
  return data;
}

TEST(Disk, WriteThenReadRoundTrip) {
  Disk disk(32, 1);
  auto data = Pattern(7);
  uint64_t w = disk.IssueWrite(3, data, 1);
  auto wc = disk.Complete(w);
  EXPECT_EQ(wc.status, DiskStatus::kOk);
  EXPECT_TRUE(wc.performed);

  uint64_t r = disk.IssueRead(3, 1);
  auto rc = disk.Complete(r);
  EXPECT_EQ(rc.status, DiskStatus::kOk);
  EXPECT_EQ(rc.data, data);
}

TEST(Disk, UnwrittenBlocksHaveDeterministicContent) {
  Disk a(32, 1);
  Disk b(32, 2);  // Different seed: content pattern must not depend on it.
  EXPECT_EQ(a.PeekBlock(5), b.PeekBlock(5));
  EXPECT_NE(a.PeekBlock(5), a.PeekBlock(6));
}

TEST(Disk, WritesAreIdempotent) {
  // IO2 tolerance: repeating a write leaves the same state.
  Disk disk(32, 1);
  auto data = Pattern(9);
  disk.Complete(disk.IssueWrite(4, data, 1));
  disk.Complete(disk.IssueWrite(4, data, 2));  // Re-driven after failover.
  EXPECT_EQ(disk.PeekBlock(4), data);
}

TEST(Disk, FaultPlanInjectsUncertainCompletions) {
  Disk disk(32, 1);
  DiskFaultPlan plan;
  plan.uncertain_probability = 1.0;
  plan.performed_when_uncertain = 1.0;
  disk.set_fault_plan(plan);
  auto data = Pattern(3);
  auto completion = disk.Complete(disk.IssueWrite(1, data, 1));
  EXPECT_EQ(completion.status, DiskStatus::kUncertain);
  EXPECT_TRUE(completion.performed);  // Performed, but the host can't know.
  EXPECT_EQ(disk.PeekBlock(1), data);

  plan.performed_when_uncertain = 0.0;
  disk.set_fault_plan(plan);
  auto data2 = Pattern(4);
  auto completion2 = disk.Complete(disk.IssueWrite(2, data2, 1));
  EXPECT_EQ(completion2.status, DiskStatus::kUncertain);
  EXPECT_FALSE(completion2.performed);
  EXPECT_NE(disk.PeekBlock(2), data2);
}

TEST(Disk, CrashResolutionPerformedOrNot) {
  Disk disk(32, 1);
  auto data = Pattern(5);
  uint64_t op1 = disk.IssueWrite(7, data, 1);
  uint64_t op2 = disk.IssueWrite(8, data, 1);
  EXPECT_TRUE(disk.HasInFlight(op1));
  disk.ResolveInFlightAtCrash(op1, /*performed=*/true);
  disk.ResolveInFlightAtCrash(op2, /*performed=*/false);
  EXPECT_FALSE(disk.HasInFlight(op1));
  EXPECT_EQ(disk.PeekBlock(7), data);
  EXPECT_NE(disk.PeekBlock(8), data);
  // Trace records only the performed one.
  int performed_entries = 0;
  for (const auto& e : disk.trace()) {
    if (e.performed) {
      ++performed_entries;
    }
  }
  EXPECT_EQ(performed_entries, 1);
}

TEST(Disk, TraceRecordsIssuerAndContentHash) {
  Disk disk(32, 1);
  disk.Complete(disk.IssueWrite(1, Pattern(1), /*issuer=*/1));
  disk.Complete(disk.IssueRead(1, /*issuer=*/2));
  ASSERT_EQ(disk.trace().size(), 2u);
  EXPECT_TRUE(disk.trace()[0].is_write);
  EXPECT_EQ(disk.trace()[0].issuer, 1);
  EXPECT_NE(disk.trace()[0].content_hash, 0u);
  EXPECT_FALSE(disk.trace()[1].is_write);
  EXPECT_EQ(disk.trace()[1].issuer, 2);
  // Identical content -> identical hash (used by the consistency checker).
  disk.Complete(disk.IssueWrite(2, Pattern(1), 1));
  EXPECT_EQ(disk.trace()[0].content_hash, disk.trace()[2].content_hash);
}

TEST(Console, OutputAndTrace) {
  Console console;
  console.Transmit('h', 1);
  console.Transmit('i', 1);
  console.Transmit('!', 2);
  EXPECT_EQ(console.output(), "hi!");
  ASSERT_EQ(console.trace().size(), 3u);
  EXPECT_EQ(console.trace()[2].issuer, 2);
}

TEST(Console, RxFifoOrder) {
  Console console;
  EXPECT_FALSE(console.HasRx());
  console.InjectInput("abc");
  EXPECT_TRUE(console.HasRx());
  EXPECT_EQ(console.PopRx(), 'a');
  EXPECT_EQ(console.PopRx(), 'b');
  EXPECT_EQ(console.PopRx(), 'c');
  EXPECT_FALSE(console.HasRx());
}

}  // namespace
}  // namespace hbft
