// Analytic model tests: the closed-form NP models must reproduce the paper's
// published numbers within tolerance, and obey the paper's qualitative
// claims (monotonicity, protocol ordering, link ordering, crossovers).
#include <gtest/gtest.h>

#include "perf/models.hpp"
#include "perf/report.hpp"

namespace hbft {
namespace {

// ---- Figure 2 (CPU-intensive, original protocol, Ethernet) ------------------

struct Fig2Point {
  double el;
  double paper_np;
  double tolerance;
};

class Fig2Model : public testing::TestWithParam<Fig2Point> {};

TEST_P(Fig2Model, MatchesPaper) {
  const Fig2Point& p = GetParam();
  double np = ModelNpCpu(p.el, /*revised=*/false, ModelLink::kEthernet10);
  EXPECT_NEAR(np, p.paper_np, p.tolerance) << "EL=" << p.el;
}

INSTANTIATE_TEST_SUITE_P(PaperPoints, Fig2Model,
                         testing::Values(Fig2Point{1024, 22.24, 0.7}, Fig2Point{2048, 11.83, 0.5},
                                         Fig2Point{4096, 6.50, 0.3}, Fig2Point{8192, 3.83, 0.2},
                                         Fig2Point{32768, 1.84, 0.1},
                                         Fig2Point{385000, 1.24, 0.12}));

// ---- Figure 3 (I/O workloads) -----------------------------------------------

struct IoPoint {
  double el;
  double paper_write;
  double paper_read;
};

class Fig3Model : public testing::TestWithParam<IoPoint> {};

TEST_P(Fig3Model, MatchesPaper) {
  const IoPoint& p = GetParam();
  EXPECT_NEAR(ModelNpWrite(p.el, false), p.paper_write, 0.08) << "EL=" << p.el;
  EXPECT_NEAR(ModelNpRead(p.el, false, ModelLink::kEthernet10), p.paper_read, 0.10)
      << "EL=" << p.el;
}

INSTANTIATE_TEST_SUITE_P(PaperPoints, Fig3Model,
                         testing::Values(IoPoint{1024, 1.87, 2.32}, IoPoint{2048, 1.71, 2.10},
                                         IoPoint{4096, 1.67, 2.03}, IoPoint{8192, 1.64, 1.98}));

// ---- Table 1 revised protocol ------------------------------------------------

TEST(Table1Model, RevisedCpuMatchesPaper) {
  EXPECT_NEAR(ModelNpCpu(4096, true, ModelLink::kEthernet10), 3.21, 0.35);
  EXPECT_NEAR(ModelNpCpu(8192, true, ModelLink::kEthernet10), 2.20, 0.25);
}

TEST(Table1Model, RevisedReadMatchesPaper) {
  // The paper's 1K revised row is its noisiest point (see EXPERIMENTS.md's
  // deviations note); the wider tolerance reflects that.
  EXPECT_NEAR(ModelNpRead(1024, true, ModelLink::kEthernet10), 1.92, 0.20);
  EXPECT_NEAR(ModelNpRead(4096, true, ModelLink::kEthernet10), 1.72, 0.08);
  EXPECT_NEAR(ModelNpRead(8192, true, ModelLink::kEthernet10), 1.70, 0.08);
}

TEST(Table1Model, RevisedWriteMatchesPaper) {
  EXPECT_NEAR(ModelNpWrite(4096, true), 1.66, 0.08);
  EXPECT_NEAR(ModelNpWrite(8192, true), 1.64, 0.08);
}

// ---- Figure 4 (ATM link) ------------------------------------------------------

TEST(Fig4Model, AtmBeatsEthernetAndMatchesEndpoints) {
  EXPECT_NEAR(ModelNpCpu(32768, false, ModelLink::kEthernet10), 1.84, 0.08);
  EXPECT_NEAR(ModelNpCpu(32768, false, ModelLink::kAtm155), 1.66, 0.08);
  for (double el = 1024; el <= 32768; el *= 2) {
    EXPECT_LT(ModelNpCpu(el, false, ModelLink::kAtm155),
              ModelNpCpu(el, false, ModelLink::kEthernet10))
        << "EL=" << el;
  }
}

// ---- Qualitative shape properties ---------------------------------------------

TEST(ModelShape, NpFallsWithEpochLengthForCpu) {
  double prev = 1e9;
  for (double el = 512; el <= 262144; el *= 2) {
    double np = ModelNpCpu(el, false, ModelLink::kEthernet10);
    EXPECT_LT(np, prev) << "EL=" << el;
    EXPECT_GT(np, 1.0);
    prev = np;
  }
}

TEST(ModelShape, RevisedNeverWorseThanOriginal) {
  for (double el = 512; el <= 65536; el *= 2) {
    EXPECT_LE(ModelNpCpu(el, true, ModelLink::kEthernet10) - 1e-9,
              ModelNpCpu(el, false, ModelLink::kEthernet10));
    EXPECT_LE(ModelNpWrite(el, true) - 1e-9, ModelNpWrite(el, false));
    EXPECT_LE(ModelNpRead(el, true, ModelLink::kEthernet10) - 1e-9,
              ModelNpRead(el, false, ModelLink::kEthernet10));
  }
}

TEST(ModelShape, ReadCostlierThanWriteUnderOriginalProtocol) {
  // The read data must be forwarded to the backup (rule P2): reads carry the
  // extra transfer, writes do not.
  for (double el = 1024; el <= 32768; el *= 2) {
    EXPECT_GT(ModelNpRead(el, false, ModelLink::kEthernet10), ModelNpWrite(el, false));
  }
}

TEST(ModelShape, CpuCurveCrossesBelowIoCurvesAtLargeEpochs) {
  // Small epochs: CPU suffers far more than I/O; large epochs: CPU recovers
  // below the I/O workloads (the paper's qualitative story).
  EXPECT_GT(ModelNpCpu(1024, false, ModelLink::kEthernet10),
            ModelNpRead(1024, false, ModelLink::kEthernet10));
  EXPECT_LT(ModelNpCpu(385000, false, ModelLink::kEthernet10),
            ModelNpWrite(385000, false));
}

TEST(ModelShape, IoDelayTermLiftsVeryLargeEpochs) {
  // The paper notes a slight upward drift for large EL as interrupt delivery
  // is delayed: the write curve's minimum is interior.
  double np32k = ModelNpWrite(32768, false);
  double np512k = ModelNpWrite(524288, false);
  EXPECT_GT(np512k, np32k);
}

// ---- Reporting ----------------------------------------------------------------

TEST(Report, TableRendersAligned) {
  TableReporter table({"A", "Bee"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  std::string out = table.Render();
  EXPECT_NE(out.find("A    Bee"), std::string::npos);
  EXPECT_NE(out.find("333  4"), std::string::npos);
  EXPECT_EQ(TableReporter::Num(1.2345), "1.23");
  EXPECT_EQ(TableReporter::Num(1.2345, 3), "1.234");
}

}  // namespace
}  // namespace hbft
