// Network tests: message serialisation round trips, wire sizes, link timing
// (including the paper's 9-messages-per-8K-block framing), FIFO delivery, and
// break semantics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/isa.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"

namespace hbft {
namespace {

Message SampleMessage(MsgType type) {
  Message msg;
  msg.type = type;
  msg.epoch = 42;
  switch (type) {
    case MsgType::kAck:
      msg.ack_seq = 17;
      break;
    case MsgType::kEnvValue:
      msg.env_seq = 5;
      msg.env_value = 0xDEADBEEFCAFEULL;
      break;
    case MsgType::kTimeSync:
      msg.tod_value = 123456789;
      break;
    case MsgType::kEpochEnd:
      break;
    case MsgType::kInterrupt: {
      msg.irq_lines = kIrqDisk;
      IoCompletionPayload io;
      io.device_irq = kIrqDisk;
      io.guest_op_seq = 9;
      io.result_code = 0;
      io.has_dma_data = true;
      io.dma_guest_paddr = 0x310000;
      io.dma_data.assign(8192, 0x5A);
      msg.io = io;
      break;
    }
  }
  return msg;
}

class MessageRoundTrip : public testing::TestWithParam<int> {};

TEST_P(MessageRoundTrip, SerializeDeserialize) {
  Message msg = SampleMessage(static_cast<MsgType>(GetParam()));
  msg.seq = 1234;
  auto bytes = msg.Serialize();
  EXPECT_EQ(bytes.size(), msg.WireSize());
  auto decoded = Message::Deserialize(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, msg.type);
  EXPECT_EQ(decoded->seq, msg.seq);
  EXPECT_EQ(decoded->epoch, msg.epoch);
  EXPECT_EQ(decoded->ack_seq, msg.ack_seq);
  EXPECT_EQ(decoded->env_seq, msg.env_seq);
  EXPECT_EQ(decoded->env_value, msg.env_value);
  EXPECT_EQ(decoded->tod_value, msg.tod_value);
  EXPECT_EQ(decoded->io.has_value(), msg.io.has_value());
  if (msg.io.has_value()) {
    EXPECT_EQ(decoded->io->dma_data, msg.io->dma_data);
    EXPECT_EQ(decoded->io->guest_op_seq, msg.io->guest_op_seq);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, MessageRoundTrip, testing::Range(1, 6));

TEST(Message, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Message::Deserialize({}).has_value());
  EXPECT_FALSE(Message::Deserialize({0xFF, 1, 2, 3}).has_value());
  auto bytes = SampleMessage(MsgType::kAck).Serialize();
  bytes.pop_back();  // Truncated.
  EXPECT_FALSE(Message::Deserialize(bytes).has_value());
  bytes = SampleMessage(MsgType::kAck).Serialize();
  bytes.push_back(0);  // Trailing junk.
  EXPECT_FALSE(Message::Deserialize(bytes).has_value());
}

TEST(LinkModel, PaperFraming8KBlockIsNineFrames) {
  Message msg = SampleMessage(MsgType::kInterrupt);  // 8K DMA payload.
  LinkModel eth = LinkModel::Ethernet10();
  EXPECT_EQ(eth.FrameCount(msg.WireSize()), 9u);  // The paper's "9 messages".
  // Small control messages are single frames.
  EXPECT_EQ(eth.FrameCount(SampleMessage(MsgType::kAck).WireSize()), 1u);
}

TEST(LinkModel, TransferTimeScalesWithBandwidth) {
  LinkModel eth = LinkModel::Ethernet10();
  LinkModel atm = LinkModel::Atm155();
  size_t bytes = 8300;
  SimTime t_eth = eth.TransferTime(bytes);
  SimTime t_atm = atm.TransferTime(bytes);
  EXPECT_LT(t_atm, t_eth);
  // Ethernet: 9 frames * 90us + 8300*8/10Mbps = 810us + 6640us.
  EXPECT_NEAR(t_eth.micros_f(), 810.0 + 6640.0, 1.0);
}

TEST(Channel, FifoDeliveryWithLatency) {
  Channel channel(LinkModel::Ethernet10());
  Message m1 = SampleMessage(MsgType::kTimeSync);
  Message m2 = SampleMessage(MsgType::kEpochEnd);
  SimTime t0 = SimTime::Micros(1000);
  auto a1 = channel.Send(m1, t0);
  auto a2 = channel.Send(m2, t0);
  ASSERT_TRUE(a1.has_value());
  ASSERT_TRUE(a2.has_value());
  EXPECT_LT(*a1, *a2);  // Serialised on the wire.
  EXPECT_FALSE(channel.Receive(t0).has_value());  // Nothing arrived yet.
  auto r1 = channel.Receive(*a1);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->type, MsgType::kTimeSync);
  EXPECT_FALSE(channel.Receive(*a1).has_value());  // m2 still in flight.
  auto r2 = channel.Receive(*a2);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->type, MsgType::kEpochEnd);
}

TEST(Channel, SequenceNumbersAssignedInOrder) {
  Channel channel(LinkModel::Ethernet10());
  channel.Send(SampleMessage(MsgType::kEpochEnd), SimTime::Zero());
  channel.Send(SampleMessage(MsgType::kEpochEnd), SimTime::Zero());
  auto arrival = channel.Send(SampleMessage(MsgType::kEpochEnd), SimTime::Zero());
  EXPECT_EQ(channel.messages_sent(), 3u);
  channel.Receive(*arrival);
  channel.Receive(*arrival);
  auto third = channel.Receive(*arrival);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->seq, 2u);
}

TEST(Channel, BreakDropsFutureSendsButDeliversInFlight) {
  Channel channel(LinkModel::Ethernet10());
  auto arrival = channel.Send(SampleMessage(MsgType::kTimeSync), SimTime::Zero());
  ASSERT_TRUE(arrival.has_value());
  channel.Break(SimTime::Micros(1));
  // Sent before the break: still arrives (the paper's failure assumption).
  EXPECT_TRUE(channel.Receive(*arrival).has_value());
  // Sent after the break: vanishes.
  EXPECT_FALSE(channel.Send(SampleMessage(MsgType::kEpochEnd), SimTime::Micros(2)).has_value());
  EXPECT_EQ(channel.DrainTime(), *arrival);
}

// Property fuzz: deserialisation of arbitrarily mutated bytes must never
// misbehave — either reject or produce a message that re-serialises
// canonically. (The channel is trusted in the simulation, but a codec that
// chokes on corruption is a latent bug.)
class MessageFuzz : public testing::TestWithParam<int> {};

TEST_P(MessageFuzz, MutatedBytesNeverCrashCodec) {
  DeterministicRng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  for (int round = 0; round < 500; ++round) {
    MsgType type = static_cast<MsgType>(1 + rng.NextBelow(5));
    Message msg = SampleMessage(type);
    if (msg.io.has_value()) {
      msg.io->dma_data.resize(rng.NextBelow(64));  // Small payloads for speed.
    }
    auto bytes = msg.Serialize();
    // Mutate 1-4 positions and/or truncate.
    size_t mutations = 1 + rng.NextBelow(4);
    for (size_t m = 0; m < mutations && !bytes.empty(); ++m) {
      bytes[rng.NextBelow(bytes.size())] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    }
    if (rng.NextBool(0.3) && !bytes.empty()) {
      bytes.resize(rng.NextBelow(bytes.size()));
    }
    auto decoded = Message::Deserialize(bytes);
    if (decoded.has_value()) {
      // Whatever was accepted must round-trip stably.
      auto re = decoded->Serialize();
      EXPECT_EQ(re.size(), decoded->WireSize());
      auto again = Message::Deserialize(re);
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(again->Serialize(), re);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageFuzz, testing::Range(0, 4));

TEST(Channel, NextArrivalExposesEarliestInFlight) {
  Channel channel(LinkModel::Ethernet10());
  EXPECT_FALSE(channel.NextArrival().has_value());
  auto a1 = channel.Send(SampleMessage(MsgType::kEpochEnd), SimTime::Zero());
  channel.Send(SampleMessage(MsgType::kEpochEnd), SimTime::Zero());
  ASSERT_TRUE(channel.NextArrival().has_value());
  EXPECT_EQ(*channel.NextArrival(), *a1);
}

}  // namespace
}  // namespace hbft
