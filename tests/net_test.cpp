// Network tests: message serialisation round trips, wire sizes, link timing
// (including the paper's 9-messages-per-8K-block framing), FIFO delivery, and
// break semantics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/isa.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"

namespace hbft {
namespace {

Message SampleMessage(MsgType type) {
  Message msg;
  msg.type = type;
  msg.epoch = 42;
  switch (type) {
    case MsgType::kAck:
      msg.ack_seq = 17;
      break;
    case MsgType::kEnvValue:
      msg.env_seq = 5;
      msg.env_value = 0xDEADBEEFCAFEULL;
      break;
    case MsgType::kTimeSync:
      msg.tod_value = 123456789;
      break;
    case MsgType::kEpochEnd:
      break;
    case MsgType::kInterrupt: {
      msg.irq_lines = kIrqDisk;
      IoCompletionPayload io;
      io.device_irq = kIrqDisk;
      io.guest_op_seq = 9;
      io.result_code = 0;
      io.has_dma_data = true;
      io.dma_guest_paddr = 0x310000;
      io.dma_data.assign(8192, 0x5A);
      msg.io = io;
      break;
    }
    case MsgType::kStateChunk:
      msg.state_kind = StateChunkKind::kPage;
      msg.state_page = 33;
      msg.state_page_count = 0;
      msg.state_data.assign(kPageBytes, 0xA5);
      break;
  }
  return msg;
}

constexpr int kNumMsgTypes = 6;

class MessageRoundTrip : public testing::TestWithParam<int> {};

TEST_P(MessageRoundTrip, SerializeDeserialize) {
  Message msg = SampleMessage(static_cast<MsgType>(GetParam()));
  msg.seq = 1234;
  auto bytes = msg.Serialize();
  EXPECT_EQ(bytes.size(), msg.WireSize());
  auto decoded = Message::Deserialize(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, msg.type);
  EXPECT_EQ(decoded->seq, msg.seq);
  EXPECT_EQ(decoded->epoch, msg.epoch);
  EXPECT_EQ(decoded->ack_seq, msg.ack_seq);
  EXPECT_EQ(decoded->env_seq, msg.env_seq);
  EXPECT_EQ(decoded->env_value, msg.env_value);
  EXPECT_EQ(decoded->tod_value, msg.tod_value);
  EXPECT_EQ(decoded->io.has_value(), msg.io.has_value());
  if (msg.io.has_value()) {
    EXPECT_EQ(decoded->io->dma_data, msg.io->dma_data);
    EXPECT_EQ(decoded->io->guest_op_seq, msg.io->guest_op_seq);
  }
  EXPECT_EQ(decoded->state_kind, msg.state_kind);
  EXPECT_EQ(decoded->state_page, msg.state_page);
  EXPECT_EQ(decoded->state_page_count, msg.state_page_count);
  EXPECT_EQ(decoded->state_data, msg.state_data);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, MessageRoundTrip, testing::Range(1, kNumMsgTypes + 1));

// Every message kind — including the interrupt variants with and without an
// I/O payload, and with and without DMA data — must report exactly the size
// it serialises to: the bandwidth model charges WireSize() for frames the
// codec would put on a real wire.
TEST(Message, WireSizeMatchesSerializedSizeForEveryKind) {
  std::vector<Message> samples;
  for (int t = 1; t <= kNumMsgTypes; ++t) {
    samples.push_back(SampleMessage(static_cast<MsgType>(t)));
  }
  Message no_io = SampleMessage(MsgType::kInterrupt);
  no_io.io.reset();
  samples.push_back(no_io);
  Message empty_dma = SampleMessage(MsgType::kInterrupt);
  empty_dma.io->has_dma_data = false;
  empty_dma.io->dma_data.clear();
  samples.push_back(empty_dma);
  Message zero_run = SampleMessage(MsgType::kStateChunk);
  zero_run.state_kind = StateChunkKind::kZeroRun;
  zero_run.state_page_count = 17;
  zero_run.state_data.clear();
  samples.push_back(zero_run);
  for (const Message& msg : samples) {
    EXPECT_EQ(msg.Serialize().size(), msg.WireSize())
        << "kind " << static_cast<int>(msg.type);
  }
}

// Every strict prefix of every kind's encoding must be rejected — no
// out-of-bounds read, no silent short parse.
TEST(Message, DeserializeRejectsEveryTruncation) {
  for (int t = 1; t <= kNumMsgTypes; ++t) {
    Message msg = SampleMessage(static_cast<MsgType>(t));
    if (msg.io.has_value()) {
      msg.io->dma_data.resize(48);  // Small payload keeps the sweep fast.
    }
    if (msg.type == MsgType::kStateChunk) {
      msg.state_data.resize(48);
    }
    auto bytes = msg.Serialize();
    for (size_t len = 0; len < bytes.size(); ++len) {
      std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + static_cast<ptrdiff_t>(len));
      EXPECT_FALSE(Message::Deserialize(prefix).has_value())
          << "kind " << t << " accepted a " << len << "-byte prefix of "
          << bytes.size() << " bytes";
    }
    ASSERT_TRUE(Message::Deserialize(bytes).has_value());
    // Trailing garbage is rejected explicitly, for every kind.
    bytes.push_back(0);
    EXPECT_FALSE(Message::Deserialize(bytes).has_value()) << "kind " << t;
  }
}

// Non-canonical flag bytes (the encoder only emits 0 or 1) are corruption,
// not a message: accepting them would re-serialise to different bytes — a
// silent misparse.
TEST(Message, DeserializeRejectsNonCanonicalFlagBytes) {
  auto bytes = SampleMessage(MsgType::kInterrupt).Serialize();
  const size_t has_io_pos = 1 + 8 + 8 + 4;  // type + seq + epoch + irq_lines.
  ASSERT_EQ(bytes[has_io_pos], 1u);
  auto mutated = bytes;
  mutated[has_io_pos] = 2;
  EXPECT_FALSE(Message::Deserialize(mutated).has_value());
  const size_t has_dma_pos = has_io_pos + 1 + 4 + 8 + 4;  // + io header fields.
  ASSERT_EQ(bytes[has_dma_pos], 1u);
  mutated = bytes;
  mutated[has_dma_pos] = 0xFF;
  EXPECT_FALSE(Message::Deserialize(mutated).has_value());
  // The state-chunk kind byte only takes the three encoder-emitted values.
  auto chunk = SampleMessage(MsgType::kStateChunk).Serialize();
  const size_t kind_pos = 1 + 8 + 8;  // type + seq + epoch.
  ASSERT_EQ(chunk[kind_pos], static_cast<uint8_t>(StateChunkKind::kPage));
  chunk[kind_pos] = 3;
  EXPECT_FALSE(Message::Deserialize(chunk).has_value());
}

TEST(Message, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Message::Deserialize({}).has_value());
  EXPECT_FALSE(Message::Deserialize({0xFF, 1, 2, 3}).has_value());
  auto bytes = SampleMessage(MsgType::kAck).Serialize();
  bytes.pop_back();  // Truncated.
  EXPECT_FALSE(Message::Deserialize(bytes).has_value());
  bytes = SampleMessage(MsgType::kAck).Serialize();
  bytes.push_back(0);  // Trailing junk.
  EXPECT_FALSE(Message::Deserialize(bytes).has_value());
}

TEST(LinkModel, PaperFraming8KBlockIsNineFrames) {
  Message msg = SampleMessage(MsgType::kInterrupt);  // 8K DMA payload.
  LinkModel eth = LinkModel::Ethernet10();
  EXPECT_EQ(eth.FrameCount(msg.WireSize()), 9u);  // The paper's "9 messages".
  // Small control messages are single frames.
  EXPECT_EQ(eth.FrameCount(SampleMessage(MsgType::kAck).WireSize()), 1u);
}

TEST(LinkModel, TransferTimeScalesWithBandwidth) {
  LinkModel eth = LinkModel::Ethernet10();
  LinkModel atm = LinkModel::Atm155();
  size_t bytes = 8300;
  SimTime t_eth = eth.TransferTime(bytes);
  SimTime t_atm = atm.TransferTime(bytes);
  EXPECT_LT(t_atm, t_eth);
  // Ethernet: 9 frames * 90us + 8300*8/10Mbps = 810us + 6640us.
  EXPECT_NEAR(t_eth.micros_f(), 810.0 + 6640.0, 1.0);
}

TEST(Channel, FifoDeliveryWithLatency) {
  Channel channel(LinkModel::Ethernet10());
  Message m1 = SampleMessage(MsgType::kTimeSync);
  Message m2 = SampleMessage(MsgType::kEpochEnd);
  SimTime t0 = SimTime::Micros(1000);
  auto a1 = channel.Send(m1, t0);
  auto a2 = channel.Send(m2, t0);
  ASSERT_TRUE(a1.has_value());
  ASSERT_TRUE(a2.has_value());
  EXPECT_LT(*a1, *a2);  // Serialised on the wire.
  EXPECT_FALSE(channel.Receive(t0).has_value());  // Nothing arrived yet.
  auto r1 = channel.Receive(*a1);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->type, MsgType::kTimeSync);
  EXPECT_FALSE(channel.Receive(*a1).has_value());  // m2 still in flight.
  auto r2 = channel.Receive(*a2);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->type, MsgType::kEpochEnd);
}

TEST(Channel, SequenceNumbersAssignedInOrder) {
  Channel channel(LinkModel::Ethernet10());
  channel.Send(SampleMessage(MsgType::kEpochEnd), SimTime::Zero());
  channel.Send(SampleMessage(MsgType::kEpochEnd), SimTime::Zero());
  auto arrival = channel.Send(SampleMessage(MsgType::kEpochEnd), SimTime::Zero());
  EXPECT_EQ(channel.messages_enqueued(), 3u);
  EXPECT_EQ(channel.messages_sent(), 3u);  // Ideal wire: one send per message.
  channel.Receive(*arrival);
  channel.Receive(*arrival);
  auto third = channel.Receive(*arrival);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->seq, 2u);
}

// Regression (messages_sent/next_seq conflation): retransmissions add wire
// sends but must not mint new sequence numbers, and the protocol's ack
// universe (messages_enqueued) must stay put.
TEST(Channel, RetransmitCountsWireSendsNotSequenceNumbers) {
  LinkFaults faults;
  faults.drop_probability = 1e-9;  // Enable the fault machinery, lose nothing.
  Channel channel(LinkModel::Ethernet10(), ChannelMode::kOrdered, faults, /*fault_seed=*/7);
  channel.Send(SampleMessage(MsgType::kEpochEnd), SimTime::Zero());
  channel.Send(SampleMessage(MsgType::kEpochEnd), SimTime::Zero());
  EXPECT_EQ(channel.messages_enqueued(), 2u);
  EXPECT_EQ(channel.messages_sent(), 2u);

  // Nothing acked: the whole window re-sends once the head has aged a full
  // timeout past its serialisation end.
  auto result = channel.MaybeRetransmit(SimTime::Millis(5));
  EXPECT_EQ(result.frames, 2u);
  EXPECT_EQ(channel.messages_enqueued(), 2u);  // Seq source untouched.
  EXPECT_EQ(channel.messages_sent(), 4u);      // Wire sends ran ahead.
  EXPECT_EQ(channel.counters().retransmits, 2u);

  // Retransmitted copies carry the original sequence numbers; the receiver
  // delivers each message exactly once.
  SimTime late = SimTime::Seconds(1);
  auto m0 = channel.Receive(late);
  auto m1 = channel.Receive(late);
  ASSERT_TRUE(m0.has_value() && m1.has_value());
  EXPECT_EQ(m0->seq, 0u);
  EXPECT_EQ(m1->seq, 1u);
  EXPECT_FALSE(channel.Receive(late).has_value());  // Duplicates discarded.
  EXPECT_EQ(channel.counters().rx_duplicates, 2u);
  EXPECT_TRUE(channel.TakeReackRequested());

  // A cumulative ack empties the window: no further retransmissions.
  channel.OnCumulativeAck(2, late);
  EXPECT_FALSE(channel.NeedsRetransmitTimer());
  EXPECT_EQ(channel.MaybeRetransmit(SimTime::Seconds(2)).frames, 0u);
}

TEST(Channel, BreakDropsFutureSendsButDeliversInFlight) {
  Channel channel(LinkModel::Ethernet10());
  auto arrival = channel.Send(SampleMessage(MsgType::kTimeSync), SimTime::Zero());
  ASSERT_TRUE(arrival.has_value());
  // Break after the frame finished serialising (arrival minus propagation)
  // but before it arrives: a genuinely-sent frame still lands.
  channel.Break(*arrival - LinkModel::Ethernet10().propagation);
  EXPECT_TRUE(channel.Receive(*arrival).has_value());
  // Sent after the break: vanishes.
  EXPECT_FALSE(channel.Send(SampleMessage(MsgType::kEpochEnd), *arrival).has_value());
  EXPECT_EQ(channel.DrainTime(), *arrival);
}

// Regression (Break/occupancy carryover): a crash mid-serialisation
// truncates the frame on the wire — it must not arrive, and it must not
// leave phantom occupancy (busy_until_/DrainTime) behind for whoever
// consults the channel afterwards (the failure detector, a promoted
// backup's re-protection path).
TEST(Channel, BreakMidSerializationTruncatesAndClearsOccupancy) {
  Channel channel(LinkModel::Ethernet10());
  SimTime prop = LinkModel::Ethernet10().propagation;
  // First frame fully serialised; second one queued behind it.
  auto a1 = channel.Send(SampleMessage(MsgType::kTimeSync), SimTime::Zero());
  auto a2 = channel.Send(SampleMessage(MsgType::kEpochEnd), SimTime::Zero());
  ASSERT_TRUE(a1.has_value() && a2.has_value());
  ASSERT_LT(*a1, *a2);
  // Crash while frame 2 is still being pushed onto the wire.
  SimTime crash = *a1 - prop + SimTime::Micros(1);
  ASSERT_LT(crash, *a2 - prop);
  channel.Break(crash);
  // Frame 1 arrives; frame 2 was truncated and never does.
  EXPECT_TRUE(channel.Receive(*a1).has_value());
  EXPECT_FALSE(channel.Receive(*a2 + SimTime::Seconds(1)).has_value());
  // The drain view reflects only what was genuinely sent: no stale
  // occupancy from the truncated frame.
  EXPECT_EQ(channel.DrainTime(), *a1);
  EXPECT_FALSE(channel.LastPendingArrival().has_value());
}

// A crash with a non-empty queue keeps exactly the fully-serialised prefix.
TEST(Channel, BreakWithQueuedFramesKeepsSerialisedPrefix) {
  Channel channel(LinkModel::Ethernet10());
  SimTime prop = LinkModel::Ethernet10().propagation;
  std::vector<SimTime> arrivals;
  for (int i = 0; i < 4; ++i) {
    auto a = channel.Send(SampleMessage(MsgType::kEpochEnd), SimTime::Zero());
    ASSERT_TRUE(a.has_value());
    arrivals.push_back(*a);
  }
  // Crash after the second frame's serialisation completes.
  channel.Break(arrivals[1] - prop);
  SimTime late = arrivals[3] + SimTime::Seconds(1);
  EXPECT_TRUE(channel.Receive(late).has_value());
  EXPECT_TRUE(channel.Receive(late).has_value());
  EXPECT_FALSE(channel.Receive(late).has_value());  // Frames 3 and 4 truncated.
  EXPECT_EQ(channel.DrainTime(), arrivals[1]);
}

// Property fuzz: deserialisation of arbitrarily mutated bytes must never
// misbehave — either reject or produce a message that re-serialises
// canonically. (The channel is trusted in the simulation, but a codec that
// chokes on corruption is a latent bug.)
class MessageFuzz : public testing::TestWithParam<int> {};

TEST_P(MessageFuzz, MutatedBytesNeverCrashCodec) {
  DeterministicRng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  for (int round = 0; round < 500; ++round) {
    MsgType type = static_cast<MsgType>(1 + rng.NextBelow(kNumMsgTypes));
    Message msg = SampleMessage(type);
    if (msg.io.has_value()) {
      msg.io->dma_data.resize(rng.NextBelow(64));  // Small payloads for speed.
    }
    if (msg.type == MsgType::kStateChunk) {
      msg.state_data.resize(rng.NextBelow(64));
    }
    auto bytes = msg.Serialize();
    // Mutate 1-4 positions and/or truncate.
    size_t mutations = 1 + rng.NextBelow(4);
    for (size_t m = 0; m < mutations && !bytes.empty(); ++m) {
      bytes[rng.NextBelow(bytes.size())] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    }
    if (rng.NextBool(0.3) && !bytes.empty()) {
      bytes.resize(rng.NextBelow(bytes.size()));
    }
    auto decoded = Message::Deserialize(bytes);
    if (decoded.has_value()) {
      // Whatever was accepted must be canonical: re-serialising reproduces
      // the accepted bytes exactly (anything else is a silent misparse).
      auto re = decoded->Serialize();
      EXPECT_EQ(re, bytes);
      EXPECT_EQ(re.size(), decoded->WireSize());
      auto again = Message::Deserialize(re);
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(again->Serialize(), re);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageFuzz, testing::Range(0, 4));

TEST(Channel, NextArrivalExposesEarliestInFlight) {
  Channel channel(LinkModel::Ethernet10());
  EXPECT_FALSE(channel.NextArrival().has_value());
  auto a1 = channel.Send(SampleMessage(MsgType::kEpochEnd), SimTime::Zero());
  channel.Send(SampleMessage(MsgType::kEpochEnd), SimTime::Zero());
  ASSERT_TRUE(channel.NextArrival().has_value());
  EXPECT_EQ(*channel.NextArrival(), *a1);
}

}  // namespace
}  // namespace hbft
