// Guest (MiniOS + workloads) tests: the image assembles, boots on the bare
// machine, syscalls work, drivers retry on uncertain completions, the clock
// ticks, and every workload runs to a clean exit with a stable checksum.
#include <gtest/gtest.h>

#include "guest/image.hpp"
#include "guest/minios.hpp"
#include "guest/workloads.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace {

TEST(GuestImage, AssemblesWithInterfaceSymbols) {
  const GuestImageBundle& bundle = GetGuestImage();
  EXPECT_TRUE(bundle.image.HasSymbol("boot"));
  EXPECT_TRUE(bundle.image.HasSymbol("trap_entry"));
  EXPECT_TRUE(bundle.image.HasSymbol("__wait_loop"));
  EXPECT_TRUE(bundle.image.HasSymbol("__wait_loop_end"));
  EXPECT_TRUE(bundle.image.HasSymbol("user_entry"));
  EXPECT_EQ(bundle.program.entry_pc, 0u);
  EXPECT_GT(bundle.program.wait_loop_end, bundle.program.wait_loop_begin);
  // The wait loop is the canonical 3-instruction spin.
  EXPECT_EQ(bundle.program.wait_loop_end - bundle.program.wait_loop_begin, 12u);
}

TEST(GuestBare, HelloRunsToCleanExit) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kHello;
  ScenarioResult result = RunBare(spec);
  ASSERT_TRUE(result.completed) << "timed_out=" << result.timed_out
                                << " deadlocked=" << result.deadlocked;
  EXPECT_EQ(result.exited_flag, 1u) << "panic code " << result.panic_code;
  EXPECT_EQ(result.exit_code, 0u);
  EXPECT_EQ(result.console_output, "hello from ft-vm\ndisk ok\n");
}

TEST(GuestBare, ClockTicksDuringRun) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kCpu;
  spec.iterations = 20000;  // ~3M instructions = 60 ms at 50 MIPS.
  ScenarioResult result = RunBare(spec);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.exited_flag, 1u);
  // 10 ms tick period: a 60+ ms run must observe several ticks.
  EXPECT_GE(result.ticks, 4u);
}

TEST(GuestBare, CpuChecksumIsDeterministic) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kCpu;
  spec.iterations = 5000;
  ScenarioResult a = RunBare(spec);
  ScenarioResult b = RunBare(spec);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.exit_code, 0u);
  EXPECT_EQ(a.guest_checksum, b.guest_checksum);
  EXPECT_EQ(a.completion_time.picos(), b.completion_time.picos());
}

TEST(GuestBare, DiskWriteThenReadSeesData) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kDiskWrite;
  spec.iterations = 8;
  spec.compute_burst = 100;
  spec.num_blocks = 8;
  ScenarioResult write_run = RunBare(spec);
  ASSERT_TRUE(write_run.completed);
  EXPECT_EQ(write_run.exited_flag, 1u);
  EXPECT_EQ(write_run.exit_code, 0u);
  // Every op reached the disk.
  size_t writes = 0;
  for (const auto& entry : write_run.disk_trace) {
    if (entry.is_write && entry.performed) {
      ++writes;
    }
  }
  EXPECT_EQ(writes, 8u);
}

TEST(GuestBare, DiskReadChecksumDeterministic) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kDiskRead;
  spec.iterations = 6;
  spec.compute_burst = 50;
  spec.num_blocks = 16;
  ScenarioResult a = RunBare(spec);
  ScenarioResult b = RunBare(spec);
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.exited_flag, 1u);
  EXPECT_EQ(a.guest_checksum, b.guest_checksum);
}

TEST(GuestBare, DriverRetriesUncertainCompletions) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kDiskWrite;
  spec.iterations = 10;
  spec.num_blocks = 4;
  DiskFaultPlan faults;
  faults.uncertain_probability = 0.3;
  faults.performed_when_uncertain = 0.5;
  ScenarioResult result = Scenario::Bare(spec).DiskFaults(faults).Run();
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.exited_flag, 1u) << "panic " << result.panic_code;
  // With retries, the performed operation count can exceed the workload's.
  size_t performed = 0;
  size_t uncertain = 0;
  for (const auto& entry : result.disk_trace) {
    if (entry.performed) {
      ++performed;
    }
    if (entry.status == DiskStatus::kUncertain) {
      ++uncertain;
    }
  }
  EXPECT_GE(performed, 10u);
  EXPECT_GT(uncertain, 0u);
}

TEST(GuestBare, HeapDemandZeroFaultPath) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kHeap;
  spec.iterations = 16;
  ScenarioResult result = RunBare(spec);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.exited_flag, 1u) << "panic " << result.panic_code;
  EXPECT_EQ(result.exit_code, 0u);
  // Stored counter values 16..1 read back: sum = 136.
  EXPECT_EQ(result.guest_checksum, 136u);
}

TEST(GuestBare, TimeMonotonic) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTime;
  spec.iterations = 50;
  ScenarioResult result = RunBare(spec);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.exit_code, 0u) << "monotonicity violated";
}

TEST(GuestBare, EchoConsoleInput) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kEcho;
  ScenarioResult result = Scenario::Bare(spec).ConsoleInput("hi!q").Run();
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.exited_flag, 1u);
  EXPECT_EQ(result.console_output, "hi!");
  EXPECT_EQ(result.guest_checksum, 3u);
}

TEST(GuestBare, TxnLogWritesAllRecords) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTxnLog;
  spec.iterations = 12;
  spec.num_blocks = 4;
  ScenarioResult result = RunBare(spec);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.exited_flag, 1u);
  EXPECT_EQ(result.console_output, "012345678901\n");
}

}  // namespace
}  // namespace hbft
