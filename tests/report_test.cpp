// perf/report helper tests: exact nearest-rank percentiles on small samples
// and time-based availability from outage windows — the fleet's measurement
// arithmetic, checked against hand-computed values.
#include <gtest/gtest.h>

#include <vector>

#include "perf/report.hpp"

namespace hbft {
namespace {

TEST(Percentile, NearestRankOnSmallSamples) {
  // Nearest-rank: rank = ceil(pct/100 * N), 1-indexed. For {1,2,3,4}:
  // p50 -> rank 2, p75 -> rank 3, p76 -> rank 4, p100 -> rank 4.
  const std::vector<double> s = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(PercentileNearestRank(s, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(s, 25.0), 1.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(s, 75.0), 3.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(s, 76.0), 4.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(s, 100.0), 4.0);
  // Rank clamps to [1, N]: pct 0 is the minimum, pct > 100 the maximum.
  EXPECT_DOUBLE_EQ(PercentileNearestRank(s, 0.0), 1.0);
}

TEST(Percentile, SingleSampleIsEveryPercentile) {
  const std::vector<double> s = {7.5};
  for (double pct : {0.0, 50.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(PercentileNearestRank(s, pct), 7.5);
  }
}

TEST(Percentile, SummarizeEmptySamples) {
  LatencySummary summary = SummarizeLatencies({});
  EXPECT_EQ(summary.count, 0u);
  EXPECT_DOUBLE_EQ(summary.mean, 0.0);
  EXPECT_DOUBLE_EQ(summary.p50, 0.0);
  EXPECT_DOUBLE_EQ(summary.p999, 0.0);
  EXPECT_DOUBLE_EQ(summary.max, 0.0);
}

TEST(Percentile, SummarizeOrderStatistics) {
  // 1..100 shuffled (reverse order): sorting is the summary's job.
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) {
    samples.push_back(static_cast<double>(i));
  }
  LatencySummary summary = SummarizeLatencies(std::move(samples));
  EXPECT_EQ(summary.count, 100u);
  EXPECT_DOUBLE_EQ(summary.mean, 50.5);
  EXPECT_DOUBLE_EQ(summary.p50, 50.0);
  EXPECT_DOUBLE_EQ(summary.p90, 90.0);
  EXPECT_DOUBLE_EQ(summary.p99, 99.0);
  EXPECT_DOUBLE_EQ(summary.p999, 100.0);  // ceil(0.999*100) = 100.
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
  // The invariant diff_bench.py enforces on fig7.
  EXPECT_LE(summary.p50, summary.p99);
  EXPECT_LE(summary.p99, summary.p999);
}

TEST(Availability, MergesOverlapsAndClipsToDuration) {
  // [10,20] and [15,30] merge to [10,30]; [40,50] clips to [40,45].
  std::vector<OutageWindow> windows = {
      {SimTime::Micros(40), SimTime::Micros(50)},
      {SimTime::Micros(10), SimTime::Micros(20)},
      {SimTime::Micros(15), SimTime::Micros(30)},
  };
  EXPECT_EQ(MergedOutageTime(windows, SimTime::Micros(45)), SimTime::Micros(25));
  EXPECT_NEAR(AvailabilityFromOutages(windows, SimTime::Micros(45)), 1.0 - 25.0 / 45.0, 1e-12);
}

TEST(Availability, BackToBackWindowsDoNotDoubleCount) {
  std::vector<OutageWindow> windows = {
      {SimTime::Micros(0), SimTime::Micros(10)},
      {SimTime::Micros(10), SimTime::Micros(20)},
      {SimTime::Micros(0), SimTime::Micros(20)},  // Fully contained.
  };
  EXPECT_EQ(MergedOutageTime(windows, SimTime::Micros(100)), SimTime::Micros(20));
  EXPECT_NEAR(AvailabilityFromOutages(windows, SimTime::Micros(100)), 0.8, 1e-12);
}

TEST(Availability, EdgeCases) {
  // No outages: fully available.
  EXPECT_DOUBLE_EQ(AvailabilityFromOutages({}, SimTime::Millis(5)), 1.0);
  // Outage covering the whole run: zero.
  EXPECT_DOUBLE_EQ(AvailabilityFromOutages({{SimTime::Zero(), SimTime::Millis(5)}},
                                           SimTime::Millis(5)),
                   0.0);
  // A window entirely past the measured duration contributes nothing.
  EXPECT_DOUBLE_EQ(AvailabilityFromOutages({{SimTime::Millis(8), SimTime::Millis(9)}},
                                           SimTime::Millis(5)),
                   1.0);
  // Degenerate empty duration: available iff there was no outage at all.
  EXPECT_DOUBLE_EQ(AvailabilityFromOutages({}, SimTime::Zero()), 1.0);
  EXPECT_DOUBLE_EQ(AvailabilityFromOutages({{SimTime::Zero(), SimTime::Zero()}},
                                           SimTime::Zero()),
                   0.0);
}

}  // namespace
}  // namespace hbft
