// Figure 2 — CPU-intensive workload: measured and predicted normalized
// performance vs epoch length (original protocol, 10 Mbps Ethernet).
//
// Paper reference points (measured): NP(1K)=22.24, NP(2K)=11.83,
// NP(4K)=6.50, NP(8K)=3.83; predicted NP(32K)=1.84 and NP(385K)=1.24.
#include <cstdio>

#include "bench_util.hpp"
#include "perf/models.hpp"
#include "perf/report.hpp"

namespace hbft {
namespace {

int RunFig2() {
  std::printf("=== Figure 2: CPU-intensive workload, NP vs epoch length ===\n");
  std::printf("workload: Dhrystone stand-in, %u iterations (1/100 paper scale)\n\n",
              kCpuIterations);

  WorkloadSpec spec = BenchCpuSpec();
  ScenarioResult bare;
  if (!RunBareChecked(spec, &bare)) {
    return 1;
  }
  std::printf("bare runtime N = %.4f s (%u clock ticks)\n\n", bare.completion_time.seconds(),
              bare.ticks);

  const double paper_measured[] = {22.24, 11.83, 6.50, 3.83};
  const uint64_t measured_els[] = {1024, 2048, 4096, 8192};

  TableReporter table({"EL (instr)", "NP measured (sim)", "NP model", "NP paper"});
  for (size_t i = 0; i < 4; ++i) {
    uint64_t el = measured_els[i];
    double sim = MeasureNp(spec, bare, el, ProtocolVariant::kOriginal);
    double model = ModelNpCpu(static_cast<double>(el), false, ModelLink::kEthernet10);
    table.AddRow({std::to_string(el), TableReporter::Num(sim), TableReporter::Num(model),
                  TableReporter::Num(paper_measured[i])});
  }
  // Extended measured points beyond the paper's set.
  for (uint64_t el : {uint64_t{16384}, uint64_t{32768}}) {
    double sim = MeasureNp(spec, bare, el, ProtocolVariant::kOriginal);
    double model = ModelNpCpu(static_cast<double>(el), false, ModelLink::kEthernet10);
    table.AddRow({std::to_string(el), TableReporter::Num(sim), TableReporter::Num(model), "-"});
  }
  table.Print();

  std::printf("\npredicted curve (model), 1K..32K plus the HP-UX epoch cap:\n");
  TableReporter curve({"EL (instr)", "NP predicted"});
  for (uint64_t el = 1024; el <= 32768; el *= 2) {
    curve.AddRow({std::to_string(el),
                  TableReporter::Num(ModelNpCpu(static_cast<double>(el), false,
                                                ModelLink::kEthernet10))});
  }
  curve.AddRow({"385000 (endpoint)",
                TableReporter::Num(ModelNpCpu(385000.0, false, ModelLink::kEthernet10))});
  curve.Print();

  std::printf("\npaper: NP(32K)=1.84 predicted; NP(385K)=1.24 predicted\n");
  return 0;
}

}  // namespace
}  // namespace hbft

int main() { return hbft::RunFig2(); }
