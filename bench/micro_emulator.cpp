// Microbenchmarks (google-benchmark): raw emulator throughput, trap
// round-trip, message codec, and channel timing math. These quantify the
// substrate the reproduction runs on (the simulator itself, not the paper's
// system).
#include <benchmark/benchmark.h>

#include "guest/image.hpp"
#include "guest/workloads.hpp"
#include "machine/machine.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"

namespace hbft {
namespace {

void BM_EmulatorAluLoop(benchmark::State& state) {
  // addi/bne loop: 3 instructions per iteration.
  auto assembled = Assemble(R"ASM(
.org 0
start:
    li t0, 0
    li t1, 1000000000
loop:
    addi t0, t0, 1
    bne t0, t1, loop
    halt
)ASM");
  Machine machine(MachineConfig{});
  machine.LoadImage(assembled.value());
  machine.cpu().pc = 0;
  uint64_t executed = 0;
  for (auto _ : state) {
    MachineExit exit = machine.Run(100000);
    executed += exit.executed;
    benchmark::DoNotOptimize(machine.cpu().gpr[8]);
  }
  state.counters["instr/s"] =
      benchmark::Counter(static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EmulatorAluLoop);

void BM_EmulatorMemoryLoop(benchmark::State& state) {
  auto assembled = Assemble(R"ASM(
.org 0
start:
    li t0, 0x10000
    li t1, 0x20000
loop:
    lw t2, 0(t0)
    addi t2, t2, 3
    sw t2, 0(t0)
    addi t0, t0, 4
    bne t0, t1, loop
    li t0, 0x10000
    j loop
)ASM");
  Machine machine(MachineConfig{});
  machine.LoadImage(assembled.value());
  machine.cpu().pc = 0;
  uint64_t executed = 0;
  for (auto _ : state) {
    MachineExit exit = machine.Run(100000);
    executed += exit.executed;
  }
  state.counters["instr/s"] =
      benchmark::Counter(static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EmulatorMemoryLoop);

void BM_GuestBootToUser(benchmark::State& state) {
  const GuestImageBundle& bundle = GetGuestImage();
  for (auto _ : state) {
    MachineConfig config;
    config.trap_mode = TrapMode::kDirect;
    Machine machine(config);
    machine.LoadImage(bundle.image);
    machine.cpu().pc = bundle.program.entry_pc;
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kCpu;
    spec.iterations = 1;
    PatchWorkloadParams(&machine.memory(), spec);
    MachineExit exit = machine.Run(100000);
    benchmark::DoNotOptimize(exit.executed);
  }
}
BENCHMARK(BM_GuestBootToUser);

void BM_MessageCodecInterrupt8K(benchmark::State& state) {
  Message msg;
  msg.type = MsgType::kInterrupt;
  msg.epoch = 17;
  msg.irq_lines = kIrqDisk;
  IoCompletionPayload io;
  io.device_irq = kIrqDisk;
  io.guest_op_seq = 123;
  io.has_dma_data = true;
  io.dma_data.assign(8192, 0xAB);
  msg.io = io;
  for (auto _ : state) {
    auto bytes = msg.Serialize();
    auto decoded = Message::Deserialize(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_MessageCodecInterrupt8K);

void BM_ChannelTiming(benchmark::State& state) {
  Channel channel(LinkModel::Ethernet10());
  Message msg;
  msg.type = MsgType::kAck;
  SimTime now = SimTime::Zero();
  for (auto _ : state) {
    auto arrival = channel.Send(msg, now);
    benchmark::DoNotOptimize(arrival);
    now = *arrival;
    benchmark::DoNotOptimize(channel.Receive(now));
  }
}
BENCHMARK(BM_ChannelTiming);

}  // namespace
}  // namespace hbft

BENCHMARK_MAIN();
