// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures. Each harness prints the same rows/series the paper
// reports: measured simulation values next to the closed-form model and the
// paper's published numbers.
#ifndef HBFT_BENCH_BENCH_UTIL_HPP_
#define HBFT_BENCH_BENCH_UTIL_HPP_

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "guest/workloads.hpp"
#include "isa/assembler.hpp"
#include "machine/machine.hpp"
#include "sim/scenario.hpp"

namespace hbft {

// Workload scale relative to the paper (documented in EXPERIMENTS.md):
// normalized performance is a ratio, so instruction-mix-preserving scaling
// leaves the curves' shape intact while keeping harnesses fast.
inline constexpr uint32_t kCpuIterations = 26000;   // ~4.2e6 instr = 1/100 scale.
inline constexpr uint32_t kIoOperations = 64;       // vs the paper's 2048.

inline WorkloadSpec BenchCpuSpec() {
  WorkloadSpec spec = WorkloadSpec::PaperCpu();
  spec.iterations = kCpuIterations;
  return spec;
}

inline WorkloadSpec BenchReadSpec() { return WorkloadSpec::PaperDiskRead(kIoOperations); }
inline WorkloadSpec BenchWriteSpec() { return WorkloadSpec::PaperDiskWrite(kIoOperations); }

// Runs the bare reference for `spec` and checks it — the single copy of the
// run-and-complain sequence every harness used to paste. Returns false (with
// the standard message on stderr) when the reference run failed.
inline bool RunBareChecked(const WorkloadSpec& spec, ScenarioResult* out,
                           const char* label = "bare reference") {
  *out = RunBare(spec);
  if (!out->completed || out->exited_flag != 1) {
    std::fprintf(stderr, "%s run failed\n", label);
    return false;
  }
  return true;
}

struct NpPoint {
  uint64_t epoch_len = 0;
  double np = 0.0;
};

// --- Fig 5 (repair): live state-transfer resync cases -----------------------
//
// One case = one replicated run with a healthy-chain rejoin at 8 ms: the
// standing backup streams the snapshot while the chain keeps serving. Swept
// over memory size (zero-run elision keeps idle RAM nearly free), workload
// dirty rate (disk DMA re-dirties pages mid-transfer, forcing delta rounds),
// and the wire (ideal vs 5% loss/reorder: go-back-N pays in retransmits and
// latency, never correctness).
struct ResyncCase {
  const char* group;  // "size" or "dirty".
  const char* workload;
  uint32_t ram_mb = 4;
  double loss = 0.0;
  WorkloadSpec spec;
};

inline std::vector<ResyncCase> ResyncBenchCases(bool quick) {
  WorkloadSpec cpu = WorkloadSpec::PaperCpu();
  cpu.iterations = 12000;  // ~80 ms: outlives the transfer.
  WorkloadSpec write_spec = WorkloadSpec::PaperDiskWrite(6);
  WorkloadSpec read_spec = WorkloadSpec::PaperDiskRead(6);

  std::vector<ResyncCase> cases;
  const uint32_t sizes[] = {4, 8, 16};
  for (uint32_t ram_mb : sizes) {
    cases.push_back(ResyncCase{"size", "cpu", ram_mb, 0.0, cpu});
    if (quick) {
      break;  // One size row keeps the smoke-test shape without the sweep.
    }
  }
  struct Dirty {
    const char* name;
    const WorkloadSpec* spec;
  };
  const Dirty dirty[] = {{"cpu", &cpu}, {"diskwrite", &write_spec}, {"diskread", &read_spec}};
  for (const Dirty& d : dirty) {
    for (double loss : {0.0, 0.05}) {
      cases.push_back(ResyncCase{"dirty", d.name, 4, loss, *d.spec});
      if (quick && loss > 0.0) {
        break;
      }
    }
    if (quick && d.spec == &write_spec) {
      break;  // Quick: cpu (both links) + diskwrite (ideal only).
    }
  }
  return cases;
}

inline ScenarioResult RunResyncCase(const ResyncCase& c) {
  Scenario scenario = Scenario::Replicated(c.spec)
                          .Epoch(4096)
                          .RamBytes(c.ram_mb * 1024u * 1024u)
                          .RejoinAtTime(SimTime::Millis(8));
  if (c.loss > 0.0) {
    scenario.LinkFaults(LinkFaults::SymmetricLoss(c.loss));
  }
  return scenario.Run();
}

// --- Fig 6 (this reproduction's extension): interpreter throughput ----------
//
// Host-side speed of the two dispatch engines over the same guest work. The
// kernel mirrors the CPU workload's instruction mix (arithmetic, a word-copy
// loop, leaf calls) on a bare machine with no embedder in the loop, so the
// measurement isolates dispatch cost. `instructions` and `checksum` are
// deterministic (they witness that both engines did identical work); only
// the host-clock fields vary run to run.
struct InterpThroughput {
  uint64_t instructions = 0;
  uint32_t checksum = 0;       // Guest-computed result (determinism witness).
  double host_ms = 0.0;
  double mips = 0.0;
  TranslationCache::Stats tcache;
};

inline InterpThroughput MeasureInterpThroughput(InterpMode mode, uint32_t outer_iterations) {
  char source[2048];
  std::snprintf(source, sizeof(source), R"(
    li r1, %u
    li r2, 0x9E3779B9
    li r3, 0x2000
outer:
    add r2, r2, r1
    li r4, 16
copy:
    slli r5, r4, 2
    add r6, r3, r5
    sw r2, 0(r6)
    lw r7, 0(r6)
    add r2, r2, r7
    addi r4, r4, -1
    bnez r4, copy
    call leaf
    xor r2, r2, r9
    addi r1, r1, -1
    bnez r1, outer
    sw r2, 0x1F00(zero)
    halt
leaf:
    slli r9, r2, 3
    xor r9, r9, r2
    srli r10, r9, 5
    add r9, r9, r10
    ret
)",
                static_cast<unsigned>(outer_iterations));
  auto assembled = Assemble(source);
  if (!assembled.ok()) {
    std::fprintf(stderr, "fig6 kernel failed to assemble: %s\n",
                 assembled.error().ToString().c_str());
    return {};
  }
  MachineConfig config;
  config.trap_mode = TrapMode::kDirect;
  config.interp = mode;
  Machine machine(config);
  machine.LoadImage(assembled.value());
  machine.cpu().pc = 0;
  auto start = std::chrono::steady_clock::now();
  MachineExit exit = machine.Run(UINT64_MAX);
  auto stop = std::chrono::steady_clock::now();
  if (exit.kind != ExitKind::kHalt) {
    std::fprintf(stderr, "fig6 kernel did not halt (exit kind %d)\n",
                 static_cast<int>(exit.kind));
    return {};
  }
  InterpThroughput result;
  result.instructions = machine.cpu().instret;
  result.checksum = machine.memory().Read32(0x1F00);
  result.host_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  result.mips = result.host_ms > 0.0
                    ? static_cast<double>(result.instructions) / (result.host_ms * 1e3)
                    : 0.0;
  result.tcache = machine.tcache_stats();
  return result;
}

// End-to-end variant: the real CPU workload through the full bare scenario
// (MiniOS, devices, event loop), timed on the host clock. Simulated results
// (completion time, checksum) are dispatch-mode invariant; wall_ms is not.
struct ScenarioThroughput {
  bool ok = false;
  double sim_ms = 0.0;         // Deterministic.
  uint32_t guest_checksum = 0; // Deterministic.
  double wall_ms = 0.0;        // Host clock.
};

inline ScenarioThroughput MeasureScenarioThroughput(InterpMode mode, uint32_t iterations) {
  WorkloadSpec spec = WorkloadSpec::PaperCpu();
  spec.iterations = iterations;
  auto start = std::chrono::steady_clock::now();
  ScenarioResult result = Scenario::Bare(spec).Interp(mode).Run();
  auto stop = std::chrono::steady_clock::now();
  ScenarioThroughput out;
  out.ok = result.completed && result.exited_flag == 1;
  out.sim_ms = result.completion_time.seconds() * 1e3;
  out.guest_checksum = result.guest_checksum;
  out.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  return out;
}

// Runs the workload replicated at `epoch_len` and returns N'/N vs `bare`.
inline double MeasureNp(const WorkloadSpec& spec, const ScenarioResult& bare, uint64_t epoch_len,
                        ProtocolVariant variant, const CostModel& costs = {}) {
  ScenarioResult ft =
      Scenario::Replicated(spec).Epoch(epoch_len).Variant(variant).Costs(costs).Run();
  if (!ft.completed || ft.exited_flag != 1) {
    std::fprintf(stderr, "measurement failed at EL=%llu (completed=%d exited=%u)\n",
                 static_cast<unsigned long long>(epoch_len), ft.completed, ft.exited_flag);
    return -1.0;
  }
  return NormalizedPerformance(ft, bare);
}

}  // namespace hbft

#endif  // HBFT_BENCH_BENCH_UTIL_HPP_
