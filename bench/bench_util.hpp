// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures. Each harness prints the same rows/series the paper
// reports: measured simulation values next to the closed-form model and the
// paper's published numbers.
#ifndef HBFT_BENCH_BENCH_UTIL_HPP_
#define HBFT_BENCH_BENCH_UTIL_HPP_

#include <cstdio>
#include <string>

#include "guest/workloads.hpp"
#include "sim/scenario.hpp"

namespace hbft {

// Workload scale relative to the paper (documented in EXPERIMENTS.md):
// normalized performance is a ratio, so instruction-mix-preserving scaling
// leaves the curves' shape intact while keeping harnesses fast.
inline constexpr uint32_t kCpuIterations = 26000;   // ~4.2e6 instr = 1/100 scale.
inline constexpr uint32_t kIoOperations = 64;       // vs the paper's 2048.

inline WorkloadSpec BenchCpuSpec() {
  WorkloadSpec spec = WorkloadSpec::PaperCpu();
  spec.iterations = kCpuIterations;
  return spec;
}

inline WorkloadSpec BenchReadSpec() { return WorkloadSpec::PaperDiskRead(kIoOperations); }
inline WorkloadSpec BenchWriteSpec() { return WorkloadSpec::PaperDiskWrite(kIoOperations); }

struct NpPoint {
  uint64_t epoch_len = 0;
  double np = 0.0;
};

// Runs the workload replicated at `epoch_len` and returns N'/N vs `bare`.
inline double MeasureNp(const WorkloadSpec& spec, const ScenarioResult& bare, uint64_t epoch_len,
                        ProtocolVariant variant, const CostModel& costs = {}) {
  ScenarioResult ft =
      Scenario::Replicated(spec).Epoch(epoch_len).Variant(variant).Costs(costs).Run();
  if (!ft.completed || ft.exited_flag != 1) {
    std::fprintf(stderr, "measurement failed at EL=%llu (completed=%d exited=%u)\n",
                 static_cast<unsigned long long>(epoch_len), ft.completed, ft.exited_flag);
    return -1.0;
  }
  return NormalizedPerformance(ft, bare);
}

}  // namespace hbft

#endif  // HBFT_BENCH_BENCH_UTIL_HPP_
