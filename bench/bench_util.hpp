// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures. Each harness prints the same rows/series the paper
// reports: measured simulation values next to the closed-form model and the
// paper's published numbers.
#ifndef HBFT_BENCH_BENCH_UTIL_HPP_
#define HBFT_BENCH_BENCH_UTIL_HPP_

#include <cstdio>
#include <string>
#include <vector>

#include "guest/workloads.hpp"
#include "sim/scenario.hpp"

namespace hbft {

// Workload scale relative to the paper (documented in EXPERIMENTS.md):
// normalized performance is a ratio, so instruction-mix-preserving scaling
// leaves the curves' shape intact while keeping harnesses fast.
inline constexpr uint32_t kCpuIterations = 26000;   // ~4.2e6 instr = 1/100 scale.
inline constexpr uint32_t kIoOperations = 64;       // vs the paper's 2048.

inline WorkloadSpec BenchCpuSpec() {
  WorkloadSpec spec = WorkloadSpec::PaperCpu();
  spec.iterations = kCpuIterations;
  return spec;
}

inline WorkloadSpec BenchReadSpec() { return WorkloadSpec::PaperDiskRead(kIoOperations); }
inline WorkloadSpec BenchWriteSpec() { return WorkloadSpec::PaperDiskWrite(kIoOperations); }

// Runs the bare reference for `spec` and checks it — the single copy of the
// run-and-complain sequence every harness used to paste. Returns false (with
// the standard message on stderr) when the reference run failed.
inline bool RunBareChecked(const WorkloadSpec& spec, ScenarioResult* out,
                           const char* label = "bare reference") {
  *out = RunBare(spec);
  if (!out->completed || out->exited_flag != 1) {
    std::fprintf(stderr, "%s run failed\n", label);
    return false;
  }
  return true;
}

struct NpPoint {
  uint64_t epoch_len = 0;
  double np = 0.0;
};

// --- Fig 5 (repair): live state-transfer resync cases -----------------------
//
// One case = one replicated run with a healthy-chain rejoin at 8 ms: the
// standing backup streams the snapshot while the chain keeps serving. Swept
// over memory size (zero-run elision keeps idle RAM nearly free), workload
// dirty rate (disk DMA re-dirties pages mid-transfer, forcing delta rounds),
// and the wire (ideal vs 5% loss/reorder: go-back-N pays in retransmits and
// latency, never correctness).
struct ResyncCase {
  const char* group;  // "size" or "dirty".
  const char* workload;
  uint32_t ram_mb = 4;
  double loss = 0.0;
  WorkloadSpec spec;
};

inline std::vector<ResyncCase> ResyncBenchCases(bool quick) {
  WorkloadSpec cpu = WorkloadSpec::PaperCpu();
  cpu.iterations = 12000;  // ~80 ms: outlives the transfer.
  WorkloadSpec write_spec = WorkloadSpec::PaperDiskWrite(6);
  WorkloadSpec read_spec = WorkloadSpec::PaperDiskRead(6);

  std::vector<ResyncCase> cases;
  const uint32_t sizes[] = {4, 8, 16};
  for (uint32_t ram_mb : sizes) {
    cases.push_back(ResyncCase{"size", "cpu", ram_mb, 0.0, cpu});
    if (quick) {
      break;  // One size row keeps the smoke-test shape without the sweep.
    }
  }
  struct Dirty {
    const char* name;
    const WorkloadSpec* spec;
  };
  const Dirty dirty[] = {{"cpu", &cpu}, {"diskwrite", &write_spec}, {"diskread", &read_spec}};
  for (const Dirty& d : dirty) {
    for (double loss : {0.0, 0.05}) {
      cases.push_back(ResyncCase{"dirty", d.name, 4, loss, *d.spec});
      if (quick && loss > 0.0) {
        break;
      }
    }
    if (quick && d.spec == &write_spec) {
      break;  // Quick: cpu (both links) + diskwrite (ideal only).
    }
  }
  return cases;
}

inline ScenarioResult RunResyncCase(const ResyncCase& c) {
  Scenario scenario = Scenario::Replicated(c.spec)
                          .Epoch(4096)
                          .RamBytes(c.ram_mb * 1024u * 1024u)
                          .RejoinAtTime(SimTime::Millis(8));
  if (c.loss > 0.0) {
    scenario.LinkFaults(LinkFaults::SymmetricLoss(c.loss));
  }
  return scenario.Run();
}

// Runs the workload replicated at `epoch_len` and returns N'/N vs `bare`.
inline double MeasureNp(const WorkloadSpec& spec, const ScenarioResult& bare, uint64_t epoch_len,
                        ProtocolVariant variant, const CostModel& costs = {}) {
  ScenarioResult ft =
      Scenario::Replicated(spec).Epoch(epoch_len).Variant(variant).Costs(costs).Run();
  if (!ft.completed || ft.exited_flag != 1) {
    std::fprintf(stderr, "measurement failed at EL=%llu (completed=%d exited=%u)\n",
                 static_cast<unsigned long long>(epoch_len), ft.completed, ft.exited_flag);
    return -1.0;
  }
  return NormalizedPerformance(ft, bare);
}

}  // namespace hbft

#endif  // HBFT_BENCH_BENCH_UTIL_HPP_
