// Table 1 — Normalized performance of the original ("Old") and revised
// ("New", section 4.3) protocols for all three workloads at epoch lengths
// 1K/2K/4K/8K.
//
// Paper reference:
//   CPU:   22.24/11.83/6.50/3.83  ->  11.67/4.49/3.21/2.20
//   Write:  1.87/ 1.71/1.67/1.64  ->   1.70/1.66/1.66/1.64
//   Read:   2.32/ 2.10/2.03/1.98  ->   1.92/1.76/1.72/1.70
#include <cstdio>

#include "bench_util.hpp"
#include "perf/report.hpp"

namespace hbft {
namespace {

struct PaperRow {
  double old_np;
  double new_np;
};

int RunTable1() {
  std::printf("=== Table 1: original vs revised protocol ===\n\n");

  WorkloadSpec cpu_spec = BenchCpuSpec();
  WorkloadSpec write_spec = BenchWriteSpec();
  WorkloadSpec read_spec = BenchReadSpec();

  ScenarioResult bare_cpu;
  ScenarioResult bare_write;
  ScenarioResult bare_read;
  if (!RunBareChecked(cpu_spec, &bare_cpu, "bare cpu reference") ||
      !RunBareChecked(write_spec, &bare_write, "bare write reference") ||
      !RunBareChecked(read_spec, &bare_read, "bare read reference")) {
    return 1;
  }

  const uint64_t els[] = {1024, 2048, 4096, 8192};
  const PaperRow paper_cpu[] = {{22.24, 11.67}, {11.83, 4.49}, {6.50, 3.21}, {3.83, 2.20}};
  const PaperRow paper_write[] = {{1.87, 1.70}, {1.71, 1.66}, {1.67, 1.66}, {1.64, 1.64}};
  const PaperRow paper_read[] = {{2.32, 1.92}, {2.10, 1.76}, {2.03, 1.72}, {1.98, 1.70}};

  TableReporter table({"Epoch", "Workload", "Old (sim)", "New (sim)", "Old (paper)",
                       "New (paper)"});
  for (size_t i = 0; i < 4; ++i) {
    uint64_t el = els[i];
    double cpu_old = MeasureNp(cpu_spec, bare_cpu, el, ProtocolVariant::kOriginal);
    double cpu_new = MeasureNp(cpu_spec, bare_cpu, el, ProtocolVariant::kRevised);
    table.AddRow({std::to_string(el), "CPU Intense", TableReporter::Num(cpu_old),
                  TableReporter::Num(cpu_new), TableReporter::Num(paper_cpu[i].old_np),
                  TableReporter::Num(paper_cpu[i].new_np)});
    double w_old = MeasureNp(write_spec, bare_write, el, ProtocolVariant::kOriginal);
    double w_new = MeasureNp(write_spec, bare_write, el, ProtocolVariant::kRevised);
    table.AddRow({std::to_string(el), "Write Intense", TableReporter::Num(w_old),
                  TableReporter::Num(w_new), TableReporter::Num(paper_write[i].old_np),
                  TableReporter::Num(paper_write[i].new_np)});
    double r_old = MeasureNp(read_spec, bare_read, el, ProtocolVariant::kOriginal);
    double r_new = MeasureNp(read_spec, bare_read, el, ProtocolVariant::kRevised);
    table.AddRow({std::to_string(el), "Read Intense", TableReporter::Num(r_old),
                  TableReporter::Num(r_new), TableReporter::Num(paper_read[i].old_np),
                  TableReporter::Num(paper_read[i].new_np)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace hbft

int main() { return hbft::RunTable1(); }
