// Figure 5 (this reproduction's extension) — repair: live state-transfer
// resync of a fresh backup into a running chain. Reports resync latency and
// transferred bytes vs memory size (zero-run elision makes idle RAM nearly
// free), vs workload dirty rate (disk DMA forces delta rounds), and over an
// ideal vs a 5% lossy/reordering wire (go-back-N pays in retransmits and
// latency, never correctness).
#include <cstdio>

#include "bench_util.hpp"
#include "perf/report.hpp"

namespace hbft {
namespace {

int RunFig5() {
  std::printf("=== Figure 5: backup resync via live state transfer ===\n");
  std::printf("rejoin at 8 ms into a healthy chain; the tail streams while serving\n\n");

  TableReporter table({"group", "workload", "RAM (MB)", "loss", "resync (ms)", "cut (ms)",
                       "bytes", "page chunks", "zero runs", "delta pages", "rounds",
                       "retransmits"});
  int failures = 0;
  for (const ResyncCase& c : ResyncBenchCases(/*quick=*/false)) {
    ScenarioResult ft = RunResyncCase(c);
    const bool measured = ft.completed && ft.exited_flag == 1 && ft.resyncs.size() == 1 &&
                          ft.resyncs[0].completed;
    if (!measured) {
      std::fprintf(stderr, "resync measurement failed (%s, %s, ram=%u, loss=%g)\n", c.group,
                   c.workload, c.ram_mb, c.loss);
      ++failures;
      continue;
    }
    const ResyncReport& resync = ft.resyncs[0];
    table.AddRow({c.group, c.workload, std::to_string(c.ram_mb), TableReporter::Num(c.loss),
                  TableReporter::Num((resync.join_time - resync.start).seconds() * 1e3),
                  TableReporter::Num((resync.cut_time - resync.start).seconds() * 1e3),
                  std::to_string(resync.bytes), std::to_string(resync.page_chunks),
                  std::to_string(resync.zero_run_chunks), std::to_string(resync.delta_pages),
                  std::to_string(resync.rounds), std::to_string(ft.TotalRetransmits())});
  }
  table.Print();

  std::printf("\nzero-run elision keeps resync proportional to the working set, not RAM\n"
              "size; dirty-rate and loss show up as delta rounds and retransmits.\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace hbft

int main() { return hbft::RunFig5(); }
