// Figure 4 variant — the modeled transport under an unreliable wire: the
// disk-read workload (every 8K block is the paper's "9 messages") over the
// 10 Mbps Ethernet with increasing frame loss/reorder rates. The go-back-N
// retransmission layer keeps the protocol stream reliable-FIFO as a derived
// property; the cost shows up as retransmits, receiver discards, extra bytes
// on the wire, and a goodput/NP penalty relative to the ideal link.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "perf/report.hpp"

namespace hbft {
namespace {

int RunFig4Lossy() {
  std::printf("=== Figure 4 variant: ideal vs lossy link (disk-read workload) ===\n\n");

  WorkloadSpec spec = BenchReadSpec();
  ScenarioResult bare;
  if (!RunBareChecked(spec, &bare)) {
    return 1;
  }

  TableReporter table({"loss", "reorder", "NP (sim)", "retransmits", "rx discards",
                       "bytes on wire", "goodput (Mbit/s)"});
  std::vector<ChannelCounterRow> channel_rows;
  int failures = 0;
  for (double loss : {0.0, 0.01, 0.02, 0.05, 0.1}) {
    ScenarioResult ft = Scenario::Replicated(spec)
                            .Epoch(4096)
                            .LinkFaults(LinkFaults::SymmetricLoss(loss))
                            .Run();
    if (!ft.completed || ft.exited_flag != 1) {
      std::fprintf(stderr, "lossy measurement failed (loss=%g)\n", loss);
      ++failures;
      continue;
    }
    uint64_t rx_discards = 0;
    for (const ScenarioResult::ChannelReport& ch : ft.channels) {
      rx_discards += ch.counters.rx_duplicates + ch.counters.rx_gaps;
    }
    table.AddRow({TableReporter::Num(loss), TableReporter::Num(loss),
                  TableReporter::Num(NormalizedPerformance(ft, bare)),
                  std::to_string(ft.TotalRetransmits()), std::to_string(rx_discards),
                  std::to_string(ft.TotalWireBytes()),
                  TableReporter::Num(ft.GoodputBps() / 1e6, 3)});
    if (loss == 0.0 || loss == 0.05) {
      // Per-channel detail for the two headline points.
      for (const ScenarioResult::ChannelReport& ch : ft.channels) {
        ChannelCounterRow row;
        row.label = "loss=" + TableReporter::Num(loss) + " " + std::to_string(ch.from) +
                    "->" + std::to_string(ch.to);
        row.counters = ch.counters;
        row.run_seconds = ft.completion_time.seconds();
        channel_rows.push_back(std::move(row));
      }
    }
  }
  table.Print();

  std::printf("\nper-channel transport counters:\n");
  std::fputs(RenderTransportTable(channel_rows).c_str(), stdout);
  std::printf("\nreliable FIFO is now a derived property: the loss rows finish the same\n"
              "workload with the same environment behaviour, paying for the wire in\n"
              "retransmissions and goodput instead of correctness.\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace hbft

int main() { return hbft::RunFig4Lossy(); }
