// Figure 3 — Input/Output workloads: measured and predicted normalized
// performance vs epoch length for the random-block disk read and write
// benchmarks (original protocol, 10 Mbps Ethernet).
//
// Paper reference points (measured): write 1.87/1.71/1.67/1.64 and read
// 2.32/2.10/2.03/1.98 at EL = 1K/2K/4K/8K. Disk write 26 ms bare vs 27.8 ms
// replicated; 8K disk read 24.2 ms bare vs 33.4 ms replicated.
#include <cstdio>

#include "bench_util.hpp"
#include "perf/models.hpp"
#include "perf/report.hpp"

namespace hbft {
namespace {

int RunFig3() {
  std::printf("=== Figure 3: I/O workloads, NP vs epoch length ===\n");
  std::printf("workloads: %u random 8K-block ops (1/32 paper scale), awaiting each\n\n",
              kIoOperations);

  WorkloadSpec write_spec = BenchWriteSpec();
  WorkloadSpec read_spec = BenchReadSpec();

  ScenarioResult bare_write;
  ScenarioResult bare_read;
  if (!RunBareChecked(write_spec, &bare_write, "bare write reference") ||
      !RunBareChecked(read_spec, &bare_read, "bare read reference")) {
    return 1;
  }
  std::printf("bare runtimes: write N = %.4f s, read N = %.4f s\n\n",
              bare_write.completion_time.seconds(), bare_read.completion_time.seconds());

  const uint64_t els[] = {1024, 2048, 4096, 8192, 16384, 32768};
  const double paper_write[] = {1.87, 1.71, 1.67, 1.64, -1, -1};
  const double paper_read[] = {2.32, 2.10, 2.03, 1.98, -1, -1};

  TableReporter table({"EL (instr)", "Write sim", "Write model", "Write paper", "Read sim",
                       "Read model", "Read paper"});
  for (size_t i = 0; i < 6; ++i) {
    uint64_t el = els[i];
    double w_sim = MeasureNp(write_spec, bare_write, el, ProtocolVariant::kOriginal);
    double r_sim = MeasureNp(read_spec, bare_read, el, ProtocolVariant::kOriginal);
    double w_model = ModelNpWrite(static_cast<double>(el), false);
    double r_model = ModelNpRead(static_cast<double>(el), false, ModelLink::kEthernet10);
    table.AddRow({std::to_string(el), TableReporter::Num(w_sim), TableReporter::Num(w_model),
                  paper_write[i] > 0 ? TableReporter::Num(paper_write[i]) : "-",
                  TableReporter::Num(r_sim), TableReporter::Num(r_model),
                  paper_read[i] > 0 ? TableReporter::Num(paper_read[i]) : "-"});
  }
  table.Print();

  std::printf("\npaper per-op latencies: write 26 -> 27.8 ms; read 24.2 -> 33.4 ms (4K epochs)\n");
  std::printf("8K read forward = 9 messages + 1 ack on 10 Mbps Ethernet\n");
  return 0;
}

}  // namespace
}  // namespace hbft

int main() { return hbft::RunFig3(); }
