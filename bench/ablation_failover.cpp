// Ablation (ours) — failover behaviour: time from primary crash to backup
// promotion as a function of epoch length and detection timeout, plus the
// size of the re-driven (duplicated) I/O window. The paper treats failover
// qualitatively; this bench quantifies it for the reproduced system.
#include <cstdio>

#include "bench_util.hpp"
#include "perf/report.hpp"

namespace hbft {
namespace {

int RunAblation() {
  std::printf("=== Ablation: failover latency and re-driven I/O window ===\n\n");

  WorkloadSpec spec;
  spec.kind = WorkloadKind::kTxnLog;
  spec.iterations = 10;
  spec.num_blocks = 16;

  ScenarioResult bare;
  if (!RunBareChecked(spec, &bare)) {
    return 1;
  }
  size_t bare_writes = 0;
  for (const auto& e : bare.disk_trace) {
    if (e.is_write && e.performed) {
      ++bare_writes;
    }
  }

  TableReporter table({"EL (instr)", "detect timeout (ms)", "crash->promote (ms)",
                       "uncertain ints", "dup ops", "completed"});
  for (uint64_t el : {uint64_t{1024}, uint64_t{4096}, uint64_t{16384}, uint64_t{65536}}) {
    for (int timeout_ms : {1, 5, 20}) {
      CostModel costs;
      costs.failure_detect_timeout = SimTime::Millis(timeout_ms);
      ScenarioResult ft =
          Scenario::Replicated(spec)
              .Epoch(el)
              .Costs(costs)
              .FailAtPhase(FailPhase::kAfterIoIssue, 0, FailurePlan::CrashIo::kPerformed)
              .Run();
      size_t ft_writes = 0;
      for (const auto& e : ft.disk_trace) {
        if (e.is_write && e.performed) {
          ++ft_writes;
        }
      }
      double promote_ms =
          ft.promoted ? (ft.promotion_time - ft.crash_time).seconds() * 1e3 : -1.0;
      table.AddRow({std::to_string(el), std::to_string(timeout_ms),
                    TableReporter::Num(promote_ms),
                    std::to_string(ft.backup_stats().uncertain_synthesised),
                    std::to_string(ft_writes - bare_writes),
                    ft.completed && ft.exited_flag == 1 ? "yes" : "NO"});
    }
  }
  table.Print();

  std::printf("\npromotion = channel drain + timeout + completing the failover epoch;\n");
  std::printf("dup ops = operations the environment legitimately saw twice (IO2 window)\n");
  return 0;
}

}  // namespace
}  // namespace hbft

int main() { return hbft::RunAblation(); }
