// Figure 4 — Faster replica coordination: predicted normalized performance of
// the CPU-intensive workload when the 10 Mbps Ethernet between the
// hypervisors is replaced by a 155 Mbps ATM link (same controller set-up
// time), plus simulation measurements for both links.
//
// Paper reference: NP(32K) = 1.84 (Ethernet) vs 1.66 (ATM), predicted.
#include <cstdio>

#include "bench_util.hpp"
#include "perf/models.hpp"
#include "perf/report.hpp"

namespace hbft {
namespace {

int RunFig4() {
  std::printf("=== Figure 4: faster communication (Ethernet 10 vs ATM 155) ===\n\n");

  std::printf("predicted curves (model):\n");
  TableReporter curve({"EL (instr)", "NP Ethernet", "NP ATM"});
  for (uint64_t el = 1024; el <= 32768; el *= 2) {
    curve.AddRow({std::to_string(el),
                  TableReporter::Num(ModelNpCpu(static_cast<double>(el), false,
                                                ModelLink::kEthernet10)),
                  TableReporter::Num(ModelNpCpu(static_cast<double>(el), false,
                                                ModelLink::kAtm155))});
  }
  curve.AddRow({"385000 (endpoint)",
                TableReporter::Num(ModelNpCpu(385000.0, false, ModelLink::kEthernet10)),
                TableReporter::Num(ModelNpCpu(385000.0, false, ModelLink::kAtm155))});
  curve.Print();

  std::printf("\nsimulation (measured), CPU workload:\n");
  WorkloadSpec spec = BenchCpuSpec();
  ScenarioResult bare;
  if (!RunBareChecked(spec, &bare)) {
    return 1;
  }
  TableReporter table({"EL (instr)", "NP Ethernet (sim)", "NP ATM (sim)"});
  for (uint64_t el : {uint64_t{4096}, uint64_t{8192}, uint64_t{16384}, uint64_t{32768}}) {
    double eth = MeasureNp(spec, bare, el, ProtocolVariant::kOriginal, CostModel::PaperCalibrated());
    double atm = MeasureNp(spec, bare, el, ProtocolVariant::kOriginal, CostModel::WithAtmLink());
    table.AddRow({std::to_string(el), TableReporter::Num(eth), TableReporter::Num(atm)});
  }
  table.Print();

  std::printf("\npaper: NP(32K) = 1.84 Ethernet vs 1.66 ATM (predicted)\n");
  return 0;
}

}  // namespace
}  // namespace hbft

int main() { return hbft::RunFig4(); }
