// Ablation — the TLB discovery of paper section 3.2.
//
// (a) With nondeterministic ("hardware random") TLB replacement and the
//     hypervisor TLB takeover DISABLED, guest-handled misses hit the two
//     replicas at different instruction-stream points and lockstep breaks —
//     reproduced here as a diverging epoch-boundary fingerprint (or a
//     replication hang, caught by the simulation's time limit).
// (b) With the takeover ENABLED (the paper's fix), the same configuration
//     stays in lockstep.
// (c) Cost of the fix: NP with takeover vs a deterministic-TLB baseline that
//     lets the guest handle its own misses.
#include <cstdio>

#include "bench_util.hpp"
#include "perf/report.hpp"

namespace hbft {
namespace {

WorkloadSpec TlbHeavySpec() {
  // The heap workload touches many pages, maximising TLB traffic.
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kHeap;
  spec.iterations = 48;
  return spec;
}

int RunAblation() {
  std::printf("=== Ablation: nondeterministic TLB vs hypervisor takeover ===\n\n");

  WorkloadSpec spec = TlbHeavySpec();

  TableReporter table({"TLB policy", "takeover", "completed", "lockstep", "diverged at epoch"});
  struct Config {
    TlbPolicy policy;
    bool takeover;
  };
  for (const Config& config : {Config{TlbPolicy::kHardwareRandom, false},
                               Config{TlbPolicy::kHardwareRandom, true},
                               Config{TlbPolicy::kRoundRobin, false},
                               Config{TlbPolicy::kRoundRobin, true}}) {
    ScenarioResult ft = Scenario::Replicated(spec)
                            .Epoch(1024)
                            .TlbTakeover(config.takeover)
                            .AuditLockstep()
                            .Tlb(16, config.policy)  // Small TLB: pressure + evictions.
                            .MaxTime(SimTime::Seconds(30))
                            .Run();
    size_t compared = std::min(ft.primary_boundary_fingerprints().size(),
                               ft.backup_boundary_fingerprints().size());
    size_t prefix = MatchingBoundaryPrefix(ft);
    bool lockstep = compared > 0 && prefix == compared;
    table.AddRow({config.policy == TlbPolicy::kHardwareRandom ? "hardware-random" : "round-robin",
                  config.takeover ? "on" : "off",
                  ft.completed && ft.exited_flag == 1 ? "yes" : "NO",
                  lockstep ? "held" : "BROKEN",
                  lockstep ? "-" : std::to_string(prefix)});
  }
  table.Print();

  std::printf("\ncost of the takeover (deterministic TLB, guest-handled misses as baseline):\n");
  ScenarioResult bare = RunBare(spec);
  TableReporter cost({"config", "NP"});
  for (bool takeover : {false, true}) {
    ScenarioResult ft = Scenario::Replicated(spec)
                            .Epoch(4096)
                            .TlbTakeover(takeover)
                            .Tlb(16, TlbPolicy::kRoundRobin)
                            .Run();
    double np = ft.completed && bare.completed ? NormalizedPerformance(ft, bare) : -1.0;
    cost.AddRow({takeover ? "hypervisor fills TLB" : "guest fills TLB", TableReporter::Num(np)});
  }
  cost.Print();
  return 0;
}

}  // namespace
}  // namespace hbft

int main() { return hbft::RunAblation(); }
