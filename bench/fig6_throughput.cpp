// Figure 6 (this reproduction's extension) — interpreter throughput: the
// cached (predecoded-superblock) dispatch engine against the slow
// fetch-decode path, on a bare-machine CPU kernel (dispatch cost isolated)
// and on the full CPU workload scenario. Both engines retire identical
// instruction streams — the checksums printed per row witness it — so the
// only thing that moves is host time per guest instruction.
#include <cstdio>

#include "bench_util.hpp"
#include "perf/report.hpp"

namespace hbft {
namespace {

int RunFig6() {
  std::printf("=== Figure 6: interpreter throughput, slow vs cached dispatch ===\n");
  std::printf("same guest work per mode; speedup = slow host time / cached host time\n\n");

  TableReporter table(
      {"workload", "mode", "instructions", "checksum", "host (ms)", "MIPS", "speedup"});
  int failures = 0;

  InterpThroughput kernel[2];
  ScenarioThroughput e2e[2];
  const InterpMode modes[2] = {InterpMode::kSlow, InterpMode::kCached};
  const char* names[2] = {"slow", "cached"};
  for (int i = 0; i < 2; ++i) {
    kernel[i] = MeasureInterpThroughput(modes[i], 200000);
    e2e[i] = MeasureScenarioThroughput(modes[i], kCpuIterations);
    if (kernel[i].instructions == 0 || !e2e[i].ok) {
      std::fprintf(stderr, "fig6 measurement failed (%s)\n", names[i]);
      ++failures;
    }
  }
  if (kernel[0].instructions != kernel[1].instructions ||
      kernel[0].checksum != kernel[1].checksum ||
      e2e[0].guest_checksum != e2e[1].guest_checksum) {
    std::fprintf(stderr, "fig6 dispatch modes diverged: speedups are meaningless\n");
    ++failures;
  }

  for (int i = 0; i < 2; ++i) {
    table.AddRow({"cpu-kernel", names[i], std::to_string(kernel[i].instructions),
                  std::to_string(kernel[i].checksum), TableReporter::Num(kernel[i].host_ms),
                  TableReporter::Num(kernel[i].mips),
                  i == 1 && kernel[1].host_ms > 0.0
                      ? TableReporter::Num(kernel[0].host_ms / kernel[1].host_ms)
                      : "-"});
  }
  for (int i = 0; i < 2; ++i) {
    table.AddRow({"cpu-e2e", names[i], "-", std::to_string(e2e[i].guest_checksum),
                  TableReporter::Num(e2e[i].wall_ms), "-",
                  i == 1 && e2e[1].wall_ms > 0.0
                      ? TableReporter::Num(e2e[0].wall_ms / e2e[1].wall_ms)
                      : "-"});
  }
  table.Print();

  if (failures == 0 && kernel[1].host_ms > 0.0) {
    std::printf("\ncached dispatch executes %.1fx the instructions per host second on the\n"
                "CPU kernel (tcache: %llu builds, %llu hits).\n",
                kernel[0].host_ms / kernel[1].host_ms,
                static_cast<unsigned long long>(kernel[1].tcache.builds),
                static_cast<unsigned long long>(kernel[1].tcache.hits));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace hbft

int main() { return hbft::RunFig6(); }
