// Calibrated virtual-time cost model.
//
// All timing in the simulation flows from these constants, which come from
// the paper's measured values on the HP 9000/720 prototype (section 4):
//   * 50 MIPS processor: "a typical instruction should execute in .02 usec";
//   * 15.12 us to simulate a privileged instruction ("approximately 8 usec
//     for hypervisor entry/exit and 7 usec for the actual work");
//   * 443.59 us average epoch-boundary processing under the original
//     protocol, of which the ack round trip is ~282 us (the revised protocol
//     of section 4.3, which drops the wait, implies a local boundary cost of
//     ~161 us from the Table 1 CPU rows);
//   * disk write 26 ms, 8K disk read 24.2 ms on bare hardware.
//
// The simulation does not charge the 443.59 us figure directly: it charges
// the local costs and then *actually performs* the message exchanges over the
// modelled link, so the ack wait emerges from the channel model — exactly the
// decomposition the paper's own analytic models use.
#ifndef HBFT_HYPERVISOR_COST_MODEL_HPP_
#define HBFT_HYPERVISOR_COST_MODEL_HPP_

#include "common/time.hpp"
#include "net/channel.hpp"

namespace hbft {

struct CostModel {
  // Bare processor.
  double mips = 50.0;
  SimTime instruction_cost = SimTime::Nanos(20);

  // Hypervisor costs (paper section 4.1).
  SimTime hv_priv_sim_cost = SimTime::MicrosF(15.12);  // Per simulated instruction.
  SimTime hv_trap_reflect_cost = SimTime::MicrosF(10.0);  // Vectoring a trap to the guest.
  SimTime hv_tlb_fill_cost = SimTime::MicrosF(8.0);       // Hypervisor TLB-miss takeover.
  SimTime hv_interrupt_deliver_cost = SimTime::MicrosF(5.0);  // Per buffered interrupt.

  // Epoch-boundary local processing (excluding message sends and ack waits,
  // which are modelled explicitly through the channel). The backup's
  // boundary is cheaper: it only re-synchronises clocks and delivers — the
  // buffering/relay bookkeeping lives on the primary.
  SimTime epoch_boundary_fixed_cost = SimTime::MicrosF(90.0);
  SimTime backup_boundary_cost = SimTime::MicrosF(20.0);

  // Per-message CPU occupancy (controller set-up / completion interrupt on
  // the sending and receiving hosts). Wire time lives in LinkModel.
  // Calibrated so the original protocol's boundary (local work + Tme send +
  // ack round trip + end send) lands on the paper's measured 443.59 us.
  SimTime msg_send_cpu_cost = SimTime::MicrosF(25.0);
  SimTime msg_receive_cpu_cost = SimTime::MicrosF(35.0);
  SimTime ack_receive_cpu_cost = SimTime::MicrosF(10.0);  // Ack bookkeeping.

  // Devices (paper section 4.2; the NIC is this reproduction's extension).
  SimTime disk_write_latency = SimTime::Millis(26);
  SimTime disk_read_latency = SimTime::MicrosF(24200.0);
  SimTime console_tx_latency = SimTime::Micros(520);  // ~19200 baud UART char.
  SimTime nic_tx_latency = SimTime::Micros(120);      // One guest-side frame time.

  // Failure detection timeout after the channel drains.
  SimTime failure_detect_timeout = SimTime::Millis(5);

  // Interconnect between the hypervisors.
  LinkModel link = LinkModel::Ethernet10();

  // TOD register tick: 100 ns units.
  int64_t tod_tick_picos = 100000;

  int64_t TodFromTime(SimTime t) const { return t.picos() / tod_tick_picos; }
  SimTime TimeFromTod(int64_t tod) const { return SimTime::Picos(tod * tod_tick_picos); }

  static CostModel PaperCalibrated() { return CostModel{}; }
  static CostModel WithAtmLink() {
    CostModel model;
    model.link = LinkModel::Atm155();
    return model;
  }
};

}  // namespace hbft

#endif  // HBFT_HYPERVISOR_COST_MODEL_HPP_
