// The hypervisor: runs one guest virtual machine in kHostFirst trap mode and
// virtualises everything the paper's section 3 virtualises.
//
// Responsibilities (mechanics only; replication policy lives in core/):
//   * privileged-instruction simulation at 15.12 us apiece — the guest kernel
//     executes at real privilege 1 ("virtual privilege 0"), so every
//     privileged instruction traps (paper section 3.1);
//   * trap reflection into the guest at mapped privilege levels;
//   * TLB-miss takeover: the hypervisor walks the guest page table and
//     inserts entries itself so nondeterministic TLB replacement never
//     becomes visible to the guest (paper section 3.2); optionally disabled
//     to reproduce the divergence the paper discovered;
//   * virtual device registers (MMIO pages trap via page protection) and
//     virtualised DMA: data is copied into guest memory only at interrupt
//     delivery, a deterministic point in the instruction stream;
//   * epoch control via the recovery counter, buffering interrupts for
//     delivery at epoch boundaries, identically on primary and backup;
//   * the virtual clock: interval-timer interrupts are evaluated at epoch
//     boundaries against the epoch's Tme value; time-of-day reads surface to
//     the replication layer (environment values).
//
// The replication layer drives the hypervisor through RunGuest(), which
// executes the guest until a policy decision is needed (a GuestEvent), and
// through the delivery/epoch services below.
#ifndef HBFT_HYPERVISOR_HYPERVISOR_HPP_
#define HBFT_HYPERVISOR_HYPERVISOR_HPP_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "devices/virtual_device.hpp"
#include "hypervisor/cost_model.hpp"
#include "hypervisor/virtual_devices.hpp"
#include "machine/machine.hpp"

namespace hbft {

struct HypervisorConfig {
  uint64_t epoch_length = 4096;     // Instructions per epoch (the paper's EL).
  bool tlb_takeover = true;         // Paper's fix; disable for the ablation.
  uint32_t page_table_entries = 1024;  // Guest linear page table coverage.
};

// Policy decision points surfaced to the replication layer.
struct GuestEvent {
  enum class Kind {
    kNone,         // Ran until the time horizon; nothing to decide.
    kEpochEnd,     // Recovery counter expired: run the boundary protocol.
    kTodRead,      // Guest read the time-of-day clock (environment value).
    kIoCommand,    // Guest initiated an I/O operation.
    kHalted,       // Guest executed HALT at virtual privilege 0.
  };
  Kind kind = Kind::kNone;
  IoDescriptor io;  // kIoCommand payload.
};

class Hypervisor {
 public:
  // The registry holds this node's guest-facing device models; MMIO traps
  // and epoch-boundary interrupt delivery dispatch through it. When omitted,
  // the default disk+console registry (no backends) is created — enough for
  // everything the hypervisor itself does.
  Hypervisor(const MachineConfig& machine_config, const HypervisorConfig& hv_config,
             const CostModel& costs, std::unique_ptr<DeviceRegistry> devices = nullptr);

  // --- Guest execution ------------------------------------------------------

  // Runs the guest, simulating traps, until a policy event occurs or the
  // local clock reaches `until`. Advances clock() by instruction execution
  // and hypervisor overheads.
  GuestEvent RunGuest(SimTime until);

  // Completes a pending kTodRead with the value the replication layer chose
  // (local clock at the primary; forwarded value at the backup).
  void CompleteTodRead(uint64_t tod_value);

  // Completes a pending kIoCommand (the replication layer has recorded /
  // issued / suppressed it). The initiating MMIO store retires here.
  void CompleteIoCommand();

  // --- Epoch control --------------------------------------------------------

  // Arms the recovery counter for the next epoch.
  void BeginEpoch();

  // Buffers an interrupt for delivery at the end of its epoch.
  void BufferInterrupt(const VirtualInterrupt& interrupt);

  // Synthesises timer interrupts against `tme` (the epoch's clock value) and
  // delivers every interrupt buffered for `epoch`: applies DMA data, updates
  // virtual device registers, raises EIRR lines, and vectors the guest's
  // interrupt trap if interrupts are enabled. `on_delivered` (optional) fires
  // per delivered interrupt — the backup uses it to retire outstanding-I/O
  // records. Returns the number delivered.
  uint32_t DeliverEpochInterrupts(uint64_t epoch, uint64_t tme,
                                  const std::function<void(const VirtualInterrupt&)>& on_delivered =
                                      nullptr);

  // Drops buffered interrupts for epochs > `epoch`. Used at failover: the
  // dead primary may have relayed completions for epochs the backup will
  // never reach through the protocol; the corresponding operations are
  // re-driven via uncertain interrupts instead (rule P7).
  std::vector<VirtualInterrupt> PurgeBufferedAfter(uint64_t epoch);

  // --- State access ---------------------------------------------------------

  SimTime clock() const { return clock_; }
  void AdvanceClock(SimTime amount) { clock_ += amount; }
  void SetClock(SimTime t) { clock_ = t; }

  Machine& machine() { return machine_; }
  const Machine& machine() const { return machine_; }
  DeviceRegistry& devices() { return *devices_; }
  const DeviceRegistry& devices() const { return *devices_; }
  uint64_t virtual_itmr() const { return virtual_itmr_; }
  bool timer_armed() const { return timer_armed_; }
  const CostModel& costs() const { return costs_; }
  const HypervisorConfig& config() const { return hv_config_; }

  // --- Snapshot --------------------------------------------------------------
  //
  // Captures everything the hypervisor virtualises on top of the machine:
  // the virtual clock, the interval-timer state, the guest-op sequence
  // counter, the buffered-interrupt queue, and the device register models —
  // plus the machine itself (with or without RAM; the live state transfer
  // streams RAM separately as dirty-page chunks). Only capturable at a
  // decision-free point (no pending TOD read or I/O command): epoch
  // boundaries qualify, which is where the transfer cuts. Stats are
  // observability, not state, and are excluded.
  void CaptureState(SnapshotWriter& w, bool include_memory) const;
  bool RestoreState(SnapshotReader& r, bool include_memory);

  // Statistics for the performance study.
  struct Stats {
    uint64_t privileged_simulated = 0;  // The paper's n_sim.
    uint64_t traps_reflected = 0;
    uint64_t tlb_fills = 0;
    uint64_t interrupts_delivered = 0;
    uint64_t epochs_completed = 0;
    uint64_t io_commands = 0;
  };
  const Stats& stats() const { return stats_; }
  Stats& stats() { return stats_; }

 private:
  enum class PendingKind { kNone, kTodRead, kIoCommand };

  // Handles one kGuestTrap machine exit. Returns a policy event when the
  // replication layer must decide; kNone when handled internally.
  GuestEvent HandleTrap(const MachineExit& exit);

  // Simulates a privileged instruction executed at virtual privilege 0.
  GuestEvent SimulatePrivileged(const MachineExit& exit);

  // Serves a virtual-device MMIO access (paddr within a registered device
  // window), dispatching to the owning device model.
  GuestEvent HandleMmio(uint32_t paddr, const DecodedInstr& instr, uint32_t pc);

  // Walks the guest page table for `vaddr`; returns the PTE or nullopt.
  std::optional<uint32_t> WalkPageTable(uint32_t vaddr) const;

  // Reflects a trap into the guest kernel at real privilege 1.
  void ReflectTrap(TrapCause cause, uint32_t epc, uint32_t vaddr);

  // Vectors the guest interrupt trap when lines are pending and IE is set.
  void MaybeVectorInterrupt();

  // Retires the currently-simulated instruction; if the recovery counter
  // expires as a result, records a pending epoch end.
  void RetireSimulatedInstr(uint32_t next_pc);

  uint32_t VirtualStatusFromReal(uint32_t real) const;
  uint32_t RealStatusFromVirtual(uint32_t virt) const;

  // hbft-lint: derived-state — construction-time config; identical on every replica.
  MachineConfig machine_config_;
  HypervisorConfig hv_config_;  // hbft-lint: derived-state — construction-time config; identical on every replica.
  CostModel costs_;  // hbft-lint: derived-state — construction-time config; identical on every replica.
  std::unique_ptr<DeviceRegistry> devices_;
  Machine machine_;
  SimTime clock_ = SimTime::Zero();

  uint64_t virtual_itmr_ = 0;
  bool timer_armed_ = false;
  uint64_t next_guest_op_seq_ = 1;

  std::deque<VirtualInterrupt> buffered_;
  bool epoch_end_pending_ = false;

  PendingKind pending_ = PendingKind::kNone;
  // hbft-lint: derived-state — capture asserts pending_ == kNone, so the
  // decision scratch below never spans a snapshot boundary.
  DecodedInstr pending_instr_;
  uint32_t pending_pc_ = 0;  // hbft-lint: derived-state — see pending_instr_ above.

  Stats stats_;  // hbft-lint: derived-state — diagnostic counters, not replicated guest state.
};

}  // namespace hbft

#endif  // HBFT_HYPERVISOR_HYPERVISOR_HPP_
