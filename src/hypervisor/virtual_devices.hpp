// Hypervisor-side interrupt buffering types.
//
// The guest's device registers are fully virtualised: every MMIO access traps
// (the pages demand privilege 0; the guest runs at 1), and the hypervisor
// serves reads from per-node VirtualDevice models (devices/virtual_device.hpp).
// Device state changes ONLY at epoch-synchronised points — command register
// writes by the guest itself and interrupt delivery at epoch boundaries — so
// register reads are a function of the virtual-machine state and identical on
// primary and backup. Only genuine environment values (the time-of-day clock)
// need the paper's value-forwarding mechanism.
#ifndef HBFT_HYPERVISOR_VIRTUAL_DEVICES_HPP_
#define HBFT_HYPERVISOR_VIRTUAL_DEVICES_HPP_

#include <cstdint>
#include <optional>

#include "devices/io.hpp"

namespace hbft {

// A buffered guest-bound interrupt, queued by the hypervisor until the end of
// the epoch (rules P1/P4) and then applied to the virtual machine. Every
// device interrupt — completions, uncertain completions, environment input
// such as console characters and NIC packets — carries an IoCompletionPayload
// and is applied by the owning device model; there are no per-device side
// channels.
struct VirtualInterrupt {
  uint32_t irq_line = 0;
  uint64_t epoch = 0;
  std::optional<IoCompletionPayload> io;
};

}  // namespace hbft

#endif  // HBFT_HYPERVISOR_VIRTUAL_DEVICES_HPP_
