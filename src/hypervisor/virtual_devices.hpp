// Virtual device models maintained by the hypervisor.
//
// The guest's device registers are fully virtualised: every MMIO access traps
// (the pages demand privilege 0; the guest runs at 1), and the hypervisor
// serves reads from this state. Crucially the state changes ONLY at
// epoch-synchronised points — command register writes by the guest itself and
// interrupt delivery at epoch boundaries — so register reads are a function
// of the virtual-machine state and identical on primary and backup. Only
// genuine environment values (the time-of-day clock) need the paper's
// value-forwarding mechanism.
#ifndef HBFT_HYPERVISOR_VIRTUAL_DEVICES_HPP_
#define HBFT_HYPERVISOR_VIRTUAL_DEVICES_HPP_

#include <cstdint>
#include <optional>
#include <vector>

#include "net/message.hpp"

namespace hbft {

// Disk controller status bits (guest-visible).
inline constexpr uint32_t kDiskStatusBusy = 1u << 0;
inline constexpr uint32_t kDiskStatusDone = 1u << 1;
inline constexpr uint32_t kDiskStatusCheck = 1u << 2;

// Result register codes.
inline constexpr uint32_t kDiskResultOk = 0;
inline constexpr uint32_t kDiskResultCheckCondition = 1;

// A buffered guest-bound interrupt, queued by the hypervisor until the end of
// the epoch (rules P1/P4) and then applied to the virtual machine.
struct VirtualInterrupt {
  uint32_t irq_line = 0;
  uint64_t epoch = 0;
  std::optional<IoCompletionPayload> io;
  char rx_char = 0;  // Console RX payload.
};

// Guest-initiated I/O command, surfaced to the replication layer which
// decides whether to drive the real device (primary) or suppress (backup).
struct GuestIoCommand {
  enum class Kind { kDiskRead, kDiskWrite, kConsoleTx } kind = Kind::kDiskRead;
  uint64_t guest_op_seq = 0;  // Deterministic initiation counter.
  uint32_t block = 0;
  uint32_t dma_paddr = 0;
  std::vector<uint8_t> write_data;  // Snapshot at issue (disk writes).
  char tx_char = 0;
};

struct VirtualDiskState {
  uint32_t reg_block = 0;
  uint32_t reg_count = 1;
  uint32_t reg_dma = 0;
  uint32_t reg_status = 0;
  uint32_t reg_result = 0;
  bool busy = false;
};

struct VirtualConsoleState {
  uint32_t rx_char = 0;
  bool rx_ready = false;
  bool tx_busy = false;
  uint32_t reg_result = 0;  // TX completion code (0 ok, 1 uncertain).
};

}  // namespace hbft

#endif  // HBFT_HYPERVISOR_VIRTUAL_DEVICES_HPP_
