#include "hypervisor/hypervisor.hpp"

#include "common/check.hpp"
#include "common/logging.hpp"

namespace hbft {

Hypervisor::Hypervisor(const MachineConfig& machine_config, const HypervisorConfig& hv_config,
                       const CostModel& costs, std::unique_ptr<DeviceRegistry> devices)
    : machine_config_(machine_config), hv_config_(hv_config), costs_(costs),
      devices_(devices != nullptr ? std::move(devices) : CreateDefaultRegistry()),
      machine_([&] {
        MachineConfig mc = machine_config;
        mc.trap_mode = TrapMode::kHostFirst;
        return mc;
      }()) {}

uint32_t Hypervisor::VirtualStatusFromReal(uint32_t real) const {
  // Real privilege 1 carries "virtual privilege 0" (paper section 3.1).
  uint32_t virt = real;
  if ((virt & StatusBits::kPrivMask) == 1) {
    virt &= ~StatusBits::kPrivMask;
  }
  uint32_t prev = (virt & StatusBits::kPrevPrivMask) >> StatusBits::kPrevPrivShift;
  if (prev == 1) {
    virt &= ~StatusBits::kPrevPrivMask;
  }
  return virt;
}

uint32_t Hypervisor::RealStatusFromVirtual(uint32_t virt) const {
  // Virtual privilege 0 runs at real 1; 3 at 3. Like HP-UX, the guest must
  // not use levels 1 and 2 (they collapse onto 1 and 3 respectively).
  auto map = [](uint32_t p) -> uint32_t { return p == 0 ? 1 : (p == 2 ? 3 : p); };
  uint32_t real = virt;
  uint32_t priv = map(virt & StatusBits::kPrivMask);
  uint32_t prev = map((virt & StatusBits::kPrevPrivMask) >> StatusBits::kPrevPrivShift);
  real &= ~(StatusBits::kPrivMask | StatusBits::kPrevPrivMask);
  real |= priv;
  real |= prev << StatusBits::kPrevPrivShift;
  return real;
}

std::optional<uint32_t> Hypervisor::WalkPageTable(uint32_t vaddr) const {
  uint32_t vpn = vaddr >> kPageShift;
  if (vpn >= hv_config_.page_table_entries) {
    return std::nullopt;
  }
  const PhysicalMemory& memory = machine_.memory();
  uint32_t pt_base = machine_.cpu().cr[kCrPtbase];
  uint32_t pte_addr = pt_base + vpn * 4;
  if (!memory.Contains(pte_addr, 4)) {
    return std::nullopt;
  }
  return memory.Read32(pte_addr);
}

void Hypervisor::ReflectTrap(TrapCause cause, uint32_t epc, uint32_t vaddr) {
  clock_ += costs_.hv_trap_reflect_cost;
  ++stats_.traps_reflected;
  machine_.VectorTrap(cause, epc, vaddr, /*handler_priv=*/1);
}

void Hypervisor::MaybeVectorInterrupt() {
  if (machine_.pending_irqs() != 0 && machine_.cpu().interrupts_enabled()) {
    ReflectTrap(TrapCause::kInterrupt, machine_.cpu().pc, 0);
  }
}

void Hypervisor::RetireSimulatedInstr(uint32_t next_pc) {
  if (machine_.RetireSimulated(next_pc)) {
    epoch_end_pending_ = true;
  }
}

void Hypervisor::BeginEpoch() {
  machine_.SetRecoveryCounter(static_cast<int64_t>(hv_config_.epoch_length));
  machine_.SetRctrEnabled(true);
}

void Hypervisor::BufferInterrupt(const VirtualInterrupt& interrupt) {
  buffered_.push_back(interrupt);
}

uint32_t Hypervisor::DeliverEpochInterrupts(
    uint64_t epoch, uint64_t tme,
    const std::function<void(const VirtualInterrupt&)>& on_delivered) {
  uint32_t delivered = 0;
  // Interval-timer interrupts are generated from the epoch's Tme value, never
  // relayed: both replicas evaluate the same comparison (rules P2/P5).
  if (timer_armed_ && tme >= virtual_itmr_) {
    timer_armed_ = false;
    machine_.RaiseIrq(kIrqTimer);
    clock_ += costs_.hv_interrupt_deliver_cost;
    ++delivered;
  }
  while (!buffered_.empty() && buffered_.front().epoch <= epoch) {
    const VirtualInterrupt& vi = buffered_.front();
    // Generic delivery: the owning device model applies the completion
    // (registers, virtualised DMA, IRQ line) — no per-device cases here.
    HBFT_CHECK(vi.io.has_value());
    VirtualDevice* device = devices_->by_irq(vi.irq_line);
    HBFT_CHECK(device != nullptr) << "no device for buffered irq line " << vi.irq_line;
    device->ApplyCompletion(*vi.io, machine_);
    if (on_delivered) {
      on_delivered(vi);
    }
    buffered_.pop_front();
    clock_ += costs_.hv_interrupt_deliver_cost;
    ++delivered;
    ++stats_.interrupts_delivered;
  }
  MaybeVectorInterrupt();
  return delivered;
}

void Hypervisor::CaptureState(SnapshotWriter& w, bool include_memory) const {
  HBFT_CHECK(pending_ == PendingKind::kNone)
      << "hypervisor state captured mid-decision (pending TOD read or I/O command)";
  machine_.CaptureState(w, include_memory);
  w.I64(clock_.picos());
  w.U64(virtual_itmr_);
  w.Bool(timer_armed_);
  w.U64(next_guest_op_seq_);
  w.Bool(epoch_end_pending_);
  w.U32(static_cast<uint32_t>(buffered_.size()));
  for (const VirtualInterrupt& vi : buffered_) {
    w.U32(vi.irq_line);
    w.U64(vi.epoch);
    w.Bool(vi.io.has_value());
    if (vi.io.has_value()) {
      CaptureIoCompletion(w, *vi.io);
    }
  }
  devices_->CaptureState(w);
}

bool Hypervisor::RestoreState(SnapshotReader& r, bool include_memory) {
  if (!machine_.RestoreState(r, include_memory)) {
    return false;
  }
  int64_t clock_picos = 0;
  if (!r.I64(&clock_picos) || !r.U64(&virtual_itmr_) || !r.Bool(&timer_armed_) ||
      !r.U64(&next_guest_op_seq_) || !r.Bool(&epoch_end_pending_)) {
    return false;
  }
  clock_ = SimTime::Picos(clock_picos);
  uint32_t buffered_count = 0;
  if (!r.U32(&buffered_count)) {
    return false;
  }
  buffered_.clear();
  for (uint32_t i = 0; i < buffered_count; ++i) {
    VirtualInterrupt vi;
    bool has_io = false;
    if (!r.U32(&vi.irq_line) || !r.U64(&vi.epoch) || !r.Bool(&has_io)) {
      return false;
    }
    if (has_io) {
      IoCompletionPayload io;
      if (!RestoreIoCompletion(r, &io)) {
        return false;
      }
      vi.io = std::move(io);
    }
    buffered_.push_back(std::move(vi));
  }
  pending_ = PendingKind::kNone;
  return devices_->RestoreState(r);
}

std::vector<VirtualInterrupt> Hypervisor::PurgeBufferedAfter(uint64_t epoch) {
  std::vector<VirtualInterrupt> purged;
  std::deque<VirtualInterrupt> kept;
  for (VirtualInterrupt& vi : buffered_) {
    if (vi.epoch > epoch) {
      purged.push_back(std::move(vi));
    } else {
      kept.push_back(std::move(vi));
    }
  }
  buffered_ = std::move(kept);
  return purged;
}

void Hypervisor::CompleteTodRead(uint64_t tod_value) {
  HBFT_CHECK(pending_ == PendingKind::kTodRead);
  pending_ = PendingKind::kNone;
  machine_.cpu().set_gpr(pending_instr_.rd, static_cast<uint32_t>(tod_value));
  RetireSimulatedInstr(pending_pc_ + 4);
}

void Hypervisor::CompleteIoCommand() {
  HBFT_CHECK(pending_ == PendingKind::kIoCommand);
  pending_ = PendingKind::kNone;
  RetireSimulatedInstr(pending_pc_ + 4);
}

GuestEvent Hypervisor::RunGuest(SimTime until) {
  HBFT_CHECK(pending_ == PendingKind::kNone)
      << "RunGuest while a TOD read / IO command is still pending";
  GuestEvent event;
  while (true) {
    if (epoch_end_pending_) {
      epoch_end_pending_ = false;
      event.kind = GuestEvent::Kind::kEpochEnd;
      return event;
    }
    if (clock_ >= until) {
      event.kind = GuestEvent::Kind::kNone;
      return event;
    }
    uint64_t budget =
        static_cast<uint64_t>((until - clock_).picos() / costs_.instruction_cost.picos()) + 1;
    MachineExit exit = machine_.Run(budget);
    clock_ += costs_.instruction_cost * static_cast<int64_t>(exit.executed);
    switch (exit.kind) {
      case ExitKind::kLimit:
        break;  // Loop re-checks the horizon.
      case ExitKind::kRecovery:
        event.kind = GuestEvent::Kind::kEpochEnd;
        return event;
      case ExitKind::kHalt:
        // Unreachable in kHostFirst (HALT is privileged and the guest never
        // runs at real privilege 0), but harmless to honour.
        event.kind = GuestEvent::Kind::kHalted;
        return event;
      case ExitKind::kGuestTrap: {
        GuestEvent trap_event = HandleTrap(exit);
        if (trap_event.kind != GuestEvent::Kind::kNone) {
          return trap_event;
        }
        break;
      }
      case ExitKind::kEnvCr:
      case ExitKind::kMmio:
        HBFT_CHECK(false) << "kHostFirst machine produced a kDirect-only exit";
    }
  }
}

GuestEvent Hypervisor::HandleTrap(const MachineExit& exit) {
  GuestEvent none;
  switch (exit.cause) {
    case TrapCause::kPrivilegeViolation: {
      uint32_t real_priv = machine_.cpu().priv();
      if (real_priv == 1) {
        // Virtual privilege 0: simulate the instruction.
        return SimulatePrivileged(exit);
      }
      // Genuine guest-level violation (virtual user mode): reflect.
      ReflectTrap(exit.cause, exit.pc, exit.vaddr);
      return none;
    }

    case TrapCause::kTlbMissFetch:
    case TrapCause::kTlbMissLoad:
    case TrapCause::kTlbMissStore: {
      if (!hv_config_.tlb_takeover) {
        // Ablation mode: hand the miss to the guest's refill handler, exactly
        // what made the nondeterministic TLB visible in the paper.
        ReflectTrap(exit.cause, exit.pc, exit.vaddr);
        return none;
      }
      clock_ += costs_.hv_tlb_fill_cost;
      auto pte = WalkPageTable(exit.vaddr);
      if (pte.has_value() && (*pte & Pte::kValid) != 0) {
        ++stats_.tlb_fills;
        machine_.tlb().Insert(exit.vaddr >> kPageShift, *pte, /*wired=*/false);
        return none;  // Instruction re-executes; invisible to the guest.
      }
      ReflectTrap(TrapCause::kPageFault, exit.pc, exit.vaddr);
      return none;
    }

    case TrapCause::kProtectionFault: {
      // Either an MMIO access (privilege rule) or a real protection error.
      uint32_t paddr = exit.vaddr;
      if (machine_.cpu().vm_enabled()) {
        auto pte = WalkPageTable(exit.vaddr);
        if (pte.has_value() && (*pte & Pte::kValid) != 0) {
          paddr = (Pte::PfnOf(*pte) << kPageShift) | (exit.vaddr & (kPageBytes - 1));
        }
      }
      if (IsMmioAddress(paddr) && exit.instr_valid) {
        return HandleMmio(paddr, exit.instr, exit.pc);
      }
      ReflectTrap(exit.cause, exit.pc, exit.vaddr);
      return none;
    }

    case TrapCause::kSyscall:
    case TrapCause::kBreak:
      ReflectTrap(exit.cause, exit.pc + 4, 0);
      return none;

    case TrapCause::kIllegalInstruction:
    case TrapCause::kUnalignedAccess:
    case TrapCause::kPageFault:
    case TrapCause::kDivideByZero:
      ReflectTrap(exit.cause, exit.pc, exit.vaddr);
      return none;

    case TrapCause::kInterrupt:
    case TrapCause::kNone:
      HBFT_CHECK(false) << "unexpected trap cause " << TrapCauseName(exit.cause);
  }
  return none;
}

GuestEvent Hypervisor::SimulatePrivileged(const MachineExit& exit) {
  GuestEvent none;
  const DecodedInstr& instr = exit.instr;
  HBFT_CHECK(exit.instr_valid);
  CpuState& cpu = machine_.cpu();
  const uint32_t rs1_value = cpu.gpr[instr.rs1];
  clock_ += costs_.hv_priv_sim_cost;
  ++stats_.privileged_simulated;

  switch (instr.op) {
    case Opcode::kMfcr: {
      uint32_t cr = static_cast<uint32_t>(instr.imm) & 0xFF;
      switch (cr) {
        case kCrTod: {
          // Environment value: the replication layer must provide it.
          pending_ = PendingKind::kTodRead;
          pending_instr_ = instr;
          pending_pc_ = exit.pc;
          GuestEvent event;
          event.kind = GuestEvent::Kind::kTodRead;
          return event;
        }
        case kCrStatus:
          cpu.set_gpr(instr.rd, VirtualStatusFromReal(cpu.cr[kCrStatus]));
          break;
        case kCrItmr:
          cpu.set_gpr(instr.rd, static_cast<uint32_t>(virtual_itmr_));
          break;
        case kCrPrid:
          // Virtualised: both replicas present processor id 0.
          cpu.set_gpr(instr.rd, 0);
          break;
        case kCrRctr:
          cpu.set_gpr(instr.rd, 0);  // The hypervisor owns the real counter.
          break;
        case kCrInstret:
          cpu.set_gpr(instr.rd, static_cast<uint32_t>(cpu.instret));
          break;
        default:
          HBFT_CHECK_LT(cr, kNumControlRegs);
          cpu.set_gpr(instr.rd, cpu.cr[cr]);
          break;
      }
      RetireSimulatedInstr(exit.pc + 4);
      return none;
    }

    case Opcode::kMtcr: {
      uint32_t cr = static_cast<uint32_t>(instr.imm) & 0xFF;
      switch (cr) {
        case kCrStatus: {
          cpu.cr[kCrStatus] = RealStatusFromVirtual(rs1_value);
          RetireSimulatedInstr(exit.pc + 4);
          MaybeVectorInterrupt();  // IE may have just been enabled.
          return none;
        }
        case kCrItmr:
          virtual_itmr_ = rs1_value;
          timer_armed_ = true;
          break;
        case kCrEirr:
          machine_.AckIrq(rs1_value);
          break;
        case kCrTod:
        case kCrPrid:
        case kCrRctr:
        case kCrInstret:
          break;  // Host-owned or read-only; writes ignored.
        default:
          HBFT_CHECK_LT(cr, kNumControlRegs);
          cpu.cr[cr] = rs1_value;
          break;
      }
      RetireSimulatedInstr(exit.pc + 4);
      return none;
    }

    case Opcode::kRfi: {
      uint32_t status = cpu.cr[kCrStatus];
      uint32_t prev_priv = (status & StatusBits::kPrevPrivMask) >> StatusBits::kPrevPrivShift;
      bool prev_ie = (status & StatusBits::kPrevIe) != 0;
      status &= ~(StatusBits::kPrivMask | StatusBits::kIe);
      status |= prev_priv;
      if (prev_ie) {
        status |= StatusBits::kIe;
      }
      cpu.cr[kCrStatus] = status;
      RetireSimulatedInstr(cpu.cr[kCrEpc]);
      MaybeVectorInterrupt();
      return none;
    }

    case Opcode::kTlbi: {
      uint32_t pte = cpu.gpr[instr.rs2];
      constexpr uint32_t kWiredBit = 1u << 4;
      machine_.tlb().Insert(rs1_value >> kPageShift, pte, (pte & kWiredBit) != 0);
      RetireSimulatedInstr(exit.pc + 4);
      return none;
    }
    case Opcode::kTlbf:
      machine_.tlb().FlushUnwired();
      RetireSimulatedInstr(exit.pc + 4);
      return none;

    case Opcode::kLwp: {
      uint32_t addr = rs1_value + static_cast<uint32_t>(instr.imm);
      HBFT_CHECK(machine_.memory().Contains(addr, 4)) << "lwp out of range under hypervisor";
      cpu.set_gpr(instr.rd, machine_.memory().Read32(addr));
      RetireSimulatedInstr(exit.pc + 4);
      return none;
    }
    case Opcode::kSwp: {
      uint32_t addr = rs1_value + static_cast<uint32_t>(instr.imm);
      HBFT_CHECK(machine_.memory().Contains(addr, 4)) << "swp out of range under hypervisor";
      machine_.memory().Write32(addr, cpu.gpr[instr.rd]);
      RetireSimulatedInstr(exit.pc + 4);
      return none;
    }

    case Opcode::kHalt: {
      GuestEvent event;
      event.kind = GuestEvent::Kind::kHalted;
      return event;
    }

    default:
      HBFT_CHECK(false) << "unexpected privileged opcode in simulation";
  }
  return none;
}

GuestEvent Hypervisor::HandleMmio(uint32_t paddr, const DecodedInstr& instr, uint32_t pc) {
  GuestEvent none;
  CpuState& cpu = machine_.cpu();
  bool is_store = instr.op == Opcode::kSw || instr.op == Opcode::kSh || instr.op == Opcode::kSb;
  bool is_load = instr.op == Opcode::kLw || instr.op == Opcode::kLh || instr.op == Opcode::kLhu ||
                 instr.op == Opcode::kLb || instr.op == Opcode::kLbu;
  if (!is_store && !is_load) {
    ReflectTrap(TrapCause::kProtectionFault, pc, paddr);
    return none;
  }
  clock_ += costs_.hv_priv_sim_cost;  // I/O instructions are simulated too.
  ++stats_.privileged_simulated;

  VirtualDevice* device = devices_->by_mmio(paddr);
  if (device == nullptr) {
    ReflectTrap(TrapCause::kProtectionFault, pc, paddr);
    return none;
  }
  const uint32_t offset = paddr - device->mmio_base();

  if (is_store) {
    VirtualDevice::StoreResult result =
        device->MmioStore(offset, cpu.gpr[instr.rd], machine_);
    if (result.fault) {
      ReflectTrap(TrapCause::kProtectionFault, pc, paddr);
      return none;
    }
    if (result.initiate) {
      // Guest-initiated I/O: the replication layer decides whether to drive
      // the real backend or suppress. The initiating store retires when the
      // decision is made (CompleteIoCommand).
      GuestEvent event;
      event.kind = GuestEvent::Kind::kIoCommand;
      event.io = std::move(result.io);
      event.io.guest_op_seq = next_guest_op_seq_++;
      pending_ = PendingKind::kIoCommand;
      pending_instr_ = instr;
      pending_pc_ = pc;
      ++stats_.io_commands;
      return event;
    }
    RetireSimulatedInstr(pc + 4);
    return none;
  }

  // Loads: served from the virtual registers (deterministic).
  cpu.set_gpr(instr.rd, device->MmioLoad(offset));
  RetireSimulatedInstr(pc + 4);
  return none;
}

}  // namespace hbft
