// Deterministic discrete-event queue.
//
// Events are ordered by (time, insertion sequence); the sequence tie-break
// makes every run bit-for-bit reproducible regardless of how many events
// share a timestamp.
#ifndef HBFT_SIM_EVENT_QUEUE_HPP_
#define HBFT_SIM_EVENT_QUEUE_HPP_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace hbft {

class EventQueue {
 public:
  void Push(SimTime time, std::function<void()> fn);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  SimTime PeekTime() const;

  // Pops and runs the earliest event.
  void RunNext();

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace hbft

#endif  // HBFT_SIM_EVENT_QUEUE_HPP_
