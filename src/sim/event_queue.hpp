// Deterministic discrete-event queue, partitionable by host.
//
// The queue is a set of independent partitions (one heap each). A World uses
// the default partition 0 for everything; a Fleet gives every simulated host
// its own partition. This is the seam the parallel fleet (FleetConfig::
// threads) builds on: worker threads advance per-chain worlds between round
// horizons, while this queue is drained single-threaded at the barrier — the
// documented pop order below is what makes that drain identical no matter
// which worker finished when.
//
// Pop order is total and documented, so every run is bit-for-bit
// reproducible regardless of how many events share a timestamp:
//   1. earliest event time first;
//   2. ties across partitions break toward the LOWEST partition id;
//   3. ties within a partition pop in insertion order.
// With a single partition this degenerates to the classic (time, insertion
// sequence) order. Cross-partition events (e.g. a repair admission on host B
// caused by a resync completion on host A) must therefore carry explicit
// timestamps assigned by deterministic rules — never "now" on some host's
// local clock — for rule 1 to mean the same thing on every run.
#ifndef HBFT_SIM_EVENT_QUEUE_HPP_
#define HBFT_SIM_EVENT_QUEUE_HPP_

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace hbft {

class EventQueue {
 public:
  // Partition 0: the single-queue (per-world) form.
  void Push(SimTime time, std::function<void()> fn) { Push(0, time, std::move(fn)); }
  // Explicit partition (fleet: one per host).
  void Push(uint32_t partition, SimTime time, std::function<void()> fn);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  // The next event under the documented pop order.
  SimTime PeekTime() const;
  uint32_t PeekPartition() const;

  // Pops and runs the earliest event (ties: lowest partition id, then
  // insertion order within the partition).
  void RunNext();

 private:
  struct Event {
    SimTime time;
    uint64_t seq = 0;  // Per-partition insertion sequence.
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };
  struct Partition {
    std::priority_queue<Event, std::vector<Event>, Later> heap;
    uint64_t next_seq = 0;
  };

  // Returns the partition the next pop comes from (documented order).
  std::map<uint32_t, Partition>::const_iterator NextPartition() const;

  // Ordered by partition id: the map order is the rule-2 tie-break.
  std::map<uint32_t, Partition> partitions_;
  size_t size_ = 0;
};

}  // namespace hbft

#endif  // HBFT_SIM_EVENT_QUEUE_HPP_
