#include "sim/environment_observer.hpp"

#include <set>
#include <sstream>

namespace hbft {

namespace {

// Chain-structure check: each segment (one replica's operations, in takeover
// order) must equal a contiguous window of the reference; a window may start
// anywhere at or before the previous coverage end (overlap = the re-driven
// operations IO1/IO2 license) but never after it (a gap would mean lost
// operations), and the final coverage must reach the end of the reference.
//
// Window placement can be ambiguous when a segment matches several reference
// positions, so the check searches placements (latest-start first — minimal
// overlap) with backtracking; traces are small.
bool MatchSegments(const std::vector<EnvTraceEntry>& reference,
                   const std::vector<std::vector<EnvTraceEntry>>& segments, size_t seg_idx,
                   size_t cover_end) {
  const size_t n = reference.size();
  if (seg_idx == segments.size()) {
    return cover_end == n;
  }
  const std::vector<EnvTraceEntry>& items = segments[seg_idx];
  if (items.empty()) {
    // This replica never touched the device (killed while passive, or the
    // run ended before its takeover did I/O): coverage is unchanged.
    return MatchSegments(reference, segments, seg_idx + 1, cover_end);
  }
  if (items.size() > n) {
    return false;
  }
  size_t latest = cover_end < n - items.size() ? cover_end : n - items.size();
  for (size_t start = latest + 1; start-- > 0;) {
    bool match = true;
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i].op_hash != reference[start + i].op_hash) {
        match = false;
        break;
      }
    }
    if (match) {
      size_t end = start + items.size();
      size_t new_cover = end > cover_end ? end : cover_end;
      if (MatchSegments(reference, segments, seg_idx + 1, new_cover)) {
        return true;
      }
    }
  }
  return false;
}

// Per-device driver: split `observed` by issuer, check issuer interleaving
// follows the chain order, then match windows against the reference.
ConsistencyResult CheckDevice(DeviceId device, const std::vector<EnvTraceEntry>& reference,
                              const std::vector<EnvTraceEntry>& observed,
                              const std::vector<int>& issuer_chain) {
  std::ostringstream detail;

  // Ordering sanity: once a later replica in the chain has touched the
  // device, an earlier one must not (it only goes quiet or dies).
  size_t furthest = 0;
  for (const EnvTraceEntry& e : observed) {
    size_t pos = issuer_chain.size();
    for (size_t i = 0; i < issuer_chain.size(); ++i) {
      if (issuer_chain[i] == e.issuer) {
        pos = i;
        break;
      }
    }
    if (pos == issuer_chain.size()) {
      detail << DeviceIdName(device) << ": operation from unknown issuer " << e.issuer << ": "
             << e.label;
      return {false, detail.str()};
    }
    if (pos < furthest) {
      detail << DeviceIdName(device) << ": issuer " << e.issuer
             << " operated after its successor took over: " << e.label;
      return {false, detail.str()};
    }
    furthest = pos > furthest ? pos : furthest;
  }

  std::vector<std::vector<EnvTraceEntry>> segments(issuer_chain.size());
  for (const EnvTraceEntry& e : observed) {
    for (size_t i = 0; i < issuer_chain.size(); ++i) {
      if (issuer_chain[i] == e.issuer) {
        segments[i].push_back(e);
        break;
      }
    }
  }

  if (!MatchSegments(reference, segments, 0, 0)) {
    detail << DeviceIdName(device)
           << ": observed sequence is not a gap-free overlap chain of the reference ("
           << reference.size() << " reference operations;";
    for (size_t i = 0; i < segments.size(); ++i) {
      detail << " issuer " << issuer_chain[i] << ": " << segments[i].size();
    }
    detail << ")";
    return {false, detail.str()};
  }
  return {true, ""};
}

std::vector<EnvTraceEntry> PerformedOn(DeviceId device, const std::vector<EnvTraceEntry>& trace) {
  std::vector<EnvTraceEntry> out;
  for (const EnvTraceEntry& e : trace) {
    if (e.device_id == device && e.performed) {
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace

ConsistencyResult CheckEnvConsistency(const std::vector<EnvTraceEntry>& reference,
                                      const std::vector<EnvTraceEntry>& observed,
                                      const std::vector<int>& issuer_chain) {
  // Every device either trace mentions gets its own windowed check; a device
  // absent from both is vacuously consistent.
  std::set<DeviceId> devices;
  for (const EnvTraceEntry& e : reference) {
    devices.insert(e.device_id);
  }
  for (const EnvTraceEntry& e : observed) {
    devices.insert(e.device_id);
  }
  for (DeviceId device : devices) {
    ConsistencyResult result = CheckDevice(device, PerformedOn(device, reference),
                                           PerformedOn(device, observed), issuer_chain);
    if (!result.ok) {
      return result;
    }
  }
  return {true, ""};
}

ConsistencyResult CheckEnvConsistency(const std::vector<EnvTraceEntry>& reference,
                                      const std::vector<EnvTraceEntry>& observed, int primary_id,
                                      int backup_id) {
  return CheckEnvConsistency(reference, observed, std::vector<int>{primary_id, backup_id});
}

}  // namespace hbft
