#include "sim/environment_observer.hpp"

#include <sstream>

namespace hbft {

namespace {

// Generic structure check: primary items must be reference[0..p); backup
// items must be reference[j..n) with j <= p (overlap re-driven identically).
template <typename Item, typename Eq, typename Print>
ConsistencyResult CheckSplit(const std::vector<Item>& reference,
                             const std::vector<Item>& primary_items,
                             const std::vector<Item>& backup_items, Eq eq, Print print) {
  std::ostringstream detail;
  size_t n = reference.size();
  size_t p = primary_items.size();
  if (p > n) {
    detail << "primary produced " << p << " operations, reference only " << n;
    return {false, detail.str()};
  }
  for (size_t i = 0; i < p; ++i) {
    if (!eq(primary_items[i], reference[i])) {
      detail << "primary op " << i << " diverges from reference: got " << print(primary_items[i])
             << ", want " << print(reference[i]);
      return {false, detail.str()};
    }
  }
  if (backup_items.empty()) {
    if (p != n) {
      detail << "no failover output but primary covered only " << p << " of " << n;
      return {false, detail.str()};
    }
    return {true, ""};
  }
  if (backup_items.size() > n) {
    std::ostringstream d2;
    d2 << "backup produced " << backup_items.size() << " operations, reference only " << n;
    return {false, d2.str()};
  }
  size_t j = n - backup_items.size();
  if (j > p) {
    detail << "gap in coverage: primary stopped at " << p << " but backup resumed at " << j;
    return {false, detail.str()};
  }
  for (size_t i = 0; i < backup_items.size(); ++i) {
    if (!eq(backup_items[i], reference[j + i])) {
      detail << "backup op " << i << " (reference index " << (j + i)
             << ") diverges: got " << print(backup_items[i]) << ", want " << print(reference[j + i]);
      return {false, detail.str()};
    }
  }
  return {true, ""};
}

bool DiskOpEq(const DiskTraceEntry& a, const DiskTraceEntry& b) {
  if (a.is_write != b.is_write || a.block != b.block) {
    return false;
  }
  return !a.is_write || a.content_hash == b.content_hash;
}

std::string DiskOpPrint(const DiskTraceEntry& e) {
  std::ostringstream out;
  out << (e.is_write ? "write" : "read") << "(block=" << e.block << ", hash=" << e.content_hash
      << ")";
  return out.str();
}

std::vector<DiskTraceEntry> PerformedBy(const std::vector<DiskTraceEntry>& trace, int issuer) {
  std::vector<DiskTraceEntry> out;
  for (const DiskTraceEntry& e : trace) {
    if (e.performed && e.issuer == issuer) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<DiskTraceEntry> Performed(const std::vector<DiskTraceEntry>& trace) {
  std::vector<DiskTraceEntry> out;
  for (const DiskTraceEntry& e : trace) {
    if (e.performed) {
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace

ConsistencyResult CheckDiskConsistency(const std::vector<DiskTraceEntry>& reference,
                                       const std::vector<DiskTraceEntry>& observed, int primary_id,
                                       int backup_id) {
  // Ordering sanity: every backup operation must come after every primary
  // operation (the backup only drives devices once promoted).
  bool seen_backup = false;
  for (const DiskTraceEntry& e : observed) {
    if (e.issuer == backup_id) {
      seen_backup = true;
    } else if (e.issuer == primary_id && seen_backup) {
      return {false, "primary operation observed after backup took over"};
    }
  }
  return CheckSplit(Performed(reference), PerformedBy(observed, primary_id),
                    PerformedBy(observed, backup_id), DiskOpEq, DiskOpPrint);
}

ConsistencyResult CheckConsoleConsistency(const std::vector<ConsoleTraceEntry>& reference,
                                          const std::vector<ConsoleTraceEntry>& observed,
                                          int primary_id, int backup_id) {
  auto by = [](const std::vector<ConsoleTraceEntry>& trace, int issuer) {
    std::vector<ConsoleTraceEntry> out;
    for (const ConsoleTraceEntry& e : trace) {
      if (e.issuer == issuer) {
        out.push_back(e);
      }
    }
    return out;
  };
  auto eq = [](const ConsoleTraceEntry& a, const ConsoleTraceEntry& b) { return a.ch == b.ch; };
  auto print = [](const ConsoleTraceEntry& e) { return std::string(1, e.ch); };
  std::vector<ConsoleTraceEntry> ref_all = reference;
  return CheckSplit(ref_all, by(observed, primary_id), by(observed, backup_id), eq, print);
}

}  // namespace hbft
