#include "sim/environment_observer.hpp"

#include <functional>
#include <sstream>

namespace hbft {

namespace {

// Chain-structure check: each segment (one replica's operations, in takeover
// order) must equal a contiguous window of the reference; a window may start
// anywhere at or before the previous coverage end (overlap = the re-driven
// operations IO1/IO2 license) but never after it (a gap would mean lost
// operations), and the final coverage must reach the end of the reference.
//
// Window placement can be ambiguous when a segment matches several reference
// positions, so the check searches placements (latest-start first — minimal
// overlap) with backtracking; traces are small.
template <typename Item, typename Eq>
bool MatchSegments(const std::vector<Item>& reference,
                   const std::vector<std::vector<Item>>& segments, Eq eq, size_t seg_idx,
                   size_t cover_end) {
  const size_t n = reference.size();
  if (seg_idx == segments.size()) {
    return cover_end == n;
  }
  const std::vector<Item>& items = segments[seg_idx];
  if (items.empty()) {
    // This replica never touched the devices (killed while passive, or the
    // run ended before its takeover did I/O): coverage is unchanged.
    return MatchSegments(reference, segments, eq, seg_idx + 1, cover_end);
  }
  if (items.size() > n) {
    return false;
  }
  size_t latest = cover_end < n - items.size() ? cover_end : n - items.size();
  for (size_t start = latest + 1; start-- > 0;) {
    bool match = true;
    for (size_t i = 0; i < items.size(); ++i) {
      if (!eq(items[i], reference[start + i])) {
        match = false;
        break;
      }
    }
    if (match) {
      size_t end = start + items.size();
      size_t new_cover = end > cover_end ? end : cover_end;
      if (MatchSegments(reference, segments, eq, seg_idx + 1, new_cover)) {
        return true;
      }
    }
  }
  return false;
}

// Shared driver: split `observed` by issuer, check issuer interleaving
// follows the chain order, then match windows against the reference.
template <typename Item, typename Eq, typename Print>
ConsistencyResult CheckChain(const std::vector<Item>& reference, const std::vector<Item>& observed,
                             const std::vector<int>& issuer_chain,
                             const std::function<int(const Item&)>& issuer_of, Eq eq, Print print) {
  std::ostringstream detail;

  // Ordering sanity: once a later replica in the chain has touched the
  // devices, an earlier one must not (it only goes quiet or dies).
  size_t furthest = 0;
  for (const Item& e : observed) {
    int issuer = issuer_of(e);
    size_t pos = issuer_chain.size();
    for (size_t i = 0; i < issuer_chain.size(); ++i) {
      if (issuer_chain[i] == issuer) {
        pos = i;
        break;
      }
    }
    if (pos == issuer_chain.size()) {
      detail << "operation from unknown issuer " << issuer << ": " << print(e);
      return {false, detail.str()};
    }
    if (pos < furthest) {
      detail << "issuer " << issuer << " operated after its successor took over: " << print(e);
      return {false, detail.str()};
    }
    furthest = pos > furthest ? pos : furthest;
  }

  std::vector<std::vector<Item>> segments(issuer_chain.size());
  for (const Item& e : observed) {
    int issuer = issuer_of(e);
    for (size_t i = 0; i < issuer_chain.size(); ++i) {
      if (issuer_chain[i] == issuer) {
        segments[i].push_back(e);
        break;
      }
    }
  }

  if (!MatchSegments(reference, segments, eq, 0, 0)) {
    detail << "observed sequence is not a gap-free overlap chain of the reference ("
           << reference.size() << " reference operations;";
    for (size_t i = 0; i < segments.size(); ++i) {
      detail << " issuer " << issuer_chain[i] << ": " << segments[i].size();
    }
    detail << ")";
    return {false, detail.str()};
  }
  return {true, ""};
}

bool DiskOpEq(const DiskTraceEntry& a, const DiskTraceEntry& b) {
  if (a.is_write != b.is_write || a.block != b.block) {
    return false;
  }
  return !a.is_write || a.content_hash == b.content_hash;
}

std::string DiskOpPrint(const DiskTraceEntry& e) {
  std::ostringstream out;
  out << (e.is_write ? "write" : "read") << "(block=" << e.block << ", hash=" << e.content_hash
      << ")";
  return out.str();
}

std::vector<DiskTraceEntry> Performed(const std::vector<DiskTraceEntry>& trace) {
  std::vector<DiskTraceEntry> out;
  for (const DiskTraceEntry& e : trace) {
    if (e.performed) {
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace

ConsistencyResult CheckDiskConsistency(const std::vector<DiskTraceEntry>& reference,
                                       const std::vector<DiskTraceEntry>& observed,
                                       const std::vector<int>& issuer_chain) {
  std::function<int(const DiskTraceEntry&)> issuer_of = [](const DiskTraceEntry& e) {
    return e.issuer;
  };
  return CheckChain(Performed(reference), Performed(observed), issuer_chain, issuer_of, DiskOpEq,
                    DiskOpPrint);
}

ConsistencyResult CheckConsoleConsistency(const std::vector<ConsoleTraceEntry>& reference,
                                          const std::vector<ConsoleTraceEntry>& observed,
                                          const std::vector<int>& issuer_chain) {
  std::function<int(const ConsoleTraceEntry&)> issuer_of = [](const ConsoleTraceEntry& e) {
    return e.issuer;
  };
  auto eq = [](const ConsoleTraceEntry& a, const ConsoleTraceEntry& b) { return a.ch == b.ch; };
  auto print = [](const ConsoleTraceEntry& e) { return std::string(1, e.ch); };
  return CheckChain(reference, observed, issuer_chain, issuer_of, eq, print);
}

ConsistencyResult CheckDiskConsistency(const std::vector<DiskTraceEntry>& reference,
                                       const std::vector<DiskTraceEntry>& observed, int primary_id,
                                       int backup_id) {
  return CheckDiskConsistency(reference, observed, std::vector<int>{primary_id, backup_id});
}

ConsistencyResult CheckConsoleConsistency(const std::vector<ConsoleTraceEntry>& reference,
                                          const std::vector<ConsoleTraceEntry>& observed,
                                          int primary_id, int backup_id) {
  return CheckConsoleConsistency(reference, observed, std::vector<int>{primary_id, backup_id});
}

}  // namespace hbft
