#include "sim/event_queue.hpp"

#include "common/check.hpp"

namespace hbft {

void EventQueue::Push(SimTime time, std::function<void()> fn) {
  heap_.push(Event{time, next_seq_++, std::move(fn)});
}

SimTime EventQueue::PeekTime() const {
  HBFT_CHECK(!heap_.empty());
  return heap_.top().time;
}

void EventQueue::RunNext() {
  HBFT_CHECK(!heap_.empty());
  // Copy out before popping: the handler may push new events.
  std::function<void()> fn = heap_.top().fn;
  heap_.pop();
  fn();
}

}  // namespace hbft
