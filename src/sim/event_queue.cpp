#include "sim/event_queue.hpp"

#include "common/check.hpp"

namespace hbft {

void EventQueue::Push(uint32_t partition, SimTime time, std::function<void()> fn) {
  Partition& p = partitions_[partition];
  p.heap.push(Event{time, p.next_seq++, std::move(fn)});
  ++size_;
}

std::map<uint32_t, EventQueue::Partition>::const_iterator EventQueue::NextPartition() const {
  HBFT_CHECK(size_ > 0);
  auto best = partitions_.end();
  for (auto it = partitions_.begin(); it != partitions_.end(); ++it) {
    if (it->second.heap.empty()) {
      continue;
    }
    // Strictly-earlier wins; an equal timestamp keeps the earlier iterator,
    // which is the lower partition id (rule 2 of the pop order).
    if (best == partitions_.end() || it->second.heap.top().time < best->second.heap.top().time) {
      best = it;
    }
  }
  HBFT_CHECK(best != partitions_.end());
  return best;
}

SimTime EventQueue::PeekTime() const { return NextPartition()->second.heap.top().time; }

uint32_t EventQueue::PeekPartition() const { return NextPartition()->first; }

void EventQueue::RunNext() {
  auto it = partitions_.find(NextPartition()->first);
  // Copy out before popping: the handler may push new events.
  std::function<void()> fn = it->second.heap.top().fn;
  it->second.heap.pop();
  --size_;
  fn();
}

}  // namespace hbft
