#include "sim/world.hpp"

#include "common/check.hpp"
#include "common/logging.hpp"

namespace hbft {

namespace {
constexpr int kPrimaryId = 1;
constexpr int kBackupId = 2;
constexpr int kBareId = 0;
}  // namespace

World::World(const GuestProgram& guest, const WorldConfig& config, bool replicated)
    : config_(config), crash_rng_(config.seed ^ 0xC4A5BEEFULL) {
  disk_ = std::make_unique<Disk>(config.disk_blocks, config.seed);
  disk_->set_fault_plan(config.disk_faults);
  console_ = std::make_unique<Console>();

  if (!replicated) {
    bare_ = std::make_unique<BareNode>(kBareId, guest, config.machine, config.costs, disk_.get(),
                                       console_.get(), this);
    return;
  }

  chan_pb_ = std::make_unique<Channel>(config.costs.link);
  chan_bp_ = std::make_unique<Channel>(config.costs.link);
  primary_ = std::make_unique<PrimaryNode>(kPrimaryId, guest, config.machine, config.replication,
                                           config.costs, disk_.get(), console_.get(),
                                           chan_pb_.get(), chan_bp_.get(), this);
  backup_ = std::make_unique<BackupNode>(kBackupId, guest, config.machine, config.replication,
                                         config.costs, disk_.get(), console_.get(),
                                         chan_bp_.get(), chan_pb_.get(), this);
  primary_->set_schedule_peer_poll([this](SimTime arrival) {
    ScheduleAt(arrival, [this, arrival] { backup_->PollIncoming(arrival); });
  });
  backup_->set_schedule_peer_poll([this](SimTime arrival) {
    ScheduleAt(arrival, [this, arrival] { primary_->PollIncoming(arrival); });
  });
}

void World::ScheduleAt(SimTime t, std::function<void()> fn) { queue_.Push(t, std::move(fn)); }

void World::SetFailurePlan(const FailurePlan& plan) {
  HBFT_CHECK(primary_ != nullptr) << "failure plans require a replicated world";
  failure_plan_ = plan;
  if (plan.kind == FailurePlan::Kind::kAtTime && plan.target == FailurePlan::Target::kBackup) {
    ScheduleAt(plan.time, [this, plan] {
      if (!failure_fired_ && !backup_->dead() && !backup_->halted()) {
        failure_fired_ = true;
        SimTime t = backup_->clock() > plan.time ? backup_->clock() : plan.time;
        KillBackup(t);
      }
    });
    return;
  }
  HBFT_CHECK(plan.target == FailurePlan::Target::kPrimary || plan.kind == FailurePlan::Kind::kNone)
      << "backup failures support only time-based injection";
  switch (plan.kind) {
    case FailurePlan::Kind::kNone:
      break;
    case FailurePlan::Kind::kAtTime:
      ScheduleAt(plan.time, [this, plan] {
        if (!failure_fired_ && !primary_->dead() && !primary_->halted()) {
          failure_fired_ = true;
          SimTime t = primary_->clock() > plan.time ? primary_->clock() : plan.time;
          KillPrimary(t);
        }
      });
      break;
    case FailurePlan::Kind::kAtPhase:
      primary_->set_phase_hook([this, plan](FailPhase phase, uint64_t epoch, uint64_t io_seq) {
        if (failure_fired_ || phase != plan.phase) {
          return;
        }
        bool epoch_match = epoch >= plan.phase_epoch;
        bool io_match = plan.io_seq == 0 || io_seq == plan.io_seq;
        if (epoch_match && io_match) {
          failure_fired_ = true;
          KillPrimary(primary_->clock());
        }
      });
      break;
  }
}

void World::KillPrimary(SimTime t) {
  HBFT_CHECK(primary_ != nullptr);
  crash_time_ = t;
  std::vector<uint64_t> in_flight = primary_->PendingDiskOps();
  primary_->Kill(t);
  chan_bp_->Break(t);
  // Resolve each in-flight device operation: performed or not (IO2).
  for (uint64_t op : in_flight) {
    bool performed;
    switch (failure_plan_.crash_io) {
      case FailurePlan::CrashIo::kPerformed:
        performed = true;
        break;
      case FailurePlan::CrashIo::kNotPerformed:
        performed = false;
        break;
      case FailurePlan::CrashIo::kRandom:
      default:
        performed = crash_rng_.NextBool(0.5);
        break;
    }
    disk_->ResolveInFlightAtCrash(op, performed);
  }
  SimTime detect =
      FailureDetector::DetectionTime(*chan_pb_, t, config_.costs.failure_detect_timeout);
  ScheduleAt(detect, [this, detect] { backup_->OnFailureDetected(detect); });
}

void World::KillBackup(SimTime t) {
  HBFT_CHECK(backup_ != nullptr);
  crash_time_ = t;
  backup_->Kill(t);
  // The primary notices missing acknowledgments: drain + timeout.
  SimTime detect =
      FailureDetector::DetectionTime(*chan_bp_, t, config_.costs.failure_detect_timeout);
  ScheduleAt(detect, [this, detect] { primary_->OnBackupFailureDetected(detect); });
}

void World::InjectConsoleInput(const std::string& text, SimTime start, SimTime interval) {
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    SimTime t = start + interval * static_cast<int64_t>(i);
    ScheduleAt(t, [this, c, t] {
      if (bare_ != nullptr) {
        bare_->InjectConsoleRx(c, t);
      } else if (primary_ != nullptr && !primary_->dead() && !primary_->halted()) {
        primary_->InjectConsoleRx(c, t);
      } else if (backup_ != nullptr) {
        backup_->InjectConsoleRx(c, t);
      }
    });
  }
}

Machine& World::active_machine() {
  if (bare_ != nullptr) {
    return bare_->machine();
  }
  if (backup_ != nullptr && backup_->promoted()) {
    return backup_->hypervisor().machine();
  }
  return primary_->hypervisor().machine();
}

NodeActor& World::active_node() {
  if (bare_ != nullptr) {
    return *bare_;
  }
  if (backup_ != nullptr && backup_->promoted()) {
    return *backup_;
  }
  return *primary_;
}

World::Outcome World::Run() {
  Outcome outcome;
  NodeActor* nodes[3] = {bare_.get(), primary_.get(), backup_.get()};

  while (true) {
    bool all_done = true;
    for (NodeActor* node : nodes) {
      if (node != nullptr && !node->halted() && !node->dead()) {
        all_done = false;
      }
    }
    if (all_done) {
      outcome.completed = true;
      break;
    }

    NodeActor* next = nullptr;
    for (NodeActor* node : nodes) {
      if (node != nullptr && node->runnable()) {
        if (next == nullptr || node->clock() < next->clock()) {
          next = node;
        }
      }
    }
    SimTime tq = queue_.empty() ? SimTime::Max() : queue_.PeekTime();

    if (next != nullptr && next->clock() >= config_.max_time) {
      outcome.timed_out = true;
      break;
    }

    if (next != nullptr && next->clock() < tq) {
      SimTime horizon = tq < config_.max_time ? tq : config_.max_time;
      next->RunSlice(horizon);
    } else if (!queue_.empty()) {
      if (tq > config_.max_time) {
        // Only events beyond the deadline remain and no node can run.
        outcome.timed_out = next != nullptr;
        outcome.deadlocked = next == nullptr;
        break;
      }
      queue_.RunNext();
    } else if (next != nullptr) {
      next->RunSlice(config_.max_time);
    } else {
      outcome.deadlocked = true;  // No events, nobody runnable, not done.
      break;
    }
  }

  outcome.completion_time = active_node().clock();
  outcome.crash_time = crash_time_;
  if (backup_ != nullptr) {
    outcome.promoted = backup_->promoted();
    outcome.promotion_time = backup_->promotion_time();
  }
  return outcome;
}

}  // namespace hbft
