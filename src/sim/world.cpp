#include "sim/world.hpp"

#include "common/check.hpp"
#include "common/logging.hpp"
#include "devices/device_set.hpp"
#include "sim/scenario.hpp"

namespace hbft {

namespace {
constexpr int kBareId = 0;
constexpr int kPrimaryId = 1;  // Backups are numbered 2, 3, ... down the chain.
}  // namespace

World::~World() = default;

World::World(const GuestProgram& guest, const WorldConfig& config, bool replicated)
    : config_(config), crash_rng_(config.seed ^ 0xC4A5BEEFULL) {
  DeviceSetConfig device_config;
  device_config.disk_blocks = config.disk_blocks;
  device_config.disk_faults = config.disk_faults;
  device_config.console_faults = config.console_faults;
  device_config.with_nic = config.with_nic;
  device_config.nic_faults = config.nic_faults;
  devices_ = std::make_unique<DeviceSet>(device_config, config.costs, config.seed);

  if (!replicated) {
    bare_ = std::make_unique<BareNode>(kBareId, guest, config.machine, config.costs,
                                       devices_->BuildRegistry(), this);
    return;
  }

  HBFT_CHECK(config.backups >= 1) << "a replicated world needs at least one backup";
  const size_t n = static_cast<size_t>(config.backups) + 1;

  // Channel mesh: one link per direction per adjacent chain pair. The
  // downstream (protocol) direction is an ordered go-back-N stream; the
  // upstream (ack) direction is a datagram best-effort stream — cumulative
  // acks need no retransmission of their own. Each channel gets an
  // independent fault-RNG stream derived from the scenario seed so lossy
  // runs are exactly reproducible.
  for (size_t i = 0; i + 1 < n; ++i) {
    const uint64_t down_seed = config.seed ^ (0x11F0D1CEULL * (2 * i + 1));
    const uint64_t up_seed = config.seed ^ (0x11F0D1CEULL * (2 * i + 2));
    channels_[{i, i + 1}] = std::make_unique<Channel>(
        config.costs.link, ChannelMode::kOrdered, config.link_faults, down_seed);
    channels_[{i + 1, i}] = std::make_unique<Channel>(
        config.costs.link, ChannelMode::kDatagram, config.link_faults, up_seed);
  }

  for (size_t i = 0; i < n; ++i) {
    NodeLinks links;
    if (i > 0) {
      links.up_in = channel(i - 1, i);
      links.up_out = channel(i, i - 1);
    }
    if (i + 1 < n) {
      links.down_out = channel(i, i + 1);
      links.down_in = channel(i + 1, i);
    }
    const int id = kPrimaryId + static_cast<int>(i);
    if (i == 0) {
      replicas_.push_back(std::make_unique<PrimaryNode>(id, guest, config.machine,
                                                        config.replication, config.costs,
                                                        devices_->BuildRegistry(), links, this));
    } else {
      replicas_.push_back(std::make_unique<BackupNode>(id, guest, config.machine,
                                                       config.replication, config.costs,
                                                       devices_->BuildRegistry(), links, this));
    }
  }

  // Poll wiring: a send wakes the receiving neighbour at the arrival time.
  for (size_t i = 0; i + 1 < n; ++i) {
    ReplicaNodeBase* up = replicas_[i].get();
    ReplicaNodeBase* down = replicas_[i + 1].get();
    up->set_schedule_down_poll([this, down](SimTime arrival) {
      ScheduleAt(arrival, [down, arrival] { down->PollIncoming(arrival); });
    });
    down->set_schedule_up_poll([this, up](SimTime arrival) {
      ScheduleAt(arrival, [up, arrival] { up->PollIncoming(arrival); });
    });
  }
}

Channel* World::channel(size_t from, size_t to) {
  auto it = channels_.find({from, to});
  HBFT_CHECK(it != channels_.end())
      << "no channel " << from << " -> " << to << " in the mesh";
  return it->second.get();
}

PrimaryNode* World::primary() {
  HBFT_CHECK(!replicas_.empty());
  return static_cast<PrimaryNode*>(replicas_[0].get());
}

BackupNode* World::backup(size_t backup_index) {
  HBFT_CHECK(backup_index + 1 < replicas_.size())
      << "backup index " << backup_index << " out of range";
  return static_cast<BackupNode*>(replicas_[backup_index + 1].get());
}

void World::ScheduleAt(SimTime t, std::function<void()> fn) { queue_.Push(t, std::move(fn)); }

void World::SetFailureSchedule(const FailureSchedule& schedule) {
  HBFT_CHECK(!replicas_.empty()) << "failure schedules require a replicated world";
  for (const FailurePlan& plan : schedule) {
    if (plan.kind == FailurePlan::Kind::kAtPhase) {
      HBFT_CHECK(plan.target == FailurePlan::Target::kActive)
          << "phase-based kills target the active replica (standing backups run no "
             "device phases)";
    }
    if (plan.target == FailurePlan::Target::kBackup) {
      HBFT_CHECK(plan.backup_index >= 0 &&
                 static_cast<size_t>(plan.backup_index) + 1 < replicas_.size())
          << "backup index " << plan.backup_index << " out of range";
    }
  }
  schedule_ = schedule;
  next_failure_ = 0;
  ArmNextFailure();
}

void World::ArmNextFailure() {
  if (next_failure_ >= schedule_.size()) {
    return;
  }
  const FailurePlan& plan = schedule_[next_failure_];
  const size_t idx = next_failure_;
  switch (plan.kind) {
    case FailurePlan::Kind::kNone:
      ++next_failure_;
      ArmNextFailure();
      return;
    case FailurePlan::Kind::kAtTime:
      ScheduleAt(plan.time, [this, idx] { FireTimedFailure(idx); });
      return;
    case FailurePlan::Kind::kAtPhase:
      // Install on every replica: phases fire only on the node that drives
      // the devices, and the hook checks it is the *current* active node, so
      // an event armed before a failover lands on the promoted successor.
      for (size_t i = 0; i < replicas_.size(); ++i) {
        replicas_[i]->set_phase_hook(
            [this, idx, i](FailPhase phase, uint64_t epoch, uint64_t io_seq) {
              OnPhaseHook(idx, i, phase, epoch, io_seq);
            });
      }
      return;
  }
}

void World::OnPhaseHook(size_t schedule_index, size_t replica_index, FailPhase phase,
                        uint64_t epoch, uint64_t io_seq) {
  if (schedule_index != next_failure_ || replica_index != active_index_) {
    return;  // A stale hook, or a node that is not (yet) the active replica.
  }
  const FailurePlan& plan = schedule_[schedule_index];
  if (phase != plan.phase || epoch < plan.phase_epoch ||
      (plan.io_seq != 0 && io_seq != plan.io_seq)) {
    return;
  }
  ++next_failure_;
  KillReplica(replica_index, replicas_[replica_index]->clock(), plan.crash_io);
  ArmNextFailure();
}

void World::FireTimedFailure(size_t schedule_index) {
  if (schedule_index != next_failure_) {
    return;
  }
  const FailurePlan& plan = schedule_[schedule_index];
  size_t victim = plan.target == FailurePlan::Target::kBackup
                      ? 1 + static_cast<size_t>(plan.backup_index)
                      : active_index_;
  ++next_failure_;
  ReplicaNodeBase* node = replicas_[victim].get();
  if (!node->dead() && !node->halted()) {
    SimTime t = node->clock() > plan.time ? node->clock() : plan.time;
    KillReplica(victim, t, plan.crash_io);
  }
  ArmNextFailure();
}

void World::KillReplica(size_t index, SimTime t, FailurePlan::CrashIo crash_io) {
  ReplicaNodeBase* node = replicas_[index].get();
  HBFT_CHECK(!node->dead());
  crash_times_.push_back(t);
  std::vector<PendingRealOp> in_flight = node->PendingRealOps();
  node->Kill(t);
  // Resolve each in-flight device operation. Only backends that leave a
  // genuine IO2 question at a crash (the disk) draw a performed/not verdict;
  // output latched at issue (console, NIC) already reached the environment,
  // and ResolveAtCrash just retires the vanished completion.
  for (const PendingRealOp& op : in_flight) {
    DeviceBackend* backend = devices_->backend(op.device_id);
    HBFT_CHECK(backend != nullptr);
    bool performed = false;
    if (backend->crash_resolvable()) {
      switch (crash_io) {
        case FailurePlan::CrashIo::kPerformed:
          performed = true;
          break;
        case FailurePlan::CrashIo::kNotPerformed:
          performed = false;
          break;
        case FailurePlan::CrashIo::kRandom:
        default:
          performed = crash_rng_.NextBool(0.5);
          break;
      }
    }
    backend->ResolveAtCrash(op.op_id, performed);
  }

  if (index == active_index_) {
    // The active replica died: the next surviving backup detects the silence
    // on the protocol stream (drain + timeout) and runs the P6/P7 takeover.
    const size_t successor = index + 1;
    if (successor < replicas_.size() && !replicas_[successor]->dead()) {
      SimTime detect = FailureDetector::DetectionTime(*channel(index, successor), t,
                                                      config_.costs.failure_detect_timeout,
                                                      config_.link_faults);
      auto* next_node = static_cast<BackupNode*>(replicas_[successor].get());
      ScheduleAt(detect, [next_node, detect] { next_node->OnFailureDetected(detect); });
      active_index_ = successor;
    } else {
      service_lost_ = true;
    }
    return;
  }

  // A standing backup died: its upstream neighbour notices the missing
  // acknowledgments and stops replicating to it. Replicas further down the
  // chain are cut off from the protocol stream — without a state transfer
  // they can never rejoin, so the chain truncates at the dead node.
  const size_t upstream = index - 1;
  SimTime detect = FailureDetector::DetectionTime(*channel(index, upstream), t,
                                                  config_.costs.failure_detect_timeout,
                                                  config_.link_faults);
  ReplicaNodeBase* up_node = replicas_[upstream].get();
  ScheduleAt(detect, [up_node, detect] { up_node->OnDownstreamFailureDetected(detect); });
  for (size_t j = index + 1; j < replicas_.size(); ++j) {
    if (!replicas_[j]->dead()) {
      replicas_[j]->Kill(t);
    }
  }
}

void World::RouteInput(DeviceId device, const std::vector<uint8_t>& payload, SimTime t) {
  if (bare_ != nullptr) {
    bare_->InjectInput(device, payload, t);
    return;
  }
  // Route to the replica responsible for the environment: the active node,
  // or — between a crash and the promotion — its successor, which queues the
  // input until it takes over.
  for (size_t j = active_index_; j < replicas_.size(); ++j) {
    ReplicaNodeBase* node = replicas_[j].get();
    if (node->dead() || node->halted()) {
      continue;
    }
    node->InjectInput(device, payload, t);
    return;
  }
}

void World::InjectConsoleInput(const std::string& text, SimTime start, SimTime interval) {
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    SimTime t = start + interval * static_cast<int64_t>(i);
    ScheduleAt(t, [this, c, t] {
      RouteInput(DeviceId::kConsole, {static_cast<uint8_t>(c)}, t);
    });
  }
}

void World::InjectPacket(const std::vector<uint8_t>& payload, SimTime t) {
  ScheduleAt(t, [this, payload, t] { RouteInput(DeviceId::kNic, payload, t); });
}

Machine& World::active_machine() {
  if (bare_ != nullptr) {
    return bare_->machine();
  }
  return replicas_[active_index_]->hypervisor().machine();
}

NodeActor& World::active_node() {
  if (bare_ != nullptr) {
    return *bare_;
  }
  return *replicas_[active_index_];
}

void World::Run(ScenarioResult* result) {
  bool completed = false;
  bool timed_out = false;
  bool deadlocked = false;

  std::vector<NodeActor*> nodes;
  if (bare_ != nullptr) {
    nodes.push_back(bare_.get());
  }
  for (auto& replica : replicas_) {
    nodes.push_back(replica.get());
  }

  while (true) {
    bool all_done = true;
    for (NodeActor* node : nodes) {
      if (!node->halted() && !node->dead()) {
        all_done = false;
      }
    }
    if (all_done) {
      completed = true;
      break;
    }

    NodeActor* next = nullptr;
    for (NodeActor* node : nodes) {
      if (node->runnable()) {
        if (next == nullptr || node->clock() < next->clock()) {
          next = node;
        }
      }
    }
    SimTime tq = queue_.empty() ? SimTime::Max() : queue_.PeekTime();

    if (next != nullptr && next->clock() >= config_.max_time) {
      timed_out = true;
      break;
    }

    if (next != nullptr && next->clock() < tq) {
      SimTime horizon = tq < config_.max_time ? tq : config_.max_time;
      next->RunSlice(horizon);
    } else if (!queue_.empty()) {
      if (tq > config_.max_time) {
        // Only events beyond the deadline remain and no node can run.
        timed_out = next != nullptr;
        deadlocked = next == nullptr;
        break;
      }
      queue_.RunNext();
    } else if (next != nullptr) {
      next->RunSlice(config_.max_time);
    } else {
      deadlocked = true;  // No events, nobody runnable, not done.
      break;
    }
  }

  result->completed = completed && !service_lost_;
  result->timed_out = timed_out;
  result->deadlocked = deadlocked;
  result->service_lost = service_lost_;
  result->completion_time = active_node().clock();
  result->crash_times = crash_times_;
  result->crash_time = crash_times_.empty() ? SimTime::Zero() : crash_times_.front();
  result->promoted = false;
  result->promotion_time = SimTime::Zero();
  for (size_t i = 1; i < replicas_.size(); ++i) {
    auto* b = static_cast<BackupNode*>(replicas_[i].get());
    if (b->promoted() && !result->promoted) {
      result->promoted = true;
      result->promotion_time = b->promotion_time();
    }
  }
}

}  // namespace hbft
