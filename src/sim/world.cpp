#include "sim/world.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "devices/device_set.hpp"
#include "sim/scenario.hpp"

namespace hbft {

namespace {
constexpr int kBareId = 0;
constexpr int kPrimaryId = 1;  // Backups are numbered 2, 3, ... down the chain.
}  // namespace

World::~World() = default;

World::World(const GuestProgram& guest, const WorldConfig& config, bool replicated)
    : config_(config), guest_(guest), crash_rng_(config.seed ^ 0xC4A5BEEFULL) {
  DeviceSetConfig device_config;
  device_config.disk_blocks = config.disk_blocks;
  device_config.disk_faults = config.disk_faults;
  device_config.console_faults = config.console_faults;
  device_config.with_nic = config.with_nic;
  device_config.nic_faults = config.nic_faults;
  devices_ = std::make_unique<DeviceSet>(device_config, config.costs, config.seed);

  if (!replicated) {
    bare_ = std::make_unique<BareNode>(kBareId, guest, config.machine, config.costs,
                                       devices_->BuildRegistry(), this);
    return;
  }

  HBFT_CHECK(config.backups >= 1) << "a replicated world needs at least one backup";
  const size_t n = static_cast<size_t>(config.backups) + 1;

  // Channel mesh: one link per direction per adjacent chain pair. The
  // downstream (protocol) direction is an ordered go-back-N stream; the
  // upstream (ack) direction is a datagram best-effort stream — cumulative
  // acks need no retransmission of their own. Each channel gets an
  // independent fault-RNG stream derived from the scenario seed so lossy
  // runs are exactly reproducible.
  for (size_t i = 0; i + 1 < n; ++i) {
    const uint64_t down_seed = config.seed ^ (0x11F0D1CEULL * (2 * i + 1));
    const uint64_t up_seed = config.seed ^ (0x11F0D1CEULL * (2 * i + 2));
    channels_[{i, i + 1}] = std::make_unique<Channel>(
        config.costs.link, ChannelMode::kOrdered, config.link_faults, down_seed);
    channels_[{i + 1, i}] = std::make_unique<Channel>(
        config.costs.link, ChannelMode::kDatagram, config.link_faults, up_seed);
  }

  for (size_t i = 0; i < n; ++i) {
    NodeLinks links;
    if (i > 0) {
      links.up_in = channel(i - 1, i);
      links.up_out = channel(i, i - 1);
    }
    if (i + 1 < n) {
      links.down_out = channel(i, i + 1);
      links.down_in = channel(i + 1, i);
    }
    const int id = kPrimaryId + static_cast<int>(i);
    if (i == 0) {
      replicas_.push_back(std::make_unique<PrimaryNode>(id, guest, config.machine,
                                                        config.replication, config.costs,
                                                        devices_->BuildRegistry(), links, this));
    } else {
      replicas_.push_back(std::make_unique<BackupNode>(id, guest, config.machine,
                                                       config.replication, config.costs,
                                                       devices_->BuildRegistry(), links, this));
    }
  }

  // Poll wiring: a send wakes the receiving neighbour at the arrival time.
  for (size_t i = 0; i + 1 < n; ++i) {
    WireAdjacentPolls(i, i + 1);
  }

  // The initial chain is index-linear; rejoins extend it below the tail.
  chain_next_.assign(n, kNoChain);
  chain_prev_.assign(n, kNoChain);
  for (size_t i = 0; i + 1 < n; ++i) {
    chain_next_[i] = i + 1;
    chain_prev_[i + 1] = i;
  }
}

void World::WireAdjacentPolls(size_t up_index, size_t down_index) {
  ReplicaNodeBase* up = replicas_[up_index].get();
  ReplicaNodeBase* down = replicas_[down_index].get();
  up->set_schedule_down_poll([this, down](SimTime arrival) {
    ScheduleAt(arrival, [down, arrival] { down->PollIncoming(arrival); });
  });
  down->set_schedule_up_poll([this, up](SimTime arrival) {
    ScheduleAt(arrival, [up, arrival] { up->PollIncoming(arrival); });
  });
}

Channel* World::channel(size_t from, size_t to) {
  auto it = channels_.find({from, to});
  HBFT_CHECK(it != channels_.end())
      << "no channel " << from << " -> " << to << " in the mesh";
  return it->second.get();
}

PrimaryNode* World::primary() {
  HBFT_CHECK(!replicas_.empty());
  return static_cast<PrimaryNode*>(replicas_[0].get());
}

BackupNode* World::backup(size_t backup_index) {
  HBFT_CHECK(backup_index + 1 < replicas_.size())
      << "backup index " << backup_index << " out of range";
  return static_cast<BackupNode*>(replicas_[backup_index + 1].get());
}

void World::ScheduleAt(SimTime t, std::function<void()> fn) { queue_.Push(t, std::move(fn)); }

void World::SetFailureSchedule(const FailureSchedule& schedule) {
  HBFT_CHECK(!replicas_.empty()) << "failure schedules require a replicated world";
  bool seen_rejoin = false;
  for (const FailurePlan& plan : schedule) {
    if (plan.kind == FailurePlan::Kind::kRejoin) {
      seen_rejoin = true;
    }
    if (plan.after_resync) {
      HBFT_CHECK(seen_rejoin)
          << "an after-resync kill needs a preceding rejoin event to wait for";
    }
    if (plan.kind == FailurePlan::Kind::kAtPhase) {
      HBFT_CHECK(plan.target == FailurePlan::Target::kActive)
          << "phase-based kills target the active replica (standing backups run no "
             "device phases)";
    }
    if (plan.kind != FailurePlan::Kind::kRejoin && plan.target == FailurePlan::Target::kBackup) {
      HBFT_CHECK(plan.backup_index >= 0 &&
                 static_cast<size_t>(plan.backup_index) + 1 < replicas_.size())
          << "backup index " << plan.backup_index << " out of range";
    }
  }
  schedule_ = schedule;
  next_failure_ = 0;
  ArmNextFailure();
}

void World::ArmNextFailure() {
  if (next_failure_ >= schedule_.size()) {
    return;
  }
  const FailurePlan& plan = schedule_[next_failure_];
  const size_t idx = next_failure_;
  switch (plan.kind) {
    case FailurePlan::Kind::kNone:
      ++next_failure_;
      ArmNextFailure();
      return;
    case FailurePlan::Kind::kAtTime: {
      if (plan.after_resync) {
        if (resync_in_flight_) {
          // Armed by OnJoined once the pending transfer completes.
          pending_after_resync_ = true;
        } else if (!resyncs_.empty() && resyncs_.back().completed) {
          // The transfer already completed (intervening schedule events can
          // delay arming past the join): measure the delay from the join.
          SimTime at = std::max(resyncs_.back().join_time + plan.time, last_event_time_);
          ScheduleAt(at, [this, idx, at] { FireTimedFailure(idx, at); });
        }
        // Otherwise the rejoin was skipped or aborted: redundancy was never
        // restored, so the kill — and everything scheduled after it — stays
        // dormant.
        return;
      }
      SimTime at = plan.relative ? last_event_time_ + plan.time : plan.time;
      ScheduleAt(at, [this, idx, at] { FireTimedFailure(idx, at); });
      return;
    }
    case FailurePlan::Kind::kRejoin: {
      SimTime at = plan.relative ? last_event_time_ + plan.time : plan.time;
      ScheduleAt(at, [this, idx, at] { FireRejoin(idx, at); });
      return;
    }
    case FailurePlan::Kind::kAtPhase:
      // Install on every replica: phases fire only on the node that drives
      // the devices, and the hook checks it is the *current* active node, so
      // an event armed before a failover lands on the promoted successor.
      for (size_t i = 0; i < replicas_.size(); ++i) {
        replicas_[i]->set_phase_hook(
            [this, idx, i](FailPhase phase, uint64_t epoch, uint64_t io_seq) {
              OnPhaseHook(idx, i, phase, epoch, io_seq);
            });
      }
      return;
  }
}

void World::OnPhaseHook(size_t schedule_index, size_t replica_index, FailPhase phase,
                        uint64_t epoch, uint64_t io_seq) {
  if (schedule_index != next_failure_ || replica_index != active_index_) {
    return;  // A stale hook, or a node that is not (yet) the active replica.
  }
  const FailurePlan& plan = schedule_[schedule_index];
  if (phase != plan.phase || epoch < plan.phase_epoch ||
      (plan.io_seq != 0 && io_seq != plan.io_seq)) {
    return;
  }
  ++next_failure_;
  SimTime t = replicas_[replica_index]->clock();
  last_event_time_ = t;
  KillReplica(replica_index, t, plan.crash_io);
  ArmNextFailure();
}

void World::FireTimedFailure(size_t schedule_index, SimTime when) {
  if (schedule_index != next_failure_) {
    return;
  }
  const FailurePlan& plan = schedule_[schedule_index];
  size_t victim = plan.target == FailurePlan::Target::kBackup
                      ? 1 + static_cast<size_t>(plan.backup_index)
                      : active_index_;
  ++next_failure_;
  ReplicaNodeBase* node = replicas_[victim].get();
  if (!node->dead() && !node->halted()) {
    SimTime t = node->clock() > when ? node->clock() : when;
    last_event_time_ = t;
    KillReplica(victim, t, plan.crash_io);
  } else {
    last_event_time_ = when;
  }
  ArmNextFailure();
}

void World::FireRejoin(size_t schedule_index, SimTime when) {
  if (schedule_index != next_failure_) {
    return;
  }
  ++next_failure_;
  last_event_time_ = when;
  RejoinReplica(when);
  ArmNextFailure();
}

size_t World::RejoinReplica(SimTime t) {
  HBFT_CHECK(!replicas_.empty()) << "rejoin requires a replicated world";
  if (service_lost_) {
    HBFT_INFO("world") << "rejoin skipped: service already lost";
    return npos;
  }
  // The transfer source is the chain's tail: the last live replica walking
  // down from the active one.
  size_t tail = active_index_;
  for (size_t j = chain_next_[tail]; j != kNoChain; j = chain_next_[j]) {
    if (!replicas_[j]->dead()) {
      tail = j;
    }
  }
  ReplicaNodeBase* source = replicas_[tail].get();
  if (source->dead() || source->halted() || source->joining() || source->transfer_active() ||
      !source->CanAdoptJoiner()) {
    // CanAdoptJoiner also covers the window between a downstream's death and
    // its detection: attaching inside it would race the pending
    // OnDownstreamFailureDetected callback into the fresh transfer.
    HBFT_INFO("world") << "rejoin skipped: no eligible transfer source";
    return npos;
  }

  const size_t pos = replicas_.size();
  // Fresh channel pair with its own fault-RNG streams, salted differently
  // from the construction-time mesh so rejoin wires never reuse a stream.
  const uint64_t down_seed = config_.seed ^ (0x5EED2E70ULL * (2 * pos + 1));
  const uint64_t up_seed = config_.seed ^ (0x5EED2E70ULL * (2 * pos + 2));
  channels_[{tail, pos}] = std::make_unique<Channel>(config_.costs.link, ChannelMode::kOrdered,
                                                     config_.link_faults, down_seed);
  channels_[{pos, tail}] = std::make_unique<Channel>(config_.costs.link, ChannelMode::kDatagram,
                                                     config_.link_faults, up_seed);

  NodeLinks links;
  links.up_in = channel(tail, pos);
  links.up_out = channel(pos, tail);
  const int id = kPrimaryId + static_cast<int>(pos);
  auto joiner = std::make_unique<BackupNode>(id, guest_, config_.machine, config_.replication,
                                             config_.costs, devices_->BuildRegistry(), links,
                                             this);
  joiner->StartAsJoiner();

  const size_t resync_index = resyncs_.size();
  ResyncReport report;
  report.source = tail;
  report.joined = pos;
  report.start = t;
  resyncs_.push_back(report);
  resync_in_flight_ = true;

  source->set_on_resync_cut(
      [this, resync_index](SimTime cut_time, const StateTransferSource::Report& rep) {
        ResyncReport& r = resyncs_[resync_index];
        r.cut = true;
        r.cut_time = cut_time;
        r.join_epoch = rep.cut_epoch;
        r.bytes = rep.bytes_sent;
        r.page_chunks = rep.page_chunks;
        r.zero_run_chunks = rep.zero_run_chunks;
        r.full_pages = rep.full_pages;
        r.delta_pages = rep.delta_pages;
        r.rounds = rep.rounds;
      });
  joiner->set_on_joined([this, resync_index](SimTime join_time, uint64_t join_epoch) {
    OnJoined(resync_index, join_time, join_epoch);
  });

  replicas_.push_back(std::move(joiner));
  chain_next_.push_back(kNoChain);
  chain_prev_.push_back(tail);
  chain_next_[tail] = pos;
  WireAdjacentPolls(tail, pos);

  // An armed phase-based kill must also see the new replica (it fires only
  // on the active node, which the joiner can eventually become).
  if (next_failure_ < schedule_.size() &&
      schedule_[next_failure_].kind == FailurePlan::Kind::kAtPhase) {
    const size_t idx = next_failure_;
    replicas_[pos]->set_phase_hook(
        [this, idx, pos](FailPhase phase, uint64_t epoch, uint64_t io_seq) {
          OnPhaseHook(idx, pos, phase, epoch, io_seq);
        });
  }

  source->AttachJoiningDownstream(channel(tail, pos), channel(pos, tail), t);
  return pos;
}

void World::OnJoined(size_t resync_index, SimTime t, uint64_t join_epoch) {
  ResyncReport& report = resyncs_[resync_index];
  report.completed = true;
  report.join_time = t;
  report.join_epoch = join_epoch;
  resync_in_flight_ = false;
  if (on_resync_done_) {
    on_resync_done_(resync_index, t);
  }
  if (pending_after_resync_) {
    pending_after_resync_ = false;
    HBFT_CHECK(next_failure_ < schedule_.size());
    const size_t idx = next_failure_;
    SimTime at = t + schedule_[idx].time;
    ScheduleAt(at, [this, idx, at] { FireTimedFailure(idx, at); });
  }
}

void World::KillReplica(size_t index, SimTime t, FailurePlan::CrashIo crash_io) {
  ReplicaNodeBase* node = replicas_[index].get();
  HBFT_CHECK(!node->dead());
  crash_times_.push_back(t);
  std::vector<PendingRealOp> in_flight = node->PendingRealOps();
  node->Kill(t);
  // Resolve each in-flight device operation. Only backends that leave a
  // genuine IO2 question at a crash (the disk) draw a performed/not verdict;
  // output latched at issue (console, NIC) already reached the environment,
  // and ResolveAtCrash just retires the vanished completion.
  for (const PendingRealOp& op : in_flight) {
    DeviceBackend* backend = devices_->backend(op.device_id);
    HBFT_CHECK(backend != nullptr);
    bool performed = false;
    if (backend->crash_resolvable()) {
      switch (crash_io) {
        case FailurePlan::CrashIo::kPerformed:
          performed = true;
          break;
        case FailurePlan::CrashIo::kNotPerformed:
          performed = false;
          break;
        case FailurePlan::CrashIo::kRandom:
        default:
          performed = crash_rng_.NextBool(0.5);
          break;
      }
    }
    backend->ResolveAtCrash(op.op_id, performed);
  }

  if (index == active_index_) {
    // The active replica died: the next surviving backup detects the silence
    // on the protocol stream (drain + timeout) and runs the P6/P7 takeover.
    // A successor still mid-join holds an incomplete snapshot and cannot
    // take over; it dies with its source, and the service is lost.
    const size_t successor = chain_next_[index];
    if (successor != kNoChain && !replicas_[successor]->dead() &&
        !replicas_[successor]->joining()) {
      SimTime detect = FailureDetector::DetectionTime(*channel(index, successor), t,
                                                      config_.costs.failure_detect_timeout,
                                                      config_.link_faults);
      auto* next_node = static_cast<BackupNode*>(replicas_[successor].get());
      ScheduleAt(detect, [next_node, detect] { next_node->OnFailureDetected(detect); });
      active_index_ = successor;
    } else {
      for (size_t j = successor; j != kNoChain; j = chain_next_[j]) {
        if (!replicas_[j]->dead()) {
          replicas_[j]->Kill(t);
        }
      }
      service_lost_ = true;
    }
    return;
  }

  // A standing backup died: its upstream neighbour notices the missing
  // acknowledgments and stops replicating to it. Replicas further down the
  // chain are cut off from the protocol stream — they can never catch up on
  // their own, so the chain truncates at the dead node (a later rejoin event
  // restores redundancy below the new tail).
  const size_t upstream = chain_prev_[index];
  HBFT_CHECK(upstream != kNoChain);
  SimTime detect = FailureDetector::DetectionTime(*channel(index, upstream), t,
                                                  config_.costs.failure_detect_timeout,
                                                  config_.link_faults);
  ReplicaNodeBase* up_node = replicas_[upstream].get();
  ScheduleAt(detect, [up_node, detect] { up_node->OnDownstreamFailureDetected(detect); });
  for (size_t j = chain_next_[index]; j != kNoChain; j = chain_next_[j]) {
    if (!replicas_[j]->dead()) {
      replicas_[j]->Kill(t);
    }
  }
}

void World::RouteInput(DeviceId device, const std::vector<uint8_t>& payload, SimTime t) {
  if (bare_ != nullptr) {
    bare_->InjectInput(device, payload, t);
    return;
  }
  // Route to the replica responsible for the environment: the active node,
  // or — between a crash and the promotion — its successor, which queues the
  // input until it takes over. A joiner never serves: it holds no usable
  // state yet.
  for (size_t j = active_index_; j != kNoChain; j = chain_next_[j]) {
    ReplicaNodeBase* node = replicas_[j].get();
    if (node->dead() || node->halted() || node->joining()) {
      continue;
    }
    node->InjectInput(device, payload, t);
    return;
  }
}

void World::InjectConsoleInput(const std::string& text, SimTime start, SimTime interval) {
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    SimTime t = start + interval * static_cast<int64_t>(i);
    ScheduleAt(t, [this, c, t] {
      RouteInput(DeviceId::kConsole, {static_cast<uint8_t>(c)}, t);
    });
  }
}

void World::InjectPacket(const std::vector<uint8_t>& payload, SimTime t) {
  ScheduleAt(t, [this, payload, t] { RouteInput(DeviceId::kNic, payload, t); });
}

Machine& World::active_machine() {
  if (bare_ != nullptr) {
    return bare_->machine();
  }
  return replicas_[active_index_]->hypervisor().machine();
}

NodeActor& World::active_node() {
  if (bare_ != nullptr) {
    return *bare_;
  }
  return *replicas_[active_index_];
}

void World::Run(ScenarioResult* result) {
  RunLoop(SimTime::Max());
  Finish(result);
}

bool World::RunLoop(SimTime limit) {
  if (run_finished_) {
    return false;
  }

  // Nodes are enumerated live: a rejoin event mid-run appends replicas.
  auto for_each_node = [this](auto&& fn) {
    if (bare_ != nullptr) {
      fn(static_cast<NodeActor*>(bare_.get()));
    }
    for (auto& replica : replicas_) {
      fn(static_cast<NodeActor*>(replica.get()));
    }
  };

  while (true) {
    bool all_done = true;
    for_each_node([&all_done](NodeActor* node) {
      // A replica still joining blocks on its source, not on the world: if
      // everything else is done (say the guest halted mid-transfer), the run
      // is over and the join simply never completed.
      if (!node->halted() && !node->dead() && !node->joining()) {
        all_done = false;
      }
    });
    if (all_done) {
      run_completed_ = true;
      break;
    }

    NodeActor* next = nullptr;
    for_each_node([&next](NodeActor* node) {
      if (node->runnable()) {
        if (next == nullptr || node->clock() < next->clock()) {
          next = node;
        }
      }
    });
    SimTime tq = queue_.empty() ? SimTime::Max() : queue_.PeekTime();

    // Co-simulation pause: the next actionable instant is at or past the
    // caller's limit, so hand control back without finishing the run. With
    // limit == Max this never triggers and the loop is the classic Run.
    if (limit < SimTime::Max()) {
      SimTime tn = next != nullptr ? next->clock() : SimTime::Max();
      SimTime actionable = tn < tq ? tn : tq;
      if (actionable >= limit) {
        return true;
      }
    }

    if (next != nullptr && next->clock() >= config_.max_time) {
      run_timed_out_ = true;
      break;
    }

    if (next != nullptr && next->clock() < tq) {
      SimTime horizon = tq < config_.max_time ? tq : config_.max_time;
      if (horizon > limit) {
        horizon = limit;
      }
      next->RunSlice(horizon);
    } else if (!queue_.empty()) {
      if (tq > config_.max_time) {
        // Only events beyond the deadline remain and no node can run.
        run_timed_out_ = next != nullptr;
        run_deadlocked_ = next == nullptr;
        break;
      }
      queue_.RunNext();
    } else if (next != nullptr) {
      SimTime horizon = config_.max_time < limit ? config_.max_time : limit;
      next->RunSlice(horizon);
    } else {
      run_deadlocked_ = true;  // No events, nobody runnable, not done.
      break;
    }
  }
  run_finished_ = true;
  return false;
}

void World::Finish(ScenarioResult* result) {
  result->completed = run_completed_ && !service_lost_;
  result->timed_out = run_timed_out_;
  result->deadlocked = run_deadlocked_;
  result->service_lost = service_lost_;
  result->completion_time = active_node().clock();
  result->crash_times = crash_times_;
  result->crash_time = crash_times_.empty() ? SimTime::Zero() : crash_times_.front();
  result->promoted = false;
  result->promotion_time = SimTime::Zero();
  for (size_t i = 1; i < replicas_.size(); ++i) {
    auto* b = static_cast<BackupNode*>(replicas_[i].get());
    if (b->promoted() && !result->promoted) {
      result->promoted = true;
      result->promotion_time = b->promotion_time();
    }
  }
  result->resyncs = resyncs_;
}

}  // namespace hbft
