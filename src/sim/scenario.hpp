// High-level scenario runners: the public API most tests, benchmarks, and
// examples use.
//
//   ScenarioResult bare = RunBare(WorkloadSpec::PaperCpu());
//   ScenarioResult ft   = RunReplicated(WorkloadSpec::PaperCpu(), options);
//   double np = NormalizedPerformance(ft, bare);   // The paper's N'/N.
#ifndef HBFT_SIM_SCENARIO_HPP_
#define HBFT_SIM_SCENARIO_HPP_

#include <string>
#include <vector>

#include "guest/workloads.hpp"
#include "sim/environment_observer.hpp"
#include "sim/world.hpp"

namespace hbft {

struct ScenarioOptions {
  ReplicationConfig replication;
  CostModel costs;
  uint64_t seed = 42;
  uint32_t disk_blocks = 128;
  uint32_t ram_bytes = 4 * 1024 * 1024;
  uint32_t tlb_entries = 64;
  TlbPolicy tlb_policy = TlbPolicy::kHardwareRandom;
  DiskFaultPlan disk_faults;
  FailurePlan failure;
  SimTime max_time = SimTime::Seconds(900);
  std::string console_input;
  SimTime console_input_start = SimTime::Millis(100);
  SimTime console_input_interval = SimTime::Millis(20);
};

struct ScenarioResult {
  // Run outcome.
  bool completed = false;
  bool timed_out = false;
  bool deadlocked = false;
  SimTime completion_time = SimTime::Zero();

  // Guest-reported results (read back from the surviving machine's memory).
  uint32_t exited_flag = 0;  // 1 = clean exit, 2 = kernel panic.
  uint32_t exit_code = 0;
  uint32_t guest_checksum = 0;
  uint32_t panic_code = 0;
  uint32_t ticks = 0;

  // Environment.
  std::string console_output;
  std::vector<DiskTraceEntry> disk_trace;
  std::vector<ConsoleTraceEntry> console_trace;

  // Replication.
  bool promoted = false;
  SimTime promotion_time = SimTime::Zero();
  SimTime crash_time = SimTime::Zero();
  Hypervisor::Stats primary_hv_stats;
  Hypervisor::Stats backup_hv_stats;
  ReplicaNodeBase::Stats primary_stats;
  ReplicaNodeBase::Stats backup_stats;
  std::vector<uint64_t> primary_boundary_fingerprints;
  std::vector<uint64_t> backup_boundary_fingerprints;

  int primary_id = 1;
  int backup_id = 2;
  int bare_id = 0;
};

ScenarioResult RunBare(const WorkloadSpec& workload, const ScenarioOptions& options = {});
ScenarioResult RunReplicated(const WorkloadSpec& workload, const ScenarioOptions& options = {});

// The paper's figure of merit: N'/N.
double NormalizedPerformance(const ScenarioResult& replicated, const ScenarioResult& bare);

// Number of leading epoch boundaries at which both replicas' fingerprints
// agree; HBFT_CHECKs that the compared prefix matches when `require` is set.
size_t MatchingBoundaryPrefix(const ScenarioResult& result);

}  // namespace hbft

#endif  // HBFT_SIM_SCENARIO_HPP_
