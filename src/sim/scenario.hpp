// High-level scenario API: the composable builder most tests, benchmarks,
// and examples use.
//
//   ScenarioResult bare = Scenario::Bare(WorkloadSpec::PaperCpu()).Run();
//   ScenarioResult ft   = Scenario::Replicated(WorkloadSpec::PaperCpu())
//                             .Backups(2)
//                             .Epoch(8192)
//                             .Variant(ProtocolVariant::kRevised)
//                             .FailAtTime(SimTime::Millis(40))
//                             .FailAtPhase(FailPhase::kAfterIoIssue)
//                             .Run();
//   double np = NormalizedPerformance(ft, bare);   // The paper's N'/N.
//
// Devices are pluggable: the disk/console pair is always attached, and
// additional devices join via the builder —
//
//   ScenarioResult net = Scenario::Replicated(WorkloadSpec::NetEcho(3))
//                            .Device(DeviceId::kNic)
//                            .InjectPacket({'h','i'})
//                            .FailAtPhase(FailPhase::kAfterIoIssue)
//                            .Run();
//
// A failure schedule is an ordered list: each FailAt* event arms only after
// the previous one fired, so cascading failovers ("kill the primary, then
// kill the promoted backup") compose naturally.
#ifndef HBFT_SIM_SCENARIO_HPP_
#define HBFT_SIM_SCENARIO_HPP_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "devices/console.hpp"
#include "devices/disk.hpp"
#include "devices/nic.hpp"
#include "guest/workloads.hpp"
#include "sim/environment_observer.hpp"
#include "sim/world.hpp"

namespace hbft {

struct ScenarioResult {
  // Run outcome (filled by World::Run directly).
  bool completed = false;
  bool timed_out = false;
  bool deadlocked = false;
  bool service_lost = false;  // Every replica crashed: nobody serves.
  SimTime completion_time = SimTime::Zero();
  bool promoted = false;                       // Any backup took over.
  SimTime promotion_time = SimTime::Zero();    // First takeover.
  SimTime crash_time = SimTime::Zero();        // First injected crash.
  std::vector<SimTime> crash_times;            // Every injected crash, in order.

  // Guest-reported results (read back from the surviving machine's memory).
  uint32_t exited_flag = 0;  // 1 = clean exit, 2 = kernel panic.
  uint32_t exit_code = 0;
  uint32_t guest_checksum = 0;
  uint32_t panic_code = 0;
  uint32_t ticks = 0;

  // Environment. `env_trace` is the device-tagged trace the generalized
  // consistency checker consumes; the typed traces remain for device-level
  // assertions (durability, content checks).
  std::string console_output;
  std::vector<EnvTraceEntry> env_trace;
  std::vector<DiskTraceEntry> disk_trace;
  std::vector<ConsoleTraceEntry> console_trace;
  std::vector<NicTraceEntry> nic_trace;

  // Transport: one report per channel of the mesh, in chain order (for each
  // adjacent pair: the downstream protocol stream, then the upstream ack
  // stream); empty for bare runs. Delivered/goodput aggregates count the
  // ordered protocol channels only (each message exactly once); wire-byte
  // aggregates count everything, so under loss goodput trails the wire
  // rate — the gap being retransmissions, duplicates, discards, and acks.
  struct ChannelReport {
    size_t from = 0;  // Chain positions (0 = primary).
    size_t to = 0;
    ChannelMode mode = ChannelMode::kOrdered;  // Protocol stream vs ack datagrams.
    Channel::Counters counters;
  };
  std::vector<ChannelReport> channels;
  uint64_t TotalRetransmits() const;
  uint64_t TotalWireBytes() const;
  uint64_t TotalDeliveredBytes() const;
  double GoodputBps() const;  // Delivered bytes / completion time.

  // Replication: one report per replica in spawn order (primary first, then
  // each backup down the chain, then any rejoined replicas); empty for bare
  // runs. A rejoined node's boundary fingerprints start at `join_epoch`, so
  // lockstep comparison against an original node uses that offset.
  struct NodeReport {
    int id = 0;
    bool promoted = false;
    SimTime promotion_time = SimTime::Zero();
    bool rejoined = false;   // Spawned by a rejoin event (live state transfer).
    bool joined = false;     // Transfer completed; entered the chain.
    SimTime join_time = SimTime::Zero();
    uint64_t join_epoch = 0;
    Hypervisor::Stats hv_stats;
    ReplicaNodeBase::Stats stats;
    std::vector<uint64_t> boundary_fingerprints;
  };
  std::vector<NodeReport> nodes;

  // Repair: one report per rejoin event, in schedule order.
  std::vector<ResyncReport> resyncs;
  uint64_t TotalResyncBytes() const;

  // Pair conveniences over `nodes` (safe empty defaults for bare runs).
  const ReplicaNodeBase::Stats& primary_stats() const;
  const ReplicaNodeBase::Stats& backup_stats(size_t backup_index = 0) const;
  const Hypervisor::Stats& primary_hv_stats() const;
  const Hypervisor::Stats& backup_hv_stats(size_t backup_index = 0) const;
  const std::vector<uint64_t>& primary_boundary_fingerprints() const;
  const std::vector<uint64_t>& backup_boundary_fingerprints(size_t backup_index = 0) const;

  // Device-issuer ids in takeover order, for the chain consistency checks.
  std::vector<int> issuer_chain() const;

  int primary_id = 1;
  int backup_id = 2;
  int bare_id = 0;
};

// Composable scenario builder. Value-semantic: copies are independent, so a
// base configuration can fan out into variants.
class Scenario {
 public:
  static Scenario Bare(const WorkloadSpec& workload);
  static Scenario Replicated(const WorkloadSpec& workload);

  // --- Replication ----------------------------------------------------------
  Scenario& Backups(int count);  // Chain length: 1 primary + `count` backups.
  Scenario& Epoch(uint64_t epoch_length);
  Scenario& Variant(ProtocolVariant variant);
  Scenario& Replication(const ReplicationConfig& replication);
  Scenario& TlbTakeover(bool takeover);
  Scenario& AuditLockstep(bool audit = true);
  // Epoch pipelining window (0 = the paper's strict boundary ack wait) and
  // backup-side ack coalescing (1 = ack every message).
  Scenario& PipelineDepth(uint32_t depth);
  Scenario& AckBatch(uint32_t batch);

  // --- Interconnect ---------------------------------------------------------
  // Fault model for every channel of the replica mesh (drop/duplicate/
  // reorder probabilities, bounded sender queue, retransmission timeout,
  // optional burst window). Defaults to the ideal wire.
  Scenario& LinkFaults(const ::hbft::LinkFaults& faults);

  // --- Machine & environment ------------------------------------------------
  Scenario& Costs(const CostModel& costs);
  Scenario& Hardware(const MachineConfig& machine);  // Folded machine knobs.
  Scenario& RamBytes(uint32_t ram_bytes);
  Scenario& Tlb(uint32_t entries, TlbPolicy policy);
  // Interpreter selection (slow fetch-decode vs cached superblocks) and the
  // translation-cache slot count. Dispatch mode never changes results — only
  // host speed — so every scenario accepts either.
  Scenario& Interp(InterpMode mode);
  Scenario& TcacheSlots(uint32_t slots);
  Scenario& Seed(uint64_t seed);
  Scenario& DiskBlocks(uint32_t blocks);
  Scenario& MaxTime(SimTime max_time);

  // --- Devices --------------------------------------------------------------
  // Attaches an optional device to every node's registry (disk and console
  // are always present; currently only the NIC is optional).
  Scenario& Device(DeviceId id);
  Scenario& DiskFaults(const FaultPlan& faults);
  Scenario& ConsoleFaults(const FaultPlan& faults);
  Scenario& NicFaults(const FaultPlan& faults);

  // --- Environment input ----------------------------------------------------
  Scenario& ConsoleInput(std::string text);
  Scenario& ConsoleInput(std::string text, SimTime start, SimTime interval);
  // Queues a packet for injection (implies Device(kNic)). Without an
  // explicit time, packets space themselves PacketTiming()-style like
  // console input.
  Scenario& InjectPacket(std::vector<uint8_t> payload);
  Scenario& InjectPacket(std::vector<uint8_t> payload, SimTime t);
  Scenario& PacketTiming(SimTime start, SimTime interval);

  // --- Failure/repair schedule (ordered; each event arms after the previous)
  Scenario& FailAt(const FailurePlan& plan);
  Scenario& FailAtTime(SimTime time,
                       FailurePlan::Target target = FailurePlan::Target::kActive,
                       int backup_index = 0);
  Scenario& FailAtPhase(FailPhase phase, uint64_t epoch = 0,
                        FailurePlan::CrashIo crash_io = FailurePlan::CrashIo::kRandom);
  // Repair events: spawn a fresh replica below the chain's tail and stream
  // it the live state transfer — at an absolute time, or a delay after the
  // previous schedule event (typically a kill) fired. FailAfterResync kills
  // the active replica `delay` after the transfer completes, expressing the
  // full fail -> rejoin -> fail drill without guessing transfer durations.
  Scenario& RejoinAtTime(SimTime time);
  Scenario& RejoinAfterFail(SimTime delay);
  Scenario& FailAfterResync(SimTime delay,
                            FailurePlan::CrashIo crash_io = FailurePlan::CrashIo::kRandom);
  // Live-transfer tuning (pacing window, delta threshold, round cap).
  Scenario& Resync(const StateTransferConfig& config);

  // The same machine/devices/seed with replication stripped: the reference
  // run for N'/N and consistency checks.
  Scenario AsBare() const;

  ScenarioResult Run() const;

  // The two halves of Run(), exposed so a caller can drive the world
  // incrementally (World::RunLoop) and interleave many worlds — the fleet's
  // lockstep co-simulation. `BuildWorld` performs everything up to (not
  // including) the run itself: construction, workload parameter patching,
  // failure schedule, console/packet injection. `CollectResult` extracts the
  // post-run report; call it only after World::Finish filled `result`'s run
  // fields. Run() == BuildWorld() + World::Run + CollectResult().
  std::unique_ptr<World> BuildWorld() const;
  void CollectResult(World& world, ScenarioResult* result) const;

  const WorkloadSpec& workload() const { return workload_; }
  bool replicated() const { return replicated_; }
  int backups() const { return backups_; }
  const ReplicationConfig& replication() const { return replication_; }
  const CostModel& costs() const { return costs_; }
  const FailureSchedule& failures() const { return failures_; }

 private:
  Scenario(const WorkloadSpec& workload, bool replicated);

  struct PacketInjection {
    std::vector<uint8_t> payload;
    bool has_time = false;
    SimTime time = SimTime::Zero();
  };

  WorkloadSpec workload_;
  bool replicated_ = false;
  ReplicationConfig replication_;
  CostModel costs_;
  MachineConfig machine_;
  int backups_ = 1;
  uint64_t seed_ = 42;
  uint32_t disk_blocks_ = 128;
  ::hbft::LinkFaults link_faults_;
  bool with_nic_ = false;
  FaultPlan disk_faults_;
  FaultPlan console_faults_;
  FaultPlan nic_faults_;
  FailureSchedule failures_;
  SimTime max_time_ = SimTime::Seconds(900);
  std::string console_input_;
  SimTime console_input_start_ = SimTime::Millis(100);
  SimTime console_input_interval_ = SimTime::Millis(20);
  std::vector<PacketInjection> packets_;
  SimTime packet_start_ = SimTime::Millis(100);
  SimTime packet_interval_ = SimTime::Millis(20);
};

// Thin convenience for the ubiquitous default-configuration reference run.
ScenarioResult RunBare(const WorkloadSpec& workload);

// The paper's figure of merit: N'/N.
double NormalizedPerformance(const ScenarioResult& replicated, const ScenarioResult& bare);

// Number of leading epoch boundaries at which the two nodes' fingerprints
// agree (chain indices into ScenarioResult::nodes; default: the primary and
// its first backup).
size_t MatchingBoundaryPrefix(const ScenarioResult& result, size_t node_a = 0, size_t node_b = 1);

}  // namespace hbft

#endif  // HBFT_SIM_SCENARIO_HPP_
