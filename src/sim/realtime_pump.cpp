#ifndef _GNU_SOURCE
#define _GNU_SOURCE  // ppoll
#endif

#include "sim/realtime_pump.hpp"

// hbft-lint: allow-file(wall-clock) — this layer IS the wall-clock boundary;
// everything downstream of Now() stays deterministic.

#include <cerrno>
#include <ctime>
#include <poll.h>

namespace hbft {

SimTime RealtimePump::Now() {
  auto elapsed = std::chrono::steady_clock::now() - epoch_;
  int64_t nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  SimTime t = SimTime::Nanos(nanos);
  if (t < last_) {
    t = last_;
  }
  last_ = t;
  return t;
}

int RealtimePump::Poll(pollfd* fds, size_t nfds, SimTime max_wait) {
  // ppoll for sub-millisecond waits: protocol events are often scheduled
  // tens of microseconds apart, and rounding every wait up to 1 ms would
  // serialise each event hop onto a millisecond of wall time.
  int64_t nanos = max_wait.nanos();
  if (nanos < 50 * 1000) {
    nanos = 50 * 1000;  // Floor: a zero-ish bound must not busy-spin.
  }
  if (nanos > 1000 * 1000 * 1000LL) {
    nanos = 1000 * 1000 * 1000LL;  // Bound the sleep so stop flags stay responsive.
  }
  timespec ts{};
  ts.tv_sec = nanos / 1000000000LL;
  ts.tv_nsec = nanos % 1000000000LL;
  int rc = ppoll(fds, static_cast<nfds_t>(nfds), &ts, nullptr);
  if (rc < 0 && errno == EINTR) {
    return 0;
  }
  return rc;
}

}  // namespace hbft
