// World: deterministic co-simulation of the fault-tolerant pair (or of one
// bare reference machine), the shared disk, the console, the interconnect,
// and failure injection.
//
// Scheduling is conservative and deterministic: the runnable node with the
// smallest local clock advances until the next global event time; events tie-
// break by insertion order. Replica nodes interact only through channels and
// devices, all of which go through the event queue.
#ifndef HBFT_SIM_WORLD_HPP_
#define HBFT_SIM_WORLD_HPP_

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "core/backup.hpp"
#include "core/failure_detector.hpp"
#include "core/primary.hpp"
#include "sim/event_queue.hpp"
#include "sim/node.hpp"

namespace hbft {

struct FailurePlan {
  enum class Kind { kNone, kAtTime, kAtPhase };
  enum class Target { kPrimary, kBackup };
  Kind kind = Kind::kNone;
  Target target = Target::kPrimary;      // Which replica the fault hits.
  SimTime time = SimTime::Zero();        // kAtTime.
  FailPhase phase = FailPhase::kNone;    // kAtPhase: protocol point ...
  uint64_t phase_epoch = 0;              // ... in this epoch ...
  uint64_t io_seq = 0;                   // ... or at this I/O op (0 = any).

  // What happens to device operations in flight at the crash (IO2's "may or
  // may not have been performed", made explicit for tests).
  enum class CrashIo { kRandom, kPerformed, kNotPerformed };
  CrashIo crash_io = CrashIo::kRandom;
};

struct WorldConfig {
  CostModel costs;
  ReplicationConfig replication;
  MachineConfig machine;
  uint32_t disk_blocks = 128;
  uint64_t seed = 42;
  DiskFaultPlan disk_faults;
  SimTime max_time = SimTime::Seconds(600);
};

class World : public EventScheduler {
 public:
  // `replicated` builds primary+backup; otherwise one bare node.
  World(const GuestProgram& guest, const WorldConfig& config, bool replicated);

  void ScheduleAt(SimTime t, std::function<void()> fn) override;
  SimTime NextEventTime() const override {
    return queue_.empty() ? SimTime::Max() : queue_.PeekTime();
  }

  void SetFailurePlan(const FailurePlan& plan);
  void InjectConsoleInput(const std::string& text, SimTime start, SimTime interval);

  struct Outcome {
    bool completed = false;
    bool timed_out = false;
    bool deadlocked = false;
    SimTime completion_time = SimTime::Zero();
    bool promoted = false;
    SimTime promotion_time = SimTime::Zero();
    SimTime crash_time = SimTime::Zero();
  };
  Outcome Run();

  Disk& disk() { return *disk_; }
  Console& console() { return *console_; }
  PrimaryNode* primary() { return primary_.get(); }
  BackupNode* backup() { return backup_.get(); }
  BareNode* bare() { return bare_.get(); }

  // The machine whose state carries the workload's results: the bare node,
  // the promoted backup, or the primary.
  Machine& active_machine();
  NodeActor& active_node();

  void KillPrimary(SimTime t);
  void KillBackup(SimTime t);

 private:
  WorldConfig config_;
  EventQueue queue_;
  DeterministicRng crash_rng_;
  std::unique_ptr<Disk> disk_;
  std::unique_ptr<Console> console_;
  std::unique_ptr<Channel> chan_pb_;  // Primary -> backup.
  std::unique_ptr<Channel> chan_bp_;  // Backup -> primary (acks).
  std::unique_ptr<PrimaryNode> primary_;
  std::unique_ptr<BackupNode> backup_;
  std::unique_ptr<BareNode> bare_;
  FailurePlan failure_plan_;
  bool failure_fired_ = false;
  SimTime crash_time_ = SimTime::Zero();
};

}  // namespace hbft

#endif  // HBFT_SIM_WORLD_HPP_
