// World: deterministic co-simulation of a replica chain (1 primary + k
// backups, or one bare reference machine), the shared device backends, the
// interconnect mesh, and failure injection.
//
// Scheduling is conservative and deterministic: the runnable node with the
// smallest local clock advances until the next global event time; events tie-
// break by insertion order. Replica nodes interact only through channels and
// devices, all of which go through the event queue.
//
// Devices: one shared DeviceSet (the environment side — disk, console,
// optionally a NIC) feeds a per-node DeviceRegistry of register models. The
// world itself is device-generic: environment input, crash resolution of
// in-flight operations, and trace extraction all go through DeviceId-tagged
// interfaces, never through concrete device types.
//
// Topology: replicas form a chain primary -> backup_1 -> ... -> backup_k,
// joined by a channel mesh keyed (from, to) — one FIFO link per direction per
// adjacent pair. Failures are an ordered schedule of fail-stop events; when
// the active replica dies, the next surviving backup detects it (channel
// drain + timeout) and runs the P6/P7 takeover, then re-protects itself by
// relaying to its own backup. A chain with k backups survives k successive
// active-replica failures.
#ifndef HBFT_SIM_WORLD_HPP_
#define HBFT_SIM_WORLD_HPP_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/backup.hpp"
#include "core/failure_detector.hpp"
#include "core/primary.hpp"
#include "sim/event_queue.hpp"
#include "sim/node.hpp"

namespace hbft {

class DeviceSet;
struct ScenarioResult;

struct FailurePlan {
  // kRejoin is a repair event, not a failure: a fresh replica is spawned,
  // receives a live state transfer from the chain's tail, and enters the
  // chain as a standing backup. It shares the schedule so repeated
  // fail -> rejoin -> fail sequences order naturally.
  enum class Kind { kNone, kAtTime, kAtPhase, kRejoin };
  // kActive: whichever replica currently drives the devices — the primary,
  // or after a failover the most recently promoted backup. kBackup: the
  // standing backup at `backup_index` (0 = the primary's immediate backup).
  enum class Target { kActive, kBackup };
  Kind kind = Kind::kNone;
  Target target = Target::kActive;
  int backup_index = 0;                  // Target::kBackup only.
  SimTime time = SimTime::Zero();        // kAtTime / kRejoin (see `relative`).
  FailPhase phase = FailPhase::kNone;    // kAtPhase: protocol point ...
  uint64_t phase_epoch = 0;              // ... in this epoch ...
  uint64_t io_seq = 0;                   // ... or at this I/O op (0 = any).

  // `relative`: `time` is a delay measured from the previous schedule
  // event's fire time rather than an absolute instant. `after_resync` (kills
  // only): arm this event only once the pending rejoin's state transfer has
  // completed, `time` after the joiner came online — the natural way to
  // express "kill the new primary after redundancy is restored".
  bool relative = false;
  bool after_resync = false;

  // What happens to device operations in flight at the crash (IO2's "may or
  // may not have been performed", made explicit for tests).
  enum class CrashIo { kRandom, kPerformed, kNotPerformed };
  CrashIo crash_io = CrashIo::kRandom;
};

// An ordered list of failure/repair events. Event i+1 is armed only after
// event i has fired, so "kill the primary, rejoin a fresh backup, then kill
// the promoted backup" is expressible directly.
using FailureSchedule = std::vector<FailurePlan>;

// One live state transfer's outcome, for reports and tests.
struct ResyncReport {
  size_t source = 0;   // Chain position that streamed the snapshot.
  size_t joined = 0;   // Chain position of the new replica.
  SimTime start = SimTime::Zero();      // Transfer began (pre-copy).
  SimTime cut_time = SimTime::Zero();   // Source-side quiesce + cut.
  SimTime join_time = SimTime::Zero();  // Joiner restored; backup online.
  bool cut = false;        // Source finished streaming.
  bool completed = false;  // Joiner restored and entered the chain.
  uint64_t join_epoch = 0;  // The joiner resumed at the start of this epoch.
  uint64_t bytes = 0;       // Chunk bytes on the protocol stream, incl. control.
  uint64_t page_chunks = 0;
  uint64_t zero_run_chunks = 0;
  uint64_t full_pages = 0;
  uint64_t delta_pages = 0;
  uint64_t rounds = 0;
};

struct WorldConfig {
  CostModel costs;
  ReplicationConfig replication;
  MachineConfig machine;
  int backups = 1;  // Chain length: 1 primary + `backups` backups.
  uint32_t disk_blocks = 128;
  uint64_t seed = 42;
  // Interconnect fault model (drop/duplicate/reorder + bounded sender
  // queue), applied to every channel of the mesh. Protocol-direction
  // channels run go-back-N recovery on top; ack channels are datagrams.
  // Default: ideal wire, byte-identical to the fault-free model.
  LinkFaults link_faults;
  FaultPlan disk_faults;
  FaultPlan console_faults;
  bool with_nic = false;  // Attach the NIC to every node's registry.
  FaultPlan nic_faults;
  SimTime max_time = SimTime::Seconds(600);
};

class World : public EventScheduler {
 public:
  // `replicated` builds the chain of 1 + config.backups replicas; otherwise
  // one bare node.
  World(const GuestProgram& guest, const WorldConfig& config, bool replicated);
  ~World() override;

  void ScheduleAt(SimTime t, std::function<void()> fn) override;
  SimTime NextEventTime() const override {
    return queue_.empty() ? SimTime::Max() : queue_.PeekTime();
  }

  void SetFailureSchedule(const FailureSchedule& schedule);

  // Environment input, routed to the replica currently responsible for the
  // environment (or queued by its successor between a crash and promotion).
  void InjectConsoleInput(const std::string& text, SimTime start, SimTime interval);
  void InjectPacket(const std::vector<uint8_t>& payload, SimTime t);

  // Runs the simulation to quiescence and fills the run-outcome portion of
  // `result` (completed/timed_out/deadlocked/service_lost, completion and
  // crash/promotion times) directly — there is no intermediate outcome
  // struct to drift from ScenarioResult. Equivalent to RunLoop(SimTime::Max())
  // followed by Finish(result).
  void Run(ScenarioResult* result);

  // Resumable form, for co-simulation (the fleet drives many worlds in
  // lockstep): advances nodes and events until the next actionable instant is
  // at or past `limit`, every node is finished, or nothing can make progress.
  // Repeated calls with non-decreasing limits reproduce exactly the schedule
  // a single Run would have taken (node slicing is horizon-invariant).
  // Returns true while the world can still make progress on a later call.
  bool RunLoop(SimTime limit);
  // Fills the run-outcome portion of `result` after the last RunLoop call.
  void Finish(ScenarioResult* result);
  bool finished() const { return run_finished_; }
  bool service_lost() const { return service_lost_; }

  // The shared device backends (environment side).
  DeviceSet& devices() { return *devices_; }

  // Node registry.
  BareNode* bare() { return bare_.get(); }
  size_t replica_count() const { return replicas_.size(); }
  ReplicaNodeBase* replica(size_t index) { return replicas_[index].get(); }
  PrimaryNode* primary();
  BackupNode* backup(size_t backup_index = 0);

  // The channel mesh, keyed (from, to) by chain position. Rejoins add pairs
  // that need not be index-adjacent (the chain may have dead nodes between
  // the tail and the joiner's slot).
  Channel* channel(size_t from, size_t to);
  const std::map<std::pair<size_t, size_t>, std::unique_ptr<Channel>>& channel_map() const {
    return channels_;
  }

  // Repair: spawn a fresh replica, attach it below the chain's tail, and
  // start the live state transfer. No-op (with a log) when nobody can serve
  // as the source. Usually driven by a kRejoin schedule event. Returns the
  // chain position of the new replica, or npos when the rejoin was skipped.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t RejoinReplica(SimTime t);

  // Completed and in-flight state transfers, in schedule order.
  const std::vector<ResyncReport>& resyncs() const { return resyncs_; }

  // Fleet hook: fires when a live state transfer completes (the joiner is a
  // standing backup), with the join time — the instant a per-host repair
  // slot frees. The callback runs inside RunLoop/Finish, which the parallel
  // fleet executes on a worker thread: it must only touch per-chain state
  // (the fleet buffers the completion and applies its cross-chain effects at
  // the round barrier).
  void set_on_resync_done(std::function<void(size_t resync_index, SimTime t)> fn) {
    on_resync_done_ = std::move(fn);
  }

  // The machine whose state carries the workload's results: the bare node,
  // or the replica currently responsible for the environment.
  Machine& active_machine();
  NodeActor& active_node();
  size_t active_index() const { return active_index_; }

  // Fail-stop kill of a replica by chain position, resolving its in-flight
  // device operations per `crash_io` and scheduling failure detection on the
  // surviving neighbour.
  void KillReplica(size_t index, SimTime t, FailurePlan::CrashIo crash_io);

 private:
  static constexpr size_t kNoChain = static_cast<size_t>(-1);

  void ArmNextFailure();
  void FireTimedFailure(size_t schedule_index, SimTime when);
  void FireRejoin(size_t schedule_index, SimTime when);
  void OnPhaseHook(size_t schedule_index, size_t replica_index, FailPhase phase, uint64_t epoch,
                   uint64_t io_seq);
  void OnJoined(size_t resync_index, SimTime t, uint64_t join_epoch);
  void WireAdjacentPolls(size_t up_index, size_t down_index);

  // Routes environment input to the node serving (or about to serve) the
  // environment.
  void RouteInput(DeviceId device, const std::vector<uint8_t>& payload, SimTime t);

  WorldConfig config_;
  GuestProgram guest_;
  EventQueue queue_;
  DeterministicRng crash_rng_;
  std::unique_ptr<DeviceSet> devices_;
  std::map<std::pair<size_t, size_t>, std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<ReplicaNodeBase>> replicas_;
  std::unique_ptr<BareNode> bare_;
  FailureSchedule schedule_;
  size_t next_failure_ = 0;
  std::vector<SimTime> crash_times_;
  size_t active_index_ = 0;
  bool service_lost_ = false;

  // Resumable run-loop outcome state (set by RunLoop, read by Finish).
  bool run_finished_ = false;
  bool run_completed_ = false;
  bool run_timed_out_ = false;
  bool run_deadlocked_ = false;

  std::function<void(size_t, SimTime)> on_resync_done_;

  // The chain as linked positions (kNoChain = end). Rejoined replicas append
  // to replicas_ but link below the tail, so neighbours are no longer always
  // index-adjacent once a mid-chain node has died.
  std::vector<size_t> chain_next_;
  std::vector<size_t> chain_prev_;

  // Schedule/repair bookkeeping.
  SimTime last_event_time_ = SimTime::Zero();
  bool resync_in_flight_ = false;
  bool pending_after_resync_ = false;  // Next event armed at resync completion.
  std::vector<ResyncReport> resyncs_;
};

}  // namespace hbft

#endif  // HBFT_SIM_WORLD_HPP_
