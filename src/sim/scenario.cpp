#include "sim/scenario.hpp"

#include "common/check.hpp"
#include "devices/device_set.hpp"
#include "guest/image.hpp"

namespace hbft {

namespace {

void ReadBackGuestState(Machine& machine, ScenarioResult* result) {
  const GuestImageBundle& bundle = GetGuestImage();
  PhysicalMemory& memory = machine.memory();
  result->exited_flag = memory.Read32(bundle.exited_flag_addr);
  result->exit_code = memory.Read32(bundle.exit_code_addr);
  result->guest_checksum = memory.Read32(bundle.exit_checksum_addr);
  result->panic_code = memory.Read32(bundle.panic_code_addr);
  result->ticks = memory.Read32(bundle.ticks_addr);
}

}  // namespace

const ReplicaNodeBase::Stats& ScenarioResult::primary_stats() const {
  static const ReplicaNodeBase::Stats kEmpty;
  return nodes.empty() ? kEmpty : nodes.front().stats;
}

const ReplicaNodeBase::Stats& ScenarioResult::backup_stats(size_t backup_index) const {
  static const ReplicaNodeBase::Stats kEmpty;
  return backup_index + 1 < nodes.size() ? nodes[backup_index + 1].stats : kEmpty;
}

const Hypervisor::Stats& ScenarioResult::primary_hv_stats() const {
  static const Hypervisor::Stats kEmpty;
  return nodes.empty() ? kEmpty : nodes.front().hv_stats;
}

const Hypervisor::Stats& ScenarioResult::backup_hv_stats(size_t backup_index) const {
  static const Hypervisor::Stats kEmpty;
  return backup_index + 1 < nodes.size() ? nodes[backup_index + 1].hv_stats : kEmpty;
}

const std::vector<uint64_t>& ScenarioResult::primary_boundary_fingerprints() const {
  static const std::vector<uint64_t> kEmpty;
  return nodes.empty() ? kEmpty : nodes.front().boundary_fingerprints;
}

const std::vector<uint64_t>& ScenarioResult::backup_boundary_fingerprints(
    size_t backup_index) const {
  static const std::vector<uint64_t> kEmpty;
  return backup_index + 1 < nodes.size() ? nodes[backup_index + 1].boundary_fingerprints : kEmpty;
}

uint64_t ScenarioResult::TotalResyncBytes() const {
  uint64_t total = 0;
  for (const ResyncReport& resync : resyncs) {
    total += resync.bytes;
  }
  return total;
}

uint64_t ScenarioResult::TotalRetransmits() const {
  uint64_t total = 0;
  for (const ChannelReport& ch : channels) {
    total += ch.counters.retransmits;
  }
  return total;
}

uint64_t ScenarioResult::TotalWireBytes() const {
  uint64_t total = 0;
  for (const ChannelReport& ch : channels) {
    total += ch.counters.bytes_on_wire;
  }
  return total;
}

uint64_t ScenarioResult::TotalDeliveredBytes() const {
  uint64_t total = 0;
  // Protocol (ordered) channels only: in-order delivery counts each message
  // exactly once. Datagram ack channels hand every wire copy to the receiver
  // — useful for liveness, not payload — and would inflate a "goodput"
  // figure.
  for (const ChannelReport& ch : channels) {
    if (ch.mode == ChannelMode::kOrdered) {
      total += ch.counters.bytes_delivered;
    }
  }
  return total;
}

double ScenarioResult::GoodputBps() const {
  double seconds = completion_time.seconds();
  if (seconds <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(TotalDeliveredBytes()) * 8.0 / seconds;
}

std::vector<int> ScenarioResult::issuer_chain() const {
  if (nodes.empty()) {
    return {bare_id};
  }
  std::vector<int> chain;
  chain.reserve(nodes.size());
  for (const NodeReport& node : nodes) {
    chain.push_back(node.id);
  }
  return chain;
}

Scenario::Scenario(const WorkloadSpec& workload, bool replicated)
    : workload_(workload), replicated_(replicated) {
  // Scenario-level machine defaults (larger TLB than the raw machine's).
  machine_.tlb_entries = 64;
  machine_.tlb_policy = TlbPolicy::kHardwareRandom;
  // The net-echo workload is meaningless without its device.
  if (workload.kind == WorkloadKind::kNetEcho) {
    with_nic_ = true;
  }
}

Scenario Scenario::Bare(const WorkloadSpec& workload) { return Scenario(workload, false); }

Scenario Scenario::Replicated(const WorkloadSpec& workload) { return Scenario(workload, true); }

Scenario& Scenario::Backups(int count) {
  HBFT_CHECK(count >= 1) << "a replicated scenario needs at least one backup";
  backups_ = count;
  return *this;
}

Scenario& Scenario::Epoch(uint64_t epoch_length) {
  replication_.epoch_length = epoch_length;
  return *this;
}

Scenario& Scenario::Variant(ProtocolVariant variant) {
  replication_.variant = variant;
  return *this;
}

Scenario& Scenario::Replication(const ReplicationConfig& replication) {
  replication_ = replication;
  return *this;
}

Scenario& Scenario::TlbTakeover(bool takeover) {
  replication_.tlb_takeover = takeover;
  return *this;
}

Scenario& Scenario::AuditLockstep(bool audit) {
  replication_.audit_lockstep = audit;
  return *this;
}

Scenario& Scenario::PipelineDepth(uint32_t depth) {
  replication_.pipeline_depth = depth;
  return *this;
}

Scenario& Scenario::AckBatch(uint32_t batch) {
  HBFT_CHECK(batch >= 1) << "ack batch must be at least 1";
  replication_.ack_batch = batch;
  return *this;
}

Scenario& Scenario::LinkFaults(const ::hbft::LinkFaults& faults) {
  link_faults_ = faults;
  return *this;
}

Scenario& Scenario::Costs(const CostModel& costs) {
  costs_ = costs;
  return *this;
}

Scenario& Scenario::Hardware(const MachineConfig& machine) {
  machine_ = machine;
  return *this;
}

Scenario& Scenario::RamBytes(uint32_t ram_bytes) {
  machine_.ram_bytes = ram_bytes;
  return *this;
}

Scenario& Scenario::Tlb(uint32_t entries, TlbPolicy policy) {
  machine_.tlb_entries = entries;
  machine_.tlb_policy = policy;
  return *this;
}

Scenario& Scenario::Interp(InterpMode mode) {
  machine_.interp = mode;
  return *this;
}

Scenario& Scenario::TcacheSlots(uint32_t slots) {
  machine_.tcache_slots = slots;
  return *this;
}

Scenario& Scenario::Seed(uint64_t seed) {
  seed_ = seed;
  return *this;
}

Scenario& Scenario::DiskBlocks(uint32_t blocks) {
  disk_blocks_ = blocks;
  return *this;
}

Scenario& Scenario::Device(DeviceId id) {
  switch (id) {
    case DeviceId::kDisk:
    case DeviceId::kConsole:
      break;  // Always attached.
    case DeviceId::kNic:
      with_nic_ = true;
      break;
    default:
      HBFT_CHECK(false) << "unknown device id " << static_cast<uint32_t>(id);
  }
  return *this;
}

Scenario& Scenario::DiskFaults(const FaultPlan& faults) {
  disk_faults_ = faults;
  return *this;
}

Scenario& Scenario::ConsoleFaults(const FaultPlan& faults) {
  console_faults_ = faults;
  return *this;
}

Scenario& Scenario::NicFaults(const FaultPlan& faults) {
  nic_faults_ = faults;
  return *this;
}

Scenario& Scenario::MaxTime(SimTime max_time) {
  max_time_ = max_time;
  return *this;
}

Scenario& Scenario::ConsoleInput(std::string text) {
  console_input_ = std::move(text);
  return *this;
}

Scenario& Scenario::ConsoleInput(std::string text, SimTime start, SimTime interval) {
  console_input_ = std::move(text);
  console_input_start_ = start;
  console_input_interval_ = interval;
  return *this;
}

Scenario& Scenario::InjectPacket(std::vector<uint8_t> payload) {
  with_nic_ = true;
  packets_.push_back(PacketInjection{std::move(payload), false, SimTime::Zero()});
  return *this;
}

Scenario& Scenario::InjectPacket(std::vector<uint8_t> payload, SimTime t) {
  with_nic_ = true;
  packets_.push_back(PacketInjection{std::move(payload), true, t});
  return *this;
}

Scenario& Scenario::PacketTiming(SimTime start, SimTime interval) {
  packet_start_ = start;
  packet_interval_ = interval;
  return *this;
}

Scenario& Scenario::FailAt(const FailurePlan& plan) {
  HBFT_CHECK(replicated_) << "failure schedules require a replicated scenario";
  failures_.push_back(plan);
  return *this;
}

Scenario& Scenario::FailAtTime(SimTime time, FailurePlan::Target target, int backup_index) {
  FailurePlan plan;
  plan.kind = FailurePlan::Kind::kAtTime;
  plan.time = time;
  plan.target = target;
  plan.backup_index = backup_index;
  return FailAt(plan);
}

Scenario& Scenario::FailAtPhase(FailPhase phase, uint64_t epoch, FailurePlan::CrashIo crash_io) {
  FailurePlan plan;
  plan.kind = FailurePlan::Kind::kAtPhase;
  plan.phase = phase;
  plan.phase_epoch = epoch;
  plan.crash_io = crash_io;
  return FailAt(plan);
}

Scenario& Scenario::RejoinAtTime(SimTime time) {
  FailurePlan plan;
  plan.kind = FailurePlan::Kind::kRejoin;
  plan.time = time;
  return FailAt(plan);
}

Scenario& Scenario::RejoinAfterFail(SimTime delay) {
  FailurePlan plan;
  plan.kind = FailurePlan::Kind::kRejoin;
  plan.time = delay;
  plan.relative = true;
  return FailAt(plan);
}

Scenario& Scenario::FailAfterResync(SimTime delay, FailurePlan::CrashIo crash_io) {
  FailurePlan plan;
  plan.kind = FailurePlan::Kind::kAtTime;
  plan.time = delay;
  plan.after_resync = true;
  plan.crash_io = crash_io;
  return FailAt(plan);
}

Scenario& Scenario::Resync(const StateTransferConfig& config) {
  replication_.resync = config;
  return *this;
}

Scenario Scenario::AsBare() const {
  Scenario bare = *this;
  bare.replicated_ = false;
  bare.failures_.clear();
  return bare;
}

ScenarioResult Scenario::Run() const {
  std::unique_ptr<World> world = BuildWorld();
  ScenarioResult result;
  world->Run(&result);
  CollectResult(*world, &result);
  return result;
}

std::unique_ptr<World> Scenario::BuildWorld() const {
  // The net-enabled guest image differs from the legacy one only in its
  // interrupt-service hook; legacy workloads keep their exact instruction
  // streams by using the legacy image.
  const GuestImageBundle& bundle = workload_.kind == WorkloadKind::kNetEcho
                                       ? GetGuestImage(GuestImageVariant::kNet)
                                       : GetGuestImage();

  WorldConfig config;
  config.costs = costs_;
  config.replication = replication_;
  config.machine = machine_;
  config.machine.machine_seed = seed_;
  config.backups = backups_;
  config.disk_blocks = disk_blocks_;
  config.seed = seed_;
  config.link_faults = link_faults_;
  config.disk_faults = disk_faults_;
  config.console_faults = console_faults_;
  config.with_nic = with_nic_;
  config.nic_faults = nic_faults_;
  config.max_time = max_time_;

  auto world = std::make_unique<World>(bundle.program, config, replicated_);
  if (replicated_) {
    // Every replica boots from identical state, including the parameter block.
    for (size_t i = 0; i < world->replica_count(); ++i) {
      PatchWorkloadParams(&world->replica(i)->hypervisor().machine().memory(), workload_);
    }
    if (!failures_.empty()) {
      world->SetFailureSchedule(failures_);
    }
  } else {
    PatchWorkloadParams(&world->bare()->machine().memory(), workload_);
  }
  if (!console_input_.empty()) {
    world->InjectConsoleInput(console_input_, console_input_start_, console_input_interval_);
  }
  size_t auto_timed = 0;
  for (const PacketInjection& packet : packets_) {
    SimTime t = packet.has_time
                    ? packet.time
                    : packet_start_ + packet_interval_ * static_cast<int64_t>(auto_timed++);
    world->InjectPacket(packet.payload, t);
  }
  return world;
}

void Scenario::CollectResult(World& world, ScenarioResult* out) const {
  ScenarioResult& result = *out;
  result.console_output = world.devices().console().output();
  result.console_trace = world.devices().console().trace();
  result.disk_trace = world.devices().disk().trace();
  if (world.devices().nic() != nullptr) {
    result.nic_trace = world.devices().nic()->trace();
  }
  result.env_trace = world.devices().EnvTrace();
  ReadBackGuestState(world.active_machine(), &result);

  // Every channel of the mesh, in (from, to) key order — identical to the
  // old adjacent-pair order for construction-time channels, with any rejoin
  // pairs following their tail's position.
  for (const auto& [key, ch_ptr] : world.channel_map()) {
    ScenarioResult::ChannelReport ch;
    ch.from = key.first;
    ch.to = key.second;
    ch.mode = ch_ptr->mode();
    ch.counters = ch_ptr->counters();
    result.channels.push_back(ch);
  }

  for (size_t i = 0; i < world.replica_count(); ++i) {
    ReplicaNodeBase* replica = world.replica(i);
    ScenarioResult::NodeReport report;
    report.id = replica->id();
    if (i > 0) {
      auto* b = static_cast<BackupNode*>(replica);
      report.promoted = b->promoted();
      report.promotion_time = b->promotion_time();
    }
    report.joined = replica->joined();
    report.join_time = replica->join_time();
    report.join_epoch = replica->join_epoch();
    report.hv_stats = replica->hypervisor().stats();
    report.stats = replica->stats();
    report.boundary_fingerprints = replica->boundary_fingerprints();
    result.nodes.push_back(std::move(report));
  }
  for (const ResyncReport& resync : result.resyncs) {
    if (resync.joined < result.nodes.size()) {
      result.nodes[resync.joined].rejoined = true;
    }
  }
}

ScenarioResult RunBare(const WorkloadSpec& workload) { return Scenario::Bare(workload).Run(); }

double NormalizedPerformance(const ScenarioResult& replicated, const ScenarioResult& bare) {
  HBFT_CHECK(bare.completed && replicated.completed);
  HBFT_CHECK_GT(bare.completion_time.picos(), 0);
  return replicated.completion_time.seconds() / bare.completion_time.seconds();
}

size_t MatchingBoundaryPrefix(const ScenarioResult& result, size_t node_a, size_t node_b) {
  HBFT_CHECK(node_a < result.nodes.size() && node_b < result.nodes.size());
  const auto& p = result.nodes[node_a].boundary_fingerprints;
  const auto& b = result.nodes[node_b].boundary_fingerprints;
  size_t n = p.size() < b.size() ? p.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    if (p[i] != b[i]) {
      return i;
    }
  }
  return n;
}

}  // namespace hbft
