#include "sim/scenario.hpp"

#include "common/check.hpp"
#include "guest/image.hpp"

namespace hbft {

namespace {

WorldConfig MakeWorldConfig(const ScenarioOptions& options) {
  WorldConfig config;
  config.costs = options.costs;
  config.replication = options.replication;
  config.machine.ram_bytes = options.ram_bytes;
  config.machine.tlb_entries = options.tlb_entries;
  config.machine.tlb_policy = options.tlb_policy;
  config.machine.machine_seed = options.seed;
  config.disk_blocks = options.disk_blocks;
  config.seed = options.seed;
  config.disk_faults = options.disk_faults;
  config.max_time = options.max_time;
  return config;
}

void ReadBackGuestState(Machine& machine, ScenarioResult* result) {
  const GuestImageBundle& bundle = GetGuestImage();
  PhysicalMemory& memory = machine.memory();
  result->exited_flag = memory.Read32(bundle.exited_flag_addr);
  result->exit_code = memory.Read32(bundle.exit_code_addr);
  result->guest_checksum = memory.Read32(bundle.exit_checksum_addr);
  result->panic_code = memory.Read32(bundle.panic_code_addr);
  result->ticks = memory.Read32(bundle.ticks_addr);
}

void FillCommon(World& world, const World::Outcome& outcome, ScenarioResult* result) {
  result->completed = outcome.completed;
  result->timed_out = outcome.timed_out;
  result->deadlocked = outcome.deadlocked;
  result->completion_time = outcome.completion_time;
  result->promoted = outcome.promoted;
  result->promotion_time = outcome.promotion_time;
  result->crash_time = outcome.crash_time;
  result->console_output = world.console().output();
  result->console_trace = world.console().trace();
  result->disk_trace = world.disk().trace();
  ReadBackGuestState(world.active_machine(), result);
}

}  // namespace

ScenarioResult RunBare(const WorkloadSpec& workload, const ScenarioOptions& options) {
  const GuestImageBundle& bundle = GetGuestImage();
  World world(bundle.program, MakeWorldConfig(options), /*replicated=*/false);
  PatchWorkloadParams(&world.bare()->machine().memory(), workload);
  if (!options.console_input.empty()) {
    world.InjectConsoleInput(options.console_input, options.console_input_start,
                             options.console_input_interval);
  }
  World::Outcome outcome = world.Run();
  ScenarioResult result;
  FillCommon(world, outcome, &result);
  return result;
}

ScenarioResult RunReplicated(const WorkloadSpec& workload, const ScenarioOptions& options) {
  const GuestImageBundle& bundle = GetGuestImage();
  World world(bundle.program, MakeWorldConfig(options), /*replicated=*/true);
  // Both replicas boot from identical state, including the parameter block.
  PatchWorkloadParams(&world.primary()->hypervisor().machine().memory(), workload);
  PatchWorkloadParams(&world.backup()->hypervisor().machine().memory(), workload);
  if (options.failure.kind != FailurePlan::Kind::kNone) {
    world.SetFailurePlan(options.failure);
  }
  if (!options.console_input.empty()) {
    world.InjectConsoleInput(options.console_input, options.console_input_start,
                             options.console_input_interval);
  }
  World::Outcome outcome = world.Run();
  ScenarioResult result;
  FillCommon(world, outcome, &result);
  result.primary_hv_stats = world.primary()->hypervisor().stats();
  result.backup_hv_stats = world.backup()->hypervisor().stats();
  result.primary_stats = world.primary()->stats();
  result.backup_stats = world.backup()->stats();
  result.primary_boundary_fingerprints = world.primary()->boundary_fingerprints();
  result.backup_boundary_fingerprints = world.backup()->boundary_fingerprints();
  return result;
}

double NormalizedPerformance(const ScenarioResult& replicated, const ScenarioResult& bare) {
  HBFT_CHECK(bare.completed && replicated.completed);
  HBFT_CHECK_GT(bare.completion_time.picos(), 0);
  return replicated.completion_time.seconds() / bare.completion_time.seconds();
}

size_t MatchingBoundaryPrefix(const ScenarioResult& result) {
  const auto& p = result.primary_boundary_fingerprints;
  const auto& b = result.backup_boundary_fingerprints;
  size_t n = p.size() < b.size() ? p.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    if (p[i] != b[i]) {
      return i;
    }
  }
  return n;
}

}  // namespace hbft
