// RealtimePump: the bridge between wall-clock socket readiness and the
// deterministic event-queue time base.
//
// The whole simulation orders itself by SimTime; serving real clients means
// external events (bytes arriving on a TCP socket, a peer process dying)
// happen at wall-clock instants instead. The pump anchors a monotonic wall
// epoch at construction and maps elapsed wall time 1:1 onto SimTime, so a
// serve loop alternates:
//
//   pump.Poll(fds, wait)            — sleep until sockets are ready
//   t = pump.Now()                  — one injection instant per iteration
//   inject socket events at t       — InjectWireFrame / InjectInput(t)
//   world.RunLoop(t) / host.Advance(t) — deterministic catch-up to t
//
// Everything that happened on the wire since the last iteration is injected
// at the same SimTime t, and the simulation then advances deterministically
// to t: given the sequence of (t, injected events) pairs, the run is exactly
// reproducible — wall time only decides where the sequence gets cut. Now()
// is monotone (never re-reads an earlier instant) so injection points can
// never violate channel arrival ordering.
//
// hbft-lint: allow-file(wall-clock) — this layer IS the wall-clock boundary;
// everything downstream of Now() stays deterministic.
#ifndef HBFT_SIM_REALTIME_PUMP_HPP_
#define HBFT_SIM_REALTIME_PUMP_HPP_

#include <chrono>
#include <cstddef>

#include "common/time.hpp"

struct pollfd;

namespace hbft {

class RealtimePump {
 public:
  RealtimePump() : epoch_(std::chrono::steady_clock::now()) {}

  // Wall-clock elapsed since construction as SimTime, clamped monotone.
  SimTime Now();

  // ppoll(2) with a SimTime wait bound (floored at 50 µs so a zero-ish
  // bound cannot busy-spin). Returns poll's result; 0 fds is a plain
  // sleep. EINTR reads as 0 (the loop just re-evaluates).
  int Poll(pollfd* fds, size_t nfds, SimTime max_wait);

 private:
  std::chrono::steady_clock::time_point epoch_;
  SimTime last_ = SimTime::Zero();
};

}  // namespace hbft

#endif  // HBFT_SIM_REALTIME_PUMP_HPP_
