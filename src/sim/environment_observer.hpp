// Environment consistency checking.
//
// The paper's correctness criterion: "the environment does not see an
// anomalous sequence of I/O requests if the primary fails and the backup
// takes over" — specifically, the observed sequence must be consistent with
// what a SINGLE processor could have produced, given that devices may report
// uncertain completions and drivers therefore repeat operations.
//
// Concretely, against a reference (unreplicated) run of the same workload:
//   * without failover: the observed device trace must equal the reference
//     trace, and only the primary may have touched the devices;
//   * with failover: the primary's operations form a prefix of the reference
//     sequence, the promoted backup's operations form a suffix, and they
//     overlap (the re-driven window) — every overlap operation repeats the
//     reference operation exactly, which is precisely the repetition IO1/IO2
//     license.
#ifndef HBFT_SIM_ENVIRONMENT_OBSERVER_HPP_
#define HBFT_SIM_ENVIRONMENT_OBSERVER_HPP_

#include <string>
#include <vector>

#include "devices/console.hpp"
#include "devices/disk.hpp"

namespace hbft {

struct ConsistencyResult {
  bool ok = true;
  std::string detail;
};

// Disk-trace check. `primary_id`/`backup_id` identify the replicated run's
// issuers; the reference trace may use any single issuer.
ConsistencyResult CheckDiskConsistency(const std::vector<DiskTraceEntry>& reference,
                                       const std::vector<DiskTraceEntry>& observed, int primary_id,
                                       int backup_id);

// Console-output check with the same prefix/suffix-overlap structure.
ConsistencyResult CheckConsoleConsistency(const std::vector<ConsoleTraceEntry>& reference,
                                          const std::vector<ConsoleTraceEntry>& observed,
                                          int primary_id, int backup_id);

}  // namespace hbft

#endif  // HBFT_SIM_ENVIRONMENT_OBSERVER_HPP_
