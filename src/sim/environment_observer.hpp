// Environment consistency checking.
//
// The paper's correctness criterion: "the environment does not see an
// anomalous sequence of I/O requests if the primary fails and the backup
// takes over" — specifically, the observed sequence must be consistent with
// what a SINGLE processor could have produced, given that devices may report
// uncertain completions and drivers therefore repeat operations.
//
// Concretely, against a reference (unreplicated) run of the same workload:
//   * without failover: the observed device trace must equal the reference
//     trace, and only the primary may have touched the devices;
//   * with failover: the primary's operations form a prefix of the reference
//     sequence, the promoted backup's operations form a suffix, and they
//     overlap (the re-driven window) — every overlap operation repeats the
//     reference operation exactly, which is precisely the repetition IO1/IO2
//     license.
//
// With a backup chain, the same structure holds per handover: each replica's
// operations form a contiguous window of the reference sequence, windows
// appear in takeover order, consecutive windows may overlap (the re-driven
// operations) but never leave a gap, and together they cover the reference
// exactly.
#ifndef HBFT_SIM_ENVIRONMENT_OBSERVER_HPP_
#define HBFT_SIM_ENVIRONMENT_OBSERVER_HPP_

#include <string>
#include <vector>

#include "devices/console.hpp"
#include "devices/disk.hpp"

namespace hbft {

struct ConsistencyResult {
  bool ok = true;
  std::string detail;
};

// Disk-trace check against a replica chain: `issuer_chain` lists device
// issuer ids in takeover order (ScenarioResult::issuer_chain()); the
// reference trace may use any single issuer.
ConsistencyResult CheckDiskConsistency(const std::vector<DiskTraceEntry>& reference,
                                       const std::vector<DiskTraceEntry>& observed,
                                       const std::vector<int>& issuer_chain);

// Console-output check with the same windowed-overlap structure.
ConsistencyResult CheckConsoleConsistency(const std::vector<ConsoleTraceEntry>& reference,
                                          const std::vector<ConsoleTraceEntry>& observed,
                                          const std::vector<int>& issuer_chain);

// Pair conveniences (a chain of exactly primary -> backup).
ConsistencyResult CheckDiskConsistency(const std::vector<DiskTraceEntry>& reference,
                                       const std::vector<DiskTraceEntry>& observed, int primary_id,
                                       int backup_id);
ConsistencyResult CheckConsoleConsistency(const std::vector<ConsoleTraceEntry>& reference,
                                          const std::vector<ConsoleTraceEntry>& observed,
                                          int primary_id, int backup_id);

}  // namespace hbft

#endif  // HBFT_SIM_ENVIRONMENT_OBSERVER_HPP_
