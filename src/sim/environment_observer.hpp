// Environment consistency checking, device-generically.
//
// The paper's correctness criterion: "the environment does not see an
// anomalous sequence of I/O requests if the primary fails and the backup
// takes over" — specifically, the observed sequence must be consistent with
// what a SINGLE processor could have produced, given that devices may report
// uncertain completions and drivers therefore repeat operations.
//
// The criterion is stated per device output channel (disk blocks, console
// bytes, NIC packets — anything a DeviceBackend traces as EnvTraceEntry
// records). Concretely, for each device, against a reference (unreplicated)
// run of the same workload:
//   * without failover: the observed device trace must equal the reference
//     trace, and only the primary may have touched the device;
//   * with failover: the primary's operations form a prefix of the reference
//     sequence, the promoted backup's operations form a suffix, and they
//     overlap (the re-driven window) — every overlap operation repeats the
//     reference operation exactly, which is precisely the repetition IO1/IO2
//     license.
//
// With a backup chain, the same structure holds per handover: each replica's
// operations form a contiguous window of the reference sequence, windows
// appear in takeover order, consecutive windows may overlap (the re-driven
// operations) but never leave a gap, and together they cover the reference
// exactly. This is the per-device output-commit window: the overlap is
// bounded by what was in flight at the crash, for every device uniformly.
#ifndef HBFT_SIM_ENVIRONMENT_OBSERVER_HPP_
#define HBFT_SIM_ENVIRONMENT_OBSERVER_HPP_

#include <string>
#include <vector>

#include "devices/io.hpp"

namespace hbft {

struct ConsistencyResult {
  bool ok = true;
  std::string detail;
};

// Device-generic trace check against a replica chain: `issuer_chain` lists
// device-issuer ids in takeover order (ScenarioResult::issuer_chain()); the
// reference trace may use any single issuer. The traces are split by
// DeviceId and each device's windowed-overlap structure is verified
// independently; unperformed entries are ignored (the environment never saw
// them).
ConsistencyResult CheckEnvConsistency(const std::vector<EnvTraceEntry>& reference,
                                      const std::vector<EnvTraceEntry>& observed,
                                      const std::vector<int>& issuer_chain);

// Pair convenience (a chain of exactly primary -> backup).
ConsistencyResult CheckEnvConsistency(const std::vector<EnvTraceEntry>& reference,
                                      const std::vector<EnvTraceEntry>& observed, int primary_id,
                                      int backup_id);

}  // namespace hbft

#endif  // HBFT_SIM_ENVIRONMENT_OBSERVER_HPP_
