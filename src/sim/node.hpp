// BareNode: the unreplicated reference machine.
//
// Runs the same guest image on a kDirect machine: traps vector straight into
// MiniOS, privileged instructions execute natively at real privilege 0, and
// environment instructions / MMIO exit to this node, which implements them
// against the local device registry and clock. Completions are applied by
// the same per-node VirtualDevice models the hypervisor uses — just
// immediately at completion time instead of at epoch boundaries. Bare runs
// provide the paper's denominator N in normalized performance N'/N, and the
// reference environment traces for transparency checking.
#ifndef HBFT_SIM_NODE_HPP_
#define HBFT_SIM_NODE_HPP_

#include <map>
#include <memory>
#include <utility>

#include "core/protocol.hpp"
#include "devices/virtual_device.hpp"

namespace hbft {

class BareNode : public NodeActor {
 public:
  BareNode(int id, const GuestProgram& guest, const MachineConfig& machine_config,
           const CostModel& costs, std::unique_ptr<DeviceRegistry> devices,
           EventScheduler* scheduler);

  void RunSlice(SimTime until) override;
  bool runnable() const override { return !halted_; }
  SimTime clock() const override { return clock_; }
  bool halted() const override { return halted_; }
  bool dead() const override { return false; }

  Machine& machine() { return machine_; }
  DeviceRegistry& devices() { return *devices_; }

  // Environment input (console characters, NIC packets): the device model
  // applies it immediately — the bare machine takes interrupts as they come.
  void InjectInput(DeviceId device, const std::vector<uint8_t>& payload, SimTime t);

 private:
  void HandleEnvCr(const MachineExit& exit);
  void HandleMmio(const MachineExit& exit);
  void OnRealOpComplete(DeviceId device_id, uint64_t op_id, SimTime t);
  void Retire(uint32_t next_pc) {
    machine_.RetireSimulated(next_pc);
    clock_ += costs_.instruction_cost;
  }

  int id_ = 0;
  CostModel costs_;
  std::unique_ptr<DeviceRegistry> devices_;
  Machine machine_;
  SimTime clock_ = SimTime::Zero();
  EventScheduler* scheduler_ = nullptr;
  bool halted_ = false;

  uint64_t itmr_value_ = 0;
  bool timer_armed_ = false;
  uint64_t timer_generation_ = 0;
  uint64_t next_op_seq_ = 1;

  // In-flight real operations: (device, backend op id) -> descriptor.
  std::map<std::pair<DeviceId, uint64_t>, IoDescriptor> pending_real_;
};

}  // namespace hbft

#endif  // HBFT_SIM_NODE_HPP_
