// BareNode: the unreplicated reference machine.
//
// Runs the same guest image on a kDirect machine: traps vector straight into
// MiniOS, privileged instructions execute natively at real privilege 0, and
// environment instructions / MMIO exit to this node, which implements them
// against the local devices and clock. Bare runs provide the paper's
// denominator N in normalized performance N'/N, and the reference
// environment traces for transparency checking.
#ifndef HBFT_SIM_NODE_HPP_
#define HBFT_SIM_NODE_HPP_

#include <map>

#include "core/protocol.hpp"
#include "hypervisor/virtual_devices.hpp"

namespace hbft {

class BareNode : public NodeActor {
 public:
  BareNode(int id, const GuestProgram& guest, const MachineConfig& machine_config,
           const CostModel& costs, Disk* disk, Console* console, EventScheduler* scheduler);

  void RunSlice(SimTime until) override;
  bool runnable() const override { return !halted_; }
  SimTime clock() const override { return clock_; }
  bool halted() const override { return halted_; }
  bool dead() const override { return false; }

  Machine& machine() { return machine_; }
  void InjectConsoleRx(char c, SimTime t);

 private:
  void HandleEnvCr(const MachineExit& exit);
  void HandleMmio(const MachineExit& exit);
  void OnDiskCompletion(uint64_t op_id, SimTime t);
  void OnConsoleTxDone(SimTime t);
  void Retire(uint32_t next_pc) {
    machine_.RetireSimulated(next_pc);
    clock_ += costs_.instruction_cost;
  }

  int id_;
  CostModel costs_;
  Machine machine_;
  SimTime clock_ = SimTime::Zero();
  Disk* disk_;
  Console* console_;
  EventScheduler* scheduler_;
  bool halted_ = false;

  VirtualDiskState vdisk_;
  VirtualConsoleState vconsole_;
  uint64_t itmr_value_ = 0;
  bool timer_armed_ = false;
  uint64_t timer_generation_ = 0;

  struct PendingDiskOp {
    bool is_write = false;
    uint32_t dma = 0;
  };
  std::map<uint64_t, PendingDiskOp> pending_disk_;
};

}  // namespace hbft

#endif  // HBFT_SIM_NODE_HPP_
