#include "sim/node.hpp"

#include "common/check.hpp"

namespace hbft {

BareNode::BareNode(int id, const GuestProgram& guest, const MachineConfig& machine_config,
                   const CostModel& costs, Disk* disk, Console* console,
                   EventScheduler* scheduler)
    : id_(id),
      costs_(costs),
      machine_([&] {
        MachineConfig mc = machine_config;
        mc.trap_mode = TrapMode::kDirect;
        mc.machine_seed = machine_config.machine_seed * 1000003ULL + static_cast<uint64_t>(id);
        return mc;
      }()),
      disk_(disk),
      console_(console),
      scheduler_(scheduler) {
  HBFT_CHECK(guest.image != nullptr);
  machine_.LoadImage(*guest.image);
  machine_.cpu().pc = guest.entry_pc;
  machine_.cpu().cr[kCrStatus] = 0;  // Real privilege 0, VM off, IE off.
  if (guest.wait_loop_end > guest.wait_loop_begin) {
    machine_.ConfigureIdleLoop(guest.wait_loop_begin, guest.wait_loop_end);
  }
}

void BareNode::RunSlice(SimTime until) {
  while (!halted_ && clock_ < until) {
    // Cap the horizon by events scheduled during this very slice (device
    // completions, the interval timer).
    SimTime horizon = scheduler_->NextEventTime();
    if (horizon > until) {
      horizon = until;
    }
    if (clock_ >= horizon) {
      return;
    }
    uint64_t budget =
        static_cast<uint64_t>((horizon - clock_).picos() / costs_.instruction_cost.picos()) + 1;
    MachineExit exit = machine_.Run(budget);
    clock_ += costs_.instruction_cost * static_cast<int64_t>(exit.executed);
    switch (exit.kind) {
      case ExitKind::kLimit:
        break;
      case ExitKind::kHalt:
        halted_ = true;
        return;
      case ExitKind::kEnvCr:
        HandleEnvCr(exit);
        break;
      case ExitKind::kMmio:
        HandleMmio(exit);
        break;
      case ExitKind::kRecovery:
      case ExitKind::kGuestTrap:
        HBFT_CHECK(false) << "bare machine produced hypervisor-only exit";
    }
  }
}

void BareNode::HandleEnvCr(const MachineExit& exit) {
  const DecodedInstr& instr = exit.instr;
  uint32_t cr = static_cast<uint32_t>(instr.imm) & 0xFF;
  CpuState& cpu = machine_.cpu();
  if (instr.op == Opcode::kMfcr) {
    uint32_t value = 0;
    switch (cr) {
      case kCrTod:
        value = static_cast<uint32_t>(costs_.TodFromTime(clock_));
        break;
      case kCrItmr:
        value = static_cast<uint32_t>(itmr_value_);
        break;
      case kCrPrid:
        value = static_cast<uint32_t>(id_);
        break;
      default:
        HBFT_CHECK(false);
    }
    cpu.set_gpr(instr.rd, value);
  } else {
    HBFT_CHECK(instr.op == Opcode::kMtcr);
    uint32_t value = cpu.gpr[instr.rs1];
    if (cr == kCrItmr) {
      itmr_value_ = value;
      timer_armed_ = true;
      uint64_t generation = ++timer_generation_;
      SimTime fire = costs_.TimeFromTod(static_cast<int64_t>(value));
      if (fire <= clock_) {
        timer_armed_ = false;
        machine_.RaiseIrq(kIrqTimer);
      } else {
        scheduler_->ScheduleAt(fire, [this, generation] {
          if (!halted_ && timer_armed_ && generation == timer_generation_) {
            timer_armed_ = false;
            machine_.RaiseIrq(kIrqTimer);
          }
        });
      }
    }
    // Writes to TOD/PRID are ignored (host-owned).
  }
  Retire(exit.pc + 4);
}

void BareNode::HandleMmio(const MachineExit& exit) {
  const DecodedInstr& instr = exit.instr;
  CpuState& cpu = machine_.cpu();
  uint32_t paddr = exit.mmio_paddr;

  if (paddr >= kDiskMmioBase && paddr < kDiskMmioBase + kPageBytes) {
    uint32_t reg = paddr - kDiskMmioBase;
    if (exit.mmio_is_store) {
      uint32_t value = exit.mmio_value;
      switch (reg) {
        case kDiskRegBlock:
          vdisk_.reg_block = value;
          break;
        case kDiskRegCount:
          vdisk_.reg_count = value;
          break;
        case kDiskRegDma:
          vdisk_.reg_dma = value;
          break;
        case kDiskRegIntAck:
          machine_.AckIrq(kIrqDisk);
          vdisk_.reg_status &= ~(kDiskStatusDone | kDiskStatusCheck);
          break;
        case kDiskRegCmd: {
          HBFT_CHECK(!vdisk_.busy) << "bare guest issued disk command while busy";
          HBFT_CHECK(value == 1 || value == 2);
          vdisk_.busy = true;
          vdisk_.reg_status = kDiskStatusBusy;
          bool is_write = value == 2;
          uint64_t op_id;
          SimTime latency;
          if (is_write) {
            std::vector<uint8_t> data(kDiskBlockBytes);
            machine_.memory().ReadBlock(vdisk_.reg_dma, data.data(), kDiskBlockBytes);
            op_id = disk_->IssueWrite(vdisk_.reg_block, std::move(data), id_);
            latency = costs_.disk_write_latency;
          } else {
            op_id = disk_->IssueRead(vdisk_.reg_block, id_);
            latency = costs_.disk_read_latency;
          }
          pending_disk_[op_id] = PendingDiskOp{is_write, vdisk_.reg_dma};
          SimTime completion = clock_ + latency;
          scheduler_->ScheduleAt(completion, [this, op_id, completion] {
            if (!halted_) {
              OnDiskCompletion(op_id, completion);
            }
          });
          break;
        }
        default:
          HBFT_CHECK(false) << "bad disk register store offset " << reg;
      }
    } else {
      uint32_t value = 0;
      switch (reg) {
        case kDiskRegStatus:
          value = vdisk_.reg_status;
          break;
        case kDiskRegResult:
          value = vdisk_.reg_result;
          break;
        case kDiskRegBlock:
          value = vdisk_.reg_block;
          break;
        case kDiskRegCount:
          value = vdisk_.reg_count;
          break;
        case kDiskRegDma:
          value = vdisk_.reg_dma;
          break;
        default:
          value = 0;
          break;
      }
      cpu.set_gpr(instr.rd, value);
    }
    Retire(exit.pc + 4);
    return;
  }

  if (paddr >= kConsoleMmioBase && paddr < kConsoleMmioBase + kPageBytes) {
    uint32_t reg = paddr - kConsoleMmioBase;
    if (exit.mmio_is_store) {
      uint32_t value = exit.mmio_value;
      switch (reg) {
        case kConsoleRegTx: {
          HBFT_CHECK(!vconsole_.tx_busy);
          vconsole_.tx_busy = true;
          console_->Transmit(static_cast<char>(value & 0xFF), id_);
          SimTime completion = clock_ + costs_.console_tx_latency;
          scheduler_->ScheduleAt(completion, [this, completion] {
            if (!halted_) {
              OnConsoleTxDone(completion);
            }
          });
          break;
        }
        case kConsoleRegIntAck:
          if ((value & 1) != 0) {
            machine_.AckIrq(kIrqConsoleRx);
            vconsole_.rx_ready = false;
          }
          if ((value & 2) != 0) {
            machine_.AckIrq(kIrqConsoleTx);
          }
          break;
        default:
          HBFT_CHECK(false) << "bad console register store offset " << reg;
      }
    } else {
      uint32_t value = 0;
      switch (reg) {
        case kConsoleRegRx:
          value = vconsole_.rx_char;
          break;
        case kConsoleRegStatus:
          value = (vconsole_.rx_ready ? 1u : 0u) | (vconsole_.tx_busy ? 2u : 0u);
          break;
        case kConsoleRegResult:
          value = vconsole_.reg_result;
          break;
        default:
          value = 0;
          break;
      }
      cpu.set_gpr(instr.rd, value);
    }
    Retire(exit.pc + 4);
    return;
  }

  HBFT_CHECK(false) << "MMIO access outside device windows";
}

void BareNode::OnDiskCompletion(uint64_t op_id, SimTime t) {
  auto it = pending_disk_.find(op_id);
  HBFT_CHECK(it != pending_disk_.end());
  PendingDiskOp op = it->second;
  pending_disk_.erase(it);
  if (clock_ < t) {
    clock_ = t;
  }
  Disk::Completion completion = disk_->Complete(op_id);
  vdisk_.busy = false;
  if (completion.status == DiskStatus::kUncertain) {
    vdisk_.reg_status = kDiskStatusDone | kDiskStatusCheck;
    vdisk_.reg_result = kDiskResultCheckCondition;
  } else {
    vdisk_.reg_status = kDiskStatusDone;
    vdisk_.reg_result = kDiskResultOk;
    if (!op.is_write) {
      machine_.memory().WriteBlock(op.dma, completion.data.data(),
                                   static_cast<uint32_t>(completion.data.size()));
    }
  }
  machine_.RaiseIrq(kIrqDisk);
}

void BareNode::OnConsoleTxDone(SimTime t) {
  if (clock_ < t) {
    clock_ = t;
  }
  vconsole_.tx_busy = false;
  vconsole_.reg_result = 0;
  machine_.RaiseIrq(kIrqConsoleTx);
}

void BareNode::InjectConsoleRx(char c, SimTime t) {
  if (halted_) {
    return;
  }
  if (clock_ < t) {
    // The device latches asynchronously; the node clock is unaffected, but
    // the interrupt is visible from `t` (next RunSlice checks pending lines).
  }
  vconsole_.rx_char = static_cast<uint32_t>(static_cast<uint8_t>(c));
  vconsole_.rx_ready = true;
  machine_.RaiseIrq(kIrqConsoleRx);
}

}  // namespace hbft
