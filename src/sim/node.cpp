#include "sim/node.hpp"

#include "common/check.hpp"

namespace hbft {

BareNode::BareNode(int id, const GuestProgram& guest, const MachineConfig& machine_config,
                   const CostModel& costs, std::unique_ptr<DeviceRegistry> devices,
                   EventScheduler* scheduler)
    : id_(id),
      costs_(costs),
      devices_(std::move(devices)),
      machine_([&] {
        MachineConfig mc = machine_config;
        mc.trap_mode = TrapMode::kDirect;
        mc.machine_seed = machine_config.machine_seed * 1000003ULL + static_cast<uint64_t>(id);
        return mc;
      }()),
      scheduler_(scheduler) {
  HBFT_CHECK(guest.image != nullptr);
  HBFT_CHECK(devices_ != nullptr);
  machine_.LoadImage(*guest.image);
  machine_.cpu().pc = guest.entry_pc;
  machine_.cpu().cr[kCrStatus] = 0;  // Real privilege 0, VM off, IE off.
  if (guest.wait_loop_end > guest.wait_loop_begin) {
    machine_.ConfigureIdleLoop(guest.wait_loop_begin, guest.wait_loop_end);
  }
}

void BareNode::RunSlice(SimTime until) {
  while (!halted_ && clock_ < until) {
    // Cap the horizon by events scheduled during this very slice (device
    // completions, the interval timer).
    SimTime horizon = scheduler_->NextEventTime();
    if (horizon > until) {
      horizon = until;
    }
    if (clock_ >= horizon) {
      return;
    }
    uint64_t budget =
        static_cast<uint64_t>((horizon - clock_).picos() / costs_.instruction_cost.picos()) + 1;
    MachineExit exit = machine_.Run(budget);
    clock_ += costs_.instruction_cost * static_cast<int64_t>(exit.executed);
    switch (exit.kind) {
      case ExitKind::kLimit:
        break;
      case ExitKind::kHalt:
        halted_ = true;
        return;
      case ExitKind::kEnvCr:
        HandleEnvCr(exit);
        break;
      case ExitKind::kMmio:
        HandleMmio(exit);
        break;
      case ExitKind::kRecovery:
      case ExitKind::kGuestTrap:
        HBFT_CHECK(false) << "bare machine produced hypervisor-only exit";
    }
  }
}

void BareNode::HandleEnvCr(const MachineExit& exit) {
  const DecodedInstr& instr = exit.instr;
  uint32_t cr = static_cast<uint32_t>(instr.imm) & 0xFF;
  CpuState& cpu = machine_.cpu();
  if (instr.op == Opcode::kMfcr) {
    uint32_t value = 0;
    switch (cr) {
      case kCrTod:
        value = static_cast<uint32_t>(costs_.TodFromTime(clock_));
        break;
      case kCrItmr:
        value = static_cast<uint32_t>(itmr_value_);
        break;
      case kCrPrid:
        value = static_cast<uint32_t>(id_);
        break;
      default:
        HBFT_CHECK(false);
    }
    cpu.set_gpr(instr.rd, value);
  } else {
    HBFT_CHECK(instr.op == Opcode::kMtcr);
    uint32_t value = cpu.gpr[instr.rs1];
    if (cr == kCrItmr) {
      itmr_value_ = value;
      timer_armed_ = true;
      uint64_t generation = ++timer_generation_;
      SimTime fire = costs_.TimeFromTod(static_cast<int64_t>(value));
      if (fire <= clock_) {
        timer_armed_ = false;
        machine_.RaiseIrq(kIrqTimer);
      } else {
        scheduler_->ScheduleAt(fire, [this, generation] {
          if (!halted_ && timer_armed_ && generation == timer_generation_) {
            timer_armed_ = false;
            machine_.RaiseIrq(kIrqTimer);
          }
        });
      }
    }
    // Writes to TOD/PRID are ignored (host-owned).
  }
  Retire(exit.pc + 4);
}

void BareNode::HandleMmio(const MachineExit& exit) {
  const DecodedInstr& instr = exit.instr;
  uint32_t paddr = exit.mmio_paddr;
  VirtualDevice* device = devices_->by_mmio(paddr);
  HBFT_CHECK(device != nullptr) << "MMIO access outside device windows";
  const uint32_t offset = paddr - device->mmio_base();

  if (exit.mmio_is_store) {
    VirtualDevice::StoreResult result = device->MmioStore(offset, exit.mmio_value, machine_);
    HBFT_CHECK(!result.fault) << "bad " << device->name() << " register store offset " << offset;
    if (result.initiate) {
      IoDescriptor io = std::move(result.io);
      io.guest_op_seq = next_op_seq_++;
      DeviceBackend* backend = device->backend();
      HBFT_CHECK(backend != nullptr) << device->name() << " has no backend";
      backend->SetIssueClock(clock_);
      DeviceBackend::Issued issued = backend->Issue(io, id_);
      const DeviceId device_id = io.device_id;
      const uint64_t op_id = issued.op_id;
      pending_real_[{device_id, op_id}] = std::move(io);
      SimTime completion = clock_ + issued.latency;
      scheduler_->ScheduleAt(completion, [this, device_id, op_id, completion] {
        if (!halted_) {
          OnRealOpComplete(device_id, op_id, completion);
        }
      });
    }
  } else {
    machine_.cpu().set_gpr(instr.rd, device->MmioLoad(offset));
  }
  Retire(exit.pc + 4);
}

void BareNode::OnRealOpComplete(DeviceId device_id, uint64_t op_id, SimTime t) {
  auto it = pending_real_.find({device_id, op_id});
  HBFT_CHECK(it != pending_real_.end());
  IoDescriptor io = std::move(it->second);
  pending_real_.erase(it);
  if (clock_ < t) {
    clock_ = t;
  }
  VirtualDevice* device = devices_->by_id(device_id);
  IoCompletionPayload payload = device->backend()->Complete(op_id, io);
  // Applied immediately: the bare machine has no epoch boundaries.
  device->ApplyCompletion(payload, machine_);
}

void BareNode::InjectInput(DeviceId device_id, const std::vector<uint8_t>& payload, SimTime t) {
  if (halted_) {
    return;
  }
  (void)t;  // The device latches asynchronously; the node clock is unaffected,
            // but the interrupt is visible from the next RunSlice.
  VirtualDevice* device = devices_->by_id(device_id);
  HBFT_CHECK(device != nullptr);
  IoCompletionPayload completion;
  if (!device->MakeInputCompletion(payload, &completion)) {
    return;
  }
  device->ApplyCompletion(completion, machine_);
}

}  // namespace hbft
