// NodeHost: one replica of the protocol chain hosted alone in its own OS
// process, with the neighbour reached over a real TCP connection instead of
// an in-memory channel pair.
//
// The simulated World owns both ends of every channel; in multi-process mode
// each process owns only its own replica and its local channel endpoints:
//
//   primary process                      backup process
//   PrimaryNode                          BackupNode
//     down_out (ordered, wire-bound) --TCP-->  up_in (ordered, injected)
//     down_in (datagram, injected) <--TCP--  up_out (datagram, wire-bound)
//
// Outbound channels ship every frame through a Channel::WireSink (the repl
// socket); inbound channels receive peer bytes via InjectWireFrame, so the
// go-back-N framing, cumulative acks, duplicate discard, and retransmit
// buffer all run exactly the code paths the simulation exercises — the
// transport is swapped underneath them, not reimplemented.
//
// Failure detection maps the socket's death onto the paper's model: the repl
// connection hitting EOF/reset at wall-mapped sim time t is the analogue of
// the dead neighbour's outbound channel breaking at its crash instant. The
// host breaks the inbound channel at t, asks FailureDetector for the
// detection instant (drain + timeout), and schedules the standard callback —
// OnFailureDetected for a backup (P6/P7 promotion), OnDownstreamFailureDetected
// for a primary (continue solo).
//
// NodeHost is an EventScheduler with its own event queue; Advance(now) is
// the single-node specialisation of World::RunLoop — deterministic catch-up
// to the wall-mapped instant `now` chosen by the RealtimePump.
#ifndef HBFT_SERVE_NODE_HOST_HPP_
#define HBFT_SERVE_NODE_HOST_HPP_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/backup.hpp"
#include "core/primary.hpp"
#include "devices/device_set.hpp"
#include "guest/image.hpp"
#include "guest/workloads.hpp"
#include "net/channel.hpp"
#include "sim/event_queue.hpp"

namespace hbft {
namespace serve {

enum class HostRole { kPrimary, kBackup };

struct NodeHostConfig {
  HostRole role = HostRole::kPrimary;
  uint64_t seed = 42;
  CostModel costs;
  ReplicationConfig replication;  // serve forces ProtocolVariant::kRevised.
  MachineConfig machine;
  WorkloadSpec workload;
  // Retransmit pacing for the wire-bound ordered stream (probabilities stay
  // zero: TCP does not lose frames, but a crashed peer's successor must
  // never wait on one either).
  LinkFaults link_faults;
  uint32_t disk_blocks = 128;
};

class NodeHost : public EventScheduler {
 public:
  explicit NodeHost(const NodeHostConfig& config);
  ~NodeHost() override;
  NodeHost(const NodeHost&) = delete;
  NodeHost& operator=(const NodeHost&) = delete;

  // --- EventScheduler -------------------------------------------------------
  void ScheduleAt(SimTime t, std::function<void()> fn) override;
  SimTime NextEventTime() const override;

  // --- Wire side ------------------------------------------------------------

  // Binds the sink that ships this node's outbound channel frames to the
  // peer (protocol stream for a primary, acks for a backup). Until bound,
  // sends queue harmlessly in the local channel.
  void BindWireSink(Channel::WireSink sink);

  // A peer frame arrived from the repl socket; injected at sim time `now`.
  // Returns false when the bytes failed canonical decode (counted on the
  // channel) or the peer is already considered dead.
  bool OnPeerFrame(const std::vector<uint8_t>& bytes, SimTime now);

  // The repl socket died (EOF / reset) at sim time `now`: break the inbound
  // channel and schedule the failure detector's verdict. Idempotent.
  void OnPeerDead(SimTime now);
  bool peer_lost() const { return peer_lost_; }

  // --- Environment input ----------------------------------------------------

  // Client packet bound for the guest NIC. The node buffers-and-relays
  // (active) or queues until promotion (standing backup) — identical to the
  // simulation's RouteInput semantics for a two-node chain.
  void InjectPacket(const std::vector<uint8_t>& payload, SimTime now);

  // --- Execution ------------------------------------------------------------

  // Deterministic catch-up to `now`: delivers pending channel messages, then
  // alternates queue events and node slices until the next actionable
  // instant is at or past `now`. Single-node World::RunLoop.
  void Advance(SimTime now);

  // --- Introspection --------------------------------------------------------
  ReplicaNodeBase& node() { return *node_; }
  PrimaryNode* primary();  // Null for a backup host.
  BackupNode* backup();    // Null for a primary host.
  DeviceSet& devices() { return *devices_; }
  Nic* nic() { return devices_->nic(); }
  Channel& wire_out() { return *wire_out_; }
  Channel& wire_in() { return *wire_in_; }
  HostRole role() const { return config_.role; }
  const GuestImageBundle& bundle() const { return *bundle_; }

  // Whether this node currently answers for the environment: a live primary
  // always; a backup once its upstream is known dead (inputs queue until the
  // promotion completes, exactly like the simulated successor window).
  bool ActiveForEnvironment() const;

 private:
  NodeHostConfig config_;
  const GuestImageBundle* bundle_ = nullptr;
  EventQueue queue_;
  std::unique_ptr<DeviceSet> devices_;
  std::unique_ptr<Channel> wire_out_;
  std::unique_ptr<Channel> wire_in_;
  std::unique_ptr<ReplicaNodeBase> node_;
  bool peer_lost_ = false;
};

}  // namespace serve
}  // namespace hbft

#endif  // HBFT_SERVE_NODE_HOST_HPP_
