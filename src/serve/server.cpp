#include "serve/server.hpp"

#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <optional>
#include <poll.h>

#include "devices/device_set.hpp"
#include "serve/frontend.hpp"
#include "serve/node_host.hpp"
#include "serve/sockets.hpp"
#include "serve/wire.hpp"
#include "sim/realtime_pump.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace serve {

namespace {

// The guest halts after `iterations` packets; a serving session ends on a
// signal or budget instead, so the count is effectively infinite.
constexpr uint32_t kServeForever = 1000000000u;

volatile std::sig_atomic_t g_stop = 0;
void OnStopSignal(int) { g_stop = 1; }

void InstallSignalHandlers() {
  std::signal(SIGINT, OnStopSignal);
  std::signal(SIGTERM, OnStopSignal);
  // A client or peer vanishing mid-write must surface as a write error on
  // that socket, not kill the server.
  std::signal(SIGPIPE, SIG_IGN);
}

void Note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::fputs("hbft_serve: ", stderr);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  va_end(args);
}

// Releases one committed response: the NIC TX latch fires only once the
// revised protocol's output-commit wait is satisfied, so by construction the
// backup has acknowledged everything this response depends on.
void AttachLatchRelease(Nic* nic, Frontend* frontend, uint64_t* released) {
  nic->set_on_latch([frontend, released](const NicTraceEntry& entry) {
    std::optional<NicRequest> req = DecodeNicPacket(entry.bytes);
    if (!req.has_value()) {
      return;  // Not client traffic (nothing else transmits today).
    }
    frontend->SendResponse(req->client_id, req->seq, req->payload);
    ++*released;
  });
}

NodeHostConfig MakeHostConfig(const ServeConfig& config, HostRole role) {
  NodeHostConfig hc;
  hc.role = role;
  hc.seed = config.seed;
  hc.replication.epoch_length = config.epoch_length;
  // Output commit is the serving contract (see server.hpp); the original
  // variant's boundary-ack rule does not provide it per-response.
  hc.replication.variant = ProtocolVariant::kRevised;
  hc.machine.tlb_entries = 64;
  hc.machine.tlb_policy = TlbPolicy::kHardwareRandom;
  hc.workload = WorkloadSpec::NetEcho(kServeForever);
  // TCP does not drop frames, but a peer that dies leaves the go-back-N
  // window unacked; a generous timer keeps retransmit probes from racing
  // the 5 ms failure detector while still bounding recovery.
  hc.link_faults.retransmit_timeout = SimTime::Millis(50);
  return hc;
}

// Drains the replication socket: complete frames are injected into the
// inbound channel at `now`; EOF/reset/corruption is the peer's death.
// Returns false once the connection is gone (after OnPeerDead fired).
bool PumpRepl(FrameStream* repl, NodeHost* host, SimTime now, uint64_t* failovers) {
  if (repl == nullptr || !repl->open()) {
    return false;
  }
  bool alive = repl->ReadAvailable();
  while (true) {
    std::optional<std::vector<uint8_t>> frame = repl->NextFrame();
    if (!frame.has_value()) {
      break;
    }
    host->OnPeerFrame(*frame, now);
  }
  if (repl->corrupt()) {
    alive = false;
  }
  if (!alive) {
    if (repl->truncated_bytes() > 0) {
      // The peer died mid-write: the partial frame is held by the dissector
      // and never delivered — Channel::Break truncation semantics at the
      // socket boundary.
      Note("peer died mid-frame (%zu truncated bytes discarded)", repl->truncated_bytes());
    }
    repl->Close();
    host->OnPeerDead(now);
    ++*failovers;
    Note("replication peer lost at t=%.3f ms", now.seconds() * 1e3);
    return false;
  }
  return true;
}

struct StopCheck {
  const ServeConfig* config;
  const uint64_t* released;
  std::string reason;

  // Returns true when the session should end, recording why.
  bool Due(SimTime now, bool halted, bool dead) {
    if (g_stop != 0) {
      reason = "signal";
    } else if (config->duration_ms > 0 && now >= SimTime::Millis(config->duration_ms)) {
      reason = "duration";
    } else if (config->max_requests > 0 && *released >= config->max_requests) {
      reason = "max-requests";
    } else if (halted) {
      reason = "guest-halt";
    } else if (dead) {
      reason = "node-dead";
    } else {
      return false;
    }
    return true;
  }
};

void FillChannelReport(ServeReport* report, const std::string& name, const std::string& mode,
                       const Channel& channel) {
  ServeReport::ChannelReport row;
  row.name = name;
  row.mode = mode;
  row.counters = channel.counters();
  report->channels.push_back(std::move(row));
}

void FillFrontendReport(const Frontend& frontend, ServeReport* report) {
  const Frontend::Stats& fs = frontend.stats();
  report->connections = fs.connections_accepted;
  report->requests = fs.requests;
  report->responses = fs.responses;
  report->responses_unroutable = fs.responses_unroutable;
  report->rejected_frames = fs.rejected_frames;
  report->client_bytes_in = fs.bytes_in;
  report->client_bytes_out = fs.bytes_out;
}

void FillNodeReport(const ReplicaNodeBase& node, ServeReport* report) {
  const ReplicaNodeBase::Stats& stats = node.stats();
  report->epochs = stats.epochs;
  report->messages_sent = stats.messages_sent;
  report->acks_received = stats.acks_received;
  report->uncertain_synthesised = stats.uncertain_synthesised;
}

// --- kSingle: whole chain in-process, real clients only ---------------------

int RunSingle(const ServeConfig& config, ServeReport* report) {
  Scenario scenario =
      Scenario::Replicated(WorkloadSpec::NetEcho(kServeForever))
          .Backups(config.backups)
          .Variant(ProtocolVariant::kRevised)
          .Epoch(config.epoch_length)
          .Seed(config.seed)
          .MaxTime(SimTime::Seconds(100000));
  for (const FailurePlan& plan : config.failures) {
    scenario.FailAt(plan);
  }
  std::unique_ptr<World> world = scenario.BuildWorld();

  Frontend frontend(config.port);
  std::string error;
  if (!frontend.OpenListener(&error)) {
    report->error = "client listener: " + error;
    return 1;
  }
  Note("listening on 127.0.0.1:%u (single-process chain, %d backup%s)", config.port,
       config.backups, config.backups == 1 ? "" : "s");

  uint64_t released = 0;
  AttachLatchRelease(world->devices().nic(), &frontend, &released);

  RealtimePump pump;
  StopCheck stop{&config, &released, ""};
  while (true) {
    std::vector<pollfd> fds;
    frontend.CollectFds(&fds);
    pump.Poll(fds.data(), fds.size(), SimTime::Millis(2));
    SimTime now = pump.Now();

    frontend.Pump([&world, now](const ClientFrame& frame) {
      NicRequest req{frame.client_id, frame.seq, frame.payload};
      world->InjectPacket(EncodeNicRequest(req), now);
    });
    bool more = world->RunLoop(pump.Now());
    frontend.FlushAll();

    if (!more && world->finished()) {
      stop.reason = world->service_lost() ? "service-lost" : "guest-halt";
      break;
    }
    if (stop.Due(now, false, false)) {
      break;
    }
  }
  frontend.FlushAll();

  report->stop_reason = stop.reason;
  report->runtime_s = pump.Now().seconds();
  FillFrontendReport(frontend, report);
  ScenarioResult outcome;
  world->Finish(&outcome);
  report->failovers = outcome.crash_times.size();
  report->promoted = outcome.promoted;
  if (outcome.promoted && !outcome.crash_times.empty()) {
    report->promotion_latency_ms =
        (outcome.promotion_time - outcome.crash_times.front()).seconds() * 1e3;
  }
  if (world->replica_count() > 0) {
    FillNodeReport(*world->replica(0), report);
  }
  for (const auto& [key, channel] : world->channel_map()) {
    FillChannelReport(report,
                      "r" + std::to_string(key.first) + "->r" + std::to_string(key.second),
                      channel->mode() == ChannelMode::kOrdered ? "protocol" : "acks", *channel);
  }
  report->ok = stop.reason != "service-lost" && stop.reason != "node-dead";
  return report->ok ? 0 : 1;
}

// --- Shared multi-process serve loop ----------------------------------------

// Drives one NodeHost plus the client frontend and the replication stream.
// The primary enters with the frontend already listening; a backup enters
// with it closed and opens it at promotion.
void HostServeLoop(const ServeConfig& config, NodeHost* host, Frontend* frontend,
                   FrameStream* repl, RealtimePump* pump, uint64_t* released,
                   ServeReport* report) {
  StopCheck stop{&config, released, ""};
  SimTime peer_died = SimTime::Zero();
  bool promotion_noted = false;

  while (true) {
    std::vector<pollfd> fds;
    frontend->CollectFds(&fds);
    if (repl != nullptr && repl->open()) {
      short events = POLLIN;
      if (repl->HasPendingWrites()) {
        events |= POLLOUT;
      }
      fds.push_back(pollfd{repl->fd(), events, 0});
    }
    // Wake for the next scheduled sim event (a disk completion, a failure
    // detector verdict) even with silent sockets.
    SimTime now = pump->Now();
    SimTime next_event = host->NextEventTime();
    SimTime wait = next_event == SimTime::Max() ? SimTime::Millis(50)
                   : next_event > now           ? next_event - now
                                                : SimTime::Millis(1);
    pump->Poll(fds.data(), fds.size(), wait);
    now = pump->Now();

    if (repl != nullptr && repl->open()) {
      bool was_lost = host->peer_lost();
      if (!PumpRepl(repl, host, now, &report->failovers) && !was_lost) {
        peer_died = now;
      }
    }

    if (frontend->listening()) {
      frontend->Pump([host, now](const ClientFrame& frame) {
        NicRequest req{frame.client_id, frame.seq, frame.payload};
        host->InjectPacket(EncodeNicRequest(req), now);
      });
    }

    host->Advance(pump->Now());

    // A backup that just promoted takes over the client port. Retried every
    // loop until the bind lands (the dead primary's socket may take an
    // instant to evaporate even with SO_REUSEADDR).
    BackupNode* backup = host->backup();
    if (backup != nullptr && backup->promoted()) {
      if (!promotion_noted) {
        promotion_noted = true;
        report->promoted = true;
        report->promotion_latency_ms = (backup->promotion_time() - peer_died).seconds() * 1e3;
        Note("promoted at t=%.3f ms (%.3f ms after peer loss)",
             backup->promotion_time().seconds() * 1e3, report->promotion_latency_ms);
      }
      if (!frontend->listening()) {
        std::string error;
        if (frontend->OpenListener(&error)) {
          Note("took over client port 127.0.0.1:%u", frontend->port());
        }
      }
    }

    frontend->FlushAll();
    if (repl != nullptr && repl->open()) {
      repl->Flush();
    }

    if (stop.Due(now, host->node().halted(), host->node().dead())) {
      break;
    }
  }
  frontend->FlushAll();

  report->stop_reason = stop.reason;
  report->runtime_s = pump->Now().seconds();
  if (repl != nullptr) {
    report->repl_bytes_in = repl->bytes_in();
    report->repl_bytes_out = repl->bytes_out();
  }
  FillFrontendReport(*frontend, report);
  FillNodeReport(host->node(), report);
  const bool is_primary = host->role() == HostRole::kPrimary;
  FillChannelReport(report, is_primary ? "primary->backup" : "backup->primary",
                    is_primary ? "protocol" : "acks", host->wire_out());
  FillChannelReport(report, is_primary ? "backup->primary" : "primary->backup",
                    is_primary ? "acks" : "protocol", host->wire_in());
  report->ok = stop.reason != "node-dead";
}

// --- kPrimary ----------------------------------------------------------------

int RunPrimary(const ServeConfig& config, ServeReport* report) {
  std::string error;
  int repl_listen = TcpListen(config.repl_port, &error);
  if (repl_listen < 0) {
    report->error = "repl listener: " + error;
    return 1;
  }

  RealtimePump pump;
  NodeHost host(MakeHostConfig(config, HostRole::kPrimary));

  // Hold the guest until the backup is attached (or the wait expires): every
  // protocol message must ship through the wire from the first epoch, or the
  // two replicas would silently diverge.
  Note("waiting up to %llu ms for a backup on 127.0.0.1:%u",
       static_cast<unsigned long long>(config.backup_wait_ms), config.repl_port);
  std::unique_ptr<FrameStream> repl;
  const SimTime wait_deadline = SimTime::Millis(config.backup_wait_ms);
  while (g_stop == 0 && pump.Now() < wait_deadline) {
    int fd = TcpAccept(repl_listen);
    if (fd >= 0) {
      repl = std::make_unique<FrameStream>(fd, kMaxReplFrameBytes);
      break;
    }
    pollfd p{repl_listen, POLLIN, 0};
    pump.Poll(&p, 1, SimTime::Millis(50));
  }
  CloseFd(repl_listen);  // One backup per session; rejoin-over-wire is future work.
  if (g_stop != 0) {
    report->stop_reason = "signal";
    report->runtime_s = pump.Now().seconds();
    report->ok = true;
    return 0;
  }

  if (repl != nullptr) {
    FrameStream* stream = repl.get();
    host.BindWireSink([stream](const std::vector<uint8_t>& bytes) {
      if (!stream->open()) {
        return false;
      }
      stream->QueueFrame(bytes);
      return stream->Flush();
    });
    Note("backup connected; replication active");
  } else {
    // No backup came: run unprotected, via the same failure-detection path a
    // mid-session backup loss takes (the primary's OnDownstreamFailureDetected
    // releases every ack wait).
    host.OnPeerDead(pump.Now());
    Note("no backup within %llu ms; running solo",
         static_cast<unsigned long long>(config.backup_wait_ms));
  }

  Frontend frontend(config.port);
  if (!frontend.OpenListener(&error)) {
    report->error = "client listener: " + error;
    return 1;
  }
  Note("listening on 127.0.0.1:%u (primary)", config.port);

  uint64_t released = 0;
  AttachLatchRelease(host.nic(), &frontend, &released);
  HostServeLoop(config, &host, &frontend, repl.get(), &pump, &released, report);
  report->solo = host.primary()->solo();
  return report->ok ? 0 : 1;
}

// --- kBackup -----------------------------------------------------------------

int RunBackup(const ServeConfig& config, ServeReport* report) {
  RealtimePump pump;
  std::string error;
  int fd = -1;
  const SimTime dial_deadline = SimTime::Millis(config.backup_wait_ms);
  while (g_stop == 0) {
    fd = TcpConnect(config.peer_host, config.repl_port, 250, &error);
    if (fd >= 0) {
      break;
    }
    if (pump.Now() >= dial_deadline) {
      report->error = "could not reach primary at " + config.peer_host + ":" +
                      std::to_string(config.repl_port) + ": " + error;
      return 1;
    }
    pump.Poll(nullptr, 0, SimTime::Millis(100));
  }
  if (g_stop != 0) {
    report->stop_reason = "signal";
    report->ok = true;
    return 0;
  }

  NodeHost host(MakeHostConfig(config, HostRole::kBackup));
  auto repl = std::make_unique<FrameStream>(fd, kMaxReplFrameBytes);
  FrameStream* stream = repl.get();
  host.BindWireSink([stream](const std::vector<uint8_t>& bytes) {
    if (!stream->open()) {
      return false;
    }
    stream->QueueFrame(bytes);
    return stream->Flush();
  });
  Note("connected to primary at %s:%u; standing by", config.peer_host.c_str(),
       config.repl_port);

  // The client listener stays closed until promotion: the primary serves.
  Frontend frontend(config.port);
  uint64_t released = 0;
  AttachLatchRelease(host.nic(), &frontend, &released);
  HostServeLoop(config, &host, &frontend, repl.get(), &pump, &released, report);
  return report->ok ? 0 : 1;
}

}  // namespace

int RunServe(const ServeConfig& config, ServeReport* report) {
  InstallSignalHandlers();
  switch (config.role) {
    case ServeRole::kSingle:
      report->role = "single";
      return RunSingle(config, report);
    case ServeRole::kPrimary:
      report->role = "primary";
      return RunPrimary(config, report);
    case ServeRole::kBackup:
      report->role = "backup";
      return RunBackup(config, report);
  }
  report->error = "unknown role";
  return 2;
}

}  // namespace serve
}  // namespace hbft
