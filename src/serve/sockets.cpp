#include "serve/sockets.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace hbft {
namespace serve {

namespace {

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool ResolveV4(const std::string& host, in_addr* out) {
  if (host.empty() || host == "localhost") {
    return inet_pton(AF_INET, "127.0.0.1", out) == 1;
  }
  return inet_pton(AF_INET, host.c_str(), out) == 1;
}

}  // namespace

int TcpListen(uint16_t port, std::string* error) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("bind: ") + std::strerror(errno);
    close(fd);
    return -1;
  }
  if (listen(fd, 64) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    close(fd);
    return -1;
  }
  if (!SetNonBlocking(fd)) {
    *error = "fcntl O_NONBLOCK failed";
    close(fd);
    return -1;
  }
  return fd;
}

int TcpAccept(int listen_fd) {
  int fd = accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    return -1;
  }
  SetNonBlocking(fd);
  SetNoDelay(fd);
  return fd;
}

int TcpConnect(const std::string& host, uint16_t port, int timeout_ms, std::string* error) {
  in_addr ip{};
  if (!ResolveV4(host, &ip)) {
    *error = "unresolvable host (IPv4 literal or 'localhost' expected): " + host;
    return -1;
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (!SetNonBlocking(fd)) {
    *error = "fcntl O_NONBLOCK failed";
    close(fd);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr = ip;
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      *error = std::string("connect: ") + std::strerror(errno);
      close(fd);
      return -1;
    }
    pollfd pfd{fd, POLLOUT, 0};
    int rc = poll(&pfd, 1, timeout_ms);
    if (rc <= 0) {
      *error = rc == 0 ? "connect timed out" : std::string("poll: ") + std::strerror(errno);
      close(fd);
      return -1;
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 || soerr != 0) {
      *error = std::string("connect: ") + std::strerror(soerr != 0 ? soerr : errno);
      close(fd);
      return -1;
    }
  }
  SetNoDelay(fd);
  return fd;
}

void CloseFd(int fd) {
  if (fd >= 0) {
    close(fd);
  }
}

bool FrameStream::ReadAvailable() {
  if (fd_ < 0) {
    return false;
  }
  uint8_t buf[16384];
  while (true) {
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      bytes_in_ += static_cast<uint64_t>(n);
      reader_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return false;  // EOF: peer closed (or died).
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return true;
    }
    if (errno == EINTR) {
      continue;
    }
    return false;  // ECONNRESET and friends: the connection is gone.
  }
}

void FrameStream::QueueFrame(const std::vector<uint8_t>& body) {
  std::vector<uint8_t> framed = FrameBytes(body);
  // Compact the consumed prefix occasionally so the buffer cannot grow
  // without bound across a long session.
  if (write_offset_ > 0 && write_offset_ == write_buffer_.size()) {
    write_buffer_.clear();
    write_offset_ = 0;
  } else if (write_offset_ > 65536) {
    write_buffer_.erase(write_buffer_.begin(),
                        write_buffer_.begin() + static_cast<long>(write_offset_));
    write_offset_ = 0;
  }
  write_buffer_.insert(write_buffer_.end(), framed.begin(), framed.end());
}

bool FrameStream::Flush() {
  if (fd_ < 0) {
    return false;
  }
  while (write_offset_ < write_buffer_.size()) {
    ssize_t n = write(fd_, write_buffer_.data() + write_offset_,
                      write_buffer_.size() - write_offset_);
    if (n > 0) {
      write_offset_ += static_cast<size_t>(n);
      bytes_out_ += static_cast<uint64_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return true;  // Socket buffer full: try again next loop.
    }
    if (errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

void FrameStream::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

}  // namespace serve
}  // namespace hbft
