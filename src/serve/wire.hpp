// Client-facing wire protocol for `hbft_cli serve`, plus the shared
// length-prefix framing used on both real TCP byte streams (client
// connections and the inter-replica replication link).
//
// The codec follows the repo's canonical-bytes discipline (common/snapshot,
// net/message): little-endian fixed-width fields, explicit lengths, exactly
// one encoding per value. Deserialize rejects every non-canonical byte
// string — unknown frame types, undefined flag bits, a payload length that
// disagrees with the frame size — so a fuzzer can assert "parses or is
// rejected, never misreads".
//
// Frame layout on the stream (everything little-endian):
//   u32  body_len                  (framing prefix, not part of the body)
//   u8   type                      kFrameRequest | kFrameResponse
//   u8   flags                     bit 0 = resend (client retry after
//                                  reconnect); all other bits must be zero
//   u64  client_id
//   u64  seq                       per-client request sequence number
//   u32  payload_len
//   u8[] payload
//
// Truncation semantics: a byte stream that ends mid-frame (peer death between
// partial TCP writes) leaves a prefix the FrameReader simply holds and never
// delivers — the mirror of Channel::Break pruning frames whose serialisation
// had not finished at the crash. A partial frame is NOT an error; it is a
// frame that was never sent.
#ifndef HBFT_SERVE_WIRE_HPP_
#define HBFT_SERVE_WIRE_HPP_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace hbft {
namespace serve {

inline constexpr uint8_t kFrameRequest = 1;
inline constexpr uint8_t kFrameResponse = 2;
inline constexpr uint8_t kFlagResend = 0x01;

// type + flags + client_id + seq + payload_len.
inline constexpr size_t kClientFrameHeaderBytes = 1 + 1 + 8 + 8 + 4;

// NIC packets carry a 18-byte header ("SV" + client_id + seq) ahead of the
// payload, and the device caps packets at kNicMaxPacketBytes (256).
inline constexpr size_t kNicRequestHeaderBytes = 2 + 8 + 8;
inline constexpr size_t kMaxRequestPayload = 256 - kNicRequestHeaderBytes;

// Upper bound for a client frame body; anything larger is a protocol error
// and poisons the stream (FrameReader refuses to resynchronise on garbage).
inline constexpr uint32_t kMaxClientFrameBytes =
    static_cast<uint32_t>(kClientFrameHeaderBytes + kMaxRequestPayload);

// Replication frames carry serialized net/Message values; state chunks can
// hold a control snapshot, so the cap is generous.
inline constexpr uint32_t kMaxReplFrameBytes = 16u * 1024 * 1024;

struct ClientFrame {
  uint8_t type = kFrameRequest;
  uint8_t flags = 0;
  uint64_t client_id = 0;
  uint64_t seq = 0;
  std::vector<uint8_t> payload;

  bool operator==(const ClientFrame&) const = default;

  // Canonical body bytes (no length prefix).
  std::vector<uint8_t> Serialize() const;

  // Strict inverse: nullopt for every byte string Serialize cannot produce.
  static std::optional<ClientFrame> Deserialize(const std::vector<uint8_t>& bytes);
};

// Prepends the u32 length prefix: the bytes to write to the stream.
std::vector<uint8_t> EncodeFrame(const ClientFrame& frame);
std::vector<uint8_t> FrameBytes(const std::vector<uint8_t>& body);

// Incremental length-prefix dissector for a TCP byte stream. Feed whatever
// read() returned; Next() pops complete frame bodies in order. An announced
// length above the cap marks the stream corrupt (framing desync is
// unrecoverable — the connection must be dropped). Bytes of a frame whose
// prefix or body never completed are held, reported by BufferedBytes(), and
// never delivered: the socket-transport analogue of a mid-serialisation
// Channel::Break truncation.
class FrameReader {
 public:
  explicit FrameReader(uint32_t max_frame_bytes) : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const uint8_t* data, size_t n);
  std::optional<std::vector<uint8_t>> Next();

  bool corrupt() const { return corrupt_; }
  // Bytes of an incomplete trailing frame (diagnostic: at EOF these are the
  // truncated-write residue that must not become a phantom frame).
  size_t BufferedBytes() const { return buffer_.size(); }

 private:
  uint32_t max_frame_bytes_ = 0;
  std::deque<uint8_t> buffer_;
  bool corrupt_ = false;
};

// The request as it rides the NIC device: "SV" magic + client_id + seq +
// payload, echoed verbatim by the guest so responses route back by content.
struct NicRequest {
  uint64_t client_id = 0;
  uint64_t seq = 0;
  std::vector<uint8_t> payload;

  bool operator==(const NicRequest&) const = default;
};

// CHECK-fails on an oversized payload (callers validate via the client
// frame codec first).
std::vector<uint8_t> EncodeNicRequest(const NicRequest& request);

// nullopt for packets that are not serve requests (wrong magic, short,
// oversized) — the TX trace may hold non-serve traffic.
std::optional<NicRequest> DecodeNicPacket(const std::vector<uint8_t>& bytes);

}  // namespace serve
}  // namespace hbft

#endif  // HBFT_SERVE_WIRE_HPP_
