// Frontend: the TCP listener that turns real client connections into guest
// NIC traffic.
//
// One poll-driven listener plus a set of framed connections. Complete,
// canonically-decoded request frames are handed to the server loop (which
// injects them as NIC RX); responses come back routed by client id — a
// client that reconnects (say, after a failover moved the listener to the
// promoted backup) is re-routed to its newest connection, so responses to
// resent requests land on the live socket.
//
// The frontend itself holds no response state: release timing is owned by
// the output-commit gate (the NIC TX latch under the revised protocol), and
// request/response pairing by the client-visible (client_id, seq) numbering.
// A malformed frame (non-canonical bytes, oversized length) closes its
// connection — the codec's strictness is the protocol surface, and a client
// that violates it gets a clean disconnect, not a guess.
#ifndef HBFT_SERVE_FRONTEND_HPP_
#define HBFT_SERVE_FRONTEND_HPP_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/sockets.hpp"
#include "serve/wire.hpp"

struct pollfd;

namespace hbft {
namespace serve {

class Frontend {
 public:
  explicit Frontend(uint16_t port) : port_(port) {}
  ~Frontend();
  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  // Opens (or re-opens) the listener. SO_REUSEADDR lets a promoted backup
  // bind the port its dead predecessor held moments ago.
  bool OpenListener(std::string* error);
  void CloseListener();
  bool listening() const { return listen_fd_ >= 0; }
  uint16_t port() const { return port_; }

  // Appends the listener's and every connection's fd (POLLIN, plus POLLOUT
  // where writes are pending) for the caller's poll().
  void CollectFds(std::vector<pollfd>* fds) const;

  // Accepts pending connections and drains readable sockets; every complete
  // request frame is passed to `on_request`. Dead, corrupt, or
  // protocol-violating connections are closed here.
  using RequestHandler = std::function<void(const ClientFrame&)>;
  void Pump(const RequestHandler& on_request);

  // Queues one response frame to the client's current connection (dropped
  // with a count if the client is not connected — it will resend on
  // reconnect and the guest echo is deterministic).
  void SendResponse(uint64_t client_id, uint64_t seq, const std::vector<uint8_t>& payload);

  // Pushes queued bytes on every connection.
  void FlushAll();

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_closed = 0;
    uint64_t requests = 0;
    uint64_t responses = 0;
    uint64_t responses_unroutable = 0;
    uint64_t rejected_frames = 0;  // Non-canonical or corrupt client input.
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
  };
  const Stats& stats() const { return stats_; }
  size_t connection_count() const { return conns_.size(); }

 private:
  void CloseConnection(int fd);

  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::map<int, std::unique_ptr<FrameStream>> conns_;
  // client_id -> fd of the newest connection that spoke for it.
  std::map<uint64_t, int> routes_;
  Stats stats_;
};

}  // namespace serve
}  // namespace hbft

#endif  // HBFT_SERVE_FRONTEND_HPP_
