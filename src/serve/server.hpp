// The serve subsystem's session driver: a protected guest behind a real TCP
// listener.
//
// Three roles:
//   kSingle  — the whole replica chain lives in this process (a World, as in
//              the simulation); only the client frontend is real TCP. The
//              --fail schedule can kill the in-process primary mid-session
//              to demonstrate failover under live traffic.
//   kPrimary — this process hosts the primary replica (NodeHost). It accepts
//              the backup's replication connection on --repl-port, bridges
//              the protocol stream over it, and serves clients on --port.
//              If no backup arrives within --backup-wait-ms it runs solo.
//   kBackup  — this process hosts the standing backup. It dials the
//              primary's repl port, consumes the protocol stream, and on the
//              primary's death (socket EOF -> failure detector -> P6/P7)
//              promotes and takes over the client port (SO_REUSEADDR rebind;
//              clients reconnect and resend unacknowledged requests).
//
// Request path and output commit: a client request frame becomes a NIC RX
// completion; the guest echoes the packet (after logging it to disk), and
// the echo's TX latch — which the revised protocol gates on every relayed
// message being acknowledged — is the instant the response is released to
// the client socket. A response a client holds therefore proves the backup
// can reproduce the state that generated it: kill -9 the primary and every
// acknowledged write survives the promotion. This is why serve refuses the
// original protocol variant: its boundary-ack rule makes the guarantee
// epoch-granular, and with pipelining it would not hold at all.
#ifndef HBFT_SERVE_SERVER_HPP_
#define HBFT_SERVE_SERVER_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "net/channel.hpp"
#include "sim/world.hpp"

namespace hbft {
namespace serve {

enum class ServeRole { kSingle, kPrimary, kBackup };

struct ServeConfig {
  ServeRole role = ServeRole::kSingle;
  uint16_t port = 7070;       // Client listener.
  uint16_t repl_port = 7071;  // Replication transport (multi-process roles).
  std::string peer_host = "127.0.0.1";
  uint64_t seed = 42;
  uint64_t epoch_length = 4096;
  int backups = 1;  // Chain length for kSingle.
  // Session bounds; 0 = unbounded (run until a signal).
  uint64_t duration_ms = 0;
  uint64_t max_requests = 0;
  // kPrimary: how long to hold the guest for a backup before going solo.
  // kBackup: how long to keep redialing the primary before giving up.
  uint64_t backup_wait_ms = 3000;
  // kSingle only: in-process failure schedule (--fail specs).
  FailureSchedule failures;
  std::string failure_description = "none";
};

struct ServeReport {
  bool ok = false;
  std::string error;
  std::string role;
  std::string stop_reason;  // "signal", "duration", "max-requests", "guest-halt", "service-lost"
  double runtime_s = 0.0;

  // Client-side traffic.
  uint64_t connections = 0;
  uint64_t requests = 0;
  uint64_t responses = 0;
  uint64_t responses_unroutable = 0;
  uint64_t rejected_frames = 0;
  uint64_t client_bytes_in = 0;
  uint64_t client_bytes_out = 0;

  // Replication.
  uint64_t failovers = 0;  // Peer/active-replica deaths observed.
  bool promoted = false;
  bool solo = false;
  double promotion_latency_ms = 0.0;  // Peer death -> promotion complete.
  uint64_t repl_bytes_in = 0;
  uint64_t repl_bytes_out = 0;

  // Protocol counters of the hosted (or first) replica.
  uint64_t epochs = 0;
  uint64_t messages_sent = 0;
  uint64_t acks_received = 0;
  uint64_t uncertain_synthesised = 0;

  struct ChannelReport {
    std::string name;  // e.g. "primary->backup"
    std::string mode;  // "protocol" | "acks"
    Channel::Counters counters;
  };
  std::vector<ChannelReport> channels;
};

// Runs one serve session to completion (signal, duration, request budget, or
// guest halt). Returns the process exit code; `report` is always filled.
int RunServe(const ServeConfig& config, ServeReport* report);

}  // namespace serve
}  // namespace hbft

#endif  // HBFT_SERVE_SERVER_HPP_
