#include "serve/node_host.hpp"

#include "common/check.hpp"
#include "core/failure_detector.hpp"

namespace hbft {
namespace serve {

NodeHost::~NodeHost() = default;

NodeHost::NodeHost(const NodeHostConfig& config) : config_(config) {
  bundle_ = &GetGuestImage(GuestImageVariant::kNet);

  DeviceSetConfig device_config;
  device_config.disk_blocks = config.disk_blocks;
  device_config.with_nic = true;
  devices_ = std::make_unique<DeviceSet>(device_config, config.costs, config.seed);

  MachineConfig machine = config.machine;
  machine.machine_seed = config.seed;

  // Both processes derive their channel endpoints from the shared seed; the
  // ordered-stream state that matters (sequence numbers, cumulative acks)
  // travels inside the frames themselves, which is what lets two separately
  // constructed endpoints interoperate over the wire.
  const uint64_t stream_seed = config.seed ^ (0x11F0D1CEULL * 1);
  const uint64_t ack_seed = config.seed ^ (0x11F0D1CEULL * 2);

  NodeLinks links;
  if (config.role == HostRole::kPrimary) {
    wire_out_ = std::make_unique<Channel>(config.costs.link, ChannelMode::kOrdered,
                                          config.link_faults, stream_seed);
    wire_in_ = std::make_unique<Channel>(config.costs.link, ChannelMode::kDatagram,
                                         config.link_faults, ack_seed);
    links.down_out = wire_out_.get();
    links.down_in = wire_in_.get();
    node_ = std::make_unique<PrimaryNode>(1, bundle_->program, machine, config.replication,
                                          config.costs, devices_->BuildRegistry(), links, this);
  } else {
    wire_in_ = std::make_unique<Channel>(config.costs.link, ChannelMode::kOrdered,
                                         config.link_faults, stream_seed);
    wire_out_ = std::make_unique<Channel>(config.costs.link, ChannelMode::kDatagram,
                                          config.link_faults, ack_seed);
    links.up_in = wire_in_.get();
    links.up_out = wire_out_.get();
    node_ = std::make_unique<BackupNode>(2, bundle_->program, machine, config.replication,
                                         config.costs, devices_->BuildRegistry(), links, this);
  }
  // Identical parameter block on both processes: the backup boots the same
  // guest state the primary does and diverges only through the protocol
  // stream — the multi-process restatement of "every replica boots from
  // identical state".
  PatchWorkloadParams(&node_->hypervisor().machine().memory(), config.workload);
}

void NodeHost::ScheduleAt(SimTime t, std::function<void()> fn) { queue_.Push(t, std::move(fn)); }

SimTime NodeHost::NextEventTime() const {
  return queue_.empty() ? SimTime::Max() : queue_.PeekTime();
}

PrimaryNode* NodeHost::primary() {
  return config_.role == HostRole::kPrimary ? static_cast<PrimaryNode*>(node_.get()) : nullptr;
}

BackupNode* NodeHost::backup() {
  return config_.role == HostRole::kBackup ? static_cast<BackupNode*>(node_.get()) : nullptr;
}

void NodeHost::BindWireSink(Channel::WireSink sink) { wire_out_->BindWireSink(std::move(sink)); }

bool NodeHost::OnPeerFrame(const std::vector<uint8_t>& bytes, SimTime now) {
  if (peer_lost_) {
    return false;  // Already broken: the detector's verdict stands.
  }
  return wire_in_->InjectWireFrame(bytes, now);
}

void NodeHost::OnPeerDead(SimTime now) {
  if (peer_lost_ || node_->dead()) {
    return;
  }
  peer_lost_ = true;
  // The socket dying at t is the wire-level image of the peer's outbound
  // channel breaking at its crash instant: everything already received still
  // counts, nothing more arrives (paper failure model).
  wire_in_->Break(now);
  SimTime detect =
      FailureDetector::DetectionTime(*wire_in_, now, config_.costs.failure_detect_timeout);
  if (config_.role == HostRole::kBackup) {
    auto* b = static_cast<BackupNode*>(node_.get());
    ScheduleAt(detect, [b, detect] { b->OnFailureDetected(detect); });
  } else {
    ReplicaNodeBase* n = node_.get();
    ScheduleAt(detect, [n, detect] { n->OnDownstreamFailureDetected(detect); });
  }
}

void NodeHost::InjectPacket(const std::vector<uint8_t>& payload, SimTime now) {
  if (node_->dead() || node_->halted()) {
    return;
  }
  node_->InjectInput(DeviceId::kNic, payload, now);
}

bool NodeHost::ActiveForEnvironment() const {
  if (node_->dead() || node_->halted()) {
    return false;
  }
  return config_.role == HostRole::kPrimary || peer_lost_;
}

void NodeHost::Advance(SimTime now) {
  if (!node_->dead()) {
    node_->PollIncoming(now);
  }
  while (true) {
    SimTime tq = queue_.empty() ? SimTime::Max() : queue_.PeekTime();
    SimTime tn = node_->runnable() ? node_->clock() : SimTime::Max();
    SimTime actionable = tn < tq ? tn : tq;
    if (actionable >= now) {
      return;  // Caught up: everything before `now` has been handled.
    }
    if (tn < tq) {
      SimTime horizon = tq < now ? tq : now;
      SimTime before = node_->clock();
      node_->RunSlice(horizon);
      if (node_->runnable() && node_->clock() == before) {
        // A runnable node that makes no progress would spin the loop; treat
        // it as blocked until the next injection or event changes something.
        return;
      }
    } else {
      queue_.RunNext();
    }
  }
}

}  // namespace serve
}  // namespace hbft
