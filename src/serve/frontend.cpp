#include "serve/frontend.hpp"

#include <poll.h>

namespace hbft {
namespace serve {

Frontend::~Frontend() {
  CloseListener();
  // FrameStream destructors close the connection fds.
}

bool Frontend::OpenListener(std::string* error) {
  if (listen_fd_ >= 0) {
    return true;
  }
  listen_fd_ = TcpListen(port_, error);
  return listen_fd_ >= 0;
}

void Frontend::CloseListener() {
  if (listen_fd_ >= 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
}

void Frontend::CollectFds(std::vector<pollfd>* fds) const {
  if (listen_fd_ >= 0) {
    fds->push_back(pollfd{listen_fd_, POLLIN, 0});
  }
  for (const auto& [fd, stream] : conns_) {
    short events = POLLIN;
    if (stream->HasPendingWrites()) {
      events |= POLLOUT;
    }
    fds->push_back(pollfd{fd, events, 0});
  }
}

void Frontend::Pump(const RequestHandler& on_request) {
  if (listen_fd_ >= 0) {
    while (true) {
      int fd = TcpAccept(listen_fd_);
      if (fd < 0) {
        break;
      }
      ++stats_.connections_accepted;
      conns_[fd] = std::make_unique<FrameStream>(fd, kMaxClientFrameBytes);
    }
  }

  std::vector<int> doomed;
  for (auto& [fd, stream] : conns_) {
    uint64_t before = stream->bytes_in();
    bool alive = stream->ReadAvailable();
    stats_.bytes_in += stream->bytes_in() - before;
    while (true) {
      std::optional<std::vector<uint8_t>> body = stream->NextFrame();
      if (!body.has_value()) {
        break;
      }
      std::optional<ClientFrame> frame = ClientFrame::Deserialize(*body);
      if (!frame.has_value() || frame->type != kFrameRequest) {
        ++stats_.rejected_frames;
        alive = false;  // Protocol violation: drop the connection.
        break;
      }
      ++stats_.requests;
      routes_[frame->client_id] = fd;
      on_request(*frame);
    }
    if (stream->corrupt()) {
      ++stats_.rejected_frames;
      alive = false;
    }
    if (!alive) {
      doomed.push_back(fd);
    }
  }
  for (int fd : doomed) {
    CloseConnection(fd);
  }
}

void Frontend::SendResponse(uint64_t client_id, uint64_t seq, const std::vector<uint8_t>& payload) {
  auto route = routes_.find(client_id);
  if (route == routes_.end()) {
    ++stats_.responses_unroutable;
    return;
  }
  auto conn = conns_.find(route->second);
  if (conn == conns_.end()) {
    ++stats_.responses_unroutable;
    return;
  }
  ClientFrame frame;
  frame.type = kFrameResponse;
  frame.client_id = client_id;
  frame.seq = seq;
  frame.payload = payload;
  conn->second->QueueFrame(frame.Serialize());
  ++stats_.responses;
}

void Frontend::FlushAll() {
  std::vector<int> doomed;
  for (auto& [fd, stream] : conns_) {
    uint64_t before = stream->bytes_out();
    bool alive = stream->Flush();
    stats_.bytes_out += stream->bytes_out() - before;
    if (!alive) {
      doomed.push_back(fd);
    }
  }
  for (int fd : doomed) {
    CloseConnection(fd);
  }
}

void Frontend::CloseConnection(int fd) {
  conns_.erase(fd);  // Destructor closes the socket.
  ++stats_.connections_closed;
  for (auto it = routes_.begin(); it != routes_.end();) {
    if (it->second == fd) {
      it = routes_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace serve
}  // namespace hbft
