#include "serve/wire.hpp"

#include "common/check.hpp"

namespace hbft {
namespace serve {

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = v << 8 | p[i];
  }
  return v;
}

}  // namespace

std::vector<uint8_t> ClientFrame::Serialize() const {
  HBFT_CHECK_LE(payload.size(), kMaxRequestPayload);
  std::vector<uint8_t> out;
  out.reserve(kClientFrameHeaderBytes + payload.size());
  out.push_back(type);
  out.push_back(flags);
  PutU64(&out, client_id);
  PutU64(&out, seq);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<ClientFrame> ClientFrame::Deserialize(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kClientFrameHeaderBytes) {
    return std::nullopt;
  }
  ClientFrame frame;
  frame.type = bytes[0];
  frame.flags = bytes[1];
  if (frame.type != kFrameRequest && frame.type != kFrameResponse) {
    return std::nullopt;
  }
  if ((frame.flags & ~kFlagResend) != 0) {
    return std::nullopt;  // Undefined flag bits: non-canonical.
  }
  frame.client_id = GetU64(&bytes[2]);
  frame.seq = GetU64(&bytes[10]);
  uint32_t payload_len = GetU32(&bytes[18]);
  if (payload_len > kMaxRequestPayload) {
    return std::nullopt;
  }
  // The announced payload must account for every remaining byte: trailing
  // garbage and truncated payloads are both rejected.
  if (bytes.size() != kClientFrameHeaderBytes + payload_len) {
    return std::nullopt;
  }
  frame.payload.assign(bytes.begin() + kClientFrameHeaderBytes, bytes.end());
  return frame;
}

std::vector<uint8_t> FrameBytes(const std::vector<uint8_t>& body) {
  std::vector<uint8_t> out;
  out.reserve(4 + body.size());
  PutU32(&out, static_cast<uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<uint8_t> EncodeFrame(const ClientFrame& frame) { return FrameBytes(frame.Serialize()); }

void FrameReader::Feed(const uint8_t* data, size_t n) {
  if (corrupt_) {
    return;  // The stream lost framing; nothing after that is trustworthy.
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

std::optional<std::vector<uint8_t>> FrameReader::Next() {
  if (corrupt_ || buffer_.size() < 4) {
    return std::nullopt;
  }
  uint8_t len_bytes[4];
  for (int i = 0; i < 4; ++i) {
    len_bytes[i] = buffer_[static_cast<size_t>(i)];
  }
  uint32_t body_len = GetU32(len_bytes);
  if (body_len > max_frame_bytes_) {
    corrupt_ = true;
    return std::nullopt;
  }
  if (buffer_.size() < 4u + body_len) {
    return std::nullopt;  // Incomplete frame: held, never delivered.
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + 4);
  std::vector<uint8_t> body(buffer_.begin(), buffer_.begin() + body_len);
  buffer_.erase(buffer_.begin(), buffer_.begin() + body_len);
  return body;
}

std::vector<uint8_t> EncodeNicRequest(const NicRequest& request) {
  HBFT_CHECK_LE(request.payload.size(), kMaxRequestPayload);
  std::vector<uint8_t> out;
  out.reserve(kNicRequestHeaderBytes + request.payload.size());
  out.push_back('S');
  out.push_back('V');
  PutU64(&out, request.client_id);
  PutU64(&out, request.seq);
  out.insert(out.end(), request.payload.begin(), request.payload.end());
  return out;
}

std::optional<NicRequest> DecodeNicPacket(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kNicRequestHeaderBytes ||
      bytes.size() > kNicRequestHeaderBytes + kMaxRequestPayload) {
    return std::nullopt;
  }
  if (bytes[0] != 'S' || bytes[1] != 'V') {
    return std::nullopt;
  }
  NicRequest request;
  request.client_id = GetU64(&bytes[2]);
  request.seq = GetU64(&bytes[10]);
  request.payload.assign(bytes.begin() + kNicRequestHeaderBytes, bytes.end());
  return request;
}

}  // namespace serve
}  // namespace hbft
