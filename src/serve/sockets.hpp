// Thin non-blocking POSIX TCP helpers for the serving frontend and the
// multi-process replication transport.
//
// Everything here is plain BSD sockets: listeners bind with SO_REUSEADDR so
// a promoted backup can take over a just-dead primary's client port without
// waiting out TIME_WAIT, streams are non-blocking with TCP_NODELAY (protocol
// frames are small and latency-sensitive), and all buffering is explicit so
// a single poll() loop can drive every connection without threads.
//
// FrameStream pairs a socket with the serve::FrameReader length-prefix
// dissector: reads drain into the dissector, writes queue until the socket
// accepts them. A peer that dies mid-write leaves a partial frame in the
// dissector which is held and never delivered — the socket-transport
// analogue of Channel::Break truncating a mid-serialisation frame.
#ifndef HBFT_SERVE_SOCKETS_HPP_
#define HBFT_SERVE_SOCKETS_HPP_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace hbft {
namespace serve {

// Returns a non-blocking listening fd bound to 127.0.0.1:port (SO_REUSEADDR
// set), or -1 with `error` filled.
int TcpListen(uint16_t port, std::string* error);

// Accepts one pending connection as a non-blocking, TCP_NODELAY fd; -1 when
// none is pending (or on error).
int TcpAccept(int listen_fd);

// Connects to host:port, waiting up to timeout_ms for the handshake.
// Returns a non-blocking, TCP_NODELAY fd, or -1 with `error` filled.
int TcpConnect(const std::string& host, uint16_t port, int timeout_ms, std::string* error);

void CloseFd(int fd);

// One framed TCP connection: buffered non-blocking reads and writes.
class FrameStream {
 public:
  FrameStream(int fd, uint32_t max_frame_bytes) : fd_(fd), reader_(max_frame_bytes) {}
  ~FrameStream() { Close(); }
  FrameStream(const FrameStream&) = delete;
  FrameStream& operator=(const FrameStream&) = delete;

  int fd() const { return fd_; }
  bool open() const { return fd_ >= 0; }

  // Drains whatever the socket has into the frame dissector. Returns false
  // on EOF or a hard error: the connection is dead and any buffered partial
  // frame is truncated-write residue that will never become a frame.
  bool ReadAvailable();

  // Next complete frame body, if one has fully arrived.
  std::optional<std::vector<uint8_t>> NextFrame() { return reader_.Next(); }
  bool corrupt() const { return reader_.corrupt(); }
  size_t truncated_bytes() const { return reader_.BufferedBytes(); }

  // Queues body as one length-prefixed frame; call Flush() to push bytes out.
  void QueueFrame(const std::vector<uint8_t>& body);

  // Writes as much queued data as the socket accepts without blocking.
  // Returns false on a hard error (peer reset).
  bool Flush();
  bool HasPendingWrites() const { return write_offset_ < write_buffer_.size(); }

  uint64_t bytes_in() const { return bytes_in_; }
  uint64_t bytes_out() const { return bytes_out_; }

  void Close();

 private:
  int fd_ = -1;
  FrameReader reader_;
  std::vector<uint8_t> write_buffer_;
  size_t write_offset_ = 0;
  uint64_t bytes_in_ = 0;
  uint64_t bytes_out_ = 0;
};

}  // namespace serve
}  // namespace hbft

#endif  // HBFT_SERVE_SOCKETS_HPP_
