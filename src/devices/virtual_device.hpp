// The pluggable device-model API.
//
// Two interfaces split a device the same way the paper splits the system:
//
//   * VirtualDevice — the PER-NODE, guest-facing register model. It owns one
//     MMIO page and the virtual register state the hypervisor serves reads
//     from. Its state changes only at epoch-synchronised points (guest MMIO
//     stores, completion delivery at epoch boundaries), so it is a pure
//     function of the virtual-machine history and identical on every
//     replica. A guest store to the device's "go" register yields an
//     IoDescriptor initiation, which the replication layer routes (P1/P3).
//
//   * DeviceBackend — the SHARED, environment-facing real device. One
//     instance per world, touched only by the replica that currently drives
//     the devices. It performs operations, applies the fault plan (IO2's
//     uncertain completions), records the environment trace the observer
//     checks, and resolves operations left in flight by a crash.
//
// The DeviceRegistry holds a node's VirtualDevice instances and dispatches
// by MMIO window, IRQ line, or DeviceId. The hypervisor, the replica roles,
// the bare reference node, and P7's uncertain-interrupt synthesis all
// iterate the registry instead of naming any concrete device.
#ifndef HBFT_DEVICES_VIRTUAL_DEVICE_HPP_
#define HBFT_DEVICES_VIRTUAL_DEVICE_HPP_

#include <memory>
#include <vector>

#include "common/snapshot.hpp"
#include "common/time.hpp"
#include "devices/io.hpp"

namespace hbft {

class Machine;

// The environment side of a device (shared per world).
class DeviceBackend {
 public:
  virtual ~DeviceBackend() = default;

  virtual DeviceId device_id() const = 0;

  struct Issued {
    uint64_t op_id = 0;   // Backend-scoped in-flight handle.
    SimTime latency;      // Virtual time until the completion event.
  };

  // Starts a real operation on behalf of node `issuer`. Environment-visible
  // output (console characters, NIC packets) is latched here, at issue.
  virtual Issued Issue(const IoDescriptor& io, int issuer) = 0;

  // The issuing node's virtual clock, set immediately before each Issue call
  // so backends can stamp their environment traces with the latch time (the
  // fleet's per-request latency measurements read NIC trace timestamps).
  // Purely observational: no backend behaviour depends on it.
  void SetIssueClock(SimTime t) { issue_clock_ = t; }
  SimTime issue_clock() const { return issue_clock_; }

  // Finishes an in-flight operation, applying the fault plan, and builds the
  // completion the device model will apply at delivery.
  virtual IoCompletionPayload Complete(uint64_t op_id, const IoDescriptor& io) = 0;

  // Whether a crash of the issuing node leaves a genuine "may or may not
  // have been performed" question (IO2). Disk yes; console/NIC output is
  // latched at issue, so their in-flight completions simply vanish.
  virtual bool crash_resolvable() const { return false; }

  // Resolves an operation whose issuer crashed before completion.
  virtual void ResolveAtCrash(uint64_t op_id, bool performed) { (void)op_id, (void)performed; }

  // The device-tagged environment trace for the transparency checker.
  virtual std::vector<EnvTraceEntry> EnvTrace() const = 0;

 private:
  SimTime issue_clock_ = SimTime::Zero();
};

// The guest-facing side of a device (one instance per node). Snapshotable:
// the register model is part of the virtual-machine state, so it rides in
// every node snapshot and in the live state transfer that lets a fresh
// backup rejoin the chain.
class VirtualDevice : public Snapshotable {
 public:
  ~VirtualDevice() override = default;

  virtual DeviceId device_id() const = 0;
  virtual const char* name() const = 0;
  virtual uint32_t mmio_base() const = 0;  // One page starting here.
  virtual uint32_t irq_mask() const = 0;   // All EIRR lines this device owns.

  struct StoreResult {
    bool fault = false;     // Store to an unknown register.
    bool initiate = false;  // The store started an I/O operation.
    IoDescriptor io;        // Valid when `initiate`; guest_op_seq unassigned.
  };

  // Guest MMIO access at `offset` within the device window. Stores may
  // mutate registers, acknowledge interrupts, or initiate I/O; loads are
  // served from the virtual registers (unknown offsets read 0, as real
  // controllers' reserved registers do).
  virtual StoreResult MmioStore(uint32_t offset, uint32_t value, Machine& machine) = 0;
  virtual uint32_t MmioLoad(uint32_t offset) const = 0;

  // Applies a completion to the guest-visible state: DMA data lands in guest
  // memory, status/result registers update, the IRQ line rises. Called at a
  // deterministic instruction-stream point (epoch delivery on replicas,
  // completion time on the bare reference machine).
  virtual void ApplyCompletion(const IoCompletionPayload& io, Machine& machine) = 0;

  // P7: the uncertain completion that re-drives an outstanding operation
  // after failover. The guest driver cannot distinguish it from a transient
  // device fault and takes its retry path.
  virtual IoCompletionPayload MakeUncertainCompletion(const IoDescriptor& io) const = 0;

  // Environment input (console characters, NIC packets) shaped as a
  // completion so one delivery mechanism serves every device. Returns false
  // for pure output devices.
  virtual bool MakeInputCompletion(const std::vector<uint8_t>& payload,
                                   IoCompletionPayload* out) const {
    (void)payload, (void)out;
    return false;
  }

  // The shared backend, null for guest-facing-only instantiations (tests).
  DeviceBackend* backend() const { return backend_; }

 protected:
  explicit VirtualDevice(DeviceBackend* backend) : backend_(backend) {}

 private:
  DeviceBackend* backend_;
};

// A node's device set, dispatchable by MMIO window, IRQ line, or id.
// Snapshotable as one unit: capture tags each device model with its id, and
// restore walks this registry's devices in order, rejecting any shape
// mismatch — two registries built by the same DeviceSet always align.
class DeviceRegistry : public Snapshotable {
 public:
  void Add(std::unique_ptr<VirtualDevice> device);

  void CaptureState(SnapshotWriter& w) const override;
  bool RestoreState(SnapshotReader& r) override;

  // All lookups return null when nothing matches.
  VirtualDevice* by_id(DeviceId id) const;
  VirtualDevice* by_irq(uint32_t irq_line) const;
  VirtualDevice* by_mmio(uint32_t paddr) const;

  const std::vector<std::unique_ptr<VirtualDevice>>& devices() const { return devices_; }

 private:
  std::vector<std::unique_ptr<VirtualDevice>> devices_;
};

// The default two-device registry of the paper's prototype (disk + console)
// with no backends attached: guest-facing state machines only. Used by the
// hypervisor when no registry is supplied (unit tests).
std::unique_ptr<DeviceRegistry> CreateDefaultRegistry();

}  // namespace hbft

#endif  // HBFT_DEVICES_VIRTUAL_DEVICE_HPP_
