// LatchedOutputBackend: the shared environment-side machinery for devices
// whose output commits at issue (console bytes, NIC packets).
//
// Such a device latches its payload into the environment the moment the
// guest's "go" register write reaches the backend; the completion interrupt
// merely reports the latch result a transmit time later. IO2 enters at the
// latch: the fault plan can make the completion uncertain, deciding then
// whether the output actually reached the environment — the driver
// retransmits, and the environment tolerates the bounded duplicate window
// (at a transient fault or at failover alike). Subclasses provide only the
// latch itself and the completion IRQ line.
#ifndef HBFT_DEVICES_LATCHED_OUTPUT_HPP_
#define HBFT_DEVICES_LATCHED_OUTPUT_HPP_

#include <cstdint>
#include <map>

#include "common/rng.hpp"
#include "devices/virtual_device.hpp"

namespace hbft {

class LatchedOutputBackend : public DeviceBackend {
 public:
  void set_fault_plan(const FaultPlan& plan) { fault_plan_ = plan; }
  void set_tx_latency(SimTime latency) { tx_latency_ = latency; }

  Issued Issue(const IoDescriptor& io, int issuer) final;
  IoCompletionPayload Complete(uint64_t op_id, const IoDescriptor& io) final;

  // Output already committed at issue: a crash poses no IO2 question
  // (crash_resolvable stays false, so the world draws no resolution), but
  // the latch result of the vanished completion is dropped here.
  void ResolveAtCrash(uint64_t op_id, bool performed) override {
    (void)performed;
    in_flight_result_.erase(op_id);
  }

 protected:
  LatchedOutputBackend(uint64_t seed, uint64_t salt) : rng_(seed ^ salt) {}

  // Commits the operation's payload to the environment (trace + output).
  virtual void Latch(const IoDescriptor& io, int issuer) = 0;
  // The EIRR line completions of this device raise.
  virtual uint32_t completion_irq() const = 0;
  // The single opcode this device accepts.
  virtual uint32_t accepted_opcode() const = 0;

 private:
  DeterministicRng rng_;
  FaultPlan fault_plan_;
  SimTime tx_latency_ = SimTime::Zero();
  uint64_t next_op_id_ = 1;
  std::map<uint64_t, uint32_t> in_flight_result_;  // op id -> result code.
};

}  // namespace hbft

#endif  // HBFT_DEVICES_LATCHED_OUTPUT_HPP_
