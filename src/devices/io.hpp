// Device-generic I/O types: the vocabulary shared by the hypervisor, the
// replication protocol, the interconnect, and the environment observer.
//
// The paper states its protocol (P1-P7) over two I/O axioms, not over any
// particular device:
//   IO1: an issued-and-performed operation raises a completion interrupt;
//   IO2: an uncertain completion means the operation may or may not have been
//        performed, and drivers must re-issue (devices tolerate repetition).
// Everything in this header is therefore device-agnostic. A device is known
// to the core and sim layers only by its DeviceId, its IoDescriptor-shaped
// initiations, and its IoCompletionPayload-shaped completions; the concrete
// register models and environment backends live behind the VirtualDevice /
// DeviceBackend interfaces (devices/virtual_device.hpp).
#ifndef HBFT_DEVICES_IO_HPP_
#define HBFT_DEVICES_IO_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "common/snapshot.hpp"

namespace hbft {

// Stable identity of a device class within a node's registry. Values are
// wire-visible (relayed completions carry the id implicitly through the IRQ
// line); keep them stable.
enum class DeviceId : uint32_t {
  kNone = 0,
  kDisk = 1,
  kConsole = 2,
  kNic = 3,
};

const char* DeviceIdName(DeviceId id);

// A guest-initiated I/O operation, produced by a device model when the guest
// writes the device's "go" register and consumed by the replication layer,
// which decides whether to drive the real backend (active replica) or
// suppress and record it (standing backup). Every field is a deterministic
// function of the guest instruction stream, so primary and backup produce
// identical descriptors.
struct IoDescriptor {
  DeviceId device_id = DeviceId::kNone;
  uint64_t guest_op_seq = 0;  // Node-wide deterministic initiation counter.
  uint32_t opcode = 0;        // Device-specific operation code.
  uint32_t arg0 = 0;          // Device-specific (disk: block, NIC: length).
  uint32_t arg1 = 0;          // Device-specific (disk/NIC: DMA paddr).
  std::vector<uint8_t> payload;  // Outbound data snapshot taken at issue.
};

// A virtual I/O completion: buffered by the hypervisor for delivery at the
// end of the epoch, relayed to backups as the payload of an [E, Int]
// message, and applied to the guest-visible device registers by the owning
// device model (VirtualDevice::ApplyCompletion). `device_irq` is the EIRR
// line bit and doubles as the registry dispatch key.
struct IoCompletionPayload {
  uint32_t device_irq = 0;     // IrqLine bit for the device (dispatch key).
  uint64_t guest_op_seq = 0;   // The guest-visible I/O sequence number.
  uint32_t result_code = 0;    // Virtual device result register value.
  bool has_dma_data = false;
  uint32_t dma_guest_paddr = 0;
  std::vector<uint8_t> dma_data;
};

// Transient-fault injection, symmetric across devices: each completion
// independently becomes uncertain with `uncertain_probability`; when
// uncertain, the operation was actually performed with probability
// `performed_when_uncertain` (IO2 made concrete and testable).
struct FaultPlan {
  double uncertain_probability = 0.0;
  double performed_when_uncertain = 0.5;
};

// One environment-visible event in a device's output trace, device-tagged so
// a single generalised checker can verify the paper's transparency criterion
// per device (sim/environment_observer.hpp). `op_hash` identifies the
// operation including its content: two entries with equal hashes are the
// same operation repeated (which IO1/IO2 license inside the in-flight
// window); unequal hashes are different operations.
struct EnvTraceEntry {
  DeviceId device_id = DeviceId::kNone;
  int issuer = 0;          // Node id that drove the operation.
  bool performed = false;  // Whether the environment actually saw it.
  uint64_t op_hash = 0;    // Operation identity incl. content.
  std::string label;       // Human-readable form for failure diagnostics.
};

// Canonical snapshot codecs for the I/O vocabulary, shared by the hypervisor
// snapshot (buffered interrupts), the node resync payload (outstanding
// operations), and their fuzz tests. Defined in virtual_device.cpp.
void CaptureIoDescriptor(SnapshotWriter& w, const IoDescriptor& io);
bool RestoreIoDescriptor(SnapshotReader& r, IoDescriptor* io);
void CaptureIoCompletion(SnapshotWriter& w, const IoCompletionPayload& io);
bool RestoreIoCompletion(SnapshotReader& r, IoCompletionPayload* io);

}  // namespace hbft

#endif  // HBFT_DEVICES_IO_HPP_
