#include "devices/nic.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "isa/isa.hpp"
#include "machine/machine.hpp"

namespace hbft {

void Nic::Latch(const IoDescriptor& io, int issuer) {
  trace_.push_back(NicTraceEntry{io.payload, issuer, issue_clock()});
  if (on_latch_) {
    on_latch_(trace_.back());
  }
}

uint32_t Nic::completion_irq() const { return kIrqNicTx; }

std::vector<EnvTraceEntry> Nic::EnvTrace() const {
  std::vector<EnvTraceEntry> out;
  out.reserve(trace_.size());
  for (const NicTraceEntry& e : trace_) {
    EnvTraceEntry entry;
    entry.device_id = DeviceId::kNic;
    entry.issuer = e.issuer;
    entry.performed = true;
    entry.op_hash = Fnv1a(e.bytes.data(), e.bytes.size());
    std::ostringstream label;
    label << "pkt(len=" << e.bytes.size() << ", hash=" << entry.op_hash << ")";
    entry.label = label.str();
    out.push_back(std::move(entry));
  }
  return out;
}

// --- NicDevice ---------------------------------------------------------------

uint32_t NicDevice::mmio_base() const { return kNicMmioBase; }
uint32_t NicDevice::irq_mask() const { return kIrqNicTx | kIrqNicRx; }

void NicDevice::TryDeliverRx(Machine& machine) {
  if (!state_.rx_enabled || state_.rx_ready || rx_queue_.empty()) {
    return;
  }
  std::vector<uint8_t> packet = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  machine.memory().WriteBlock(state_.reg_rx_dma, packet.data(),
                              static_cast<uint32_t>(packet.size()));
  state_.reg_rx_len = static_cast<uint32_t>(packet.size());
  state_.rx_ready = true;
  machine.RaiseIrq(kIrqNicRx);
}

VirtualDevice::StoreResult NicDevice::MmioStore(uint32_t offset, uint32_t value,
                                                Machine& machine) {
  StoreResult result;
  switch (offset) {
    case kNicRegTxDma:
      state_.reg_tx_dma = value;
      break;
    case kNicRegTxLen:
      state_.reg_tx_len = value;
      break;
    case kNicRegRxDma:
      state_.reg_rx_dma = value;
      break;
    case kNicRegRxCtrl:
      state_.rx_enabled = value != 0;
      TryDeliverRx(machine);
      break;
    case kNicRegIntAck:
      if ((value & 1) != 0) {
        machine.AckIrq(kIrqNicRx);
        state_.rx_ready = false;
        TryDeliverRx(machine);  // The next queued packet, if any.
      }
      if ((value & 2) != 0) {
        machine.AckIrq(kIrqNicTx);
      }
      break;
    case kNicRegTxCmd: {
      HBFT_CHECK(!state_.tx_busy) << "guest issued a NIC transmit while busy";
      HBFT_CHECK_EQ(value, kNicOpTx) << "bad NIC command " << value;
      HBFT_CHECK(state_.reg_tx_len > 0 && state_.reg_tx_len <= kNicMaxPacketBytes)
          << "bad NIC TX length " << state_.reg_tx_len;
      state_.tx_busy = true;
      result.initiate = true;
      result.io.device_id = DeviceId::kNic;
      result.io.opcode = kNicOpTx;
      result.io.arg0 = state_.reg_tx_len;
      result.io.arg1 = state_.reg_tx_dma;
      // Packet snapshot at issue: deterministic, identical at all replicas.
      result.io.payload.resize(state_.reg_tx_len);
      machine.memory().ReadBlock(state_.reg_tx_dma, result.io.payload.data(), state_.reg_tx_len);
      break;
    }
    default:
      result.fault = true;
      break;
  }
  return result;
}

uint32_t NicDevice::MmioLoad(uint32_t offset) const {
  switch (offset) {
    case kNicRegStatus:
      return (state_.rx_ready ? 1u : 0u) | (state_.tx_busy ? 2u : 0u);
    case kNicRegTxDma:
      return state_.reg_tx_dma;
    case kNicRegTxLen:
      return state_.reg_tx_len;
    case kNicRegRxDma:
      return state_.reg_rx_dma;
    case kNicRegRxLen:
      return state_.reg_rx_len;
    case kNicRegTxResult:
      return state_.reg_tx_result;
    default:
      return 0;
  }
}

void NicDevice::ApplyCompletion(const IoCompletionPayload& io, Machine& machine) {
  if (io.device_irq == kIrqNicTx) {
    state_.tx_busy = false;
    state_.reg_tx_result = io.result_code;
    machine.RaiseIrq(kIrqNicTx);
    return;
  }
  HBFT_CHECK_EQ(io.device_irq, static_cast<uint32_t>(kIrqNicRx));
  // An injected packet: queue it; delivery into the guest buffer happens at
  // the deterministic points TryDeliverRx guards (enable / intack / here).
  rx_queue_.push_back(io.dma_data);
  TryDeliverRx(machine);
}

IoCompletionPayload NicDevice::MakeUncertainCompletion(const IoDescriptor& io) const {
  IoCompletionPayload payload;
  payload.device_irq = kIrqNicTx;
  payload.guest_op_seq = io.guest_op_seq;
  payload.result_code = kNicResultUncertain;
  return payload;
}

void NicDevice::CaptureState(SnapshotWriter& w) const {
  w.U32(state_.reg_tx_dma);
  w.U32(state_.reg_tx_len);
  w.U32(state_.reg_rx_dma);
  w.U32(state_.reg_rx_len);
  w.U32(state_.reg_tx_result);
  w.Bool(state_.tx_busy);
  w.Bool(state_.rx_enabled);
  w.Bool(state_.rx_ready);
  w.U32(static_cast<uint32_t>(rx_queue_.size()));
  for (const std::vector<uint8_t>& packet : rx_queue_) {
    w.Blob(packet);
  }
}

bool NicDevice::RestoreState(SnapshotReader& r) {
  if (!r.U32(&state_.reg_tx_dma) || !r.U32(&state_.reg_tx_len) || !r.U32(&state_.reg_rx_dma) ||
      !r.U32(&state_.reg_rx_len) || !r.U32(&state_.reg_tx_result) || !r.Bool(&state_.tx_busy) ||
      !r.Bool(&state_.rx_enabled) || !r.Bool(&state_.rx_ready)) {
    return false;
  }
  uint32_t queued = 0;
  if (!r.U32(&queued)) {
    return false;
  }
  rx_queue_.clear();
  for (uint32_t i = 0; i < queued; ++i) {
    std::vector<uint8_t> packet;
    if (!r.Blob(&packet)) {
      return false;
    }
    rx_queue_.push_back(std::move(packet));
  }
  return true;
}

bool NicDevice::MakeInputCompletion(const std::vector<uint8_t>& payload,
                                    IoCompletionPayload* out) const {
  HBFT_CHECK(!payload.empty());
  HBFT_CHECK_LE(payload.size(), static_cast<size_t>(kNicMaxPacketBytes));
  out->device_irq = kIrqNicRx;
  out->guest_op_seq = 0;
  out->result_code = static_cast<uint32_t>(payload.size());
  out->has_dma_data = true;
  out->dma_guest_paddr = 0;  // Resolved against the model's RX_DMA at delivery.
  out->dma_data = payload;
  return true;
}

}  // namespace hbft
