#include "devices/device_set.hpp"

namespace hbft {

DeviceSet::DeviceSet(const DeviceSetConfig& config, const CostModel& costs, uint64_t seed) {
  disk_ = std::make_unique<Disk>(config.disk_blocks, seed);
  disk_->set_fault_plan(config.disk_faults);
  disk_->set_latencies(costs.disk_read_latency, costs.disk_write_latency);
  backends_.push_back(disk_.get());

  console_ = std::make_unique<Console>(seed);
  console_->set_fault_plan(config.console_faults);
  console_->set_tx_latency(costs.console_tx_latency);
  backends_.push_back(console_.get());

  if (config.with_nic) {
    nic_ = std::make_unique<Nic>(seed);
    nic_->set_fault_plan(config.nic_faults);
    nic_->set_tx_latency(costs.nic_tx_latency);
    backends_.push_back(nic_.get());
  }
}

DeviceBackend* DeviceSet::backend(DeviceId id) {
  for (DeviceBackend* backend : backends_) {
    if (backend->device_id() == id) {
      return backend;
    }
  }
  return nullptr;
}

std::unique_ptr<DeviceRegistry> DeviceSet::BuildRegistry() const {
  auto registry = std::make_unique<DeviceRegistry>();
  registry->Add(std::make_unique<DiskDevice>(disk_.get()));
  registry->Add(std::make_unique<ConsoleDevice>(console_.get()));
  if (nic_ != nullptr) {
    registry->Add(std::make_unique<NicDevice>(nic_.get()));
  }
  return registry;
}

std::vector<EnvTraceEntry> DeviceSet::EnvTrace() const {
  std::vector<EnvTraceEntry> out;
  for (const DeviceBackend* backend : backends_) {
    std::vector<EnvTraceEntry> trace = backend->EnvTrace();
    out.insert(out.end(), std::make_move_iterator(trace.begin()),
               std::make_move_iterator(trace.end()));
  }
  return out;
}

}  // namespace hbft
