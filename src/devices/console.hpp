// Remote console device: byte-oriented TX (environment output) and RX input
// injection with interrupt semantics.
//
// In the paper's prototype the remote console sits on the Ethernet and is the
// second I/O device besides the SCSI disk. Console output is the clearest
// "interaction with the environment": the replication protocol must suppress
// backup output while the primary lives and allow at most a window of
// duplicated output across failover.
//
// Console (the DeviceBackend) latches each character into the environment at
// issue and completes the TX latch after a UART character time. Its fault
// plan mirrors the disk's (IO2): a completion may come back uncertain, in
// which case the character may or may not have reached the terminal and the
// guest driver retransmits — the environment tolerates the duplicate.
// ConsoleDevice (the VirtualDevice) is the per-node register model; console
// RX input reaches the guest through the same generic completion path as
// every other device interrupt.
#ifndef HBFT_DEVICES_CONSOLE_HPP_
#define HBFT_DEVICES_CONSOLE_HPP_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "devices/latched_output.hpp"

namespace hbft {

// Console opcode (IoDescriptor::opcode).
inline constexpr uint32_t kConsoleOpTx = 1;

// TX result register codes (0 ok, 1 uncertain), shared with the disk's.
inline constexpr uint32_t kConsoleResultOk = 0;
inline constexpr uint32_t kConsoleResultUncertain = 1;

struct ConsoleTraceEntry {
  char ch = 0;
  int issuer = 0;
};

class Console : public LatchedOutputBackend {
 public:
  explicit Console(uint64_t seed = 0) : LatchedOutputBackend(seed, 0xC0501EULL) {}

  // --- DeviceBackend ---------------------------------------------------------
  DeviceId device_id() const override { return DeviceId::kConsole; }
  std::vector<EnvTraceEntry> EnvTrace() const override;

  // Environment-visible output (direct form, used by tests).
  void Transmit(char c, int issuer) {
    output_.push_back(c);
    trace_.push_back(ConsoleTraceEntry{c, issuer});
  }

  // Input path (host injects; guest pops via the RX register).
  void InjectInput(const std::string& text) {
    for (char c : text) {
      rx_fifo_.push_back(c);
    }
  }
  bool HasRx() const { return !rx_fifo_.empty(); }
  char PopRx() {
    char c = rx_fifo_.front();
    rx_fifo_.pop_front();
    return c;
  }

  const std::string& output() const { return output_; }
  const std::vector<ConsoleTraceEntry>& trace() const { return trace_; }

 protected:
  void Latch(const IoDescriptor& io, int issuer) override;
  uint32_t completion_irq() const override;
  uint32_t accepted_opcode() const override { return kConsoleOpTx; }

 private:
  std::string output_;
  std::deque<char> rx_fifo_;
  std::vector<ConsoleTraceEntry> trace_;
};

// The per-node console register model.
class ConsoleDevice : public VirtualDevice {
 public:
  struct State {
    uint32_t rx_char = 0;
    bool rx_ready = false;
    bool tx_busy = false;
    uint32_t reg_result = 0;  // TX completion code (0 ok, 1 uncertain).
  };

  explicit ConsoleDevice(DeviceBackend* backend = nullptr) : VirtualDevice(backend) {}

  DeviceId device_id() const override { return DeviceId::kConsole; }
  const char* name() const override { return "console"; }
  uint32_t mmio_base() const override;
  uint32_t irq_mask() const override;

  StoreResult MmioStore(uint32_t offset, uint32_t value, Machine& machine) override;
  uint32_t MmioLoad(uint32_t offset) const override;
  void ApplyCompletion(const IoCompletionPayload& io, Machine& machine) override;
  IoCompletionPayload MakeUncertainCompletion(const IoDescriptor& io) const override;
  bool MakeInputCompletion(const std::vector<uint8_t>& payload,
                           IoCompletionPayload* out) const override;

  void CaptureState(SnapshotWriter& w) const override;
  bool RestoreState(SnapshotReader& r) override;

  const State& state() const { return state_; }

 private:
  State state_;
};

}  // namespace hbft

#endif  // HBFT_DEVICES_CONSOLE_HPP_
