// Remote console device: byte-oriented TX (environment output) and RX input
// injection with interrupt semantics.
//
// In the paper's prototype the remote console sits on the Ethernet and is the
// second I/O device besides the SCSI disk. Console output is the clearest
// "interaction with the environment": the replication protocol must suppress
// backup output while the primary lives and allow at most a window of
// duplicated output across failover.
#ifndef HBFT_DEVICES_CONSOLE_HPP_
#define HBFT_DEVICES_CONSOLE_HPP_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace hbft {

struct ConsoleTraceEntry {
  char ch = 0;
  int issuer = 0;
};

class Console {
 public:
  // Environment-visible output.
  void Transmit(char c, int issuer) {
    output_.push_back(c);
    trace_.push_back(ConsoleTraceEntry{c, issuer});
  }

  // Input path (host injects; guest pops via the RX register).
  void InjectInput(const std::string& text) {
    for (char c : text) {
      rx_fifo_.push_back(c);
    }
  }
  bool HasRx() const { return !rx_fifo_.empty(); }
  char PopRx() {
    char c = rx_fifo_.front();
    rx_fifo_.pop_front();
    return c;
  }

  const std::string& output() const { return output_; }
  const std::vector<ConsoleTraceEntry>& trace() const { return trace_; }

 private:
  std::string output_;
  std::deque<char> rx_fifo_;
  std::vector<ConsoleTraceEntry> trace_;
};

}  // namespace hbft

#endif  // HBFT_DEVICES_CONSOLE_HPP_
