// Network interface card: packet TX as environment output, packet RX
// injection with interrupt semantics — the third device on the generic
// VirtualDevice API, and the proof that the protocol really is stated over
// the I/O axioms rather than over the disk/console pair.
//
// TX mirrors the console's semantics: the packet is latched into the
// environment at issue (snapshot of the guest TX buffer, taken at a
// deterministic instruction-stream point) and the completion interrupt
// arrives a transmit time later. The fault plan can make completions
// uncertain (IO2), and P7 synthesises uncertain completions for TX
// operations outstanding at failover — the driver retransmits, so the
// environment may see a bounded window of duplicated packets at handover,
// exactly like duplicated console output.
//
// RX mirrors the console's input path, scaled from characters to packets:
// the world injects a packet, the active replica buffers it as a virtual
// interrupt (relaying it down the chain like any other), and at epoch
// delivery the NIC model DMAs it into the guest RX buffer and raises the RX
// line. Packets arriving while the guest still holds an unconsumed one (or
// before it enabled reception) queue inside the model; the queue drains at
// deterministic points (RX enable, RX interrupt-ack), so every replica sees
// the identical delivery sequence.
#ifndef HBFT_DEVICES_NIC_HPP_
#define HBFT_DEVICES_NIC_HPP_

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "devices/latched_output.hpp"

namespace hbft {

// NIC opcode (IoDescriptor::opcode; equal to the TX_CMD register value).
inline constexpr uint32_t kNicOpTx = 1;

// TX result codes (0 ok, 1 uncertain).
inline constexpr uint32_t kNicResultOk = 0;
inline constexpr uint32_t kNicResultUncertain = 1;

// One transmitted (environment-visible) packet. `time` is the issuing node's
// virtual clock at the latch (zero when the issuer never set its clock, e.g.
// backend-only unit tests) — the commit instant the fleet's request-latency
// measurements are taken against.
struct NicTraceEntry {
  std::vector<uint8_t> bytes;
  int issuer = 0;
  SimTime time = SimTime::Zero();
};

class Nic : public LatchedOutputBackend {
 public:
  explicit Nic(uint64_t seed = 0) : LatchedOutputBackend(seed, 0x21C0FFEEULL) {}

  // --- DeviceBackend ---------------------------------------------------------
  DeviceId device_id() const override { return DeviceId::kNic; }
  std::vector<EnvTraceEntry> EnvTrace() const override;

  const std::vector<NicTraceEntry>& trace() const { return trace_; }

  // Serve-frontend hook: fires at every TX latch with the entry just
  // appended. Under the revised protocol a latch is already gated on
  // all-acked, so the callback instant IS the output-commit instant — the
  // earliest moment a reply may leave for a real client.
  void set_on_latch(std::function<void(const NicTraceEntry&)> fn) { on_latch_ = std::move(fn); }

 protected:
  void Latch(const IoDescriptor& io, int issuer) override;
  uint32_t completion_irq() const override;
  uint32_t accepted_opcode() const override { return kNicOpTx; }

 private:
  std::vector<NicTraceEntry> trace_;
  std::function<void(const NicTraceEntry&)> on_latch_;
};

// The per-node NIC register model.
class NicDevice : public VirtualDevice {
 public:
  struct State {
    uint32_t reg_tx_dma = 0;
    uint32_t reg_tx_len = 0;
    uint32_t reg_rx_dma = 0;
    uint32_t reg_rx_len = 0;
    uint32_t reg_tx_result = 0;
    bool tx_busy = false;
    bool rx_enabled = false;
    bool rx_ready = false;  // A packet sits in the guest RX buffer, unacked.
  };

  explicit NicDevice(DeviceBackend* backend = nullptr) : VirtualDevice(backend) {}

  DeviceId device_id() const override { return DeviceId::kNic; }
  const char* name() const override { return "nic"; }
  uint32_t mmio_base() const override;
  uint32_t irq_mask() const override;

  StoreResult MmioStore(uint32_t offset, uint32_t value, Machine& machine) override;
  uint32_t MmioLoad(uint32_t offset) const override;
  void ApplyCompletion(const IoCompletionPayload& io, Machine& machine) override;
  IoCompletionPayload MakeUncertainCompletion(const IoDescriptor& io) const override;
  bool MakeInputCompletion(const std::vector<uint8_t>& payload,
                           IoCompletionPayload* out) const override;

  void CaptureState(SnapshotWriter& w) const override;
  bool RestoreState(SnapshotReader& r) override;

  const State& state() const { return state_; }
  size_t queued_rx_packets() const { return rx_queue_.size(); }

 private:
  // Delivers the front queued packet into the guest RX buffer if the guest
  // can take one (reception enabled, previous packet consumed).
  void TryDeliverRx(Machine& machine);

  State state_;
  std::deque<std::vector<uint8_t>> rx_queue_;
};

}  // namespace hbft

#endif  // HBFT_DEVICES_NIC_HPP_
