// Dual-ported block disk — the shared SCSI disk of the paper's prototype.
//
// The device satisfies the paper's I/O interface axioms:
//   IO1: an issued-and-performed operation raises a completion interrupt;
//   IO2: an uncertain completion (SCSI CHECK_CONDITION analogue) means the
//        operation may or may not have been performed.
// Drivers must therefore retry after uncertain completions, and the device
// tolerates re-issued operations (block writes are idempotent). Protocol rule
// P7 exploits exactly this: at failover the backup's hypervisor synthesises
// uncertain interrupts for all outstanding operations.
//
// The disk is passive with respect to time: the simulation issues operations,
// decides when they complete (transfer-time model), and calls Complete(). A
// crash of the issuing processor mid-operation is resolved explicitly with
// ResolveInFlightAtCrash(performed) — the "may or may not" of IO2 made
// concrete and testable.
#ifndef HBFT_DEVICES_DISK_HPP_
#define HBFT_DEVICES_DISK_HPP_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"

namespace hbft {

inline constexpr uint32_t kDiskBlockBytes = 8192;  // The paper's 8K blocks.

enum class DiskStatus : uint32_t {
  kOk = 0,
  kUncertain = 1,  // CHECK_CONDITION: operation may or may not have happened.
};

// One environment-visible disk event, recorded for consistency checking.
struct DiskTraceEntry {
  uint64_t op_id = 0;
  bool is_write = false;
  uint32_t block = 0;
  int issuer = 0;           // Node id that issued the operation.
  bool performed = false;   // Whether the medium changed / data was read.
  DiskStatus status = DiskStatus::kOk;
  uint64_t content_hash = 0;  // Hash of written data (writes only).
};

// Injects transient faults: each completion independently becomes uncertain
// with probability `uncertain_probability`; when uncertain, the operation was
// actually performed with probability `performed_when_uncertain`.
struct DiskFaultPlan {
  double uncertain_probability = 0.0;
  double performed_when_uncertain = 0.5;
};

class Disk {
 public:
  Disk(uint32_t num_blocks, uint64_t seed);

  void set_fault_plan(const DiskFaultPlan& plan) { fault_plan_ = plan; }

  // Issues an operation on behalf of node `issuer`; returns the op id.
  // Write data is captured at issue time (the DMA snapshot).
  uint64_t IssueWrite(uint32_t block, std::vector<uint8_t> data, int issuer);
  uint64_t IssueRead(uint32_t block, int issuer);

  struct Completion {
    DiskStatus status = DiskStatus::kOk;
    bool performed = false;
    std::vector<uint8_t> data;  // Read data when performed.
  };

  // Completes an in-flight operation, applying the fault plan. Records the
  // environment trace entry.
  Completion Complete(uint64_t op_id);

  // Resolves an operation whose issuer crashed before completion: the
  // environment either saw it or did not. No interrupt is ever delivered.
  void ResolveInFlightAtCrash(uint64_t op_id, bool performed);

  bool HasInFlight(uint64_t op_id) const { return in_flight_.count(op_id) != 0; }

  // Direct content access for verification (not a device operation).
  std::vector<uint8_t> PeekBlock(uint32_t block) const;

  const std::vector<DiskTraceEntry>& trace() const { return trace_; }
  uint32_t num_blocks() const { return num_blocks_; }

 private:
  struct InFlightOp {
    bool is_write = false;
    uint32_t block = 0;
    int issuer = 0;
    std::vector<uint8_t> data;
  };

  // Unwritten blocks hold a deterministic per-block pattern so reads are
  // verifiable without priming the disk.
  std::vector<uint8_t> DefaultBlockContent(uint32_t block) const;
  void ApplyWrite(uint32_t block, const std::vector<uint8_t>& data);

  uint32_t num_blocks_;
  DeterministicRng rng_;
  DiskFaultPlan fault_plan_;
  uint64_t next_op_id_ = 1;
  std::unordered_map<uint64_t, InFlightOp> in_flight_;
  std::unordered_map<uint32_t, std::vector<uint8_t>> blocks_;
  std::vector<DiskTraceEntry> trace_;
};

}  // namespace hbft

#endif  // HBFT_DEVICES_DISK_HPP_
