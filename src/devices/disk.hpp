// Dual-ported block disk — the shared SCSI disk of the paper's prototype.
//
// Two classes, per the VirtualDevice split:
//   * Disk — the DeviceBackend: block store, fault plan, environment trace.
//   * DiskDevice — the per-node VirtualDevice: controller registers, DMA
//     snapshot at issue, completion application at epoch delivery.
//
// The device satisfies the paper's I/O interface axioms:
//   IO1: an issued-and-performed operation raises a completion interrupt;
//   IO2: an uncertain completion (SCSI CHECK_CONDITION analogue) means the
//        operation may or may not have been performed.
// Drivers must therefore retry after uncertain completions, and the device
// tolerates re-issued operations (block writes are idempotent). Protocol rule
// P7 exploits exactly this: at failover the backup's hypervisor synthesises
// uncertain interrupts for all outstanding operations.
//
// The disk is passive with respect to time: the simulation issues operations,
// decides when they complete (transfer-time model), and calls Complete(). A
// crash of the issuing processor mid-operation is resolved explicitly with
// ResolveInFlightAtCrash(performed) — the "may or may not" of IO2 made
// concrete and testable.
#ifndef HBFT_DEVICES_DISK_HPP_
#define HBFT_DEVICES_DISK_HPP_

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "devices/virtual_device.hpp"

namespace hbft {

inline constexpr uint32_t kDiskBlockBytes = 8192;  // The paper's 8K blocks.

// Disk opcodes (IoDescriptor::opcode; equal to the guest CMD register values).
inline constexpr uint32_t kDiskOpRead = 1;
inline constexpr uint32_t kDiskOpWrite = 2;

// Disk controller status bits (guest-visible).
inline constexpr uint32_t kDiskStatusBusy = 1u << 0;
inline constexpr uint32_t kDiskStatusDone = 1u << 1;
inline constexpr uint32_t kDiskStatusCheck = 1u << 2;

// Result register codes.
inline constexpr uint32_t kDiskResultOk = 0;
inline constexpr uint32_t kDiskResultCheckCondition = 1;

enum class DiskStatus : uint32_t {
  kOk = 0,
  kUncertain = 1,  // CHECK_CONDITION: operation may or may not have happened.
};

// One environment-visible disk event, recorded for consistency checking.
struct DiskTraceEntry {
  uint64_t op_id = 0;
  bool is_write = false;
  uint32_t block = 0;
  int issuer = 0;           // Node id that issued the operation.
  bool performed = false;   // Whether the medium changed / data was read.
  DiskStatus status = DiskStatus::kOk;
  uint64_t content_hash = 0;  // Hash of written data (writes only).
};

// Back-compat name for the generic fault plan (devices/io.hpp).
using DiskFaultPlan = FaultPlan;

class Disk : public DeviceBackend {
 public:
  Disk(uint32_t num_blocks, uint64_t seed);

  void set_fault_plan(const FaultPlan& plan) { fault_plan_ = plan; }
  void set_latencies(SimTime read, SimTime write) {
    read_latency_ = read;
    write_latency_ = write;
  }

  // --- DeviceBackend ---------------------------------------------------------
  DeviceId device_id() const override { return DeviceId::kDisk; }
  Issued Issue(const IoDescriptor& io, int issuer) override;
  IoCompletionPayload Complete(uint64_t op_id, const IoDescriptor& io) override;
  bool crash_resolvable() const override { return true; }
  void ResolveAtCrash(uint64_t op_id, bool performed) override {
    ResolveInFlightAtCrash(op_id, performed);
  }
  std::vector<EnvTraceEntry> EnvTrace() const override;

  // --- Typed operations (tests and the generic methods above) ---------------

  // Issues an operation on behalf of node `issuer`; returns the op id.
  // Write data is captured at issue time (the DMA snapshot).
  uint64_t IssueWrite(uint32_t block, std::vector<uint8_t> data, int issuer);
  uint64_t IssueRead(uint32_t block, int issuer);

  struct Completion {
    DiskStatus status = DiskStatus::kOk;
    bool performed = false;
    std::vector<uint8_t> data;  // Read data when performed.
  };

  // Completes an in-flight operation, applying the fault plan. Records the
  // environment trace entry.
  Completion Complete(uint64_t op_id);

  // Resolves an operation whose issuer crashed before completion: the
  // environment either saw it or did not. No interrupt is ever delivered.
  void ResolveInFlightAtCrash(uint64_t op_id, bool performed);

  bool HasInFlight(uint64_t op_id) const { return in_flight_.count(op_id) != 0; }

  // Direct content access for verification (not a device operation).
  std::vector<uint8_t> PeekBlock(uint32_t block) const;

  const std::vector<DiskTraceEntry>& trace() const { return trace_; }
  uint32_t num_blocks() const { return num_blocks_; }

 private:
  struct InFlightOp {
    bool is_write = false;
    uint32_t block = 0;
    int issuer = 0;
    std::vector<uint8_t> data;
  };

  // Unwritten blocks hold a deterministic per-block pattern so reads are
  // verifiable without priming the disk.
  std::vector<uint8_t> DefaultBlockContent(uint32_t block) const;
  void ApplyWrite(uint32_t block, const std::vector<uint8_t>& data);

  uint32_t num_blocks_ = 0;
  DeterministicRng rng_;
  FaultPlan fault_plan_;
  SimTime read_latency_ = SimTime::Zero();
  SimTime write_latency_ = SimTime::Zero();
  uint64_t next_op_id_ = 1;
  std::map<uint64_t, InFlightOp> in_flight_;
  std::map<uint32_t, std::vector<uint8_t>> blocks_;
  std::vector<DiskTraceEntry> trace_;
};

// The per-node disk controller model.
class DiskDevice : public VirtualDevice {
 public:
  // Guest-visible controller registers; see DiskReg in isa/isa.hpp.
  struct State {
    uint32_t reg_block = 0;
    uint32_t reg_count = 1;
    uint32_t reg_dma = 0;
    uint32_t reg_status = 0;
    uint32_t reg_result = 0;
    bool busy = false;
  };

  explicit DiskDevice(DeviceBackend* backend = nullptr) : VirtualDevice(backend) {}

  DeviceId device_id() const override { return DeviceId::kDisk; }
  const char* name() const override { return "disk"; }
  uint32_t mmio_base() const override;
  uint32_t irq_mask() const override;

  StoreResult MmioStore(uint32_t offset, uint32_t value, Machine& machine) override;
  uint32_t MmioLoad(uint32_t offset) const override;
  void ApplyCompletion(const IoCompletionPayload& io, Machine& machine) override;
  IoCompletionPayload MakeUncertainCompletion(const IoDescriptor& io) const override;

  void CaptureState(SnapshotWriter& w) const override;
  bool RestoreState(SnapshotReader& r) override;

  const State& state() const { return state_; }

 private:
  State state_;
};

}  // namespace hbft

#endif  // HBFT_DEVICES_DISK_HPP_
