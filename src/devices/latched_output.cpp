#include "devices/latched_output.hpp"

#include "common/check.hpp"

namespace hbft {

// Uncertain-completion result code, shared by every latched-output device
// (0 ok, 1 uncertain — same convention as the disk's result register).
namespace {
constexpr uint32_t kResultOk = 0;
constexpr uint32_t kResultUncertain = 1;
}  // namespace

DeviceBackend::Issued LatchedOutputBackend::Issue(const IoDescriptor& io, int issuer) {
  HBFT_CHECK_EQ(io.opcode, accepted_opcode());
  HBFT_CHECK(!io.payload.empty());
  // IO2 at the latch: both the uncertainty of the upcoming completion and
  // whether the output actually reached the environment are decided here;
  // the result surfaces at Complete().
  uint32_t result = kResultOk;
  bool performed = true;
  if (rng_.NextBool(fault_plan_.uncertain_probability)) {
    result = kResultUncertain;
    performed = rng_.NextBool(fault_plan_.performed_when_uncertain);
  }
  if (performed) {
    Latch(io, issuer);
  }
  Issued issued;
  issued.op_id = next_op_id_++;
  issued.latency = tx_latency_;
  in_flight_result_[issued.op_id] = result;
  return issued;
}

IoCompletionPayload LatchedOutputBackend::Complete(uint64_t op_id, const IoDescriptor& io) {
  auto it = in_flight_result_.find(op_id);
  HBFT_CHECK(it != in_flight_result_.end()) << "completing unknown latched op " << op_id;
  uint32_t result = it->second;
  in_flight_result_.erase(it);
  IoCompletionPayload payload;
  payload.device_irq = completion_irq();
  payload.guest_op_seq = io.guest_op_seq;
  payload.result_code = result;
  return payload;
}

}  // namespace hbft
