#include "devices/virtual_device.hpp"

#include "common/check.hpp"
#include "devices/console.hpp"
#include "devices/disk.hpp"
#include "isa/isa.hpp"

namespace hbft {

const char* DeviceIdName(DeviceId id) {
  switch (id) {
    case DeviceId::kNone:
      return "none";
    case DeviceId::kDisk:
      return "disk";
    case DeviceId::kConsole:
      return "console";
    case DeviceId::kNic:
      return "nic";
  }
  return "unknown";
}

void CaptureIoDescriptor(SnapshotWriter& w, const IoDescriptor& io) {
  w.U32(static_cast<uint32_t>(io.device_id));
  w.U64(io.guest_op_seq);
  w.U32(io.opcode);
  w.U32(io.arg0);
  w.U32(io.arg1);
  w.Blob(io.payload);
}

bool RestoreIoDescriptor(SnapshotReader& r, IoDescriptor* io) {
  uint32_t device_id = 0;
  if (!r.U32(&device_id) || !r.U64(&io->guest_op_seq) || !r.U32(&io->opcode) ||
      !r.U32(&io->arg0) || !r.U32(&io->arg1) || !r.Blob(&io->payload)) {
    return false;
  }
  io->device_id = static_cast<DeviceId>(device_id);
  return true;
}

void CaptureIoCompletion(SnapshotWriter& w, const IoCompletionPayload& io) {
  w.U32(io.device_irq);
  w.U64(io.guest_op_seq);
  w.U32(io.result_code);
  w.Bool(io.has_dma_data);
  w.U32(io.dma_guest_paddr);
  w.Blob(io.dma_data);
}

bool RestoreIoCompletion(SnapshotReader& r, IoCompletionPayload* io) {
  return r.U32(&io->device_irq) && r.U64(&io->guest_op_seq) && r.U32(&io->result_code) &&
         r.Bool(&io->has_dma_data) && r.U32(&io->dma_guest_paddr) && r.Blob(&io->dma_data);
}

void DeviceRegistry::Add(std::unique_ptr<VirtualDevice> device) {
  HBFT_CHECK(device != nullptr);
  HBFT_CHECK(by_id(device->device_id()) == nullptr)
      << "duplicate device " << device->name() << " in registry";
  for (const auto& existing : devices_) {
    HBFT_CHECK_EQ(existing->irq_mask() & device->irq_mask(), 0u)
        << "IRQ line collision between " << existing->name() << " and " << device->name();
    HBFT_CHECK(existing->mmio_base() != device->mmio_base())
        << "MMIO window collision between " << existing->name() << " and " << device->name();
  }
  devices_.push_back(std::move(device));
}

VirtualDevice* DeviceRegistry::by_id(DeviceId id) const {
  for (const auto& device : devices_) {
    if (device->device_id() == id) {
      return device.get();
    }
  }
  return nullptr;
}

VirtualDevice* DeviceRegistry::by_irq(uint32_t irq_line) const {
  for (const auto& device : devices_) {
    if ((device->irq_mask() & irq_line) != 0) {
      return device.get();
    }
  }
  return nullptr;
}

VirtualDevice* DeviceRegistry::by_mmio(uint32_t paddr) const {
  for (const auto& device : devices_) {
    uint32_t base = device->mmio_base();
    if (paddr >= base && paddr < base + kPageBytes) {
      return device.get();
    }
  }
  return nullptr;
}

void DeviceRegistry::CaptureState(SnapshotWriter& w) const {
  w.U32(static_cast<uint32_t>(devices_.size()));
  for (const auto& device : devices_) {
    w.U32(static_cast<uint32_t>(device->device_id()));
    device->CaptureState(w);
  }
}

bool DeviceRegistry::RestoreState(SnapshotReader& r) {
  uint32_t count = 0;
  if (!r.U32(&count) || count != devices_.size()) {
    return false;
  }
  for (const auto& device : devices_) {
    uint32_t id = 0;
    if (!r.U32(&id) || id != static_cast<uint32_t>(device->device_id())) {
      return false;
    }
    if (!device->RestoreState(r)) {
      return false;
    }
  }
  return true;
}

std::unique_ptr<DeviceRegistry> CreateDefaultRegistry() {
  auto registry = std::make_unique<DeviceRegistry>();
  registry->Add(std::make_unique<DiskDevice>());
  registry->Add(std::make_unique<ConsoleDevice>());
  return registry;
}

}  // namespace hbft
