#include "devices/virtual_device.hpp"

#include "common/check.hpp"
#include "devices/console.hpp"
#include "devices/disk.hpp"
#include "isa/isa.hpp"

namespace hbft {

const char* DeviceIdName(DeviceId id) {
  switch (id) {
    case DeviceId::kNone:
      return "none";
    case DeviceId::kDisk:
      return "disk";
    case DeviceId::kConsole:
      return "console";
    case DeviceId::kNic:
      return "nic";
  }
  return "unknown";
}

void DeviceRegistry::Add(std::unique_ptr<VirtualDevice> device) {
  HBFT_CHECK(device != nullptr);
  HBFT_CHECK(by_id(device->device_id()) == nullptr)
      << "duplicate device " << device->name() << " in registry";
  for (const auto& existing : devices_) {
    HBFT_CHECK_EQ(existing->irq_mask() & device->irq_mask(), 0u)
        << "IRQ line collision between " << existing->name() << " and " << device->name();
    HBFT_CHECK(existing->mmio_base() != device->mmio_base())
        << "MMIO window collision between " << existing->name() << " and " << device->name();
  }
  devices_.push_back(std::move(device));
}

VirtualDevice* DeviceRegistry::by_id(DeviceId id) const {
  for (const auto& device : devices_) {
    if (device->device_id() == id) {
      return device.get();
    }
  }
  return nullptr;
}

VirtualDevice* DeviceRegistry::by_irq(uint32_t irq_line) const {
  for (const auto& device : devices_) {
    if ((device->irq_mask() & irq_line) != 0) {
      return device.get();
    }
  }
  return nullptr;
}

VirtualDevice* DeviceRegistry::by_mmio(uint32_t paddr) const {
  for (const auto& device : devices_) {
    uint32_t base = device->mmio_base();
    if (paddr >= base && paddr < base + kPageBytes) {
      return device.get();
    }
  }
  return nullptr;
}

std::unique_ptr<DeviceRegistry> CreateDefaultRegistry() {
  auto registry = std::make_unique<DeviceRegistry>();
  registry->Add(std::make_unique<DiskDevice>());
  registry->Add(std::make_unique<ConsoleDevice>());
  return registry;
}

}  // namespace hbft
