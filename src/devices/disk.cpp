#include "devices/disk.hpp"

#include "common/check.hpp"
#include "common/hash.hpp"

namespace hbft {

Disk::Disk(uint32_t num_blocks, uint64_t seed) : num_blocks_(num_blocks), rng_(seed) {
  HBFT_CHECK_GT(num_blocks, 0u);
}

std::vector<uint8_t> Disk::DefaultBlockContent(uint32_t block) const {
  std::vector<uint8_t> data(kDiskBlockBytes);
  uint64_t x = Fnv1a(&block, sizeof(block));
  for (uint32_t i = 0; i < kDiskBlockBytes; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    data[i] = static_cast<uint8_t>(x >> 56);
  }
  return data;
}

void Disk::ApplyWrite(uint32_t block, const std::vector<uint8_t>& data) {
  blocks_[block] = data;
}

uint64_t Disk::IssueWrite(uint32_t block, std::vector<uint8_t> data, int issuer) {
  HBFT_CHECK_LT(block, num_blocks_);
  HBFT_CHECK_EQ(data.size(), kDiskBlockBytes);
  uint64_t id = next_op_id_++;
  in_flight_[id] = InFlightOp{true, block, issuer, std::move(data)};
  return id;
}

uint64_t Disk::IssueRead(uint32_t block, int issuer) {
  HBFT_CHECK_LT(block, num_blocks_);
  uint64_t id = next_op_id_++;
  in_flight_[id] = InFlightOp{false, block, issuer, {}};
  return id;
}

Disk::Completion Disk::Complete(uint64_t op_id) {
  auto it = in_flight_.find(op_id);
  HBFT_CHECK(it != in_flight_.end()) << "completing unknown disk op " << op_id;
  InFlightOp op = std::move(it->second);
  in_flight_.erase(it);

  Completion completion;
  bool uncertain = rng_.NextBool(fault_plan_.uncertain_probability);
  if (uncertain) {
    completion.status = DiskStatus::kUncertain;
    completion.performed = rng_.NextBool(fault_plan_.performed_when_uncertain);
  } else {
    completion.status = DiskStatus::kOk;
    completion.performed = true;
  }

  DiskTraceEntry entry;
  entry.op_id = op_id;
  entry.is_write = op.is_write;
  entry.block = op.block;
  entry.issuer = op.issuer;
  entry.performed = completion.performed;
  entry.status = completion.status;

  if (completion.performed) {
    if (op.is_write) {
      entry.content_hash = Fnv1a(op.data.data(), op.data.size());
      ApplyWrite(op.block, op.data);
    } else {
      completion.data = PeekBlock(op.block);
    }
  }
  trace_.push_back(entry);
  return completion;
}

void Disk::ResolveInFlightAtCrash(uint64_t op_id, bool performed) {
  auto it = in_flight_.find(op_id);
  HBFT_CHECK(it != in_flight_.end()) << "resolving unknown disk op " << op_id;
  InFlightOp op = std::move(it->second);
  in_flight_.erase(it);
  if (!performed) {
    return;  // The environment never saw the operation.
  }
  DiskTraceEntry entry;
  entry.op_id = op_id;
  entry.is_write = op.is_write;
  entry.block = op.block;
  entry.issuer = op.issuer;
  entry.performed = true;
  entry.status = DiskStatus::kOk;  // Completed at the device; interrupt lost.
  if (op.is_write) {
    entry.content_hash = Fnv1a(op.data.data(), op.data.size());
    ApplyWrite(op.block, op.data);
  }
  trace_.push_back(entry);
}

std::vector<uint8_t> Disk::PeekBlock(uint32_t block) const {
  auto it = blocks_.find(block);
  if (it != blocks_.end()) {
    return it->second;
  }
  return DefaultBlockContent(block);
}

}  // namespace hbft
