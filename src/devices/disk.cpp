#include "devices/disk.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "isa/isa.hpp"
#include "machine/machine.hpp"

namespace hbft {

Disk::Disk(uint32_t num_blocks, uint64_t seed) : num_blocks_(num_blocks), rng_(seed) {
  HBFT_CHECK_GT(num_blocks, 0u);
}

std::vector<uint8_t> Disk::DefaultBlockContent(uint32_t block) const {
  std::vector<uint8_t> data(kDiskBlockBytes);
  uint64_t x = Fnv1a(&block, sizeof(block));
  for (uint32_t i = 0; i < kDiskBlockBytes; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    data[i] = static_cast<uint8_t>(x >> 56);
  }
  return data;
}

void Disk::ApplyWrite(uint32_t block, const std::vector<uint8_t>& data) {
  blocks_[block] = data;
}

uint64_t Disk::IssueWrite(uint32_t block, std::vector<uint8_t> data, int issuer) {
  HBFT_CHECK_LT(block, num_blocks_);
  HBFT_CHECK_EQ(data.size(), kDiskBlockBytes);
  uint64_t id = next_op_id_++;
  in_flight_[id] = InFlightOp{true, block, issuer, std::move(data)};
  return id;
}

uint64_t Disk::IssueRead(uint32_t block, int issuer) {
  HBFT_CHECK_LT(block, num_blocks_);
  uint64_t id = next_op_id_++;
  in_flight_[id] = InFlightOp{false, block, issuer, {}};
  return id;
}

DeviceBackend::Issued Disk::Issue(const IoDescriptor& io, int issuer) {
  HBFT_CHECK(io.opcode == kDiskOpRead || io.opcode == kDiskOpWrite)
      << "bad disk opcode " << io.opcode;
  Issued issued;
  if (io.opcode == kDiskOpWrite) {
    issued.op_id = IssueWrite(io.arg0, io.payload, issuer);
    issued.latency = write_latency_;
  } else {
    issued.op_id = IssueRead(io.arg0, issuer);
    issued.latency = read_latency_;
  }
  return issued;
}

IoCompletionPayload Disk::Complete(uint64_t op_id, const IoDescriptor& io) {
  Completion completion = Complete(op_id);
  IoCompletionPayload payload;
  payload.device_irq = kIrqDisk;
  payload.guest_op_seq = io.guest_op_seq;
  payload.result_code =
      completion.status == DiskStatus::kUncertain ? kDiskResultCheckCondition : kDiskResultOk;
  if (io.opcode == kDiskOpRead && completion.status == DiskStatus::kOk) {
    payload.has_dma_data = true;
    payload.dma_guest_paddr = io.arg1;
    payload.dma_data = std::move(completion.data);
  }
  return payload;
}

Disk::Completion Disk::Complete(uint64_t op_id) {
  auto it = in_flight_.find(op_id);
  HBFT_CHECK(it != in_flight_.end()) << "completing unknown disk op " << op_id;
  InFlightOp op = std::move(it->second);
  in_flight_.erase(it);

  Completion completion;
  bool uncertain = rng_.NextBool(fault_plan_.uncertain_probability);
  if (uncertain) {
    completion.status = DiskStatus::kUncertain;
    completion.performed = rng_.NextBool(fault_plan_.performed_when_uncertain);
  } else {
    completion.status = DiskStatus::kOk;
    completion.performed = true;
  }

  DiskTraceEntry entry;
  entry.op_id = op_id;
  entry.is_write = op.is_write;
  entry.block = op.block;
  entry.issuer = op.issuer;
  entry.performed = completion.performed;
  entry.status = completion.status;

  if (completion.performed) {
    if (op.is_write) {
      entry.content_hash = Fnv1a(op.data.data(), op.data.size());
      ApplyWrite(op.block, op.data);
    } else {
      completion.data = PeekBlock(op.block);
    }
  }
  trace_.push_back(entry);
  return completion;
}

void Disk::ResolveInFlightAtCrash(uint64_t op_id, bool performed) {
  auto it = in_flight_.find(op_id);
  HBFT_CHECK(it != in_flight_.end()) << "resolving unknown disk op " << op_id;
  InFlightOp op = std::move(it->second);
  in_flight_.erase(it);
  if (!performed) {
    return;  // The environment never saw the operation.
  }
  DiskTraceEntry entry;
  entry.op_id = op_id;
  entry.is_write = op.is_write;
  entry.block = op.block;
  entry.issuer = op.issuer;
  entry.performed = true;
  entry.status = DiskStatus::kOk;  // Completed at the device; interrupt lost.
  if (op.is_write) {
    entry.content_hash = Fnv1a(op.data.data(), op.data.size());
    ApplyWrite(op.block, op.data);
  }
  trace_.push_back(entry);
}

std::vector<uint8_t> Disk::PeekBlock(uint32_t block) const {
  auto it = blocks_.find(block);
  if (it != blocks_.end()) {
    return it->second;
  }
  return DefaultBlockContent(block);
}

std::vector<EnvTraceEntry> Disk::EnvTrace() const {
  std::vector<EnvTraceEntry> out;
  out.reserve(trace_.size());
  for (const DiskTraceEntry& e : trace_) {
    EnvTraceEntry entry;
    entry.device_id = DeviceId::kDisk;
    entry.issuer = e.issuer;
    entry.performed = e.performed;
    Fnv1aHasher hasher;
    hasher.UpdateU32(e.is_write ? 1u : 0u);
    hasher.UpdateU32(e.block);
    if (e.is_write) {
      hasher.UpdateU64(e.content_hash);
    }
    entry.op_hash = hasher.digest();
    std::ostringstream label;
    label << (e.is_write ? "write" : "read") << "(block=" << e.block
          << ", hash=" << e.content_hash << ")";
    entry.label = label.str();
    out.push_back(std::move(entry));
  }
  return out;
}

// --- DiskDevice --------------------------------------------------------------

uint32_t DiskDevice::mmio_base() const { return kDiskMmioBase; }
uint32_t DiskDevice::irq_mask() const { return kIrqDisk; }

VirtualDevice::StoreResult DiskDevice::MmioStore(uint32_t offset, uint32_t value,
                                                 Machine& machine) {
  StoreResult result;
  switch (offset) {
    case kDiskRegBlock:
      state_.reg_block = value;
      break;
    case kDiskRegCount:
      state_.reg_count = value;
      break;
    case kDiskRegDma:
      state_.reg_dma = value;
      break;
    case kDiskRegIntAck:
      machine.AckIrq(kIrqDisk);
      state_.reg_status &= ~(kDiskStatusDone | kDiskStatusCheck);
      break;
    case kDiskRegCmd: {
      HBFT_CHECK(!state_.busy) << "guest issued a disk command while busy";
      HBFT_CHECK(value == kDiskOpRead || value == kDiskOpWrite) << "bad disk command " << value;
      state_.busy = true;
      state_.reg_status = kDiskStatusBusy;
      result.initiate = true;
      result.io.device_id = DeviceId::kDisk;
      result.io.opcode = value;
      result.io.arg0 = state_.reg_block;
      result.io.arg1 = state_.reg_dma;
      if (value == kDiskOpWrite) {
        // DMA-out snapshot at issue: a deterministic instruction-stream
        // point, identical at both replicas.
        result.io.payload.resize(kDiskBlockBytes);
        machine.memory().ReadBlock(state_.reg_dma, result.io.payload.data(),
                                   static_cast<uint32_t>(result.io.payload.size()));
      }
      break;
    }
    default:
      result.fault = true;
      break;
  }
  return result;
}

uint32_t DiskDevice::MmioLoad(uint32_t offset) const {
  switch (offset) {
    case kDiskRegStatus:
      return state_.reg_status;
    case kDiskRegResult:
      return state_.reg_result;
    case kDiskRegBlock:
      return state_.reg_block;
    case kDiskRegCount:
      return state_.reg_count;
    case kDiskRegDma:
      return state_.reg_dma;
    default:
      return 0;
  }
}

void DiskDevice::ApplyCompletion(const IoCompletionPayload& io, Machine& machine) {
  if (io.has_dma_data) {
    // Virtualised DMA: guest memory changes only here, at a deterministic
    // point in the instruction stream.
    HBFT_CHECK_EQ(io.dma_guest_paddr, state_.reg_dma);
    machine.memory().WriteBlock(state_.reg_dma, io.dma_data.data(),
                                static_cast<uint32_t>(io.dma_data.size()));
  }
  state_.busy = false;
  state_.reg_status =
      kDiskStatusDone | (io.result_code == kDiskResultCheckCondition ? kDiskStatusCheck : 0);
  state_.reg_result = io.result_code;
  machine.RaiseIrq(kIrqDisk);
}

IoCompletionPayload DiskDevice::MakeUncertainCompletion(const IoDescriptor& io) const {
  IoCompletionPayload payload;
  payload.device_irq = kIrqDisk;
  payload.guest_op_seq = io.guest_op_seq;
  payload.result_code = kDiskResultCheckCondition;
  return payload;
}

void DiskDevice::CaptureState(SnapshotWriter& w) const {
  w.U32(state_.reg_block);
  w.U32(state_.reg_count);
  w.U32(state_.reg_dma);
  w.U32(state_.reg_status);
  w.U32(state_.reg_result);
  w.Bool(state_.busy);
}

bool DiskDevice::RestoreState(SnapshotReader& r) {
  return r.U32(&state_.reg_block) && r.U32(&state_.reg_count) && r.U32(&state_.reg_dma) &&
         r.U32(&state_.reg_status) && r.U32(&state_.reg_result) && r.Bool(&state_.busy);
}

}  // namespace hbft
