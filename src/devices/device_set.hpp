// DeviceSet: the world's shared device backends plus the factory for
// per-node device registries.
//
// One DeviceSet per world owns the environment side of every configured
// device (the dual-ported disk, the remote console, the NIC). Each node —
// replicas and the bare reference machine alike — gets its own
// DeviceRegistry of per-node register models built by BuildRegistry(), all
// bound to these shared backends. The sim and core layers talk to the set
// through DeviceBackend/DeviceRegistry; the typed accessors below exist for
// scenario result extraction and tests.
#ifndef HBFT_DEVICES_DEVICE_SET_HPP_
#define HBFT_DEVICES_DEVICE_SET_HPP_

#include <memory>
#include <vector>

#include "devices/console.hpp"
#include "devices/disk.hpp"
#include "devices/nic.hpp"
#include "hypervisor/cost_model.hpp"

namespace hbft {

// Which devices a scenario attaches, plus their fault plans. The default set
// is the paper's pair (disk + console); the NIC is opt-in.
struct DeviceSetConfig {
  uint32_t disk_blocks = 128;
  FaultPlan disk_faults;
  FaultPlan console_faults;
  bool with_nic = false;
  FaultPlan nic_faults;
};

class DeviceSet {
 public:
  DeviceSet(const DeviceSetConfig& config, const CostModel& costs, uint64_t seed);

  // Generic access (null when the device is not configured).
  DeviceBackend* backend(DeviceId id);
  const std::vector<DeviceBackend*>& backends() const { return backends_; }

  // A fresh per-node registry bound to this set's backends.
  std::unique_ptr<DeviceRegistry> BuildRegistry() const;

  // The concatenated device-tagged environment trace (per-device order
  // preserved; the checker splits by device anyway).
  std::vector<EnvTraceEntry> EnvTrace() const;

  // Typed accessors for result extraction and tests.
  Disk& disk() { return *disk_; }
  Console& console() { return *console_; }
  Nic* nic() { return nic_.get(); }  // Null when not configured.

 private:
  std::unique_ptr<Disk> disk_;
  std::unique_ptr<Console> console_;
  std::unique_ptr<Nic> nic_;
  std::vector<DeviceBackend*> backends_;
};

}  // namespace hbft

#endif  // HBFT_DEVICES_DEVICE_SET_HPP_
