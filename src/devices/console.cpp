#include "devices/console.hpp"

#include "common/check.hpp"
#include "isa/isa.hpp"
#include "machine/machine.hpp"

namespace hbft {

void Console::Latch(const IoDescriptor& io, int issuer) {
  Transmit(static_cast<char>(io.payload[0]), issuer);
}

uint32_t Console::completion_irq() const { return kIrqConsoleTx; }

std::vector<EnvTraceEntry> Console::EnvTrace() const {
  std::vector<EnvTraceEntry> out;
  out.reserve(trace_.size());
  for (const ConsoleTraceEntry& e : trace_) {
    EnvTraceEntry entry;
    entry.device_id = DeviceId::kConsole;
    entry.issuer = e.issuer;
    entry.performed = true;  // Trace records latched (environment-seen) chars.
    entry.op_hash = static_cast<uint64_t>(static_cast<uint8_t>(e.ch));
    entry.label = std::string(1, e.ch);
    out.push_back(std::move(entry));
  }
  return out;
}

// --- ConsoleDevice -----------------------------------------------------------

uint32_t ConsoleDevice::mmio_base() const { return kConsoleMmioBase; }
uint32_t ConsoleDevice::irq_mask() const { return kIrqConsoleTx | kIrqConsoleRx; }

VirtualDevice::StoreResult ConsoleDevice::MmioStore(uint32_t offset, uint32_t value,
                                                    Machine& machine) {
  StoreResult result;
  switch (offset) {
    case kConsoleRegTx: {
      HBFT_CHECK(!state_.tx_busy) << "guest wrote console TX while busy";
      state_.tx_busy = true;
      result.initiate = true;
      result.io.device_id = DeviceId::kConsole;
      result.io.opcode = kConsoleOpTx;
      result.io.payload.push_back(static_cast<uint8_t>(value & 0xFF));
      break;
    }
    case kConsoleRegIntAck:
      // Bit-selective: bit 0 acknowledges RX (consuming the character),
      // bit 1 acknowledges TX. A TX-only ack must not drop RX data.
      if ((value & 1) != 0) {
        machine.AckIrq(kIrqConsoleRx);
        state_.rx_ready = false;
      }
      if ((value & 2) != 0) {
        machine.AckIrq(kIrqConsoleTx);
      }
      break;
    default:
      result.fault = true;
      break;
  }
  return result;
}

uint32_t ConsoleDevice::MmioLoad(uint32_t offset) const {
  switch (offset) {
    case kConsoleRegRx:
      return state_.rx_char;
    case kConsoleRegStatus:
      return (state_.rx_ready ? 1u : 0u) | (state_.tx_busy ? 2u : 0u);
    case kConsoleRegResult:
      return state_.reg_result;
    default:
      return 0;
  }
}

void ConsoleDevice::ApplyCompletion(const IoCompletionPayload& io, Machine& machine) {
  if (io.device_irq == kIrqConsoleTx) {
    state_.tx_busy = false;
    state_.reg_result = io.result_code;
    machine.RaiseIrq(kIrqConsoleTx);
    return;
  }
  HBFT_CHECK_EQ(io.device_irq, static_cast<uint32_t>(kIrqConsoleRx));
  // RX carries its character in result_code: the one delivery mechanism all
  // devices share.
  state_.rx_char = io.result_code & 0xFF;
  state_.rx_ready = true;
  machine.RaiseIrq(kIrqConsoleRx);
}

IoCompletionPayload ConsoleDevice::MakeUncertainCompletion(const IoDescriptor& io) const {
  IoCompletionPayload payload;
  payload.device_irq = kIrqConsoleTx;
  payload.guest_op_seq = io.guest_op_seq;
  payload.result_code = kConsoleResultUncertain;
  return payload;
}

bool ConsoleDevice::MakeInputCompletion(const std::vector<uint8_t>& payload,
                                        IoCompletionPayload* out) const {
  HBFT_CHECK(!payload.empty());
  out->device_irq = kIrqConsoleRx;
  out->guest_op_seq = 0;
  out->result_code = payload[0];
  return true;
}

void ConsoleDevice::CaptureState(SnapshotWriter& w) const {
  w.U32(state_.rx_char);
  w.Bool(state_.rx_ready);
  w.Bool(state_.tx_busy);
  w.U32(state_.reg_result);
}

bool ConsoleDevice::RestoreState(SnapshotReader& r) {
  return r.U32(&state_.rx_char) && r.Bool(&state_.rx_ready) && r.Bool(&state_.tx_busy) &&
         r.U32(&state_.reg_result);
}

}  // namespace hbft
