#include "devices/console.hpp"

// Console is header-only today; this translation unit anchors the library.
namespace hbft {}
