#include "isa/isa.hpp"

#include <array>
#include <unordered_map>

#include "common/check.hpp"

namespace hbft {

namespace {

struct OpInfo {
  Opcode op;
  InstrFormat format;
  const char* mnemonic;
  bool privileged;
};

constexpr std::array<OpInfo, 50> kOpTable = {{
    {Opcode::kAdd, InstrFormat::kR, "add", false},
    {Opcode::kSub, InstrFormat::kR, "sub", false},
    {Opcode::kAnd, InstrFormat::kR, "and", false},
    {Opcode::kOr, InstrFormat::kR, "or", false},
    {Opcode::kXor, InstrFormat::kR, "xor", false},
    {Opcode::kSll, InstrFormat::kR, "sll", false},
    {Opcode::kSrl, InstrFormat::kR, "srl", false},
    {Opcode::kSra, InstrFormat::kR, "sra", false},
    {Opcode::kSlt, InstrFormat::kR, "slt", false},
    {Opcode::kSltu, InstrFormat::kR, "sltu", false},
    {Opcode::kMul, InstrFormat::kR, "mul", false},
    {Opcode::kDiv, InstrFormat::kR, "div", false},
    {Opcode::kRem, InstrFormat::kR, "rem", false},
    {Opcode::kAddi, InstrFormat::kI, "addi", false},
    {Opcode::kAndi, InstrFormat::kI, "andi", false},
    {Opcode::kOri, InstrFormat::kI, "ori", false},
    {Opcode::kXori, InstrFormat::kI, "xori", false},
    {Opcode::kSlti, InstrFormat::kI, "slti", false},
    {Opcode::kSltiu, InstrFormat::kI, "sltiu", false},
    {Opcode::kSlli, InstrFormat::kI, "slli", false},
    {Opcode::kSrli, InstrFormat::kI, "srli", false},
    {Opcode::kSrai, InstrFormat::kI, "srai", false},
    {Opcode::kLui, InstrFormat::kI, "lui", false},
    {Opcode::kLw, InstrFormat::kI, "lw", false},
    {Opcode::kLh, InstrFormat::kI, "lh", false},
    {Opcode::kLhu, InstrFormat::kI, "lhu", false},
    {Opcode::kLb, InstrFormat::kI, "lb", false},
    {Opcode::kLbu, InstrFormat::kI, "lbu", false},
    {Opcode::kSw, InstrFormat::kI, "sw", false},
    {Opcode::kSh, InstrFormat::kI, "sh", false},
    {Opcode::kSb, InstrFormat::kI, "sb", false},
    {Opcode::kLwp, InstrFormat::kI, "lwp", true},
    {Opcode::kSwp, InstrFormat::kI, "swp", true},
    {Opcode::kBeq, InstrFormat::kB, "beq", false},
    {Opcode::kBne, InstrFormat::kB, "bne", false},
    {Opcode::kBlt, InstrFormat::kB, "blt", false},
    {Opcode::kBge, InstrFormat::kB, "bge", false},
    {Opcode::kBltu, InstrFormat::kB, "bltu", false},
    {Opcode::kBgeu, InstrFormat::kB, "bgeu", false},
    {Opcode::kJal, InstrFormat::kJ, "jal", false},
    {Opcode::kJalr, InstrFormat::kI, "jalr", false},
    {Opcode::kSyscall, InstrFormat::kI, "syscall", false},
    {Opcode::kBreak, InstrFormat::kI, "break", false},
    {Opcode::kRfi, InstrFormat::kR, "rfi", true},
    {Opcode::kMfcr, InstrFormat::kI, "mfcr", true},
    {Opcode::kMtcr, InstrFormat::kI, "mtcr", true},
    {Opcode::kTlbi, InstrFormat::kR, "tlbi", true},
    {Opcode::kTlbf, InstrFormat::kR, "tlbf", true},
    {Opcode::kProbe, InstrFormat::kI, "probe", false},
    {Opcode::kHalt, InstrFormat::kR, "halt", true},
}};

constexpr size_t kRealOps = kOpTable.size();

constexpr bool HasZeroExtendedImm(Opcode op) {
  switch (op) {
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kSltiu:
    case Opcode::kSlli:
    case Opcode::kSrli:
    case Opcode::kSrai:
    case Opcode::kLui:
    case Opcode::kMfcr:
    case Opcode::kMtcr:
    case Opcode::kSyscall:
    case Opcode::kBreak:
    case Opcode::kProbe:
      return true;
    default:
      return false;
  }
}

constexpr bool DoesEndSuperblock(Opcode op) {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
    case Opcode::kJal:
    case Opcode::kJalr:
    case Opcode::kSyscall:
    case Opcode::kBreak:
    case Opcode::kRfi:
    case Opcode::kMfcr:  // CR reads exit to the embedder for environment CRs.
    case Opcode::kMtcr:  // CR writes can flip IE/VM/rctr state.
    case Opcode::kTlbi:
    case Opcode::kTlbf:
    case Opcode::kHalt:
      return true;
    default:
      return false;
  }
}

const std::array<OpTraits, kMaxOpcode + 1>& TraitsTable() {
  static const std::array<OpTraits, kMaxOpcode + 1> table = [] {
    std::array<OpTraits, kMaxOpcode + 1> t{};
    for (const OpInfo& info : kOpTable) {
      OpTraits& e = t[static_cast<uint8_t>(info.op)];
      e.valid = true;
      e.format = info.format;
      e.privileged = info.privileged;
      e.zero_extended_imm = HasZeroExtendedImm(info.op);
      e.ends_superblock = DoesEndSuperblock(info.op);
      e.mnemonic = info.mnemonic;
    }
    return t;
  }();
  return table;
}

int32_t SignExtend(uint32_t value, int bits) {
  uint32_t sign = 1u << (bits - 1);
  return static_cast<int32_t>((value ^ sign) - sign);
}

}  // namespace

const OpTraits& TraitsFor(uint8_t opcode) { return TraitsTable()[opcode & kMaxOpcode]; }

std::optional<InstrFormat> FormatFor(uint8_t opcode) {
  if (opcode > kMaxOpcode) {
    return std::nullopt;
  }
  const OpTraits& traits = TraitsFor(opcode);
  if (!traits.valid) {
    return std::nullopt;
  }
  return traits.format;
}

const char* MnemonicFor(Opcode op) {
  return TraitsFor(static_cast<uint8_t>(op)).mnemonic;
}

std::optional<Opcode> OpcodeForMnemonic(const std::string& mnemonic) {
  static const auto* map = [] {
    // hbft-lint: allow(unordered-container) — lookup-only mnemonic table; never iterated.
    auto* m = new std::unordered_map<std::string, Opcode>();
    for (size_t i = 0; i < kRealOps; ++i) {
      (*m)[kOpTable[i].mnemonic] = kOpTable[i].op;
    }
    return m;
  }();
  auto it = map->find(mnemonic);
  if (it == map->end()) {
    return std::nullopt;
  }
  return it->second;
}

bool IsPrivileged(Opcode op) {
  const OpTraits& traits = TraitsFor(static_cast<uint8_t>(op));
  HBFT_CHECK(traits.valid);
  return traits.privileged;
}

uint32_t Encode(const DecodedInstr& instr) {
  uint32_t word = static_cast<uint32_t>(instr.op) << 26;
  switch (instr.format) {
    case InstrFormat::kR:
      HBFT_CHECK_LT(instr.rd, kNumGprs);
      HBFT_CHECK_LT(instr.rs1, kNumGprs);
      HBFT_CHECK_LT(instr.rs2, kNumGprs);
      word |= static_cast<uint32_t>(instr.rd) << 21;
      word |= static_cast<uint32_t>(instr.rs1) << 16;
      word |= static_cast<uint32_t>(instr.rs2) << 11;
      break;
    case InstrFormat::kI:
      HBFT_CHECK_LT(instr.rd, kNumGprs);
      HBFT_CHECK_LT(instr.rs1, kNumGprs);
      HBFT_CHECK_GE(instr.imm, -32768);
      HBFT_CHECK_LE(instr.imm, 65535);  // Logical immediates may use the full 16 bits.
      word |= static_cast<uint32_t>(instr.rd) << 21;
      word |= static_cast<uint32_t>(instr.rs1) << 16;
      word |= static_cast<uint32_t>(instr.imm) & 0xFFFF;
      break;
    case InstrFormat::kB:
      HBFT_CHECK_LT(instr.rs1, kNumGprs);
      HBFT_CHECK_LT(instr.rs2, kNumGprs);
      HBFT_CHECK_GE(instr.imm, -32768);
      HBFT_CHECK_LE(instr.imm, 32767);
      word |= static_cast<uint32_t>(instr.rs1) << 21;
      word |= static_cast<uint32_t>(instr.rs2) << 16;
      word |= static_cast<uint32_t>(instr.imm) & 0xFFFF;
      break;
    case InstrFormat::kJ:
      HBFT_CHECK_LT(instr.rd, kNumGprs);
      HBFT_CHECK_GE(instr.imm, -(1 << 20));
      HBFT_CHECK_LT(instr.imm, 1 << 20);
      word |= static_cast<uint32_t>(instr.rd) << 21;
      word |= static_cast<uint32_t>(instr.imm) & 0x1FFFFF;
      break;
  }
  return word;
}

std::optional<DecodedInstr> Decode(uint32_t word) {
  uint8_t opcode = static_cast<uint8_t>(word >> 26);
  const OpTraits& traits = TraitsFor(opcode);
  if (!traits.valid) {
    return std::nullopt;
  }
  DecodedInstr instr;
  instr.op = static_cast<Opcode>(opcode);
  instr.format = traits.format;
  switch (traits.format) {
    case InstrFormat::kR:
      instr.rd = (word >> 21) & 0x1F;
      instr.rs1 = (word >> 16) & 0x1F;
      instr.rs2 = (word >> 11) & 0x1F;
      break;
    case InstrFormat::kI: {
      instr.rd = (word >> 21) & 0x1F;
      instr.rs1 = (word >> 16) & 0x1F;
      uint32_t imm = word & 0xFFFF;
      instr.imm = traits.zero_extended_imm ? static_cast<int32_t>(imm) : SignExtend(imm, 16);
      break;
    }
    case InstrFormat::kB:
      instr.rs1 = (word >> 21) & 0x1F;
      instr.rs2 = (word >> 16) & 0x1F;
      instr.imm = SignExtend(word & 0xFFFF, 16);
      break;
    case InstrFormat::kJ:
      instr.rd = (word >> 21) & 0x1F;
      instr.imm = SignExtend(word & 0x1FFFFF, 21);
      break;
  }
  return instr;
}

uint32_t EncodeR(Opcode op, uint8_t rd, uint8_t rs1, uint8_t rs2) {
  DecodedInstr instr;
  instr.op = op;
  instr.format = InstrFormat::kR;
  instr.rd = rd;
  instr.rs1 = rs1;
  instr.rs2 = rs2;
  return Encode(instr);
}

uint32_t EncodeI(Opcode op, uint8_t rd, uint8_t rs1, int32_t imm) {
  DecodedInstr instr;
  instr.op = op;
  instr.format = InstrFormat::kI;
  instr.rd = rd;
  instr.rs1 = rs1;
  instr.imm = imm;
  return Encode(instr);
}

uint32_t EncodeB(Opcode op, uint8_t rs1, uint8_t rs2, int32_t imm) {
  DecodedInstr instr;
  instr.op = op;
  instr.format = InstrFormat::kB;
  instr.rs1 = rs1;
  instr.rs2 = rs2;
  instr.imm = imm;
  return Encode(instr);
}

uint32_t EncodeJ(Opcode op, uint8_t rd, int32_t imm) {
  DecodedInstr instr;
  instr.op = op;
  instr.format = InstrFormat::kJ;
  instr.rd = rd;
  instr.imm = imm;
  return Encode(instr);
}

const char* TrapCauseName(TrapCause cause) {
  switch (cause) {
    case TrapCause::kNone:
      return "none";
    case TrapCause::kIllegalInstruction:
      return "illegal-instruction";
    case TrapCause::kPrivilegeViolation:
      return "privilege-violation";
    case TrapCause::kUnalignedAccess:
      return "unaligned-access";
    case TrapCause::kTlbMissFetch:
      return "tlb-miss-fetch";
    case TrapCause::kTlbMissLoad:
      return "tlb-miss-load";
    case TrapCause::kTlbMissStore:
      return "tlb-miss-store";
    case TrapCause::kPageFault:
      return "page-fault";
    case TrapCause::kProtectionFault:
      return "protection-fault";
    case TrapCause::kSyscall:
      return "syscall";
    case TrapCause::kBreak:
      return "break";
    case TrapCause::kDivideByZero:
      return "divide-by-zero";
    case TrapCause::kInterrupt:
      return "interrupt";
  }
  return "unknown";
}

}  // namespace hbft
