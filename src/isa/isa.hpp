// VPA-32: the "Virtual Precision Architecture", a PA-RISC-inspired 32-bit RISC
// ISA that the whole reproduction runs on.
//
// The ISA deliberately reproduces the PA-RISC features the paper's protocols
// depend on:
//   * a recovery counter that traps after exactly N retired instructions
//     (Instruction-Stream Interrupt Assumption, paper section 2.1);
//   * four privilege levels, with privileged instructions trapping when
//     executed above level 0 (the hypervisor runs guest kernels at level 1);
//   * branch-and-link instructions that deposit the current privilege level in
//     the low two bits of the return address (the quirk in paper section 3.1);
//   * a software-managed TLB whose misses trap (paper section 3.2);
//   * memory-mapped I/O pages guarded by privilege so the hypervisor can
//     intercept device accesses (Environment Instruction Assumption).
//
// Encoding: fixed 32-bit words, little-endian memory.
//   R-type: op[31:26] rd[25:21] rs1[20:16] rs2[15:11] zero[10:0]
//   I-type: op[31:26] rd[25:21] rs1[20:16] imm16[15:0]   (imm sign-extended)
//   B-type: op[31:26] rs1[25:21] rs2[20:16] imm16[15:0]  (imm in instructions)
//   J-type: op[31:26] rd[25:21] imm21[20:0]              (imm in instructions)
#ifndef HBFT_ISA_ISA_HPP_
#define HBFT_ISA_ISA_HPP_

#include <cstdint>
#include <optional>
#include <string>

namespace hbft {

inline constexpr int kNumGprs = 32;
inline constexpr uint32_t kInstructionBytes = 4;
inline constexpr uint32_t kPageBytes = 4096;
inline constexpr uint32_t kPageShift = 12;

// ---------------------------------------------------------------------------
// Opcodes
// ---------------------------------------------------------------------------

enum class Opcode : uint8_t {
  // R-type ALU.
  kAdd = 0x00,
  kSub = 0x01,
  kAnd = 0x02,
  kOr = 0x03,
  kXor = 0x04,
  kSll = 0x05,
  kSrl = 0x06,
  kSra = 0x07,
  kSlt = 0x08,
  kSltu = 0x09,
  kMul = 0x0A,
  kDiv = 0x0B,   // Signed division; divide-by-zero traps.
  kRem = 0x0C,

  // I-type ALU.
  kAddi = 0x10,
  kAndi = 0x11,  // Immediate zero-extended for logical ops.
  kOri = 0x12,
  kXori = 0x13,
  kSlti = 0x14,
  kSltiu = 0x15,
  kSlli = 0x16,
  kSrli = 0x17,
  kSrai = 0x18,
  kLui = 0x19,   // rd = imm16 << 16.

  // I-type memory (virtual addressing when enabled).
  kLw = 0x20,
  kLh = 0x21,
  kLhu = 0x22,
  kLb = 0x23,
  kLbu = 0x24,
  kSw = 0x25,
  kSh = 0x26,
  kSb = 0x27,
  // Physical-addressing load/store (privileged): used by kernels to walk page
  // tables while virtual translation is enabled. PA-RISC offers the same via
  // absolute addressing.
  kLwp = 0x28,
  kSwp = 0x29,

  // Control flow. JAL/JALR deposit the current privilege level into the low
  // two bits of the link address (PA-RISC branch-and-link behaviour that the
  // paper's section 3.1 had to work around in HP-UX).
  kBeq = 0x30,
  kBne = 0x31,
  kBlt = 0x32,
  kBge = 0x33,
  kBltu = 0x34,
  kBgeu = 0x35,
  kJal = 0x36,   // J-type.
  kJalr = 0x37,  // I-type: pc = (rs1 + imm*4) with low bits masked.

  // System.
  kSyscall = 0x38,  // I-type (imm = service number); gates to privilege 0.
  kBreak = 0x39,    // I-type; debugging trap.
  kRfi = 0x3A,      // Privileged: return from interruption.
  kMfcr = 0x3B,     // I-type: rd = CR[imm]; privileged.
  kMtcr = 0x3C,     // I-type: CR[imm] = rs1; privileged.
  kTlbi = 0x3D,     // R-type: insert TLB entry {va=rs1, pte=rs2}; privileged.
  kTlbf = 0x3E,     // R-type: flush entire TLB (non-wired entries); privileged.
  kProbe = 0x3F,    // I-type: rd = 1 if va rs1 readable at current privilege.
  kHalt = 0x0F,     // R-type: privileged; stops the processor.
};

inline constexpr uint8_t kMaxOpcode = 0x3F;

enum class InstrFormat : uint8_t { kR, kI, kB, kJ };

// Dense per-opcode decode properties, indexed by the 6-bit opcode field: one
// table load instead of the old linear scan. Shared by the decoder, the
// interpreter, and the superblock predecoder.
struct OpTraits {
  bool valid = false;
  InstrFormat format = InstrFormat::kR;
  bool privileged = false;
  // I-format immediate extension: logical/compare-unsigned/CR immediates are
  // zero-extended, arithmetic and memory offsets sign-extended.
  bool zero_extended_imm = false;
  // Control transfer, trap, or system-state change: predecoded superblocks
  // end after (never span) these instructions.
  bool ends_superblock = false;
  const char* mnemonic = nullptr;
};

// Traits for an opcode (masked to 6 bits); `valid == false` entries mark
// illegal instructions.
const OpTraits& TraitsFor(uint8_t opcode);

// Returns the encoding format for an opcode, or nullopt for invalid opcodes.
std::optional<InstrFormat> FormatFor(uint8_t opcode);

// Returns the lower-case mnemonic (e.g. "add"), or nullptr for invalid.
const char* MnemonicFor(Opcode op);

// Looks up an opcode by mnemonic; nullopt when unknown.
std::optional<Opcode> OpcodeForMnemonic(const std::string& mnemonic);

// True when executing the opcode above privilege level 0 raises
// kPrivilegeViolation.
bool IsPrivileged(Opcode op);

// ---------------------------------------------------------------------------
// Decoded instruction
// ---------------------------------------------------------------------------

struct DecodedInstr {
  Opcode op = Opcode::kAdd;
  InstrFormat format = InstrFormat::kR;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  int32_t imm = 0;  // Sign-extended (imm21 for J, imm16 for I/B).

  bool operator==(const DecodedInstr&) const = default;
};

// Encodes a decoded instruction to its 32-bit word. Field ranges are CHECKed.
uint32_t Encode(const DecodedInstr& instr);

// Decodes a word; nullopt when the opcode is invalid (illegal instruction).
std::optional<DecodedInstr> Decode(uint32_t word);

// Convenience builders used by tests and the guest image builder.
uint32_t EncodeR(Opcode op, uint8_t rd, uint8_t rs1, uint8_t rs2);
uint32_t EncodeI(Opcode op, uint8_t rd, uint8_t rs1, int32_t imm);
uint32_t EncodeB(Opcode op, uint8_t rs1, uint8_t rs2, int32_t imm);
uint32_t EncodeJ(Opcode op, uint8_t rd, int32_t imm);

// ---------------------------------------------------------------------------
// Control registers
// ---------------------------------------------------------------------------

enum ControlReg : uint8_t {
  kCrStatus = 0,    // Processor status word; see StatusBits.
  kCrTvec = 1,      // Trap vector base address.
  kCrEpc = 2,       // PC of the interrupted/faulting instruction.
  kCrEcause = 3,    // TrapCause of the last trap.
  kCrEvaddr = 4,    // Faulting virtual address (memory traps).
  kCrPtbase = 5,    // Physical base of the linear page table.
  kCrRctr = 6,      // Recovery counter (PA-RISC CR0 analogue).
  kCrItmr = 7,      // Interval timer comparator, in TOD ticks. Environment.
  kCrTod = 8,       // Time-of-day counter, 100ns ticks. Environment.
  kCrEirr = 9,      // External interrupt request bits; write-1-to-clear.
  kCrScratch0 = 10, // Kernel scratch registers for trap entry.
  kCrScratch1 = 11,
  kCrScratch2 = 12,
  kCrScratch3 = 13,
  kCrPrid = 14,     // Processor id. Environment (differs across replicas!).
  kCrInstret = 15,  // Retired instruction counter (virtualised by hypervisor).
  kNumControlRegs = 16,
};

// CR_STATUS bit layout.
struct StatusBits {
  static constexpr uint32_t kPrivMask = 0x3;        // Current privilege, 0..3.
  static constexpr uint32_t kIe = 1u << 2;          // External interrupts on.
  static constexpr uint32_t kPrevPrivShift = 3;     // Saved privilege for RFI.
  static constexpr uint32_t kPrevPrivMask = 0x3u << 3;
  static constexpr uint32_t kPrevIe = 1u << 5;      // Saved IE for RFI.
  static constexpr uint32_t kRctrEn = 1u << 6;      // Recovery counter active.
  static constexpr uint32_t kVmEn = 1u << 7;        // Virtual translation on.

  static uint32_t Priv(uint32_t status) { return status & kPrivMask; }
};

// External interrupt lines (bits of CR_EIRR).
enum IrqLine : uint32_t {
  kIrqTimer = 1u << 0,
  kIrqDisk = 1u << 1,
  kIrqConsoleRx = 1u << 2,
  kIrqConsoleTx = 1u << 3,
  kIrqNicRx = 1u << 4,
  kIrqNicTx = 1u << 5,
};

// ---------------------------------------------------------------------------
// Traps
// ---------------------------------------------------------------------------

enum class TrapCause : uint8_t {
  kNone = 0,
  kIllegalInstruction = 1,
  kPrivilegeViolation = 2,
  kUnalignedAccess = 3,
  kTlbMissFetch = 4,
  kTlbMissLoad = 5,
  kTlbMissStore = 6,
  kPageFault = 7,        // PTE invalid; delivered to the guest kernel.
  kProtectionFault = 8,  // Access rights (incl. MMIO pages above priv 0).
  kSyscall = 9,
  kBreak = 10,
  kDivideByZero = 11,
  kInterrupt = 12,       // External interrupt (EIRR & IE).
};

const char* TrapCauseName(TrapCause cause);

// ---------------------------------------------------------------------------
// Page table entry layout (software-defined, walked by kernel or hypervisor)
// ---------------------------------------------------------------------------

struct Pte {
  static constexpr uint32_t kValid = 1u << 0;
  static constexpr uint32_t kWritable = 1u << 1;
  static constexpr uint32_t kExecutable = 1u << 2;
  static constexpr uint32_t kUser = 1u << 3;  // Accessible at privilege 3.
  static constexpr uint32_t kPfnShift = 12;   // PFN occupies the top 20 bits.

  static uint32_t Make(uint32_t pfn, uint32_t flags) { return (pfn << kPfnShift) | flags; }
  static uint32_t PfnOf(uint32_t pte) { return pte >> kPfnShift; }
};

// ---------------------------------------------------------------------------
// Physical memory map
// ---------------------------------------------------------------------------

inline constexpr uint32_t kMmioBase = 0xF0000000;
inline constexpr uint32_t kDiskMmioBase = 0xF0000000;
inline constexpr uint32_t kConsoleMmioBase = 0xF0001000;
inline constexpr uint32_t kNicMmioBase = 0xF0002000;
inline constexpr uint32_t kMmioLimit = 0xF0003000;

inline bool IsMmioAddress(uint32_t phys) { return phys >= kMmioBase && phys < kMmioLimit; }

// Disk controller register offsets (from kDiskMmioBase).
enum DiskReg : uint32_t {
  kDiskRegCmd = 0x00,     // Write 1=read, 2=write to start a transfer.
  kDiskRegStatus = 0x04,  // Bit0 busy, bit1 done, bit2 check-condition.
  kDiskRegBlock = 0x08,   // Target block number.
  kDiskRegCount = 0x0C,   // Blocks per transfer (this model: always 1).
  kDiskRegDma = 0x10,     // Guest-physical DMA address.
  kDiskRegResult = 0x14,  // Completion code: see DiskResult.
  kDiskRegIntAck = 0x18,  // Write 1 to acknowledge the interrupt.
};

// Console register offsets (from kConsoleMmioBase).
enum ConsoleReg : uint32_t {
  kConsoleRegTx = 0x00,      // Write a character to transmit.
  kConsoleRegRx = 0x04,      // Read the received character.
  kConsoleRegStatus = 0x08,  // Bit0 rx-ready, bit1 tx-busy.
  kConsoleRegIntAck = 0x0C,  // Write 1 to acknowledge console interrupts.
  kConsoleRegResult = 0x10,  // TX completion code: 0 ok, 1 uncertain.
};

// NIC register offsets (from kNicMmioBase).
enum NicReg : uint32_t {
  kNicRegTxCmd = 0x00,      // Write 1 to transmit TX_LEN bytes from TX_DMA.
  kNicRegTxDma = 0x04,      // Guest-physical TX buffer address.
  kNicRegTxLen = 0x08,      // TX packet length in bytes.
  kNicRegStatus = 0x0C,     // Bit0 rx-ready, bit1 tx-busy.
  kNicRegRxDma = 0x10,      // Guest-physical RX buffer address.
  kNicRegRxLen = 0x14,      // Length of the delivered RX packet.
  kNicRegRxCtrl = 0x18,     // Write 1 to enable packet reception.
  kNicRegIntAck = 0x1C,     // Bit0 acks RX (consumes the packet), bit1 acks TX.
  kNicRegTxResult = 0x20,   // TX completion code: 0 ok, 1 uncertain.
};

// The largest packet the NIC delivers into the guest RX buffer.
inline constexpr uint32_t kNicMaxPacketBytes = 256;

}  // namespace hbft

#endif  // HBFT_ISA_ISA_HPP_
