#include "isa/disassembler.hpp"

#include <cstdio>

#include "isa/isa.hpp"

namespace hbft {

namespace {

std::string Reg(uint8_t r) { return "r" + std::to_string(r); }

std::string Hex(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%x", v);
  return buf;
}

}  // namespace

std::string Disassemble(uint32_t word, uint32_t pc) {
  auto decoded = Decode(word);
  if (!decoded.has_value()) {
    return ".word " + Hex(word);
  }
  const DecodedInstr& instr = *decoded;
  const char* mnemonic = MnemonicFor(instr.op);
  std::string out = mnemonic;

  switch (instr.format) {
    case InstrFormat::kR:
      if (instr.op == Opcode::kRfi || instr.op == Opcode::kTlbf || instr.op == Opcode::kHalt) {
        break;
      }
      if (instr.op == Opcode::kTlbi) {
        out += " " + Reg(instr.rs1) + ", " + Reg(instr.rs2);
        break;
      }
      out += " " + Reg(instr.rd) + ", " + Reg(instr.rs1) + ", " + Reg(instr.rs2);
      break;
    case InstrFormat::kI:
      switch (instr.op) {
        case Opcode::kLw:
        case Opcode::kLh:
        case Opcode::kLhu:
        case Opcode::kLb:
        case Opcode::kLbu:
        case Opcode::kLwp:
        case Opcode::kSw:
        case Opcode::kSh:
        case Opcode::kSb:
        case Opcode::kSwp:
          out += " " + Reg(instr.rd) + ", " + std::to_string(instr.imm) + "(" + Reg(instr.rs1) + ")";
          break;
        case Opcode::kMfcr:
          out += " " + Reg(instr.rd) + ", cr" + std::to_string(instr.imm);
          break;
        case Opcode::kMtcr:
          out += " cr" + std::to_string(instr.imm) + ", " + Reg(instr.rs1);
          break;
        case Opcode::kSyscall:
        case Opcode::kBreak:
          out += " " + std::to_string(instr.imm);
          break;
        case Opcode::kJalr:
          out += " " + Reg(instr.rd) + ", " + Reg(instr.rs1) + ", " + std::to_string(instr.imm);
          break;
        case Opcode::kProbe:
          out += " " + Reg(instr.rd) + ", " + Reg(instr.rs1);
          break;
        case Opcode::kLui:
          out += " " + Reg(instr.rd) + ", " + Hex(static_cast<uint32_t>(instr.imm));
          break;
        default:
          out += " " + Reg(instr.rd) + ", " + Reg(instr.rs1) + ", " + std::to_string(instr.imm);
          break;
      }
      break;
    case InstrFormat::kB: {
      uint32_t target = pc + 4 + static_cast<uint32_t>(instr.imm) * 4;
      out += " " + Reg(instr.rs1) + ", " + Reg(instr.rs2) + ", " + Hex(target);
      break;
    }
    case InstrFormat::kJ: {
      uint32_t target = pc + 4 + static_cast<uint32_t>(instr.imm) * 4;
      out += " " + Reg(instr.rd) + ", " + Hex(target);
      break;
    }
  }
  return out;
}

}  // namespace hbft
