// Disassembler for VPA-32 words, used in diagnostics, traces, and tests.
#ifndef HBFT_ISA_DISASSEMBLER_HPP_
#define HBFT_ISA_DISASSEMBLER_HPP_

#include <cstdint>
#include <string>

namespace hbft {

// Renders one instruction word as assembly text. `pc` resolves PC-relative
// branch/jump targets to absolute addresses. Invalid words render as
// ".word 0x...".
std::string Disassemble(uint32_t word, uint32_t pc);

}  // namespace hbft

#endif  // HBFT_ISA_DISASSEMBLER_HPP_
