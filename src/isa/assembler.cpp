#include "isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

#include "common/check.hpp"

namespace hbft {

namespace {

// ---------------------------------------------------------------------------
// Lexing helpers
// ---------------------------------------------------------------------------

std::string StripComment(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  bool in_string = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c == '"' && (i == 0 || line[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (!in_string) {
      if (c == ';' || c == '#') {
        break;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        break;
      }
    }
    out.push_back(c);
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

// Splits an operand list on commas that are outside parentheses/strings.
std::vector<std::string> SplitOperands(const std::string& s) {
  std::vector<std::string> parts;
  std::string current;
  int depth = 0;
  bool in_string = false;
  for (char c : s) {
    if (c == '"') {
      in_string = !in_string;
    }
    if (!in_string) {
      if (c == '(') {
        ++depth;
      } else if (c == ')') {
        --depth;
      } else if (c == ',' && depth == 0) {
        parts.push_back(Trim(current));
        current.clear();
        continue;
      }
    }
    current.push_back(c);
  }
  std::string last = Trim(current);
  if (!last.empty() || !parts.empty()) {
    parts.push_back(last);
  }
  return parts;
}

std::optional<uint8_t> ParseRegister(const std::string& token) {
  static const std::map<std::string, uint8_t> kAliases = {
      {"zero", 0}, {"ra", 31}, {"sp", 30}, {"fp", 29}, {"a0", 4},  {"a1", 5},  {"a2", 6},
      {"a3", 7},   {"t0", 8},  {"t1", 9},  {"t2", 10}, {"t3", 11}, {"t4", 12}, {"t5", 13},
      {"t6", 14},  {"t7", 15}, {"s0", 16}, {"s1", 17}, {"s2", 18}, {"s3", 19}, {"s4", 20},
      {"s5", 21},  {"s6", 22}, {"s7", 23}, {"k0", 26}, {"k1", 27},
  };
  std::string t = ToLower(token);
  auto it = kAliases.find(t);
  if (it != kAliases.end()) {
    return it->second;
  }
  if (t.size() >= 2 && t[0] == 'r') {
    int value = 0;
    for (size_t i = 1; i < t.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(t[i])) == 0) {
        return std::nullopt;
      }
      value = value * 10 + (t[i] - '0');
    }
    if (value >= 0 && value < kNumGprs) {
      return static_cast<uint8_t>(value);
    }
  }
  return std::nullopt;
}

std::optional<uint8_t> ParseControlRegName(const std::string& token) {
  static const std::map<std::string, uint8_t> kNames = {
      {"status", kCrStatus},     {"tvec", kCrTvec},         {"epc", kCrEpc},
      {"ecause", kCrEcause},     {"evaddr", kCrEvaddr},     {"ptbase", kCrPtbase},
      {"rctr", kCrRctr},         {"itmr", kCrItmr},         {"tod", kCrTod},
      {"eirr", kCrEirr},         {"scratch0", kCrScratch0}, {"scratch1", kCrScratch1},
      {"scratch2", kCrScratch2}, {"scratch3", kCrScratch3}, {"prid", kCrPrid},
      {"instret", kCrInstret},
  };
  std::string t = ToLower(token);
  auto it = kNames.find(t);
  if (it != kNames.end()) {
    return it->second;
  }
  // Numeric form "crN" (what the disassembler prints).
  if (t.size() > 2 && t[0] == 'c' && t[1] == 'r') {
    int value = 0;
    for (size_t i = 2; i < t.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(t[i])) == 0) {
        return std::nullopt;
      }
      value = value * 10 + (t[i] - '0');
    }
    if (value >= 0 && value < kNumControlRegs) {
      return static_cast<uint8_t>(value);
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Expression evaluation (numbers, chars, symbols, %hi/%lo, +/- chains)
// ---------------------------------------------------------------------------

class ExprEvaluator {
 public:
  explicit ExprEvaluator(const std::map<std::string, uint32_t>* symbols) : symbols_(symbols) {}

  // Evaluates an expression; when `symbols_` is null (pass 1), any symbol
  // reference yields 0 so sizing still works.
  Result<int64_t> Eval(const std::string& expr) const {
    std::string s = Trim(expr);
    if (s.empty()) {
      return Error{"empty expression"};
    }
    // Simple left-to-right +/- chain over terms.
    int64_t total = 0;
    int sign = 1;
    size_t i = 0;
    bool expect_term = true;
    while (i < s.size()) {
      char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (expect_term) {
        size_t start = i;
        int depth = 0;
        while (i < s.size()) {
          char t = s[i];
          if (t == '(') {
            ++depth;
          } else if (t == ')') {
            --depth;
          } else if ((t == '+' || t == '-') && depth == 0 && i != start) {
            break;
          }
          ++i;
        }
        auto term = EvalTerm(Trim(s.substr(start, i - start)));
        if (!term.ok()) {
          return term.error();
        }
        total += sign * term.value();
        expect_term = false;
      } else {
        if (c == '+') {
          sign = 1;
        } else if (c == '-') {
          sign = -1;
        } else {
          return Error{"unexpected character '" + std::string(1, c) + "' in expression"};
        }
        expect_term = true;
        ++i;
      }
    }
    if (expect_term) {
      return Error{"dangling operator in expression '" + s + "'"};
    }
    return total;
  }

 private:
  Result<int64_t> EvalTerm(const std::string& term) const {
    if (term.empty()) {
      return Error{"empty term"};
    }
    if (term[0] == '-') {
      auto inner = EvalTerm(Trim(term.substr(1)));
      if (!inner.ok()) {
        return inner.error();
      }
      return -inner.value();
    }
    if (term[0] == '\'') {
      if (term.size() == 3 && term[2] == '\'') {
        return static_cast<int64_t>(term[1]);
      }
      if (term.size() == 4 && term[1] == '\\' && term[3] == '\'') {
        switch (term[2]) {
          case 'n':
            return static_cast<int64_t>('\n');
          case 't':
            return static_cast<int64_t>('\t');
          case '0':
            return static_cast<int64_t>('\0');
          case '\\':
            return static_cast<int64_t>('\\');
          default:
            return Error{"unknown character escape"};
        }
      }
      return Error{"malformed character literal " + term};
    }
    if (term.rfind("%hi(", 0) == 0 && term.back() == ')') {
      auto inner = Eval(term.substr(4, term.size() - 5));
      if (!inner.ok()) {
        return inner.error();
      }
      return (inner.value() >> 16) & 0xFFFF;
    }
    if (term.rfind("%lo(", 0) == 0 && term.back() == ')') {
      auto inner = Eval(term.substr(4, term.size() - 5));
      if (!inner.ok()) {
        return inner.error();
      }
      return inner.value() & 0xFFFF;
    }
    if (term.front() == '(' && term.back() == ')') {
      return Eval(term.substr(1, term.size() - 2));
    }
    if (std::isdigit(static_cast<unsigned char>(term[0])) != 0) {
      int64_t value = 0;
      if (term.size() > 2 && term[0] == '0' && (term[1] == 'x' || term[1] == 'X')) {
        for (size_t i = 2; i < term.size(); ++i) {
          char c = static_cast<char>(std::tolower(static_cast<unsigned char>(term[i])));
          int digit;
          if (c >= '0' && c <= '9') {
            digit = c - '0';
          } else if (c >= 'a' && c <= 'f') {
            digit = 10 + (c - 'a');
          } else {
            return Error{"bad hex literal " + term};
          }
          value = value * 16 + digit;
        }
      } else {
        for (char c : term) {
          if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
            return Error{"bad decimal literal " + term};
          }
          value = value * 10 + (c - '0');
        }
      }
      return value;
    }
    // Symbol reference.
    if (symbols_ == nullptr) {
      return 0;  // Pass 1: size-only evaluation.
    }
    auto it = symbols_->find(term);
    if (it == symbols_->end()) {
      return Error{"undefined symbol '" + term + "'"};
    }
    return static_cast<int64_t>(it->second);
  }

  const std::map<std::string, uint32_t>* symbols_;
};

// ---------------------------------------------------------------------------
// Statement model
// ---------------------------------------------------------------------------

struct Statement {
  int line = 0;
  uint32_t address = 0;
  std::string mnemonic;  // Lower-case instruction or directive (with dot).
  std::vector<std::string> operands;
};

bool IsDirective(const std::string& m) { return !m.empty() && m[0] == '.'; }

// Number of bytes a statement occupies (pass 1).
Result<uint32_t> StatementSize(const Statement& st) {
  static const ExprEvaluator sizing_eval(nullptr);
  const std::string& m = st.mnemonic;
  if (m == ".word") {
    return static_cast<uint32_t>(st.operands.size() * 4);
  }
  if (m == ".space") {
    if (st.operands.size() != 1) {
      return Error{".space takes one operand", st.line};
    }
    auto n = sizing_eval.Eval(st.operands[0]);
    if (!n.ok()) {
      return Error{n.error().message, st.line};
    }
    return static_cast<uint32_t>(n.value());
  }
  if (m == ".asciz") {
    if (st.operands.size() != 1 || st.operands[0].size() < 2 || st.operands[0].front() != '"') {
      return Error{".asciz takes one quoted string", st.line};
    }
    // Size = unescaped length + NUL; conservative: escapes only shrink.
    uint32_t n = 1;
    const std::string& s = st.operands[0];
    for (size_t i = 1; i + 1 < s.size(); ++i) {
      if (s[i] == '\\') {
        ++i;
      }
      ++n;
    }
    return n;
  }
  // Pseudo-instructions that expand to two words.
  if (m == "li" || m == "la") {
    return 8;
  }
  // All real instructions and 1-word pseudos.
  return 4;
}

}  // namespace

uint32_t AssembledImage::SymbolOrDie(const std::string& name) const {
  auto it = symbols.find(name);
  HBFT_CHECK(it != symbols.end()) << "missing guest symbol " << name;
  return it->second;
}

Result<AssembledImage> Assemble(const std::string& source) {
  // ---- Parse into statements, collecting labels and .equ/.org/.align. ------
  std::vector<Statement> statements;
  std::map<std::string, uint32_t> symbols;

  struct PendingLabel {
    std::string name;
    int line;
  };

  // Pass 1: compute addresses and the symbol table.
  {
    uint32_t location = 0;
    std::istringstream in(source);
    std::string raw;
    int line_no = 0;
    ExprEvaluator pass1_eval(&symbols);
    while (std::getline(in, raw)) {
      ++line_no;
      std::string line = Trim(StripComment(raw));
      while (!line.empty()) {
        // Labels (possibly several) at line start.
        size_t colon = line.find(':');
        size_t first_space = line.find_first_of(" \t");
        if (colon != std::string::npos && (first_space == std::string::npos || colon < first_space)) {
          std::string label = Trim(line.substr(0, colon));
          if (label.empty()) {
            return Error{"empty label", line_no};
          }
          if (symbols.count(label) != 0) {
            return Error{"duplicate symbol '" + label + "'", line_no};
          }
          symbols[label] = location;
          line = Trim(line.substr(colon + 1));
          continue;
        }
        break;
      }
      if (line.empty()) {
        continue;
      }
      Statement st;
      st.line = line_no;
      size_t space = line.find_first_of(" \t");
      st.mnemonic = ToLower(space == std::string::npos ? line : line.substr(0, space));
      if (space != std::string::npos) {
        st.operands = SplitOperands(Trim(line.substr(space + 1)));
      }

      if (st.mnemonic == ".org") {
        if (st.operands.size() != 1) {
          return Error{".org takes one operand", line_no};
        }
        auto v = pass1_eval.Eval(st.operands[0]);
        if (!v.ok()) {
          return Error{v.error().message, line_no};
        }
        location = static_cast<uint32_t>(v.value());
        continue;
      }
      if (st.mnemonic == ".align") {
        if (st.operands.size() != 1) {
          return Error{".align takes one operand", line_no};
        }
        auto v = pass1_eval.Eval(st.operands[0]);
        if (!v.ok()) {
          return Error{v.error().message, line_no};
        }
        uint32_t align = static_cast<uint32_t>(v.value());
        if (align == 0 || (align & (align - 1)) != 0) {
          return Error{".align requires a power of two", line_no};
        }
        location = (location + align - 1) & ~(align - 1);
        continue;
      }
      if (st.mnemonic == ".equ") {
        if (st.operands.size() != 2) {
          return Error{".equ takes name, value", line_no};
        }
        auto v = pass1_eval.Eval(st.operands[1]);
        if (!v.ok()) {
          return Error{v.error().message, line_no};
        }
        if (symbols.count(st.operands[0]) != 0) {
          return Error{"duplicate symbol '" + st.operands[0] + "'", line_no};
        }
        symbols[st.operands[0]] = static_cast<uint32_t>(v.value());
        continue;
      }

      st.address = location;
      auto size = StatementSize(st);
      if (!size.ok()) {
        return size.error();
      }
      location += size.value();
      statements.push_back(std::move(st));
    }
  }

  // ---- Pass 2: encode. -----------------------------------------------------
  ExprEvaluator eval(&symbols);
  AssembledImage image;
  image.symbols = symbols;

  AssembledSection* section = nullptr;
  uint32_t section_end = 0;
  auto emit_bytes = [&](uint32_t address, const std::vector<uint8_t>& bytes) {
    if (section == nullptr || address != section_end) {
      image.sections.push_back(AssembledSection{address, {}});
      section = &image.sections.back();
      section_end = address;
    }
    section->bytes.insert(section->bytes.end(), bytes.begin(), bytes.end());
    section_end += static_cast<uint32_t>(bytes.size());
  };
  auto emit_word = [&](uint32_t address, uint32_t word) {
    emit_bytes(address, {static_cast<uint8_t>(word), static_cast<uint8_t>(word >> 8),
                         static_cast<uint8_t>(word >> 16), static_cast<uint8_t>(word >> 24)});
  };

  for (const Statement& st : statements) {
    const std::string& m = st.mnemonic;
    auto fail = [&](const std::string& msg) -> Error { return Error{msg, st.line}; };
    auto reg = [&](size_t idx) -> Result<uint8_t> {
      if (idx >= st.operands.size()) {
        return fail("missing register operand");
      }
      auto r = ParseRegister(st.operands[idx]);
      if (!r.has_value()) {
        return fail("bad register '" + st.operands[idx] + "'");
      }
      return *r;
    };
    auto imm_expr = [&](size_t idx) -> Result<int64_t> {
      if (idx >= st.operands.size()) {
        return fail("missing immediate operand");
      }
      auto v = eval.Eval(st.operands[idx]);
      if (!v.ok()) {
        return fail(v.error().message);
      }
      return v.value();
    };

    if (IsDirective(m)) {
      if (m == ".word") {
        uint32_t address = st.address;
        for (const std::string& operand : st.operands) {
          auto v = eval.Eval(operand);
          if (!v.ok()) {
            return fail(v.error().message);
          }
          emit_word(address, static_cast<uint32_t>(v.value()));
          address += 4;
        }
        continue;
      }
      if (m == ".space") {
        auto n = eval.Eval(st.operands[0]);
        if (!n.ok()) {
          return fail(n.error().message);
        }
        emit_bytes(st.address, std::vector<uint8_t>(static_cast<size_t>(n.value()), 0));
        continue;
      }
      if (m == ".asciz") {
        const std::string& quoted = st.operands[0];
        if (quoted.size() < 2 || quoted.front() != '"' || quoted.back() != '"') {
          return fail(".asciz requires a quoted string");
        }
        std::vector<uint8_t> bytes;
        for (size_t i = 1; i + 1 < quoted.size(); ++i) {
          char c = quoted[i];
          if (c == '\\' && i + 2 < quoted.size()) {
            ++i;
            switch (quoted[i]) {
              case 'n':
                c = '\n';
                break;
              case 't':
                c = '\t';
                break;
              case '0':
                c = '\0';
                break;
              case '\\':
                c = '\\';
                break;
              case '"':
                c = '"';
                break;
              default:
                return fail("unknown string escape");
            }
          }
          bytes.push_back(static_cast<uint8_t>(c));
        }
        bytes.push_back(0);
        emit_bytes(st.address, bytes);
        continue;
      }
      return fail("unknown directive " + m);
    }

    // ---- Pseudo-instructions. ----------------------------------------------
    if (m == "nop") {
      emit_word(st.address, EncodeI(Opcode::kAddi, 0, 0, 0));
      continue;
    }
    if (m == "li" || m == "la") {
      auto rd = reg(0);
      if (!rd.ok()) {
        return rd.error();
      }
      auto v = imm_expr(1);
      if (!v.ok()) {
        return v.error();
      }
      uint32_t value = static_cast<uint32_t>(v.value());
      emit_word(st.address, EncodeI(Opcode::kLui, rd.value(), 0, static_cast<int32_t>(value >> 16)));
      emit_word(st.address + 4,
                EncodeI(Opcode::kOri, rd.value(), rd.value(), static_cast<int32_t>(value & 0xFFFF)));
      continue;
    }
    if (m == "mv") {
      auto rd = reg(0);
      auto rs = reg(1);
      if (!rd.ok()) {
        return rd.error();
      }
      if (!rs.ok()) {
        return rs.error();
      }
      emit_word(st.address, EncodeI(Opcode::kAddi, rd.value(), rs.value(), 0));
      continue;
    }
    if (m == "ret") {
      emit_word(st.address, EncodeI(Opcode::kJalr, 0, 31, 0));
      continue;
    }

    auto branch_offset = [&](size_t idx) -> Result<int64_t> {
      auto v = imm_expr(idx);
      if (!v.ok()) {
        return v.error();
      }
      int64_t byte_delta = v.value() - (static_cast<int64_t>(st.address) + 4);
      if (byte_delta % 4 != 0) {
        return fail("branch target not word aligned");
      }
      return byte_delta / 4;
    };

    if (m == "j" || m == "call") {
      auto off = branch_offset(0);
      if (!off.ok()) {
        return off.error();
      }
      uint8_t rd = (m == "call") ? 31 : 0;
      emit_word(st.address, EncodeJ(Opcode::kJal, rd, static_cast<int32_t>(off.value())));
      continue;
    }
    if (m == "beqz" || m == "bnez") {
      auto rs = reg(0);
      if (!rs.ok()) {
        return rs.error();
      }
      auto off = branch_offset(1);
      if (!off.ok()) {
        return off.error();
      }
      Opcode op = (m == "beqz") ? Opcode::kBeq : Opcode::kBne;
      emit_word(st.address, EncodeB(op, rs.value(), 0, static_cast<int32_t>(off.value())));
      continue;
    }

    // ---- Real instructions. ------------------------------------------------
    auto opcode = OpcodeForMnemonic(m);
    if (!opcode.has_value()) {
      return fail("unknown mnemonic '" + m + "'");
    }
    auto format = FormatFor(static_cast<uint8_t>(*opcode));
    HBFT_CHECK(format.has_value());

    DecodedInstr instr;
    instr.op = *opcode;
    instr.format = *format;

    switch (*format) {
      case InstrFormat::kR: {
        if (*opcode == Opcode::kRfi || *opcode == Opcode::kTlbf || *opcode == Opcode::kHalt) {
          break;  // No operands.
        }
        if (*opcode == Opcode::kTlbi) {
          auto rs1 = reg(0);
          auto rs2 = reg(1);
          if (!rs1.ok()) {
            return rs1.error();
          }
          if (!rs2.ok()) {
            return rs2.error();
          }
          instr.rs1 = rs1.value();
          instr.rs2 = rs2.value();
          break;
        }
        auto rd = reg(0);
        auto rs1 = reg(1);
        auto rs2 = reg(2);
        if (!rd.ok()) {
          return rd.error();
        }
        if (!rs1.ok()) {
          return rs1.error();
        }
        if (!rs2.ok()) {
          return rs2.error();
        }
        instr.rd = rd.value();
        instr.rs1 = rs1.value();
        instr.rs2 = rs2.value();
        break;
      }
      case InstrFormat::kI: {
        switch (*opcode) {
          case Opcode::kLw:
          case Opcode::kLh:
          case Opcode::kLhu:
          case Opcode::kLb:
          case Opcode::kLbu:
          case Opcode::kLwp: {
            auto rd = reg(0);
            if (!rd.ok()) {
              return rd.error();
            }
            if (st.operands.size() != 2) {
              return fail("load needs rd, imm(rs1)");
            }
            const std::string& mem = st.operands[1];
            size_t open = mem.find('(');
            if (open == std::string::npos || mem.back() != ')') {
              return fail("bad memory operand '" + mem + "'");
            }
            std::string disp = Trim(mem.substr(0, open));
            auto base = ParseRegister(Trim(mem.substr(open + 1, mem.size() - open - 2)));
            if (!base.has_value()) {
              return fail("bad base register in '" + mem + "'");
            }
            auto v = disp.empty() ? Result<int64_t>(0) : eval.Eval(disp);
            if (!v.ok()) {
              return fail(v.error().message);
            }
            instr.rd = rd.value();
            instr.rs1 = *base;
            instr.imm = static_cast<int32_t>(v.value());
            break;
          }
          case Opcode::kSw:
          case Opcode::kSh:
          case Opcode::kSb:
          case Opcode::kSwp: {
            auto rs = reg(0);
            if (!rs.ok()) {
              return rs.error();
            }
            if (st.operands.size() != 2) {
              return fail("store needs rs, imm(rs1)");
            }
            const std::string& mem = st.operands[1];
            size_t open = mem.find('(');
            if (open == std::string::npos || mem.back() != ')') {
              return fail("bad memory operand '" + mem + "'");
            }
            std::string disp = Trim(mem.substr(0, open));
            auto base = ParseRegister(Trim(mem.substr(open + 1, mem.size() - open - 2)));
            if (!base.has_value()) {
              return fail("bad base register in '" + mem + "'");
            }
            auto v = disp.empty() ? Result<int64_t>(0) : eval.Eval(disp);
            if (!v.ok()) {
              return fail(v.error().message);
            }
            instr.rd = rs.value();  // Store data register travels in rd.
            instr.rs1 = *base;
            instr.imm = static_cast<int32_t>(v.value());
            break;
          }
          case Opcode::kMfcr: {
            auto rd = reg(0);
            if (!rd.ok()) {
              return rd.error();
            }
            if (st.operands.size() != 2) {
              return fail("mfcr needs rd, cr");
            }
            auto cr = ParseControlRegName(st.operands[1]);
            int32_t cr_num;
            if (cr.has_value()) {
              cr_num = *cr;
            } else {
              auto v = eval.Eval(st.operands[1]);
              if (!v.ok()) {
                return fail(v.error().message);
              }
              cr_num = static_cast<int32_t>(v.value());
            }
            instr.rd = rd.value();
            instr.imm = cr_num;
            break;
          }
          case Opcode::kMtcr: {
            if (st.operands.size() != 2) {
              return fail("mtcr needs cr, rs");
            }
            auto cr = ParseControlRegName(st.operands[0]);
            int32_t cr_num;
            if (cr.has_value()) {
              cr_num = *cr;
            } else {
              auto v = eval.Eval(st.operands[0]);
              if (!v.ok()) {
                return fail(v.error().message);
              }
              cr_num = static_cast<int32_t>(v.value());
            }
            auto rs = reg(1);
            if (!rs.ok()) {
              return rs.error();
            }
            instr.rs1 = rs.value();
            instr.imm = cr_num;
            break;
          }
          case Opcode::kSyscall:
          case Opcode::kBreak: {
            int64_t value = 0;
            if (!st.operands.empty()) {
              auto v = imm_expr(0);
              if (!v.ok()) {
                return v.error();
              }
              value = v.value();
            }
            instr.imm = static_cast<int32_t>(value);
            break;
          }
          case Opcode::kJalr: {
            // jalr rd, rs1 [, imm]
            auto rd = reg(0);
            auto rs1 = reg(1);
            if (!rd.ok()) {
              return rd.error();
            }
            if (!rs1.ok()) {
              return rs1.error();
            }
            int64_t value = 0;
            if (st.operands.size() > 2) {
              auto v = imm_expr(2);
              if (!v.ok()) {
                return v.error();
              }
              value = v.value();
            }
            instr.rd = rd.value();
            instr.rs1 = rs1.value();
            instr.imm = static_cast<int32_t>(value);
            break;
          }
          case Opcode::kProbe: {
            auto rd = reg(0);
            auto rs1 = reg(1);
            if (!rd.ok()) {
              return rd.error();
            }
            if (!rs1.ok()) {
              return rs1.error();
            }
            instr.rd = rd.value();
            instr.rs1 = rs1.value();
            break;
          }
          case Opcode::kLui: {
            auto rd = reg(0);
            if (!rd.ok()) {
              return rd.error();
            }
            auto v = imm_expr(1);
            if (!v.ok()) {
              return v.error();
            }
            instr.rd = rd.value();
            instr.imm = static_cast<int32_t>(v.value() & 0xFFFF);
            break;
          }
          default: {
            // Regular I-type ALU: op rd, rs1, imm.
            auto rd = reg(0);
            auto rs1 = reg(1);
            if (!rd.ok()) {
              return rd.error();
            }
            if (!rs1.ok()) {
              return rs1.error();
            }
            auto v = imm_expr(2);
            if (!v.ok()) {
              return v.error();
            }
            instr.rd = rd.value();
            instr.rs1 = rs1.value();
            instr.imm = static_cast<int32_t>(v.value());
            break;
          }
        }
        break;
      }
      case InstrFormat::kB: {
        auto rs1 = reg(0);
        auto rs2 = reg(1);
        if (!rs1.ok()) {
          return rs1.error();
        }
        if (!rs2.ok()) {
          return rs2.error();
        }
        auto v = imm_expr(2);
        if (!v.ok()) {
          return v.error();
        }
        int64_t byte_delta = v.value() - (static_cast<int64_t>(st.address) + 4);
        if (byte_delta % 4 != 0) {
          return fail("branch target not word aligned");
        }
        instr.rs1 = rs1.value();
        instr.rs2 = rs2.value();
        instr.imm = static_cast<int32_t>(byte_delta / 4);
        break;
      }
      case InstrFormat::kJ: {
        // jal [rd,] label
        size_t target_idx = 0;
        if (st.operands.size() == 2) {
          auto rd = reg(0);
          if (!rd.ok()) {
            return rd.error();
          }
          instr.rd = rd.value();
          target_idx = 1;
        } else {
          instr.rd = 31;  // Default link register.
        }
        auto v = imm_expr(target_idx);
        if (!v.ok()) {
          return v.error();
        }
        int64_t byte_delta = v.value() - (static_cast<int64_t>(st.address) + 4);
        if (byte_delta % 4 != 0) {
          return fail("jump target not word aligned");
        }
        instr.imm = static_cast<int32_t>(byte_delta / 4);
        break;
      }
    }
    emit_word(st.address, Encode(instr));
  }

  return image;
}

}  // namespace hbft
