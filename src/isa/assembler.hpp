// Two-pass assembler for VPA-32 assembly.
//
// The guest operating system (MiniOS) and all guest workloads are written in
// this assembly dialect and assembled at program start-up; no external
// toolchain is involved. Supported syntax:
//
//   label:                      ; define a label at the current address
//   .org  ADDR                  ; set the location counter
//   .align N                    ; align to N bytes (power of two)
//   .word V [, V ...]           ; emit 32-bit words (numbers or symbols)
//   .space N                    ; emit N zero bytes
//   .asciz "text"               ; emit NUL-terminated string
//   .equ NAME, VALUE            ; define an absolute symbol
//   add rd, rs1, rs2            ; R-type
//   addi rd, rs1, imm           ; I-type ALU
//   lw rd, imm(rs1)             ; loads/stores use displacement syntax
//   beq rs1, rs2, label         ; branches take label targets (PC-relative)
//   jal rd, label | jal label   ; jal without rd links through ra (r31)
//   mfcr rd, CRNAME|imm         ; control registers by name (status, tod, ...)
//
// Pseudo-instructions: nop, li, la, mv, j, call, ret, beqz, bnez, halt-free
// aliases. Immediates: decimal, 0x hex, 'c' characters, symbols, %hi(x),
// %lo(x). Comments: ';', '#', or '//' to end of line.
//
// Register aliases: r0..r31, plus zero (r0), ra (r31), sp (r30), fp (r29),
// a0..a3 (r4..r7), t0..t7 (r8..r15), s0..s7 (r16..r23), k0/k1 (r26/r27).
#ifndef HBFT_ISA_ASSEMBLER_HPP_
#define HBFT_ISA_ASSEMBLER_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "isa/isa.hpp"

namespace hbft {

// A contiguous chunk of assembled bytes at a fixed physical address.
struct AssembledSection {
  uint32_t base = 0;
  std::vector<uint8_t> bytes;
};

// Output of a successful assembly: sections to load plus the symbol table.
struct AssembledImage {
  std::vector<AssembledSection> sections;
  std::map<std::string, uint32_t> symbols;

  // Looks up a symbol, CHECK-failing when absent (guest images declare their
  // interface symbols; a missing one is a build error, not a runtime case).
  uint32_t SymbolOrDie(const std::string& name) const;
  bool HasSymbol(const std::string& name) const { return symbols.count(name) != 0; }
};

// Assembles `source`. On failure returns an Error with the 1-based source line.
Result<AssembledImage> Assemble(const std::string& source);

}  // namespace hbft

#endif  // HBFT_ISA_ASSEMBLER_HPP_
