// Replica-coordination protocol messages.
//
// Message kinds map one-to-one onto the paper's protocol:
//   kInterrupt  — rule P1's [E, Int]: an interrupt received at the primary
//                 during epoch E, relayed (with any device payload such as the
//                 data of a completed disk read) for delivery at the backup's
//                 end of epoch E.
//   kEnvValue   — the result of an environment instruction the primary's
//                 hypervisor simulated mid-epoch (TOD read, device register
//                 read); the backup's hypervisor consumes these in order.
//   kTimeSync   — rule P2's [Tme_p]: the primary's clock registers at the end
//                 of an epoch, used to resynchronise the backup's virtual
//                 clocks (Tme_b := Tme_p).
//   kEpochEnd   — rule P2's [end, E].
//   kAck        — rule P4's acknowledgment, cumulative up to `ack_seq`.
//
// Serialisation exists so the channel can model wire sizes (an 8K disk block
// fragments into the paper's "9 messages for the data") and so codecs are
// testable; the simulation otherwise passes Message values directly.
#ifndef HBFT_NET_MESSAGE_HPP_
#define HBFT_NET_MESSAGE_HPP_

#include <cstdint>
#include <optional>
#include <vector>

#include "devices/io.hpp"

namespace hbft {

enum class MsgType : uint8_t {
  kInterrupt = 1,
  kEnvValue = 2,
  kTimeSync = 3,
  kEpochEnd = 4,
  kAck = 5,
};

struct Message {
  MsgType type = MsgType::kAck;
  uint64_t seq = 0;       // Channel sequence number (assigned by the sender).
  uint64_t epoch = 0;     // E for kInterrupt/kEpochEnd/kTimeSync.
  uint64_t ack_seq = 0;   // kAck: cumulative acknowledgment.

  // kInterrupt payload.
  uint32_t irq_lines = 0;
  std::optional<IoCompletionPayload> io;

  // kEnvValue payload.
  uint64_t env_seq = 0;
  uint64_t env_value = 0;

  // kTimeSync payload (the paper's Tme_p: all clock registers).
  uint64_t tod_value = 0;

  // Serialised wire size in bytes (drives the bandwidth model).
  size_t WireSize() const;

  std::vector<uint8_t> Serialize() const;
  static std::optional<Message> Deserialize(const std::vector<uint8_t>& bytes);
};

}  // namespace hbft

#endif  // HBFT_NET_MESSAGE_HPP_
