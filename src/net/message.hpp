// Replica-coordination protocol messages.
//
// Message kinds map one-to-one onto the paper's protocol:
//   kInterrupt  — rule P1's [E, Int]: an interrupt received at the primary
//                 during epoch E, relayed (with any device payload such as the
//                 data of a completed disk read) for delivery at the backup's
//                 end of epoch E.
//   kEnvValue   — the result of an environment instruction the primary's
//                 hypervisor simulated mid-epoch (TOD read, device register
//                 read); the backup's hypervisor consumes these in order.
//   kTimeSync   — rule P2's [Tme_p]: the primary's clock registers at the end
//                 of an epoch, used to resynchronise the backup's virtual
//                 clocks (Tme_b := Tme_p).
//   kEpochEnd   — rule P2's [end, E].
//   kAck        — rule P4's acknowledgment, cumulative up to `ack_seq`.
//   kStateChunk — live state transfer (repair): one piece of the snapshot a
//                 transfer source streams to a joining replica — a memory
//                 page, a run of all-zero pages, or the final control
//                 snapshot whose arrival completes the resync. Rides the
//                 ordered protocol channel, so FIFO guarantees the whole
//                 snapshot precedes the first post-cut protocol message.
//
// Serialisation exists so the channel can model wire sizes (an 8K disk block
// fragments into the paper's "9 messages for the data") and so codecs are
// testable; the simulation otherwise passes Message values directly.
#ifndef HBFT_NET_MESSAGE_HPP_
#define HBFT_NET_MESSAGE_HPP_

#include <cstdint>
#include <optional>
#include <vector>

#include "devices/io.hpp"

namespace hbft {

enum class MsgType : uint8_t {
  kInterrupt = 1,
  kEnvValue = 2,
  kTimeSync = 3,
  kEpochEnd = 4,
  kAck = 5,
  kStateChunk = 6,
};

// Message::state_kind values for kStateChunk.
enum class StateChunkKind : uint8_t {
  kPage = 0,     // One memory page: `state_page`, payload in `state_data`.
  kZeroRun = 1,  // `state_page_count` all-zero pages starting at `state_page`.
  kControl = 2,  // The control snapshot (CPU/TLB/hypervisor/devices/protocol).
};

struct Message {
  MsgType type = MsgType::kAck;
  uint64_t seq = 0;       // Channel sequence number (assigned by the sender).
  uint64_t epoch = 0;     // E for kInterrupt/kEpochEnd/kTimeSync.
  uint64_t ack_seq = 0;   // kAck: cumulative acknowledgment.

  // kInterrupt payload.
  uint32_t irq_lines = 0;
  std::optional<IoCompletionPayload> io;

  // kEnvValue payload.
  uint64_t env_seq = 0;
  uint64_t env_value = 0;

  // kTimeSync payload (the paper's Tme_p: all clock registers).
  uint64_t tod_value = 0;

  // kStateChunk payload.
  StateChunkKind state_kind = StateChunkKind::kPage;
  uint32_t state_page = 0;        // First page index (kPage / kZeroRun).
  uint32_t state_page_count = 0;  // Run length (kZeroRun).
  std::vector<uint8_t> state_data;  // Page bytes / serialized control snapshot.

  // Serialised wire size in bytes (drives the bandwidth model).
  size_t WireSize() const;

  std::vector<uint8_t> Serialize() const;
  static std::optional<Message> Deserialize(const std::vector<uint8_t>& bytes);
};

}  // namespace hbft

#endif  // HBFT_NET_MESSAGE_HPP_
