// Communication channel with a calibrated link model and a faultable wire.
//
// The paper's prototype joins primary and backup with a 10 Mbps Ethernet and
// studies a 155 Mbps ATM alternative (Figure 4). The link model charges each
// message: per-frame fixed overhead (controller set-up + interrupt handling)
// plus serialisation time at the link bandwidth, with large messages
// fragmented at the MTU — an 8 KiB disk block becomes the paper's "9 messages
// for the data".
//
// Two delivery modes share one wire model:
//   * kOrdered  — the protocol stream (primary -> backup). Reliable FIFO is a
//     *derived* property: the sender keeps a go-back-N window of unacked
//     messages (driven by the protocol's own cumulative P4 acks) and the
//     receiver delivers strictly in sequence, discarding duplicates and
//     post-gap frames. Over an ideal link this degenerates to the original
//     reliable-FIFO queue, byte for byte.
//   * kDatagram — the acknowledgment stream (backup -> primary). Acks are
//     cumulative and idempotent, so the receiver takes whatever arrives in
//     arrival order; lost acks are repaired by later acks or by the sender's
//     retransmission of the data they covered.
//
// LinkFaults (net/link_faults.hpp) injects per-message drop / duplicate /
// reorder faults and bounds the sender queue; with the default all-zero
// configuration every fault path is dead and the channel behaves exactly as
// the ideal reliable-FIFO link.
//
// Channels are FIFO and reliable until broken. Break(t) models the sender's
// processor crash: frames whose serialisation finished by `t` still arrive
// (the paper assumes the backup detects the failure only after receiving the
// last message sent); a frame still mid-serialisation at the crash is
// truncated on the wire and vanishes, and nothing sent after `t` exists.
#ifndef HBFT_NET_CHANNEL_HPP_
#define HBFT_NET_CHANNEL_HPP_

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/link_faults.hpp"
#include "net/message.hpp"
#include "net/retransmit.hpp"

namespace hbft {

struct LinkModel {
  double bandwidth_bps = 10e6;
  SimTime per_frame_overhead = SimTime::Micros(90);
  SimTime propagation = SimTime::Micros(5);
  uint32_t mtu_bytes = 1024;

  // The paper's 10 Mbps Ethernet. The 90 us per-frame overhead is calibrated
  // so that the small-message ack round trip costs ~282 us, the gap between
  // the paper's measured epoch-boundary cost with ack wait (443.59 us) and
  // the revised protocol's boundary cost without it (~161 us).
  static LinkModel Ethernet10();

  // The 155 Mbps ATM link of Figure 4 (same controller set-up time, per the
  // paper's stated assumption).
  static LinkModel Atm155();

  // Sender-side occupancy to push `bytes` onto the wire.
  SimTime TransferTime(size_t bytes) const;

  // Number of frames a message of `bytes` fragments into.
  uint32_t FrameCount(size_t bytes) const;
};

enum class ChannelMode {
  kOrdered,   // Go-back-N reliable stream (the protocol direction).
  kDatagram,  // Best effort, delivered in arrival order (the ack direction).
};

class Channel {
 public:
  explicit Channel(const LinkModel& link) : Channel(link, ChannelMode::kOrdered) {}
  Channel(const LinkModel& link, ChannelMode mode, const LinkFaults& faults = LinkFaults{},
          uint64_t fault_seed = 0)
      : link_(link), mode_(mode), faults_(faults), fault_rng_(fault_seed) {}

  // Wire + delivery counters. messages_enqueued is the sequence-number
  // source (unique messages accepted from the sender); messages_sent counts
  // wire transmissions and therefore runs ahead of it once the link loses
  // frames and the sender retransmits.
  struct Counters {
    uint64_t messages_enqueued = 0;  // Unique messages accepted (seq source).
    uint64_t wire_sends = 0;         // Transmissions incl. retransmits + link dups.
    uint64_t retransmits = 0;        // Go-back-N re-sends.
    uint64_t link_drops = 0;         // Frames the wire lost.
    uint64_t link_duplicates = 0;    // Copies the wire injected.
    uint64_t link_reorders = 0;      // Frames the wire delayed out of order.
    uint64_t queue_drops = 0;        // Sender-queue backpressure tail drops.
    uint64_t queue_high_water = 0;   // Max frames in flight at once.
    uint64_t rx_duplicates = 0;      // Receiver-discarded stale frames.
    uint64_t rx_gaps = 0;            // Receiver-discarded post-gap frames.
    uint64_t messages_delivered = 0; // In-order deliveries to the receiver.
    uint64_t bytes_on_wire = 0;      // Incl. retransmits and duplicates.
    uint64_t bytes_delivered = 0;    // Goodput bytes.
    uint64_t wire_decode_errors = 0; // Socket transport: undecodable frames.
  };

  // Enqueues a message at time `now`; returns its arrival time at the
  // receiver (of the surviving copy that the wire kept, or the time it
  // *would* have arrived when the wire dropped it — the sender cannot tell).
  // Returns nullopt only when the channel is broken at `now`.
  std::optional<SimTime> Send(Message msg, SimTime now);

  // Pops the next deliverable message whose arrival time is <= now. In
  // ordered mode stale and post-gap frames are consumed and discarded on the
  // way (flagging a re-ack), so nullopt can be returned even when frames had
  // arrived.
  std::optional<Message> Receive(SimTime now);

  // Arrival time of the oldest undelivered frame, if any (it may turn out to
  // be discardable; Receive resolves that).
  std::optional<SimTime> NextArrival() const;

  // Breaks the channel at time `t`: future sends vanish, frames fully
  // serialised by `t` still arrive, frames mid-serialisation are truncated
  // and pruned so the dead sender leaves no phantom occupancy behind.
  void Break(SimTime t);
  bool broken() const { return broken_; }

  // Time after which the receiver can have seen every message ever sent.
  SimTime DrainTime() const;

  // Arrival time of the newest message still in flight (undelivered), if any.
  // Unlike DrainTime(), an already-delivered history does not push this into
  // the past-but-later-than-now: an empty queue means nothing is pending.
  std::optional<SimTime> LastPendingArrival() const;

  // --- Go-back-N (ordered mode over a faulty link) --------------------------

  // Cumulative acknowledgment from the peer, processed at `now`: the first
  // `acked_count` messages (seqs [0, acked_count)) are confirmed; the
  // retransmit window drops them and the survivors' age restarts.
  void OnCumulativeAck(uint64_t acked_count, SimTime now);

  // Re-sends the whole unacked window if its head has waited a full
  // retransmission timeout. Returns the number of frames re-sent and, when
  // any survived the wire, the arrival time of the last (for receiver-poll
  // scheduling).
  struct RetransmitResult {
    uint64_t frames = 0;
    std::optional<SimTime> last_arrival;
  };
  RetransmitResult MaybeRetransmit(SimTime now);

  // Whether the sender should keep a retransmission timer armed. Wire-bound
  // channels always track the window: TCP cannot lose bytes, but the peer
  // connection can die with frames unacked.
  bool NeedsRetransmitTimer() const {
    return mode_ == ChannelMode::kOrdered && (faults_.Enabled() || wire_bound()) &&
           !retransmit_.empty();
  }
  SimTime retransmit_timeout() const { return faults_.retransmit_timeout; }
  std::optional<SimTime> NextRetransmitDeadline() const {
    return retransmit_.NextDeadline(faults_.retransmit_timeout);
  }

  // The peer is dead: nothing will ever ack the window, stop re-sending.
  void AbandonRetransmits() { retransmit_.Clear(); }

  // --- Socket (wire) transport ----------------------------------------------
  // Multi-process serve mode: the channel endpoints live in different OS
  // processes joined by a real TCP connection, and the go-back-N framing,
  // cumulative acks, and retransmit buffer run unchanged on top of it.
  //
  // Sender side: BindWireSink reroutes every frame the link model would put
  // on the simulated wire out through `sink` as the message's canonical
  // serialized bytes (the caller length-prefixes them onto the stream). The
  // local delivery queue is bypassed; occupancy is still charged so pacing
  // matches the modelled link. A sink returning false (peer connection down)
  // counts as a link drop — recovery rides the ordinary retransmission path
  // until the failure detector declares the peer dead.
  //
  // Receiver side: InjectWireFrame enters a frame read off the socket into
  // the delivery queue at `now`, so Receive() runs the identical ordered
  // dedup/gap/re-ack machinery against it. Undecodable bytes are counted and
  // refused. Truncation semantics carry over from Break(): a frame whose
  // bytes never completely arrived (partial TCP write at peer death) is held
  // by the stream dissector and never injected — no phantom delivery.
  using WireSink = std::function<bool(const std::vector<uint8_t>&)>;
  void BindWireSink(WireSink sink) { wire_sink_ = std::move(sink); }
  bool wire_bound() const { return static_cast<bool>(wire_sink_); }
  bool InjectWireFrame(const std::vector<uint8_t>& bytes, SimTime now);

  // True once per stale/post-gap discard batch: the receiver should repeat
  // its cumulative acknowledgment so a lost final ack cannot wedge the
  // sender's window.
  bool TakeReackRequested() {
    bool v = reack_requested_;
    reack_requested_ = false;
    return v;
  }

  const LinkModel& link() const { return link_; }
  ChannelMode mode() const { return mode_; }
  const LinkFaults& faults() const { return faults_; }
  bool faults_enabled() const { return faults_.Enabled(); }
  const Counters& counters() const { return counters_; }

  // Unique messages accepted from the sender — the protocol's ack universe
  // (P2/P4 compare cumulative acks against this, never against wire sends).
  uint64_t messages_enqueued() const { return counters_.messages_enqueued; }
  // Wire transmissions, including go-back-N re-sends and link duplicates.
  uint64_t messages_sent() const { return counters_.wire_sends; }
  uint64_t bytes_sent() const { return counters_.bytes_on_wire; }

 private:
  struct InFlight {
    SimTime arrival;
    SimTime send_end;  // Serialisation finished (arrival minus propagation/jitter).
    Message msg;
  };

  // Pushes one frame onto the wire (occupancy, faults, sorted enqueue).
  // Returns the arrival time the sender observes (nullopt only for
  // sender-queue tail drops, which consume no wire occupancy).
  std::optional<SimTime> PutOnWire(const Message& msg, SimTime now, bool retransmit);

  LinkModel link_;
  ChannelMode mode_;
  LinkFaults faults_;
  WireSink wire_sink_;
  DeterministicRng fault_rng_;
  std::deque<InFlight> queue_;
  RetransmitBuffer retransmit_;
  SimTime busy_until_ = SimTime::Zero();
  SimTime last_arrival_ = SimTime::Zero();
  SimTime delivered_high_water_ = SimTime::Zero();
  uint64_t next_seq_ = 0;
  uint64_t rx_next_seq_ = 0;  // Ordered mode: next in-sequence delivery.
  bool reack_requested_ = false;
  bool broken_ = false;
  SimTime break_time_ = SimTime::Zero();
  Counters counters_;
};

}  // namespace hbft

#endif  // HBFT_NET_CHANNEL_HPP_
