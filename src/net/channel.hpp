// FIFO communication channel with a calibrated link model.
//
// The paper's prototype joins primary and backup with a 10 Mbps Ethernet and
// studies a 155 Mbps ATM alternative (Figure 4). The link model charges each
// message: per-frame fixed overhead (controller set-up + interrupt handling)
// plus serialisation time at the link bandwidth, with large messages
// fragmented at the MTU — an 8 KiB disk block becomes the paper's "9 messages
// for the data".
//
// Channels are FIFO and reliable until broken. Break(t) models the sender's
// processor crash: messages already sent still arrive (the paper assumes the
// backup detects the failure only after receiving the last message sent);
// nothing sent after `t` exists.
#ifndef HBFT_NET_CHANNEL_HPP_
#define HBFT_NET_CHANNEL_HPP_

#include <deque>
#include <optional>

#include "common/time.hpp"
#include "net/message.hpp"

namespace hbft {

struct LinkModel {
  double bandwidth_bps = 10e6;
  SimTime per_frame_overhead = SimTime::Micros(90);
  SimTime propagation = SimTime::Micros(5);
  uint32_t mtu_bytes = 1024;

  // The paper's 10 Mbps Ethernet. The 90 us per-frame overhead is calibrated
  // so that the small-message ack round trip costs ~282 us, the gap between
  // the paper's measured epoch-boundary cost with ack wait (443.59 us) and
  // the revised protocol's boundary cost without it (~161 us).
  static LinkModel Ethernet10();

  // The 155 Mbps ATM link of Figure 4 (same controller set-up time, per the
  // paper's stated assumption).
  static LinkModel Atm155();

  // Sender-side occupancy to push `bytes` onto the wire.
  SimTime TransferTime(size_t bytes) const;

  // Number of frames a message of `bytes` fragments into.
  uint32_t FrameCount(size_t bytes) const;
};

class Channel {
 public:
  explicit Channel(const LinkModel& link) : link_(link) {}

  // Enqueues a message at time `now`; returns its arrival time at the
  // receiver. Returns nullopt when the channel is broken at `now`.
  std::optional<SimTime> Send(Message msg, SimTime now);

  // Pops the next message whose arrival time is <= now.
  std::optional<Message> Receive(SimTime now);

  // Arrival time of the oldest undelivered message, if any.
  std::optional<SimTime> NextArrival() const;

  // Breaks the channel at time `t`: future sends vanish, in-flight messages
  // still arrive.
  void Break(SimTime t) {
    broken_ = true;
    break_time_ = t;
  }
  bool broken() const { return broken_; }

  // Time after which the receiver can have seen every message ever sent.
  SimTime DrainTime() const;

  // Arrival time of the newest message still in flight (undelivered), if any.
  // Unlike DrainTime(), an already-delivered history does not push this into
  // the past-but-later-than-now: an empty queue means nothing is pending.
  std::optional<SimTime> LastPendingArrival() const;

  const LinkModel& link() const { return link_; }
  uint64_t messages_sent() const { return next_seq_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct InFlight {
    SimTime arrival;
    Message msg;
  };

  LinkModel link_;
  std::deque<InFlight> queue_;
  SimTime busy_until_ = SimTime::Zero();
  SimTime last_arrival_ = SimTime::Zero();
  uint64_t next_seq_ = 0;
  uint64_t bytes_sent_ = 0;
  bool broken_ = false;
  SimTime break_time_ = SimTime::Zero();
};

}  // namespace hbft

#endif  // HBFT_NET_CHANNEL_HPP_
