#include "net/channel.hpp"

#include <cmath>

#include "common/check.hpp"

namespace hbft {

LinkModel LinkModel::Ethernet10() {
  LinkModel link;
  link.bandwidth_bps = 10e6;
  link.per_frame_overhead = SimTime::Micros(90);
  link.propagation = SimTime::Micros(5);
  link.mtu_bytes = 1024;
  return link;
}

LinkModel LinkModel::Atm155() {
  LinkModel link;
  link.bandwidth_bps = 155e6;
  link.per_frame_overhead = SimTime::Micros(90);  // Same controller set-up time.
  link.propagation = SimTime::Micros(5);
  link.mtu_bytes = 1024;
  return link;
}

uint32_t LinkModel::FrameCount(size_t bytes) const {
  if (bytes == 0) {
    return 1;
  }
  return static_cast<uint32_t>((bytes + mtu_bytes - 1) / mtu_bytes);
}

SimTime LinkModel::TransferTime(size_t bytes) const {
  uint32_t frames = FrameCount(bytes);
  double wire_seconds = static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  return per_frame_overhead * frames + SimTime::Picos(static_cast<int64_t>(wire_seconds * 1e12));
}

std::optional<SimTime> Channel::Send(Message msg, SimTime now) {
  if (broken_ && now >= break_time_) {
    return std::nullopt;
  }
  msg.seq = next_seq_++;
  size_t wire_bytes = msg.WireSize();
  bytes_sent_ += wire_bytes;
  SimTime start = busy_until_ > now ? busy_until_ : now;
  busy_until_ = start + link_.TransferTime(wire_bytes);
  SimTime arrival = busy_until_ + link_.propagation;
  // FIFO: arrivals are monotone because busy_until_ is.
  HBFT_CHECK(arrival >= last_arrival_);
  last_arrival_ = arrival;
  queue_.push_back(InFlight{arrival, std::move(msg)});
  return arrival;
}

std::optional<Message> Channel::Receive(SimTime now) {
  if (queue_.empty() || queue_.front().arrival > now) {
    return std::nullopt;
  }
  Message msg = std::move(queue_.front().msg);
  queue_.pop_front();
  return msg;
}

std::optional<SimTime> Channel::NextArrival() const {
  if (queue_.empty()) {
    return std::nullopt;
  }
  return queue_.front().arrival;
}

SimTime Channel::DrainTime() const { return last_arrival_; }

std::optional<SimTime> Channel::LastPendingArrival() const {
  if (queue_.empty()) {
    return std::nullopt;
  }
  return queue_.back().arrival;
}

}  // namespace hbft
