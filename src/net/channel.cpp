#include "net/channel.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace hbft {

LinkModel LinkModel::Ethernet10() {
  LinkModel link;
  link.bandwidth_bps = 10e6;
  link.per_frame_overhead = SimTime::Micros(90);
  link.propagation = SimTime::Micros(5);
  link.mtu_bytes = 1024;
  return link;
}

LinkModel LinkModel::Atm155() {
  LinkModel link;
  link.bandwidth_bps = 155e6;
  link.per_frame_overhead = SimTime::Micros(90);  // Same controller set-up time.
  link.propagation = SimTime::Micros(5);
  link.mtu_bytes = 1024;
  return link;
}

uint32_t LinkModel::FrameCount(size_t bytes) const {
  if (bytes == 0) {
    return 1;
  }
  return static_cast<uint32_t>((bytes + mtu_bytes - 1) / mtu_bytes);
}

SimTime LinkModel::TransferTime(size_t bytes) const {
  uint32_t frames = FrameCount(bytes);
  double wire_seconds = static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  return per_frame_overhead * frames + SimTime::Picos(static_cast<int64_t>(wire_seconds * 1e12));
}

std::optional<SimTime> Channel::PutOnWire(const Message& msg, SimTime now, bool retransmit) {
  size_t wire_bytes = msg.WireSize();

  if (wire_sink_) {
    // Socket transport: the frame leaves the process as canonical bytes.
    // Sender-side occupancy is still charged so protocol pacing matches the
    // modelled link; delivery happens when the peer process reads the frame
    // off its socket and injects it via InjectWireFrame.
    ++counters_.wire_sends;
    if (retransmit) {
      ++counters_.retransmits;
    }
    counters_.bytes_on_wire += wire_bytes;
    SimTime start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + link_.TransferTime(wire_bytes);
    if (!wire_sink_(msg.Serialize())) {
      ++counters_.link_drops;  // Peer connection down: the wire ate it.
    }
    return busy_until_ + link_.propagation;
  }

  const bool faulty = faults_.Enabled() && faults_.ActiveAt(now);

  // The sender's transmit ring holds frames still on the wire at `now`
  // (arrival in the future). Frames that already landed but have not been
  // polled belong to the receiver and must not occupy the ring — counting
  // them would let one stale duplicate wedge a small queue forever.
  auto in_flight_at = [this](SimTime t) {
    auto first = std::upper_bound(queue_.begin(), queue_.end(), t,
                                  [](SimTime v, const InFlight& f) { return v < f.arrival; });
    return static_cast<size_t>(queue_.end() - first);
  };

  // Bounded sender queue: a full transmit ring tail-drops before the frame
  // ever reaches the wire (no occupancy charged).
  if (faulty && faults_.sender_queue_limit > 0 &&
      in_flight_at(now) >= faults_.sender_queue_limit) {
    ++counters_.queue_drops;
    return std::nullopt;
  }

  ++counters_.wire_sends;
  if (retransmit) {
    ++counters_.retransmits;
  }
  counters_.bytes_on_wire += wire_bytes;
  SimTime start = busy_until_ > now ? busy_until_ : now;
  busy_until_ = start + link_.TransferTime(wire_bytes);
  SimTime send_end = busy_until_;
  SimTime arrival = send_end + link_.propagation;

  auto insert_sorted = [this](InFlight frame) {
    auto it = std::upper_bound(
        queue_.begin(), queue_.end(), frame.arrival,
        [](SimTime t, const InFlight& f) { return t < f.arrival; });
    queue_.insert(it, std::move(frame));
  };

  if (!faulty) {
    if (!faults_.Enabled()) {
      // Truly ideal wire: arrivals are monotone because busy_until_ is.
      HBFT_CHECK(arrival >= last_arrival_);
      queue_.push_back(InFlight{arrival, send_end, msg});
    } else {
      // Clean send on a faultable wire (e.g. after a burst window): an
      // earlier reordered frame may still be in flight behind this one.
      insert_sorted(InFlight{arrival, send_end, msg});
    }
    last_arrival_ = std::max(last_arrival_, arrival);
    counters_.queue_high_water =
        std::max<uint64_t>(counters_.queue_high_water, in_flight_at(now));
    return arrival;
  }

  // Loss applies per frame: a k-frame message survives with (1-p)^k.
  uint32_t frames = link_.FrameCount(wire_bytes);
  double survive = std::pow(1.0 - faults_.drop_probability, static_cast<double>(frames));
  if (fault_rng_.NextBool(1.0 - survive)) {
    ++counters_.link_drops;
    return arrival;  // The sender saw a normal send; the wire ate it.
  }

  if (fault_rng_.NextBool(faults_.reorder_probability)) {
    // Delay by one full-MTU serialisation: later sends overtake this frame.
    ++counters_.link_reorders;
    arrival = arrival + link_.TransferTime(link_.mtu_bytes);
  }

  insert_sorted(InFlight{arrival, send_end, msg});
  last_arrival_ = std::max(last_arrival_, arrival);

  if (fault_rng_.NextBool(faults_.duplicate_probability)) {
    ++counters_.link_duplicates;
    ++counters_.wire_sends;
    counters_.bytes_on_wire += wire_bytes;
    SimTime dup_arrival = arrival + link_.per_frame_overhead;
    insert_sorted(InFlight{dup_arrival, send_end, msg});
    last_arrival_ = std::max(last_arrival_, dup_arrival);
  }

  counters_.queue_high_water =
      std::max<uint64_t>(counters_.queue_high_water, in_flight_at(now));
  return arrival;
}

std::optional<SimTime> Channel::Send(Message msg, SimTime now) {
  if (broken_ && now >= break_time_) {
    return std::nullopt;
  }
  msg.seq = next_seq_++;
  ++counters_.messages_enqueued;
  auto arrival = PutOnWire(msg, now, /*retransmit=*/false);
  // Ordered channels over a faulty link keep the message until the peer's
  // cumulative ack covers it; the wire may eat the first copy. The
  // retransmission clock starts at the frame's serialisation end
  // (busy_until_): a 9-frame block cannot be acked before it is even on the
  // wire, and ageing it from the accept instant would guarantee spurious
  // full-window re-sends for any message larger than timeout x bandwidth.
  if (mode_ == ChannelMode::kOrdered && (faults_.Enabled() || wire_bound())) {
    retransmit_.Track(msg, busy_until_);
  }
  if (!arrival.has_value()) {
    // Sender-queue tail drop: the frame never hit the wire. The sender's
    // view is a completed send; recovery rides the retransmission path.
    return busy_until_ + link_.propagation;
  }
  return arrival;
}

std::optional<Message> Channel::Receive(SimTime now) {
  while (!queue_.empty() && queue_.front().arrival <= now) {
    InFlight frame = std::move(queue_.front());
    queue_.pop_front();
    delivered_high_water_ = std::max(delivered_high_water_, frame.arrival);
    if (mode_ == ChannelMode::kDatagram) {
      ++counters_.messages_delivered;
      counters_.bytes_delivered += frame.msg.WireSize();
      return std::move(frame.msg);
    }
    // Ordered mode: strict in-sequence delivery (go-back-N receiver).
    if (frame.msg.seq == rx_next_seq_) {
      ++rx_next_seq_;
      ++counters_.messages_delivered;
      counters_.bytes_delivered += frame.msg.WireSize();
      return std::move(frame.msg);
    }
    if (frame.msg.seq < rx_next_seq_) {
      ++counters_.rx_duplicates;  // Stale copy (retransmit or link duplicate).
    } else {
      ++counters_.rx_gaps;  // A frame in between was lost: discard the suffix.
    }
    reack_requested_ = true;
  }
  return std::nullopt;
}

std::optional<SimTime> Channel::NextArrival() const {
  if (queue_.empty()) {
    return std::nullopt;
  }
  return queue_.front().arrival;
}

void Channel::Break(SimTime t) {
  broken_ = true;
  break_time_ = t;
  // A crashed sender stops mid-byte: frames whose serialisation had not
  // finished by `t` are truncated on the wire and never arrive. Prune them
  // so the survivor's drain/occupancy view reflects only what was genuinely
  // sent — a promoted backup must not inherit phantom in-flight frames.
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [t](const InFlight& f) { return f.send_end > t; }),
               queue_.end());
  if (busy_until_ > t) {
    busy_until_ = t;
  }
  // queue_ is arrival-sorted on every insertion path.
  last_arrival_ = queue_.empty() ? delivered_high_water_
                                 : std::max(delivered_high_water_, queue_.back().arrival);
}

SimTime Channel::DrainTime() const { return last_arrival_; }

std::optional<SimTime> Channel::LastPendingArrival() const {
  if (queue_.empty()) {
    return std::nullopt;
  }
  return queue_.back().arrival;  // queue_ is arrival-sorted on every insertion path.
}

bool Channel::InjectWireFrame(const std::vector<uint8_t>& bytes, SimTime now) {
  if (broken_ && now >= break_time_) {
    return false;
  }
  std::optional<Message> msg = Message::Deserialize(bytes);
  if (!msg.has_value()) {
    ++counters_.wire_decode_errors;
    return false;
  }
  // A frame whose bytes reached us finished serialising at the sender, so
  // send_end == arrival: Break(t) keeps every frame received before the
  // crash was detected, exactly the paper's failure model. Arrivals off one
  // TCP stream are monotone; clamp anyway so a coarse wall clock can never
  // violate the queue's sorted invariant.
  SimTime arrival = now > last_arrival_ ? now : last_arrival_;
  queue_.push_back(InFlight{arrival, arrival, std::move(*msg)});
  last_arrival_ = arrival;
  return true;
}

void Channel::OnCumulativeAck(uint64_t acked_count, SimTime now) {
  retransmit_.Ack(acked_count, now);
}

Channel::RetransmitResult Channel::MaybeRetransmit(SimTime now) {
  RetransmitResult result;
  if (broken_ && now >= break_time_) {
    return result;
  }
  if (mode_ != ChannelMode::kOrdered || (!faults_.Enabled() && !wire_bound()) ||
      retransmit_.empty()) {
    return result;
  }
  if (!retransmit_.TimedOut(now, faults_.retransmit_timeout)) {
    return result;
  }
  for (const Message& msg : retransmit_.pending()) {
    auto arrival = PutOnWire(msg, now, /*retransmit=*/true);
    if (arrival.has_value()) {
      result.last_arrival = arrival;
    }
    ++result.frames;
  }
  // Age the window from the end of the re-sent burst's serialisation — but
  // never from before `now`: if every resend was tail-dropped by the bounded
  // sender queue, busy_until_ did not advance, and re-arming the timer at a
  // stale deadline would spin the event queue at one sim timestamp forever.
  retransmit_.MarkResent(std::max(busy_until_, now));
  return result;
}

}  // namespace hbft
