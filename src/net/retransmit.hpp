// Go-back-N sender-side retransmission buffer.
//
// An ordered channel over a faulty link keeps a copy of every message it has
// accepted until the peer's cumulative acknowledgment covers it (the
// protocol's P4 acks double as transport acks — no second ack stream is
// introduced). When the oldest unacknowledged message has waited a full
// retransmission timeout, the whole window is re-sent in order: the receiver
// discards everything after a gap, so resending the suffix is exactly what
// go-back-N requires.
#ifndef HBFT_NET_RETRANSMIT_HPP_
#define HBFT_NET_RETRANSMIT_HPP_

#include <cstdint>
#include <deque>
#include <optional>

#include "common/time.hpp"
#include "net/message.hpp"

namespace hbft {

class RetransmitBuffer {
 public:
  // Records an accepted message (sequence numbers are assigned by the
  // channel and strictly increasing). `sent_at` is the frame's serialisation
  // end: a 9-frame disk block occupies the wire for milliseconds, and its
  // retransmission clock must not start before the first copy could even
  // have reached the peer.
  void Track(const Message& msg, SimTime sent_at);

  // Cumulative acknowledgment at time `now`: drops every entry with
  // seq < acked_count. When the window head advances but entries remain,
  // their age restarts at `now` — the acks covering them are plausibly in
  // flight, and expiring them immediately would re-send the whole window on
  // every partial ack.
  void Ack(uint64_t acked_count, SimTime now);

  // Whether the window head has waited a full `timeout` by `now` (go-back-N
  // re-sends all of it, oldest first). The caller re-sends and must then
  // call MarkResent with the new serialisation end.
  bool TimedOut(SimTime now, SimTime timeout) const;
  const std::deque<Message>& pending() const { return pending_; }
  void MarkResent(SimTime sent_at) { oldest_sent_at_ = sent_at; }

  // Deadline at which the oldest entry (if any) will have timed out.
  std::optional<SimTime> NextDeadline(SimTime timeout) const;

  bool empty() const { return pending_.empty(); }
  size_t size() const { return pending_.size(); }

  // Abandons the window (the peer is dead; nothing will ever ack it).
  void Clear() { pending_.clear(); }

 private:
  std::deque<Message> pending_;     // Unacked messages, seq order.
  SimTime oldest_sent_at_ = SimTime::Zero();  // Last (re)send of the window head.
};

}  // namespace hbft

#endif  // HBFT_NET_RETRANSMIT_HPP_
