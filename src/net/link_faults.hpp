// Link-fault model for the replica interconnect.
//
// The ideal channel of the paper's prototype is a reliable FIFO wire; real
// links (the 10 Mbps Ethernet the prototype used, and the ATM alternative of
// Figure 4) lose, duplicate, and reorder frames, and their send queues are
// finite. LinkFaults parameterises those behaviours so the protocol can be
// exercised against an unreliable wire; with every probability at zero (the
// default) the channel is exactly the ideal link and every code path is
// byte-identical to the fault-free model.
//
// All randomness flows through the channel's DeterministicRng fork, so a
// lossy run is exactly reproducible from its scenario seed.
#ifndef HBFT_NET_LINK_FAULTS_HPP_
#define HBFT_NET_LINK_FAULTS_HPP_

#include <cstdint>

#include "common/time.hpp"

namespace hbft {

struct LinkFaults {
  // Per-frame loss probability. A message of k MTU frames survives with
  // probability (1-p)^k, so big relays (an 8K disk block is 9 frames) are
  // proportionally more exposed — exactly the regime go-back-N is for.
  double drop_probability = 0.0;

  // Per-message duplication probability: the link delivers a second copy one
  // frame-time behind the first.
  double duplicate_probability = 0.0;

  // Per-message reorder probability: the message is delayed by roughly one
  // full-MTU serialisation time, letting later sends overtake it.
  double reorder_probability = 0.0;

  // Bounded sender queue: frames enqueued while this many are already in
  // flight are tail-dropped (backpressure). 0 = unbounded (ideal).
  uint32_t sender_queue_limit = 0;

  // Go-back-N retransmission timeout: an ordered channel re-sends every
  // unacknowledged message once the oldest has waited this long.
  SimTime retransmit_timeout = SimTime::Millis(2);

  // Fault window: faults apply only to sends inside [active_from,
  // active_until). A bounded window models a transient loss burst; the
  // defaults cover the whole run.
  SimTime active_from = SimTime::Zero();
  SimTime active_until = SimTime::Max();

  // Whether this configuration can perturb the wire at all. When false the
  // channel takes the ideal fast path (no retransmit buffer, no timers).
  bool Enabled() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           reorder_probability > 0.0 || sender_queue_limit > 0;
  }

  bool ActiveAt(SimTime t) const { return t >= active_from && t < active_until; }

  // The canonical symmetric lossy profile used by the bench artifacts and
  // tests: drop and reorder at `p`, duplicates at half that.
  static LinkFaults SymmetricLoss(double p) {
    LinkFaults faults;
    faults.drop_probability = p;
    faults.reorder_probability = p;
    faults.duplicate_probability = p / 2;
    return faults;
  }
};

}  // namespace hbft

#endif  // HBFT_NET_LINK_FAULTS_HPP_
