#include "net/retransmit.hpp"

#include "common/check.hpp"

namespace hbft {

void RetransmitBuffer::Track(const Message& msg, SimTime sent_at) {
  if (pending_.empty()) {
    oldest_sent_at_ = sent_at;
  } else {
    HBFT_CHECK(msg.seq > pending_.back().seq) << "retransmit window out of order";
  }
  pending_.push_back(msg);
}

void RetransmitBuffer::Ack(uint64_t acked_count, SimTime now) {
  bool head_acked = false;
  while (!pending_.empty() && pending_.front().seq < acked_count) {
    pending_.pop_front();
    head_acked = true;
  }
  // The window head advanced: restart the survivors' age from the ack —
  // their own acks are plausibly still in flight behind this one. (Without
  // this, either the stale head timestamp or an expired sentinel would
  // re-send the whole window on every partial ack.)
  if (head_acked && !pending_.empty() && now > oldest_sent_at_) {
    oldest_sent_at_ = now;
  }
}

bool RetransmitBuffer::TimedOut(SimTime now, SimTime timeout) const {
  if (pending_.empty()) {
    return false;
  }
  return now >= oldest_sent_at_ + timeout;
}

std::optional<SimTime> RetransmitBuffer::NextDeadline(SimTime timeout) const {
  if (pending_.empty()) {
    return std::nullopt;
  }
  return oldest_sent_at_ + timeout;
}

}  // namespace hbft
