#include "net/message.hpp"

#include "common/check.hpp"

namespace hbft {

namespace {

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) {
      return false;
    }
    *v = bytes_[pos_++];
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(bytes_[pos_++]) << (8 * i);
    }
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(bytes_[pos_++]) << (8 * i);
    }
    return true;
  }
  bool GetBytes(std::vector<uint8_t>* out, size_t n) {
    if (pos_ + n > bytes_.size()) {
      return false;
    }
    out->assign(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
                bytes_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> Message::Serialize() const {
  std::vector<uint8_t> out;
  PutU8(&out, static_cast<uint8_t>(type));
  PutU64(&out, seq);
  PutU64(&out, epoch);
  switch (type) {
    case MsgType::kAck:
      PutU64(&out, ack_seq);
      break;
    case MsgType::kEnvValue:
      PutU64(&out, env_seq);
      PutU64(&out, env_value);
      break;
    case MsgType::kTimeSync:
      PutU64(&out, tod_value);
      break;
    case MsgType::kEpochEnd:
      break;
    case MsgType::kInterrupt: {
      PutU32(&out, irq_lines);
      PutU8(&out, io.has_value() ? 1 : 0);
      if (io.has_value()) {
        PutU32(&out, io->device_irq);
        PutU64(&out, io->guest_op_seq);
        PutU32(&out, io->result_code);
        PutU8(&out, io->has_dma_data ? 1 : 0);
        PutU32(&out, io->dma_guest_paddr);
        PutU32(&out, static_cast<uint32_t>(io->dma_data.size()));
        out.insert(out.end(), io->dma_data.begin(), io->dma_data.end());
      }
      break;
    }
    case MsgType::kStateChunk:
      PutU8(&out, static_cast<uint8_t>(state_kind));
      PutU32(&out, state_page);
      PutU32(&out, state_page_count);
      PutU32(&out, static_cast<uint32_t>(state_data.size()));
      out.insert(out.end(), state_data.begin(), state_data.end());
      break;
  }
  return out;
}

std::optional<Message> Message::Deserialize(const std::vector<uint8_t>& bytes) {
  Reader reader(bytes);
  Message msg;
  uint8_t type_raw = 0;
  if (!reader.GetU8(&type_raw) || !reader.GetU64(&msg.seq) || !reader.GetU64(&msg.epoch)) {
    return std::nullopt;
  }
  if (type_raw < 1 || type_raw > 6) {
    return std::nullopt;
  }
  msg.type = static_cast<MsgType>(type_raw);
  switch (msg.type) {
    case MsgType::kAck:
      if (!reader.GetU64(&msg.ack_seq)) {
        return std::nullopt;
      }
      break;
    case MsgType::kEnvValue:
      if (!reader.GetU64(&msg.env_seq) || !reader.GetU64(&msg.env_value)) {
        return std::nullopt;
      }
      break;
    case MsgType::kTimeSync:
      if (!reader.GetU64(&msg.tod_value)) {
        return std::nullopt;
      }
      break;
    case MsgType::kEpochEnd:
      break;
    case MsgType::kInterrupt: {
      uint8_t has_io = 0;
      if (!reader.GetU32(&msg.irq_lines) || !reader.GetU8(&has_io)) {
        return std::nullopt;
      }
      // The encoder only ever emits 0 or 1: anything else is corruption, and
      // accepting it would re-serialise differently (a silent misparse).
      if (has_io > 1) {
        return std::nullopt;
      }
      if (has_io != 0) {
        IoCompletionPayload io;
        uint8_t has_dma = 0;
        uint32_t dma_len = 0;
        if (!reader.GetU32(&io.device_irq) || !reader.GetU64(&io.guest_op_seq) ||
            !reader.GetU32(&io.result_code) || !reader.GetU8(&has_dma) ||
            !reader.GetU32(&io.dma_guest_paddr) || !reader.GetU32(&dma_len)) {
          return std::nullopt;
        }
        if (has_dma > 1) {
          return std::nullopt;  // Non-canonical flag byte: corruption.
        }
        io.has_dma_data = has_dma != 0;
        if (!reader.GetBytes(&io.dma_data, dma_len)) {
          return std::nullopt;
        }
        msg.io = std::move(io);
      }
      break;
    }
    case MsgType::kStateChunk: {
      uint8_t kind = 0;
      uint32_t data_len = 0;
      if (!reader.GetU8(&kind) || !reader.GetU32(&msg.state_page) ||
          !reader.GetU32(&msg.state_page_count) || !reader.GetU32(&data_len)) {
        return std::nullopt;
      }
      // The encoder only emits the three chunk kinds; anything else is
      // corruption, not a chunk.
      if (kind > static_cast<uint8_t>(StateChunkKind::kControl)) {
        return std::nullopt;
      }
      msg.state_kind = static_cast<StateChunkKind>(kind);
      if (!reader.GetBytes(&msg.state_data, data_len)) {
        return std::nullopt;
      }
      break;
    }
  }
  if (!reader.AtEnd()) {
    return std::nullopt;
  }
  return msg;
}

size_t Message::WireSize() const {
  // Header (type + seq + epoch) plus payload, mirroring Serialize().
  size_t size = 1 + 8 + 8;
  switch (type) {
    case MsgType::kAck:
      size += 8;
      break;
    case MsgType::kEnvValue:
      size += 16;
      break;
    case MsgType::kTimeSync:
      size += 8;
      break;
    case MsgType::kEpochEnd:
      break;
    case MsgType::kInterrupt:
      size += 5;
      if (io.has_value()) {
        size += 4 + 8 + 4 + 1 + 4 + 4 + io->dma_data.size();
      }
      break;
    case MsgType::kStateChunk:
      size += 1 + 4 + 4 + 4 + state_data.size();
      break;
  }
  return size;
}

}  // namespace hbft
