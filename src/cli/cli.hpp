// Entry point and argument parsing for the `hbft_cli` scenario driver.
//
// Subcommands:
//   run    — execute one workload bare and/or replicated, print a report.
//   drill  — kill the primary mid-run, report the failover and promotion
//            latency breakdown.
//   bench  — regenerate the paper's Table 1 / Fig 2-4 numbers and write
//            them as JSON time-series artifacts under bench/.
#ifndef HBFT_CLI_CLI_HPP_
#define HBFT_CLI_CLI_HPP_

namespace hbft {
namespace cli {

int Main(int argc, char** argv);

}  // namespace cli
}  // namespace hbft

#endif  // HBFT_CLI_CLI_HPP_
