// Flag parsing for the hbft_cli subcommands.
//
// Flags are --key=value (or bare --key for booleans). Every flag a command
// reads is tracked; Finish() rejects anything left over, so typos fail loudly
// instead of silently running a default scenario.
#ifndef HBFT_CLI_OPTIONS_HPP_
#define HBFT_CLI_OPTIONS_HPP_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "guest/workloads.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"

namespace hbft {
namespace cli {

class FlagSet {
 public:
  // Returns false (with a message on stderr) on malformed arguments.
  bool Parse(int argc, char** argv, int first);

  bool Has(const std::string& key);
  std::string GetString(const std::string& key, const std::string& default_value);
  std::optional<uint64_t> GetU64(const std::string& key);
  std::optional<double> GetDouble(const std::string& key);

  // True when every provided flag was consumed; otherwise prints the
  // unrecognised ones to stderr.
  bool Finish();

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
};

// Name <-> enum maps shared by run/drill/bench.
std::optional<WorkloadKind> ParseWorkloadKind(const std::string& name);
const char* WorkloadKindName(WorkloadKind kind);
std::optional<ProtocolVariant> ParseVariant(const std::string& name);
const char* VariantName(ProtocolVariant variant);
std::optional<FailPhase> ParseFailPhase(const std::string& name);

// Scenario knobs shared by `run` and `drill`: workload selection plus
// replication and failure-injection settings. Returns false after printing
// the offending flag.
struct ScenarioFlags {
  WorkloadSpec workload;
  ScenarioOptions options;
  bool has_failure = false;
  std::string failure_description = "none";
};

bool ParseScenarioFlags(FlagSet& flags, ScenarioFlags* out);

}  // namespace cli
}  // namespace hbft

#endif  // HBFT_CLI_OPTIONS_HPP_
