// Flag parsing for the hbft_cli subcommands.
//
// Flags are --key=value (or bare --key for booleans). Every flag a command
// reads is tracked; Finish() rejects anything left over, so typos fail loudly
// instead of silently running a default scenario. A few flags (--fail) are
// repeatable: each occurrence appends to an ordered list.
#ifndef HBFT_CLI_OPTIONS_HPP_
#define HBFT_CLI_OPTIONS_HPP_

#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "guest/workloads.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"

namespace hbft {
namespace cli {

class FlagSet {
 public:
  // Returns false (with a message on stderr) on malformed arguments.
  bool Parse(int argc, char** argv, int first);

  bool Has(const std::string& key);
  std::string GetString(const std::string& key, const std::string& default_value);
  std::optional<uint64_t> GetU64(const std::string& key);
  std::optional<double> GetDouble(const std::string& key);
  // Every occurrence of a repeatable flag, in command-line order.
  std::vector<std::string> GetList(const std::string& key);

  // True when every provided flag was consumed; otherwise prints the
  // unrecognised ones to stderr.
  bool Finish();

 private:
  std::map<std::string, std::vector<std::string>> values_;
  std::set<std::string> consumed_;
};

// Name <-> enum maps shared by run/drill/bench.
std::optional<WorkloadKind> ParseWorkloadKind(const std::string& name);
const char* WorkloadKindName(WorkloadKind kind);
std::optional<ProtocolVariant> ParseVariant(const std::string& name);
const char* VariantName(ProtocolVariant variant);
std::optional<FailPhase> ParseFailPhase(const std::string& name);

// One enum name per line — the discoverability behind --list-workloads and
// --list-phases.
void PrintWorkloadNames(std::FILE* out);
void PrintFailPhaseNames(std::FILE* out);

// Parses one --fail=SPEC value: comma-separated key=value pairs.
//   --fail=time-ms=40                          kill the active replica at 40ms
//   --fail=phase=after-io-issue,epoch=2        kill at a protocol phase
//   --fail=time-ms=60,target=backup:1          kill the second standing backup
//   --fail=phase=after-send-tme,crash-io=performed
// Returns false after printing the offending part.
bool ParseFailSpec(const std::string& spec, FailurePlan* out, std::string* description);

// Scenario knobs shared by `run` and `drill`: workload selection plus
// replication, topology, device fault plans, and failure-schedule settings.
// Returns false after printing the offending flag.
struct ScenarioFlags {
  WorkloadSpec workload;
  int backups = 1;
  uint64_t epoch_length = 4096;
  ProtocolVariant variant = ProtocolVariant::kOriginal;
  uint64_t seed = 42;
  FailureSchedule failures;
  std::string failure_description = "none";
  bool has_failure = false;

  // Per-device transient-fault knobs (--disk-uncertain= etc.), applied to
  // the replicated run and its bare reference alike so the transparency
  // checks compare like with like.
  FaultPlan disk_faults;
  FaultPlan console_faults;
  FaultPlan nic_faults;

  // Interconnect knobs (--loss/--reorder/--dup/--link-queue/--rto-ms/
  // --loss-until-ms) and the protocol's transport generalisations
  // (--pipeline-depth, --ack-batch). Replicated runs only — the bare
  // reference has no replica channels.
  LinkFaults link_faults;
  uint32_t pipeline_depth = 0;
  uint32_t ack_batch = 1;

  // net-echo: packets injected into the run (0 = workload iterations).
  uint64_t packets = 0;

  // Interpreter selection (--interp=slow|cached); results are dispatch-mode
  // invariant, so this only changes host-side speed. Defaults to the
  // HBFT_INTERP environment override or the slow path.
  InterpMode interp = DefaultInterpMode();

  // Builders carrying every parsed knob.
  Scenario Replicated() const;
  Scenario Bare() const;
};

bool ParseScenarioFlags(FlagSet& flags, ScenarioFlags* out);

}  // namespace cli
}  // namespace hbft

#endif  // HBFT_CLI_OPTIONS_HPP_
