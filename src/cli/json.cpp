#include "cli/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace hbft {
namespace cli {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendIndent(std::string* out, int indent) { out->append(indent * 2, ' '); }

}  // namespace

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  HBFT_CHECK(kind_ == Kind::kObject);
  members_.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::Push(JsonValue value) {
  HBFT_CHECK(kind_ == Kind::kArray);
  elements_.push_back(std::move(value));
  return *this;
}

void JsonValue::DumpTo(std::string* out, int indent) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      *out += buf;
      break;
    }
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {
        *out += "null";
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.6g", double_);
      *out += buf;
      break;
    }
    case Kind::kString:
      AppendEscaped(out, string_);
      break;
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{\n";
      for (size_t i = 0; i < members_.size(); ++i) {
        AppendIndent(out, indent + 1);
        AppendEscaped(out, members_[i].first);
        *out += ": ";
        members_[i].second.DumpTo(out, indent + 1);
        if (i + 1 < members_.size()) {
          out->push_back(',');
        }
        out->push_back('\n');
      }
      AppendIndent(out, indent);
      out->push_back('}');
      break;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[\n";
      for (size_t i = 0; i < elements_.size(); ++i) {
        AppendIndent(out, indent + 1);
        elements_[i].DumpTo(out, indent + 1);
        if (i + 1 < elements_.size()) {
          out->push_back(',');
        }
        out->push_back('\n');
      }
      AppendIndent(out, indent);
      out->push_back(']');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  out.push_back('\n');
  return out;
}

bool WriteJsonFile(const std::string& path, const JsonValue& value) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "hbft_cli: cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::string text = value.Dump();
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  int close_rc = std::fclose(f);
  bool ok = written == text.size() && close_rc == 0;
  if (!ok) {
    std::fprintf(stderr, "hbft_cli: failed writing %s\n", path.c_str());
  }
  return ok;
}

}  // namespace cli
}  // namespace hbft
