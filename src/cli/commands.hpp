// The hbft_cli subcommands. Each takes pre-split flags and returns a process
// exit code (0 = success / scenario passed its checks).
#ifndef HBFT_CLI_COMMANDS_HPP_
#define HBFT_CLI_COMMANDS_HPP_

#include <cstdio>
#include <string>

#include "cli/options.hpp"

namespace hbft {
namespace cli {

int RunCommand(FlagSet& flags);
int DrillCommand(FlagSet& flags);
int BenchCommand(FlagSet& flags);
int FleetCommand(FlagSet& flags);
int ServeCommand(FlagSet& flags);

// Report line helpers: aligned "key : value" rows, greppable by the smoke
// test and stable for transcripts in README.md.
inline void ReportLine(const std::string& key, const std::string& value) {
  std::printf("%-24s: %s\n", key.c_str(), value.c_str());
}
inline void ReportYesNo(const std::string& key, bool value) {
  ReportLine(key, value ? "yes" : "no");
}
inline void ReportF(const std::string& key, double value, const char* unit = "") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f%s", value, unit);
  ReportLine(key, buf);
}

}  // namespace cli
}  // namespace hbft

#endif  // HBFT_CLI_COMMANDS_HPP_
