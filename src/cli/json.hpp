// Minimal JSON value + serialiser for the CLI's bench artifacts. Only what
// the artifacts need: objects with insertion-ordered keys, arrays, strings,
// numbers, and booleans.
#ifndef HBFT_CLI_JSON_HPP_
#define HBFT_CLI_JSON_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hbft {
namespace cli {

class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(int64_t n) : kind_(Kind::kInt), int_(n) {}
  JsonValue(uint64_t n) : kind_(Kind::kInt), int_(static_cast<int64_t>(n)) {}
  JsonValue(int n) : kind_(Kind::kInt), int_(n) {}
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }

  JsonValue& Set(const std::string& key, JsonValue value);
  JsonValue& Push(JsonValue value);

  // Pretty-prints with two-space indentation and a trailing newline.
  std::string Dump() const;

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kObject, kArray };

  void DumpTo(std::string* out, int indent) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> elements_;
};

// Writes `value` to `path`; returns false (with a message) on I/O failure.
bool WriteJsonFile(const std::string& path, const JsonValue& value);

}  // namespace cli
}  // namespace hbft

#endif  // HBFT_CLI_JSON_HPP_
