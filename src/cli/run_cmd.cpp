// `hbft_cli run` — execute one workload bare, replicated, or both, and print
// a comparison report (the paper's N'/N figure of merit when both ran).
// With --json the same information is emitted as one machine-readable
// document on stdout, so CI and scripts consume structured output instead of
// scraping the text report.
#include <cstdio>
#include <string>

#include "cli/commands.hpp"
#include "cli/json.hpp"
#include "cli/options.hpp"
#include "perf/report.hpp"
#include "sim/environment_observer.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace cli {

namespace {

void ReportOutcome(const char* label, const ScenarioResult& r) {
  std::printf("-- %s --\n", label);
  ReportYesNo("completed", r.completed);
  if (r.timed_out) {
    ReportYesNo("timed_out", true);
  }
  if (r.deadlocked) {
    ReportYesNo("deadlocked", true);
  }
  if (r.service_lost) {
    ReportYesNo("service_lost", true);
  }
  ReportF("runtime_s", r.completion_time.seconds());
  ReportLine("exited_flag", r.exited_flag == 1 ? "clean" : std::to_string(r.exited_flag));
  ReportLine("exit_code", std::to_string(r.exit_code));
  ReportLine("guest_checksum", std::to_string(r.guest_checksum));
  ReportLine("clock_ticks", std::to_string(r.ticks));
  if (!r.console_output.empty()) {
    std::string preview = r.console_output.substr(0, 60);
    for (char& c : preview) {
      if (c == '\n') {
        c = ' ';
      }
    }
    ReportLine("console_bytes", std::to_string(r.console_output.size()) + " (\"" + preview + "\")");
  }
}

void ReportReplicationStats(const ScenarioResult& r) {
  ReportLine("replicas", std::to_string(r.nodes.size()));
  ReportLine("epochs", std::to_string(r.primary_stats().epochs));
  ReportLine("messages_sent", std::to_string(r.primary_stats().messages_sent));
  ReportLine("acks_received", std::to_string(r.primary_stats().acks_received));
  ReportF("ack_wait_ms", r.primary_stats().ack_wait_time.seconds() * 1e3);
  ReportF("boundary_ms", r.primary_stats().boundary_time.seconds() * 1e3);
  ReportYesNo("promoted", r.promoted);
  for (size_t i = 0; i + 1 < r.nodes.size(); ++i) {
    if (r.backup_stats(i).relays_forwarded > 0) {
      ReportLine("backup" + std::to_string(i) + "_relays",
                 std::to_string(r.backup_stats(i).relays_forwarded));
    }
  }
  if (r.promoted) {
    for (size_t c = 0; c < r.crash_times.size(); ++c) {
      ReportF("crash_time_ms" + (c == 0 ? std::string() : "_" + std::to_string(c + 1)),
              r.crash_times[c].seconds() * 1e3);
    }
    for (size_t i = 1; i < r.nodes.size(); ++i) {
      if (r.nodes[i].promoted) {
        ReportF("promotion_time_ms_node" + std::to_string(r.nodes[i].id),
                r.nodes[i].promotion_time.seconds() * 1e3);
      }
    }
    ReportF("promotion_time_ms", r.promotion_time.seconds() * 1e3);
    ReportLine("backup_io_redriven", std::to_string(r.backup_stats().io_issued));
  }
}

// Per-channel transport counters, printed when the run exercised the modeled
// transport (lossy wire, pipelining, or ack batching).
void ReportTransportStats(const ScenarioResult& r) {
  ReportLine("link_retransmits", std::to_string(r.TotalRetransmits()));
  ReportLine("link_wire_bytes", std::to_string(r.TotalWireBytes()));
  ReportLine("link_delivered_bytes", std::to_string(r.TotalDeliveredBytes()));
  ReportF("link_goodput_mbps", r.GoodputBps() / 1e6);
  std::vector<ChannelCounterRow> rows;
  for (const ScenarioResult::ChannelReport& ch : r.channels) {
    ChannelCounterRow row;
    row.label = std::to_string(ch.from) + "->" + std::to_string(ch.to) +
                (ch.mode == ChannelMode::kOrdered ? " (protocol)" : " (acks)");
    row.counters = ch.counters;
    row.run_seconds = r.completion_time.seconds();
    rows.push_back(std::move(row));
  }
  std::fputs(RenderTransportTable(rows).c_str(), stdout);
}

void ReportResyncStats(const ScenarioResult& r) {
  for (size_t i = 0; i < r.resyncs.size(); ++i) {
    const ResyncReport& resync = r.resyncs[i];
    const std::string suffix = i == 0 ? std::string() : "_" + std::to_string(i + 1);
    ReportYesNo("resync_completed" + suffix, resync.completed);
    if (!resync.completed) {
      continue;
    }
    ReportF("resync_latency_ms" + suffix, (resync.join_time - resync.start).seconds() * 1e3);
    ReportLine("resync_bytes" + suffix, std::to_string(resync.bytes));
    ReportLine("resync_page_chunks" + suffix, std::to_string(resync.page_chunks));
    ReportLine("resync_delta_pages" + suffix, std::to_string(resync.delta_pages));
    ReportLine("resync_rounds" + suffix, std::to_string(resync.rounds));
  }
}

// --- JSON assembly (run --json) ---------------------------------------------

JsonValue OutcomeJson(const ScenarioResult& r) {
  JsonValue doc = JsonValue::Object()
                      .Set("completed", r.completed)
                      .Set("timed_out", r.timed_out)
                      .Set("deadlocked", r.deadlocked)
                      .Set("service_lost", r.service_lost)
                      .Set("runtime_s", r.completion_time.seconds())
                      .Set("exited_flag", static_cast<uint64_t>(r.exited_flag))
                      .Set("exit_code", static_cast<uint64_t>(r.exit_code))
                      .Set("guest_checksum", static_cast<uint64_t>(r.guest_checksum))
                      .Set("clock_ticks", static_cast<uint64_t>(r.ticks))
                      .Set("console_bytes", static_cast<uint64_t>(r.console_output.size()));
  return doc;
}

JsonValue ReplicationJson(const ScenarioResult& r) {
  JsonValue crash_times = JsonValue::Array();
  for (SimTime t : r.crash_times) {
    crash_times.Push(t.seconds() * 1e3);
  }
  JsonValue nodes = JsonValue::Array();
  for (const ScenarioResult::NodeReport& node : r.nodes) {
    nodes.Push(JsonValue::Object()
                   .Set("id", node.id)
                   .Set("promoted", node.promoted)
                   .Set("promotion_time_ms", node.promotion_time.seconds() * 1e3)
                   .Set("rejoined", node.rejoined)
                   .Set("joined", node.joined)
                   .Set("join_epoch", node.join_epoch)
                   .Set("epochs", node.stats.epochs)
                   .Set("messages_sent", node.stats.messages_sent)
                   .Set("acks_received", node.stats.acks_received)
                   .Set("io_issued", node.stats.io_issued)
                   .Set("uncertain_synthesised", node.stats.uncertain_synthesised));
  }
  JsonValue resyncs = JsonValue::Array();
  for (const ResyncReport& resync : r.resyncs) {
    resyncs.Push(JsonValue::Object()
                     .Set("source", static_cast<uint64_t>(resync.source))
                     .Set("joined", static_cast<uint64_t>(resync.joined))
                     .Set("completed", resync.completed)
                     .Set("start_ms", resync.start.seconds() * 1e3)
                     .Set("cut_ms", resync.cut_time.seconds() * 1e3)
                     .Set("join_ms", resync.join_time.seconds() * 1e3)
                     .Set("latency_ms", (resync.join_time - resync.start).seconds() * 1e3)
                     .Set("join_epoch", resync.join_epoch)
                     .Set("bytes", resync.bytes)
                     .Set("page_chunks", resync.page_chunks)
                     .Set("zero_run_chunks", resync.zero_run_chunks)
                     .Set("full_pages", resync.full_pages)
                     .Set("delta_pages", resync.delta_pages)
                     .Set("rounds", resync.rounds));
  }
  return JsonValue::Object()
      .Set("replicas", static_cast<uint64_t>(r.nodes.size()))
      .Set("promoted", r.promoted)
      .Set("promotion_time_ms", r.promotion_time.seconds() * 1e3)
      .Set("crash_times_ms", std::move(crash_times))
      .Set("nodes", std::move(nodes))
      .Set("resyncs", std::move(resyncs));
}

JsonValue TransportJson(const ScenarioResult& r) {
  JsonValue channels = JsonValue::Array();
  for (const ScenarioResult::ChannelReport& ch : r.channels) {
    channels.Push(JsonValue::Object()
                      .Set("from", static_cast<uint64_t>(ch.from))
                      .Set("to", static_cast<uint64_t>(ch.to))
                      .Set("mode", ch.mode == ChannelMode::kOrdered ? "protocol" : "acks")
                      .Set("messages_enqueued", ch.counters.messages_enqueued)
                      .Set("wire_sends", ch.counters.wire_sends)
                      .Set("retransmits", ch.counters.retransmits)
                      .Set("rx_discards", ch.counters.rx_duplicates + ch.counters.rx_gaps)
                      .Set("queue_drops", ch.counters.queue_drops)
                      .Set("bytes_on_wire", ch.counters.bytes_on_wire)
                      .Set("bytes_delivered", ch.counters.bytes_delivered));
  }
  return JsonValue::Object()
      .Set("retransmits", r.TotalRetransmits())
      .Set("wire_bytes", r.TotalWireBytes())
      .Set("delivered_bytes", r.TotalDeliveredBytes())
      .Set("goodput_mbps", r.GoodputBps() / 1e6)
      .Set("channels", std::move(channels));
}

}  // namespace

int RunCommand(FlagSet& flags) {
  ScenarioFlags scenario;
  std::string mode = flags.GetString("mode", "both");
  const bool json = flags.Has("json");
  if (!ParseScenarioFlags(flags, &scenario) || !flags.Finish()) {
    return 2;
  }
  if (mode != "both" && mode != "bare" && mode != "replicated") {
    std::fprintf(stderr, "hbft_cli: unknown --mode '%s' (both, bare, replicated)\n", mode.c_str());
    return 2;
  }
  const bool want_bare = mode != "replicated";
  const bool want_replicated = mode != "bare";

  if (json) {
    // Machine-readable path: one document on stdout, nothing else.
    JsonValue doc = JsonValue::Object()
                        .Set("command", "run")
                        .Set("workload", WorkloadKindName(scenario.workload.kind))
                        .Set("iterations", static_cast<uint64_t>(scenario.workload.iterations))
                        .Set("mode", mode)
                        .Set("variant", VariantName(scenario.variant))
                        .Set("epoch_length", scenario.epoch_length)
                        .Set("backups", scenario.backups)
                        .Set("seed", scenario.seed)
                        .Set("failure", scenario.failure_description);
    int rc = 0;
    ScenarioResult bare;
    if (want_bare) {
      bare = scenario.Bare().Run();
      doc.Set("bare", OutcomeJson(bare));
      if (!bare.completed || bare.exited_flag != 1) {
        rc = 1;
      }
    }
    if (want_replicated) {
      ScenarioResult ft = scenario.Replicated().Run();
      JsonValue rep = OutcomeJson(ft);
      rep.Set("replication", ReplicationJson(ft));
      rep.Set("transport", TransportJson(ft));
      doc.Set("replicated", std::move(rep));
      if (!ft.completed || ft.exited_flag != 1) {
        rc = 1;
      }
      if (want_bare && bare.completed && ft.completed) {
        ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace,
                                                    ft.issuer_chain());
        doc.Set("comparison", JsonValue::Object()
                                  .Set("normalized_performance", NormalizedPerformance(ft, bare))
                                  .Set("env_consistency", env.ok)
                                  .Set("env_consistency_detail", env.ok ? "" : env.detail));
        if (!env.ok) {
          rc = 1;
        }
      }
    }
    std::fputs(doc.Dump().c_str(), stdout);
    return rc;
  }

  std::printf("== hbft run report ==\n");
  ReportLine("workload", WorkloadKindName(scenario.workload.kind));
  ReportLine("iterations", std::to_string(scenario.workload.iterations));
  ReportLine("mode", mode);
  if (want_replicated) {
    ReportLine("variant", VariantName(scenario.variant));
    ReportLine("epoch_length", std::to_string(scenario.epoch_length));
    ReportLine("backups", std::to_string(scenario.backups));
    ReportLine("failure", scenario.failure_description);
    if (scenario.link_faults.Enabled()) {
      char link[128];
      std::snprintf(link, sizeof(link), "loss=%g dup=%g reorder=%g queue=%u rto_ms=%.3f",
                    scenario.link_faults.drop_probability,
                    scenario.link_faults.duplicate_probability,
                    scenario.link_faults.reorder_probability,
                    scenario.link_faults.sender_queue_limit,
                    scenario.link_faults.retransmit_timeout.seconds() * 1e3);
      ReportLine("link_faults", link);
    }
    if (scenario.pipeline_depth > 0) {
      ReportLine("pipeline_depth", std::to_string(scenario.pipeline_depth));
    }
    if (scenario.ack_batch > 1) {
      ReportLine("ack_batch", std::to_string(scenario.ack_batch));
    }
  }

  int rc = 0;
  ScenarioResult bare;
  if (want_bare) {
    bare = scenario.Bare().Run();
    ReportOutcome("bare reference", bare);
    if (!bare.completed || bare.exited_flag != 1) {
      rc = 1;
    }
  }
  if (want_replicated) {
    ScenarioResult ft = scenario.Replicated().Run();
    ReportOutcome("replicated", ft);
    ReportReplicationStats(ft);
    if (!ft.resyncs.empty()) {
      ReportResyncStats(ft);
    }
    if (scenario.link_faults.Enabled() || scenario.pipeline_depth > 0 ||
        scenario.ack_batch > 1) {
      ReportTransportStats(ft);
    }
    if (!ft.completed || ft.exited_flag != 1) {
      rc = 1;
    }
    if (want_bare && bare.completed && ft.completed) {
      std::printf("-- comparison --\n");
      ReportF("normalized_performance", NormalizedPerformance(ft, bare), " (N'/N)");
      // One device-generic transparency check covering every attached
      // device's output (disk, console, NIC).
      ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace,
                                                  ft.issuer_chain());
      ReportLine("env_consistency", env.ok ? "ok" : "FAIL: " + env.detail);
      // Back-compat aliases for scripts grepping the per-device verdicts.
      ReportLine("disk_consistency", env.ok ? "ok" : "see env_consistency");
      ReportLine("console_consistency", env.ok ? "ok" : "see env_consistency");
      if (!env.ok) {
        rc = 1;
      }
    }
  }
  return rc;
}

}  // namespace cli
}  // namespace hbft
