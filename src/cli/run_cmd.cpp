// `hbft_cli run` — execute one workload bare, replicated, or both, and print
// a comparison report (the paper's N'/N figure of merit when both ran).
#include <cstdio>
#include <string>

#include "cli/commands.hpp"
#include "cli/options.hpp"
#include "sim/environment_observer.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace cli {

namespace {

void ReportOutcome(const char* label, const ScenarioResult& r) {
  std::printf("-- %s --\n", label);
  ReportYesNo("completed", r.completed);
  if (r.timed_out) {
    ReportYesNo("timed_out", true);
  }
  if (r.deadlocked) {
    ReportYesNo("deadlocked", true);
  }
  ReportF("runtime_s", r.completion_time.seconds());
  ReportLine("exited_flag", r.exited_flag == 1 ? "clean" : std::to_string(r.exited_flag));
  ReportLine("exit_code", std::to_string(r.exit_code));
  ReportLine("guest_checksum", std::to_string(r.guest_checksum));
  ReportLine("clock_ticks", std::to_string(r.ticks));
  if (!r.console_output.empty()) {
    std::string preview = r.console_output.substr(0, 60);
    for (char& c : preview) {
      if (c == '\n') {
        c = ' ';
      }
    }
    ReportLine("console_bytes", std::to_string(r.console_output.size()) + " (\"" + preview + "\")");
  }
}

void ReportReplicationStats(const ScenarioResult& r) {
  ReportLine("epochs", std::to_string(r.primary_stats.epochs));
  ReportLine("messages_sent", std::to_string(r.primary_stats.messages_sent));
  ReportLine("acks_received", std::to_string(r.primary_stats.acks_received));
  ReportF("ack_wait_ms", r.primary_stats.ack_wait_time.seconds() * 1e3);
  ReportF("boundary_ms", r.primary_stats.boundary_time.seconds() * 1e3);
  ReportYesNo("promoted", r.promoted);
  if (r.promoted) {
    ReportF("crash_time_ms", r.crash_time.seconds() * 1e3);
    ReportF("promotion_time_ms", r.promotion_time.seconds() * 1e3);
    ReportLine("backup_io_redriven", std::to_string(r.backup_stats.io_issued));
  }
}

}  // namespace

int RunCommand(FlagSet& flags) {
  ScenarioFlags scenario;
  std::string mode = flags.GetString("mode", "both");
  if (!ParseScenarioFlags(flags, &scenario) || !flags.Finish()) {
    return 2;
  }
  if (mode != "both" && mode != "bare" && mode != "replicated") {
    std::fprintf(stderr, "hbft_cli: unknown --mode '%s' (both, bare, replicated)\n", mode.c_str());
    return 2;
  }
  const bool want_bare = mode != "replicated";
  const bool want_replicated = mode != "bare";

  std::printf("== hbft run report ==\n");
  ReportLine("workload", WorkloadKindName(scenario.workload.kind));
  ReportLine("iterations", std::to_string(scenario.workload.iterations));
  ReportLine("mode", mode);
  if (want_replicated) {
    ReportLine("variant", VariantName(scenario.options.replication.variant));
    ReportLine("epoch_length", std::to_string(scenario.options.replication.epoch_length));
    ReportLine("failure", scenario.failure_description);
  }

  int rc = 0;
  ScenarioResult bare;
  if (want_bare) {
    bare = RunBare(scenario.workload, scenario.options);
    ReportOutcome("bare reference", bare);
    if (!bare.completed || bare.exited_flag != 1) {
      rc = 1;
    }
  }
  if (want_replicated) {
    ScenarioResult ft = RunReplicated(scenario.workload, scenario.options);
    ReportOutcome("replicated", ft);
    ReportReplicationStats(ft);
    if (!ft.completed || ft.exited_flag != 1) {
      rc = 1;
    }
    if (want_bare && bare.completed && ft.completed) {
      std::printf("-- comparison --\n");
      ReportF("normalized_performance", NormalizedPerformance(ft, bare), " (N'/N)");
      ConsistencyResult disk =
          CheckDiskConsistency(bare.disk_trace, ft.disk_trace, ft.primary_id, ft.backup_id);
      ReportLine("disk_consistency", disk.ok ? "ok" : "FAIL: " + disk.detail);
      ConsistencyResult console = CheckConsoleConsistency(bare.console_trace, ft.console_trace,
                                                          ft.primary_id, ft.backup_id);
      ReportLine("console_consistency", console.ok ? "ok" : "FAIL: " + console.detail);
      if (!disk.ok || !console.ok) {
        rc = 1;
      }
    }
  }
  return rc;
}

}  // namespace cli
}  // namespace hbft
