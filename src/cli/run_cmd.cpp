// `hbft_cli run` — execute one workload bare, replicated, or both, and print
// a comparison report (the paper's N'/N figure of merit when both ran).
#include <cstdio>
#include <string>

#include "cli/commands.hpp"
#include "cli/options.hpp"
#include "perf/report.hpp"
#include "sim/environment_observer.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace cli {

namespace {

void ReportOutcome(const char* label, const ScenarioResult& r) {
  std::printf("-- %s --\n", label);
  ReportYesNo("completed", r.completed);
  if (r.timed_out) {
    ReportYesNo("timed_out", true);
  }
  if (r.deadlocked) {
    ReportYesNo("deadlocked", true);
  }
  if (r.service_lost) {
    ReportYesNo("service_lost", true);
  }
  ReportF("runtime_s", r.completion_time.seconds());
  ReportLine("exited_flag", r.exited_flag == 1 ? "clean" : std::to_string(r.exited_flag));
  ReportLine("exit_code", std::to_string(r.exit_code));
  ReportLine("guest_checksum", std::to_string(r.guest_checksum));
  ReportLine("clock_ticks", std::to_string(r.ticks));
  if (!r.console_output.empty()) {
    std::string preview = r.console_output.substr(0, 60);
    for (char& c : preview) {
      if (c == '\n') {
        c = ' ';
      }
    }
    ReportLine("console_bytes", std::to_string(r.console_output.size()) + " (\"" + preview + "\")");
  }
}

void ReportReplicationStats(const ScenarioResult& r) {
  ReportLine("replicas", std::to_string(r.nodes.size()));
  ReportLine("epochs", std::to_string(r.primary_stats().epochs));
  ReportLine("messages_sent", std::to_string(r.primary_stats().messages_sent));
  ReportLine("acks_received", std::to_string(r.primary_stats().acks_received));
  ReportF("ack_wait_ms", r.primary_stats().ack_wait_time.seconds() * 1e3);
  ReportF("boundary_ms", r.primary_stats().boundary_time.seconds() * 1e3);
  ReportYesNo("promoted", r.promoted);
  for (size_t i = 0; i + 1 < r.nodes.size(); ++i) {
    if (r.backup_stats(i).relays_forwarded > 0) {
      ReportLine("backup" + std::to_string(i) + "_relays",
                 std::to_string(r.backup_stats(i).relays_forwarded));
    }
  }
  if (r.promoted) {
    for (size_t c = 0; c < r.crash_times.size(); ++c) {
      ReportF("crash_time_ms" + (c == 0 ? std::string() : "_" + std::to_string(c + 1)),
              r.crash_times[c].seconds() * 1e3);
    }
    for (size_t i = 1; i < r.nodes.size(); ++i) {
      if (r.nodes[i].promoted) {
        ReportF("promotion_time_ms_node" + std::to_string(r.nodes[i].id),
                r.nodes[i].promotion_time.seconds() * 1e3);
      }
    }
    ReportF("promotion_time_ms", r.promotion_time.seconds() * 1e3);
    ReportLine("backup_io_redriven", std::to_string(r.backup_stats().io_issued));
  }
}

// Per-channel transport counters, printed when the run exercised the modeled
// transport (lossy wire, pipelining, or ack batching).
void ReportTransportStats(const ScenarioResult& r) {
  ReportLine("link_retransmits", std::to_string(r.TotalRetransmits()));
  ReportLine("link_wire_bytes", std::to_string(r.TotalWireBytes()));
  ReportLine("link_delivered_bytes", std::to_string(r.TotalDeliveredBytes()));
  ReportF("link_goodput_mbps", r.GoodputBps() / 1e6);
  std::vector<ChannelCounterRow> rows;
  for (const ScenarioResult::ChannelReport& ch : r.channels) {
    ChannelCounterRow row;
    row.label = std::to_string(ch.from) + "->" + std::to_string(ch.to) +
                (ch.mode == ChannelMode::kOrdered ? " (protocol)" : " (acks)");
    row.counters = ch.counters;
    row.run_seconds = r.completion_time.seconds();
    rows.push_back(std::move(row));
  }
  std::fputs(RenderTransportTable(rows).c_str(), stdout);
}

}  // namespace

int RunCommand(FlagSet& flags) {
  ScenarioFlags scenario;
  std::string mode = flags.GetString("mode", "both");
  if (!ParseScenarioFlags(flags, &scenario) || !flags.Finish()) {
    return 2;
  }
  if (mode != "both" && mode != "bare" && mode != "replicated") {
    std::fprintf(stderr, "hbft_cli: unknown --mode '%s' (both, bare, replicated)\n", mode.c_str());
    return 2;
  }
  const bool want_bare = mode != "replicated";
  const bool want_replicated = mode != "bare";

  std::printf("== hbft run report ==\n");
  ReportLine("workload", WorkloadKindName(scenario.workload.kind));
  ReportLine("iterations", std::to_string(scenario.workload.iterations));
  ReportLine("mode", mode);
  if (want_replicated) {
    ReportLine("variant", VariantName(scenario.variant));
    ReportLine("epoch_length", std::to_string(scenario.epoch_length));
    ReportLine("backups", std::to_string(scenario.backups));
    ReportLine("failure", scenario.failure_description);
    if (scenario.link_faults.Enabled()) {
      char link[128];
      std::snprintf(link, sizeof(link), "loss=%g dup=%g reorder=%g queue=%u rto_ms=%.3f",
                    scenario.link_faults.drop_probability,
                    scenario.link_faults.duplicate_probability,
                    scenario.link_faults.reorder_probability,
                    scenario.link_faults.sender_queue_limit,
                    scenario.link_faults.retransmit_timeout.seconds() * 1e3);
      ReportLine("link_faults", link);
    }
    if (scenario.pipeline_depth > 0) {
      ReportLine("pipeline_depth", std::to_string(scenario.pipeline_depth));
    }
    if (scenario.ack_batch > 1) {
      ReportLine("ack_batch", std::to_string(scenario.ack_batch));
    }
  }

  int rc = 0;
  ScenarioResult bare;
  if (want_bare) {
    bare = scenario.Bare().Run();
    ReportOutcome("bare reference", bare);
    if (!bare.completed || bare.exited_flag != 1) {
      rc = 1;
    }
  }
  if (want_replicated) {
    ScenarioResult ft = scenario.Replicated().Run();
    ReportOutcome("replicated", ft);
    ReportReplicationStats(ft);
    if (scenario.link_faults.Enabled() || scenario.pipeline_depth > 0 ||
        scenario.ack_batch > 1) {
      ReportTransportStats(ft);
    }
    if (!ft.completed || ft.exited_flag != 1) {
      rc = 1;
    }
    if (want_bare && bare.completed && ft.completed) {
      std::printf("-- comparison --\n");
      ReportF("normalized_performance", NormalizedPerformance(ft, bare), " (N'/N)");
      // One device-generic transparency check covering every attached
      // device's output (disk, console, NIC).
      ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace,
                                                  ft.issuer_chain());
      ReportLine("env_consistency", env.ok ? "ok" : "FAIL: " + env.detail);
      // Back-compat aliases for scripts grepping the per-device verdicts.
      ReportLine("disk_consistency", env.ok ? "ok" : "see env_consistency");
      ReportLine("console_consistency", env.ok ? "ok" : "see env_consistency");
      if (!env.ok) {
        rc = 1;
      }
    }
  }
  return rc;
}

}  // namespace cli
}  // namespace hbft
