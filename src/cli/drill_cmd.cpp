// `hbft_cli drill` — the end-to-end failover drill: run the workload bare for
// reference, run it replicated, kill the primary mid-run, and report the
// promotion-latency breakdown plus the environment-transparency verdict.
#include <cstdio>
#include <string>

#include "cli/commands.hpp"
#include "cli/options.hpp"
#include "sim/environment_observer.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace cli {

int DrillCommand(FlagSet& flags) {
  ScenarioFlags scenario;
  if (!ParseScenarioFlags(flags, &scenario) || !flags.Finish()) {
    return 2;
  }
  if (!scenario.has_failure) {
    // The drill's whole point is a primary kill; default to a boundary-phase
    // crash a few epochs in.
    scenario.options.failure.kind = FailurePlan::Kind::kAtPhase;
    scenario.options.failure.phase = FailPhase::kAfterSendTme;
    scenario.options.failure.phase_epoch = 3;
    scenario.failure_description = "at-phase after-send-tme epoch 3, target primary";
  }
  if (scenario.options.failure.target != FailurePlan::Target::kPrimary) {
    std::fprintf(stderr, "hbft_cli: drill kills the primary; use run for backup failures\n");
    return 2;
  }

  std::printf("== hbft failover drill ==\n");
  ReportLine("workload", WorkloadKindName(scenario.workload.kind));
  ReportLine("variant", VariantName(scenario.options.replication.variant));
  ReportLine("epoch_length", std::to_string(scenario.options.replication.epoch_length));
  ReportLine("kill", scenario.failure_description);

  ScenarioResult bare = RunBare(scenario.workload, scenario.options);
  if (!bare.completed || bare.exited_flag != 1) {
    std::fprintf(stderr, "hbft_cli: bare reference run failed\n");
    return 1;
  }
  ScenarioResult ft = RunReplicated(scenario.workload, scenario.options);

  ReportYesNo("completed", ft.completed);
  if (!ft.completed) {
    ReportYesNo("timed_out", ft.timed_out);
    ReportYesNo("deadlocked", ft.deadlocked);
    return 1;
  }
  ReportYesNo("promoted", ft.promoted);
  if (!ft.promoted) {
    std::fprintf(stderr,
                 "hbft_cli: the workload finished before the kill point was reached; "
                 "try an earlier --fail-epoch or --fail-time-ms\n");
    return 1;
  }

  // Promotion-latency breakdown. Detection is the channel-drain timeout the
  // failure detector waits after the last message from the dead primary; the
  // takeover remainder is P6/P7 processing (deliver buffered interrupts,
  // synthesise uncertain interrupts, switch to real devices).
  const double crash_ms = ft.crash_time.seconds() * 1e3;
  const double promo_ms = ft.promotion_time.seconds() * 1e3;
  const double latency_ms = promo_ms - crash_ms;
  const double detect_ms = scenario.options.costs.failure_detect_timeout.seconds() * 1e3;
  std::printf("-- promotion latency --\n");
  ReportF("crash_time_ms", crash_ms);
  ReportF("promotion_time_ms", promo_ms);
  ReportF("promotion_latency_ms", latency_ms);
  ReportF("  detection_timeout_ms", detect_ms);
  ReportF("  takeover_ms", latency_ms - detect_ms);
  ReportLine("uncertain_interrupts", std::to_string(ft.backup_stats.uncertain_synthesised));
  ReportLine("backup_io_redriven", std::to_string(ft.backup_stats.io_issued));
  ReportLine("backup_epochs", std::to_string(ft.backup_stats.epochs));

  std::printf("-- transparency --\n");
  bool ok = ft.exited_flag == 1;
  ReportLine("guest_exit",
             ft.exited_flag == 1 ? "clean" : "panic " + std::to_string(ft.panic_code));
  bool checksum_ok = ft.guest_checksum == bare.guest_checksum;
  ok = ok && checksum_ok;
  ReportLine("guest_checksum", std::to_string(ft.guest_checksum) + " (bare " +
                                   std::to_string(bare.guest_checksum) +
                                   (checksum_ok ? ", match)" : ", MISMATCH)"));
  ConsistencyResult disk =
      CheckDiskConsistency(bare.disk_trace, ft.disk_trace, ft.primary_id, ft.backup_id);
  ReportLine("disk_consistency", disk.ok ? "ok" : "FAIL: " + disk.detail);
  ConsistencyResult console =
      CheckConsoleConsistency(bare.console_trace, ft.console_trace, ft.primary_id, ft.backup_id);
  ReportLine("console_consistency", console.ok ? "ok" : "FAIL: " + console.detail);
  ok = ok && disk.ok && console.ok;
  ReportLine("verdict", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace cli
}  // namespace hbft
