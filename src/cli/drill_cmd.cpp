// `hbft_cli drill` — the end-to-end failover drill: run the workload bare for
// reference, run it replicated, kill the active replica mid-run (repeatedly,
// in cascading mode), and report the promotion-latency breakdown per stage
// plus the environment-transparency verdict.
//
// Cascading mode: with --backups=N and no explicit schedule, the drill kills
// the active replica N times — primary first, then each promoted backup —
// so a chain of N backups is driven through every takeover it can survive.
// Explicit schedules come from repeatable --fail= flags.
//
// Repair mode (--repair): after the schedule's kills, a fresh replica
// rejoins via live state transfer, and once the resync completes the (new)
// active replica is killed too — proving the rejoined backup can take over.
// The report adds the resync latency and transferred-byte breakdown.
#include <cstdio>
#include <string>

#include "cli/commands.hpp"
#include "cli/options.hpp"
#include "sim/environment_observer.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace cli {

int DrillCommand(FlagSet& flags) {
  ScenarioFlags scenario;
  const bool repair = flags.Has("repair");
  const bool user_iterations = flags.Has("iterations");
  double repair_delay_ms = 20.0;
  double refail_delay_ms = 10.0;
  if (auto v = flags.GetDouble("repair-delay-ms")) {
    repair_delay_ms = *v;
  }
  if (auto v = flags.GetDouble("refail-delay-ms")) {
    refail_delay_ms = *v;
  }
  if (!ParseScenarioFlags(flags, &scenario) || !flags.Finish()) {
    return 2;
  }
  if (repair && !user_iterations && scenario.workload.kind == WorkloadKind::kTxnLog) {
    // The default workload must outlive the resync (the transfer streams at
    // link speed while the guest keeps running).
    scenario.workload.iterations = 40;
  }
  if (!scenario.has_failure) {
    // The drill's whole point is killing the serving replica; default to a
    // boundary-phase crash a few epochs in, then (cascading mode) one more
    // kill per extra backup, each at an I/O phase of the promoted node.
    FailurePlan first;
    first.kind = FailurePlan::Kind::kAtPhase;
    first.phase = FailPhase::kAfterSendTme;
    first.phase_epoch = 3;
    scenario.failures.push_back(first);
    scenario.failure_description = "at-phase after-send-tme epoch 3";
    for (int i = 1; i < scenario.backups; ++i) {
      FailurePlan next;
      next.kind = FailurePlan::Kind::kAtPhase;
      next.phase = FailPhase::kAfterIoIssue;
      scenario.failures.push_back(next);
      scenario.failure_description += "; then at-phase after-io-issue";
    }
    scenario.has_failure = true;
  }
  if (repair) {
    // Restore redundancy after the last kill, then prove it: kill the active
    // replica again once the rejoined backup is online.
    FailurePlan rejoin;
    rejoin.kind = FailurePlan::Kind::kRejoin;
    rejoin.relative = true;
    rejoin.time = SimTime::Picos(static_cast<int64_t>(repair_delay_ms * 1e9));
    scenario.failures.push_back(rejoin);
    FailurePlan refail;
    refail.kind = FailurePlan::Kind::kAtTime;
    refail.after_resync = true;
    refail.time = SimTime::Picos(static_cast<int64_t>(refail_delay_ms * 1e9));
    scenario.failures.push_back(refail);
    char repair_desc[96];
    std::snprintf(repair_desc, sizeof(repair_desc),
                  "; then rejoin +%g ms; then kill +%g ms after resync", repair_delay_ms,
                  refail_delay_ms);
    scenario.failure_description += repair_desc;
  }
  for (const FailurePlan& plan : scenario.failures) {
    if (plan.kind != FailurePlan::Kind::kRejoin &&
        plan.target != FailurePlan::Target::kActive) {
      std::fprintf(stderr,
                   "hbft_cli: drill kills the serving replica; use run for standing-backup "
                   "failures\n");
      return 2;
    }
  }

  std::printf("== hbft failover drill ==\n");
  ReportLine("workload", WorkloadKindName(scenario.workload.kind));
  ReportLine("variant", VariantName(scenario.variant));
  ReportLine("epoch_length", std::to_string(scenario.epoch_length));
  ReportLine("backups", std::to_string(scenario.backups));
  ReportLine("kill", scenario.failure_description);

  ScenarioResult bare = scenario.Bare().Run();
  if (!bare.completed || bare.exited_flag != 1) {
    std::fprintf(stderr, "hbft_cli: bare reference run failed\n");
    return 1;
  }
  ScenarioResult ft = scenario.Replicated().Run();

  ReportYesNo("completed", ft.completed);
  if (!ft.completed) {
    ReportYesNo("timed_out", ft.timed_out);
    ReportYesNo("deadlocked", ft.deadlocked);
    ReportYesNo("service_lost", ft.service_lost);
    return 1;
  }
  ReportYesNo("promoted", ft.promoted);
  if (!ft.promoted) {
    std::fprintf(stderr,
                 "hbft_cli: the workload finished before the kill point was reached; "
                 "try an earlier --fail-epoch or --fail-time-ms\n");
    return 1;
  }

  // Promotion-latency breakdown, one stage per takeover. Detection is the
  // channel-drain timeout the failure detector waits after the last message
  // from the dead replica; the takeover remainder is P6/P7 processing
  // (deliver buffered interrupts, synthesise uncertain interrupts, switch to
  // real devices).
  const double detect_ms = CostModel{}.failure_detect_timeout.seconds() * 1e3;
  std::printf("-- promotion latency --\n");
  size_t stage = 0;
  for (size_t i = 1; i < ft.nodes.size(); ++i) {
    if (!ft.nodes[i].promoted || stage >= ft.crash_times.size()) {
      break;
    }
    const double crash_ms = ft.crash_times[stage].seconds() * 1e3;
    const double promo_ms = ft.nodes[i].promotion_time.seconds() * 1e3;
    const double latency_ms = promo_ms - crash_ms;
    const std::string suffix = stage == 0 ? std::string() : "_stage" + std::to_string(stage + 1);
    ReportF(("crash_time_ms" + suffix).c_str(), crash_ms);
    ReportF(("promotion_time_ms" + suffix).c_str(), promo_ms);
    ReportF(("promotion_latency_ms" + suffix).c_str(), latency_ms);
    ReportF(("  detection_timeout_ms" + suffix).c_str(), detect_ms);
    ReportF(("  takeover_ms" + suffix).c_str(), latency_ms - detect_ms);
    ReportLine(("uncertain_interrupts" + suffix).c_str(),
               std::to_string(ft.backup_stats(i - 1).uncertain_synthesised));
    ReportLine(("backup_io_redriven" + suffix).c_str(),
               std::to_string(ft.backup_stats(i - 1).io_issued));
    ReportLine(("backup_epochs" + suffix).c_str(), std::to_string(ft.backup_stats(i - 1).epochs));
    ++stage;
  }
  ReportLine("takeovers", std::to_string(stage));

  bool repair_ok = true;
  if (!ft.resyncs.empty()) {
    // Repair breakdown: transfer latency from rejoin to the joiner coming
    // online, and what it cost the wire.
    std::printf("-- repair --\n");
    size_t resync_stage = 0;
    for (const ResyncReport& resync : ft.resyncs) {
      const std::string suffix =
          resync_stage == 0 ? std::string() : "_" + std::to_string(resync_stage + 1);
      ReportYesNo("resync_completed" + suffix, resync.completed);
      repair_ok = repair_ok && resync.completed;
      if (resync.completed) {
        ReportF("resync_latency_ms" + suffix, (resync.join_time - resync.start).seconds() * 1e3);
        ReportF("  resync_cut_ms" + suffix, (resync.cut_time - resync.start).seconds() * 1e3);
        ReportLine("resync_bytes" + suffix, std::to_string(resync.bytes));
        ReportLine("  resync_page_chunks" + suffix, std::to_string(resync.page_chunks));
        ReportLine("  resync_zero_runs" + suffix, std::to_string(resync.zero_run_chunks));
        ReportLine("  resync_delta_pages" + suffix, std::to_string(resync.delta_pages));
        ReportLine("  resync_rounds" + suffix, std::to_string(resync.rounds));
        ReportLine("resync_join_epoch" + suffix, std::to_string(resync.join_epoch));
      }
      ++resync_stage;
    }
  }

  std::printf("-- transparency --\n");
  bool ok = ft.exited_flag == 1;
  ReportLine("guest_exit",
             ft.exited_flag == 1 ? "clean" : "panic " + std::to_string(ft.panic_code));
  bool checksum_ok = ft.guest_checksum == bare.guest_checksum;
  ok = ok && checksum_ok;
  ReportLine("guest_checksum", std::to_string(ft.guest_checksum) + " (bare " +
                                   std::to_string(bare.guest_checksum) +
                                   (checksum_ok ? ", match)" : ", MISMATCH)"));
  ConsistencyResult env = CheckEnvConsistency(bare.env_trace, ft.env_trace, ft.issuer_chain());
  ReportLine("env_consistency", env.ok ? "ok" : "FAIL: " + env.detail);
  ok = ok && env.ok && repair_ok;
  ReportLine("verdict", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace cli
}  // namespace hbft
