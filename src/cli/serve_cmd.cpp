// `hbft_cli serve` — front a protected guest with a real TCP listener, in
// one process (the simulated chain) or two (--role=primary / --role=backup
// with the replication stream over a real socket). The final report mirrors
// `run --json`'s shape: an outcome block plus per-channel transport counters.
#include <cstdio>
#include <string>

#include "cli/commands.hpp"
#include "cli/json.hpp"
#include "cli/options.hpp"
#include "serve/server.hpp"

namespace hbft {
namespace cli {

namespace {

JsonValue ServeJson(const serve::ServeConfig& config, const serve::ServeReport& report) {
  JsonValue channels = JsonValue::Array();
  for (const serve::ServeReport::ChannelReport& ch : report.channels) {
    channels.Push(JsonValue::Object()
                      .Set("name", ch.name)
                      .Set("mode", ch.mode)
                      .Set("messages_enqueued", ch.counters.messages_enqueued)
                      .Set("wire_sends", ch.counters.wire_sends)
                      .Set("retransmits", ch.counters.retransmits)
                      .Set("rx_discards", ch.counters.rx_duplicates + ch.counters.rx_gaps)
                      .Set("queue_drops", ch.counters.queue_drops)
                      .Set("wire_decode_errors", ch.counters.wire_decode_errors)
                      .Set("bytes_on_wire", ch.counters.bytes_on_wire)
                      .Set("bytes_delivered", ch.counters.bytes_delivered));
  }
  return JsonValue::Object()
      .Set("command", "serve")
      .Set("role", report.role)
      .Set("workload", "net-echo")
      .Set("port", static_cast<uint64_t>(config.port))
      .Set("epoch_length", config.epoch_length)
      .Set("seed", config.seed)
      .Set("completed", report.ok)
      .Set("stop_reason", report.stop_reason)
      .Set("runtime_s", report.runtime_s)
      .Set("connections", report.connections)
      .Set("requests", report.requests)
      .Set("responses", report.responses)
      .Set("responses_unroutable", report.responses_unroutable)
      .Set("rejected_frames", report.rejected_frames)
      .Set("client_bytes_in", report.client_bytes_in)
      .Set("client_bytes_out", report.client_bytes_out)
      .Set("failovers", report.failovers)
      .Set("promoted", report.promoted)
      .Set("solo", report.solo)
      .Set("promotion_time_ms", report.promotion_latency_ms)
      .Set("repl_bytes_in", report.repl_bytes_in)
      .Set("repl_bytes_out", report.repl_bytes_out)
      .Set("epochs", report.epochs)
      .Set("messages_sent", report.messages_sent)
      .Set("acks_received", report.acks_received)
      .Set("uncertain_synthesised", report.uncertain_synthesised)
      .Set("channels", std::move(channels));
}

void PrintServeReport(const serve::ServeReport& report) {
  std::printf("== hbft serve report ==\n");
  ReportLine("role", report.role);
  ReportYesNo("completed", report.ok);
  ReportLine("stop_reason", report.stop_reason);
  ReportF("runtime_s", report.runtime_s);
  ReportLine("connections", std::to_string(report.connections));
  ReportLine("requests", std::to_string(report.requests));
  ReportLine("responses", std::to_string(report.responses));
  if (report.rejected_frames > 0) {
    ReportLine("rejected_frames", std::to_string(report.rejected_frames));
  }
  ReportLine("client_bytes_in", std::to_string(report.client_bytes_in));
  ReportLine("client_bytes_out", std::to_string(report.client_bytes_out));
  ReportLine("failovers", std::to_string(report.failovers));
  ReportYesNo("promoted", report.promoted);
  if (report.promoted) {
    ReportF("promotion_time_ms", report.promotion_latency_ms);
  }
  if (report.solo) {
    ReportYesNo("solo", true);
  }
  ReportLine("epochs", std::to_string(report.epochs));
  ReportLine("messages_sent", std::to_string(report.messages_sent));
  ReportLine("acks_received", std::to_string(report.acks_received));
  if (report.repl_bytes_in + report.repl_bytes_out > 0) {
    ReportLine("repl_bytes_in", std::to_string(report.repl_bytes_in));
    ReportLine("repl_bytes_out", std::to_string(report.repl_bytes_out));
  }
  for (const serve::ServeReport::ChannelReport& ch : report.channels) {
    ReportLine("channel " + ch.name + " (" + ch.mode + ")",
               "sent=" + std::to_string(ch.counters.wire_sends) +
                   " retx=" + std::to_string(ch.counters.retransmits) +
                   " bytes=" + std::to_string(ch.counters.bytes_on_wire));
  }
}

}  // namespace

int ServeCommand(FlagSet& flags) {
  serve::ServeConfig config;
  const bool json = flags.Has("json");

  std::string role = flags.GetString("role", "single");
  if (role == "single") {
    config.role = serve::ServeRole::kSingle;
  } else if (role == "primary") {
    config.role = serve::ServeRole::kPrimary;
  } else if (role == "backup") {
    config.role = serve::ServeRole::kBackup;
  } else {
    std::fprintf(stderr, "hbft_cli: unknown --role '%s' (single, primary, backup)\n",
                 role.c_str());
    return 2;
  }

  config.port = static_cast<uint16_t>(flags.GetU64("port").value_or(7070));
  config.repl_port = static_cast<uint16_t>(flags.GetU64("repl-port").value_or(7071));
  config.peer_host = flags.GetString("peer", "127.0.0.1");
  config.seed = flags.GetU64("seed").value_or(42);
  config.epoch_length = flags.GetU64("epoch-length").value_or(4096);
  config.backups = static_cast<int>(flags.GetU64("backups").value_or(1));
  config.duration_ms = flags.GetU64("duration-ms").value_or(0);
  config.max_requests = flags.GetU64("max-requests").value_or(0);
  config.backup_wait_ms = flags.GetU64("backup-wait-ms").value_or(3000);

  if (flags.Has("variant")) {
    std::string variant = flags.GetString("variant", "new");
    if (variant != "new") {
      // Responses are released at the NIC TX latch, which only the revised
      // protocol gates on all-acked; under the original variant (especially
      // pipelined) a released response could outrun the backup's state.
      std::fprintf(stderr,
                   "hbft_cli: serve requires --variant=new — output commit at the socket "
                   "boundary is the serving contract (see docs/PROTOCOL.md)\n");
      return 2;
    }
  }

  for (const std::string& spec : flags.GetList("fail")) {
    FailurePlan plan;
    std::string description;
    if (!ParseFailSpec(spec, &plan, &description)) {
      return 2;
    }
    config.failures.push_back(plan);
    config.failure_description =
        config.failure_description == "none" ? description
                                             : config.failure_description + "; " + description;
  }
  if (!config.failures.empty() && config.role != serve::ServeRole::kSingle) {
    std::fprintf(stderr,
                 "hbft_cli: --fail applies to --role=single only (multi-process failures "
                 "are real: kill the primary process)\n");
    return 2;
  }
  if (!flags.Finish()) {
    return 2;
  }
  if (config.backups < 1) {
    std::fprintf(stderr, "hbft_cli: --backups must be at least 1\n");
    return 2;
  }

  serve::ServeReport report;
  int rc = RunServe(config, &report);
  if (!report.error.empty()) {
    std::fprintf(stderr, "hbft_cli: serve failed: %s\n", report.error.c_str());
  }
  if (json) {
    std::fputs(ServeJson(config, report).Dump().c_str(), stdout);
  } else {
    PrintServeReport(report);
  }
  return rc;
}

}  // namespace cli
}  // namespace hbft
