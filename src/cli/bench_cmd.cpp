// `hbft_cli bench` — regenerate the paper's Table 1 and Figures 2-4 numbers
// and write them as JSON artifacts (default under bench/), giving future
// changes a perf trajectory to diff against.
//
// --quick shrinks the workloads and epoch-length sweep so the artifact shape
// stays identical while the whole run fits in a smoke test.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench/bench_util.hpp"
#include "cli/commands.hpp"
#include "cli/json.hpp"
#include "cli/options.hpp"
#include "fleet/fleet.hpp"
#include "perf/models.hpp"
#include "sim/scenario.hpp"

namespace hbft {
namespace cli {

namespace {

// Artifact names accepted by --only, in emission order. Each matches the
// basename of the JSON file it regenerates, so the dev loop reads as
// `hbft_cli bench --only=fig7_fleet && tools/diff_bench.py bench /tmp/regen`.
const char* const kArtifacts[] = {"table1",           "fig2_cpu",        "fig3_io",
                                  "fig4_faster_comm", "fig4_lossy_link", "fig5_resync",
                                  "fig6_throughput",  "fig7_fleet",      "fig8_parallel"};

struct BenchConfig {
  bool quick = false;
  std::string only;  // Empty = regenerate every artifact.
  std::string out_dir = "bench";
  uint32_t cpu_iterations = 26000;  // ~1/100 of the paper's CPU workload.
  uint32_t io_operations = 64;      // vs the paper's 2048.
  int backups = 1;                  // Chain length; 1 = the paper's pair.
  std::vector<uint64_t> table_els = {1024, 2048, 4096, 8192};
  std::vector<uint64_t> sweep_els = {1024, 2048, 4096, 8192, 16384, 32768};
};

enum class Link { kEthernet10, kAtm155 };

// Runs (and memoises) one replicated measurement. The table and figure
// sweeps overlap heavily — fig2's Ethernet CPU points are table1's, fig4
// repeats them again — so identical (workload, EL, variant, link)
// configurations simulate once. Failed measurements are counted: the
// artifacts still get written (with np = null) but the command exits
// non-zero so CI cannot stay green on a corrupt perf trajectory.
class Measurer {
 public:
  Measurer(const WorkloadSpec* specs, const ScenarioResult* bares, int backups)
      : specs_(specs), bares_(bares), backups_(backups) {}

  // `workload` indexes the shared specs/bares arrays (0 cpu, 1 write, 2 read).
  double Np(int workload, uint64_t epoch_len, ProtocolVariant variant,
            Link link = Link::kEthernet10) {
    auto key = std::make_tuple(workload, epoch_len, static_cast<int>(variant),
                               static_cast<int>(link));
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      return it->second;
    }
    ScenarioResult ft =
        Scenario::Replicated(specs_[workload])
            .Backups(backups_)
            .Epoch(epoch_len)
            .Variant(variant)
            .Costs(link == Link::kAtm155 ? CostModel::WithAtmLink() : CostModel::PaperCalibrated())
            .Run();
    double np = -1.0;
    if (!ft.completed || ft.exited_flag != 1) {
      std::fprintf(stderr, "hbft_cli: bench measurement failed (%s, EL=%llu)\n",
                   WorkloadKindName(specs_[workload].kind),
                   static_cast<unsigned long long>(epoch_len));
      ++failures_;
    } else {
      np = NormalizedPerformance(ft, bares_[workload]);
    }
    cache_[key] = np;
    return np;
  }

  int failures() const { return failures_; }

 private:
  const WorkloadSpec* specs_;
  const ScenarioResult* bares_;
  int backups_;
  std::map<std::tuple<int, uint64_t, int, int>, double> cache_;
  int failures_ = 0;
};

// Paper-measured reference values at EL = 1K/2K/4K/8K (Table 1), or a
// negative sentinel when the paper reports no number for that point.
double PaperNp(WorkloadKind kind, ProtocolVariant variant, uint64_t el) {
  static const uint64_t kEls[] = {1024, 2048, 4096, 8192};
  static const double kCpu[2][4] = {{22.24, 11.83, 6.50, 3.83}, {11.67, 4.49, 3.21, 2.20}};
  static const double kWrite[2][4] = {{1.87, 1.71, 1.67, 1.64}, {1.70, 1.66, 1.66, 1.64}};
  static const double kRead[2][4] = {{2.32, 2.10, 2.03, 1.98}, {1.92, 1.76, 1.72, 1.70}};
  int v = variant == ProtocolVariant::kOriginal ? 0 : 1;
  for (int i = 0; i < 4; ++i) {
    if (kEls[i] != el) {
      continue;
    }
    switch (kind) {
      case WorkloadKind::kCpu:
        return kCpu[v][i];
      case WorkloadKind::kDiskWrite:
        return kWrite[v][i];
      case WorkloadKind::kDiskRead:
        return kRead[v][i];
      default:
        return -1.0;
    }
  }
  return -1.0;
}

JsonValue MaybeNum(double v) { return v > 0 ? JsonValue(v) : JsonValue(); }

// The artifact envelope every emitter shares: bench name + quick flag (+
// any emitter-specific top-level keys) + rows, written to
// `<out-dir>/<file>`. Key order matters — the committed baselines are
// byte-compared in CI — so extras land between "quick" and "rows", exactly
// where the emitters always put them.
bool WriteBenchDoc(const BenchConfig& cfg, const char* bench_name, const char* file,
                   JsonValue rows, const std::function<void(JsonValue*)>& extras = nullptr) {
  JsonValue doc = JsonValue::Object().Set("bench", bench_name).Set("quick", cfg.quick);
  if (extras) {
    extras(&doc);
  }
  doc.Set("rows", std::move(rows));
  return WriteJsonFile(cfg.out_dir + "/" + file, doc);
}

bool EmitTable1(const BenchConfig& cfg, const WorkloadSpec specs[3], Measurer& m) {
  std::printf("bench: table1 (old vs new protocol, %zu epoch lengths)\n", cfg.table_els.size());
  JsonValue rows = JsonValue::Array();
  for (uint64_t el : cfg.table_els) {
    for (int w = 0; w < 3; ++w) {
      for (ProtocolVariant variant : {ProtocolVariant::kOriginal, ProtocolVariant::kRevised}) {
        rows.Push(JsonValue::Object()
                      .Set("epoch_length", el)
                      .Set("workload", WorkloadKindName(specs[w].kind))
                      .Set("variant", VariantName(variant))
                      .Set("np", MaybeNum(m.Np(w, el, variant)))
                      .Set("np_paper", MaybeNum(PaperNp(specs[w].kind, variant, el))));
      }
    }
  }
  return WriteBenchDoc(cfg, "table1_protocol_comparison", "table1.json", std::move(rows));
}

bool EmitFig2(const BenchConfig& cfg, const ScenarioResult& bare, Measurer& m) {
  std::printf("bench: fig2 (CPU workload, NP vs epoch length)\n");
  JsonValue rows = JsonValue::Array();
  for (uint64_t el : cfg.sweep_els) {
    rows.Push(JsonValue::Object()
                  .Set("epoch_length", el)
                  .Set("np", MaybeNum(m.Np(0, el, ProtocolVariant::kOriginal)))
                  .Set("np_model",
                       ModelNpCpu(static_cast<double>(el), false, ModelLink::kEthernet10))
                  .Set("np_paper", MaybeNum(PaperNp(WorkloadKind::kCpu,
                                                    ProtocolVariant::kOriginal, el))));
  }
  return WriteBenchDoc(cfg, "fig2_cpu_workload", "fig2_cpu.json", std::move(rows),
                       [&bare](JsonValue* doc) {
                         doc->Set("workload", "cpu")
                             .Set("bare_runtime_s", bare.completion_time.seconds());
                       });
}

bool EmitFig3(const BenchConfig& cfg, Measurer& m) {
  std::printf("bench: fig3 (I/O workloads, NP vs epoch length)\n");
  JsonValue rows = JsonValue::Array();
  for (uint64_t el : cfg.sweep_els) {
    // Workload indices as ordered by BenchCommand: 1 = write, 2 = read.
    rows.Push(JsonValue::Object()
                  .Set("epoch_length", el)
                  .Set("workload", "diskwrite")
                  .Set("np", MaybeNum(m.Np(1, el, ProtocolVariant::kOriginal)))
                  .Set("np_model", ModelNpWrite(static_cast<double>(el), false))
                  .Set("np_paper", MaybeNum(PaperNp(WorkloadKind::kDiskWrite,
                                                    ProtocolVariant::kOriginal, el))));
    rows.Push(JsonValue::Object()
                  .Set("epoch_length", el)
                  .Set("workload", "diskread")
                  .Set("np", MaybeNum(m.Np(2, el, ProtocolVariant::kOriginal)))
                  .Set("np_model",
                       ModelNpRead(static_cast<double>(el), false, ModelLink::kEthernet10))
                  .Set("np_paper", MaybeNum(PaperNp(WorkloadKind::kDiskRead,
                                                    ProtocolVariant::kOriginal, el))));
  }
  return WriteBenchDoc(cfg, "fig3_io_workloads", "fig3_io.json", std::move(rows));
}

// Fig 4 variant for the modeled transport: the disk-read workload (chatty —
// every 8K block is the paper's 9 frames) over the Ethernet link, ideal vs
// lossy wires. Reports N'/N alongside the per-run transport counters:
// retransmits, wire discards, queue pressure, bytes on wire, and effective
// goodput — the lossy rows must show retransmits > 0 and goodput below the
// ideal wire's.
bool EmitFig4Lossy(const BenchConfig& cfg, const WorkloadSpec specs[3],
                   const ScenarioResult bares[3], int* failures) {
  std::printf("bench: fig4-lossy (ideal vs lossy link, disk-read workload)\n");
  const double kLossPoints[] = {0.0, 0.02, 0.05};
  const uint64_t el = 4096;
  JsonValue rows = JsonValue::Array();
  double ideal_goodput = 0.0;
  for (double loss : kLossPoints) {
    ScenarioResult ft = Scenario::Replicated(specs[2])
                            .Backups(cfg.backups)
                            .Epoch(el)
                            .LinkFaults(LinkFaults::SymmetricLoss(loss))
                            .Run();
    const bool measured = ft.completed && ft.exited_flag == 1;
    if (!measured) {
      std::fprintf(stderr, "hbft_cli: bench fig4-lossy measurement failed (loss=%g)\n", loss);
      ++*failures;
      continue;  // Counters from an aborted run would corrupt the artifact.
    }
    double np = NormalizedPerformance(ft, bares[2]);
    double goodput_mbps = ft.GoodputBps() / 1e6;
    if (loss == 0.0) {
      ideal_goodput = goodput_mbps;
    }
    // Per-channel counters, summed over the mesh.
    uint64_t wire_sends = 0, rx_discards = 0, queue_hwm = 0, queue_drops = 0;
    for (const ScenarioResult::ChannelReport& ch : ft.channels) {
      wire_sends += ch.counters.wire_sends;
      rx_discards += ch.counters.rx_duplicates + ch.counters.rx_gaps;
      queue_hwm = std::max(queue_hwm, ch.counters.queue_high_water);
      queue_drops += ch.counters.queue_drops;
    }
    rows.Push(JsonValue::Object()
                  .Set("epoch_length", el)
                  .Set("workload", "diskread")
                  .Set("link", "ethernet10")
                  .Set("loss", loss)
                  .Set("reorder", loss)
                  .Set("np", MaybeNum(np))
                  .Set("retransmits", ft.TotalRetransmits())
                  .Set("wire_sends", wire_sends)
                  .Set("rx_discards", rx_discards)
                  .Set("queue_drops", queue_drops)
                  .Set("queue_high_water", queue_hwm)
                  .Set("bytes_on_wire", ft.TotalWireBytes())
                  .Set("bytes_delivered", ft.TotalDeliveredBytes())
                  .Set("goodput_mbps", goodput_mbps)
                  .Set("goodput_vs_ideal",
                       ideal_goodput > 0.0 ? JsonValue(goodput_mbps / ideal_goodput)
                                           : JsonValue()));
  }
  return WriteBenchDoc(cfg, "fig4_lossy_link", "fig4_lossy_link.json", std::move(rows));
}

bool EmitFig4(const BenchConfig& cfg, Measurer& m) {
  std::printf("bench: fig4 (Ethernet 10 vs ATM 155)\n");
  JsonValue rows = JsonValue::Array();
  for (uint64_t el : cfg.sweep_els) {
    struct LinkCase {
      const char* name;
      Link link;
      ModelLink model_link;
    };
    const LinkCase cases[] = {
        {"ethernet10", Link::kEthernet10, ModelLink::kEthernet10},
        {"atm155", Link::kAtm155, ModelLink::kAtm155},
    };
    for (const LinkCase& link : cases) {
      rows.Push(JsonValue::Object()
                    .Set("epoch_length", el)
                    .Set("workload", "cpu")
                    .Set("link", link.name)
                    .Set("np", MaybeNum(m.Np(0, el, ProtocolVariant::kOriginal, link.link)))
                    .Set("np_model", ModelNpCpu(static_cast<double>(el), false, link.model_link)));
    }
  }
  return WriteBenchDoc(cfg, "fig4_faster_comm", "fig4_faster_comm.json", std::move(rows));
}

// Fig 5 (this reproduction's extension) — repair: resync latency and
// transferred bytes for a fresh backup rejoining a healthy chain via live
// state transfer, vs memory size (zero-run elision makes idle RAM nearly
// free), vs workload dirty rate (disk DMA forces delta rounds), and over an
// ideal vs a 5% lossy wire.
bool EmitFig5(const BenchConfig& cfg, int* failures) {
  std::printf("bench: fig5 (backup resync via live state transfer)\n");
  JsonValue rows = JsonValue::Array();
  // The case sweep is shared with bench_fig5_resync (bench/bench_util.hpp)
  // so this artifact and the printed table always measure the same runs.
  for (const ResyncCase& c : ResyncBenchCases(cfg.quick)) {
    ScenarioResult ft = RunResyncCase(c);
    const bool measured = ft.completed && ft.exited_flag == 1 && ft.resyncs.size() == 1 &&
                          ft.resyncs[0].completed;
    if (!measured) {
      std::fprintf(stderr, "hbft_cli: bench fig5 measurement failed (%s, %s, ram=%u, loss=%g)\n",
                   c.group, c.workload, c.ram_mb, c.loss);
      ++*failures;
      continue;
    }
    const ResyncReport& resync = ft.resyncs[0];
    rows.Push(JsonValue::Object()
                  .Set("group", c.group)
                  .Set("workload", c.workload)
                  .Set("ram_mb", static_cast<uint64_t>(c.ram_mb))
                  .Set("link", "ethernet10")
                  .Set("loss", c.loss)
                  .Set("reorder", c.loss)
                  .Set("resync_ms", (resync.join_time - resync.start).seconds() * 1e3)
                  .Set("cut_ms", (resync.cut_time - resync.start).seconds() * 1e3)
                  .Set("bytes", resync.bytes)
                  .Set("full_pages", resync.full_pages)
                  .Set("page_chunks", resync.page_chunks)
                  .Set("zero_run_chunks", resync.zero_run_chunks)
                  .Set("delta_pages", resync.delta_pages)
                  .Set("rounds", resync.rounds)
                  .Set("join_epoch", resync.join_epoch)
                  .Set("retransmits", ft.TotalRetransmits()));
  }
  return WriteBenchDoc(cfg, "fig5_resync", "fig5_resync.json", std::move(rows));
}

// Fig 6 (this reproduction's extension) — interpreter throughput: the cached
// (predecoded-superblock) dispatch engine vs the slow fetch-decode path, on
// a bare-machine CPU kernel (dispatch cost isolated) and on the full CPU
// workload scenario. `instructions`, `checksum`, and the tcache counters are
// deterministic and byte-diffed in CI; the host-clock fields (host_ms, mips,
// wall_ms, speedup) vary by machine and are stripped before diffing
// (tools/diff_bench.py), which instead enforces a speedup floor.
bool EmitFig6(const BenchConfig& cfg, int* failures) {
  std::printf("bench: fig6 (interpreter throughput, slow vs cached dispatch)\n");
  const uint32_t kernel_iters = cfg.quick ? 20000 : 200000;
  const uint32_t scenario_iters = cfg.cpu_iterations;
  JsonValue rows = JsonValue::Array();

  InterpThroughput kernel[2];
  ScenarioThroughput e2e[2];
  const InterpMode modes[2] = {InterpMode::kSlow, InterpMode::kCached};
  const char* mode_names[2] = {"slow", "cached"};
  for (int i = 0; i < 2; ++i) {
    kernel[i] = MeasureInterpThroughput(modes[i], kernel_iters);
    e2e[i] = MeasureScenarioThroughput(modes[i], scenario_iters);
    if (kernel[i].instructions == 0 || !e2e[i].ok) {
      std::fprintf(stderr, "hbft_cli: bench fig6 measurement failed (%s)\n", mode_names[i]);
      ++*failures;
    }
  }
  if (kernel[0].instructions != kernel[1].instructions ||
      kernel[0].checksum != kernel[1].checksum ||
      e2e[0].guest_checksum != e2e[1].guest_checksum || e2e[0].sim_ms != e2e[1].sim_ms) {
    // The engines must do identical guest work or the speedup is meaningless.
    std::fprintf(stderr, "hbft_cli: bench fig6 dispatch modes diverged\n");
    ++*failures;
  }

  for (int i = 0; i < 2; ++i) {
    JsonValue row = JsonValue::Object()
                        .Set("workload", "cpu-kernel")
                        .Set("mode", mode_names[i])
                        .Set("instructions", kernel[i].instructions)
                        .Set("checksum", static_cast<uint64_t>(kernel[i].checksum));
    if (modes[i] == InterpMode::kCached) {
      const TranslationCache::Stats& tc = kernel[i].tcache;
      row.Set("tcache_builds", tc.builds)
          .Set("tcache_hits", tc.hits)
          .Set("tcache_misses", tc.misses)
          .Set("tcache_stale", tc.stale);
    }
    row.Set("host_ms", kernel[i].host_ms).Set("mips", kernel[i].mips);
    if (modes[i] == InterpMode::kCached && kernel[i].host_ms > 0.0) {
      row.Set("speedup", kernel[0].host_ms / kernel[i].host_ms);
    }
    rows.Push(std::move(row));
  }
  for (int i = 0; i < 2; ++i) {
    JsonValue row = JsonValue::Object()
                        .Set("workload", "cpu-e2e")
                        .Set("mode", mode_names[i])
                        .Set("iterations", static_cast<uint64_t>(scenario_iters))
                        .Set("sim_ms", e2e[i].sim_ms)
                        .Set("guest_checksum", static_cast<uint64_t>(e2e[i].guest_checksum))
                        .Set("wall_ms", e2e[i].wall_ms);
    if (modes[i] == InterpMode::kCached && e2e[i].wall_ms > 0.0) {
      row.Set("speedup", e2e[0].wall_ms / e2e[i].wall_ms);
    }
    rows.Push(std::move(row));
  }
  return WriteBenchDoc(cfg, "fig6_interp_throughput", "fig6_throughput.json", std::move(rows));
}

// Fig 7 (this reproduction's extension) — fleet: availability and request
// latency percentiles for a fleet of protected chains under host failure
// storms of increasing width. Placement is anti-affinity, so every affected
// chain loses exactly one replica per storm and must fail over (and repair)
// without losing service. Everything except `wall_ms` is simulated-time and
// byte-diffed in CI; diff_bench.py additionally enforces sanity floors
// (availability <= 1, p50 <= p99 <= p999) on the regenerated rows.
bool EmitFig7(const BenchConfig& cfg, int* failures) {
  std::printf("bench: fig7 (fleet availability + latency vs host failure storm)\n");
  const size_t chains = cfg.quick ? 8 : 32;
  const size_t hosts = 8;
  const uint64_t requests = cfg.quick ? 4 : 8;
  const size_t storm_widths[] = {0, 1, 2, 4};
  JsonValue rows = JsonValue::Array();
  for (size_t width : storm_widths) {
    FleetConfig fc;
    fc.chains = chains;
    fc.hosts = hosts;
    fc.backups = 1;
    fc.traffic.requests_per_chain = requests;
    // The storm lands mid-traffic (arrivals start at 100ms, 20ms apart) so
    // the latency tail actually contains failover-delayed requests.
    for (size_t h : StormHosts(hosts, width)) {
      fc.host_failures.push_back(HostFailure{h, SimTime::Millis(120)});
    }
    // The per-chain env-consistency check doubles the run for no extra data
    // here; the fleet tests exercise it.
    fc.verify = false;
    // hbft-lint: allow(wall-clock) — host-side bench timing, never feeds the simulation.
    auto t0 = std::chrono::steady_clock::now();
    FleetResult r = Fleet(fc).Run();
    double wall_ms =
        // hbft-lint: allow(wall-clock) — host-side bench timing, never feeds the simulation.
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    if (r.chains_lost != 0 || r.chains_completed != chains) {
      std::fprintf(stderr, "hbft_cli: bench fig7 measurement failed (storm=%zu)\n", width);
      ++*failures;
      continue;
    }
    rows.Push(JsonValue::Object()
                  .Set("chains", static_cast<uint64_t>(chains))
                  .Set("hosts", static_cast<uint64_t>(hosts))
                  .Set("placement", "anti-affinity")
                  .Set("hosts_failed", static_cast<uint64_t>(width))
                  .Set("requests_total", r.requests_total)
                  .Set("requests_served", r.requests_served)
                  .Set("availability", r.availability)
                  .Set("slo_attainment", r.slo_attainment)
                  .Set("p50_ms", r.latency_ms.p50)
                  .Set("p99_ms", r.latency_ms.p99)
                  .Set("p999_ms", r.latency_ms.p999)
                  .Set("max_ms", r.latency_ms.max)
                  .Set("failovers", static_cast<uint64_t>(r.failovers))
                  .Set("repairs", static_cast<uint64_t>(r.repairs))
                  .Set("fingerprint", r.fingerprint)
                  .Set("wall_ms", wall_ms));
  }
  return WriteBenchDoc(cfg, "fig7_fleet", "fig7_fleet.json", std::move(rows));
}

// Fig 8 (this reproduction's extension) — parallel fleet rounds: the fig7
// storm scenario at increasing --threads, proving the headline guarantee
// (bit-identical fingerprints at every thread count — the emitter fails the
// bench if they diverge) and recording the wall-clock scaling. The
// deterministic fields (availability, fingerprint, request counts) are
// byte-diffed in CI; wall_ms / speedup / host_cpus are host-dependent and
// stripped by tools/diff_bench.py, which instead enforces the speedup floor
// (>= 2x at 4 threads on the large row) whenever the regenerating machine
// actually has >= 4 CPUs (host_cpus says so).
bool EmitFig8(const BenchConfig& cfg, int* failures) {
  std::printf("bench: fig8 (parallel fleet rounds, wall-clock scaling)\n");
  struct FleetCase {
    const char* name;
    size_t chains;
    size_t hosts;
    size_t storm;
  };
  const FleetCase cases[] = {
      {"small", cfg.quick ? size_t{4} : size_t{64}, cfg.quick ? size_t{4} : size_t{8}, 1},
      {"large", cfg.quick ? size_t{8} : size_t{256}, cfg.quick ? size_t{8} : size_t{32},
       cfg.quick ? size_t{2} : size_t{4}},
  };
  const uint64_t host_cpus = std::thread::hardware_concurrency();
  JsonValue rows = JsonValue::Array();
  for (const FleetCase& fleet_case : cases) {
    double serial_wall_ms = 0.0;
    uint64_t serial_fingerprint = 0;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      FleetConfig fc;
      fc.chains = fleet_case.chains;
      fc.hosts = fleet_case.hosts;
      fc.backups = 1;
      fc.traffic.requests_per_chain = cfg.quick ? 4 : 8;
      for (size_t h : StormHosts(fleet_case.hosts, fleet_case.storm)) {
        fc.host_failures.push_back(HostFailure{h, SimTime::Millis(120)});
      }
      fc.verify = false;
      fc.threads = threads;
      // hbft-lint: allow(wall-clock) — host-side bench timing, never feeds the simulation.
      auto t0 = std::chrono::steady_clock::now();
      FleetResult r = Fleet(fc).Run();
      double wall_ms =
          // hbft-lint: allow(wall-clock) — host-side bench timing, never feeds the simulation.
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
      if (r.chains_lost != 0 || r.chains_completed != fleet_case.chains) {
        std::fprintf(stderr, "hbft_cli: bench fig8 measurement failed (%s, threads=%zu)\n",
                     fleet_case.name, threads);
        ++*failures;
        continue;
      }
      if (threads == 1) {
        serial_wall_ms = wall_ms;
        serial_fingerprint = r.fingerprint;
      } else if (r.fingerprint != serial_fingerprint) {
        // The whole artifact is meaningless if parallelism moved a result.
        std::fprintf(stderr,
                     "hbft_cli: bench fig8 fingerprint diverged (%s, threads=%zu): "
                     "%016llx vs %016llx\n",
                     fleet_case.name, threads,
                     static_cast<unsigned long long>(r.fingerprint),
                     static_cast<unsigned long long>(serial_fingerprint));
        ++*failures;
        continue;
      }
      rows.Push(JsonValue::Object()
                    .Set("case", fleet_case.name)
                    .Set("chains", static_cast<uint64_t>(fleet_case.chains))
                    .Set("hosts", static_cast<uint64_t>(fleet_case.hosts))
                    .Set("hosts_failed", static_cast<uint64_t>(fleet_case.storm))
                    .Set("threads", static_cast<uint64_t>(threads))
                    .Set("requests_total", r.requests_total)
                    .Set("requests_served", r.requests_served)
                    .Set("availability", r.availability)
                    .Set("failovers", static_cast<uint64_t>(r.failovers))
                    .Set("repairs", static_cast<uint64_t>(r.repairs))
                    .Set("fingerprint", r.fingerprint)
                    .Set("wall_ms", wall_ms)
                    .Set("speedup", wall_ms > 0.0 ? serial_wall_ms / wall_ms : 1.0)
                    .Set("host_cpus", host_cpus));
    }
  }
  return WriteBenchDoc(cfg, "fig8_parallel_fleet", "fig8_parallel.json", std::move(rows));
}

}  // namespace

int BenchCommand(FlagSet& flags) {
  BenchConfig cfg;
  cfg.quick = flags.Has("quick");
  cfg.only = flags.GetString("only", "");
  cfg.out_dir = flags.GetString("out-dir", "bench");
  if (!cfg.only.empty()) {
    // Accept a unique prefix too (`--only=fig8` for fig8_parallel) — the
    // flag exists for the dev loop, where nobody wants to type full names.
    std::vector<const char*> matches;
    for (const char* a : kArtifacts) {
      if (cfg.only == a) {
        matches.assign(1, a);
        break;
      }
      if (std::string(a).rfind(cfg.only, 0) == 0) {
        matches.push_back(a);
      }
    }
    if (matches.size() != 1) {
      std::fprintf(stderr, "hbft_cli: %s artifact '%s'; valid:",
                   matches.empty() ? "unknown" : "ambiguous", cfg.only.c_str());
      for (const char* a : kArtifacts) {
        std::fprintf(stderr, " %s", a);
      }
      std::fputc('\n', stderr);
      return 2;
    }
    cfg.only = matches[0];
  }
  if (cfg.quick) {
    cfg.cpu_iterations = 4000;
    cfg.io_operations = 12;
    cfg.table_els = {2048, 8192};
    cfg.sweep_els = {2048, 8192};
  }
  if (auto v = flags.GetU64("cpu-iterations")) {
    cfg.cpu_iterations = static_cast<uint32_t>(*v);
  }
  if (auto v = flags.GetU64("io-operations")) {
    cfg.io_operations = static_cast<uint32_t>(*v);
  }
  if (auto v = flags.GetU64("backups")) {
    if (*v < 1) {
      std::fprintf(stderr, "hbft_cli: --backups must be >= 1\n");
      return 2;
    }
    cfg.backups = static_cast<int>(*v);
  }
  if (!flags.Finish()) {
    return 2;
  }

  std::error_code ec;
  std::filesystem::create_directories(cfg.out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "hbft_cli: cannot create %s: %s\n", cfg.out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  // `--only` filters the emitter list (the whole point is the fast dev
  // loop: regenerate one artifact, diff it against the committed baseline).
  auto want = [&cfg](const char* artifact) { return cfg.only.empty() || cfg.only == artifact; };

  // Shared specs and bare references: cpu, write, read (paper section 4
  // workloads at reduced scale — NP is a ratio, scaling preserves shape).
  // Only the NP artifacts need the bare runs; a filtered fig5/6/7 loop
  // skips them entirely.
  WorkloadSpec specs[3];
  specs[0] = WorkloadSpec::PaperCpu();
  specs[0].iterations = cfg.cpu_iterations;
  specs[1] = WorkloadSpec::PaperDiskWrite(cfg.io_operations);
  specs[2] = WorkloadSpec::PaperDiskRead(cfg.io_operations);

  const bool needs_bares = want("table1") || want("fig2_cpu") || want("fig3_io") ||
                           want("fig4_faster_comm") || want("fig4_lossy_link");
  ScenarioResult bares[3];
  if (needs_bares) {
    for (int i = 0; i < 3; ++i) {
      bares[i] = RunBare(specs[i]);
      if (!bares[i].completed || bares[i].exited_flag != 1) {
        std::fprintf(stderr, "hbft_cli: bare reference run failed (%s)\n",
                     WorkloadKindName(specs[i].kind));
        return 1;
      }
    }
  }

  Measurer measurer(specs, bares, cfg.backups);
  int lossy_failures = 0;
  int resync_failures = 0;
  int fig6_failures = 0;
  int fig7_failures = 0;
  int fig8_failures = 0;
  bool ok = (!want("table1") || EmitTable1(cfg, specs, measurer)) &&
            (!want("fig2_cpu") || EmitFig2(cfg, bares[0], measurer)) &&
            (!want("fig3_io") || EmitFig3(cfg, measurer)) &&
            (!want("fig4_faster_comm") || EmitFig4(cfg, measurer)) &&
            (!want("fig4_lossy_link") || EmitFig4Lossy(cfg, specs, bares, &lossy_failures)) &&
            (!want("fig5_resync") || EmitFig5(cfg, &resync_failures)) &&
            (!want("fig6_throughput") || EmitFig6(cfg, &fig6_failures)) &&
            (!want("fig7_fleet") || EmitFig7(cfg, &fig7_failures)) &&
            (!want("fig8_parallel") || EmitFig8(cfg, &fig8_failures));
  if (ok && lossy_failures > 0) {
    std::fprintf(stderr, "hbft_cli: %d fig4-lossy measurement(s) failed\n", lossy_failures);
    ok = false;
  }
  if (ok && resync_failures > 0) {
    std::fprintf(stderr, "hbft_cli: %d fig5 resync measurement(s) failed\n", resync_failures);
    ok = false;
  }
  if (ok && fig6_failures > 0) {
    std::fprintf(stderr, "hbft_cli: %d fig6 measurement(s) failed\n", fig6_failures);
    ok = false;
  }
  if (ok && fig7_failures > 0) {
    std::fprintf(stderr, "hbft_cli: %d fig7 fleet measurement(s) failed\n", fig7_failures);
    ok = false;
  }
  if (ok && fig8_failures > 0) {
    std::fprintf(stderr, "hbft_cli: %d fig8 parallel measurement(s) failed\n", fig8_failures);
    ok = false;
  }
  if (ok && measurer.failures() > 0) {
    std::fprintf(stderr, "hbft_cli: %d measurement(s) failed (null np in artifacts)\n",
                 measurer.failures());
    ok = false;
  }
  if (ok) {
    if (cfg.only.empty()) {
      std::printf("bench: wrote table1.json, fig2_cpu.json, fig3_io.json, "
                  "fig4_faster_comm.json, fig4_lossy_link.json, fig5_resync.json, "
                  "fig6_throughput.json, fig7_fleet.json, fig8_parallel.json under %s/\n",
                  cfg.out_dir.c_str());
    } else {
      std::printf("bench: wrote %s.json under %s/\n", cfg.only.c_str(), cfg.out_dir.c_str());
    }
  }
  return ok ? 0 : 1;
}

}  // namespace cli
}  // namespace hbft
