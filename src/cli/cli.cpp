#include "cli/cli.hpp"

#include <cstdio>
#include <cstring>
#include <string>

#include "cli/commands.hpp"
#include "cli/options.hpp"

namespace hbft {
namespace cli {

namespace {

void PrintUsage(std::FILE* out) {
  std::fputs(
      "hbft_cli — hypervisor-based fault-tolerance scenario driver\n"
      "\n"
      "usage: hbft_cli <run|drill|bench|fleet|serve|help> [flags]\n"
      "       hbft_cli --list-workloads | --list-phases\n"
      "\n"
      "run    Execute one workload and report the outcome.\n"
      "  --workload=KIND       cpu|diskread|diskwrite|hello|txnlog|echo|heap|time|\n"
      "                        net-echo (txnlog). net-echo attaches the NIC and\n"
      "                        echoes injected packets (see --packets).\n"
      "  --iterations=N        workload operations / records / packets\n"
      "  --mode=M              both|bare|replicated (both: prints N'/N and consistency)\n"
      "  --epoch-length=N      instructions per epoch (4096)\n"
      "  --variant=V           old (P2 ack wait) | new (output commit, section 4.3)\n"
      "  --backups=N           replica chain length: 1 primary + N backups (1)\n"
      "  --disk-uncertain=P    per-device uncertain-completion probability (0):\n"
      "  --console-uncertain=P   each completion independently comes back\n"
      "  --nic-uncertain=P       CHECK_CONDITION-style; drivers retry (IO2)\n"
      "  --uncertain-performed=P probability an uncertain op actually happened (.5)\n"
      "  --loss=P --dup=P --reorder=P  replica-link fault probabilities (0):\n"
      "                        the protocol stream recovers via go-back-N\n"
      "                        retransmission driven by the cumulative P4 acks\n"
      "  --link-queue=N        bounded sender queue; overflow tail-drops (0=inf)\n"
      "  --rto-ms=X            go-back-N retransmission timeout (2)\n"
      "  --loss-until-ms=X     confine link faults to a burst ending at X\n"
      "  --pipeline-depth=W    epochs of unacked run-ahead at P2 boundaries (0 =\n"
      "                        the paper's strict wait; old variant only)\n"
      "  --ack-batch=K         backup coalesces K acks into one cumulative ack (1)\n"
      "  --packets=N           net-echo: packets injected (default: iterations)\n"
      "  --interp=E            slow (fetch-decode every instruction) | cached\n"
      "                        (predecoded superblocks); identical results,\n"
      "                        cached is faster (default: $HBFT_INTERP or slow)\n"
      "  --fail=SPEC           append a failure/repair event to the ordered schedule;\n"
      "                        repeatable. SPEC is comma-separated key=value:\n"
      "                          time-ms=X | phase=P[,epoch=N][,io-seq=N]\n"
      "                          target=active|backup:K   crash-io=random|performed|\n"
      "                          not-performed\n"
      "                          rejoin-time-ms=X | rejoin-after-ms=X   spawn a fresh\n"
      "                            backup below the chain tail (live state transfer)\n"
      "                          after-resync-ms=X   kill the active replica X ms\n"
      "                            after the pending rejoin's transfer completes\n"
      "                        e.g. --fail=time-ms=40 --fail=rejoin-after-ms=20\n"
      "                             --fail=after-resync-ms=10\n"
      "  --json                emit one machine-readable JSON document instead of\n"
      "                        the text report (outcome, replication, transport,\n"
      "                        resyncs, N'/N + consistency)\n"
      "  --fail-at=PHASE       legacy single-failure flags (see --list-phases);\n"
      "  --fail-epoch=N        they form the first schedule entry\n"
      "  --fail-time-ms=X --fail-target=T --crash-io=C\n"
      "  --num-blocks=N --seed=N\n"
      "\n"
      "drill  Failover drill with a per-takeover promotion-latency report.\n"
      "  Takes the run flags; defaults to txnlog with a kill at after-send-tme\n"
      "  epoch 3, plus — cascading mode — one further active-replica kill per\n"
      "  extra backup. Exits 0 iff the environment saw a sequence consistent\n"
      "  with a single machine and the workload result matches bare.\n"
      "  --repair              after the kills, rejoin a fresh backup (live state\n"
      "                        transfer) and kill the active replica once more —\n"
      "                        the report adds resync latency + transferred bytes\n"
      "  --repair-delay-ms=X   rejoin X ms after the last kill (20)\n"
      "  --refail-delay-ms=X   re-kill X ms after the resync completes (10)\n"
      "\n"
      "bench  Regenerate the paper's Table 1 / Fig 2-4 numbers plus this\n"
      "       reproduction's fig5-7 extensions as JSON artifacts.\n"
      "  --out-dir=DIR         artifact directory (bench)\n"
      "  --quick               small workloads + short sweep (same artifact shape)\n"
      "  --only=ARTIFACT       regenerate one artifact: table1, fig2_cpu,\n"
      "                        fig3_io, fig4_faster_comm, fig4_lossy_link,\n"
      "                        fig5_resync, fig6_throughput, fig7_fleet,\n"
      "                        fig8_parallel (prefixes like fig8 work too)\n"
      "  --cpu-iterations=N --io-operations=N --backups=N\n"
      "\n"
      "fleet  Co-simulate many protected chains across simulated hosts.\n"
      "  --chains=N            protected chains (8); each is 1 primary + backups\n"
      "  --hosts=M             simulated hosts replicas are placed on (4)\n"
      "  --backups=N           backups per chain (1)\n"
      "  --placement=P         round-robin | anti-affinity (anti-affinity: a host\n"
      "                        failure kills at most one replica per chain)\n"
      "  --requests=N          open-loop requests per chain (8)\n"
      "  --rate=R              requests/second per chain (overrides --interval-ms)\n"
      "  --interval-ms=X       open-loop inter-arrival gap (20)\n"
      "  --slo-ms=X            request latency SLO for attainment (50)\n"
      "  --fail=SPEC           host-K,time-ms=X (one host) or\n"
      "                        host-storm,hosts=N,time-ms=X (N hosts, evenly\n"
      "                        spread, all at X); repeatable\n"
      "  --repair-delay-ms=X   replica death -> replacement request (20)\n"
      "  --repair-concurrency=N  inbound state transfers admitted per host (1);\n"
      "                        excess repairs queue FIFO per host\n"
      "  --no-verify           skip the per-chain env-consistency check against\n"
      "                        a bare reference run (the check doubles runtime)\n"
      "  --threads=N           worker threads for round slices (1); results are\n"
      "                        bit-identical at any N (chains shard by id, all\n"
      "                        cross-chain state changes at the round barrier)\n"
      "  --quantum-ms=X --repair-retry-ms=X --start-ms=X --payload-bytes=B\n"
      "  --epoch-length=N --seed=N --max-time-ms=X\n"
      "  --json                machine-readable fleet report\n"
      "\n"
      "serve  Run a protected guest behind a real TCP listener: client requests\n"
      "       become NIC RX packets, guest echoes are released at output commit.\n"
      "  --port=P              client listener port (7070); 127.0.0.1 only\n"
      "  --role=R              single (whole chain in-process, default) |\n"
      "                        primary | backup (multi-process: the replication\n"
      "                        stream runs over a real TCP connection and the\n"
      "                        backup promotes when the primary process dies)\n"
      "  --repl-port=P         replication transport port (7071)\n"
      "  --peer=HOST           backup: the primary's host (127.0.0.1)\n"
      "  --backup-wait-ms=X    primary: wait for a backup before going solo;\n"
      "                        backup: keep redialing the primary (3000)\n"
      "  --duration-ms=X       stop after X ms of serving (0 = until a signal)\n"
      "  --max-requests=N      stop after N committed responses (0 = unbounded)\n"
      "  --backups=N           single role: chain length (1)\n"
      "  --fail=SPEC           single role: in-process failure schedule, as in run\n"
      "  --epoch-length=N --seed=N\n"
      "  --json                machine-readable session report on stdout\n"
      "\n"
      "help   Print this text. With --list-workloads or --list-phases, print\n"
      "       the valid enum names one per line (machine-readable).\n"
      "\n"
      "examples:\n"
      "  hbft_cli run --workload=txnlog --iterations=8 --variant=new\n"
      "  hbft_cli run --workload=net-echo --iterations=4 --fail-at=after-io-issue\n"
      "  hbft_cli run --workload=txnlog --disk-uncertain=0.3 --console-uncertain=0.3\n"
      "  hbft_cli drill --variant=new --epoch-length=4096\n"
      "  hbft_cli drill --backups=2 --fail=time-ms=6 --fail=phase=after-io-issue\n"
      "  hbft_cli run --workload=net-echo --backups=2 --loss=0.05 --reorder=0.05\n"
      "  hbft_cli drill --repair --variant=new\n"
      "  hbft_cli run --workload=txnlog --iterations=20 --json \\\n"
      "      --fail=time-ms=40 --fail=rejoin-after-ms=20 --fail=after-resync-ms=10\n"
      "  hbft_cli bench --quick --out-dir=/tmp/hbft-bench\n"
      "  hbft_cli fleet --chains=64 --hosts=8 --fail=host-storm,hosts=1,time-ms=60\n"
      "  hbft_cli fleet --chains=16 --hosts=4 --placement=round-robin --json\n"
      "  hbft_cli serve --port=7070 --duration-ms=2000 --fail=time-ms=500 --json\n"
      "  hbft_cli serve --role=primary --port=7070 --repl-port=7071 &\n"
      "  hbft_cli serve --role=backup --port=7070 --repl-port=7071\n",
      out);
}

// Returns true when `arg` asked for a list that was printed.
bool HandleListFlag(const std::string& arg) {
  if (arg == "--list-workloads") {
    PrintWorkloadNames(stdout);
    return true;
  }
  if (arg == "--list-phases") {
    PrintFailPhaseNames(stdout);
    return true;
  }
  return false;
}

int HelpCommand(int argc, char** argv) {
  bool listed = false;
  for (int i = 2; i < argc; ++i) {
    if (HandleListFlag(argv[i])) {
      listed = true;
    } else {
      std::fprintf(stderr, "hbft_cli: help takes --list-workloads or --list-phases, got '%s'\n",
                   argv[i]);
      return 2;
    }
  }
  if (!listed) {
    PrintUsage(stdout);
  }
  return 0;
}

}  // namespace

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage(stderr);
    return 2;
  }
  std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    return HelpCommand(argc, argv);
  }
  if (HandleListFlag(command)) {
    return 0;
  }

  FlagSet flags;
  if (!flags.Parse(argc, argv, 2)) {
    return 2;
  }
  if (command == "run") {
    return RunCommand(flags);
  }
  if (command == "drill") {
    return DrillCommand(flags);
  }
  if (command == "bench") {
    return BenchCommand(flags);
  }
  if (command == "fleet") {
    return FleetCommand(flags);
  }
  if (command == "serve") {
    return ServeCommand(flags);
  }
  std::fprintf(stderr, "hbft_cli: unknown command '%s'\n\n", command.c_str());
  PrintUsage(stderr);
  return 2;
}

}  // namespace cli
}  // namespace hbft
