#include "cli/cli.hpp"

#include <cstdio>
#include <cstring>
#include <string>

#include "cli/commands.hpp"
#include "cli/options.hpp"

namespace hbft {
namespace cli {

namespace {

void PrintUsage(std::FILE* out) {
  std::fputs(
      "hbft_cli — hypervisor-based fault-tolerance scenario driver\n"
      "\n"
      "usage: hbft_cli <run|drill|bench> [flags]\n"
      "\n"
      "run    Execute one workload and report the outcome.\n"
      "  --workload=KIND       cpu|diskread|diskwrite|hello|txnlog|echo|heap|time (txnlog)\n"
      "  --iterations=N        workload operations / records\n"
      "  --mode=M              both|bare|replicated (both: prints N'/N and consistency)\n"
      "  --epoch-length=N      instructions per epoch (4096)\n"
      "  --variant=V           old (P2 ack wait) | new (output commit, section 4.3)\n"
      "  --fail-at=PHASE       inject a crash: before-send-tme, after-send-tme,\n"
      "                        after-ack-wait, after-deliver, after-send-end,\n"
      "                        before-io-issue, after-io-issue\n"
      "  --fail-epoch=N        epoch for --fail-at boundary phases\n"
      "  --fail-time-ms=X      crash at a wall-clock instant instead of a phase\n"
      "  --fail-target=T       primary|backup (primary)\n"
      "  --crash-io=C          in-flight I/O at the crash: random|performed|not-performed\n"
      "  --num-blocks=N --seed=N\n"
      "\n"
      "drill  Primary-kill failover drill with a promotion-latency report.\n"
      "  Takes the run flags; defaults to txnlog with a kill at\n"
      "  after-send-tme epoch 3. Exits 0 iff the environment saw a sequence\n"
      "  consistent with a single machine and the workload result matches bare.\n"
      "\n"
      "bench  Regenerate the paper's Table 1 / Fig 2-4 numbers as JSON.\n"
      "  --out-dir=DIR         artifact directory (bench)\n"
      "  --quick               small workloads + short sweep (same artifact shape)\n"
      "  --cpu-iterations=N --io-operations=N\n"
      "\n"
      "examples:\n"
      "  hbft_cli run --workload=txnlog --iterations=8 --variant=new\n"
      "  hbft_cli drill --variant=new --epoch-length=4096\n"
      "  hbft_cli bench --quick --out-dir=/tmp/hbft-bench\n",
      out);
}

}  // namespace

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage(stderr);
    return 2;
  }
  std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    PrintUsage(stdout);
    return 0;
  }

  FlagSet flags;
  if (!flags.Parse(argc, argv, 2)) {
    return 2;
  }
  if (command == "run") {
    return RunCommand(flags);
  }
  if (command == "drill") {
    return DrillCommand(flags);
  }
  if (command == "bench") {
    return BenchCommand(flags);
  }
  std::fprintf(stderr, "hbft_cli: unknown command '%s'\n\n", command.c_str());
  PrintUsage(stderr);
  return 2;
}

}  // namespace cli
}  // namespace hbft
