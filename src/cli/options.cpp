#include "cli/options.hpp"

#include <cstdio>
#include <cstdlib>

namespace hbft {
namespace cli {

bool FlagSet::Parse(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() == 2) {
      std::fprintf(stderr, "hbft_cli: unexpected argument '%s' (flags are --key=value)\n",
                   arg.c_str());
      return false;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    std::string key = body.substr(0, eq);
    std::string value = eq == std::string::npos ? "" : body.substr(eq + 1);
    if (values_.count(key)) {
      std::fprintf(stderr, "hbft_cli: flag --%s given twice\n", key.c_str());
      return false;
    }
    values_[key] = value;
  }
  return true;
}

bool FlagSet::Has(const std::string& key) {
  consumed_.insert(key);
  return values_.count(key) > 0;
}

std::string FlagSet::GetString(const std::string& key, const std::string& default_value) {
  consumed_.insert(key);
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

std::optional<uint64_t> FlagSet::GetU64(const std::string& key) {
  consumed_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) {
    return std::nullopt;
  }
  char* end = nullptr;
  uint64_t value = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    std::fprintf(stderr, "hbft_cli: --%s expects an integer, got '%s'\n", key.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  return value;
}

std::optional<double> FlagSet::GetDouble(const std::string& key) {
  consumed_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) {
    return std::nullopt;
  }
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    std::fprintf(stderr, "hbft_cli: --%s expects a number, got '%s'\n", key.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  return value;
}

bool FlagSet::Finish() {
  bool ok = true;
  for (const auto& [key, value] : values_) {
    if (!consumed_.count(key)) {
      std::fprintf(stderr, "hbft_cli: unknown flag --%s\n", key.c_str());
      ok = false;
    }
  }
  return ok;
}

std::optional<WorkloadKind> ParseWorkloadKind(const std::string& name) {
  if (name == "cpu") return WorkloadKind::kCpu;
  if (name == "diskread" || name == "disk-read" || name == "read") return WorkloadKind::kDiskRead;
  if (name == "diskwrite" || name == "disk-write" || name == "write") {
    return WorkloadKind::kDiskWrite;
  }
  if (name == "hello") return WorkloadKind::kHello;
  if (name == "txnlog" || name == "txn-log") return WorkloadKind::kTxnLog;
  if (name == "echo") return WorkloadKind::kEcho;
  if (name == "heap") return WorkloadKind::kHeap;
  if (name == "time") return WorkloadKind::kTime;
  return std::nullopt;
}

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kCpu:
      return "cpu";
    case WorkloadKind::kDiskRead:
      return "diskread";
    case WorkloadKind::kDiskWrite:
      return "diskwrite";
    case WorkloadKind::kHello:
      return "hello";
    case WorkloadKind::kTxnLog:
      return "txnlog";
    case WorkloadKind::kEcho:
      return "echo";
    case WorkloadKind::kHeap:
      return "heap";
    case WorkloadKind::kTime:
      return "time";
  }
  return "unknown";
}

std::optional<ProtocolVariant> ParseVariant(const std::string& name) {
  if (name == "old" || name == "original") return ProtocolVariant::kOriginal;
  if (name == "new" || name == "revised") return ProtocolVariant::kRevised;
  return std::nullopt;
}

const char* VariantName(ProtocolVariant variant) {
  return variant == ProtocolVariant::kOriginal ? "old" : "new";
}

std::optional<FailPhase> ParseFailPhase(const std::string& name) {
  static const FailPhase kAll[] = {
      FailPhase::kBeforeSendTme, FailPhase::kAfterSendTme, FailPhase::kAfterAckWait,
      FailPhase::kAfterDeliver,  FailPhase::kAfterSendEnd, FailPhase::kBeforeIoIssue,
      FailPhase::kAfterIoIssue,
  };
  for (FailPhase phase : kAll) {
    if (name == FailPhaseName(phase)) {
      return phase;
    }
  }
  return std::nullopt;
}

bool ParseScenarioFlags(FlagSet& flags, ScenarioFlags* out) {
  std::string workload_name = flags.GetString("workload", "txnlog");
  auto kind = ParseWorkloadKind(workload_name);
  if (!kind) {
    std::fprintf(stderr,
                 "hbft_cli: unknown workload '%s' (cpu, diskread, diskwrite, hello, txnlog, "
                 "echo, heap, time)\n",
                 workload_name.c_str());
    return false;
  }
  out->workload.kind = *kind;
  if (auto v = flags.GetU64("iterations")) {
    out->workload.iterations = static_cast<uint32_t>(*v);
  } else if (*kind == WorkloadKind::kTxnLog) {
    out->workload.iterations = 10;
  }
  if (auto v = flags.GetU64("num-blocks")) {
    out->workload.num_blocks = static_cast<uint32_t>(*v);
  } else if (*kind == WorkloadKind::kTxnLog) {
    out->workload.num_blocks = 16;
  }

  if (auto v = flags.GetU64("epoch-length")) {
    out->options.replication.epoch_length = *v;
  }
  std::string variant_name = flags.GetString("variant", "old");
  auto variant = ParseVariant(variant_name);
  if (!variant) {
    std::fprintf(stderr, "hbft_cli: unknown variant '%s' (old, new)\n", variant_name.c_str());
    return false;
  }
  out->options.replication.variant = *variant;
  if (auto v = flags.GetU64("seed")) {
    out->options.seed = *v;
  }

  // Failure injection: --fail-at=<phase> (with --fail-epoch) or
  // --fail-time-ms=<ms>; --fail-target picks the victim.
  std::string fail_at = flags.GetString("fail-at", "none");
  auto fail_time_ms = flags.GetDouble("fail-time-ms");
  if (fail_at != "none" && fail_time_ms) {
    std::fprintf(stderr, "hbft_cli: --fail-at and --fail-time-ms are mutually exclusive\n");
    return false;
  }
  if (fail_at != "none") {
    auto phase = ParseFailPhase(fail_at);
    if (!phase) {
      std::fprintf(stderr,
                   "hbft_cli: unknown --fail-at phase '%s' (before-send-tme, after-send-tme, "
                   "after-ack-wait, after-deliver, after-send-end, before-io-issue, "
                   "after-io-issue)\n",
                   fail_at.c_str());
      return false;
    }
    out->options.failure.kind = FailurePlan::Kind::kAtPhase;
    out->options.failure.phase = *phase;
    out->options.failure.phase_epoch = flags.GetU64("fail-epoch").value_or(0);
    out->has_failure = true;
    out->failure_description =
        "at-phase " + fail_at + " epoch " + std::to_string(out->options.failure.phase_epoch);
  } else if (fail_time_ms) {
    out->options.failure.kind = FailurePlan::Kind::kAtTime;
    out->options.failure.time = SimTime::Picos(static_cast<int64_t>(*fail_time_ms * 1e9));
    out->has_failure = true;
    out->failure_description = "at-time " + std::to_string(*fail_time_ms) + " ms";
  } else {
    flags.GetU64("fail-epoch");  // Consume so a stray flag reports cleanly below.
  }

  std::string target = flags.GetString("fail-target", "primary");
  if (target == "backup") {
    if (out->options.failure.kind == FailurePlan::Kind::kAtPhase) {
      std::fprintf(stderr,
                   "hbft_cli: --fail-target=backup supports only --fail-time-ms (the phase "
                   "hooks are primary-side protocol points)\n");
      return false;
    }
    out->options.failure.target = FailurePlan::Target::kBackup;
  } else if (target != "primary") {
    std::fprintf(stderr, "hbft_cli: unknown --fail-target '%s' (primary, backup)\n",
                 target.c_str());
    return false;
  }
  if (out->has_failure) {
    out->failure_description += std::string(", target ") + target;
  }

  std::string crash_io = flags.GetString("crash-io", "random");
  if (crash_io == "performed") {
    out->options.failure.crash_io = FailurePlan::CrashIo::kPerformed;
  } else if (crash_io == "not-performed") {
    out->options.failure.crash_io = FailurePlan::CrashIo::kNotPerformed;
  } else if (crash_io != "random") {
    std::fprintf(stderr, "hbft_cli: unknown --crash-io '%s' (random, performed, not-performed)\n",
                 crash_io.c_str());
    return false;
  }
  return true;
}

}  // namespace cli
}  // namespace hbft
