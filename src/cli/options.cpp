#include "cli/options.hpp"

#include <cstdio>
#include <cstdlib>

namespace hbft {
namespace cli {

namespace {

bool IsRepeatable(const std::string& key) { return key == "fail"; }

// Canonical enum lists: the single place a new workload or phase must be
// registered for both name lookup and --list-* discoverability.
constexpr WorkloadKind kAllWorkloadKinds[] = {
    WorkloadKind::kCpu,   WorkloadKind::kDiskRead, WorkloadKind::kDiskWrite,
    WorkloadKind::kHello, WorkloadKind::kTxnLog,   WorkloadKind::kEcho,
    WorkloadKind::kHeap,  WorkloadKind::kTime,     WorkloadKind::kNetEcho,
};

constexpr FailPhase kAllFailPhases[] = {
    FailPhase::kBeforeSendTme, FailPhase::kAfterSendTme, FailPhase::kAfterAckWait,
    FailPhase::kAfterDeliver,  FailPhase::kAfterSendEnd, FailPhase::kBeforeIoIssue,
    FailPhase::kAfterIoIssue,
};

}  // namespace

bool FlagSet::Parse(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() == 2) {
      std::fprintf(stderr, "hbft_cli: unexpected argument '%s' (flags are --key=value)\n",
                   arg.c_str());
      return false;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    std::string key = body.substr(0, eq);
    std::string value = eq == std::string::npos ? "" : body.substr(eq + 1);
    if (values_.count(key) && !IsRepeatable(key)) {
      std::fprintf(stderr, "hbft_cli: flag --%s given twice\n", key.c_str());
      return false;
    }
    values_[key].push_back(value);
  }
  return true;
}

bool FlagSet::Has(const std::string& key) {
  consumed_.insert(key);
  return values_.count(key) > 0;
}

std::string FlagSet::GetString(const std::string& key, const std::string& default_value) {
  consumed_.insert(key);
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second.back();
}

std::optional<uint64_t> FlagSet::GetU64(const std::string& key) {
  consumed_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) {
    return std::nullopt;
  }
  const std::string& raw = it->second.back();
  char* end = nullptr;
  uint64_t value = std::strtoull(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0') {
    std::fprintf(stderr, "hbft_cli: --%s expects an integer, got '%s'\n", key.c_str(),
                 raw.c_str());
    std::exit(2);
  }
  return value;
}

std::optional<double> FlagSet::GetDouble(const std::string& key) {
  consumed_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) {
    return std::nullopt;
  }
  const std::string& raw = it->second.back();
  char* end = nullptr;
  double value = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0') {
    std::fprintf(stderr, "hbft_cli: --%s expects a number, got '%s'\n", key.c_str(), raw.c_str());
    std::exit(2);
  }
  return value;
}

std::vector<std::string> FlagSet::GetList(const std::string& key) {
  consumed_.insert(key);
  auto it = values_.find(key);
  return it == values_.end() ? std::vector<std::string>{} : it->second;
}

bool FlagSet::Finish() {
  bool ok = true;
  for (const auto& [key, value] : values_) {
    if (!consumed_.count(key)) {
      std::fprintf(stderr, "hbft_cli: unknown flag --%s\n", key.c_str());
      ok = false;
    }
  }
  return ok;
}

std::optional<WorkloadKind> ParseWorkloadKind(const std::string& name) {
  for (WorkloadKind kind : kAllWorkloadKinds) {
    if (name == WorkloadKindName(kind)) {
      return kind;
    }
  }
  // Aliases.
  if (name == "disk-read" || name == "read") return WorkloadKind::kDiskRead;
  if (name == "disk-write" || name == "write") return WorkloadKind::kDiskWrite;
  if (name == "txn-log") return WorkloadKind::kTxnLog;
  if (name == "netecho") return WorkloadKind::kNetEcho;
  return std::nullopt;
}

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kCpu:
      return "cpu";
    case WorkloadKind::kDiskRead:
      return "diskread";
    case WorkloadKind::kDiskWrite:
      return "diskwrite";
    case WorkloadKind::kHello:
      return "hello";
    case WorkloadKind::kTxnLog:
      return "txnlog";
    case WorkloadKind::kEcho:
      return "echo";
    case WorkloadKind::kHeap:
      return "heap";
    case WorkloadKind::kTime:
      return "time";
    case WorkloadKind::kNetEcho:
      return "net-echo";
  }
  return "unknown";
}

void PrintWorkloadNames(std::FILE* out) {
  for (WorkloadKind kind : kAllWorkloadKinds) {
    std::fprintf(out, "%s\n", WorkloadKindName(kind));
  }
}

void PrintFailPhaseNames(std::FILE* out) {
  for (FailPhase phase : kAllFailPhases) {
    std::fprintf(out, "%s\n", FailPhaseName(phase));
  }
}

std::optional<ProtocolVariant> ParseVariant(const std::string& name) {
  if (name == "old" || name == "original") return ProtocolVariant::kOriginal;
  if (name == "new" || name == "revised") return ProtocolVariant::kRevised;
  return std::nullopt;
}

const char* VariantName(ProtocolVariant variant) {
  return variant == ProtocolVariant::kOriginal ? "old" : "new";
}

std::optional<FailPhase> ParseFailPhase(const std::string& name) {
  for (FailPhase phase : kAllFailPhases) {
    if (name == FailPhaseName(phase)) {
      return phase;
    }
  }
  return std::nullopt;
}

namespace {

bool ParseCrashIo(const std::string& value, FailurePlan::CrashIo* out) {
  if (value == "random") {
    *out = FailurePlan::CrashIo::kRandom;
  } else if (value == "performed") {
    *out = FailurePlan::CrashIo::kPerformed;
  } else if (value == "not-performed") {
    *out = FailurePlan::CrashIo::kNotPerformed;
  } else {
    return false;
  }
  return true;
}

bool ParseFailTarget(const std::string& value, FailurePlan* plan) {
  if (value == "active" || value == "primary") {
    plan->target = FailurePlan::Target::kActive;
    return true;
  }
  if (value.rfind("backup", 0) == 0) {
    plan->target = FailurePlan::Target::kBackup;
    plan->backup_index = 0;
    if (value.size() > 6) {
      if (value[6] != ':') {
        return false;
      }
      std::string idx = value.substr(7);
      char* end = nullptr;
      long parsed = std::strtol(idx.c_str(), &end, 10);
      if (end == idx.c_str() || *end != '\0' || parsed < 0) {
        return false;
      }
      plan->backup_index = static_cast<int>(parsed);
    }
    return true;
  }
  return false;
}

}  // namespace

bool ParseFailSpec(const std::string& spec, FailurePlan* out, std::string* description) {
  FailurePlan plan;
  int time_keys = 0;    // time-ms / after-resync-ms occurrences.
  int phase_keys = 0;   // phase occurrences.
  int rejoin_keys = 0;  // rejoin-time-ms / rejoin-after-ms occurrences.
  bool has_phase_only_key = false;  // epoch= / io-seq= constrain phase kills.
  std::string desc;

  auto parse_ms = [](const std::string& value, const char* key, SimTime* t) {
    char* end = nullptr;
    double ms = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      std::fprintf(stderr, "hbft_cli: --fail %s expects a number, got '%s'\n", key,
                   value.c_str());
      return false;
    }
    *t = SimTime::Picos(static_cast<int64_t>(ms * 1e9));
    return true;
  };

  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string part = spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                                   : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (part.empty()) {
      continue;
    }
    auto eq = part.find('=');
    std::string key = part.substr(0, eq);
    std::string value = eq == std::string::npos ? "" : part.substr(eq + 1);

    if (key == "time-ms") {
      if (!parse_ms(value, "time-ms", &plan.time)) {
        return false;
      }
      plan.kind = FailurePlan::Kind::kAtTime;
      ++time_keys;
      desc = "at-time " + value + " ms" + desc;
    } else if (key == "rejoin-time-ms" || key == "rejoin-after-ms") {
      // Repair events: spawn a fresh replica below the chain's tail and
      // stream it the live state transfer — at an absolute time, or a delay
      // after the previous schedule event fired.
      if (!parse_ms(value, key.c_str(), &plan.time)) {
        return false;
      }
      plan.kind = FailurePlan::Kind::kRejoin;
      plan.relative = key == "rejoin-after-ms";
      ++rejoin_keys;
      desc = (plan.relative ? "rejoin +" : "rejoin at ") + value + " ms" + desc;
    } else if (key == "after-resync-ms") {
      // Kill the active replica `value` ms after the pending rejoin's state
      // transfer completes — the fail -> rejoin -> fail drill without
      // guessing transfer durations.
      if (!parse_ms(value, "after-resync-ms", &plan.time)) {
        return false;
      }
      plan.kind = FailurePlan::Kind::kAtTime;
      plan.after_resync = true;
      ++time_keys;
      desc = "kill +" + value + " ms after resync" + desc;
    } else if (key == "phase") {
      auto phase = ParseFailPhase(value);
      if (!phase) {
        std::fprintf(stderr,
                     "hbft_cli: unknown --fail phase '%s' (see hbft_cli --list-phases)\n",
                     value.c_str());
        return false;
      }
      plan.kind = FailurePlan::Kind::kAtPhase;
      plan.phase = *phase;
      ++phase_keys;
      desc = "at-phase " + value + desc;
    } else if (key == "epoch") {
      char* end = nullptr;
      plan.phase_epoch = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "hbft_cli: --fail epoch expects an integer, got '%s'\n",
                     value.c_str());
        return false;
      }
      has_phase_only_key = true;
      desc += " epoch " + value;
    } else if (key == "io-seq") {
      char* end = nullptr;
      plan.io_seq = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "hbft_cli: --fail io-seq expects an integer, got '%s'\n",
                     value.c_str());
        return false;
      }
      has_phase_only_key = true;
      desc += " io-seq " + value;
    } else if (key == "target") {
      if (!ParseFailTarget(value, &plan)) {
        std::fprintf(stderr,
                     "hbft_cli: unknown --fail target '%s' (active, backup, backup:K)\n",
                     value.c_str());
        return false;
      }
      desc += ", target " + value;
    } else if (key == "crash-io") {
      if (!ParseCrashIo(value, &plan.crash_io)) {
        std::fprintf(stderr,
                     "hbft_cli: unknown --fail crash-io '%s' (random, performed, "
                     "not-performed)\n",
                     value.c_str());
        return false;
      }
      desc += ", crash-io " + value;
    } else {
      std::fprintf(stderr,
                   "hbft_cli: unknown --fail key '%s' (time-ms, phase, epoch, io-seq, target, "
                   "crash-io, rejoin-time-ms, rejoin-after-ms, after-resync-ms)\n",
                   key.c_str());
      return false;
    }
  }

  // Exactly one event key per spec — a repeated or conflicting key would
  // silently overwrite the earlier one's fields, so it fails loudly instead.
  if (time_keys + phase_keys + rejoin_keys != 1) {
    std::fprintf(stderr,
                 "hbft_cli: --fail needs exactly one of time-ms=..., phase=..., "
                 "rejoin-time-ms=..., rejoin-after-ms=..., or after-resync-ms=...\n");
    return false;
  }
  const bool has_time = time_keys > 0;
  const bool has_phase = phase_keys > 0;
  if (rejoin_keys > 0 && (has_phase_only_key || plan.target != FailurePlan::Target::kActive ||
                          plan.crash_io != FailurePlan::CrashIo::kRandom)) {
    std::fprintf(stderr, "hbft_cli: --fail rejoin events take no kill modifiers\n");
    return false;
  }
  if (has_time && has_phase_only_key) {
    std::fprintf(stderr,
                 "hbft_cli: --fail epoch=/io-seq= only constrain phase=... kills, not "
                 "time-ms=...\n");
    return false;
  }
  if (has_phase && plan.target != FailurePlan::Target::kActive) {
    std::fprintf(stderr,
                 "hbft_cli: --fail target=backup supports only time-ms (standing backups run "
                 "no device phases)\n");
    return false;
  }
  *out = plan;
  *description = desc;
  return true;
}

namespace {

// Shared scenario shaping for the knobs that must match between a replicated
// run and its bare reference (devices, fault plans, injected input).
void ApplyEnvironment(const ScenarioFlags& flags, Scenario* scenario) {
  scenario->Interp(flags.interp)
      .DiskFaults(flags.disk_faults)
      .ConsoleFaults(flags.console_faults)
      .NicFaults(flags.nic_faults);
  if (flags.workload.kind == WorkloadKind::kNetEcho) {
    uint64_t packets = flags.packets != 0 ? flags.packets : flags.workload.iterations;
    for (uint64_t i = 0; i < packets; ++i) {
      // Deterministic 12-byte payloads: "pkt-NNNN...." stamped per index.
      std::vector<uint8_t> payload;
      char text[16];
      std::snprintf(text, sizeof(text), "pkt-%04u....", static_cast<unsigned>(i));
      payload.assign(text, text + 12);
      scenario->InjectPacket(std::move(payload));
    }
  }
}

}  // namespace

Scenario ScenarioFlags::Replicated() const {
  Scenario scenario = Scenario::Replicated(workload)
                          .Backups(backups)
                          .Epoch(epoch_length)
                          .Variant(variant)
                          .Seed(seed)
                          .LinkFaults(link_faults)
                          .PipelineDepth(pipeline_depth)
                          .AckBatch(ack_batch);
  ApplyEnvironment(*this, &scenario);
  for (const FailurePlan& plan : failures) {
    scenario.FailAt(plan);
  }
  return scenario;
}

Scenario ScenarioFlags::Bare() const {
  Scenario scenario = Scenario::Bare(workload).Seed(seed);
  ApplyEnvironment(*this, &scenario);
  return scenario;
}

bool ParseScenarioFlags(FlagSet& flags, ScenarioFlags* out) {
  std::string workload_name = flags.GetString("workload", "txnlog");
  auto kind = ParseWorkloadKind(workload_name);
  if (!kind) {
    std::fprintf(stderr,
                 "hbft_cli: unknown workload '%s' (see hbft_cli --list-workloads)\n",
                 workload_name.c_str());
    return false;
  }
  out->workload.kind = *kind;
  if (auto v = flags.GetU64("iterations")) {
    out->workload.iterations = static_cast<uint32_t>(*v);
  } else if (*kind == WorkloadKind::kTxnLog) {
    out->workload.iterations = 10;
  } else if (*kind == WorkloadKind::kNetEcho) {
    out->workload.iterations = 4;
  }
  if (auto v = flags.GetU64("num-blocks")) {
    out->workload.num_blocks = static_cast<uint32_t>(*v);
  } else if (*kind == WorkloadKind::kTxnLog) {
    out->workload.num_blocks = 16;
  }

  if (auto v = flags.GetU64("epoch-length")) {
    out->epoch_length = *v;
  }
  std::string variant_name = flags.GetString("variant", "old");
  auto variant = ParseVariant(variant_name);
  if (!variant) {
    std::fprintf(stderr, "hbft_cli: unknown variant '%s' (old, new)\n", variant_name.c_str());
    return false;
  }
  out->variant = *variant;
  if (auto v = flags.GetU64("seed")) {
    out->seed = *v;
  }
  if (auto v = flags.GetU64("backups")) {
    if (*v < 1) {
      std::fprintf(stderr, "hbft_cli: --backups must be >= 1\n");
      return false;
    }
    out->backups = static_cast<int>(*v);
  }

  // Per-device transient-fault knobs: uncertain-completion probabilities,
  // plus one shared performed-when-uncertain probability.
  struct FaultFlag {
    const char* flag;
    FaultPlan* plan;
  };
  const FaultFlag fault_flags[] = {
      {"disk-uncertain", &out->disk_faults},
      {"console-uncertain", &out->console_faults},
      {"nic-uncertain", &out->nic_faults},
  };
  for (const FaultFlag& f : fault_flags) {
    if (auto v = flags.GetDouble(f.flag)) {
      if (*v < 0.0 || *v > 1.0) {
        std::fprintf(stderr, "hbft_cli: --%s expects a probability in [0,1]\n", f.flag);
        return false;
      }
      f.plan->uncertain_probability = *v;
    }
  }
  if (auto v = flags.GetDouble("uncertain-performed")) {
    if (*v < 0.0 || *v > 1.0) {
      std::fprintf(stderr, "hbft_cli: --uncertain-performed expects a probability in [0,1]\n");
      return false;
    }
    out->disk_faults.performed_when_uncertain = *v;
    out->console_faults.performed_when_uncertain = *v;
    out->nic_faults.performed_when_uncertain = *v;
  }
  // Interconnect fault knobs: lossy-wire probabilities, bounded sender
  // queue, retransmission timeout, and an optional burst window.
  struct LinkProbFlag {
    const char* flag;
    double* field;
  };
  const LinkProbFlag link_prob_flags[] = {
      {"loss", &out->link_faults.drop_probability},
      {"reorder", &out->link_faults.reorder_probability},
      {"dup", &out->link_faults.duplicate_probability},
  };
  for (const LinkProbFlag& f : link_prob_flags) {
    if (auto v = flags.GetDouble(f.flag)) {
      if (*v < 0.0 || *v > 1.0) {
        std::fprintf(stderr, "hbft_cli: --%s expects a probability in [0,1]\n", f.flag);
        return false;
      }
      *f.field = *v;
    }
  }
  if (auto v = flags.GetU64("link-queue")) {
    if (*v > UINT32_MAX) {
      std::fprintf(stderr, "hbft_cli: --link-queue is out of range\n");
      return false;
    }
    out->link_faults.sender_queue_limit = static_cast<uint32_t>(*v);
  }
  if (auto v = flags.GetDouble("rto-ms")) {
    if (*v <= 0.0) {
      std::fprintf(stderr, "hbft_cli: --rto-ms expects a positive duration\n");
      return false;
    }
    out->link_faults.retransmit_timeout = SimTime::Picos(static_cast<int64_t>(*v * 1e9));
  }
  if (auto v = flags.GetDouble("loss-until-ms")) {
    if (*v < 0.0) {
      std::fprintf(stderr, "hbft_cli: --loss-until-ms expects a non-negative time\n");
      return false;
    }
    out->link_faults.active_until = SimTime::Picos(static_cast<int64_t>(*v * 1e9));
  }
  if (auto v = flags.GetU64("pipeline-depth")) {
    out->pipeline_depth = static_cast<uint32_t>(*v);
  }
  if (auto v = flags.GetU64("ack-batch")) {
    if (*v < 1) {
      std::fprintf(stderr, "hbft_cli: --ack-batch must be >= 1\n");
      return false;
    }
    out->ack_batch = static_cast<uint32_t>(*v);
  }

  std::string interp_name = flags.GetString("interp", "");
  if (!interp_name.empty()) {
    if (interp_name == "slow") {
      out->interp = InterpMode::kSlow;
    } else if (interp_name == "cached") {
      out->interp = InterpMode::kCached;
    } else {
      std::fprintf(stderr, "hbft_cli: unknown --interp '%s' (slow, cached)\n",
                   interp_name.c_str());
      return false;
    }
  }

  if (auto v = flags.GetU64("packets")) {
    if (out->workload.kind != WorkloadKind::kNetEcho) {
      std::fprintf(stderr, "hbft_cli: --packets applies only to --workload=net-echo\n");
      return false;
    }
    if (*v < out->workload.iterations) {
      // The guest consumes exactly `iterations` packets; fewer would leave it
      // blocked in net_recv until max_time.
      std::fprintf(stderr,
                   "hbft_cli: --packets=%llu is less than the %u packets the workload "
                   "consumes (see --iterations)\n",
                   static_cast<unsigned long long>(*v), out->workload.iterations);
      return false;
    }
    out->packets = *v;
  }

  // Legacy single-failure flags: --fail-at=<phase> (with --fail-epoch) or
  // --fail-time-ms=<ms>; --fail-target picks the victim. They produce the
  // first schedule entry; repeatable --fail=SPEC entries append after it.
  std::string fail_at = flags.GetString("fail-at", "none");
  auto fail_time_ms = flags.GetDouble("fail-time-ms");
  if (fail_at != "none" && fail_time_ms) {
    std::fprintf(stderr, "hbft_cli: --fail-at and --fail-time-ms are mutually exclusive\n");
    return false;
  }
  FailurePlan legacy;
  if (fail_at != "none") {
    auto phase = ParseFailPhase(fail_at);
    if (!phase) {
      std::fprintf(stderr,
                   "hbft_cli: unknown --fail-at phase '%s' (see hbft_cli --list-phases)\n",
                   fail_at.c_str());
      return false;
    }
    legacy.kind = FailurePlan::Kind::kAtPhase;
    legacy.phase = *phase;
    legacy.phase_epoch = flags.GetU64("fail-epoch").value_or(0);
    out->failure_description =
        "at-phase " + fail_at + " epoch " + std::to_string(legacy.phase_epoch);
  } else if (fail_time_ms) {
    legacy.kind = FailurePlan::Kind::kAtTime;
    legacy.time = SimTime::Picos(static_cast<int64_t>(*fail_time_ms * 1e9));
    out->failure_description = "at-time " + std::to_string(*fail_time_ms) + " ms";
  } else {
    flags.GetU64("fail-epoch");  // Consume so a stray flag reports cleanly below.
  }

  std::string target = flags.GetString("fail-target", "primary");
  if (target == "backup") {
    if (legacy.kind == FailurePlan::Kind::kAtPhase) {
      std::fprintf(stderr,
                   "hbft_cli: --fail-target=backup supports only --fail-time-ms (standing "
                   "backups run no device phases)\n");
      return false;
    }
    legacy.target = FailurePlan::Target::kBackup;
    legacy.backup_index = 0;
  } else if (target != "primary" && target != "active") {
    std::fprintf(stderr, "hbft_cli: unknown --fail-target '%s' (primary/active, backup)\n",
                 target.c_str());
    return false;
  }

  std::string crash_io = flags.GetString("crash-io", "random");
  if (!ParseCrashIo(crash_io, &legacy.crash_io)) {
    std::fprintf(stderr, "hbft_cli: unknown --crash-io '%s' (random, performed, not-performed)\n",
                 crash_io.c_str());
    return false;
  }

  if (legacy.kind != FailurePlan::Kind::kNone) {
    out->failure_description += std::string(", target ") + target;
    out->failures.push_back(legacy);
    out->has_failure = true;
  }

  for (const std::string& spec : flags.GetList("fail")) {
    FailurePlan plan;
    std::string desc;
    if (!ParseFailSpec(spec, &plan, &desc)) {
      return false;
    }
    if (out->has_failure) {
      out->failure_description += "; then " + desc;
    } else {
      out->failure_description = desc;
    }
    out->failures.push_back(plan);
    out->has_failure = true;
  }

  bool seen_rejoin = false;
  for (const FailurePlan& plan : out->failures) {
    if (plan.target == FailurePlan::Target::kBackup && plan.backup_index >= out->backups) {
      std::fprintf(stderr,
                   "hbft_cli: failure targets backup %d but the chain has only %d backup(s) "
                   "(see --backups)\n",
                   plan.backup_index, out->backups);
      return false;
    }
    seen_rejoin = seen_rejoin || plan.kind == FailurePlan::Kind::kRejoin;
    if (plan.after_resync && !seen_rejoin) {
      std::fprintf(stderr,
                   "hbft_cli: --fail=after-resync-ms needs an earlier rejoin event "
                   "(rejoin-time-ms / rejoin-after-ms) to wait for\n");
      return false;
    }
  }
  return true;
}

}  // namespace cli
}  // namespace hbft
