// `hbft_cli fleet`: many protected chains across simulated hosts — placement,
// host failure storms, bounded repair, and open-loop traffic measurement.
#include <cstdio>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "cli/json.hpp"
#include "cli/options.hpp"
#include "fleet/fleet.hpp"

namespace hbft {
namespace cli {

namespace {

// Parses one `--fail=SPEC` for the fleet:
//   host-K,time-ms=X                 one host fails at X
//   host-storm,hosts=N,time-ms=X     N hosts fail at X, evenly spread
// Appends the resulting failures to `out`.
bool ParseHostFailSpec(const std::string& spec, size_t fleet_hosts,
                       std::vector<HostFailure>* out) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : spec) {
    if (c == ',') {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  if (parts.empty()) {
    std::fprintf(stderr, "hbft_cli: empty --fail spec\n");
    return false;
  }

  bool storm = false;
  size_t host = 0;
  size_t storm_hosts = 1;
  double time_ms = -1.0;
  const std::string& head = parts[0];
  if (head == "host-storm") {
    storm = true;
  } else if (head.rfind("host-", 0) == 0) {
    char* end = nullptr;
    host = static_cast<size_t>(std::strtoull(head.c_str() + 5, &end, 10));
    if (end == nullptr || *end != '\0') {
      std::fprintf(stderr, "hbft_cli: bad host in --fail=%s\n", spec.c_str());
      return false;
    }
  } else {
    std::fprintf(stderr,
                 "hbft_cli: fleet --fail wants host-K or host-storm, got '%s'\n", head.c_str());
    return false;
  }
  for (size_t i = 1; i < parts.size(); ++i) {
    const std::string& part = parts[i];
    auto eq = part.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "hbft_cli: bad --fail part '%s'\n", part.c_str());
      return false;
    }
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    if (key == "time-ms") {
      time_ms = std::atof(value.c_str());
    } else if (key == "hosts" && storm) {
      storm_hosts = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else {
      std::fprintf(stderr, "hbft_cli: bad --fail part '%s'\n", part.c_str());
      return false;
    }
  }
  if (time_ms < 0.0) {
    std::fprintf(stderr, "hbft_cli: --fail=%s needs time-ms\n", spec.c_str());
    return false;
  }
  const SimTime t = SimTime::MicrosF(time_ms * 1e3);
  if (storm) {
    for (size_t h : StormHosts(fleet_hosts, storm_hosts)) {
      out->push_back(HostFailure{h, t});
    }
  } else {
    if (host >= fleet_hosts) {
      std::fprintf(stderr, "hbft_cli: --fail host %zu out of range (hosts=%zu)\n", host,
                   fleet_hosts);
      return false;
    }
    out->push_back(HostFailure{host, t});
  }
  return true;
}

JsonValue LatencyJson(const LatencySummary& s) {
  JsonValue out = JsonValue::Object();
  out.Set("count", s.count);
  out.Set("mean_ms", s.mean);
  out.Set("p50_ms", s.p50);
  out.Set("p90_ms", s.p90);
  out.Set("p99_ms", s.p99);
  out.Set("p999_ms", s.p999);
  out.Set("max_ms", s.max);
  return out;
}

}  // namespace

int FleetCommand(FlagSet& flags) {
  FleetConfig config;
  config.chains = flags.GetU64("chains").value_or(8);
  config.hosts = flags.GetU64("hosts").value_or(4);
  config.backups = static_cast<int>(flags.GetU64("backups").value_or(1));
  config.seed = flags.GetU64("seed").value_or(42);
  config.epoch_length = flags.GetU64("epoch-length").value_or(0);
  config.traffic.requests_per_chain = flags.GetU64("requests").value_or(8);
  config.traffic.payload_bytes =
      static_cast<uint32_t>(flags.GetU64("payload-bytes").value_or(32));
  config.traffic.start = SimTime::MicrosF(flags.GetDouble("start-ms").value_or(100.0) * 1e3);
  if (auto rate = flags.GetDouble("rate")) {
    if (*rate <= 0.0) {
      std::fprintf(stderr, "hbft_cli: --rate must be positive\n");
      return 2;
    }
    config.traffic.interval = SimTime::MicrosF(1e6 / *rate);
  } else {
    config.traffic.interval =
        SimTime::MicrosF(flags.GetDouble("interval-ms").value_or(20.0) * 1e3);
  }
  config.slo = SimTime::MicrosF(flags.GetDouble("slo-ms").value_or(50.0) * 1e3);
  config.repair_delay =
      SimTime::MicrosF(flags.GetDouble("repair-delay-ms").value_or(20.0) * 1e3);
  config.repair_retry =
      SimTime::MicrosF(flags.GetDouble("repair-retry-ms").value_or(10.0) * 1e3);
  config.repair_concurrency = flags.GetU64("repair-concurrency").value_or(1);
  config.quantum = SimTime::MicrosF(flags.GetDouble("quantum-ms").value_or(10.0) * 1e3);
  if (auto max_ms = flags.GetDouble("max-time-ms")) {
    config.max_time = SimTime::MicrosF(*max_ms * 1e3);
  }
  config.verify = !flags.Has("no-verify");
  config.threads = flags.GetU64("threads").value_or(1);
  if (config.threads == 0) {
    std::fprintf(stderr, "hbft_cli: --threads must be >= 1\n");
    return 2;
  }

  const std::string placement_name = flags.GetString("placement", "anti-affinity");
  if (!ParsePlacementPolicy(placement_name, &config.placement)) {
    std::fprintf(stderr, "hbft_cli: unknown placement '%s' (round-robin|anti-affinity)\n",
                 placement_name.c_str());
    return 2;
  }
  for (const std::string& spec : flags.GetList("fail")) {
    if (!ParseHostFailSpec(spec, config.hosts, &config.host_failures)) {
      return 2;
    }
  }
  const bool as_json = flags.Has("json");
  if (!flags.Finish()) {
    return 2;
  }

  Fleet fleet(config);
  FleetResult result = fleet.Run();

  const bool healthy = result.chains_lost == 0 && result.all_env_consistent &&
                       result.chains_completed == result.chains.size();

  if (as_json) {
    JsonValue doc = JsonValue::Object();
    JsonValue cfg = JsonValue::Object();
    cfg.Set("chains", static_cast<uint64_t>(config.chains));
    cfg.Set("hosts", static_cast<uint64_t>(config.hosts));
    cfg.Set("backups", config.backups);
    cfg.Set("placement", PlacementPolicyName(config.placement));
    cfg.Set("requests_per_chain", config.traffic.requests_per_chain);
    cfg.Set("interval_ms", config.traffic.interval.seconds() * 1e3);
    cfg.Set("slo_ms", config.slo.seconds() * 1e3);
    cfg.Set("repair_concurrency", static_cast<uint64_t>(config.repair_concurrency));
    cfg.Set("seed", config.seed);
    cfg.Set("verify", config.verify);
    cfg.Set("threads", static_cast<uint64_t>(config.threads));
    doc.Set("config", std::move(cfg));

    doc.Set("requests_total", result.requests_total);
    doc.Set("requests_served", result.requests_served);
    doc.Set("requests_within_slo", result.requests_within_slo);
    doc.Set("availability", result.availability);
    doc.Set("slo_attainment", result.slo_attainment);
    doc.Set("latency", LatencyJson(result.latency_ms));
    doc.Set("chains_completed", static_cast<uint64_t>(result.chains_completed));
    doc.Set("chains_lost", static_cast<uint64_t>(result.chains_lost));
    doc.Set("hosts_failed", static_cast<uint64_t>(result.hosts_failed));
    doc.Set("failovers", static_cast<uint64_t>(result.failovers));
    doc.Set("repairs", static_cast<uint64_t>(result.repairs));
    doc.Set("all_env_consistent", result.all_env_consistent);
    doc.Set("makespan_ms", result.makespan.seconds() * 1e3);
    doc.Set("fingerprint", result.fingerprint);
    doc.Set("healthy", healthy);

    JsonValue chains = JsonValue::Array();
    for (const FleetChainReport& chain : result.chains) {
      JsonValue c = JsonValue::Object();
      c.Set("chain", static_cast<uint64_t>(chain.chain));
      c.Set("completed", chain.completed);
      c.Set("service_lost", chain.service_lost);
      c.Set("failovers", static_cast<uint64_t>(chain.failovers));
      c.Set("repairs", static_cast<uint64_t>(chain.repairs));
      c.Set("replicas_lost", static_cast<uint64_t>(chain.replicas_lost));
      c.Set("requests_served", chain.requests_served);
      c.Set("availability", chain.availability);
      c.Set("env_consistent", chain.env_consistent);
      chains.Push(std::move(c));
    }
    doc.Set("chains", std::move(chains));

    JsonValue hosts = JsonValue::Array();
    for (const FleetHostReport& host : result.hosts) {
      JsonValue h = JsonValue::Object();
      h.Set("host", static_cast<uint64_t>(host.host));
      h.Set("failed", host.failed);
      h.Set("replicas_killed", static_cast<uint64_t>(host.replicas_killed));
      h.Set("repairs_hosted", static_cast<uint64_t>(host.repairs_hosted));
      h.Set("repair_queue_peak", static_cast<uint64_t>(host.repair_queue_peak));
      hosts.Push(std::move(h));
    }
    doc.Set("hosts", std::move(hosts));
    std::fputs(doc.Dump().c_str(), stdout);
    return healthy ? 0 : 1;
  }

  std::printf("fleet: %zu chains x %d replicas on %zu hosts (%s), %llu req/chain\n",
              config.chains, config.backups + 1, config.hosts,
              PlacementPolicyName(config.placement),
              static_cast<unsigned long long>(config.traffic.requests_per_chain));
  ReportLine("chains completed",
             std::to_string(result.chains_completed) + "/" + std::to_string(config.chains));
  ReportLine("chains lost", std::to_string(result.chains_lost));
  ReportLine("hosts failed", std::to_string(result.hosts_failed));
  ReportLine("failovers", std::to_string(result.failovers));
  ReportLine("repairs", std::to_string(result.repairs));
  ReportLine("requests served", std::to_string(result.requests_served) + "/" +
                                    std::to_string(result.requests_total));
  ReportF("availability", result.availability);
  ReportF("slo attainment", result.slo_attainment);
  ReportF("latency p50", result.latency_ms.p50, " ms");
  ReportF("latency p99", result.latency_ms.p99, " ms");
  ReportF("latency p99.9", result.latency_ms.p999, " ms");
  ReportF("latency max", result.latency_ms.max, " ms");
  if (config.verify) {
    ReportYesNo("env consistent", result.all_env_consistent);
  }
  ReportF("makespan", result.makespan.seconds() * 1e3, " ms");
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016llx", static_cast<unsigned long long>(result.fingerprint));
  ReportLine("fingerprint", fp);
  ReportYesNo("healthy", healthy);
  return healthy ? 0 : 1;
}

}  // namespace cli
}  // namespace hbft
