// The primary replica: rules P1 and P2 of the paper's protocol.
//
// The primary runs the guest under its hypervisor, simulates environment
// instructions against the real environment (forwarding every value to its
// backup), drives the real devices through the registry, relays received
// interrupts as [E, Int] messages, and at each epoch boundary runs P2:
//
//   - send [Tme_p] (the virtual clock registers);
//   - original protocol: await acknowledgments for all messages sent;
//   - add interrupts based on Tme_p (interval timer);
//   - deliver all interrupts buffered during the epoch;
//   - send [end, E]; start epoch E+1.
//
// Under the revised protocol (section 4.3) the boundary ack wait is dropped;
// instead any device interaction blocks until everything sent is acked
// (output commit), preserving the invariant that nothing the environment can
// observe depends on state the backup might not reach. In a backup chain the
// first backup defers its acknowledgment until its own backup has
// acknowledged the relay, so the same wait covers the whole chain.
#ifndef HBFT_CORE_PRIMARY_HPP_
#define HBFT_CORE_PRIMARY_HPP_

#include <functional>
#include <optional>

#include "core/protocol.hpp"

namespace hbft {

class PrimaryNode : public ReplicaNodeBase {
 public:
  using ReplicaNodeBase::ReplicaNodeBase;

  void RunSlice(SimTime until) override;

  // Backup-failure notification: the fault may hit a backup instead of the
  // primary. The primary stops replicating (no more relays or ack waits) and
  // continues as an unreplicated machine — the paper's "replacing the backup
  // is orthogonal" case.
  void OnDownstreamFailureDetected(SimTime t) override;

  bool solo() const { return solo_; }

  // A primary adopts a joiner only once it knows its backup is gone.
  bool CanAdoptJoiner() const override { return solo_; }

  // Environment input (console characters, NIC packets): buffered as a
  // device interrupt and relayed like any other.
  void InjectInput(DeviceId device, const std::vector<uint8_t>& payload, SimTime t) override;

 private:
  enum class State {
    kRun,
    kBoundaryAwaitAcks,  // Original protocol: P2 ack wait.
    kIoAwaitAcks,        // Revised protocol: output commit before device I/O.
  };

  void OnMessage(const Message& msg, SimTime now) override;
  void HandleIoCompletion(const IoDescriptor& io, IoCompletionPayload payload,
                          SimTime event_time) override;

  // Repair (transfer source): a solo primary streams its state to a fresh
  // joiner and, at the cut, drops solo mode — the joiner is its new backup.
  void CaptureResyncNodeState(SnapshotWriter& w) const override;
  void OnStateTransferCut() override { solo_ = false; }
  void OnDownstreamAttached() override;

  void StartBoundary();
  void FinishBoundary();
  void HandleIoInitiation(const IoDescriptor& io);
  void CompleteGatedIo();

  State state_ = State::kRun;
  bool solo_ = false;  // Backup lost: replication off, service continues.
  uint64_t boundary_tme_ = 0;
  SimTime boundary_started_ = SimTime::Zero();
  std::optional<IoDescriptor> gated_io_;
  SimTime ack_wait_started_ = SimTime::Zero();
  uint64_t env_seq_ = 0;
};

}  // namespace hbft

#endif  // HBFT_CORE_PRIMARY_HPP_
