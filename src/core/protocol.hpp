// Replica-coordination protocol: shared types and the replica-node base.
//
// This module is the paper's primary contribution. The protocol rules map to
// code as follows:
//   P1 — PrimaryNode::HandleIoCompletion / InjectInput: buffer the
//        interrupt, relay [E, Int] to the backup.
//   P2 — PrimaryNode boundary processing: send [Tme_p]; (original variant)
//        await acknowledgments for everything sent; add timer interrupts
//        based on Tme_p; deliver buffered interrupts; send [end, E].
//   P3 — the backup's hypervisor never connects real device interrupts to the
//        guest; completions reach it only as relayed messages.
//   P4 — BackupNode::OnMessage: acknowledge and buffer for delivery at the
//        end of epoch E.
//   P5 — BackupNode boundary processing: await [Tme_p], resynchronise clocks,
//        await [end, E], deliver.
//   P6 — BackupNode::PromoteAtBoundary after the failure detector fires.
//   P7 — uncertain interrupts synthesised for every outstanding I/O
//        operation at the end of a failover epoch, generically across every
//        registered device.
//
// The revised protocol of section 4.3 ("New" in Table 1) drops the ack wait
// in P2 and instead gates every device interaction on all-acked (output
// commit): ProtocolVariant::kRevised.
//
// The protocol is stated over the I/O axioms IO1/IO2, not over any concrete
// device: this layer sees devices only as DeviceId-tagged IoDescriptor
// initiations and IoCompletionPayload completions, dispatched through the
// node's DeviceRegistry (devices/virtual_device.hpp). Adding a device never
// touches core/.
//
// Chain extension (beyond the paper's pair): replicas form a chain
// primary -> backup_1 -> ... -> backup_k. Each interior backup relays the
// protocol stream it receives to its own backup and defers its upstream
// acknowledgment until the relay is acknowledged downstream, so the
// output-commit guarantee holds transitively: nothing the environment can
// observe depends on state that any surviving backup might not reach. A
// promoted backup re-protects itself by continuing to replicate to its own
// backup (rules P1/P2 with itself in the primary role).
#ifndef HBFT_CORE_PROTOCOL_HPP_
#define HBFT_CORE_PROTOCOL_HPP_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/snapshot.hpp"
#include "common/time.hpp"
#include "core/state_transfer.hpp"
#include "hypervisor/hypervisor.hpp"
#include "net/channel.hpp"

namespace hbft {

enum class ProtocolVariant {
  kOriginal,  // P2 awaits acknowledgments at every epoch boundary ("Old").
  kRevised,   // No boundary wait; acks required before device output ("New").
};

struct ReplicationConfig {
  uint64_t epoch_length = 4096;
  ProtocolVariant variant = ProtocolVariant::kOriginal;
  bool tlb_takeover = true;
  // Record a virtual-machine state fingerprint at every epoch boundary on
  // all replicas (lockstep audit; used by tests, off for benchmarks).
  bool audit_lockstep = false;

  // Epoch pipelining, generalising the original protocol's P2 ack wait: at
  // the boundary of epoch E the active replica waits only until everything
  // sent through epoch E - pipeline_depth is acknowledged, so up to
  // pipeline_depth epochs of protocol traffic may be in flight while the
  // guest runs ahead. 0 = the paper's exact rule (wait for everything,
  // including epoch E's own messages). The revised variant's output-commit
  // wait is never relaxed — device output still requires all-acked.
  uint32_t pipeline_depth = 0;

  // Ack batching (backup side): coalesce up to this many P4 acknowledgments
  // into one cumulative ack. Boundary messages ([Tme_p], [end, E]) and any
  // transition into a blocked state flush the batch, so no wait in the
  // protocol can starve. 1 = ack every message (the paper's behaviour).
  uint32_t ack_batch = 1;

  // Live state transfer (repair): pacing window, delta-convergence
  // threshold, and the pre-copy round cap.
  StateTransferConfig resync;
};

// The guest software to boot: an assembled image plus its interface symbols.
struct GuestProgram {
  const AssembledImage* image = nullptr;
  uint32_t entry_pc = 0;
  uint32_t wait_loop_begin = 0;  // Idle spin loop, for exact fast-forward.
  uint32_t wait_loop_end = 0;
};

// Injection point for the simulation's virtual-time events.
class EventScheduler {
 public:
  virtual ~EventScheduler() = default;
  virtual void ScheduleAt(SimTime t, std::function<void()> fn) = 0;
  // Earliest pending event, or SimTime::Max(). Nodes cap their run horizon
  // with this so events they scheduled themselves mid-slice (device
  // completions, timers) are handled at the right virtual time.
  virtual SimTime NextEventTime() const = 0;
};

// A schedulable actor (replica node or bare node) driven by the world loop.
class NodeActor {
 public:
  virtual ~NodeActor() = default;

  // Advances the node until its clock reaches `until`, it blocks on a
  // protocol wait, or it halts/dies.
  virtual void RunSlice(SimTime until) = 0;
  virtual bool runnable() const = 0;
  virtual SimTime clock() const = 0;
  virtual bool halted() const = 0;
  virtual bool dead() const = 0;
  // A replica still receiving a state transfer: parked, but neither halted
  // nor dead — the world must not wait on it to call a run complete.
  virtual bool joining() const { return false; }
};

// Protocol phases at which a failure can be injected, fired by whichever
// replica currently drives the devices (the primary, or a promoted backup).
enum class FailPhase {
  kNone,
  kBeforeSendTme,   // Epoch complete, [Tme_p] not yet sent.
  kAfterSendTme,    // [Tme_p] sent, acks not yet awaited.
  kAfterAckWait,    // Acks received, interrupts not yet delivered.
  kAfterDeliver,    // Interrupts delivered, [end, E] not yet sent.
  kAfterSendEnd,    // [end, E] sent, next epoch not yet started.
  kBeforeIoIssue,   // Guest initiated I/O; real device not yet touched.
  kAfterIoIssue,    // Real device operation in flight.
};

const char* FailPhaseName(FailPhase phase);

// A replica's place in the chain: the channels to its neighbours. Every
// field may be null — the primary has no upstream, the last backup has no
// downstream, and a pair degenerates to exactly the paper's topology.
struct NodeLinks {
  Channel* up_in = nullptr;     // Protocol stream from the upstream replica.
  Channel* up_out = nullptr;    // Acknowledgments to the upstream replica.
  Channel* down_out = nullptr;  // Protocol stream to the downstream replica.
  Channel* down_in = nullptr;   // Acknowledgments from the downstream replica.
};

// A real-device operation in flight at a crash, for IO2 resolution.
struct PendingRealOp {
  DeviceId device_id = DeviceId::kNone;
  uint64_t op_id = 0;
};

// Shared machinery for primary and backup replicas: the hypervisor (which
// owns the node's DeviceRegistry), channel endpoints, and bookkeeping.
// "Real device" methods are used by the primary from the start and by a
// backup after promotion.
class ReplicaNodeBase : public NodeActor {
 public:
  ReplicaNodeBase(int id, const GuestProgram& guest, const MachineConfig& machine_config,
                  const ReplicationConfig& replication, const CostModel& costs,
                  std::unique_ptr<DeviceRegistry> devices, const NodeLinks& links,
                  EventScheduler* scheduler);
  ~ReplicaNodeBase() override = default;

  SimTime clock() const override { return hv_.clock(); }
  bool runnable() const override { return runnable_ && !halted_ && !dead_; }
  bool halted() const override { return halted_; }
  bool dead() const override { return dead_; }
  bool joining() const override { return joining_; }

  Hypervisor& hypervisor() { return hv_; }
  const Hypervisor& hypervisor() const { return hv_; }
  DeviceRegistry& devices() { return hv_.devices(); }
  uint64_t epoch() const { return epoch_; }
  int id() const { return id_; }

  // Pending real-device operations (world resolves them at a crash).
  std::vector<PendingRealOp> PendingRealOps() const;

  // --- Repair: live state transfer (world wiring) ---------------------------

  // Source side: adopt a fresh joining downstream — point the node at the
  // new channel pair, reset downstream ack bookkeeping, and begin the
  // pre-copy stream. The node keeps executing; replication to the joiner
  // starts only at the cut.
  void AttachJoiningDownstream(Channel* down_out, Channel* down_in, SimTime t);

  // Receiver side: park the node in joining mode (memory zeroed, guest
  // never runs) until the transfer's control chunk restores a complete
  // machine, at which point it becomes a normal standing backup.
  void StartAsJoiner();

  bool transfer_active() const { return transfer_active_; }
  // Non-null from AttachJoiningDownstream on; the report survives the cut.
  const StateTransferSource* transfer_source() const { return transfer_.get(); }

  // Whether this node can adopt a joiner right now: it must have no
  // downstream it still believes alive. A node whose downstream died but
  // whose failure-detection event has not fired yet is NOT ready — attaching
  // then would race the pending detection callback into the fresh transfer.
  virtual bool CanAdoptJoiner() const = 0;

  // Joiner-side outcome, for scenario reports.
  bool joined() const { return joined_; }
  SimTime join_time() const { return join_time_; }
  uint64_t join_epoch() const { return join_epoch_; }

  // World callbacks: the source's cut (with its final report) and the
  // joiner's restore completion (with the epoch it resumes at).
  void set_on_resync_cut(std::function<void(SimTime, const StateTransferSource::Report&)> fn) {
    on_resync_cut_ = std::move(fn);
  }
  void set_on_joined(std::function<void(SimTime, uint64_t)> fn) { on_joined_ = std::move(fn); }

  // Environment input bound for the guest (console characters, NIC
  // packets), shaped by the owning device model into the one generic
  // completion path. Role-specific: the active replica buffers and relays;
  // a standing backup queues until promotion.
  virtual void InjectInput(DeviceId device, const std::vector<uint8_t>& payload, SimTime t) = 0;

  // Wired by the world: delivers queued channel messages to this node,
  // merging the upstream protocol stream and downstream acknowledgments in
  // arrival order.
  void PollIncoming(SimTime now);

  // Fail-stop crash: the node stops executing and its outbound channels
  // break; messages already sent still arrive (paper failure model).
  void Kill(SimTime t) {
    dead_ = true;
    runnable_ = false;
    if (up_out_ != nullptr) {
      up_out_->Break(t);
    }
    if (down_out_ != nullptr) {
      down_out_->Break(t);
    }
  }

  // The world's notification that this node's downstream backup died (the
  // failure detector saw its acknowledgments stop). The node stops
  // replicating downstream and releases any wait on the dead node's acks.
  virtual void OnDownstreamFailureDetected(SimTime t) = 0;

  struct Stats {
    uint64_t messages_sent = 0;
    uint64_t messages_received = 0;
    uint64_t acks_received = 0;
    uint64_t relays_forwarded = 0;
    uint64_t env_values = 0;
    uint64_t io_issued = 0;
    uint64_t io_suppressed = 0;
    uint64_t uncertain_synthesised = 0;
    uint64_t retransmit_rounds = 0;  // Go-back-N window re-sends triggered.
    uint64_t epochs = 0;
    SimTime ack_wait_time = SimTime::Zero();
    SimTime boundary_time = SimTime::Zero();  // Total epoch-boundary processing.
  };
  const Stats& stats() const { return stats_; }

  // Lockstep audit trail: one VM-state fingerprint per completed epoch
  // boundary, recorded at the identical instruction-stream point on all
  // replicas (requires ReplicationConfig::audit_lockstep).
  const std::vector<uint64_t>& boundary_fingerprints() const { return boundary_fingerprints_; }

  // Failure-injection hook, fired at each protocol phase of the node that
  // currently drives the devices, with the current epoch and the guest I/O
  // sequence number (0 outside I/O phases).
  void set_phase_hook(std::function<void(FailPhase, uint64_t, uint64_t)> hook) {
    phase_hook_ = std::move(hook);
  }

  // World wiring: wakes the neighbour so it polls at a message's arrival.
  void set_schedule_down_poll(std::function<void(SimTime)> fn) {
    schedule_down_poll_ = std::move(fn);
  }
  void set_schedule_up_poll(std::function<void(SimTime)> fn) {
    schedule_up_poll_ = std::move(fn);
  }

 protected:
  // Sends a protocol message downstream (primary role), charging CPU cost
  // and scheduling the downstream node's poll at the arrival time.
  void SendDown(Message msg);

  // Sends a message upstream (acknowledgments), same accounting.
  void SendUp(Message msg);

  void Phase(FailPhase phase, uint64_t io_seq = 0) {
    if (phase_hook_) {
      phase_hook_(phase, epoch_, io_seq);
    }
  }

  // Issues a guest I/O command against the real device backend; schedules
  // the completion event. Only the active replica calls this.
  void IssueRealIo(const IoDescriptor& io);

  // Handles a real device completion (primary role or promoted backup),
  // uniformly for every registered device. Pure: every concrete role must
  // say what a completion means for it, so a completion can never land on a
  // role that has no handler.
  virtual void HandleIoCompletion(const IoDescriptor& io, IoCompletionPayload payload,
                                  SimTime event_time) = 0;

  // Buffers `payload` for end-of-epoch delivery and relays it downstream
  // when `relay` is set: the shared half of P1 both roles call from their
  // HandleIoCompletion (and P7's synthesis path). Takes the payload by value
  // so the relay message can steal it — a disk-read completion carries an 8K
  // block.
  void BufferAndRelay(IoCompletionPayload payload, bool relay);

  uint64_t TodNow() const { return static_cast<uint64_t>(costs_.TodFromTime(hv_.clock())); }

  // The node handles an event no earlier than its wall-clock instant.
  void CatchUpClock(SimTime t) {
    if (hv_.clock() < t) {
      hv_.SetClock(t);
    }
  }

  int id_ = 0;
  ReplicationConfig replication_;
  CostModel costs_;
  Hypervisor hv_;
  Channel* up_in_ = nullptr;
  Channel* up_out_ = nullptr;
  Channel* down_out_ = nullptr;
  Channel* down_in_ = nullptr;
  EventScheduler* scheduler_ = nullptr;
  std::function<void(SimTime)> schedule_down_poll_;
  std::function<void(SimTime)> schedule_up_poll_;
  std::function<void(FailPhase, uint64_t, uint64_t)> phase_hook_;

  uint64_t epoch_ = 0;
  bool runnable_ = true;
  bool halted_ = false;
  bool dead_ = false;

  // Downstream ack accounting (paper P2/P4): down_out_->messages_enqueued()
  // vs acks seen on down_in_. The comparison is against unique messages
  // accepted by the channel, never wire sends — retransmissions must not
  // inflate the ack requirement. Vacuously true without a downstream
  // replica.
  uint64_t down_acked_count_ = 0;
  bool AllDownAcked() const {
    return down_out_ == nullptr || down_acked_count_ >= down_out_->messages_enqueued();
  }

  // Records a downstream cumulative ack: advances the ack count, releases
  // the channel's go-back-N window, and lets a paced state transfer send
  // its next chunks.
  void NoteDownAck(uint64_t ack_seq);

  // The pipelined boundary ack rule (see ReplicationConfig::pipeline_depth).
  // Falls back to the strict all-acked rule when no mark exists for the
  // window's trailing epoch (e.g. pre-promotion epochs on a promoted
  // backup) — running ahead is an optimisation, stalling is always safe.
  bool BoundaryAcksSatisfied() const;

  // Snapshot of messages enqueued downstream through this epoch's [end, E];
  // the pipelined wait at epoch E compares acks against the mark of epoch
  // E - pipeline_depth.
  void RecordEpochSentMark();
  std::map<uint64_t, uint64_t> epoch_sent_marks_;

  // --- Go-back-N retransmission driver (lossy links only) -------------------
  // One timer per node covers its downstream channel; the channel itself
  // decides whether a resend is due. The timer re-arms while the unacked
  // window is non-empty and dies with the node (or with its downstream).
  void EnsureRetransmitTimer();
  void OnRetransmitTimer(SimTime t);
  bool retx_timer_armed_ = false;

  // In-flight real-device operations: (device, backend op id) -> initiating
  // descriptor.
  std::map<std::pair<DeviceId, uint64_t>, IoDescriptor> pending_real_;

  // --- Live state transfer (source side) ------------------------------------
  // Chunks ride SendDown like protocol messages; pacing compares the
  // downstream channel's enqueued count against the cumulative acks.

  void BeginStateTransfer(SimTime t);
  // Sends chunks while the unacked window has room.
  void PumpStateTransfer();
  void SendNextStateChunk();
  // Called at the end of every completed epoch boundary: runs the delta
  // round, and performs the quiesce + cut once the dirty rate converges.
  void TransferBoundaryHook();
  // The joiner died mid-transfer: stop streaming and drop the tracking.
  void AbortStateTransfer();
  uint64_t UnackedDownstream() const;

  // Role-specific halves of the transfer. CaptureResyncNodeState writes the
  // protocol-layer state the joiner needs (epoch, environment-value
  // numbering, boundary bookkeeping, outstanding operations);
  // OnStateTransferCut flips the role into replicating to the joiner;
  // OnDownstreamAttached resets role bookkeeping tied to a previous
  // (now dead) downstream.
  virtual void CaptureResyncNodeState(SnapshotWriter& w) const = 0;
  virtual void OnStateTransferCut() = 0;
  virtual void OnDownstreamAttached() {}

  // Serialises the in-flight real operations (sorted by guest sequence
  // number): an active source's contribution to the joiner's outstanding
  // set — its guest has issued them, and a later P7 would re-drive them.
  void CaptureOutstandingRealOps(SnapshotWriter& w) const;

  bool joining_ = false;
  bool transfer_active_ = false;
  std::unique_ptr<StateTransferSource> transfer_;
  bool joined_ = false;
  SimTime join_time_ = SimTime::Zero();
  uint64_t join_epoch_ = 0;
  std::function<void(SimTime, const StateTransferSource::Report&)> on_resync_cut_;
  std::function<void(SimTime, uint64_t)> on_joined_;

  Stats stats_;

  void RecordBoundaryFingerprint() {
    if (replication_.audit_lockstep) {
      boundary_fingerprints_.push_back(hv_.machine().Fingerprint());
    }
  }
  std::vector<uint64_t> boundary_fingerprints_;

 private:
  friend class World;
  virtual void OnMessage(const Message& msg, SimTime now) = 0;

  // The upstream channel discarded stale/post-gap frames: repeat the
  // cumulative acknowledgment so a lost final ack cannot wedge the sender's
  // retransmit window. Only backups (which ack upstream) act on it.
  virtual void OnTransportReackNeeded(SimTime now) { (void)now; }

  // Completion event for a scheduled real operation: completes it at the
  // backend and hands the payload to the role's HandleIoCompletion.
  void OnRealOpComplete(DeviceId device_id, uint64_t op_id, SimTime event_time);
};

}  // namespace hbft

#endif  // HBFT_CORE_PROTOCOL_HPP_
